// Command dewsvet is the project's static-analysis suite: five
// analyzers that machine-enforce the broker's concurrency and hot-path
// invariants (see ARCHITECTURE.md, "Machine-checked invariants").
//
// It speaks the `go vet -vettool` protocol, so the whole tree is
// checked with:
//
//	go build -o /tmp/dewsvet ./tools/dewsvet
//	go vet -vettool=/tmp/dewsvet ./...
//
// Analyzers:
//
//	lockhold   — blocking operations while a sync.Mutex/RWMutex is held
//	rcusnap    — RCU discipline on //dewsvet:rcu atomic.Pointer fields
//	hotalloc   — heap-allocating constructs in //dewsvet:hotpath functions
//	wralerr    — discarded Flush/Sync/Close/Write errors in durability-
//	             critical packages
//	immutafter — field writes to //dewsvet:immutable types outside their
//	             declaring file
//
// Deliberate violations are suppressed with a reasoned allowlist
// comment on (or directly above) the offending line:
//
//	//dewsvet:<analyzer>-ok <reason>
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/tools/dewsvet/analyzers"
	"repro/tools/dewsvet/unitchecker"
)

func main() {
	if len(os.Args) == 2 {
		arg := os.Args[1]
		switch {
		case strings.HasPrefix(arg, "-V"):
			// cmd/go fingerprints the tool for the build cache by
			// running it with -V=full and hashing the reply; the reply
			// must change when the binary does, so embed a digest of
			// the executable itself (same scheme as x/tools'
			// unitchecker).
			printVersion()
			return
		case arg == "-flags":
			// cmd/go asks which flags the tool accepts; dewsvet has
			// none beyond the protocol itself.
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			unitchecker.Run(arg, analyzers.All())
			return // unreachable: Run exits
		}
	}
	usage()
	os.Exit(1)
}

func printVersion() {
	digest := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				digest = fmt.Sprintf("%x", h.Sum(nil))
			}
			_ = f.Close() // read-only handle; nothing to lose
		}
	}
	fmt.Printf("dewsvet version devel comments-go-here buildID=%s\n", digest)
}

func usage() {
	fmt.Fprintf(os.Stderr, `dewsvet: project-specific static analysis for this repository.

Usage (as a go vet tool):

  go build -o /tmp/dewsvet ./tools/dewsvet
  go vet -vettool=/tmp/dewsvet ./...

Analyzers:

`)
	for _, a := range analyzers.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, doc)
	}
}
