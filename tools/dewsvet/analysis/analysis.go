// Package analysis is a self-contained, dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough surface for the
// dewsvet analyzers and their golden tests. The toolchain image this
// repository builds in has no module proxy access, so the framework is
// reimplemented on the standard library instead of imported.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Drivers — the unitchecker that speaks the `go vet
// -vettool` protocol, and the analysistest golden harness — construct
// the Pass and collect the reports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in allowlist
	// comments (//dewsvet:<name>-ok <reason>).
	Name string
	// Doc is the one-paragraph description shown by `dewsvet help`.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass hands an analyzer one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}
