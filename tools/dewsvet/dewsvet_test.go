package main

import (
	"testing"

	"repro/tools/dewsvet/analysistest"
	"repro/tools/dewsvet/analyzers"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, analyzers.Lockhold, "lockhold", "dewsvet/testdata/lockhold")
}

func TestRcusnap(t *testing.T) {
	analysistest.Run(t, analyzers.Rcusnap, "rcusnap", "dewsvet/testdata/rcusnap")
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analyzers.Hotalloc, "hotalloc", "dewsvet/testdata/hotalloc")
}

func TestWralerr(t *testing.T) {
	// The golden package masquerades as the WAL package: wralerr scopes
	// by import path.
	analysistest.Run(t, analyzers.Wralerr, "wralerr", "repro/internal/eventlog")
}

func TestWralerrScope(t *testing.T) {
	// Outside the durability-critical packages the analyzer stays quiet.
	analysistest.Run(t, analyzers.Wralerr, "wralerr_scope", "repro/internal/cep")
}

func TestImmutafter(t *testing.T) {
	analysistest.Run(t, analyzers.Immutafter, "immutafter", "dewsvet/testdata/immutafter")
}
