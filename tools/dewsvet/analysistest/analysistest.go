// Package analysistest is a dependency-free port of the
// golang.org/x/tools/go/analysis/analysistest idea: run one analyzer
// over a golden package under testdata/src/<dir>/ and compare its
// diagnostics against `// want "regexp"` comments in the sources.
//
// Imports in golden packages are type-checked from GOROOT source (the
// "source" importer), so tests run without export data or a module
// proxy. Golden packages should stick to dependency-light stdlib
// imports (os, sync, bufio, fmt, time, sync/atomic).
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/tools/dewsvet/analysis"
)

// The source importer re-type-checks stdlib packages from GOROOT; it is
// slow and not safe for concurrent use, so every test in the process
// shares one instance behind a mutex and profits from its cache.
var (
	impOnce sync.Once
	imp     types.Importer
	impMu   sync.Mutex
)

type lockedImporter struct{}

func (lockedImporter) Import(path string) (*types.Package, error) {
	impMu.Lock()
	defer impMu.Unlock()
	impOnce.Do(func() {
		imp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return imp.Import(path)
}

// Run analyzes testdata/src/<dir> (relative to the test's working
// directory) as package path importPath and matches the diagnostics
// against the want comments. importPath matters to analyzers that
// scope by package path (wralerr).
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()

	pkgDir := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading %s: %v", pkgDir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", pkgDir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: lockedImporter{}}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("golden package %s does not type-check: %v", dir, err)
	}

	var got []diagAt
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Report: func(d analysis.Diagnostic) {
			p := fset.Position(d.Pos)
			got = append(got, diagAt{p.Filename, p.Line, d.Message})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	want := collectWants(t, fset, files)

	sort.Slice(got, func(i, j int) bool {
		if got[i].file != got[j].file {
			return got[i].file < got[j].file
		}
		return got[i].line < got[j].line
	})
	for _, d := range got {
		if !want.match(d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.file, d.line, d.message)
		}
	}
	for _, w := range want.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
	}
}

type diagAt struct {
	file    string
	line    int
	message string
}

type expectation struct {
	file    string
	line    int
	re      string
	rx      *regexp.Regexp
	matched bool
}

type wants struct{ list []*expectation }

func (w *wants) match(d diagAt) bool {
	for _, e := range w.list {
		if !e.matched && e.file == d.file && e.line == d.line && e.rx.MatchString(d.message) {
			e.matched = true
			return true
		}
	}
	return false
}

func (w *wants) unmatched() []*expectation {
	var out []*expectation
	for _, e := range w.list {
		if !e.matched {
			out = append(out, e)
		}
	}
	return out
}

// collectWants parses `// want "re1" "re2"` comments. Each quoted
// string is one expected diagnostic on the comment's line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wants {
	t.Helper()
	w := &wants{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					if rest[0] != '"' && rest[0] != '`' {
						t.Fatalf("%s:%d: malformed want comment near %q", p.Filename, p.Line, rest)
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want string: %v", p.Filename, p.Line, err)
					}
					rest = rest[len(q):]
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: %v", p.Filename, p.Line, err)
					}
					rx, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", p.Filename, p.Line, err)
					}
					w.list = append(w.list, &expectation{file: p.Filename, line: p.Line, re: unq, rx: rx})
				}
			}
		}
	}
	return w
}
