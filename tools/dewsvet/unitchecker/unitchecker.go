// Package unitchecker implements the driver side of the `go vet
// -vettool` protocol on the standard library, mirroring the contract of
// golang.org/x/tools/go/analysis/unitchecker: cmd/go invokes the tool
// once per package with a JSON *.cfg file naming the source files and
// the export data of every dependency, and expects diagnostics on
// stderr with exit status 2 when there are findings.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/tools/dewsvet/analysis"
)

// Config mirrors the JSON structure cmd/go writes into the vet.cfg
// file. Unknown fields are ignored so the driver keeps working as
// cmd/go grows the schema.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet.cfg invocation and exits the process with the
// vet-tool status convention: 0 clean, 1 driver failure, 2 findings.
func Run(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dewsvet: %v\n", err)
		os.Exit(1)
	}

	// cmd/go demands a facts file for every package, dependencies
	// included, before it runs the tool on importers. The dewsvet
	// analyzers are all package-local (no cross-package facts), so the
	// facts file is always empty — and a VetxOnly run can return
	// without looking at the source at all.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dewsvet: writing facts: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "dewsvet: %s: %v\n", cfg.ImportPath, err)
		os.Exit(1)
	}
	if len(diags) == 0 {
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	os.Exit(2)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("package has no Go files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the package described by cfg, runs
// every analyzer over it, and returns the rendered diagnostics sorted
// by position.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Resolve each import to the export data cmd/go staged for it:
	// vendor/aliased paths go through ImportMap, the .a/.x file through
	// PackageFile. "unsafe" has no export data.
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, goarch),
		GoVersion: versionFor(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []diag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, diag{fset.Position(d.Pos), name, d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out, nil
}

type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

func (d diag) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.pos, d.analyzer, d.message)
}

// versionFor maps cmd/go's GoVersion field ("go1.22.4", "local", a
// toolchain name, ...) onto something go/types accepts; unparseable
// values fall back to the language default (empty string).
func versionFor(v string) string {
	if !strings.HasPrefix(v, "go1") {
		return ""
	}
	// go/types wants a release version like "go1.22", not a point
	// release; trim a third dot-component when present.
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}
