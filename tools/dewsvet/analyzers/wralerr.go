package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/dewsvet/analysis"
)

// Wralerr flags discarded error results from Close, Flush, Sync, Write
// and WriteString in the durability-critical packages — the WAL
// (eventlog), the triple-store log (graphlog), the SSE gateway, and the
// system wiring (dews) that tears them down. In those packages a
// swallowed Close or Flush error is silent data loss: the write looked
// durable and was not.
//
// Explicitly acknowledged discards (`_ = f.Close()`) are allowed — the
// point is that the discard is a decision, not an accident. Read-only
// handles may instead carry //dewsvet:wralerr-ok <reason>. Test files
// and infallible writers (strings.Builder, bytes.Buffer) are exempt.
var Wralerr = &analysis.Analyzer{
	Name: "wralerr",
	Doc:  "discarded Close/Flush/Sync/Write error in a durability-critical package",
	Run:  runWralerr,
}

// durabilityCritical names the package paths whose write/teardown
// errors must not vanish.
var durabilityCritical = regexp.MustCompile(`/internal/(eventlog|graphlog|gateway|dews)$`)

// wralerrMethods are the checked method names.
var wralerrMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
}

func runWralerr(pass *analysis.Pass) error {
	if !durabilityCritical.MatchString(pass.Pkg.Path()) {
		return nil
	}
	sup := newSuppressor(pass, "wralerr")
	for _, file := range pass.Files {
		// Tests exercise the durable paths, they are not one: an
		// idiomatic `defer l.Close()` in a test cannot lose user data.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					checkDiscard(pass, sup, call, false)
				}
			case *ast.DeferStmt:
				checkDiscard(pass, sup, s.Call, true)
			}
			return true
		})
	}
	return nil
}

func checkDiscard(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr, deferred bool) {
	callee := staticCallee(pass.Info, call)
	if callee == nil || !wralerrMethods[callee.Name()] {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return
	}
	if infallibleWriter(sig.Recv().Type()) {
		return
	}
	if deferred {
		sup.report(pass, call.Pos(), "deferred %s discards its error; use a named return or close explicitly on the success path", callee.FullName())
		return
	}
	sup.report(pass, call.Pos(), "result of %s is discarded; a swallowed %s error here is silent data loss", callee.FullName(), callee.Name())
}

// infallibleWriter reports receivers whose write methods are
// documented to always return a nil error; flagging them is noise.
func infallibleWriter(recv types.Type) bool {
	n := namedOf(recv)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named := namedOf(res.At(i).Type()); named != nil {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
