package analyzers

import "repro/tools/dewsvet/analysis"

// All returns the full dewsvet suite in the order findings are
// documented: concurrency first, durability, then immutability.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Lockhold,
		Rcusnap,
		Hotalloc,
		Wralerr,
		Immutafter,
	}
}
