package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/dewsvet/analysis"
)

// Immutafter enforces publish-then-freeze on types annotated
// //dewsvet:immutable — trie nodes, rdf snapshot runs, shared SSE frame
// caches: values that, once published to concurrent readers (via an
// RCU Store, a shared message cache, an exposed snapshot), must never
// see another field write.
//
// The machine-checkable proxy for "only during construction" is "only
// in the file that declares the type": constructors live next to their
// type, so any field assignment from another file is a mutation of a
// potentially-published value. Composite literals are construction and
// stay legal everywhere.
var Immutafter = &analysis.Analyzer{
	Name: "immutafter",
	Doc:  "field write to a //dewsvet:immutable type outside its declaring file",
	Run:  runImmutafter,
}

func runImmutafter(pass *analysis.Pass) error {
	sup := newSuppressor(pass, "immutafter")

	// Collect annotated type declarations and the file each lives in.
	immutable := make(map[*types.TypeName]string)
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !docHasMarker(ts.Doc, "dewsvet:immutable") &&
					!(len(gd.Specs) == 1 && docHasMarker(gd.Doc, "dewsvet:immutable")) {
					continue
				}
				if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok && tn != nil {
					immutable[tn] = filename
				}
			}
		}
	}
	if len(immutable) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		ast.Inspect(file, func(n ast.Node) bool {
			var lhss []ast.Expr
			var pos token.Pos
			switch x := n.(type) {
			case *ast.AssignStmt:
				lhss, pos = x.Lhs, x.TokPos
			case *ast.IncDecStmt:
				lhss, pos = []ast.Expr{x.X}, x.TokPos
			default:
				return true
			}
			for _, lhs := range lhss {
				field, tn := immutableFieldTarget(pass, lhs, immutable)
				if tn == nil || immutable[tn] == filename {
					continue
				}
				if sup.suppressed(pos) {
					continue
				}
				pass.Reportf(pos, "write to field %s of immutable type %s outside its declaring file; construct a new value instead", field, tn.Name())
			}
			return true
		})
	}
	return nil
}

// immutableFieldTarget walks an assignment target's selector/index
// chain and reports the first field selection that belongs to an
// annotated immutable type. `s.delta[i] = x`, `n.children[j].node = x`
// and `(*p).n = x` all resolve through the chain.
func immutableFieldTarget(pass *analysis.Pass, e ast.Expr, immutable map[*types.TypeName]string) (field string, tn *types.TypeName) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if named := namedOf(sel.Recv()); named != nil {
					if _, ok := immutable[named.Obj()]; ok {
						return x.Sel.Name, named.Obj()
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return "", nil
		}
	}
}
