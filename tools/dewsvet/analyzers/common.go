// Package analyzers holds the five dewsvet checks and their shared
// machinery: annotation/allowlist comment indexing, a held-mutex
// statement walker, and call-classification helpers.
//
// Conventions enforced across the repository:
//
//   - //dewsvet:rcu          on an atomic.Pointer field: RCU discipline
//   - //dewsvet:hotpath      on a function: allocation-sensitive
//   - //dewsvet:immutable    on a type: no field writes outside its file
//   - //dewsvet:<name>-ok R  on/above a line (or in a function's doc
//     comment): deliberate, reasoned exception for analyzer <name>
//
// All checks are package-local: annotations are only visible to the
// package that declares them, which matches how the invariants are
// used — every annotated type and field is mutated only inside its own
// package.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/dewsvet/analysis"
)

// ---------------------------------------------------------------------------
// Annotation and allowlist comments

// commentHasMarker reports whether a single comment's text carries the
// given dewsvet marker ("dewsvet:hotpath", "dewsvet:lockhold-ok", ...),
// alone or followed by free text.
func commentHasMarker(text, marker string) bool {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSpace(text)
	return text == marker || strings.HasPrefix(text, marker+" ")
}

// docHasMarker reports whether any line of a doc comment group carries
// the marker.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if commentHasMarker(c.Text, marker) {
			return true
		}
	}
	return false
}

// suppressor indexes the //dewsvet:<name>-ok allowlist comments of one
// analyzer across the package. A finding is suppressed when the comment
// sits on the same line or on the line directly above.
type suppressor struct {
	fset  *token.FileSet
	lines map[string]map[int]bool // filename → lines carrying the marker
}

func newSuppressor(pass *analysis.Pass, analyzer string) *suppressor {
	marker := "dewsvet:" + analyzer + "-ok"
	s := &suppressor{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !commentHasMarker(c.Text, marker) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := s.lines[p.Filename]
				if m == nil {
					m = make(map[int]bool)
					s.lines[p.Filename] = m
				}
				m[p.Line] = true
			}
		}
	}
	return s
}

func (s *suppressor) suppressed(pos token.Pos) bool {
	p := s.fset.Position(pos)
	m := s.lines[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// report emits a finding unless an allowlist comment covers it.
func (s *suppressor) report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if s.suppressed(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// ---------------------------------------------------------------------------
// Function conventions

var callerHoldsRe = regexp.MustCompile(`(?i)caller(?:s)?(?: must)? holds? (\S+)`)

// heldAtEntry reports whether fd runs, by repository convention, with a
// lock already held: its name ends in "Locked", or its doc comment says
// "caller holds <lock>". The returned key names the lock for messages.
func heldAtEntry(fd *ast.FuncDecl) (string, bool) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return "the caller's lock", true
	}
	if fd.Doc != nil {
		if m := callerHoldsRe.FindStringSubmatch(fd.Doc.Text()); m != nil {
			return strings.TrimRight(m[1], ".,;:"), true
		}
	}
	return "", false
}

// funcObj returns the *types.Func a declaration defines, or nil.
func funcObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	f, _ := info.Defs[fd.Name].(*types.Func)
	return f
}

// ---------------------------------------------------------------------------
// Call classification

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call to the *types.Func it statically invokes
// (plain function, method, or promoted method), or nil for dynamic
// calls, conversions, and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// dynamicCallee reports a call through a function-typed value (a
// parameter, field, or variable — the shape of a user callback) and
// returns its display name. Interface method calls and static calls are
// not dynamic in this sense.
func dynamicCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return "", false
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Var); ok {
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return f.Name, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.FieldVal {
			if _, ok := sel.Type().Underlying().(*types.Signature); ok {
				return types.ExprString(f), true
			}
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Held-mutex statement walking

// lockDelta classifies a call as a mutex acquire (+1) or release (-1)
// and names the mutex by its receiver expression ("l.mu"). TryLock
// variants are ignored: treating a conditional acquire as held would
// be wrong on the failure branch, so lockhold under-approximates there.
func lockDelta(info *types.Info, call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil {
		return "", 0, false
	}
	switch f.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return types.ExprString(sel.X), +1, true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return types.ExprString(sel.X), -1, true
	}
	return "", 0, false
}

// rangeHeader wraps the range-expression of a `for range` statement so
// visitors can tell `range ch` (a blocking receive on channels) apart
// from an ordinary use of ch. It is only ever produced by scanHeld;
// visitors must unwrap it before calling ast.Inspect.
type rangeHeader struct{ X ast.Expr }

func (r rangeHeader) Pos() token.Pos { return r.X.Pos() }
func (r rangeHeader) End() token.Pos { return r.X.End() }

// heldVisitor receives every executable node of a function body at
// statement granularity along with the set of mutexes held at that
// point (receiver-expression key → position of the acquiring Lock).
// Nested blocks are visited with a copy of the held set, so a Lock
// inside a branch never leaks past it.
type heldVisitor func(n ast.Node, held map[string]token.Pos)

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// scanHeld walks stmts tracking Lock/Unlock pairs. A deferred Unlock
// keeps its mutex held to the end of the enclosing scope. Deferred
// non-lock calls are visited with the current held set: a defer
// registered while a lock is held runs (LIFO) before the deferred
// Unlock that releases it. `go` statements only have their arguments
// visited — the spawned goroutine does not inherit the caller's locks.
func scanHeld(info *types.Info, stmts []ast.Stmt, held map[string]token.Pos, visit heldVisitor) {
	for _, st := range stmts {
		scanStmt(info, st, held, visit)
	}
}

func scanStmt(info *types.Info, st ast.Stmt, held map[string]token.Pos, visit heldVisitor) {
	switch s := st.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if key, delta, ok := lockDelta(info, call); ok {
				if delta > 0 {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		visit(s.X, held)
	case *ast.DeferStmt:
		if _, delta, ok := lockDelta(info, s.Call); ok && delta < 0 {
			return // deferred unlock: held through the rest of the scope
		}
		visit(s.Call, held)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			visit(arg, held)
		}
	case *ast.BlockStmt:
		scanHeld(info, s.List, held, visit) // same scope: lock state persists
	case *ast.IfStmt:
		scanStmt(info, s.Init, held, visit)
		visit(s.Cond, held)
		scanHeld(info, s.Body.List, copyHeld(held), visit)
		if s.Else != nil {
			scanStmt(info, s.Else, copyHeld(held), visit)
		}
	case *ast.ForStmt:
		scanStmt(info, s.Init, held, visit)
		if s.Cond != nil {
			visit(s.Cond, held)
		}
		body := copyHeld(held)
		scanHeld(info, s.Body.List, body, visit)
		scanStmt(info, s.Post, body, visit)
	case *ast.RangeStmt:
		visit(rangeHeader{s.X}, held)
		scanHeld(info, s.Body.List, copyHeld(held), visit)
	case *ast.SwitchStmt:
		scanStmt(info, s.Init, held, visit)
		if s.Tag != nil {
			visit(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				visit(e, held)
			}
			scanHeld(info, cc.Body, copyHeld(held), visit)
		}
	case *ast.TypeSwitchStmt:
		scanStmt(info, s.Init, held, visit)
		scanStmt(info, s.Assign, held, visit)
		for _, c := range s.Body.List {
			scanHeld(info, c.(*ast.CaseClause).Body, copyHeld(held), visit)
		}
	case *ast.SelectStmt:
		visit(s, held) // the select itself is the blocking operation
		for _, c := range s.Body.List {
			scanHeld(info, c.(*ast.CommClause).Body, copyHeld(held), visit)
		}
	case *ast.LabeledStmt:
		scanStmt(info, s.Stmt, held, visit)
	default:
		// AssignStmt, SendStmt, ReturnStmt, IncDecStmt, DeclStmt,
		// BranchStmt, EmptyStmt: visit whole; expressions inside carry
		// any blocking constructs.
		visit(st, held)
	}
}

// inspectSkipFuncLit walks n like ast.Inspect but does not descend into
// function-literal bodies: a literal's body runs when it is invoked,
// not where it appears. The literal node itself is still visited.
func inspectSkipFuncLit(n ast.Node, f func(ast.Node) bool) {
	if rh, ok := n.(rangeHeader); ok {
		n = rh.X
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			f(n)
			return false
		}
		return f(n)
	})
}

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
