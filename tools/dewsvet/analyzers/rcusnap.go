package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/dewsvet/analysis"
)

// Rcusnap enforces the RCU (read-copy-update) discipline on
// atomic.Pointer fields annotated //dewsvet:rcu — the broker's topic
// trie being the canonical one:
//
//   - writers: .Store/.Swap/.CompareAndSwap only while a guard mutex is
//     held (or in a function that runs with the caller's lock by
//     convention), so concurrent updaters serialize on copy-on-write;
//   - readers on //dewsvet:hotpath functions: at most one .Load() per
//     field per function — two Loads can observe two different
//     generations of the structure mid-operation;
//   - nobody writes through a loaded snapshot: a value obtained from
//     .Load() is shared with every concurrent reader and frozen.
var Rcusnap = &analysis.Analyzer{
	Name: "rcusnap",
	Doc:  "RCU discipline on //dewsvet:rcu atomic.Pointer fields",
	Run:  runRcusnap,
}

func runRcusnap(pass *analysis.Pass) error {
	sup := newSuppressor(pass, "rcusnap")
	rcu := rcuFields(pass)
	if len(rcu) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if docHasMarker(fd.Doc, "dewsvet:rcusnap-ok") {
				continue
			}
			_, entry := heldAtEntry(fd)
			hot := docHasMarker(fd.Doc, "dewsvet:hotpath")
			checkRcuFunc(pass, sup, fd, rcu, entry, hot)
		}
	}
	return nil
}

// rcuFields collects struct fields annotated //dewsvet:rcu, requiring
// the sync/atomic.Pointer type that makes the discipline meaningful.
func rcuFields(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !docHasMarker(field.Doc, "dewsvet:rcu") && !docHasMarker(field.Comment, "dewsvet:rcu") {
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.Info.Defs[name].(*types.Var)
					if v == nil || !ok {
						continue
					}
					if !isAtomicPointer(v.Type()) {
						pass.Reportf(name.Pos(), "//dewsvet:rcu on %s, which is not a sync/atomic.Pointer", name.Name)
						continue
					}
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

func isAtomicPointer(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic" && n.Obj().Name() == "Pointer"
}

// rcuFieldAccess matches a call of the shape <expr>.<field>.<method>()
// where <field> is an annotated RCU field, returning the field and the
// atomic.Pointer method name.
func rcuFieldAccess(pass *analysis.Pass, call *ast.CallExpr, rcu map[*types.Var]bool) (field *types.Var, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	recv, isSel := unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, found := pass.Info.Selections[recv]
	if !found || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	v, isVar := s.Obj().(*types.Var)
	if !isVar || !rcu[v] {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

func checkRcuFunc(pass *analysis.Pass, sup *suppressor, fd *ast.FuncDecl, rcu map[*types.Var]bool, entryHeld, hot bool) {
	loads := make(map[*types.Var]int)     // per-field Load count (hot-path budget)
	snapVars := make(map[*types.Var]bool) // variables bound to a loaded snapshot

	// First sweep: classify every atomic.Pointer access on an RCU field
	// and record which variables hold loaded snapshots. Mutation ops
	// additionally need a mutex held, so they ride the held-tracking
	// walker.
	scanHeld(pass.Info, fd.Body.List, make(map[string]token.Pos), func(n ast.Node, held map[string]token.Pos) {
		inspectSkipFuncLit(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			field, method, ok := rcuFieldAccess(pass, call, rcu)
			if !ok {
				return true
			}
			switch method {
			case "Load":
				loads[field]++
				if hot && loads[field] > 1 {
					sup.report(pass, call.Pos(), "hot-path function %s Loads RCU field %s more than once; load one snapshot and reuse it", fd.Name.Name, field.Name())
				}
			case "Store", "Swap", "CompareAndSwap":
				if !entryHeld && len(held) == 0 {
					sup.report(pass, call.Pos(), "%s of RCU field %s without holding its guard mutex", method, field.Name())
				}
			}
			return true
		})
	})

	// Record snapshot variables: v := x.field.Load() in any assignment
	// shape (:=, =, if-init, ...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, method, ok := rcuFieldAccess(pass, call, rcu); !ok || method != "Load" {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := pass.Info.Defs[id].(*types.Var); ok && v != nil {
					snapVars[v] = true
				} else if v, ok := pass.Info.Uses[id].(*types.Var); ok && v != nil {
					snapVars[v] = true
				}
			}
		}
		return true
	})
	if len(snapVars) == 0 {
		return
	}

	// Second sweep: no writes through a loaded snapshot. The LHS chain
	// is unwrapped (selectors, indexing, dereference) to its root
	// identifier; rebinding the variable itself is fine, mutating what
	// it points at is not.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var lhss []ast.Expr
		var pos token.Pos
		switch x := n.(type) {
		case *ast.AssignStmt:
			lhss, pos = x.Lhs, x.TokPos
		case *ast.IncDecStmt:
			lhss, pos = []ast.Expr{x.X}, x.TokPos
		default:
			return true
		}
		for _, lhs := range lhss {
			root, depth := rootIdent(lhs)
			if root == nil || depth == 0 {
				continue
			}
			v, _ := pass.Info.Uses[root].(*types.Var)
			if v != nil && snapVars[v] {
				if sup.suppressed(pos) {
					continue
				}
				pass.Reportf(pos, "write through RCU snapshot %s; loaded snapshots are frozen — copy, modify, then Store the copy", root.Name)
			}
		}
		return true
	})
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier, reporting how many unwrap steps were taken.
func rootIdent(e ast.Expr) (*ast.Ident, int) {
	depth := 0
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, depth
		case *ast.SelectorExpr:
			e = x.X
			depth++
		case *ast.IndexExpr:
			e = x.X
			depth++
		case *ast.StarExpr:
			e = x.X
			depth++
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, depth
		}
	}
}
