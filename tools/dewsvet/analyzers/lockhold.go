package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/dewsvet/analysis"
)

// Lockhold flags blocking operations executed while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, select, sleeps,
// file/network I/O (including fsync), and invocations of user-supplied
// callbacks. Mutexes in this codebase guard short critical sections on
// hot paths (the broker's subscription table, the WAL sequencer, SSE
// frame caches); anything that can park the goroutine while holding one
// turns every other publisher into a convoy.
//
// Beyond direct operations, the analyzer propagates blockingness
// through package-local static calls: a function containing an
// unsuppressed blocking operation must not be called with a lock held
// either. Functions that run with the caller's lock by convention (a
// name ending in "Locked", or a doc comment saying "caller holds X")
// are analyzed as lock-held-from-entry and reported at their
// definition, not at every call site.
//
// Deliberate cases — the WAL sequencer's buffered-writer handoff,
// segment rotation under the log mutex — carry
// //dewsvet:lockhold-ok <reason> on the operation's line.
var Lockhold = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "blocking operation (I/O, channel, callback) while a mutex is held",
	Run:  runLockhold,
}

// knownBlockingCalls maps fully-qualified callees to a short reason.
// Entries cover the standard library surfaces this repository touches
// plus the repository's own cross-package blocking APIs (the WAL).
var knownBlockingCalls = map[string]string{
	// fsync and file I/O
	"(*os.File).Sync":        "fsync",
	"(*os.File).Write":       "file write",
	"(*os.File).WriteString": "file write",
	"(*os.File).WriteAt":     "file write",
	"(*os.File).Read":        "file read",
	"(*os.File).ReadAt":      "file read",
	"(*os.File).Truncate":    "file truncate",
	"(*os.File).Close":       "file close",
	"os.Open":                "file open",
	"os.OpenFile":            "file open",
	"os.Create":              "file create",
	"os.Remove":              "file remove",
	"os.RemoveAll":           "file remove",
	"os.Rename":              "file rename",
	"os.Mkdir":               "mkdir",
	"os.MkdirAll":            "mkdir",
	"os.ReadFile":            "file read",
	"os.WriteFile":           "file write",
	"os.ReadDir":             "directory read",
	"os.Stat":                "stat",
	"os.Lstat":               "stat",
	"path/filepath.Glob":     "directory scan",
	// buffered I/O that reaches the underlying file
	"(*bufio.Writer).Flush":       "buffered-writer flush",
	"(*bufio.Writer).Write":       "buffered write",
	"(*bufio.Writer).WriteString": "buffered write",
	"(*bufio.Reader).Read":        "buffered read",
	"(*bufio.Reader).ReadBytes":   "buffered read",
	"(*bufio.Reader).ReadString":  "buffered read",
	"io.Copy":                     "stream copy",
	"io.ReadAll":                  "stream read",
	"io.ReadFull":                 "stream read",
	// time and sync
	"time.Sleep":             "sleep",
	"(*sync.WaitGroup).Wait": "WaitGroup wait",
	// network
	"net.Dial":                  "network dial",
	"net.DialTimeout":           "network dial",
	"net.Listen":                "network listen",
	"(*net.Dialer).Dial":        "network dial",
	"(*net.Dialer).DialContext": "network dial",
	"(net.Conn).Read":           "network read",
	"(net.Conn).Write":          "network write",
	"(net.Listener).Accept":     "network accept",
	"(*net/http.Client).Do":     "HTTP round trip",
	"(*net/http.Client).Get":    "HTTP round trip",
	"(*net/http.Client).Post":   "HTTP round trip",
	"net/http.Get":              "HTTP round trip",
	"net/http.Post":             "HTTP round trip",
	// HTTP response writing (the SSE fan-out surface)
	"(net/http.ResponseWriter).Write": "HTTP response write",
	"(net/http.Flusher).Flush":        "HTTP response flush",
	// this repository's durable APIs: every one reaches the WAL file
	"(*repro/internal/eventlog.Log).Append":         "WAL append",
	"(*repro/internal/eventlog.Log).AppendBatch":    "WAL append",
	"(*repro/internal/eventlog.Log).Sync":           "WAL fsync",
	"(*repro/internal/eventlog.Log).Scan":           "WAL scan",
	"(*repro/internal/eventlog.Log).ScanFrom":       "WAL scan",
	"(*repro/internal/eventlog.Log).Rotate":         "WAL rotation",
	"(*repro/internal/eventlog.Log).TruncateBefore": "WAL truncation",
	"(*repro/internal/eventlog.Log).Compact":        "WAL compaction",
	"(*repro/internal/eventlog.Log).Close":          "WAL close",
}

func runLockhold(pass *analysis.Pass) error {
	sup := newSuppressor(pass, "lockhold")

	// Pass 1: which package-local functions contain an unsuppressed
	// blocking operation? Allowlisted operations deliberately do not
	// propagate — one reasoned //dewsvet:lockhold-ok at the operation
	// blesses the callers that hold the lock by design (the sequencer
	// handoff pattern). Lock-held-at-entry functions are reported at
	// their own definition and excluded from propagation so one root
	// cause yields one finding.
	type fnDecl struct {
		decl  *ast.FuncDecl
		obj   *types.Func
		entry string // lock key when held at entry
	}
	var fns []fnDecl
	blocking := make(map[*types.Func]string) // func → why it blocks
	entryHeld := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := funcObj(pass.Info, fd)
			if obj == nil {
				continue
			}
			entry := ""
			if key, ok := heldAtEntry(fd); ok {
				entry = key
				entryHeld[obj] = true
			}
			fns = append(fns, fnDecl{fd, obj, entry})
			if docHasMarker(fd.Doc, "dewsvet:lockhold-ok") {
				continue // whole function allowlisted: neither reported nor propagated
			}
			if why, pos := firstBlockingOp(pass, sup, fd); pos.IsValid() {
				if entry == "" {
					blocking[obj] = why
				}
			}
		}
	}

	// Fixpoint: calling a blocking function makes the caller blocking.
	calls := make(map[*types.Func]map[*types.Func]bool)
	for _, fn := range fns {
		inspectSkipFuncLit(fn.decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false // go f() does not block the spawner
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass.Info, call)
			if callee == nil || callee.Pkg() != pass.Pkg || sup.suppressed(call.Pos()) {
				return true
			}
			m := calls[fn.obj]
			if m == nil {
				m = make(map[*types.Func]bool)
				calls[fn.obj] = m
			}
			m[callee] = true
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if _, ok := blocking[fn.obj]; ok || fn.entry != "" {
				continue
			}
			if docHasMarker(fn.decl.Doc, "dewsvet:lockhold-ok") {
				continue
			}
			for callee := range calls[fn.obj] {
				if entryHeld[callee] {
					continue
				}
				if why, ok := blocking[callee]; ok {
					blocking[fn.obj] = "calls " + callee.Name() + ": " + rootWhy(why)
					changed = true
					break
				}
			}
		}
	}

	// Pass 2: report blocking constructs reached while a lock is held.
	for _, fn := range fns {
		if docHasMarker(fn.decl.Doc, "dewsvet:lockhold-ok") {
			continue
		}
		entryLocks := make(map[string]token.Pos)
		if fn.entry != "" {
			entryLocks[fn.entry] = fn.decl.Pos()
		}
		cur := fn.obj
		scanHeld(pass.Info, fn.decl.Body.List, entryLocks, func(n ast.Node, held map[string]token.Pos) {
			if len(held) == 0 {
				return
			}
			lock := heldKeys(held)
			checkBlockingNode(pass, sup, n, lock, cur, blocking, entryHeld)
		})
	}
	return nil
}

// rootWhy strips nested "calls f: " prefixes so propagated messages
// stay readable ("calls g: fsync" rather than "calls g: calls h: fsync").
func rootWhy(why string) string {
	for {
		rest, ok := strings.CutPrefix(why, "calls ")
		if !ok {
			return why
		}
		_, after, found := strings.Cut(rest, ": ")
		if !found {
			return why
		}
		why = after
	}
}

func heldKeys(held map[string]token.Pos) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// firstBlockingOp scans a function body for any unsuppressed blocking
// construct, ignoring where locks are held; used to seed propagation.
func firstBlockingOp(pass *analysis.Pass, sup *suppressor, fd *ast.FuncDecl) (why string, at token.Pos) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if at.IsValid() {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false // a literal blocks its invoker, not its definer
		case *ast.GoStmt:
			return false // a spawned goroutine blocks itself, not fd
		}
		if w, pos, ok := directBlocking(pass, n); ok && !sup.suppressed(pos) {
			why, at = w, pos
			return false
		}
		return true
	})
	return why, at
}

// directBlocking classifies one node as an intrinsically blocking
// construct.
func directBlocking(pass *analysis.Pass, n ast.Node) (why string, pos token.Pos, ok bool) {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send", x.Arrow, true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive", x.OpPos, true
		}
	case *ast.SelectStmt:
		return "select", x.Select, true
	case *ast.CallExpr:
		if callee := staticCallee(pass.Info, x); callee != nil {
			if reason, known := knownBlockingCalls[callee.FullName()]; known {
				return "blocking call to " + callee.FullName() + " (" + reason + ")", x.Pos(), true
			}
		} else if name, dyn := dynamicCallee(pass.Info, x); dyn {
			return "call of function value " + name + " (user callback)", x.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// checkBlockingNode reports blocking constructs inside n, which
// executes while lock is held. cur is the enclosing function (so
// self-recursion is not reported via propagation).
func checkBlockingNode(pass *analysis.Pass, sup *suppressor, n ast.Node, lock string, cur *types.Func, blocking map[*types.Func]string, entryHeld map[*types.Func]bool) {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if rh, ok := n.(rangeHeader); ok {
			// range over a channel blocks like a receive.
			if t := pass.Info.TypeOf(rh.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					sup.report(pass, rh.Pos(), "range over channel while %s is held", lock)
				}
			}
			visit(rh.X)
			return
		}
		// A select passed straight from scanHeld: report the construct
		// here; scanHeld visits the clause bodies separately.
		if sel, ok := n.(*ast.SelectStmt); ok {
			sup.report(pass, sel.Select, "select while %s is held", lock)
			return
		}
		inspectSkipFuncLit(n, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				for _, arg := range g.Call.Args {
					visit(arg)
				}
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				// An immediately-invoked literal runs here, under the lock.
				if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
					for _, arg := range call.Args {
						visit(arg)
					}
					visit(lit.Body)
					return false
				}
				if callee := staticCallee(pass.Info, call); callee != nil && callee != cur {
					if why, ok := blocking[callee]; ok && !entryHeld[callee] && callee.Pkg() == pass.Pkg {
						sup.report(pass, call.Pos(), "call to %s, which blocks (%s), while %s is held", callee.Name(), rootWhy(why), lock)
						return true
					}
				}
			}
			if why, pos, ok := directBlocking(pass, n); ok {
				sup.report(pass, pos, "%s while %s is held", why, lock)
				if _, isSel := n.(*ast.SelectStmt); isSel {
					return false // its cases are part of the same finding
				}
			}
			return true
		})
	}
	visit(n)
}
