package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/dewsvet/analysis"
)

// Hotalloc reports constructs that force heap allocations inside
// functions annotated //dewsvet:hotpath, locking in the alloc/op
// budgets the publish and append paths were benchmarked to (1–2
// allocs/op): map/slice/channel literals and makes, closure literals,
// any call into package fmt, non-constant string concatenation, and
// concrete-to-interface argument conversions (boxing).
//
// Deliberate allocations — a batch-sized scratch slice amortized over
// its batch, a closure that the escape analysis keeps on the stack —
// carry //dewsvet:hotalloc-ok <reason> on their line.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "heap-allocating construct in a //dewsvet:hotpath function",
	Run:  runHotalloc,
}

func runHotalloc(pass *analysis.Pass) error {
	sup := newSuppressor(pass, "hotalloc")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHasMarker(fd.Doc, "dewsvet:hotpath") {
				continue
			}
			if docHasMarker(fd.Doc, "dewsvet:hotalloc-ok") {
				continue
			}
			checkHotFunc(pass, sup, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, sup *suppressor, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			sup.report(pass, x.Pos(), "closure literal allocates on the hot path")
			return false // the body runs when invoked, not here
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				sup.report(pass, x.Pos(), "map literal allocates on the hot path")
			case *types.Slice:
				sup.report(pass, x.Pos(), "slice literal allocates on the hot path")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := pass.Info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := pass.Info.Types[x]; ok && tv.Value == nil {
							sup.report(pass, x.Pos(), "string concatenation allocates on the hot path")
							return false // report a chain once, not per '+'
						}
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, sup, x)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, sup *suppressor, call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Conversion to an interface type boxes its operand.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			sup.report(pass, call.Pos(), "conversion to interface type %s allocates (boxing) on the hot path", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}

	// make(map/chan/[]T) allocate; len/cap/append and friends do not
	// (append's growth is the slice's amortized cost, not a new one).
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" && len(call.Args) > 0 {
				if t := pass.Info.TypeOf(call.Args[0]); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						sup.report(pass, call.Pos(), "make(map) allocates on the hot path")
					case *types.Chan:
						sup.report(pass, call.Pos(), "make(chan) allocates on the hot path")
					case *types.Slice:
						sup.report(pass, call.Pos(), "make(slice) allocates on the hot path")
					}
				}
			}
			return
		}
	}

	// Any call into package fmt allocates (reflection, boxing, buffer).
	if callee := staticCallee(pass.Info, call); callee != nil {
		if p := callee.Pkg(); p != nil && p.Path() == "fmt" {
			sup.report(pass, call.Pos(), "fmt.%s allocates on the hot path", callee.Name())
			return
		}
	}

	// Concrete values passed to interface parameters are boxed.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		sup.report(pass, arg.Pos(), "argument %s is boxed into interface %s on the hot path", types.ExprString(arg), types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}
