// Package cep is the wralerr scoping fixture: type-checked under a
// non-durability-critical import path, so nothing is reported.
package cep

import "os"

func teardown(f *os.File) {
	f.Close()
}
