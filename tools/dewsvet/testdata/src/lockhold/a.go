// Package lockhold is the golden fixture for the lockhold analyzer.
package lockhold

import (
	"os"
	"sync"
	"time"
)

// S pairs mutexes with blocking surfaces: a file, a callback, a channel.
type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	f   *os.File
	cb  func() error
	ch  chan int
	buf []byte
}

func (s *S) directSync() {
	s.mu.Lock()
	s.f.Sync() // want `blocking call to \(\*os\.File\)\.Sync \(fsync\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) deferHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while s\.mu is held`
	return 0
}

func (s *S) send() {
	s.rw.Lock()
	s.ch <- 1 // want `channel send while s\.rw is held`
	s.rw.Unlock()
}

func (s *S) rlockSelect() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // want `select while s\.rw is held`
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *S) callback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep \(sleep\) while s\.mu is held`
	return s.cb()                // want `call of function value s\.cb \(user callback\) while s\.mu is held`
}

func (s *S) waits(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `blocking call to \(\*sync\.WaitGroup\)\.Wait \(WaitGroup wait\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) drains() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `range over channel while s\.mu is held`
		_ = v
	}
}

func (s *S) iife() {
	s.mu.Lock()
	func() {
		s.f.Sync() // want `blocking call to \(\*os\.File\)\.Sync \(fsync\) while s\.mu is held`
	}()
	s.mu.Unlock()
}

// unlockedOK: the blocking work happens after the critical section.
func (s *S) unlockedOK() {
	s.mu.Lock()
	n := len(s.buf)
	s.mu.Unlock()
	_ = n
	s.f.Sync()
}

// branch: a lock acquired and released inside a branch does not leak.
func (s *S) branch(cond bool) {
	if cond {
		s.mu.Lock()
		s.buf = nil
		s.mu.Unlock()
	}
	s.f.Sync()
}

// spawns: a goroutine does not inherit the spawner's lock.
func (s *S) spawns() {
	s.mu.Lock()
	go s.doSync()
	s.mu.Unlock()
}

// funcLitNotHere: a literal's body blocks its invoker, not its definer.
func (s *S) funcLitNotHere() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { s.f.Sync() }
}

// handoff: a reasoned allowlist comment on the line suppresses.
func (s *S) handoff() {
	s.mu.Lock()
	s.f.Sync() //dewsvet:lockhold-ok deliberate sequencer handoff
	s.mu.Unlock()
}

// mailboxSpin drains under the ring lock by design.
//
//dewsvet:lockhold-ok mailbox ring op, bounded by capacity
func (s *S) mailboxSpin() {
	s.mu.Lock()
	s.f.Sync()
	s.mu.Unlock()
}

func (s *S) doSync() {
	s.f.Sync()
}

// propagated: calling a function that blocks is as bad as blocking.
func (s *S) propagated() {
	s.mu.Lock()
	s.doSync() // want `call to doSync, which blocks .* while s\.mu is held`
	s.mu.Unlock()
}

// flushLocked runs with the caller's lock (name convention): its own
// blocking op is reported here, once, not at every call site.
func (s *S) flushLocked() {
	s.f.Sync() // want `blocking call to \(\*os\.File\)\.Sync \(fsync\) while the caller's lock is held`
}

func (s *S) callerOfLocked() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// sealSegment rotates the file. Caller holds s.mu.
func (s *S) sealSegment() {
	s.f.Sync() // want `blocking call to \(\*os\.File\)\.Sync \(fsync\) while s\.mu is held`
}

// ringPush hands the frame over deliberately; the allowlisted op must
// not propagate blockingness to callers holding the lock.
func (s *S) ringPush() {
	s.f.Sync() //dewsvet:lockhold-ok ring handoff is bounded
}

func (s *S) callsRingPush() {
	s.mu.Lock()
	s.ringPush()
	s.mu.Unlock()
}
