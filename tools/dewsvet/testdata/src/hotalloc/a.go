// Package hotalloc is the golden fixture for the hotalloc analyzer.
package hotalloc

import "fmt"

func consume(v any) { _ = v }

//dewsvet:hotpath
func hot(xs []int, name string) string {
	m := map[int]bool{} // want `map literal allocates`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates`
	_ = sl
	mm := make(map[string]int) // want `make\(map\) allocates`
	_ = mm
	ch := make(chan int, 1) // want `make\(chan\) allocates`
	_ = ch
	bs := make([]byte, 8) // want `make\(slice\) allocates`
	_ = bs
	s := fmt.Sprintf("%d", len(xs)) // want `fmt\.Sprintf allocates`
	_ = s
	f := func() int { return 1 } // want `closure literal allocates`
	_ = f
	consume(42)       // want `argument 42 is boxed into interface`
	return name + "!" // want `string concatenation allocates`
}

// cold has no hotpath annotation: nothing is reported.
func cold(name string) string {
	m := map[int]bool{}
	_ = m
	return name + "!"
}

//dewsvet:hotpath
func hotAllowed(n int) []int {
	out := make([]int, n) //dewsvet:hotalloc-ok amortized over the batch
	return out
}

// hotClean stays within the alloc budget: append into caller-owned
// capacity, constant concatenation, interface-typed pass-through.
//
//dewsvet:hotpath
func hotClean(dst []byte, v any) []byte {
	const suffix = "a" + "b" // constant concat folds at compile time
	consume(v)               // already an interface: no boxing
	dst = append(dst, suffix...)
	return dst
}
