// Package rcusnap is the golden fixture for the rcusnap analyzer.
package rcusnap

import (
	"sync"
	"sync/atomic"
)

type node struct {
	next *node
	val  int
}

// B publishes an RCU pointer guarded by mu.
type B struct {
	mu sync.Mutex
	// index is the RCU-published root.
	//dewsvet:rcu
	index atomic.Pointer[node]
	// plain carries no annotation: no discipline enforced.
	plain atomic.Pointer[node]
}

func (b *B) goodStore(n *node) {
	b.mu.Lock()
	b.index.Store(n)
	b.mu.Unlock()
}

func (b *B) badStore(n *node) {
	b.index.Store(n) // want `Store of RCU field index without holding its guard mutex`
}

func (b *B) badCAS(old, n *node) {
	b.index.CompareAndSwap(old, n) // want `CompareAndSwap of RCU field index without holding its guard mutex`
}

// swapLocked installs n; caller holds b.mu.
func (b *B) swapLocked(n *node) {
	b.index.Store(n)
}

func (b *B) plainStore(n *node) {
	b.plain.Store(n)
}

// hotDouble violates the one-snapshot rule: the two Loads can observe
// two different generations.
//
//dewsvet:hotpath
func (b *B) hotDouble() int {
	a := b.index.Load()
	c := b.index.Load() // want `hot-path function hotDouble Loads RCU field index more than once`
	if a == nil || c == nil {
		return 0
	}
	return a.val + c.val
}

// coldDouble is not hot-path annotated: the Load budget does not apply.
func (b *B) coldDouble() int {
	a := b.index.Load()
	c := b.index.Load()
	if a == nil || c == nil {
		return 0
	}
	return a.val + c.val
}

//dewsvet:hotpath
func (b *B) hotSingle() int {
	root := b.index.Load()
	if root == nil {
		return 0
	}
	return root.val
}

func (b *B) writeThrough() {
	s := b.index.Load()
	s.val = 1 // want `write through RCU snapshot s`
	b.mu.Lock()
	b.index.Store(s)
	b.mu.Unlock()
}

// rebind: reassigning the snapshot variable itself walks the structure
// and is fine; only writes through it are mutations.
func (b *B) rebind() int {
	s := b.index.Load()
	for s != nil && s.next != nil {
		s = s.next
	}
	if s == nil {
		return 0
	}
	return s.val
}

func (b *B) allowlisted() {
	s := b.index.Load()
	//dewsvet:rcusnap-ok single-owner before first publish
	s.val = 2
}
