// Package eventlog is the golden fixture for the wralerr analyzer; the
// harness type-checks it under the durability-critical import path
// repro/internal/eventlog.
package eventlog

import (
	"bufio"
	"os"
)

func bad(f *os.File) {
	f.Close() // want `result of \(\*os\.File\)\.Close is discarded`
}

func badFlush(w *bufio.Writer) {
	w.Flush() // want `result of \(\*bufio\.Writer\)\.Flush is discarded`
}

func badWrite(f *os.File, b []byte) {
	f.Write(b) // want `result of \(\*os\.File\)\.Write is discarded`
}

func deferred(f *os.File) error {
	defer f.Close() // want `deferred \(\*os\.File\)\.Close discards its error`
	return nil
}

func checked(f *os.File) error {
	return f.Close()
}

func acknowledged(f *os.File) {
	_ = f.Close()
}

func allowlisted(f *os.File) {
	f.Close() //dewsvet:wralerr-ok read-only handle, nothing to lose
}

type noErr struct{}

func (noErr) Flush() {}

// flushNoError: no error result means nothing can be swallowed.
func flushNoError(n noErr) {
	n.Flush()
}
