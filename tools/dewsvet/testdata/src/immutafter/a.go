// Package immutafter is the golden fixture for the immutafter
// analyzer; this file declares the immutable type and its constructor.
package immutafter

// frame is published to concurrent readers after construction.
//
//dewsvet:immutable
type frame struct {
	n    int
	data []byte
	next *frame
}

// mutable carries no annotation.
type mutable struct{ n int }

func newFrame(n int) *frame {
	f := &frame{n: n, data: make([]byte, n)}
	f.n++ // declaring file: construction may mutate
	return f
}
