package immutafter

func mutate(f *frame) {
	f.n = 2       // want `write to field n of immutable type frame`
	f.data[0] = 1 // want `write to field data of immutable type frame`
	f.next.n++    // want `write to field n of immutable type frame`
}

// construct: composite literals are construction, legal anywhere.
func construct(n int) *frame {
	return &frame{n: n}
}

func mutateOther(m *mutable) {
	m.n = 3
}

func allowlisted(f *frame) {
	//dewsvet:immutafter-ok test fixture, unpublished single-owner value
	f.n = 9
}
