// Command benchguard compares `go test -bench` output against a
// committed BENCH_pr*.json baseline and exits non-zero when any shared
// benchmark's ns/op regressed beyond the allowed percentage. CI runs it
// after the hot-path benchmark smoke so a codec or broker change cannot
// silently give back the performance this repo's perf PRs bought.
//
// Usage:
//
//	go test -run xxx -bench ... -benchmem ./... > bench.out
//	go run ./tools/benchguard -baseline BENCH_pr4.json -max-regress 25 bench.out
//
// Only benchmarks present in both the baseline and the output are
// compared (the baseline also records experiment benchmarks the smoke
// does not rerun); an empty intersection is an error so a mistyped
// -bench pattern cannot pass vacuously.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	PR         int    `json:"pr"`
	Note       string `json:"note"`
	Benchmarks []struct {
		Pkg      string  `json:"pkg"`
		Name     string  `json:"name"`
		NsPerOp  float64 `json:"ns_per_op"`
		BytesPer int64   `json:"bytes_per_op"`
		Allocs   int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkAppend-8   1697505   627.7 ns/op   16 B/op   1 allocs/op
//
// The -<procs> suffix is optional (absent when GOMAXPROCS is 1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_pr*.json (required)")
	maxRegress := flag.Float64("max-regress", 25, "fail when ns/op regresses more than this percentage")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline BENCH_prN.json [-max-regress pct] bench.out...")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	want := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		want[b.Name] = b.NsPerOp
	}

	got := make(map[string]float64)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			// Keep the fastest observation when a benchmark appears more
			// than once (CI runs each with -count=3): shared runners are
			// noisy in one direction only — a machine can be slowed by a
			// noisy neighbor but not sped up — so min-of-N is the least
			// noisy estimate of what the code can do, and the 25%
			// headroom absorbs residual hardware differences from the
			// committed baseline.
			if prev, ok := got[m[1]]; !ok || ns < prev {
				got[m[1]] = ns
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}

	compared, failed := 0, 0
	for name, baseNs := range want {
		ns, ok := got[name]
		if !ok {
			continue
		}
		compared++
		delta := 100 * (ns - baseNs) / baseNs
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%-44s baseline %10.1f ns/op  now %10.1f ns/op  %+6.1f%%  %s\n",
			name, baseNs, ns, delta, status)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmark in %v matched the baseline — check the -bench pattern", flag.Args()))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d benchmarks regressed more than %.0f%%", failed, compared, *maxRegress))
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of %s\n", compared, *maxRegress, *baselinePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
