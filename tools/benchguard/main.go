// Command benchguard compares `go test -bench` output against a
// committed BENCH_pr*.json baseline and exits non-zero when any shared
// benchmark's ns/op regressed beyond the allowed percentage. CI runs it
// after the hot-path benchmark smoke so a codec or broker change cannot
// silently give back the performance this repo's perf PRs bought.
//
// Usage:
//
//	go test -run xxx -bench ... -benchmem ./... > bench.out
//	go run ./tools/benchguard -baseline BENCH_pr4.json -max-regress 25 bench.out
//
// Only benchmarks present in both the baseline and the output are
// compared (the baseline also records experiment benchmarks the smoke
// does not rerun). The matched and missing counts are always printed —
// a baseline benchmark absent from the output is a gate that silently
// stopped gating — and -require <regexp> turns absence into failure for
// the benchmarks CI is expected to rerun. An empty intersection is
// always an error so a mistyped -bench pattern cannot pass vacuously.
//
// Load mode gates a cmd/dewsload report instead of micro-benchmarks:
//
//	go run ./tools/benchguard -load BENCH_load_ci.json -load-baseline BENCH_load_smoke.json
//
// It fails when the report's own oracles failed (passed=false), when
// steady throughput fell below -min-throughput-frac of the configured
// offered rate, or — when a baseline with an identical load config is
// given — when throughput dropped or end-to-end p99 grew by more than
// -max-regress percent versus that baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strconv"
)

type baseline struct {
	PR         int    `json:"pr"`
	Note       string `json:"note"`
	Benchmarks []struct {
		Pkg      string  `json:"pkg"`
		Name     string  `json:"name"`
		NsPerOp  float64 `json:"ns_per_op"`
		BytesPer int64   `json:"bytes_per_op"`
		Allocs   int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkAppend-8   1697505   627.7 ns/op   16 B/op   1 allocs/op
//
// The -<procs> suffix is optional (absent when GOMAXPROCS is 1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// loadReport mirrors the parts of cmd/dewsload's dewsload/v1 report
// that the gate reads. Unknown fields are ignored so the gate tolerates
// report additions without a lockstep update.
type loadReport struct {
	Schema string         `json:"schema"`
	Mode   string         `json:"mode"`
	Config map[string]any `json:"config"`
	Passed bool           `json:"passed"`
	Steady *loadPhase     `json:"steady"`
	Chaos  *struct {
		Passed   bool     `json:"passed"`
		Failures []string `json:"failures"`
	} `json:"chaos"`
}

type loadPhase struct {
	ThroughputEPS float64 `json:"throughput_eps"`
	Subscribers   []struct {
		Kind string `json:"kind"`
		E2E  struct {
			P99ms float64 `json:"p99_ms"`
		} `json:"e2e"`
	} `json:"subscribers"`
}

// worstP99 is the slowest subscriber kind's end-to-end p99 — the
// number a "millions of users" claim lives or dies on.
func (p *loadPhase) worstP99() float64 {
	var worst float64
	for _, s := range p.Subscribers {
		if s.E2E.P99ms > worst {
			worst = s.E2E.P99ms
		}
	}
	return worst
}

func readLoadReport(path string) (*loadReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r loadReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if r.Schema != "dewsload/v1" {
		return nil, fmt.Errorf("%s: schema %q, want dewsload/v1", path, r.Schema)
	}
	return &r, nil
}

// gateLoad applies the load-report checks and exits on failure.
func gateLoad(reportPath, baselinePath string, minFrac, maxRegress float64) {
	rep, err := readLoadReport(reportPath)
	if err != nil {
		fatal(err)
	}
	if !rep.Passed {
		if rep.Chaos != nil && !rep.Chaos.Passed {
			fatal(fmt.Errorf("%s: chaos oracles failed: %v", reportPath, rep.Chaos.Failures))
		}
		fatal(fmt.Errorf("%s: report marked passed=false", reportPath))
	}
	if rep.Steady == nil {
		fatal(fmt.Errorf("%s: no steady phase to gate", reportPath))
	}
	rate, _ := rep.Config["rate_eps"].(float64)
	if rate > 0 {
		floor := minFrac * rate
		if rep.Steady.ThroughputEPS < floor {
			fatal(fmt.Errorf("steady throughput %.1f eps below %.0f%% of offered %.0f eps",
				rep.Steady.ThroughputEPS, 100*minFrac, rate))
		}
		fmt.Printf("load: throughput %.1f eps (offered %.0f, floor %.1f)  p99 %.1f ms  ok\n",
			rep.Steady.ThroughputEPS, rate, floor, rep.Steady.worstP99())
	}
	if baselinePath == "" {
		fmt.Printf("benchguard: %s passed (no load baseline)\n", reportPath)
		return
	}
	base, err := readLoadReport(baselinePath)
	if err != nil {
		fatal(err)
	}
	if !reflect.DeepEqual(rep.Config, base.Config) {
		// A different workload makes deltas meaningless; the absolute
		// checks above already ran, so warn rather than fail.
		fmt.Printf("benchguard: load configs differ between %s and %s — skipping baseline comparison\n",
			reportPath, baselinePath)
		return
	}
	if base.Steady == nil {
		fatal(fmt.Errorf("%s: baseline has no steady phase", baselinePath))
	}
	tputDrop := 100 * (base.Steady.ThroughputEPS - rep.Steady.ThroughputEPS) / base.Steady.ThroughputEPS
	fmt.Printf("load vs baseline: throughput %.1f -> %.1f eps (%+.1f%%)\n",
		base.Steady.ThroughputEPS, rep.Steady.ThroughputEPS, -tputDrop)
	if tputDrop > maxRegress {
		fatal(fmt.Errorf("steady throughput dropped %.1f%% vs %s (max %.0f%%)", tputDrop, baselinePath, maxRegress))
	}
	if baseP99, nowP99 := base.Steady.worstP99(), rep.Steady.worstP99(); baseP99 > 0 {
		grow := 100 * (nowP99 - baseP99) / baseP99
		fmt.Printf("load vs baseline: worst e2e p99 %.1f -> %.1f ms (%+.1f%%)\n", baseP99, nowP99, grow)
		if grow > maxRegress {
			fatal(fmt.Errorf("e2e p99 grew %.1f%% vs %s (max %.0f%%)", grow, baselinePath, maxRegress))
		}
	}
	fmt.Printf("benchguard: %s within %.0f%% of %s\n", reportPath, maxRegress, baselinePath)
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_pr*.json (required unless -load)")
	maxRegress := flag.Float64("max-regress", 25, "fail when ns/op (or load throughput/p99) regresses more than this percentage")
	loadPath := flag.String("load", "", "gate a cmd/dewsload BENCH_load report instead of bench output")
	loadBaseline := flag.String("load-baseline", "", "committed dewsload report to compare -load against (same config)")
	minTputFrac := flag.Float64("min-throughput-frac", 0.5, "with -load: fail when steady throughput is below this fraction of the offered rate")
	requirePat := flag.String("require", "", "regexp of baseline benchmark names that must appear in the bench output; a missing one fails the gate")
	flag.Parse()
	var require *regexp.Regexp
	if *requirePat != "" {
		var err error
		if require, err = regexp.Compile(*requirePat); err != nil {
			fatal(fmt.Errorf("bad -require regexp: %w", err))
		}
	}
	if *loadPath != "" {
		gateLoad(*loadPath, *loadBaseline, *minTputFrac, *maxRegress)
		return
	}
	if *baselinePath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline BENCH_prN.json [-max-regress pct] bench.out...")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	want := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		want[b.Name] = b.NsPerOp
	}

	got := make(map[string]float64)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			// Keep the fastest observation when a benchmark appears more
			// than once (CI runs each with -count=3): shared runners are
			// noisy in one direction only — a machine can be slowed by a
			// noisy neighbor but not sped up — so min-of-N is the least
			// noisy estimate of what the code can do, and the 25%
			// headroom absorbs residual hardware differences from the
			// committed baseline.
			if prev, ok := got[m[1]]; !ok || ns < prev {
				got[m[1]] = ns
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}

	if err := gateBench(os.Stdout, want, got, *maxRegress, require, *baselinePath); err != nil {
		fatal(err)
	}
}

// gateBench compares the measured ns/op against the baseline, printing
// one line per compared benchmark (in name order) plus the matched and
// missing counts. It fails on any regression beyond maxRegress, on an
// empty intersection, and on a missing baseline benchmark whose name
// matches require — a benchmark CI rebuilds every run must not be able
// to vanish from the gate by being renamed or skipped.
func gateBench(w io.Writer, want, got map[string]float64, maxRegress float64, require *regexp.Regexp, baselinePath string) error {
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)

	compared, failed := 0, 0
	var missing []string
	for _, name := range names {
		baseNs := want[name]
		ns, ok := got[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		compared++
		delta := 100 * (ns - baseNs) / baseNs
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			failed++
		}
		fmt.Fprintf(w, "%-44s baseline %10.1f ns/op  now %10.1f ns/op  %+6.1f%%  %s\n",
			name, baseNs, ns, delta, status)
	}
	fmt.Fprintf(w, "benchguard: %d of %d baseline benchmarks matched, %d missing from the output\n",
		compared, len(want), len(missing))
	if len(missing) > 0 {
		fmt.Fprintf(w, "benchguard: missing: %v\n", missing)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark in the output matched the baseline — check the -bench pattern")
	}
	if require != nil {
		var gone []string
		for _, name := range missing {
			if require.MatchString(name) {
				gone = append(gone, name)
			}
		}
		if len(gone) > 0 {
			return fmt.Errorf("required benchmarks missing from the output: %v (renamed or skipped — the gate would silently stop gating them)", gone)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed more than %.0f%%", failed, compared, maxRegress)
	}
	fmt.Fprintf(w, "benchguard: %d benchmarks within %.0f%% of %s\n", compared, maxRegress, baselinePath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
