package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestGateBenchReportsMissing: a baseline benchmark absent from the
// bench output must be counted and named, never silently skipped
// (regression: the gate used to pass as long as one benchmark matched,
// so renaming a hot-path benchmark un-gated it without a trace).
func TestGateBenchReportsMissing(t *testing.T) {
	want := map[string]float64{
		"BenchmarkAppend":  100,
		"BenchmarkPublish": 200,
	}
	got := map[string]float64{"BenchmarkAppend": 90}
	var out strings.Builder
	if err := gateBench(&out, want, got, 25, nil, "BENCH.json"); err != nil {
		t.Fatalf("gateBench without -require: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "1 of 2 baseline benchmarks matched, 1 missing") {
		t.Errorf("report lacks matched/missing counts:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkPublish") {
		t.Errorf("report does not name the missing benchmark:\n%s", report)
	}
}

// TestGateBenchRequire: with -require, a matching baseline benchmark
// missing from the output fails the gate outright.
func TestGateBenchRequire(t *testing.T) {
	want := map[string]float64{
		"BenchmarkAppend":  100,
		"BenchmarkPublish": 200,
	}
	got := map[string]float64{"BenchmarkAppend": 90}
	re := regexp.MustCompile(`^BenchmarkPublish$`)
	var out strings.Builder
	err := gateBench(&out, want, got, 25, re, "BENCH.json")
	if err == nil {
		t.Fatal("gateBench passed with a required benchmark missing")
	}
	if !strings.Contains(err.Error(), "BenchmarkPublish") {
		t.Errorf("error does not name the missing benchmark: %v", err)
	}

	// A required benchmark that is present keeps the gate green.
	got["BenchmarkPublish"] = 210
	out.Reset()
	if err := gateBench(&out, want, got, 25, re, "BENCH.json"); err != nil {
		t.Fatalf("gateBench with required benchmark present: %v", err)
	}
}

// TestGateBenchRegression: the regression check itself still fires.
func TestGateBenchRegression(t *testing.T) {
	want := map[string]float64{"BenchmarkAppend": 100}
	got := map[string]float64{"BenchmarkAppend": 140}
	var out strings.Builder
	if err := gateBench(&out, want, got, 25, nil, "BENCH.json"); err == nil {
		t.Fatal("gateBench passed a 40%% regression with max 25%%")
	}
	// Empty intersection is an error even without -require.
	if err := gateBench(&out, want, map[string]float64{}, 25, nil, "BENCH.json"); err == nil {
		t.Fatal("gateBench passed an empty intersection")
	}
}
