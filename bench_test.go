// Package repro's root bench harness regenerates every experiment. The
// paper (a position paper) has no quantitative tables; its three figures
// are architecture diagrams, so each figure becomes an executable
// pipeline benchmark (F1–F3) and each testable prose claim becomes a
// measured experiment (C1–C7). Run:
//
//	go test -bench=. -benchmem
//
// ARCHITECTURE.md describes the three-tier pipeline the F-series
// benchmarks exercise.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/dews"
	"repro/internal/dissemination"
	"repro/internal/eventlog"
	"repro/internal/forecast"
	"repro/internal/ik"
	"repro/internal/mediator"
	"repro/internal/ontology"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/wsn"
)

// --- EXP-F1: Figure 1, the ontology library ---

// BenchmarkF1OntologyClosure measures building the complete unified
// ontology library (DOLCE + SSN + drought domain) and materializing its
// entailment closure — the load the ontology segment layer carries at
// startup.
func BenchmarkF1OntologyClosure(b *testing.B) {
	var stats ontology.Stats
	for i := 0; i < b.N; i++ {
		o, res, err := drought.BuildMaterialized()
		if err != nil {
			b.Fatal(err)
		}
		if res.Added == 0 {
			b.Fatal("no entailments")
		}
		stats = o.Stats()
	}
	b.ReportMetric(float64(stats.Classes), "classes")
	b.ReportMetric(float64(stats.Triples), "triples")
}

// BenchmarkF1Classification measures DOLCE classification of observed
// properties (the annotator's hot path through the class hierarchy).
func BenchmarkF1Classification(b *testing.B) {
	o, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	props := o.SubClasses(rdf.NSSSN.IRI("ObservedProperty"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := props[i%len(props)]
		if !o.IsSubClassOf(p, rdf.NSSSN.IRI("ObservedProperty")) {
			b.Fatal("classification failed")
		}
	}
}

// --- EXP-F2: Figure 2, the integration framework ---

// BenchmarkF2IntegrationPipeline measures the full per-reading path of
// Figure 2: cloud download → mediation → unified publication → CEP.
func BenchmarkF2IntegrationPipeline(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	rules, err := cep.ParseRules(dews.SensorRules)
	if err != nil {
		b.Fatal(err)
	}
	mw, err := core.New(core.Config{Ontology: onto, Rules: rules})
	if err != nil {
		b.Fatal(err)
	}
	cloud := wsn.NewCloudStore()
	if err := mw.Protocol().AddSource("bench", cloud); err != nil {
		b.Fatal(err)
	}
	start := time.Date(2015, 1, 1, 6, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloud.Upload([]wsn.RawReading{{
			NodeID: "bench-node", Vendor: "libelium", District: "mangaung",
			PropertyName: "pluviometer", UnitName: "mm", Value: float64(i % 10),
			Time: start.Add(time.Duration(i) * time.Minute), Seq: uint32(i + 1), BatteryV: 4,
		}})
		rep, err := mw.Ingest(0)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Annotated != 1 {
			b.Fatalf("annotated %d", rep.Annotated)
		}
	}
}

// BenchmarkF2StageMediation isolates the mediation stage.
func BenchmarkF2StageMediation(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	ann := mediator.NewAnnotator(onto)
	mediator.SeedAlignments(ann.Registry())
	r := wsn.RawReading{
		NodeID: "n", Vendor: "pegelonline", District: "mangaung",
		PropertyName: "Hoehe", UnitName: "cm", Value: 187,
		Time: time.Now().UTC(), Seq: 1, BatteryV: 4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.Annotate(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2StageCEP isolates the CEP stage.
func BenchmarkF2StageCEP(b *testing.B) {
	rules, err := cep.ParseRules(dews.SensorRules)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cep.NewEngine(rules)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Process(cep.Event{
			Type: "Rainfall", Time: start.Add(time.Duration(i) * time.Minute),
			Value: float64(i % 7), Confidence: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-F3: Figure 3, three-tier latency ---

// BenchmarkF3LayerApplication measures the application abstraction layer
// alone (publish → bounded queue).
func BenchmarkF3LayerApplication(b *testing.B) {
	broker := core.NewBroker()
	sub, err := broker.Subscribe("obs/#", 1<<16, core.DropOldest)
	if err != nil {
		b.Fatal(err)
	}
	msg := core.Message{Topic: "obs/mangaung/Rainfall", Payload: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.Publish(msg); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			sub.Poll(0)
		}
	}
}

// BenchmarkF3LayerOntologySegment measures a SPARQL lookup through the
// ontology segment layer.
func BenchmarkF3LayerOntologySegment(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	seg, err := core.NewSegment(onto, nil)
	if err != nil {
		b.Fatal(err)
	}
	const q = `
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?c WHERE { ?c rdfs:subClassOf dews:DroughtEvent . }`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := seg.Select(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(sols.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkF3LayerInterfaceProtocol measures the cloud download path.
func BenchmarkF3LayerInterfaceProtocol(b *testing.B) {
	p := core.NewProtocolLayer()
	cloud := wsn.NewCloudStore()
	if err := p.AddSource("c", cloud); err != nil {
		b.Fatal(err)
	}
	now := time.Now().UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloud.Upload([]wsn.RawReading{{NodeID: "n", Time: now}})
		batch, err := p.Fetch("c", 0)
		if err != nil || len(batch) != 1 {
			b.Fatalf("fetch %d %v", len(batch), err)
		}
	}
}

// --- EXP-C1: fusion improves forecast skill ---

// BenchmarkC1ForecastSkill runs a compact DEWS season (1 district,
// 6 years) end to end and reports the headline skill metrics as bench
// metrics — the executable form of the paper's §6 claim.
func BenchmarkC1ForecastSkill(b *testing.B) {
	var fusedCSI, sensorCSI, ikCSI float64
	for i := 0; i < b.N; i++ {
		system, err := dews.NewSystem(dews.Config{
			Seed: int64(100 + i), Districts: []string{"mangaung"},
			Years: 6, TrainYears: 3, NodesPerDistrict: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := system.Run()
		if err != nil {
			b.Fatal(err)
		}
		fused, _ := res.SkillByName("fused")
		sensor, _ := res.SkillByName("sensor-only")
		ikv, _ := res.SkillByName("ik-only")
		fusedCSI += fused.Contingency.CSI()
		sensorCSI += sensor.Contingency.CSI()
		ikCSI += ikv.Contingency.CSI()
	}
	n := float64(b.N)
	b.ReportMetric(fusedCSI/n, "fused-CSI")
	b.ReportMetric(sensorCSI/n, "sensor-CSI")
	b.ReportMetric(ikCSI/n, "ik-CSI")
}

// --- EXP-C2: naming-heterogeneity mediation ---

// BenchmarkC2Mediation measures alignment resolution across the full
// vendor population (exact + fuzzy paths mixed, as in production).
func BenchmarkC2Mediation(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	reg := mediator.NewRegistry(onto)
	mediator.SeedAlignments(reg)
	type pair struct{ vendor, name string }
	var names []pair
	for _, v := range wsn.BuiltinVendors() {
		for _, ch := range v.Channels {
			names = append(names, pair{v.Name, ch.WireName})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := names[i%len(names)]
		if _, err := reg.Resolve(p.vendor, p.name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkC2FuzzyColdPath isolates the similarity scan (no cache).
func BenchmarkC2FuzzyColdPath(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := mediator.NewRegistry(onto)
		reg.LearnThreshold = 1.01 // never cache
		if _, err := reg.Resolve("hydro", "Hoehe"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C3: standards vs semantics coverage ---

// BenchmarkC3StandardsVsSemantics compares a frozen standard mapping
// table against ontology-mediated resolution as unseen vendor spellings
// arrive, reporting coverage of both approaches as metrics.
func BenchmarkC3StandardsVsSemantics(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	// The "standard": exact match on the canonical English terms only.
	standard := map[string]bool{
		"rainfall": true, "soil moisture": true, "air temperature": true,
		"relative humidity": true, "wind speed": true, "water level": true,
	}
	// Unseen vendor vocabulary (spelling variants and other languages).
	unseen := []string{
		"rain_fall", "RainFall", "rainfall_mm", "Niederschlag", "reenval",
		"soilMoisture", "soil-moisture", "Bodenfeuchte", "grondvog",
		"airTemp", "Lufttemperatur", "temperature2m",
		"windSpeed", "windspoed", "wind_velocity",
		"Hoehe", "Stav", "waterLevel", "gauge_height",
	}
	reg := mediator.NewRegistry(onto)
	var stdHits, semHits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := unseen[i%len(unseen)]
		if standard[name] {
			stdHits++
		}
		if _, err := reg.Resolve("new-vendor", name); err == nil {
			semHits++
		}
	}
	b.ReportMetric(100*float64(stdHits)/float64(b.N), "standard-coverage-%")
	b.ReportMetric(100*float64(semHits)/float64(b.N), "semantic-coverage-%")
}

// --- EXP-C4: CEP scalability ---

// benchCEPWithRules measures event throughput with a given rule count.
func benchCEPWithRules(b *testing.B, nRules int) {
	var src string
	for i := 0; i < nRules; i++ {
		src += fmt.Sprintf(`
RULE r%d
WHEN avg(metric%d) < %d OVER 30d
COOLDOWN 30d
EMIT Alert%d
`, i, i%16, i%5+1, i)
	}
	rules, err := cep.ParseRules(src)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cep.NewEngine(rules)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Process(cep.Event{
			Type:       fmt.Sprintf("metric%d", i%16),
			Time:       start.Add(time.Duration(i) * time.Minute),
			Value:      float64(i % 10),
			Confidence: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkC4CEPRules16(b *testing.B)  { benchCEPWithRules(b, 16) }
func BenchmarkC4CEPRules64(b *testing.B)  { benchCEPWithRules(b, 64) }
func BenchmarkC4CEPRules256(b *testing.B) { benchCEPWithRules(b, 256) }

// BenchmarkC4CEPSequenceDetection measures the NFA path with a planted
// precursor pattern.
func BenchmarkC4CEPSequenceDetection(b *testing.B) {
	rules := cep.MustParseRules(`
RULE chain
WHEN SEQ(A, B, C) WITHIN 30d
COOLDOWN 1d
EMIT Chained
`)
	eng, err := cep.NewEngine(rules)
	if err != nil {
		b.Fatal(err)
	}
	types := []string{"A", "B", "C"}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Process(cep.Event{
			Type: types[i%3], Time: start.Add(time.Duration(i) * time.Hour),
			Value: 1, Confidence: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C5: dissemination fan-out ---

// BenchmarkC5Dissemination measures hub fan-out across all four channel
// types with realistic severity filtering.
func BenchmarkC5Dissemination(b *testing.B) {
	hub := dissemination.NewHub()
	sms := dissemination.NewSMSBroadcast()
	for i := 0; i < 50; i++ {
		if err := sms.Subscribe("mangaung", fmt.Sprintf("+27-51-%04d", i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := hub.Register(dissemination.NewSmartBillboard(), forecast.DVINormal); err != nil {
		b.Fatal(err)
	}
	if err := hub.Register(sms, forecast.DVIWarning); err != nil {
		b.Fatal(err)
	}
	if err := hub.Register(dissemination.NewIPRadio("st"), forecast.DVIWatch); err != nil {
		b.Fatal(err)
	}
	if err := hub.Register(dissemination.NewSemanticWeb(), forecast.DVINormal); err != nil {
		b.Fatal(err)
	}
	issued := time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := float64(i%100) / 100
		err := hub.Publish(forecast.Bulletin{
			District: "mangaung", Issued: issued.Add(time.Duration(i) * time.Hour),
			LeadDays: 30, Probability: p, Band: forecast.BandFromProbability(p),
			Forecaster: "fused",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-C6: query engine ---

// BenchmarkC6QueryEngine measures SPARQL throughput over the library plus
// a season of annotated observations, across selectivity regimes.
func BenchmarkC6QueryEngine(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	g := onto.Graph().Clone()
	ann := mediator.NewAnnotator(onto)
	mediator.SeedAlignments(ann.Registry())
	gen, err := climate.NewGenerator(climate.DefaultParams(3))
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := wsn.NewFleet(5, []string{"mangaung"}, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, day := range gen.GenerateDays(90) {
		for _, n := range fleet.Nodes {
			if _, err := ann.ToGraph(n.Sample(day), g); err != nil {
				b.Fatal(err)
			}
		}
	}
	eng := sparql.NewEngine(g)
	queries := map[string]string{
		"selective": `
PREFIX ssn:  <http://dews.africrid.example/ontology/ssn#>
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?o ?v WHERE { ?o ssn:observedProperty dews:WaterLevel ; ssn:hasSimpleResult ?v . } LIMIT 10`,
		"filtered": `
PREFIX ssn:  <http://dews.africrid.example/ontology/ssn#>
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?o ?v WHERE { ?o ssn:observedProperty dews:Rainfall ; ssn:hasSimpleResult ?v . FILTER(?v > 5) }`,
		"broad": `
PREFIX ssn: <http://dews.africrid.example/ontology/ssn#>
SELECT ?o WHERE { ?o a ssn:Observation . }`,
	}
	for name, q := range queries {
		parsed, err := sparql.Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Select(parsed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.ReportMetric(float64(g.Len()), "graph-triples")
}

// --- EXP-C7: uplink path ---

// benchUplink measures the full mote→cloud path at a given loss rate,
// reporting goodput.
func benchUplink(b *testing.B, lossRate float64) {
	cloud := wsn.NewCloudStore()
	link := wsn.NewLink(wsn.LinkConfig{LossRate: lossRate, CorruptRate: 0.02, MaxRetries: 4, Seed: 9})
	gw := wsn.NewGateway(link, cloud)
	lib, err := wsn.VendorByName("libelium")
	if err != nil {
		b.Fatal(err)
	}
	node, err := wsn.NewNode(wsn.NodeConfig{
		ID: "bench", Vendor: lib, District: "mangaung",
		Modalities: []wsn.Modality{wsn.ModalityRainfall, wsn.ModalitySoilMoisture, wsn.ModalityAirTemperature},
		Seed:       11,
	})
	if err != nil {
		b.Fatal(err)
	}
	gw.Register(node)
	day := climate.Day{Date: time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		RainMM: 3, TempC: 22, SoilMoisture: 0.3, RelHumidity: 60, WindSpeedMS: 3, NDVI: 0.4, WaterLevelM: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day.Date = day.Date.Add(time.Hour)
		rs := node.Sample(day)
		if len(rs) == 0 {
			continue
		}
		if err := gw.Ingest(rs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if gw.Decoded+gw.Dropped > 0 {
		b.ReportMetric(100*float64(gw.Decoded)/float64(gw.Decoded+gw.Dropped), "goodput-%")
	}
}

func BenchmarkC7UplinkLoss0(b *testing.B)  { benchUplink(b, 0) }
func BenchmarkC7UplinkLoss20(b *testing.B) { benchUplink(b, 0.2) }
func BenchmarkC7UplinkLoss50(b *testing.B) { benchUplink(b, 0.5) }

// BenchmarkC7PacketCodec isolates the frame codec.
func BenchmarkC7PacketCodec(b *testing.B) {
	p := wsn.Packet{
		NodeID: "fs-mangaung-libelium-03", Seq: 7,
		Time: time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC), BatteryV: 3.9,
		Readings: []wsn.PacketReading{{Code: 1, Value: 8.25}, {Code: 2, Value: 0.31}, {Code: 3, Value: 24.5}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := wsn.EncodePacket(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wsn.DecodePacket(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-A1: fusion ablation (design-choice study) ---

// BenchmarkA1FusionAblation runs one recorded simulation and re-scores
// the fusion variants, reporting each variant's Brier as a metric. The
// expected shape: full ≤ every ablated variant.
func BenchmarkA1FusionAblation(b *testing.B) {
	sums := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		rows, _, err := dews.RunFusionAblation(dews.Config{
			Seed: int64(300 + i), Districts: []string{"mangaung"},
			Years: 6, TrainYears: 3, NodesPerDistrict: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			sums[r.Variant] += r.Verif.Brier.Score()
		}
	}
	for _, v := range []string{"full", "no-cep", "no-ik", "no-sensor"} {
		b.ReportMetric(sums[v]/float64(b.N), v+"-Brier")
	}
}

// --- IK substrate micro-benches (support C1) ---

// BenchmarkIKRuleCompilation measures catalogue → CEP rule compilation.
func BenchmarkIKRuleCompilation(b *testing.B) {
	cat := ik.Catalogue()
	for i := 0; i < b.N; i++ {
		if _, err := ik.CompileRules(cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPIComputation measures the SPI ground-truth labelling cost.
func BenchmarkSPIComputation(b *testing.B) {
	gen, err := climate.NewGenerator(climate.DefaultParams(5))
	if err != nil {
		b.Fatal(err)
	}
	days := gen.GenerateYears(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := climate.Label(days, 90); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EXP-S1: broker subscription-index scaling ---

// benchBrokerPublishSubs measures the cost of one publish when nSubs
// subscriptions exist on distinct concrete topics. With a linear
// subscription scan this is O(nSubs) per publish; with the topic-trie
// index it is O(topic depth + matches), i.e. flat as nSubs grows.
func benchBrokerPublishSubs(b *testing.B, nSubs int) {
	broker := core.NewBroker()
	for i := 0; i < nSubs; i++ {
		if _, err := broker.Subscribe(fmt.Sprintf("obs/district%d/Rainfall", i), 16, core.DropOldest); err != nil {
			b.Fatal(err)
		}
	}
	msg := core.Message{Topic: "obs/district0/Rainfall", Payload: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := broker.Publish(msg)
		if err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatalf("matched %d subscriptions, want 1", n)
		}
	}
}

func BenchmarkBrokerPublishSubs10(b *testing.B)   { benchBrokerPublishSubs(b, 10) }
func BenchmarkBrokerPublishSubs100(b *testing.B)  { benchBrokerPublishSubs(b, 100) }
func BenchmarkBrokerPublishSubs1000(b *testing.B) { benchBrokerPublishSubs(b, 1000) }

// BenchmarkIngestParallel measures a full ingest cycle over many
// sources and districts at once — the shape the staged pipeline
// (parallel fetch → batch mediation → batch publish → sharded CEP)
// is built for.
func BenchmarkIngestParallel(b *testing.B) {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		b.Fatal(err)
	}
	rules, err := cep.ParseRules(dews.SensorRules)
	if err != nil {
		b.Fatal(err)
	}
	districts := []string{"mangaung", "xhariep", "lejweleputswa", "fezile-dabi", "thabo-mofutsanyana"}
	mw, err := core.New(core.Config{Ontology: onto, Rules: rules})
	if err != nil {
		b.Fatal(err)
	}
	clouds := make([]*wsn.CloudStore, len(districts))
	for i := range districts {
		clouds[i] = wsn.NewCloudStore()
		if err := mw.Protocol().AddSource(fmt.Sprintf("cloud-%d", i), clouds[i]); err != nil {
			b.Fatal(err)
		}
	}
	start := time.Date(2015, 1, 1, 6, 0, 0, 0, time.UTC)
	const perSource = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := start.Add(time.Duration(i) * 24 * time.Hour)
		for ci, cloud := range clouds {
			batch := make([]wsn.RawReading, perSource)
			for j := range batch {
				batch[j] = wsn.RawReading{
					NodeID: fmt.Sprintf("n%d-%d", ci, j), Vendor: "libelium",
					District: districts[ci], PropertyName: "pluviometer",
					UnitName: "mm", Value: float64(j % 10),
					Time: t0.Add(time.Duration(j) * time.Second),
					Seq:  uint32(i*perSource + j + 1), BatteryV: 4,
				}
			}
			cloud.Upload(batch)
		}
		rep, err := mw.Ingest(0)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Annotated != perSource*len(districts) {
			b.Fatalf("annotated %d, want %d", rep.Annotated, perSource*len(districts))
		}
	}
	b.ReportMetric(float64(perSource*len(districts)), "readings/op")
}

// --- EXP-S2: durable broker (write-through event log) ---

// benchBrokerPublishDurable is benchBrokerPublishSubs with an event log
// attached: every publish additionally frames, CRCs and buffer-writes
// the message (fsync is batched in the background), which is the cost
// of crash-recoverable delivery and SSE resume.
func benchBrokerPublishDurable(b *testing.B, nSubs int) {
	l, err := eventlog.Open(eventlog.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	broker := core.NewBroker()
	if _, err := broker.AttachLog(l); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nSubs; i++ {
		if _, err := broker.Subscribe(fmt.Sprintf("obs/district%d/Rainfall", i), 16, core.DropOldest); err != nil {
			b.Fatal(err)
		}
	}
	msg := core.Message{Topic: "obs/district0/Rainfall", Payload: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := broker.Publish(msg)
		if err != nil {
			b.Fatal(err)
		}
		if n != 1 {
			b.Fatalf("matched %d subscriptions, want 1", n)
		}
	}
}

func BenchmarkBrokerPublishDurableSubs10(b *testing.B)   { benchBrokerPublishDurable(b, 10) }
func BenchmarkBrokerPublishDurableSubs1000(b *testing.B) { benchBrokerPublishDurable(b, 1000) }

// --- EXP-S3: contended publish hot path ---

// benchBrokerPublishParallel measures durable publish throughput when
// procs goroutines publish concurrently against 1000 live
// subscriptions. This is the dewsload shape in miniature: every op
// stamps an offset, appends to the WAL and fans out through the topic
// index, all under contention. A broker that serializes publishers on
// one global mutex scales flat (or worse) with procs; the RCU trie +
// sequencer-decoupled append should scale with available CPUs.
func benchBrokerPublishParallel(b *testing.B, procs int) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	l, err := eventlog.Open(eventlog.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	broker := core.NewBroker()
	if _, err := broker.AttachLog(l); err != nil {
		b.Fatal(err)
	}
	const nSubs = 1000
	topics := make([]string, nSubs)
	for i := 0; i < nSubs; i++ {
		topics[i] = fmt.Sprintf("obs/district%d/Rainfall", i)
		if _, err := broker.Subscribe(topics[i], 1<<12, core.DropOldest); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger goroutines across districts so publishers touch
		// different retained stripes and subscriptions, as real
		// publishers on different topics do.
		i := int(next.Add(1)) * 131
		for pb.Next() {
			i++
			n, err := broker.Publish(core.Message{Topic: topics[i%nSubs], Payload: 1.0})
			if err != nil {
				b.Fatal(err)
			}
			if n != 1 {
				b.Fatalf("matched %d subscriptions, want 1", n)
			}
		}
	})
}

func BenchmarkBrokerPublishParallel2(b *testing.B) { benchBrokerPublishParallel(b, 2) }
func BenchmarkBrokerPublishParallel8(b *testing.B) { benchBrokerPublishParallel(b, 8) }

// BenchmarkSubscribeChurnUnderPublish measures one Subscribe+Unsubscribe
// cycle while 4 publisher goroutines hammer the broker. Under the old
// design churn and publish serialize on the same mutex, so each is
// priced at the other's critical section; with the RCU index churn pays
// a copy-on-write rebuild but never blocks a publisher (and vice versa).
func BenchmarkSubscribeChurnUnderPublish(b *testing.B) {
	broker := core.NewBroker()
	const nSubs = 1000
	for i := 0; i < nSubs; i++ {
		if _, err := broker.Subscribe(fmt.Sprintf("obs/district%d/Rainfall", i), 16, core.DropOldest); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			msg := core.Message{Topic: fmt.Sprintf("obs/district%d/Rainfall", p), Payload: 1.0}
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := broker.Publish(msg); err != nil {
						return
					}
				}
			}
		}(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := broker.Subscribe("obs/churn/+", 16, core.DropOldest)
		if err != nil {
			b.Fatal(err)
		}
		broker.Unsubscribe(sub)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
