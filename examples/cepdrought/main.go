// CEP walkthrough: writing drought-detection rules in the middleware's
// rule DSL and watching the engine chain process → event exactly as the
// paper's DOLCE story prescribes (rainfall deficit → soil-moisture
// decline → drought warning), with indigenous-knowledge reports
// corroborating the sensor evidence.
//
// Run: go run ./examples/cepdrought
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cep"
	"repro/internal/ik"
)

const rules = `
# Stage 1: processes detected from the unified observation stream.
RULE rainfall-deficit
WHEN avg(Rainfall) < 0.8 OVER 30d
COOLDOWN 20d
EMIT RainfallDeficit SEVERITY watch CONFIDENCE 0.8 SOURCE sensor

RULE soil-decline
WHEN avg(SoilMoisture) < 0.15 OVER 20d
COOLDOWN 20d
EMIT SoilMoistureDecline SEVERITY warning CONFIDENCE 0.8 SOURCE sensor

# Stage 2: the process chain. SEQ encodes "the sequence of processes that
# lead to an event" (paper §2).
RULE drought-pattern
WHEN SEQ(RainfallDeficit, SoilMoistureDecline) WITHIN 60d
COOLDOWN 45d
EMIT DroughtWarning SEVERITY severe CONFIDENCE 0.85 SOURCE fusion

# Stage 3: IK corroboration upgrades the warning.
RULE corroborated-drought
WHEN COUNT(DroughtWarning) >= 1 WITHIN 30d AND COUNT(ik-sifennefene-worms) >= 2 WITHIN 45d
COOLDOWN 45d
EMIT CorroboratedDroughtWarning SEVERITY extreme CONFIDENCE 0.9 SOURCE fusion
`

func main() {
	parsed, err := cep.ParseRules(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d rules\n\n", len(parsed))
	engine, err := cep.NewEngine(parsed)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic dry-down: 60 days of failing rain and drying soil, with
	// sifennefene worm reports arriving mid-way (the IK signal).
	start := time.Date(2015, 10, 1, 0, 0, 0, 0, time.UTC)
	var events []cep.Event
	for d := 0; d < 60; d++ {
		date := start.AddDate(0, 0, d)
		rain := 2.0 - float64(d)*0.06 // fading rains
		if rain < 0 {
			rain = 0
		}
		soil := 0.35 - float64(d)*0.005 // drying soil
		events = append(events,
			cep.Event{Type: "Rainfall", Time: date, Value: rain, Confidence: 0.95},
			cep.Event{Type: "SoilMoisture", Time: date, Value: soil, Confidence: 0.95},
		)
		if d == 25 || d == 32 {
			events = append(events, cep.Event{
				Type: "ik-sifennefene-worms", Time: date, Value: 0.8, Confidence: 0.7,
				Attrs: map[string]string{"informant": fmt.Sprintf("elder-%d", d)},
			})
		}
	}

	fmt.Println("day-by-day inferences:")
	emitted, err := engine.ProcessAll(events)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range emitted {
		fmt.Printf("  %s  %-28s severity=%-8s conf=%.2f rule=%s\n",
			ev.Time.Format("2006-01-02"), ev.Type, ev.Attrs["severity"],
			ev.Confidence, ev.Attrs["rule"])
	}

	st := engine.Stats()
	fmt.Printf("\nengine: %d events, %d rule evaluations, %d emissions, max chain depth %d\n",
		st.EventsProcessed, st.RulesEvaluated, st.Emissions, st.ChainDepthMax)

	// Show the IK rule-compilation path too.
	ikRules, err := ik.CompileRules(ik.Catalogue())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nik.CompileRules derives %d additional rules from the indicator catalogue, e.g.:\n\n%s\n",
		len(ikRules), ikRules[0])
}
