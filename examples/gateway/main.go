// Gateway: the streaming subscription gateway over the middleware
// broker.
//
// Runs a short DEWS simulation over a durable event log, serves the
// gateway on a loopback port, and then acts as its own remote client:
// replays retained bulletins over SSE, publishes an external envelope,
// drops the stream and resumes it with Last-Event-ID (the missed event
// arrives exactly once from the log), and drains an at-least-once ack
// queue — the flows API.md documents with curl.
//
// Run: go run ./examples/gateway
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/dews"
)

func main() {
	logDir, err := os.MkdirTemp("", "dews-eventlog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(logDir)

	// A short two-district run so there are retained bulletins to serve.
	// The broker writes through to a segmented event log, so every
	// envelope below also gets a durable, resumable offset.
	system, err := dews.NewSystem(dews.Config{
		Seed:       2015,
		Years:      2,
		TrainYears: 1,
		Districts:  []string{"mangaung", "xhariep"},
		LogDir:     logDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer system.Close()
	result, err := system.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 2 years: %d bulletins issued\n\n", len(result.Bulletins))

	// Serve the gateway + semantic web mux on a loopback port.
	mux, gw, err := system.ServeMux()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = server.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("gateway listening on %s\n\n", base)

	// 1. SSE subscription with retained replay: a late subscriber to
	// bulletin/# immediately receives the latest bulletin per district.
	resp, err := http.Get(base + "/subscribe?pattern=" + url.QueryEscape("bulletin/#"))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	events := bufio.NewScanner(resp.Body)
	fmt.Println("— SSE retained replay (bulletin/#) —")
	printEvents(events, 2)

	// 2. Publish an external envelope through the gateway; the open SSE
	// stream sees it like any in-process publication.
	pub, err := http.Post(base+"/publish", "application/json", strings.NewReader(
		`{"topic": "bulletin/demo", "payload": {"district": "demo", "probability": 0.42}}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(pub.Body)
	pub.Body.Close()
	fmt.Printf("\n— POST /publish → %s —\n%s", pub.Status, body)
	fmt.Println("— SSE live delivery —")
	lastID := printEvents(events, 1)

	// 3. Resume: drop the stream, publish while disconnected, reconnect
	// with Last-Event-ID — the gap comes back from the event log,
	// exactly once.
	resp.Body.Close()
	pub2, err := http.Post(base+"/publish", "application/json", strings.NewReader(
		`{"topic": "bulletin/demo", "payload": {"district": "demo", "probability": 0.77}}`))
	if err != nil {
		log.Fatal(err)
	}
	pub2.Body.Close()
	req, err := http.NewRequest("GET", base+"/subscribe?pattern="+url.QueryEscape("bulletin/#"), nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", lastID)
	resumed, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Body.Close()
	fmt.Printf("\n— SSE resume after disconnect (Last-Event-ID: %s) —\n", lastID)
	printEvents(bufio.NewScanner(resumed.Body), 1)

	// 4. At-least-once consumption: create an ack queue, fetch, ack.
	q := postJSON(base + "/v1/queue?pattern=" + url.QueryEscape("bulletin/#"))
	qid := q["queue"].(string)
	fetched := getJSON(base + "/v1/queue/" + qid + "/fetch")
	deliveries := fetched["deliveries"].([]any)
	fmt.Printf("\n— ack queue %s fetched %d retained bulletins —\n", qid, len(deliveries))
	for _, d := range deliveries {
		m := d.(map[string]any)
		seq := int(m["seq"].(float64))
		fmt.Printf("  seq %d  topic %s\n", seq, m["message"].(map[string]any)["topic"])
		postJSON(fmt.Sprintf("%s/v1/queue/%s/ack?seq=%d", base, qid, seq))
	}
	after := getJSON(base + "/v1/queue/" + qid)
	fmt.Printf("  acked=%v queued=%v inflight=%v\n", after["acked"], after["queued"], after["inflight"])

	// 5. Operator view (includes the eventlog section: segments, bytes,
	// offsets, fsync latency).
	stats := getJSON(base + "/stats")
	pretty, _ := json.MarshalIndent(stats, "", "  ")
	fmt.Printf("\n— GET /stats —\n%s\n", pretty)

	// Clean shutdown: SSE clients get a goodbye event first.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := server.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngateway shut down cleanly")
}

// printEvents copies n SSE "message" events to stdout (offset + topic)
// and returns the last id: seen — the resume cursor.
func printEvents(sc *bufio.Scanner, n int) string {
	seen := 0
	lastID := ""
	for seen < n && sc.Scan() {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			lastID = id
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var env struct {
			Offset uint64 `json:"offset"`
			Topic  string `json:"topic"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &env); err != nil {
			continue
		}
		seen++
		fmt.Printf("  event %d  offset %d  topic %s\n", seen, env.Offset, env.Topic)
	}
	return lastID
}

func getJSON(u string) map[string]any {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return decode(resp.Body)
}

func postJSON(u string) map[string]any {
	resp, err := http.Post(u, "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return decode(resp.Body)
}

func decode(r io.Reader) map[string]any {
	var out map[string]any
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}
