// Heterogeneity walkthrough: the §1 problem statement of the paper made
// executable. Five vendor networks report the same physical world with
// five different vocabularies and unit systems ("Hoehe" in German, "Stav"
// in Czech, Fahrenheit, centibar soil tension, ...). The mediator
// resolves every wire name against the unified ontology — by exact
// registration, by multilingual label match, or by string-similarity
// fallback — and normalizes every unit.
//
// Run: go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mediator"
	"repro/internal/ontology/drought"
	"repro/internal/wsn"
)

func main() {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		log.Fatal(err)
	}
	ann := mediator.NewAnnotator(onto)
	mediator.SeedAlignments(ann.Registry())

	// The same moment in the physical world, reported five ways.
	at := time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC)
	readings := []wsn.RawReading{
		{NodeID: "de-01", Vendor: "pegelonline", District: "mangaung",
			PropertyName: "Hoehe", UnitName: "cm", Value: 187, Time: at, Seq: 1, BatteryV: 4},
		{NodeID: "cz-01", Vendor: "chmi", District: "mangaung",
			PropertyName: "Stav", UnitName: "cm", Value: 187, Time: at, Seq: 1, BatteryV: 4},
		{NodeID: "us-01", Vendor: "davis", District: "mangaung",
			PropertyName: "outsideTemp", UnitName: "degF", Value: 76.1, Time: at, Seq: 1, BatteryV: 4},
		{NodeID: "de-01", Vendor: "pegelonline", District: "mangaung",
			PropertyName: "Lufttemperatur", UnitName: "K", Value: 297.65, Time: at, Seq: 2, BatteryV: 4},
		{NodeID: "us-01", Vendor: "davis", District: "mangaung",
			PropertyName: "soilMoist", UnitName: "cbar", Value: 140, Time: at, Seq: 2, BatteryV: 4},
		{NodeID: "za-01", Vendor: "agri-sa", District: "mangaung",
			PropertyName: "grondvog", UnitName: "pct", Value: 30, Time: at, Seq: 1, BatteryV: 4},
		{NodeID: "za-01", Vendor: "agri-sa", District: "mangaung",
			PropertyName: "reenval", UnitName: "mm", Value: 12.5, Time: at, Seq: 2, BatteryV: 4},
		{NodeID: "us-01", Vendor: "davis", District: "mangaung",
			PropertyName: "rainRate", UnitName: "in", Value: 0.492, Time: at, Seq: 3, BatteryV: 4},
	}

	fmt.Println("vendor reading                              → unified observation")
	fmt.Println("--------------------------------------------------------------------------")
	for _, r := range readings {
		rec, err := ann.Annotate(r)
		if err != nil {
			fmt.Printf("%-43s → FAILED: %v\n", renderRaw(r), err)
			continue
		}
		fmt.Printf("%-43s → %s = %.3f %s (q=%.2f)\n",
			renderRaw(r), rec.Property.LocalName(), rec.Value,
			onto.Label(rec.Unit, "en"), rec.Quality)
	}

	exact, fuzzy, misses := ann.Registry().Stats()
	fmt.Printf("\nalignment stats: exact=%d fuzzy=%d misses=%d (corpus: %d labels)\n",
		exact, fuzzy, misses, ann.Registry().LabelCount())
	fmt.Println("\nNote how Hoehe and Stav (the paper's own example) both resolve to")
	fmt.Println("dews:WaterLevel, and 76.1°F and 297.65K both become ≈24.5°C: the two")
	fmt.Println("faces of heterogeneity — naming and cognitive — handled in one pass.")
}

func renderRaw(r wsn.RawReading) string {
	return fmt.Sprintf("%-12s %-15s %8.3f %-5s", r.Vendor, r.PropertyName, r.Value, r.UnitName)
}
