// Quickstart: the smallest end-to-end use of the semantic middleware.
//
// A raw vendor reading — the German hydrology network's "Hoehe" (water
// level, the paper's own naming-heterogeneity example) — is mediated
// against the unified ontology, published through the middleware, and
// queried back with SPARQL.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ontology/drought"
	"repro/internal/wsn"
)

func main() {
	// 1. Build the unified ontology library (Figure 1) with entailments
	//    materialized.
	onto, reasonRes, err := drought.BuildMaterialized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ontology library: %s\n", onto.Stats())
	fmt.Printf("reasoner added %d entailed triples\n\n", reasonRes.Added)

	// 2. Assemble the middleware (no CEP rules needed for the quickstart).
	mw, err := core.New(core.Config{Ontology: onto, GraphObservations: true})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A cloud store with one heterogeneous reading: property "Hoehe",
	//    unit centimetres — nothing the application layer understands yet.
	cloud := wsn.NewCloudStore()
	cloud.Upload([]wsn.RawReading{{
		NodeID:       "pegel-modder-river-01",
		Vendor:       "pegelonline",
		District:     "mangaung",
		PropertyName: "Hoehe",
		UnitName:     "cm",
		Value:        187.0,
		Time:         time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		Seq:          1,
		BatteryV:     4.0,
	}})
	if err := mw.Protocol().AddSource("demo-cloud", cloud); err != nil {
		log.Fatal(err)
	}

	// 4. Subscribe to unified observations — once poll-style, once
	//    push-style through the broker's dispatcher — then ingest.
	sub, err := mw.Broker().Subscribe("obs/#", 16, core.DropOldest)
	if err != nil {
		log.Fatal(err)
	}
	pushed := make(chan core.Message, 16)
	if _, err := mw.Broker().SubscribeHandler("obs/+/WaterLevel", 16, core.DropOldest,
		func(m core.Message) { pushed <- m }); err != nil {
		log.Fatal(err)
	}
	rep, err := mw.Ingest(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest: fetched=%d annotated=%d failed=%d\n", rep.Fetched, rep.Annotated, rep.Failed)

	for _, msg := range sub.Poll(0) {
		fmt.Printf("published on %q at %s\n", msg.Topic, msg.Time.Format(time.RFC3339))
	}
	mw.Broker().DrainDispatch()
	mw.Broker().StopDispatch()
	close(pushed)
	for msg := range pushed {
		fmt.Printf("pushed to handler from %q\n", msg.Topic)
	}

	// 5. Query it back: the vendor's "Hoehe" in centimetres is now a
	//    dews:WaterLevel observation in metres.
	sols, err := mw.Segment().Select(`
PREFIX ssn:  <http://dews.africrid.example/ontology/ssn#>
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?obs ?value WHERE {
  ?obs a ssn:Observation ;
       ssn:observedProperty dews:WaterLevel ;
       ssn:hasSimpleResult ?value .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSPARQL over the integrated graph:\n%s", sols.String())
	fmt.Println("\nThe 187 cm 'Hoehe' reading is now 1.87 m of dews:WaterLevel —")
	fmt.Println("naming and unit heterogeneity eliminated by the middleware.")
}
