// Free State case study (§4 of the paper): the full DEWS over all five
// district municipalities — simulated climate, heterogeneous WSN, lossy
// uplink, semantic mediation, CEP + indigenous-knowledge fusion, forecast
// verification, and multi-channel dissemination.
//
// Run: go run ./examples/freestate
package main

import (
	"fmt"
	"log"

	"repro/internal/dews"
	"repro/internal/forecast"
)

func main() {
	system, err := dews.NewSystem(dews.Config{
		Seed:             2015,
		Years:            8,
		TrainYears:       4,
		LeadDays:         30,
		NodesPerDistrict: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Free State DEWS — five districts, 8 simulated years (4 training)")
	result, err := system.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npipeline: %d readings fetched, %d annotated, %d CEP inferences\n",
		result.Fetched, result.Annotated, result.Inferences)

	fmt.Println("\nforecast verification (paper's central claim: fusion wins):")
	fmt.Print(dews.FormatSkillTable(result))

	fused, _ := result.SkillByName("fused")
	sensor, _ := result.SkillByName("sensor-only")
	ikOnly, _ := result.SkillByName("ik-only")
	fmt.Printf("\nCSI: fused %.3f vs sensor-only %.3f vs ik-only %.3f\n",
		fused.Contingency.CSI(), sensor.Contingency.CSI(), ikOnly.Contingency.CSI())

	fmt.Println("\nmost severe bulletins issued:")
	shown := 0
	for _, b := range result.Bulletins {
		if b.Band >= forecast.DVISevere {
			fmt.Println("  " + b.Headline())
			shown++
			if shown == 5 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (no severe bulletins this run)")
	}

	fmt.Println("\ncurrent smart billboard:")
	fmt.Print(system.Billboard().Display())

	fmt.Println("dissemination accounting:")
	st := result.Hub
	for _, ch := range []string{"billboard", "sms", "ip-radio", "semantic-web"} {
		fmt.Printf("  %-13s delivered=%-5d filtered=%d\n", ch, st.Delivered[ch], st.Filtered[ch])
	}
}
