// Service discovery walkthrough: the ontology segment layer's "semantic
// services description module" (Figure 3). Services register with an
// ontology class as their capability; consumers discover them by asking
// for a *superclass* — subsumption-aware matchmaking, which a plain
// string registry cannot do — and the registry itself is queryable with
// SPARQL like everything else in the middleware.
//
// Run: go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ontology/drought"
	"repro/internal/rdf"
)

func main() {
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		log.Fatal(err)
	}
	mw, err := core.New(core.Config{Ontology: onto})
	if err != nil {
		log.Fatal(err)
	}
	seg := mw.Segment()

	// Three forecast services with increasingly specific capabilities.
	services := []core.ServiceDescription{
		{
			ID:          rdf.NSDEWS.IRI("svc/met"),
			Capability:  drought.MeteorologicalDrought,
			Endpoint:    "event/+/MeteorologicalDrought",
			Description: "SPI-based meteorological drought inferences",
		},
		{
			ID:          rdf.NSDEWS.IRI("svc/agri"),
			Capability:  drought.AgriculturalDrought,
			Endpoint:    "event/+/AgriculturalDrought",
			Description: "soil-moisture agricultural drought inferences",
		},
		{
			ID:          rdf.NSDEWS.IRI("svc/events"),
			Capability:  drought.EnvironmentalEvent,
			Endpoint:    "event/#",
			Description: "firehose of every environmental event",
		},
	}
	for _, s := range services {
		if err := seg.RegisterService(s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-18s capability=%s\n", s.ID.LocalName(), s.Capability.LocalName())
	}

	// Discovery by superclass: "who can tell me about droughts, of any
	// kind?" finds the two specific services via subsumption but not the
	// over-general firehose (EnvironmentalEvent is a *super*class of
	// DroughtEvent, not a subclass).
	fmt.Println("\nDiscover(dews:DroughtEvent):")
	for _, s := range seg.Discover(drought.DroughtEvent) {
		fmt.Printf("  %-18s → subscribe to %q\n", s.ID.LocalName(), s.Endpoint)
	}

	// Exact capability.
	fmt.Println("\nDiscover(dews:AgriculturalDrought):")
	for _, s := range seg.Discover(drought.AgriculturalDrought) {
		fmt.Printf("  %-18s → %q\n", s.ID.LocalName(), s.Endpoint)
	}

	// The registry is RDF: ask it questions nobody designed an API for.
	fmt.Println("\nSPARQL over the registry (services whose endpoint covers all districts):")
	sols, err := seg.Select(`
PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?svc ?ep WHERE {
  ?svc a dews:SemanticService ; dews:endpoint ?ep .
  FILTER(CONTAINS(?ep, "+") || CONTAINS(?ep, "#"))
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sols.String())
}
