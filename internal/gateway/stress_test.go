package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStressManySSESubscribers drives the gateway the way the ROADMAP
// intends it to be used: a large fan-out of concurrent network
// subscribers over one published batch. Fast consumers (ample buffers)
// must see every message of the batch in publish order with zero
// misses; deliberately under-buffered consumers must be evicted as
// slow, with their losses drop-accounted at the broker. Run with -race.
func TestStressManySSESubscribers(t *testing.T) {
	const (
		fastClients = 50
		slowClients = 5
		batchSize   = 200
	)
	b, g, srv := testGateway(t, func(c *Config) {
		// A deliberately lazy pump so the whole batch lands between two
		// polls: fast clients absorb it (buffer > batch), slow clients
		// (buffer 1) must drop nearly all of it.
		c.FlushInterval = 25 * time.Millisecond
	})

	var wg sync.WaitGroup
	fastGot := make([][]Envelope, fastClients)
	fastErr := make([]error, fastClients)
	for i := 0; i < fastClients; i++ {
		s := subscribeSSE(t, srv, "stress/#", map[string]string{"buffer": "512"})
		wg.Add(1)
		go func(i int, s *sseStream) {
			defer wg.Done()
			for len(fastGot[i]) < batchSize {
				ev, err := s.Next()
				if err != nil {
					fastErr[i] = fmt.Errorf("after %d events: %w", len(fastGot[i]), err)
					return
				}
				if ev.Event != "message" {
					fastErr[i] = fmt.Errorf("fast client evicted: %s %s", ev.Event, ev.Data)
					return
				}
				var env Envelope
				if err := json.Unmarshal([]byte(ev.Data), &env); err != nil {
					fastErr[i] = err
					return
				}
				fastGot[i] = append(fastGot[i], env)
			}
		}(i, s)
	}

	slowReason := make([]string, slowClients)
	for i := 0; i < slowClients; i++ {
		s := subscribeSSE(t, srv, "stress/#", map[string]string{"buffer": "1"})
		wg.Add(1)
		go func(i int, s *sseStream) {
			defer wg.Done()
			for {
				ev, err := s.Next()
				if err != nil {
					slowReason[i] = err.Error()
					return
				}
				if ev.Event == "goodbye" {
					var detail struct {
						Reason string `json:"reason"`
					}
					_ = json.Unmarshal([]byte(ev.Data), &detail)
					slowReason[i] = detail.Reason
					return
				}
			}
		}(i, s)
	}

	// All subscriptions registered before anything is published.
	waitFor(t, func() bool {
		return b.Stats().Subscriptions == fastClients+slowClients
	})

	batch := make([]Envelope, batchSize)
	for i := range batch {
		batch[i] = Envelope{
			Topic:   fmt.Sprintf("stress/district-%d/seq-%d", i%5, i),
			Payload: json.RawMessage(fmt.Sprintf("%d", i)),
		}
	}
	code, out := postJSON(t, srv, "/publish", batch)
	if code != http.StatusOK {
		t.Fatalf("publish: %d %v", code, out)
	}
	wantDeliveries := float64(batchSize * (fastClients + slowClients))
	if out["deliveries"].(float64) != wantDeliveries {
		t.Fatalf("deliveries = %v, want %v", out["deliveries"], wantDeliveries)
	}

	wg.Wait()

	// Every fast consumer saw the whole batch, in publish order.
	for i := 0; i < fastClients; i++ {
		if fastErr[i] != nil {
			t.Fatalf("fast client %d: %v", i, fastErr[i])
		}
		for j, env := range fastGot[i] {
			want := fmt.Sprintf("stress/district-%d/seq-%d", j%5, j)
			if env.Topic != want {
				t.Fatalf("fast client %d event %d: topic %q, want %q", i, j, env.Topic, want)
			}
		}
	}
	// Every slow consumer was evicted for cause.
	for i, reason := range slowReason {
		if reason != "slow-consumer" {
			t.Errorf("slow client %d ended with %q, want slow-consumer eviction", i, reason)
		}
	}
	if got := g.slowDisconnects.Load(); got != slowClients {
		t.Errorf("slow disconnects = %d, want %d", got, slowClients)
	}
	// Slow-consumer losses remain drop-accounted at the broker even
	// after their subscriptions were removed. (A lower bound only: once
	// a client is evicted its closed mailbox silently ignores the rest
	// of the batch, and how soon eviction lands depends on pump timing.)
	waitFor(t, func() bool { return b.Stats().Subscriptions <= fastClients })
	if drops := b.Stats().Drops; drops < slowClients {
		t.Errorf("broker drops = %d, want ≥ %d (one per evicted client)", drops, slowClients)
	}
}
