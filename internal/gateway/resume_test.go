package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
)

func newSSEScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return sc
}

// durableGateway is testGateway over a broker with an event log attached
// (the durable configuration the resume path needs).
func durableGateway(t *testing.T, dir string, mut func(*Config)) (*core.Broker, *httptest.Server) {
	t.Helper()
	l, err := eventlog.Open(eventlog.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	b := core.NewBroker()
	if _, err := b.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Broker: b, FlushInterval: 2 * time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = g.Close() })
	return b, srv
}

// resumeSSE opens an SSE stream with a Last-Event-ID header and/or extra
// query params.
func resumeSSE(t *testing.T, srv *httptest.Server, pattern, lastEventID string, params map[string]string) *sseStream {
	t.Helper()
	q := url.Values{"pattern": {pattern}}
	for k, v := range params {
		q.Set(k, v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/subscribe?"+q.Encode(), nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	s := &sseStream{resp: resp, sc: newSSEScanner(resp.Body), cancel: cancel}
	t.Cleanup(s.Close)
	return s
}

func publishTicks(t *testing.T, b *core.Broker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.Publish(core.Message{
			Topic:   "evt/stream/tick",
			Time:    time.Now(),
			Payload: map[string]any{"seq": i},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// nextMessage reads events until a "message" arrives, failing on goodbye.
func nextMessage(t *testing.T, s *sseStream) (uint64, Envelope) {
	t.Helper()
	for {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("stream ended: %v", err)
		}
		if ev.Event == "goodbye" {
			t.Fatalf("unexpected goodbye: %s", ev.Data)
		}
		if ev.Event != "message" {
			continue
		}
		id, err := strconv.ParseUint(ev.ID, 10, 64)
		if err != nil {
			t.Fatalf("message without numeric id: %q", ev.ID)
		}
		var env Envelope
		if err := json.Unmarshal([]byte(ev.Data), &env); err != nil {
			t.Fatalf("bad envelope %q: %v", ev.Data, err)
		}
		if env.Offset != id {
			t.Fatalf("id %d != envelope offset %d", id, env.Offset)
		}
		return id, env
	}
}

// TestResumeExactlyOnce is the acceptance regression: a client killed
// mid-stream and reconnected with Last-Event-ID sees every missed event
// exactly once — zero missed, zero duplicated.
func TestResumeExactlyOnce(t *testing.T) {
	b, srv := durableGateway(t, t.TempDir(), nil)
	publishTicks(t, b, 10) // offsets 1..10

	// First connection: replay from the beginning, read 6 events, die.
	first := resumeSSE(t, srv, "evt/#", "", map[string]string{"from": "1"})
	var lastSeen uint64
	for i := 0; i < 6; i++ {
		id, env := nextMessage(t, first)
		if id != uint64(i+1) {
			t.Fatalf("first connection event %d: offset %d", i, id)
		}
		var p struct{ Seq int }
		if err := json.Unmarshal(env.Payload, &p); err != nil || p.Seq != i {
			t.Fatalf("first connection event %d: payload %s", i, env.Payload)
		}
		lastSeen = id
	}
	first.Close() // killed mid-stream: events 7..10 unread

	// The world moves on while the client is gone.
	publishTicks(t, b, 5) // offsets 11..15

	// Reconnect exactly as EventSource would: Last-Event-ID header.
	second := resumeSSE(t, srv, "evt/#", fmt.Sprint(lastSeen), nil)
	for want := lastSeen + 1; want <= 15; want++ {
		id, _ := nextMessage(t, second)
		if id != want {
			t.Fatalf("resumed stream delivered offset %d, want %d (missed or duplicated)", id, want)
		}
	}
	// And the stream is live again: a new publish arrives next.
	publishTicks(t, b, 1) // offset 16
	if id, _ := nextMessage(t, second); id != 16 {
		t.Fatalf("post-resume live event offset %d, want 16", id)
	}
}

// TestResumeAcrossRestart proves the cursor survives a full process
// restart: a new broker recovered from the same log directory serves the
// client the events it missed while everything was down.
func TestResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	lastSeen := uint64(0)
	{
		l, err := eventlog.Open(eventlog.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		b := core.NewBroker()
		if _, err := b.AttachLog(l); err != nil {
			t.Fatal(err)
		}
		g, err := New(Config{Broker: b, FlushInterval: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(g)
		publishTicks(t, b, 4)
		s := resumeSSE(t, srv, "evt/#", "", map[string]string{"from": "1"})
		for i := 0; i < 3; i++ {
			lastSeen, _ = nextMessage(t, s)
		}
		s.Close()
		publishTicks(t, b, 2) // offsets 5, 6: published before the "crash"
		srv.Close()
		_ = g.Close()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: fresh broker + gateway over the same directory.
	b2, srv2 := durableGateway(t, dir, nil)
	if got := b2.NextOffset(); got != 7 {
		t.Fatalf("restarted broker NextOffset %d, want 7", got)
	}
	s := resumeSSE(t, srv2, "evt/#", fmt.Sprint(lastSeen), nil)
	for want := lastSeen + 1; want <= 6; want++ {
		id, _ := nextMessage(t, s)
		if id != want {
			t.Fatalf("post-restart resume delivered %d, want %d", id, want)
		}
	}
	publishTicks(t, b2, 1) // offset 7, live after restart
	if id, _ := nextMessage(t, s); id != 7 {
		t.Fatalf("post-restart live event %d, want 7", id)
	}
}

// TestResumeOutpacedClientLosesNothing floods a resumed stream far
// faster than any buffer would absorb: delivery comes straight from the
// log, so under the *default* config (no raised DropLimit) the client
// is neither evicted as a slow consumer nor missing a single event —
// each arrives exactly once, in offset order.
func TestResumeOutpacedClientLosesNothing(t *testing.T) {
	const total = 400
	b, srv := durableGateway(t, t.TempDir(), nil)
	s := resumeSSE(t, srv, "evt/#", "", map[string]string{"from": "1", "buffer": "2"})
	publishTicks(t, b, total)
	for want := uint64(1); want <= total; want++ {
		id, _ := nextMessage(t, s)
		if id != want {
			t.Fatalf("log-tailed stream delivered %d, want %d", id, want)
		}
	}
}

// TestResumeWithoutLogBestEffort: on an in-memory broker a resume
// request must not fail — the client gets the live stream, deduplicated
// against what it already saw, just no history.
func TestResumeWithoutLogBestEffort(t *testing.T) {
	b, _, srv := testGateway(t, nil)
	publishTicks(t, b, 3)
	s := resumeSSE(t, srv, "evt/#", "2", nil)
	// Retained replay holds the latest tick (offset 3, > 2): delivered.
	if id, _ := nextMessage(t, s); id != 3 {
		t.Fatalf("retained catch-up delivered %d, want 3", id)
	}
	publishTicks(t, b, 1)
	if id, _ := nextMessage(t, s); id != 4 {
		t.Fatalf("live event %d, want 4", id)
	}
}

// TestSSEIDCarriesDurableOffset: the id: field is the broker offset, not
// a per-connection counter — two clients see the same id for the same
// event, and ids keep counting across connections.
func TestSSEIDCarriesDurableOffset(t *testing.T) {
	b, srv := durableGateway(t, t.TempDir(), nil)
	a := resumeSSE(t, srv, "evt/#", "", nil)
	c := resumeSSE(t, srv, "evt/#", "", nil)
	publishTicks(t, b, 2)
	idA1, _ := nextMessage(t, a)
	idC1, _ := nextMessage(t, c)
	idA2, _ := nextMessage(t, a)
	if idA1 != idC1 {
		t.Fatalf("same event, different ids: %d vs %d", idA1, idC1)
	}
	if idA2 != idA1+1 {
		t.Fatalf("ids not the offset sequence: %d then %d", idA1, idA2)
	}
	// A later, separate connection continues the global sequence — the
	// old per-connection counter would have restarted at 1.
	d := resumeSSE(t, srv, "evt/#", "", nil)
	publishTicks(t, b, 1)
	// Skip d's retained replay (offset 2), then the live event.
	id, _ := nextMessage(t, d)
	if id == 1 {
		t.Fatal("id restarted at 1: per-connection counter is back")
	}
}

// TestResumeCursorPastTailClamps: a Last-Event-ID from a previous log
// generation (directory wiped, offsets restarted) must not suppress the
// live feed — the gateway clamps the cursor to the current tail.
func TestResumeCursorPastTailClamps(t *testing.T) {
	b, srv := durableGateway(t, t.TempDir(), nil)
	publishTicks(t, b, 2) // offsets 1, 2 — far below the stale cursor
	s := resumeSSE(t, srv, "evt/#", "29000", nil)
	publishTicks(t, b, 1) // offset 3
	if id, _ := nextMessage(t, s); id != 3 {
		t.Fatalf("clamped resume delivered %d, want live offset 3", id)
	}
}

// TestShutdownDuringCatchUp: Shutdown must not hang behind a resumed
// client that is stuck mid-catch-up over a large log (the stream checks
// the gateway context per record and write deadlines bound the rest).
func TestShutdownDuringCatchUp(t *testing.T) {
	l, err := eventlog.Open(eventlog.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	b := core.NewBroker()
	if _, err := b.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Broker: b, FlushInterval: 2 * time.Millisecond, WriteTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()
	publishTicks(t, b, 60000) // ~8MB of history, larger than socket buffers

	// Open a resuming stream and never read it: the catch-up stalls on
	// TCP backpressure.
	resp, err := http.Get(srv.URL + "/subscribe?pattern=evt/%23&from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Synchronize on the stream actually registering (and starting its
	// catch-up) rather than sleeping an arbitrary calibration interval:
	// under -race on a loaded machine 50ms was not always enough, and on
	// a fast one it was 50ms wasted.
	waitFor(t, func() bool { return g.sseActive.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain the catching-up stream: %v (after %v)", err, time.Since(start))
	}
}
