package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// testGateway builds a broker + gateway + test server tuned for fast
// tests (tight flush cadence).
func testGateway(t *testing.T, mut func(*Config)) (*core.Broker, *Gateway, *httptest.Server) {
	t.Helper()
	b := core.NewBroker()
	cfg := Config{Broker: b, FlushInterval: 2 * time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { _ = g.Close() })
	return b, g, srv
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// sseStream reads events from an open /subscribe response.
type sseStream struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

// subscribeSSE opens an SSE stream; params other than pattern are
// optional ("buffer", "policy").
func subscribeSSE(t *testing.T, srv *httptest.Server, pattern string, params map[string]string) *sseStream {
	t.Helper()
	q := url.Values{"pattern": {pattern}}
	for k, v := range params {
		q.Set(k, v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/subscribe?"+q.Encode(), nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	s := &sseStream{resp: resp, sc: bufio.NewScanner(resp.Body), cancel: cancel}
	s.sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	t.Cleanup(s.Close)
	return s
}

func (s *sseStream) Close() {
	s.cancel()
	s.resp.Body.Close()
}

// Next blocks until one full event arrives or the stream ends.
func (s *sseStream) Next() (sseEvent, error) {
	var ev sseEvent
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if ev.Event != "" || ev.Data != "" {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "id: "):
			ev.ID = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			ev.Event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = line[len("data: "):]
		}
	}
	if err := s.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

// collect reads n "message" events, failing on anything else.
func (s *sseStream) collect(t *testing.T, n int) []Envelope {
	t.Helper()
	out := make([]Envelope, 0, n)
	for len(out) < n {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("after %d events: %v", len(out), err)
		}
		if ev.Event != "message" {
			t.Fatalf("unexpected event %q (%s) after %d messages", ev.Event, ev.Data, len(out))
		}
		var env Envelope
		if err := json.Unmarshal([]byte(ev.Data), &env); err != nil {
			t.Fatalf("bad envelope %q: %v", ev.Data, err)
		}
		out = append(out, env)
	}
	return out
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, srv *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func TestPublishSingleAndBatch(t *testing.T) {
	b, _, srv := testGateway(t, nil)
	sub, err := b.Subscribe("obs/#", 16, core.DropOldest)
	if err != nil {
		t.Fatal(err)
	}

	code, out := postJSON(t, srv, "/publish", Envelope{
		Topic:   "obs/mangaung/Rainfall",
		Payload: json.RawMessage(`{"value": 1.5}`),
		Headers: map[string]string{"unit": "mm"},
	})
	if code != http.StatusOK {
		t.Fatalf("publish status %d: %v", code, out)
	}
	if out["published"].(float64) != 1 || out["deliveries"].(float64) != 1 {
		t.Fatalf("publish accounting: %v", out)
	}

	code, out = postJSON(t, srv, "/publish", []Envelope{
		{Topic: "obs/a/Rainfall"},
		{Topic: "obs/b/Rainfall"},
	})
	if code != http.StatusOK || out["published"].(float64) != 2 {
		t.Fatalf("batch publish: %d %v", code, out)
	}

	msgs := sub.Poll(0)
	if len(msgs) != 3 {
		t.Fatalf("subscriber saw %d messages", len(msgs))
	}
	payload, ok := msgs[0].Payload.(map[string]any)
	if !ok || payload["value"].(float64) != 1.5 {
		t.Errorf("payload decoded as %#v", msgs[0].Payload)
	}
	if msgs[0].Headers["unit"] != "mm" {
		t.Errorf("headers lost: %v", msgs[0].Headers)
	}
	if msgs[0].Time.IsZero() {
		t.Error("zero publish time should default to now")
	}

	// Oversize payloads are rejected before anything is published: the
	// broker retains every topic, so payload size is retained memory.
	code, out = postJSON(t, srv, "/publish", Envelope{
		Topic:   "obs/huge/x",
		Payload: json.RawMessage(`"` + strings.Repeat("x", maxPayloadBytes) + `"`),
	})
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize payload: %d %v", code, out["error"])
	}

	// Wildcard topics are a publish-side error.
	code, out = postJSON(t, srv, "/publish", Envelope{Topic: "obs/+/x"})
	if code != http.StatusBadRequest {
		t.Errorf("wildcard publish: %d %v", code, out)
	}
	// Malformed JSON.
	resp, err := srv.Client().Post(srv.URL+"/publish", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed publish: %d", resp.StatusCode)
	}
}

func TestSSESubscribeWildcardAndRetainedReplay(t *testing.T) {
	b, _, srv := testGateway(t, nil)
	// Retained messages published before the client connects...
	for _, topic := range []string{"obs/b/Rainfall", "obs/a/Rainfall", "obs/a/NDVI"} {
		if _, err := b.Publish(core.Message{Topic: topic, Payload: topic}); err != nil {
			t.Fatal(err)
		}
	}
	s := subscribeSSE(t, srv, "obs/+/Rainfall", nil)
	// ...replay in sorted topic order.
	replay := s.collect(t, 2)
	if replay[0].Topic != "obs/a/Rainfall" || replay[1].Topic != "obs/b/Rainfall" {
		t.Fatalf("replay order: %v %v", replay[0].Topic, replay[1].Topic)
	}
	// Live messages follow.
	if _, err := b.Publish(core.Message{Topic: "obs/c/Rainfall", Payload: 7}); err != nil {
		t.Fatal(err)
	}
	live := s.collect(t, 1)
	if live[0].Topic != "obs/c/Rainfall" || string(live[0].Payload) != "7" {
		t.Fatalf("live event: %+v", live[0])
	}
	// Non-matching topics stay invisible (nothing further arrives for the
	// NDVI topic; the stream just keeps quiet — verified implicitly by
	// the exact counts above).

	// Bad patterns are rejected up front.
	resp, err := srv.Client().Get(srv.URL + "/subscribe?pattern=" + url.QueryEscape("a/#/b"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad pattern status %d", resp.StatusCode)
	}
	// Missing pattern.
	resp, err = srv.Client().Get(srv.URL + "/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing pattern status %d", resp.StatusCode)
	}
}

func TestSSESlowConsumerDisconnect(t *testing.T) {
	b, g, srv := testGateway(t, func(c *Config) {
		// Slow cadence so the publish burst lands between polls.
		c.FlushInterval = 40 * time.Millisecond
	})
	s := subscribeSSE(t, srv, "burst/#", map[string]string{"buffer": "2"})

	// Wait until the subscription is registered, then overwhelm it.
	waitFor(t, func() bool { return b.Stats().Subscriptions == 1 })
	msgs := make([]core.Message, 100)
	for i := range msgs {
		msgs[i] = core.Message{Topic: fmt.Sprintf("burst/%d", i), Payload: i}
	}
	if _, err := b.PublishBatch(msgs); err != nil {
		t.Fatal(err)
	}

	// The client must be evicted with a terminal goodbye event.
	var goodbye sseEvent
	for {
		ev, err := s.Next()
		if err != nil {
			t.Fatalf("stream ended without goodbye: %v", err)
		}
		if ev.Event == "goodbye" {
			goodbye = ev
			break
		}
	}
	var detail struct {
		Reason  string `json:"reason"`
		Dropped int    `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(goodbye.Data), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Reason != "slow-consumer" || detail.Dropped == 0 {
		t.Fatalf("goodbye detail: %+v", detail)
	}
	if g.slowDisconnects.Load() != 1 {
		t.Errorf("slow disconnects = %d", g.slowDisconnects.Load())
	}
	// The evicted client's drops stay accounted at the broker.
	waitFor(t, func() bool { return b.Stats().Subscriptions == 0 })
	if drops := b.Stats().Drops; drops != detail.Dropped {
		t.Errorf("broker drops = %d, goodbye said %d", drops, detail.Dropped)
	}
}

func TestSSERetainedReplayDoesNotEvict(t *testing.T) {
	// A retained catalogue larger than the client's buffer overflows it
	// during Subscribe, before the client could possibly have read
	// anything. That must not count as consumer slowness: the client
	// keeps the stream, receives what its buffer held, and then streams
	// live messages.
	b, g, srv := testGateway(t, nil)
	for i := 0; i < 30; i++ {
		if _, err := b.Publish(core.Message{Topic: fmt.Sprintf("replay/%02d", i), Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	s := subscribeSSE(t, srv, "replay/#", map[string]string{"buffer": "4"})
	// DropOldest keeps the newest 4 of the sorted replay.
	replay := s.collect(t, 4)
	if replay[0].Topic != "replay/26" || replay[3].Topic != "replay/29" {
		t.Fatalf("replayed window: %v ... %v", replay[0].Topic, replay[3].Topic)
	}
	if _, err := b.Publish(core.Message{Topic: "replay/live", Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	live := s.collect(t, 1)
	if live[0].Topic != "replay/live" {
		t.Fatalf("live topic %q", live[0].Topic)
	}
	if g.slowDisconnects.Load() != 0 {
		t.Errorf("replay overflow counted as slow disconnect")
	}
}

func TestQueueDefaultCapacityClamped(t *testing.T) {
	// A defaulted capacity must respect a small operator MaxBuffer too
	// (SubscribeAck's own default of 1024 would exceed it).
	_, _, srv := testGateway(t, func(c *Config) {
		c.DefaultBuffer = 64
		c.MaxBuffer = 128
	})
	code, out := postJSON(t, srv, "/v1/queue?pattern="+url.QueryEscape("x/#"), nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, out)
	}
	if got := out["capacity"].(float64); got != 128 {
		t.Errorf("defaulted capacity = %v, want clamped to 128", got)
	}
}

func TestMaxBufferNotBelowDefault(t *testing.T) {
	// An operator raising the default buffer above the stock MaxBuffer
	// must get what they configured, not a silent clamp.
	g, err := New(Config{Broker: core.NewBroker(), DefaultBuffer: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.MaxBuffer != 8192 {
		t.Errorf("MaxBuffer = %d, want raised to 8192", g.cfg.MaxBuffer)
	}
}

func TestQueueLifecycle(t *testing.T) {
	b, _, srv := testGateway(t, nil)

	code, out := postJSON(t, srv, "/v1/queue?pattern="+url.QueryEscape("bulletin/#"), nil)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, out)
	}
	qid := out["queue"].(string)

	// Client-supplied capacity is clamped: queue memory is server
	// memory.
	code, out2 := postJSON(t, srv, "/v1/queue?pattern="+url.QueryEscape("big/#")+"&capacity=2000000000", nil)
	if code != http.StatusCreated {
		t.Fatalf("create big: %d %v", code, out2)
	}
	if got := out2["capacity"].(float64); got != defaultMaxBuffer {
		t.Errorf("capacity = %v, want clamped to %d", got, defaultMaxBuffer)
	}

	for i := 0; i < 3; i++ {
		if _, err := b.Publish(core.Message{Topic: "bulletin/mangaung", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}

	// Fetch two, leaving one queued.
	code, out = getJSON(t, srv, "/v1/queue/"+qid+"/fetch?max=2")
	if code != http.StatusOK {
		t.Fatalf("fetch: %d %v", code, out)
	}
	ds := out["deliveries"].([]any)
	if len(ds) != 2 {
		t.Fatalf("fetched %d", len(ds))
	}
	seq0 := uint64(ds[0].(map[string]any)["seq"].(float64))

	code, out = getJSON(t, srv, "/v1/queue/"+qid)
	if code != http.StatusOK || out["queued"].(float64) != 1 || out["inflight"].(float64) != 2 {
		t.Fatalf("queue stats: %v", out)
	}

	// Ack one; double-ack conflicts.
	code, out = postJSON(t, srv, fmt.Sprintf("/v1/queue/%s/ack?seq=%d", qid, seq0), nil)
	if code != http.StatusOK || out["acked"].(float64) != 1 {
		t.Fatalf("ack: %d %v", code, out)
	}
	code, _ = postJSON(t, srv, fmt.Sprintf("/v1/queue/%s/ack?seq=%d", qid, seq0), nil)
	if code != http.StatusConflict {
		t.Fatalf("double ack status %d", code)
	}

	// Redeliver the remaining in-flight delivery, then drain and
	// batch-ack everything.
	code, out = postJSON(t, srv, "/v1/queue/"+qid+"/redeliver", nil)
	if code != http.StatusOK || out["redelivered"].(float64) != 1 {
		t.Fatalf("redeliver: %d %v", code, out)
	}
	code, out = getJSON(t, srv, "/v1/queue/"+qid+"/fetch")
	if code != http.StatusOK {
		t.Fatalf("refetch: %d %v", code, out)
	}
	ds = out["deliveries"].([]any)
	if len(ds) != 2 {
		t.Fatalf("refetched %d", len(ds))
	}
	seqs := make([]uint64, len(ds))
	for i, d := range ds {
		seqs[i] = uint64(d.(map[string]any)["seq"].(float64))
	}
	code, out = postJSON(t, srv, "/v1/queue/"+qid+"/ack", map[string]any{"seqs": seqs})
	if code != http.StatusOK || out["acked"].(float64) != 2 {
		t.Fatalf("batch ack: %d %v", code, out)
	}

	// List (the bulletin queue plus the clamped one), then delete.
	code, out = getJSON(t, srv, "/v1/queue")
	if code != http.StatusOK || len(out["queues"].([]any)) != 2 {
		t.Fatalf("list: %v", out)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/queue/"+qid, nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	code, _ = getJSON(t, srv, "/v1/queue/"+qid)
	if code != http.StatusNotFound {
		t.Errorf("deleted queue still resolves: %d", code)
	}
	if b.Stats().Subscriptions != 1 { // only the clamped big/# queue remains
		t.Errorf("broker holds %d subscriptions, want 1", b.Stats().Subscriptions)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	b, _, srv := testGateway(t, func(c *Config) {
		c.Extra = func() map[string]any { return map[string]any{"fetched": 42} }
	})
	if _, err := b.Publish(core.Message{Topic: "x/y", Payload: 1}); err != nil {
		t.Fatal(err)
	}
	code, out := getJSON(t, srv, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	broker := out["broker"].(map[string]any)
	if broker["published"].(float64) != 1 {
		t.Errorf("broker stats: %v", broker)
	}
	if out["extra"].(map[string]any)["fetched"].(float64) != 42 {
		t.Errorf("extra stats: %v", out["extra"])
	}
	if _, ok := out["gateway"].(map[string]any)["sse_clients"]; !ok {
		t.Errorf("gateway stats missing: %v", out["gateway"])
	}

	code, out = getJSON(t, srv, "/healthz")
	if code != http.StatusOK || out["status"] != "ok" {
		t.Errorf("healthz: %d %v", code, out)
	}
}

func TestShutdownDisconnectsSSE(t *testing.T) {
	_, g, srv := testGateway(t, nil)
	s := subscribeSSE(t, srv, "x/#", nil)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- g.Shutdown(ctx)
	}()

	ev, err := s.Next()
	if err != nil {
		t.Fatalf("expected goodbye, got %v", err)
	}
	if ev.Event != "goodbye" || !strings.Contains(ev.Data, "shutdown") {
		t.Fatalf("terminal event: %+v", ev)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("stream should end after goodbye, got %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	// Health reflects the drain, and new streams are rejected.
	code, out := getJSON(t, srv, "/healthz")
	if code != http.StatusOK || out["status"] != "shutting-down" {
		t.Errorf("healthz after shutdown: %d %v", code, out)
	}
	resp, err := srv.Client().Get(srv.URL + "/subscribe?pattern=" + url.QueryEscape("x/#"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe during drain: %d, want 503", resp.StatusCode)
	}
}

// waitFor polls a condition with a deadline; the gateway's pump runs on
// its own cadence, so tests synchronize on observable state.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
