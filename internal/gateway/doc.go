// Package gateway exposes the middleware's application abstraction
// layer (core.Broker) over HTTP, so heterogeneous remote clients —
// dashboards, mobile apps, SMS bridges — can publish and subscribe to
// the drought early-warning streams without linking the Go middleware.
//
// Endpoints (see API.md at the repo root for full request/response
// examples):
//
//	GET  /subscribe?pattern=...   SSE stream over a bounded broker
//	                              subscription: wildcard patterns,
//	                              retained replay, QoS drop accounting
//	                              and slow-consumer eviction.
//	POST /publish                 Publish one envelope or a JSON array
//	                              of envelopes as one broker batch.
//	POST /v1/queue                Create an at-least-once ack queue.
//	GET  /v1/queue/{id}/fetch     Move deliveries in-flight.
//	POST /v1/queue/{id}/ack       Acknowledge by sequence number.
//	POST /v1/queue/{id}/redeliver Return in-flight work to the queue.
//	GET  /stats                   Broker/dispatcher/gateway counters.
//	GET  /healthz                 Liveness probe.
//
// The gateway deliberately adds no delivery semantics of its own: an
// SSE client is a plain bounded Subscription (at-most-once, drop
// accounted), an ack queue is an AckSubscription (at-least-once), and
// backpressure is whatever the broker already does. Slow SSE consumers
// are evicted once their subscription's drop counter crosses the
// configured limit; their losses stay visible in /stats because the
// broker keeps drop totals of removed subscriptions.
package gateway
