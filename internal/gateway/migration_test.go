package gateway

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// writeV1LogDir lays a v1-era (JSON codec, headerless segment) event log
// on disk, as the PR 3 release wrote it: n tick records on
// "evt/stream/tick" with seq payloads 0..n-1, offsets 1..n, one segment.
// The gateway must serve SSE resume over such a directory unchanged
// after the v2 codec upgrade.
func writeV1LogDir(t *testing.T, dir string, n int) {
	t.Helper()
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	var buf []byte
	for i := 0; i < n; i++ {
		body, err := json.Marshal(map[string]any{
			"offset":  i + 1,
			"topic":   "evt/stream/tick",
			"time":    time.Date(2015, 1, 1, 0, 0, i, 0, time.UTC),
			"payload": map[string]any{"seq": i},
		})
		if err != nil {
			t.Fatal(err)
		}
		var head [8]byte
		binary.LittleEndian.PutUint32(head[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(body, castagnoli))
		buf = append(buf, head[:]...)
		buf = append(buf, body...)
	}
	path := filepath.Join(dir, fmt.Sprintf("%020d.seg", 1))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSSEResumeAcrossCodecMigration: a client resumes against a broker
// recovered from a v1-era log that has since accepted v2 appends — the
// stream must deliver the full mixed-version history in offset order,
// exactly once, straight across the format boundary.
func TestSSEResumeAcrossCodecMigration(t *testing.T) {
	dir := t.TempDir()
	writeV1LogDir(t, dir, 6)

	b, srv := durableGateway(t, dir, nil)
	if next := b.NextOffset(); next != 7 {
		t.Fatalf("broker recovered NextOffset %d from v1 log, want 7", next)
	}
	// New publishes append v2 records behind the v1 history.
	publishTicks(t, b, 4)

	s := resumeSSE(t, srv, "evt/#", "", map[string]string{"from": "1"})
	for want := uint64(1); want <= 10; want++ {
		id, env := nextMessage(t, s)
		if id != want {
			t.Fatalf("resumed stream delivered offset %d, want %d", id, want)
		}
		var payload struct{ Seq int }
		if err := json.Unmarshal(env.Payload, &payload); err != nil {
			t.Fatalf("offset %d payload %s: %v", id, env.Payload, err)
		}
		// v1 records carry seq 0..5 (offsets 1..6), the v2 ticks 0..3
		// (offsets 7..10).
		wantSeq := int(want) - 1
		if want > 6 {
			wantSeq = int(want) - 7
		}
		if payload.Seq != wantSeq {
			t.Fatalf("offset %d carries seq %d, want %d", id, payload.Seq, wantSeq)
		}
	}
	s.Close()

	// And a live (non-resumed) subscriber over the migrated broker still
	// gets retained replay + live messages.
	if _, err := b.Publish(core.Message{
		Topic:   "evt/stream/tick",
		Time:    time.Now(),
		Payload: map[string]any{"seq": 99},
	}); err != nil {
		t.Fatal(err)
	}
}
