package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
)

// The /v1/queue endpoints expose the broker's at-least-once tier to
// network consumers (the paper's SMS-channel class of clients, which
// must not lose bulletins). A queue is a named core.AckSubscription;
// the consumer loop is fetch → process → ack, with redeliver returning
// crashed-consumer work to the queue head.

// defaultQueueCapacity matches core.SubscribeAck's own default; applied
// here so the MaxBuffer clamp covers defaulted capacities too.
const defaultQueueCapacity = 1024

// queueDelivery is the wire form of one fetched delivery.
type queueDelivery struct {
	Seq     uint64   `json:"seq"`
	Message Envelope `json:"message"`
}

// queueInfo is the wire form of a queue's state.
type queueInfo struct {
	Queue    string `json:"queue"`
	Pattern  string `json:"pattern"`
	Capacity int    `json:"capacity"`
	Queued   int    `json:"queued"`
	InFlight int    `json:"inflight"`
	Acked    int    `json:"acked"`
	Dropped  int    `json:"dropped"`
}

func infoOf(id string, sub *core.AckSubscription) queueInfo {
	queued, inflight := sub.Pending()
	return queueInfo{
		Queue:    id,
		Pattern:  sub.Pattern,
		Capacity: sub.Capacity(),
		Queued:   queued,
		InFlight: inflight,
		Acked:    sub.Acked(),
		Dropped:  sub.Dropped(),
	}
}

// queueByID resolves the {id} path segment, writing a 404 on miss.
func (g *Gateway) queueByID(w http.ResponseWriter, r *http.Request) (string, *core.AckSubscription, bool) {
	id := r.PathValue("id")
	g.qmu.Lock()
	sub, ok := g.queues[id]
	g.qmu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown queue %q", id)
		return id, nil, false
	}
	return id, sub, true
}

// handleQueueCreate registers a new ack queue:
//
//	POST /v1/queue?pattern=bulletin/%23&capacity=512
func (g *Gateway) handleQueueCreate(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		httpError(w, http.StatusBadRequest, "missing ?pattern=")
		return
	}
	capacity, err := queryInt(r, "capacity", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Clamp like the SSE buffer: queue memory is server memory, and the
	// capacity is client-supplied. The clamp must also cover the
	// default (SubscribeAck would turn <= 0 into 1024, which could
	// exceed a small operator-configured MaxBuffer).
	if capacity <= 0 {
		capacity = defaultQueueCapacity
	}
	if capacity > g.cfg.MaxBuffer {
		capacity = g.cfg.MaxBuffer
	}
	sub, err := g.cfg.Broker.SubscribeAck(pattern, capacity)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.qmu.Lock()
	if len(g.queues) >= g.cfg.MaxQueues {
		g.qmu.Unlock()
		g.cfg.Broker.UnsubscribeAck(sub)
		httpError(w, http.StatusTooManyRequests, "queue limit %d reached", g.cfg.MaxQueues)
		return
	}
	g.nextQ++
	id := fmt.Sprintf("q%d", g.nextQ)
	g.queues[id] = sub
	g.qmu.Unlock()
	writeJSON(w, http.StatusCreated, infoOf(id, sub))
}

// handleQueueList reports every registered queue in id order.
func (g *Gateway) handleQueueList(w http.ResponseWriter, r *http.Request) {
	g.qmu.Lock()
	infos := make([]queueInfo, 0, len(g.queues))
	for id, sub := range g.queues {
		infos = append(infos, infoOf(id, sub))
	}
	g.qmu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Queue < infos[j].Queue })
	writeJSON(w, http.StatusOK, map[string]any{"queues": infos})
}

// handleQueueStats reports one queue's state.
func (g *Gateway) handleQueueStats(w http.ResponseWriter, r *http.Request) {
	id, sub, ok := g.queueByID(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, infoOf(id, sub))
}

// handleQueueDelete unsubscribes and forgets a queue. Undelivered work
// is discarded with it — this is the consumer saying "done".
func (g *Gateway) handleQueueDelete(w http.ResponseWriter, r *http.Request) {
	id, sub, ok := g.queueByID(w, r)
	if !ok {
		return
	}
	g.cfg.Broker.UnsubscribeAck(sub)
	g.qmu.Lock()
	delete(g.queues, id)
	g.qmu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleQueueFetch moves up to ?max= queued deliveries in-flight and
// returns them. Unacked deliveries stay in-flight until acked or
// redelivered.
//
//	GET /v1/queue/q1/fetch?max=10
func (g *Gateway) handleQueueFetch(w http.ResponseWriter, r *http.Request) {
	id, sub, ok := g.queueByID(w, r)
	if !ok {
		return
	}
	max, err := queryInt(r, "max", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds := sub.Fetch(max)
	out := make([]queueDelivery, len(ds))
	for i, d := range ds {
		out[i] = queueDelivery{Seq: d.Seq, Message: envelopeOf(d.Message)}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queue": id, "deliveries": out})
}

// handleQueueAck acknowledges deliveries by sequence number, via
// ?seq=N or a JSON body {"seqs":[...]}. An unknown sequence number
// (double-ack, ack-after-redeliver) returns 409 along with how many of
// the batch were acked before the conflict.
func (g *Gateway) handleQueueAck(w http.ResponseWriter, r *http.Request) {
	id, sub, ok := g.queueByID(w, r)
	if !ok {
		return
	}
	var seqs []uint64
	if s := r.URL.Query().Get("seq"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seq=%q", s)
			return
		}
		seqs = []uint64{n}
	} else {
		var body struct {
			Seqs []uint64 `json:"seqs"`
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPublishBytes))
		if err != nil || json.Unmarshal(raw, &body) != nil || len(body.Seqs) == 0 {
			httpError(w, http.StatusBadRequest, `want ?seq=N or body {"seqs":[...]}`)
			return
		}
		seqs = body.Seqs
	}
	acked := 0
	for _, seq := range seqs {
		if err := sub.Ack(seq); err != nil {
			writeJSON(w, http.StatusConflict, map[string]any{
				"queue": id, "acked": acked, "error": err.Error(),
			})
			return
		}
		acked++
	}
	writeJSON(w, http.StatusOK, map[string]any{"queue": id, "acked": acked})
}

// handleQueueRedeliver returns every in-flight delivery to the queue
// head (crashed-consumer recovery).
func (g *Gateway) handleQueueRedeliver(w http.ResponseWriter, r *http.Request) {
	id, sub, ok := g.queueByID(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"queue": id, "redelivered": sub.Redeliver()})
}
