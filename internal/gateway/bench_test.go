package gateway

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
)

// benchSSEFanoutEncoding measures the per-publish encoding cost of SSE
// fan-out with nSubs subscribers all matching the published topic. Each
// iteration publishes one message on a durable broker and renders the
// SSE frame once per subscriber, exactly what the per-client pumps do.
// With the shared-frame cache the envelope JSON and SSE framing are
// built once per message, so ns/op and allocs/op stay nearly flat as
// nSubs grows — encoding is O(1) per message, only the byte-handing
// loop is O(subscribers).
func benchSSEFanoutEncoding(b *testing.B, nSubs int) {
	l, err := eventlog.Open(eventlog.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	broker := core.NewBroker()
	if _, err := broker.AttachLog(l); err != nil {
		b.Fatal(err)
	}
	subs := make([]*core.Subscription, nSubs)
	for i := range subs {
		s, err := broker.Subscribe("obs/mangaung/Rainfall", 4, core.DropOldest)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = s
	}
	msg := core.Message{
		Topic:   "obs/mangaung/Rainfall",
		Time:    time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		Payload: map[string]any{"district": "mangaung", "value": 1.25, "unit": "mm"},
		Headers: map[string]string{"unit": "mm"},
	}
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.Publish(msg); err != nil {
			b.Fatal(err)
		}
		for _, s := range subs {
			for _, m := range s.Poll(0) {
				sink += len(messageFrame(m))
			}
		}
	}
	if sink == 0 {
		b.Fatal("no frames rendered")
	}
}

func BenchmarkSSEFanoutEncodingSubs1(b *testing.B)  { benchSSEFanoutEncoding(b, 1) }
func BenchmarkSSEFanoutEncodingSubs16(b *testing.B) { benchSSEFanoutEncoding(b, 16) }
func BenchmarkSSEFanoutEncodingSubs64(b *testing.B) { benchSSEFanoutEncoding(b, 64) }

// BenchmarkMessageFrameShared isolates the frame render: the first call
// builds the envelope JSON + SSE framing, every later call (any other
// subscriber) returns the cached bytes.
func BenchmarkMessageFrameShared(b *testing.B) {
	l, err := eventlog.Open(eventlog.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	broker := core.NewBroker()
	if _, err := broker.AttachLog(l); err != nil {
		b.Fatal(err)
	}
	sub, err := broker.Subscribe("obs/#", 1, core.DropOldest)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := broker.Publish(core.Message{
		Topic:   "obs/mangaung/Rainfall",
		Time:    time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		Payload: map[string]any{"value": 1.25},
	}); err != nil {
		b.Fatal(err)
	}
	msgs := sub.Poll(1)
	if len(msgs) != 1 {
		b.Fatalf("polled %d messages", len(msgs))
	}
	first := messageFrame(msgs[0])
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += len(messageFrame(msgs[0]))
	}
	if sink != b.N*len(first) {
		b.Fatalf("frame changed across calls")
	}
}

// BenchmarkGatewayPublishHTTP keeps an end-to-end number on the remote
// publish path (JSON body → broker batch) for the regression guard.
func BenchmarkGatewayPublishHTTP(b *testing.B) {
	broker := core.NewBroker()
	g, err := New(Config{Broker: broker})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	body := `{"topic":"obs/mangaung/Rainfall","payload":{"value":1.25}}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/publish", strings.NewReader(body))
		g.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("publish status %d", rec.Code)
		}
	}
}
