package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Defaults for Config zero values.
const (
	defaultBuffer        = 256
	defaultMaxBuffer     = 4096
	defaultFlushInterval = 15 * time.Millisecond
	defaultKeepAlive     = 15 * time.Second
	defaultWriteTimeout  = 30 * time.Second
	defaultMaxQueues     = 1024
	// maxPublishBytes bounds a /publish request body.
	maxPublishBytes = 4 << 20
	// maxPayloadBytes bounds one envelope's payload. Every published
	// topic is retained, so per-message payload size × retained-topic
	// cap is the broker's worst-case retained memory; without this a
	// remote publisher could park multi-megabyte payloads per topic.
	maxPayloadBytes = 64 << 10
)

// Config configures a Gateway.
type Config struct {
	// Broker is the pub/sub fabric the gateway fronts (required).
	Broker *core.Broker
	// DefaultBuffer is the per-client SSE queue capacity when the client
	// does not pass ?buffer= (default 256).
	DefaultBuffer int
	// MaxBuffer caps client-requested buffer sizes (default 4096).
	MaxBuffer int
	// DropLimit disconnects an SSE client once its subscription has
	// dropped this many messages to backpressure (default: the client's
	// buffer size).
	DropLimit int
	// FlushInterval is the SSE pump's poll cadence (default 15ms).
	FlushInterval time.Duration
	// KeepAlive is the SSE comment heartbeat period (default 15s).
	KeepAlive time.Duration
	// WriteTimeout bounds each SSE write (default 30s). A client whose
	// transport has stalled — not just one reading slowly — fails the
	// write and is disconnected, so a dead connection cannot pin its
	// pump goroutine or wedge Shutdown.
	WriteTimeout time.Duration
	// MaxQueues bounds concurrently registered ack queues (default 1024).
	MaxQueues int
	// Extra, when set, contributes an application-defined section to
	// /stats (the DEWS wires its ingest and dissemination totals here).
	Extra func() map[string]any
}

func (c *Config) applyDefaults() {
	if c.DefaultBuffer <= 0 {
		c.DefaultBuffer = defaultBuffer
	}
	if c.MaxBuffer <= 0 {
		c.MaxBuffer = defaultMaxBuffer
	}
	// An operator-raised default must not be clamped back down by the
	// client-request cap.
	if c.MaxBuffer < c.DefaultBuffer {
		c.MaxBuffer = c.DefaultBuffer
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = defaultFlushInterval
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = defaultKeepAlive
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.MaxQueues <= 0 {
		c.MaxQueues = defaultMaxQueues
	}
}

// Gateway exposes a core.Broker over HTTP: SSE streaming subscriptions,
// single/batch publishing, at-least-once ack queues, and stats. It
// implements http.Handler; mount it on a mux or serve it directly.
type Gateway struct {
	cfg Config
	mux *http.ServeMux

	// ctx is cancelled by Shutdown; every SSE pump watches it.
	ctx    context.Context
	cancel context.CancelFunc
	// streamMu orders stream registration against Shutdown: once
	// draining is set no new stream may wg.Add, so wg.Wait covers every
	// accepted stream.
	streamMu sync.Mutex
	draining bool
	// wg tracks active SSE streams so Shutdown can wait for them.
	wg sync.WaitGroup

	// counters surfaced by /stats.
	sseActive       atomic.Int64
	sseStreams      atomic.Int64
	sseResumed      atomic.Int64
	sseEvents       atomic.Int64
	slowDisconnects atomic.Int64
	published       atomic.Int64
	publishBatches  atomic.Int64
	publishSynced   atomic.Int64
	// goodbye terminations by reason.
	goodbyeShutdown     atomic.Int64
	goodbyeSlow         atomic.Int64
	goodbyeReplayFailed atomic.Int64

	qmu    sync.Mutex
	queues map[string]*core.AckSubscription
	nextQ  int
}

// New builds a gateway over the configured broker.
func New(cfg Config) (*Gateway, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("gateway: config needs a broker")
	}
	cfg.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		queues: make(map[string]*core.AckSubscription),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /subscribe", g.handleSubscribe)
	mux.HandleFunc("POST /publish", g.handlePublish)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("POST /v1/queue", g.handleQueueCreate)
	mux.HandleFunc("GET /v1/queue", g.handleQueueList)
	mux.HandleFunc("GET /v1/queue/{id}", g.handleQueueStats)
	mux.HandleFunc("DELETE /v1/queue/{id}", g.handleQueueDelete)
	mux.HandleFunc("GET /v1/queue/{id}/fetch", g.handleQueueFetch)
	mux.HandleFunc("POST /v1/queue/{id}/ack", g.handleQueueAck)
	mux.HandleFunc("POST /v1/queue/{id}/redeliver", g.handleQueueRedeliver)
	g.mux = mux
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// addStream registers an SSE stream with the shutdown tracker; it
// reports false once draining has begun (new streams are rejected).
func (g *Gateway) addStream() bool {
	g.streamMu.Lock()
	defer g.streamMu.Unlock()
	if g.draining {
		return false
	}
	g.wg.Add(1)
	return true
}

// Shutdown disconnects every SSE stream (each receives a final goodbye
// event), rejects new ones, and waits for the active ones to unwind, or
// until ctx expires. Queues stay registered: an http.Server shutdown
// severs the clients anyway, and a consumer reconnecting before process
// exit can still drain them.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.streamMu.Lock()
	g.draining = true
	g.streamMu.Unlock()
	g.cancel()
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Shutdown without a deadline.
func (g *Gateway) Close() error { return g.Shutdown(context.Background()) }

// Envelope is the JSON wire form of a core.Message.
type Envelope struct {
	// Offset is the broker-assigned sequence number (durable when an
	// event log is attached); 0 on publish — the broker assigns it.
	Offset uint64 `json:"offset,omitempty"`
	// Topic is the '/'-separated subject (wildcards are for
	// subscriptions only).
	Topic string `json:"topic"`
	// Time is the event time; zero means "now" on publish.
	Time time.Time `json:"time"`
	// Payload is the message body as raw JSON.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Headers carries string metadata.
	Headers map[string]string `json:"headers,omitempty"`
}

// envelopeOf converts an in-process message to its wire form, reusing
// the payload JSON already marshaled for the event log when the message
// carries one. Payloads that do not marshal (channels, funcs — nothing
// the system publishes) degrade to their string rendering rather than
// failing the stream.
func envelopeOf(m core.Message) Envelope {
	return Envelope{Offset: m.Offset, Topic: m.Topic, Time: m.Time, Payload: m.PayloadJSON(), Headers: m.Headers}
}

// message converts a wire envelope to a core.Message. JSON payloads
// decode to generic values (maps, slices, numbers), so remote publishes
// interoperate with in-process subscribers structurally, not by Go type.
func (e Envelope) message(now time.Time) core.Message {
	m := core.Message{Topic: e.Topic, Time: e.Time, Headers: e.Headers}
	if m.Time.IsZero() {
		m.Time = now
	}
	if len(e.Payload) > 0 {
		var v any
		if err := json.Unmarshal(e.Payload, &v); err == nil {
			m.Payload = v
		} else {
			m.Payload = string(e.Payload)
		}
	}
	return m
}

// handlePublish accepts one envelope or an array of envelopes and
// publishes them as a single broker batch.
func (g *Gateway) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPublishBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "reading body: %v", err)
		return
	}
	var envs []Envelope
	if isJSONArray(body) {
		if err := json.Unmarshal(body, &envs); err != nil {
			httpError(w, http.StatusBadRequest, "bad batch: %v", err)
			return
		}
	} else {
		var e Envelope
		if err := json.Unmarshal(body, &e); err != nil {
			httpError(w, http.StatusBadRequest, "bad envelope: %v", err)
			return
		}
		envs = []Envelope{e}
	}
	now := time.Now()
	msgs := make([]core.Message, len(envs))
	for i, e := range envs {
		if len(e.Payload) > maxPayloadBytes {
			httpError(w, http.StatusRequestEntityTooLarge,
				"payload of %q is %d bytes (limit %d)", e.Topic, len(e.Payload), maxPayloadBytes)
			return
		}
		msgs[i] = e.message(now)
	}
	deliveries, err := g.cfg.Broker.PublishBatch(msgs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// ?sync=1 upgrades the ack to a durability guarantee: the response
	// is withheld until the attached event log has fsynced the batch, so
	// a 200 means the records survive a crash. Without it an ack means
	// "logged" — durable only up to the log's batched-fsync window.
	synced := false
	if s := r.URL.Query().Get("sync"); s == "1" || s == "true" {
		if l := g.cfg.Broker.Log(); l != nil {
			if err := l.Sync(); err != nil {
				httpError(w, http.StatusInternalServerError, "sync: %v", err)
				return
			}
			synced = true
			g.publishSynced.Add(1)
		}
	}
	g.published.Add(int64(len(msgs)))
	g.publishBatches.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"published":  len(msgs),
		"deliveries": deliveries,
		"synced":     synced,
	})
}

// handleStats reports broker, gateway and application counters.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.qmu.Lock()
	queues := len(g.queues)
	g.qmu.Unlock()
	out := map[string]any{
		"broker": g.cfg.Broker.Stats(),
		"gateway": map[string]any{
			"sse_clients":       g.sseActive.Load(),
			"sse_streams_total": g.sseStreams.Load(),
			"sse_resumed_total": g.sseResumed.Load(),
			"sse_events_sent":   g.sseEvents.Load(),
			"slow_disconnects":  g.slowDisconnects.Load(),
			"published":         g.published.Load(),
			"publish_batches":   g.publishBatches.Load(),
			"publish_synced":    g.publishSynced.Load(),
			"queues":            queues,
			"goodbyes": map[string]any{
				"shutdown":      g.goodbyeShutdown.Load(),
				"slow_consumer": g.goodbyeSlow.Load(),
				"replay_failed": g.goodbyeReplayFailed.Load(),
			},
		},
	}
	if l := g.cfg.Broker.Log(); l != nil {
		out["eventlog"] = l.Stats()
	}
	if g.cfg.Extra != nil {
		out["extra"] = g.cfg.Extra()
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if g.ctx.Err() != nil {
		status = "shutting-down"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status})
}

// --- small helpers ---

func isJSONArray(body []byte) bool {
	for _, c := range body {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return c == '['
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// queryInt parses an integer query parameter, returning def when absent
// and an error only on malformed input.
func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, s)
	}
	return n, nil
}
