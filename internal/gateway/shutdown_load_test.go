package gateway

// Graceful shutdown under load: the drain contract must hold not just
// for one idle stream but while catch-up replays and publish batches
// are actually in flight — the state a real deploy restarts from.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eventlog"
)

// subOutcome is what one watched stream observed until it ended.
type subOutcome struct {
	received   int
	goodbye    bool
	reason     string
	monotonic  bool
	lastOffset uint64
	err        error
}

// drainStream consumes one SSE stream to its end, recording ordering
// and the terminal event.
func drainStream(resp *http.Response) subOutcome {
	out := subOutcome{monotonic: true}
	sc := newSSEScanner(resp.Body)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "message":
				var env Envelope
				if json.Unmarshal(data, &env) == nil {
					if env.Offset <= out.lastOffset {
						out.monotonic = false
					}
					out.lastOffset = env.Offset
				}
				out.received++
			case "goodbye":
				out.goodbye = true
				var g struct {
					Reason string `json:"reason"`
				}
				_ = json.Unmarshal(data, &g)
				out.reason = g.Reason
				return out
			}
			event, data = "", nil
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = []byte(line[6:])
		}
	}
	out.err = sc.Err()
	return out
}

// TestGracefulShutdownUnderLoad drives the full drain scenario:
// subscribers mid-catch-up over real history, live-queue subscribers,
// and concurrent publishers — then Shutdown fires. Every stream must
// end with a shutdown goodbye, Shutdown must return inside its
// deadline, and after closing and reopening the log every acked
// publish must be there exactly once, contiguously (no half-logged
// batch).
func TestGracefulShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	l, err := eventlog.Open(eventlog.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBroker()
	if _, err := b.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Broker: b, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	const history = 5000
	publishTicks(t, b, history) // catch-up material

	// N resuming subscribers (log-backed catch-up from offset 1) plus a
	// few live-queue ones.
	const nResume, nLive = 6, 3
	outcomes := make([]subOutcome, nResume+nLive)
	var subWG sync.WaitGroup
	openStream := func(i int, path string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("subscribe %s: %d", path, resp.StatusCode)
		}
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			defer resp.Body.Close()
			outcomes[i] = drainStream(resp)
		}()
	}
	for i := 0; i < nResume; i++ {
		openStream(i, "/subscribe?pattern=evt/%23&from=1")
	}
	for i := 0; i < nLive; i++ {
		openStream(nResume+i, "/subscribe?pattern=evt/%23")
	}
	waitFor(t, func() bool { return g.sseActive.Load() == nResume+nLive })

	// M publishers batching over HTTP until told to stop. Acked events
	// are the durability obligation the reopened log must honor.
	const nPub, batch = 4, 25
	pubCtx, stopPubs := context.WithCancel(context.Background())
	var acked atomic.Int64
	var pubWG sync.WaitGroup
	for p := 0; p < nPub; p++ {
		p := p
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			seq := 0
			for pubCtx.Err() == nil {
				envs := make([]Envelope, batch)
				for i := range envs {
					envs[i] = Envelope{
						Topic:   fmt.Sprintf("evt/load/p%d", p),
						Payload: json.RawMessage(fmt.Sprintf(`{"seq":%d}`, seq)),
					}
					seq++
				}
				body, _ := json.Marshal(envs)
				resp, err := srv.Client().Post(srv.URL+"/publish", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					acked.Add(batch)
				}
			}
		}()
	}

	// Let load establish, then fire the drain while everything is in
	// flight.
	waitFor(t, func() bool { return acked.Load() > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	stopPubs()
	pubWG.Wait()
	subWG.Wait()

	for i, out := range outcomes {
		kind := "resume"
		if i >= nResume {
			kind = "live"
		}
		if out.err != nil {
			t.Errorf("%s stream %d: read error %v", kind, i, out.err)
		}
		if !out.goodbye || out.reason != "shutdown" {
			t.Errorf("%s stream %d: want shutdown goodbye, got goodbye=%v reason=%q after %d events",
				kind, i, out.goodbye, out.reason, out.received)
		}
		if !out.monotonic {
			t.Errorf("%s stream %d: offsets not strictly increasing", kind, i)
		}
	}

	// Publishes raced the drain; whatever was acked must be fully
	// logged. Close everything and reopen the directory cold.
	ackedEvents := acked.Load()
	srv.Close()
	b.DrainDispatch()
	b.StopDispatch()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := eventlog.Open(eventlog.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer l2.Close()

	var total, loadEvents int64
	wantNext := l2.OldestOffset()
	if _, err := l2.Scan(1, func(rec eventlog.Record) error {
		if rec.Offset != wantNext {
			return fmt.Errorf("offset gap: got %d want %d", rec.Offset, wantNext)
		}
		wantNext++
		total++
		if len(rec.Topic) >= 8 && rec.Topic[:8] == "evt/load" {
			loadEvents++
		}
		return nil
	}); err != nil {
		t.Fatalf("recovered log scan: %v", err)
	}
	if loadEvents < ackedEvents {
		t.Errorf("recovered log holds %d load events, but %d were acked", loadEvents, ackedEvents)
	}
	if loadEvents%batch != 0 {
		t.Errorf("half-logged batch: %d load events is not a multiple of batch size %d", loadEvents, batch)
	}
	if total < history+ackedEvents {
		t.Errorf("recovered %d records, want at least %d", total, history+int64(ackedEvents))
	}
}

// TestPublishSyncFlag: ?sync=1 withholds the ack until the event log
// has fsynced, and says so in the response — the durability handshake
// the chaos harness's "no lost acked publish" oracle stands on.
func TestPublishSyncFlag(t *testing.T) {
	_, srv := durableGateway(t, t.TempDir(), nil)
	code, out := postJSON(t, srv, "/publish?sync=1", Envelope{Topic: "evt/a", Payload: json.RawMessage(`1`)})
	if code != http.StatusOK {
		t.Fatalf("sync publish: %d %v", code, out)
	}
	if out["synced"] != true {
		t.Errorf("sync publish response: synced=%v, want true", out["synced"])
	}
	_, stats := getJSON(t, srv, "/stats")
	gw, _ := stats["gateway"].(map[string]any)
	if n, _ := gw["publish_synced"].(float64); n != 1 {
		t.Errorf("publish_synced = %v, want 1", gw["publish_synced"])
	}
	elog, _ := stats["eventlog"].(map[string]any)
	if n, _ := elog["fsyncs"].(float64); n < 1 {
		t.Errorf("fsyncs = %v, want >= 1 after sync publish", elog["fsyncs"])
	}
	// Without the flag the ack does not claim durability.
	code, out = postJSON(t, srv, "/publish", Envelope{Topic: "evt/b", Payload: json.RawMessage(`2`)})
	if code != http.StatusOK || out["synced"] != false {
		t.Errorf("plain publish: %d synced=%v, want 200 synced=false", code, out["synced"])
	}
}

// TestShutdownUnderLoadRejectsNewStreams: during and after the drain
// the gateway must refuse new subscriptions with 503 (load balancers
// key on it) while /publish keeps working — the broker outlives the
// SSE plane.
func TestShutdownUnderLoadRejectsNewStreams(t *testing.T) {
	b, g, srv := testGateway(t, nil)
	s := subscribeSSE(t, srv, "x/#", nil)
	defer s.Close()
	waitFor(t, func() bool { return g.sseActive.Load() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- g.Shutdown(ctx)
	}()
	// The draining flag flips before streams unwind; once Shutdown
	// completes it is definitely set.
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, err := srv.Client().Get(srv.URL + "/subscribe?pattern=x/%23")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe after drain: %d, want 503", resp.StatusCode)
	}
	code, _ := postJSON(t, srv, "/publish", Envelope{Topic: "x/a", Payload: json.RawMessage(`1`)})
	if code != http.StatusOK {
		t.Errorf("publish after drain: %d, want 200 (broker outlives SSE plane)", code)
	}
	_ = b
}
