package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// Sentinels distinguishing why a log catch-up stopped: the client's
// write failed (stream is dead, say nothing) vs. the stream or gateway
// context ended vs. a persistent replay failure (tell the client).
var (
	errClientGone   = errors.New("gateway: client write failed")
	errStreamClosed = errors.New("gateway: stream context ended")
)

// handleSubscribe streams matching messages to the client as
// Server-Sent Events. Each message event's id: field carries the
// broker-assigned offset — durable when an event log is attached — so a
// client that drops mid-stream resumes exactly where it left off by
// reconnecting with the standard Last-Event-ID header (browsers'
// EventSource sends it automatically) or an explicit ?from=<offset>
// (inclusive).
//
// Two delivery modes share the endpoint:
//
//   - A fresh subscription is backed by a bounded broker queue, so
//     wildcard matching, retained replay and QoS drop accounting are
//     exactly the in-process semantics. A client whose subscription
//     drops more than the configured limit is disconnected with a
//     terminal "goodbye" event (slow-consumer eviction).
//
//   - A resuming client on a durable broker is served straight from the
//     event log (tailLog): history first, then the advancing tail, in
//     strict offset order, each event exactly once. There is no queue
//     to overflow, so backlog lives on disk and slow consumers are
//     never evicted — only a transport-stalled client is cut, by the
//     per-write deadline. Without a log, resume is best-effort:
//     retained replay plus offset filtering on the live queue.
//
//     GET /subscribe?pattern=obs/%2B/Rainfall&buffer=64&policy=oldest&from=1042
//
// Events:
//
//	event: message   data: Envelope JSON        (id: = durable offset)
//	event: goodbye   data: {"reason", "dropped"} (terminal, no id)
//	: keep-alive                                 (comment heartbeat)
func (g *Gateway) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		httpError(w, http.StatusBadRequest, "missing ?pattern=")
		return
	}
	if err := core.ValidatePattern(pattern); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	buffer, err := queryInt(r, "buffer", g.cfg.DefaultBuffer)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if buffer < 1 {
		buffer = 1
	}
	if buffer > g.cfg.MaxBuffer {
		buffer = g.cfg.MaxBuffer
	}
	policy := core.DropOldest
	switch r.URL.Query().Get("policy") {
	case "", "oldest":
	case "newest":
		policy = core.DropNewest
	default:
		httpError(w, http.StatusBadRequest, "bad policy (want oldest|newest)")
		return
	}
	// Resume cursor: ?from= is the first offset to deliver (inclusive)
	// and wins over Last-Event-ID, which is the last offset the client
	// saw (exclusive). Internally both become "deliver offsets > after".
	resume := false
	var after uint64
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			after, resume = v, true
		}
	}
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad from=%q", s)
			return
		}
		resume = true
		if v > 0 {
			after = v - 1
		} else {
			after = 0
		}
	}
	dropLimit := g.cfg.DropLimit
	if dropLimit <= 0 {
		dropLimit = buffer
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	if !g.addStream() {
		httpError(w, http.StatusServiceUnavailable, "gateway is shutting down")
		return
	}
	defer g.wg.Done()

	// A cursor from a different log generation (the directory was wiped
	// or replaced, offsets restarted) can point past the tail; left
	// alone it would suppress every delivery until the new sequence
	// climbed past it. Clamp to the tail: such a client gets the live
	// feed from now on.
	if resume {
		if next := g.cfg.Broker.NextOffset(); after >= next {
			after = next - 1
		}
	}

	// Per-write deadlines: a transport-stalled client (dead laptop, NAT
	// half-open) must fail its write and unwind the pump rather than
	// block it forever — a global server WriteTimeout can't be used on
	// an endless stream. SetWriteDeadline errors (unsupported writer)
	// are ignored; writes then simply have no deadline, as before.
	rc := http.NewResponseController(w)
	deadline := func() { _ = rc.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout)) }

	if resume {
		g.sseResumed.Add(1)
	}
	if resume && g.cfg.Broker.Log() != nil {
		g.tailLog(w, r, fl, deadline, pattern, after)
		return
	}

	sub, err := g.cfg.Broker.Subscribe(pattern, buffer, policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer g.cfg.Broker.Unsubscribe(sub)
	// Retained replay happens inside Subscribe; a catalogue larger than
	// the client's buffer overflows it before the client had any chance
	// to read. Those drops are the replay's, not the consumer's — only
	// drops beyond this baseline count toward eviction.
	replayDropped := sub.Dropped()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	deadline()
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	g.sseStreams.Add(1)
	g.sseActive.Add(1)
	defer g.sseActive.Add(-1)

	flush := time.NewTicker(g.cfg.FlushInterval)
	defer flush.Stop()
	keepAlive := time.NewTicker(g.cfg.KeepAlive)
	defer keepAlive.Stop()

	var frames net.Buffers
	for {
		select {
		case <-r.Context().Done():
			return
		case <-g.ctx.Done():
			deadline()
			g.writeGoodbye(w, fl, "shutdown", sub.Dropped())
			return
		case <-keepAlive.C:
			deadline()
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-flush.C:
			// Evict before draining: a consumer that has already lost
			// dropLimit messages is not keeping up, and the backlog we
			// would write next is exactly what it failed to absorb.
			// The goodbye reports live-stream losses only, consistent
			// with the threshold. (On a durable broker the evicted
			// client recovers the gap by reconnecting with
			// Last-Event-ID — resumed streams are log-backed and never
			// evicted.)
			if dropped := sub.Dropped() - replayDropped; dropped >= dropLimit {
				g.slowDisconnects.Add(1)
				deadline()
				g.writeGoodbye(w, fl, "slow-consumer", dropped)
				return
			}
			// Coalesce the whole drain into one write and one flush:
			// the queue empties per wakeup anyway, so per-message
			// write/flush cycles only buy chunked-transfer overhead and
			// syscalls per event instead of per drain.
			frames = frames[:0]
			for _, m := range sub.Poll(0) {
				// Best-effort resume without a log: suppress events the
				// client already saw; history itself is gone.
				if resume && m.Offset <= after {
					continue
				}
				frames = append(frames, messageFrame(m))
			}
			if len(frames) == 0 {
				continue
			}
			deadline()
			n := len(frames)
			if err := writeFrames(w, frames); err != nil {
				return
			}
			g.sseEvents.Add(int64(n))
			fl.Flush()
		}
	}
}

// tailLog serves a resuming client directly from the event log: no
// broker queue at all. The log totally orders delivery by offset, so
// the stream cannot miss, duplicate, or reorder events — not even when
// racing publishers offer queue messages out of offset order, or when
// the client reads slower than the world publishes (the backlog lives
// on disk, not in a bounded buffer). Each flush tick extends the scan
// from the cursor; an idle tick costs one offset comparison.
func (g *Gateway) tailLog(w http.ResponseWriter, r *http.Request, fl http.Flusher, deadline func(), pattern string, after uint64) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	deadline()
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	g.sseStreams.Add(1)
	g.sseActive.Add(1)
	defer g.sseActive.Add(-1)

	scanCursor, lastSent := after+1, after
	var err error
	scanCursor, lastSent, err = g.catchUp(w, r, fl, deadline, pattern, scanCursor, lastSent)
	if err != nil {
		g.endTail(w, fl, deadline, err)
		return
	}

	flush := time.NewTicker(g.cfg.FlushInterval)
	defer flush.Stop()
	keepAlive := time.NewTicker(g.cfg.KeepAlive)
	defer keepAlive.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-g.ctx.Done():
			deadline()
			g.writeGoodbye(w, fl, "shutdown", 0)
			return
		case <-keepAlive.C:
			deadline()
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-flush.C:
			if g.cfg.Broker.NextOffset() <= scanCursor {
				continue
			}
			scanCursor, lastSent, err = g.catchUp(w, r, fl, deadline, pattern, scanCursor, lastSent)
			if err != nil {
				g.endTail(w, fl, deadline, err)
				return
			}
		}
	}
}

// endTail closes a log-tail stream according to why it stopped: silence
// for a dead client or a cancelled request, a shutdown goodbye when the
// gateway is draining, and a replay-failed goodbye when the log itself
// could not be read — the client knows to reconnect rather than wait.
func (g *Gateway) endTail(w http.ResponseWriter, fl http.Flusher, deadline func(), err error) {
	switch {
	case errors.Is(err, errClientGone):
	case errors.Is(err, errStreamClosed):
		if g.ctx.Err() != nil {
			deadline()
			g.writeGoodbye(w, fl, "shutdown", 0)
		}
	default:
		deadline()
		g.writeGoodbye(w, fl, "replay-failed", 0)
	}
}

// catchUp streams logged history to the client: records with offset >
// lastSent matching pattern, scanning from scanCursor, looping until
// the replay reaches the (possibly still advancing) end of the log. It
// returns the new scan cursor and dedupe cursor. A transient replay
// error — compaction can remove a segment file between the scan's
// snapshot and its open — retries with a fresh snapshot; only repeated
// failure without progress is surfaced, so a recoverable race never
// silently skips history. Client writes and both contexts are checked
// per record, so shutdown cannot hang behind a long catch-up.
func (g *Gateway) catchUp(w http.ResponseWriter, r *http.Request, fl http.Flusher, deadline func(), pattern string, scanCursor, lastSent uint64) (uint64, uint64, error) {
	retries := 0
	var frames net.Buffers
	// flushFrames coalesces the batch into one client write and one
	// Flush. lastSent has already advanced past every queued frame, so
	// the batch MUST drain before any retry decision — an unflushed
	// frame plus a rescan would skip those records for good.
	flushFrames := func() error {
		if len(frames) == 0 {
			return nil
		}
		n := len(frames)
		deadline()
		err := writeFrames(w, frames)
		frames = frames[:0]
		if err != nil {
			return errClientGone
		}
		g.sseEvents.Add(int64(n))
		fl.Flush()
		return nil
	}
	for {
		if r.Context().Err() != nil || g.ctx.Err() != nil {
			return scanCursor, lastSent, errStreamClosed
		}
		wrote := 0
		next, err := g.cfg.Broker.ReplayFrom(scanCursor, pattern, func(m core.Message) error {
			if r.Context().Err() != nil || g.ctx.Err() != nil {
				return errStreamClosed
			}
			// A retried scan re-reads delivered records; skip them.
			if m.Offset <= lastSent {
				return nil
			}
			frames = append(frames, messageFrame(m))
			lastSent = m.Offset
			wrote++
			if len(frames) >= catchUpBatch {
				return flushFrames()
			}
			return nil
		})
		if ferr := flushFrames(); ferr != nil {
			return scanCursor, lastSent, ferr
		}
		if wrote > 0 {
			retries = 0
		}
		if err != nil {
			if errors.Is(err, errClientGone) || errors.Is(err, errStreamClosed) {
				return scanCursor, lastSent, err
			}
			retries++
			if retries >= 3 {
				return scanCursor, lastSent, err
			}
			continue
		}
		if next <= scanCursor {
			return next, lastSent, nil
		}
		scanCursor = next
	}
}

// writeGoodbye emits the terminal event; errors are moot, the stream is
// ending either way. Goodbyes carry no id: the SSE id is the resume
// cursor, and a terminal notice must not disturb it.
func (g *Gateway) writeGoodbye(w http.ResponseWriter, fl http.Flusher, reason string, dropped int) {
	switch reason {
	case "shutdown":
		g.goodbyeShutdown.Add(1)
	case "slow-consumer":
		g.goodbyeSlow.Add(1)
	case "replay-failed":
		g.goodbyeReplayFailed.Add(1)
	}
	_ = writeEvent(w, "goodbye", map[string]any{
		"reason":  reason,
		"dropped": dropped,
	}, 0)
	fl.Flush()
}

// catchUpBatch bounds how many frames a log catch-up accumulates before
// forcing a write+flush, so a multi-gigabyte history replay never
// buffers unbounded memory per client.
const catchUpBatch = 64

// coalesceMax bounds the pooled buffer writeFrames coalesces into; a
// drain whose frames total more than this skips the copy and hands the
// batch to net.Buffers instead (writev on connections that support it).
const coalesceMax = 64 << 10

var coalescePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 8<<10)
	return &b
}}

// writeFrames writes a batch of prebuilt SSE frames with one client
// write instead of one per frame. Frames are message-cache-shared and
// must not be modified, so small batches are copied into a pooled
// buffer (one Write → one chunked-transfer chunk → one syscall) and
// jumbo batches go through net.Buffers, which uses writev where the
// underlying connection supports it and sequential writes elsewhere.
// The frames slice is consumed either way — callers reset it.
func writeFrames(w http.ResponseWriter, frames net.Buffers) error {
	if len(frames) == 0 {
		return nil
	}
	if len(frames) == 1 {
		_, err := w.Write(frames[0])
		return err
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	if total > coalesceMax {
		_, err := frames.WriteTo(w)
		return err
	}
	bp := coalescePool.Get().(*[]byte)
	buf := (*bp)[:0]
	for _, f := range frames {
		buf = append(buf, f...)
	}
	_, err := w.Write(buf)
	if cap(buf) <= coalesceMax {
		*bp = buf[:0]
		coalescePool.Put(bp)
	}
	return err
}

// messageFrame renders (or fetches the cached) complete SSE frame for a
// message: "id: <offset>\nevent: message\ndata: <envelope JSON>\n\n".
// The id: line is omitted for offset 0 (a message that never passed
// through a broker) so the client's Last-Event-ID keeps pointing at
// real history.
//
//dewsvet:hotpath
func messageFrame(m core.Message) []byte {
	// The render closure runs at most once per published message —
	// SharedFrame caches the frame, so every later subscriber gets the
	// prebuilt bytes and the steady-state call allocates nothing.
	//dewsvet:hotalloc-ok once-per-message render; SharedFrame caches the result for every later call
	return m.SharedFrame(func(payloadJSON []byte) []byte {
		body, err := json.Marshal(Envelope{
			Offset:  m.Offset,
			Topic:   m.Topic,
			Time:    m.Time,
			Payload: payloadJSON,
			Headers: m.Headers,
		})
		if err != nil {
			// Only a non-marshalable time (year outside [0,9999]) can
			// land here; degrade to a minimal envelope rather than
			// killing the stream.
			body, _ = json.Marshal(Envelope{Offset: m.Offset, Topic: m.Topic, Payload: payloadJSON, Headers: m.Headers})
		}
		buf := make([]byte, 0, len(body)+48)
		if m.Offset > 0 {
			buf = append(buf, "id: "...)
			buf = strconv.AppendUint(buf, m.Offset, 10)
			buf = append(buf, '\n')
		}
		buf = append(buf, "event: message\ndata: "...)
		buf = append(buf, body...)
		buf = append(buf, "\n\n"...)
		return buf
	})
}

// writeEvent writes one non-message SSE frame (goodbye). id 0 omits the
// id: line so the client's Last-Event-ID keeps pointing at real
// history.
func writeEvent(w http.ResponseWriter, event string, data any, id uint64) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if id > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, body)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, body)
	}
	return err
}
