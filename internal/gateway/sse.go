package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// handleSubscribe streams matching messages to the client as
// Server-Sent Events. The stream is backed by a bounded broker
// subscription, so retained replay, wildcard matching and QoS drop
// accounting are exactly the in-process semantics. A client whose
// subscription drops more than the configured limit is disconnected
// with a terminal "goodbye" event (slow-consumer eviction).
//
//	GET /subscribe?pattern=obs/%2B/Rainfall&buffer=64&policy=oldest
//
// Events:
//
//	event: message   data: Envelope JSON        (one per delivery)
//	event: goodbye   data: {"reason", "dropped"} (terminal)
//	: keep-alive                                 (comment heartbeat)
func (g *Gateway) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		httpError(w, http.StatusBadRequest, "missing ?pattern=")
		return
	}
	buffer, err := queryInt(r, "buffer", g.cfg.DefaultBuffer)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if buffer < 1 {
		buffer = 1
	}
	if buffer > g.cfg.MaxBuffer {
		buffer = g.cfg.MaxBuffer
	}
	policy := core.DropOldest
	switch r.URL.Query().Get("policy") {
	case "", "oldest":
	case "newest":
		policy = core.DropNewest
	default:
		httpError(w, http.StatusBadRequest, "bad policy (want oldest|newest)")
		return
	}
	dropLimit := g.cfg.DropLimit
	if dropLimit <= 0 {
		dropLimit = buffer
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	if !g.addStream() {
		httpError(w, http.StatusServiceUnavailable, "gateway is shutting down")
		return
	}
	defer g.wg.Done()

	sub, err := g.cfg.Broker.Subscribe(pattern, buffer, policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer g.cfg.Broker.Unsubscribe(sub)
	// Retained replay happens inside Subscribe; a catalogue larger than
	// the client's buffer overflows it before the client had any chance
	// to read. Those drops are the replay's, not the consumer's — only
	// drops beyond this baseline count toward eviction.
	replayDropped := sub.Dropped()

	// Per-write deadlines: a transport-stalled client (dead laptop, NAT
	// half-open) must fail its write and unwind the pump rather than
	// block it forever — a global server WriteTimeout can't be used on
	// an endless stream. SetWriteDeadline errors (unsupported writer)
	// are ignored; writes then simply have no deadline, as before.
	rc := http.NewResponseController(w)
	deadline := func() { _ = rc.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout)) }

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	deadline()
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	g.sseStreams.Add(1)
	g.sseActive.Add(1)
	defer g.sseActive.Add(-1)

	flush := time.NewTicker(g.cfg.FlushInterval)
	defer flush.Stop()
	keepAlive := time.NewTicker(g.cfg.KeepAlive)
	defer keepAlive.Stop()

	eventID := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case <-g.ctx.Done():
			deadline()
			g.writeGoodbye(w, fl, &eventID, "shutdown", sub.Dropped())
			return
		case <-keepAlive.C:
			deadline()
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-flush.C:
			// Evict before draining: a consumer that has already lost
			// dropLimit messages is not keeping up, and the backlog we
			// would write next is exactly what it failed to absorb.
			// The goodbye reports live-stream losses only, consistent
			// with the threshold.
			if dropped := sub.Dropped() - replayDropped; dropped >= dropLimit {
				g.slowDisconnects.Add(1)
				deadline()
				g.writeGoodbye(w, fl, &eventID, "slow-consumer", dropped)
				return
			}
			msgs := sub.Poll(0)
			if len(msgs) == 0 {
				continue
			}
			deadline()
			for _, m := range msgs {
				if err := writeEvent(w, &eventID, "message", envelopeOf(m)); err != nil {
					return
				}
			}
			g.sseEvents.Add(int64(len(msgs)))
			fl.Flush()
		}
	}
}

// writeGoodbye emits the terminal event; errors are moot, the stream is
// ending either way.
func (g *Gateway) writeGoodbye(w http.ResponseWriter, fl http.Flusher, eventID *int, reason string, dropped int) {
	_ = writeEvent(w, eventID, "goodbye", map[string]any{
		"reason":  reason,
		"dropped": dropped,
	})
	fl.Flush()
}

// writeEvent writes one SSE frame with an incrementing id.
func writeEvent(w http.ResponseWriter, eventID *int, event string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	*eventID++
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", *eventID, event, body)
	return err
}
