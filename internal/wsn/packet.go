package wsn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Packet framing: a compact binary mote frame in the spirit of a 6LoWPAN
// application payload. Layout (big endian):
//
//	magic     uint16  0xDE25
//	version   uint8   1
//	nodeLen   uint8
//	node      []byte  (nodeLen)
//	seq       uint32
//	unixTime  int64
//	battery   uint16  (centivolts)
//	count     uint8
//	readings  count × { code uint8, value float64 }
//	crc       uint16  (CRC-16/CCITT over everything before it)
//
// A frame carries one sampling round of one node; property codes are
// vendor-scoped (the gateway knows each node's vendor).
const (
	packetMagic   = 0xDE25
	packetVersion = 1
	maxNodeIDLen  = 64
	maxReadings   = 32
)

// Packet sentinel errors.
var (
	ErrBadMagic    = errors.New("wsn: bad packet magic")
	ErrBadVersion  = errors.New("wsn: unsupported packet version")
	ErrBadChecksum = errors.New("wsn: packet checksum mismatch")
	ErrTruncated   = errors.New("wsn: truncated packet")
)

// PacketReading is one (code, value) pair inside a frame.
type PacketReading struct {
	Code  uint8
	Value float64
}

// Packet is a decoded mote frame.
type Packet struct {
	NodeID   string
	Seq      uint32
	Time     time.Time
	BatteryV float64
	Readings []PacketReading
}

// EncodePacket serializes the frame.
func EncodePacket(p Packet) ([]byte, error) {
	if len(p.NodeID) == 0 || len(p.NodeID) > maxNodeIDLen {
		return nil, fmt.Errorf("wsn: node id length %d out of range", len(p.NodeID))
	}
	if len(p.Readings) == 0 || len(p.Readings) > maxReadings {
		return nil, fmt.Errorf("wsn: reading count %d out of range", len(p.Readings))
	}
	size := 2 + 1 + 1 + len(p.NodeID) + 4 + 8 + 2 + 1 + len(p.Readings)*9 + 2
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint16(buf, packetMagic)
	buf = append(buf, packetVersion, byte(len(p.NodeID)))
	buf = append(buf, p.NodeID...)
	buf = binary.BigEndian.AppendUint32(buf, p.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Time.Unix()))
	cv := uint16(math.Round(p.BatteryV * 100))
	buf = binary.BigEndian.AppendUint16(buf, cv)
	buf = append(buf, byte(len(p.Readings)))
	for _, r := range p.Readings {
		buf = append(buf, r.Code)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r.Value))
	}
	buf = binary.BigEndian.AppendUint16(buf, crc16(buf))
	return buf, nil
}

// DecodePacket parses and verifies a frame.
func DecodePacket(buf []byte) (Packet, error) {
	var p Packet
	if len(buf) < 2+1+1+4+8+2+1+2 {
		return p, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf) != packetMagic {
		return p, ErrBadMagic
	}
	if buf[2] != packetVersion {
		return p, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	// Verify CRC before trusting lengths further in.
	body, crcBytes := buf[:len(buf)-2], buf[len(buf)-2:]
	if crc16(body) != binary.BigEndian.Uint16(crcBytes) {
		return p, ErrBadChecksum
	}
	nodeLen := int(buf[3])
	off := 4
	if len(buf) < off+nodeLen+4+8+2+1+2 {
		return p, ErrTruncated
	}
	p.NodeID = string(buf[off : off+nodeLen])
	off += nodeLen
	p.Seq = binary.BigEndian.Uint32(buf[off:])
	off += 4
	p.Time = time.Unix(int64(binary.BigEndian.Uint64(buf[off:])), 0).UTC()
	off += 8
	p.BatteryV = float64(binary.BigEndian.Uint16(buf[off:])) / 100
	off += 2
	count := int(buf[off])
	off++
	if len(buf) < off+count*9+2 {
		return p, ErrTruncated
	}
	p.Readings = make([]PacketReading, count)
	for i := 0; i < count; i++ {
		p.Readings[i].Code = buf[off]
		p.Readings[i].Value = math.Float64frombits(binary.BigEndian.Uint64(buf[off+1:]))
		off += 9
	}
	return p, nil
}

// crc16 implements CRC-16/CCITT-FALSE.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// PackReadings groups one node's sampling round into a frame. All
// readings must share node, time, and sequence.
func PackReadings(vendor *VendorProfile, rs []RawReading) (Packet, error) {
	if len(rs) == 0 {
		return Packet{}, fmt.Errorf("wsn: no readings to pack")
	}
	p := Packet{
		NodeID:   rs[0].NodeID,
		Seq:      rs[0].Seq,
		Time:     rs[0].Time,
		BatteryV: rs[0].BatteryV,
	}
	for _, r := range rs {
		if r.NodeID != p.NodeID {
			return Packet{}, fmt.Errorf("wsn: mixed nodes in one frame (%s vs %s)", r.NodeID, p.NodeID)
		}
		code, err := codeForWireName(vendor, r.PropertyName)
		if err != nil {
			return Packet{}, err
		}
		p.Readings = append(p.Readings, PacketReading{Code: code, Value: r.Value})
	}
	return p, nil
}

// UnpackReadings reverses PackReadings using the vendor's code table.
func UnpackReadings(vendor *VendorProfile, district string, p Packet) ([]RawReading, error) {
	out := make([]RawReading, 0, len(p.Readings))
	for _, r := range p.Readings {
		ch, err := channelForCode(vendor, r.Code)
		if err != nil {
			return nil, err
		}
		out = append(out, RawReading{
			NodeID:       p.NodeID,
			Vendor:       vendor.Name,
			District:     district,
			PropertyName: ch.WireName,
			UnitName:     ch.UnitName,
			Value:        r.Value,
			Time:         p.Time,
			Seq:          p.Seq,
			BatteryV:     p.BatteryV,
		})
	}
	return out, nil
}

func codeForWireName(v *VendorProfile, wireName string) (uint8, error) {
	for _, ch := range v.Channels {
		if ch.WireName == wireName {
			return ch.Code, nil
		}
	}
	return 0, fmt.Errorf("wsn: vendor %s has no wire name %q", v.Name, wireName)
}

func channelForCode(v *VendorProfile, code uint8) (Channel, error) {
	for _, ch := range v.Channels {
		if ch.Code == code {
			return ch, nil
		}
	}
	return Channel{}, fmt.Errorf("wsn: vendor %s has no property code %d", v.Name, code)
}
