package wsn

import (
	"math/rand"
	"sync"
)

// LinkConfig parameterizes the lossy radio hop between a mote and the
// gateway.
type LinkConfig struct {
	// LossRate is the per-transmission drop probability.
	LossRate float64
	// CorruptRate is the per-transmission bit-corruption probability
	// (caught by the CRC at the receiver).
	CorruptRate float64
	// MaxRetries bounds the simple stop-and-wait ARQ; 0 = no retries.
	MaxRetries int
	// Seed drives the link's randomness.
	Seed int64
}

// LinkStats accumulates delivery accounting.
type LinkStats struct {
	Sent       int
	Delivered  int
	Lost       int
	Corrupted  int
	Retries    int
	GivenUp    int
	BytesMoved int
}

// Goodput returns the fraction of frames ultimately delivered.
func (s LinkStats) Goodput() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Sent)
}

// Link is a lossy frame conduit with stop-and-wait retransmission.
// Deliver returns the frame bytes that arrived (nil when the frame was
// lost for good). It is safe for concurrent use.
type Link struct {
	cfg   LinkConfig
	mu    sync.Mutex
	rng   *rand.Rand
	stats LinkStats
}

// NewLink builds a link.
func NewLink(cfg LinkConfig) *Link {
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a copy of the accumulated statistics.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Deliver attempts to move one frame across the link, retrying on loss or
// corruption up to MaxRetries. The returned slice is a fresh copy.
func (l *Link) Deliver(frame []byte) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Sent++
	for attempt := 0; attempt <= l.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			l.stats.Retries++
		}
		if l.rng.Float64() < l.cfg.LossRate {
			l.stats.Lost++
			continue
		}
		out := make([]byte, len(frame))
		copy(out, frame)
		if l.rng.Float64() < l.cfg.CorruptRate {
			l.stats.Corrupted++
			// Flip a random bit; the receiver CRC rejects it, which in
			// stop-and-wait shows up as a retry.
			idx := l.rng.Intn(len(out))
			out[idx] ^= 1 << uint(l.rng.Intn(8))
			if _, err := DecodePacket(out); err != nil {
				continue
			}
			// Mutation dodged the CRC (rare); deliver it — exactly what a
			// real link would do.
		}
		l.stats.Delivered++
		l.stats.BytesMoved += len(out)
		return out
	}
	l.stats.GivenUp++
	return nil
}
