package wsn

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// CloudStore is the cloud observation database of the paper's §5: the SMS
// gateway uploads semi-processed readings into it, and the middleware's
// interface protocol layer downloads from it. The implementation is an
// in-memory, thread-safe store with a cursor-based download protocol so a
// consumer can poll incrementally.
type CloudStore struct {
	mu       sync.RWMutex
	readings []RawReading
	uploads  int
}

// NewCloudStore returns an empty store.
func NewCloudStore() *CloudStore { return &CloudStore{} }

// Upload appends a batch of readings (idempotence is the uploader's
// problem, as with real stores).
func (c *CloudStore) Upload(batch []RawReading) {
	if len(batch) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readings = append(c.readings, batch...)
	c.uploads++
}

// Len returns the number of stored readings.
func (c *CloudStore) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.readings)
}

// Uploads returns how many batches were uploaded.
func (c *CloudStore) Uploads() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.uploads
}

// Download returns up to limit readings starting at cursor, plus the next
// cursor. A limit <= 0 means "everything from cursor".
func (c *CloudStore) Download(cursor int, limit int) ([]RawReading, int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if cursor < 0 || cursor > len(c.readings) {
		return nil, 0, fmt.Errorf("wsn: cursor %d out of range [0,%d]", cursor, len(c.readings))
	}
	end := len(c.readings)
	if limit > 0 && cursor+limit < end {
		end = cursor + limit
	}
	out := make([]RawReading, end-cursor)
	copy(out, c.readings[cursor:end])
	return out, end, nil
}

// Window returns a copy of the readings with Time in [from, to).
func (c *CloudStore) Window(from, to time.Time) []RawReading {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []RawReading
	for _, r := range c.readings {
		if !r.Time.Before(from) && r.Time.Before(to) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// SMSGateway chunks mote frames into SMS-sized messages (the paper: "the
// environmental readings are uploaded via SMS gateway for storage in the
// cloud") and reassembles them at the cloud side. Chunking is simulated
// at the byte level with a small header per message.
type SMSGateway struct {
	// MTU is the usable payload per SMS (140 bytes of 8-bit data minus
	// our 4-byte chunk header).
	MTU int
	// Sent counts SMS messages.
	Sent int
}

// NewSMSGateway returns a gateway with the standard 140-byte SMS budget.
func NewSMSGateway() *SMSGateway { return &SMSGateway{MTU: 136} }

// smsChunk is one simulated SMS: frame id, chunk index, total count, data.
type smsChunk struct {
	frameID uint16
	index   uint8
	total   uint8
	data    []byte
}

// Chunk splits a frame into SMS messages.
func (g *SMSGateway) Chunk(frameID uint16, frame []byte) []smsChunk {
	if g.MTU <= 0 {
		g.MTU = 136
	}
	total := (len(frame) + g.MTU - 1) / g.MTU
	chunks := make([]smsChunk, 0, total)
	for i := 0; i < total; i++ {
		lo := i * g.MTU
		hi := lo + g.MTU
		if hi > len(frame) {
			hi = len(frame)
		}
		data := make([]byte, hi-lo)
		copy(data, frame[lo:hi])
		chunks = append(chunks, smsChunk{frameID: frameID, index: uint8(i), total: uint8(total), data: data})
	}
	g.Sent += total
	return chunks
}

// Reassemble reconstitutes a frame from its chunks (any order). It
// returns an error when chunks are missing or inconsistent.
func (g *SMSGateway) Reassemble(chunks []smsChunk) ([]byte, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("wsn: no chunks")
	}
	total := int(chunks[0].total)
	frameID := chunks[0].frameID
	if len(chunks) != total {
		return nil, fmt.Errorf("wsn: have %d of %d chunks for frame %d", len(chunks), total, frameID)
	}
	ordered := make([][]byte, total)
	for _, c := range chunks {
		if c.frameID != frameID {
			return nil, fmt.Errorf("wsn: mixed frames %d and %d", frameID, c.frameID)
		}
		if int(c.index) >= total {
			return nil, fmt.Errorf("wsn: chunk index %d out of range", c.index)
		}
		if ordered[c.index] != nil {
			return nil, fmt.Errorf("wsn: duplicate chunk %d", c.index)
		}
		ordered[c.index] = c.data
	}
	var out []byte
	for i, part := range ordered {
		if part == nil {
			return nil, fmt.Errorf("wsn: missing chunk %d", i)
		}
		out = append(out, part...)
	}
	return out, nil
}

// Gateway ties the pieces together: it accepts a node's sampling round,
// frames it, pushes it across the lossy link, verifies, chunks it over
// SMS, reassembles, decodes, and uploads to the cloud store. It is the
// full §5 uplink path in one call.
type Gateway struct {
	Link  *Link
	SMS   *SMSGateway
	Cloud *CloudStore
	// Districts maps node ID → district (gateways know their deployment).
	Districts map[string]string
	// Vendors maps node ID → vendor profile.
	Vendors map[string]*VendorProfile

	frameSeq uint16
	// Decoded counts frames that survived the full path.
	Decoded int
	// Dropped counts frames lost despite retries.
	Dropped int
}

// NewGateway wires a gateway from its parts.
func NewGateway(link *Link, cloud *CloudStore) *Gateway {
	return &Gateway{
		Link:      link,
		SMS:       NewSMSGateway(),
		Cloud:     cloud,
		Districts: make(map[string]string),
		Vendors:   make(map[string]*VendorProfile),
	}
}

// Register tells the gateway about a node.
func (g *Gateway) Register(n *Node) {
	g.Districts[n.cfg.ID] = n.cfg.District
	g.Vendors[n.cfg.ID] = n.cfg.Vendor
}

// Ingest pushes one node round through the uplink. Readings from
// unregistered nodes are rejected.
func (g *Gateway) Ingest(rs []RawReading) error {
	if len(rs) == 0 {
		return nil
	}
	nodeID := rs[0].NodeID
	vendor, ok := g.Vendors[nodeID]
	if !ok {
		return fmt.Errorf("wsn: node %s not registered with gateway", nodeID)
	}
	pkt, err := PackReadings(vendor, rs)
	if err != nil {
		return err
	}
	frame, err := EncodePacket(pkt)
	if err != nil {
		return err
	}
	delivered := g.Link.Deliver(frame)
	if delivered == nil {
		g.Dropped++
		return nil // loss is data, not an error
	}
	g.frameSeq++
	chunks := g.SMS.Chunk(g.frameSeq, delivered)
	reassembled, err := g.SMS.Reassemble(chunks)
	if err != nil {
		return err
	}
	decoded, err := DecodePacket(reassembled)
	if err != nil {
		// Corrupted frame that dodged the link retries; count as drop.
		g.Dropped++
		return nil
	}
	back, err := UnpackReadings(vendor, g.Districts[nodeID], decoded)
	if err != nil {
		return err
	}
	g.Cloud.Upload(back)
	g.Decoded++
	return nil
}
