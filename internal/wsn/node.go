package wsn

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/climate"
)

// RawReading is one vendor-formatted measurement as it leaves a mote —
// before any semantic mediation. Names and units are vendor-scoped.
type RawReading struct {
	// NodeID identifies the mote ("fs-mangaung-libelium-03").
	NodeID string
	// Vendor is the vendor profile name.
	Vendor string
	// District is the deployment site (a Free State district name).
	District string
	// PropertyName is the vendor's wire name for the measured property.
	PropertyName string
	// UnitName is the vendor's unit string.
	UnitName string
	// Value is the measurement in vendor units.
	Value float64
	// Time is the measurement timestamp.
	Time time.Time
	// Seq is the per-node sequence number.
	Seq uint32
	// BatteryV is the mote battery voltage (quality signal).
	BatteryV float64
}

// String renders the reading for logs.
func (r RawReading) String() string {
	return fmt.Sprintf("%s %s=%.3f%s seq=%d @%s",
		r.NodeID, r.PropertyName, r.Value, r.UnitName, r.Seq, r.Time.Format("2006-01-02"))
}

// NodeConfig configures a simulated mote.
type NodeConfig struct {
	ID       string
	Vendor   *VendorProfile
	District string
	// Modalities the node actually carries (subset of the vendor's).
	Modalities []Modality
	// NoiseSD is multiplicative Gaussian noise (fraction of value).
	NoiseSD float64
	// DriftPerYear is a slow calibration drift (fraction per year).
	DriftPerYear float64
	// FailureRate is the per-sample probability of producing nothing
	// (sensor fault, depleted battery).
	FailureRate float64
	// Seed for the node's private randomness.
	Seed int64
}

// Node simulates one mote sampling the shared climate truth.
type Node struct {
	cfg      NodeConfig
	rng      *rand.Rand
	seq      uint32
	started  time.Time
	batteryV float64
}

// NewNode builds a node, validating the configuration against the vendor
// profile.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("wsn: node needs an ID")
	}
	if cfg.Vendor == nil {
		return nil, fmt.Errorf("wsn: node %s needs a vendor profile", cfg.ID)
	}
	if len(cfg.Modalities) == 0 {
		return nil, fmt.Errorf("wsn: node %s has no modalities", cfg.ID)
	}
	for _, m := range cfg.Modalities {
		if _, ok := cfg.Vendor.Channel(m); !ok {
			return nil, fmt.Errorf("wsn: vendor %s has no channel for %s", cfg.Vendor.Name, m)
		}
	}
	return &Node{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		batteryV: 4.1,
	}, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.cfg.ID }

// Vendor returns the vendor profile name.
func (n *Node) Vendor() string { return n.cfg.Vendor.Name }

// Sample reads the day's climate truth through the node's channels,
// applying noise, drift and failures. The returned slice may be empty on
// a failed sampling round.
func (n *Node) Sample(day climate.Day) []RawReading {
	if n.started.IsZero() {
		n.started = day.Date
	}
	// Battery decays slowly; solar recharge keeps it in a working band.
	n.batteryV -= 0.0004
	if n.batteryV < 3.4 {
		n.batteryV = 3.9
	}

	var out []RawReading
	elapsedYears := day.Date.Sub(n.started).Hours() / (24 * 365)
	drift := 1 + n.cfg.DriftPerYear*elapsedYears
	for _, m := range n.cfg.Modalities {
		if n.rng.Float64() < n.cfg.FailureRate {
			continue
		}
		ch, _ := n.cfg.Vendor.Channel(m)
		canonical := canonicalValue(day, m)
		noisy := canonical * (1 + n.cfg.NoiseSD*n.rng.NormFloat64()) * drift
		// Physical floors: no negative rain/wind/level.
		if noisy < 0 && (m == ModalityRainfall || m == ModalityWindSpeed || m == ModalityWaterLevel || m == ModalityNDVI || m == ModalitySoilMoisture) {
			noisy = 0
		}
		n.seq++
		out = append(out, RawReading{
			NodeID:       n.cfg.ID,
			Vendor:       n.cfg.Vendor.Name,
			District:     n.cfg.District,
			PropertyName: ch.WireName,
			UnitName:     ch.UnitName,
			Value:        ch.FromCanonical(noisy),
			Time:         day.Date.Add(6 * time.Hour), // morning sampling round
			Seq:          n.seq,
			BatteryV:     n.batteryV,
		})
	}
	return out
}

// canonicalValue extracts the modality's canonical value from a climate day.
func canonicalValue(day climate.Day, m Modality) float64 {
	switch m {
	case ModalityRainfall:
		return day.RainMM
	case ModalitySoilMoisture:
		return day.SoilMoisture
	case ModalityAirTemperature:
		return day.TempC
	case ModalityRelativeHumidity:
		return day.RelHumidity
	case ModalityWindSpeed:
		return day.WindSpeedMS
	case ModalityWaterLevel:
		return day.WaterLevelM
	case ModalityNDVI:
		return day.NDVI
	default:
		return 0
	}
}

// Fleet is a set of nodes deployed across districts.
type Fleet struct {
	Nodes []*Node
}

// NewFleet deploys count nodes round-robin across the given districts and
// the built-in vendor population, with realistic defaults. Deterministic
// per seed.
func NewFleet(count int, districts []string, seed int64) (*Fleet, error) {
	if count <= 0 {
		return nil, fmt.Errorf("wsn: fleet size must be positive")
	}
	if len(districts) == 0 {
		return nil, fmt.Errorf("wsn: fleet needs districts")
	}
	vendors := BuiltinVendors()
	rng := rand.New(rand.NewSource(seed))
	f := &Fleet{}
	for i := 0; i < count; i++ {
		vendor := vendors[i%len(vendors)]
		district := districts[i%len(districts)]
		mods := make([]Modality, 0, len(vendor.Channels))
		for _, m := range AllModalities {
			if _, ok := vendor.Channel(m); ok {
				mods = append(mods, m)
			}
		}
		node, err := NewNode(NodeConfig{
			ID:           fmt.Sprintf("fs-%s-%s-%02d", district, vendor.Name, i),
			Vendor:       vendor,
			District:     district,
			Modalities:   mods,
			NoiseSD:      0.02 + 0.03*rng.Float64(),
			DriftPerYear: 0.01 * rng.Float64(),
			FailureRate:  0.01 + 0.02*rng.Float64(),
			Seed:         seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		f.Nodes = append(f.Nodes, node)
	}
	return f, nil
}

// Sample runs one sampling round across the fleet.
func (f *Fleet) Sample(day climate.Day) []RawReading {
	var out []RawReading
	for _, n := range f.Nodes {
		out = append(out, n.Sample(day)...)
	}
	return out
}
