// Package wsn simulates the paper's physical layer: a heterogeneous
// wireless sensor network of Waspmote-class motes reporting through a
// lossy 6LoWPAN-flavoured uplink and an SMS gateway into a cloud
// observation store, from which the middleware's interface protocol layer
// downloads semi-processed readings (§4.2.3, §5 of the paper).
//
// Heterogeneity is deliberate and is the phenomenon under study: each
// vendor profile uses its own property names (naming heterogeneity — the
// paper's "Hoehe"/"Stav" example) and its own units and scales (cognitive
// heterogeneity).
package wsn

import "fmt"

// Modality is the physical quantity a sensor channel measures,
// independent of how any vendor names it.
type Modality int

// The simulated modalities.
const (
	ModalityRainfall Modality = iota + 1
	ModalitySoilMoisture
	ModalityAirTemperature
	ModalityRelativeHumidity
	ModalityWindSpeed
	ModalityWaterLevel
	ModalityNDVI
)

// AllModalities lists every modality in a stable order.
var AllModalities = []Modality{
	ModalityRainfall, ModalitySoilMoisture, ModalityAirTemperature,
	ModalityRelativeHumidity, ModalityWindSpeed, ModalityWaterLevel,
	ModalityNDVI,
}

// String names the modality.
func (m Modality) String() string {
	switch m {
	case ModalityRainfall:
		return "rainfall"
	case ModalitySoilMoisture:
		return "soil-moisture"
	case ModalityAirTemperature:
		return "air-temperature"
	case ModalityRelativeHumidity:
		return "relative-humidity"
	case ModalityWindSpeed:
		return "wind-speed"
	case ModalityWaterLevel:
		return "water-level"
	case ModalityNDVI:
		return "ndvi"
	default:
		return fmt.Sprintf("Modality(%d)", int(m))
	}
}

// Channel describes one vendor-specific sensor channel: the name the
// vendor uses on the wire, the unit string it reports, and the conversion
// from canonical SI-ish values (mm, fraction, °C, %, m/s, m, index) to
// the vendor's scale.
type Channel struct {
	// Modality is the underlying physical quantity.
	Modality Modality
	// WireName is the vendor's property name as it appears in uplinked
	// data ("Hoehe", "soilMoist", ...).
	WireName string
	// UnitName is the vendor's unit string ("degF", "cbar", "%", ...).
	UnitName string
	// FromCanonical converts a canonical value into vendor units.
	FromCanonical func(float64) float64
	// Code is the compact on-wire property code used by the packet codec.
	Code uint8
}

// VendorProfile is a family of devices sharing naming and units.
type VendorProfile struct {
	// Name identifies the vendor ("libelium", "davis", ...).
	Name string
	// Channels maps modality → channel description.
	Channels map[Modality]Channel
}

// Channel returns the vendor's channel for a modality.
func (v *VendorProfile) Channel(m Modality) (Channel, bool) {
	c, ok := v.Channels[m]
	return c, ok
}

func identity(v float64) float64  { return v }
func toF(c float64) float64       { return c*9/5 + 32 }
func toKelvin(c float64) float64  { return c + 273.15 }
func toPercent(f float64) float64 { return f * 100 }
func toInches(mm float64) float64 { return mm / 25.4 }
func toKmh(ms float64) float64    { return ms * 3.6 }
func toCm(m float64) float64      { return m * 100 }
func toCbar(f float64) float64 {
	// Soil tension in centibar is inversely related to moisture; use the
	// simple linear stand-in 200*(1-f) used by irrigation charts.
	return 200 * (1 - f)
}

// BuiltinVendors returns the simulated vendor population. Codes are
// unique per vendor (not globally), mirroring real deployments where the
// wire format is vendor-scoped.
func BuiltinVendors() []*VendorProfile {
	return []*VendorProfile{
		{
			// Libelium Waspmote-style (the paper's §5 hardware), mostly
			// canonical names and SI units.
			Name: "libelium",
			Channels: map[Modality]Channel{
				ModalityRainfall:         {ModalityRainfall, "pluviometer", "mm", identity, 1},
				ModalitySoilMoisture:     {ModalitySoilMoisture, "soil_moisture", "frac", identity, 2},
				ModalityAirTemperature:   {ModalityAirTemperature, "temperature", "degC", identity, 3},
				ModalityRelativeHumidity: {ModalityRelativeHumidity, "humidity", "pct", identity, 4},
				ModalityWindSpeed:        {ModalityWindSpeed, "anemometer", "m_s", identity, 5},
				ModalityWaterLevel:       {ModalityWaterLevel, "water_level", "m", identity, 6},
				ModalityNDVI:             {ModalityNDVI, "ndvi", "idx", identity, 7},
			},
		},
		{
			// US-style station: Fahrenheit, inches, mph-ish (km/h here).
			Name: "davis",
			Channels: map[Modality]Channel{
				ModalityRainfall:         {ModalityRainfall, "rainRate", "in", toInches, 1},
				ModalitySoilMoisture:     {ModalitySoilMoisture, "soilMoist", "cbar", toCbar, 2},
				ModalityAirTemperature:   {ModalityAirTemperature, "outsideTemp", "degF", toF, 3},
				ModalityRelativeHumidity: {ModalityRelativeHumidity, "outsideHumidity", "pct", identity, 4},
				ModalityWindSpeed:        {ModalityWindSpeed, "windSpeed", "km_h", toKmh, 5},
			},
		},
		{
			// German hydrology network: the paper's "Hoehe" example.
			Name: "pegelonline",
			Channels: map[Modality]Channel{
				ModalityWaterLevel:     {ModalityWaterLevel, "Hoehe", "cm", toCm, 1},
				ModalityRainfall:       {ModalityRainfall, "Niederschlag", "mm", identity, 2},
				ModalityAirTemperature: {ModalityAirTemperature, "Lufttemperatur", "K", toKelvin, 3},
				ModalitySoilMoisture:   {ModalitySoilMoisture, "Bodenfeuchte", "pct", toPercent, 4},
			},
		},
		{
			// Czech hydro network: the paper's "Stav" example.
			Name: "chmi",
			Channels: map[Modality]Channel{
				ModalityWaterLevel:       {ModalityWaterLevel, "Stav", "cm", toCm, 1},
				ModalityRainfall:         {ModalityRainfall, "Srazky", "mm", identity, 2},
				ModalityAirTemperature:   {ModalityAirTemperature, "Teplota", "degC", identity, 3},
				ModalityRelativeHumidity: {ModalityRelativeHumidity, "Vlhkost", "pct", identity, 4},
			},
		},
		{
			// South African agricultural network (Afrikaans/Sesotho mix).
			Name: "agri-sa",
			Channels: map[Modality]Channel{
				ModalityRainfall:       {ModalityRainfall, "reenval", "mm", identity, 1},
				ModalitySoilMoisture:   {ModalitySoilMoisture, "grondvog", "pct", toPercent, 2},
				ModalityAirTemperature: {ModalityAirTemperature, "lugtemp", "degC", identity, 3},
				ModalityWindSpeed:      {ModalityWindSpeed, "windspoed", "km_h", toKmh, 4},
				ModalityNDVI:           {ModalityNDVI, "plantegroei", "idx", identity, 5},
			},
		},
	}
}

// VendorByName returns the built-in vendor with the given name.
func VendorByName(name string) (*VendorProfile, error) {
	for _, v := range BuiltinVendors() {
		if v.Name == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("wsn: unknown vendor %q", name)
}
