package wsn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/climate"
)

func testDay() climate.Day {
	return climate.Day{
		Date:         time.Date(2015, 11, 20, 0, 0, 0, 0, time.UTC),
		RainMM:       8.2,
		TempC:        24.5,
		SoilMoisture: 0.31,
		RelHumidity:  62,
		WindSpeedMS:  3.4,
		NDVI:         0.47,
		WaterLevelM:  2.6,
	}
}

func TestVendorProfiles(t *testing.T) {
	vendors := BuiltinVendors()
	if len(vendors) < 4 {
		t.Fatalf("want several vendors, got %d", len(vendors))
	}
	seenWireNames := make(map[string]string)
	for _, v := range vendors {
		codes := make(map[uint8]bool)
		for m, ch := range v.Channels {
			if ch.Modality != m {
				t.Errorf("%s: channel %q modality mismatch", v.Name, ch.WireName)
			}
			if codes[ch.Code] {
				t.Errorf("%s: duplicate code %d", v.Name, ch.Code)
			}
			codes[ch.Code] = true
			seenWireNames[ch.WireName] = v.Name
		}
	}
	// The paper's canonical examples must be present.
	if seenWireNames["Hoehe"] == "" || seenWireNames["Stav"] == "" {
		t.Error("expected the paper's Hoehe/Stav heterogeneity examples")
	}
}

func TestVendorByName(t *testing.T) {
	v, err := VendorByName("libelium")
	if err != nil || v.Name != "libelium" {
		t.Fatalf("VendorByName = %v, %v", v, err)
	}
	if _, err := VendorByName("acme"); err == nil {
		t.Error("unknown vendor should error")
	}
}

func TestUnitConversions(t *testing.T) {
	davis, _ := VendorByName("davis")
	tempCh, _ := davis.Channel(ModalityAirTemperature)
	if got := tempCh.FromCanonical(100); got != 212 {
		t.Errorf("100C = %vF, want 212", got)
	}
	rainCh, _ := davis.Channel(ModalityRainfall)
	if got := rainCh.FromCanonical(25.4); math.Abs(got-1) > 1e-9 {
		t.Errorf("25.4mm = %v in, want 1", got)
	}
	pegel, _ := VendorByName("pegelonline")
	lvl, _ := pegel.Channel(ModalityWaterLevel)
	if got := lvl.FromCanonical(2.5); got != 250 {
		t.Errorf("2.5m = %v cm, want 250", got)
	}
	kCh, _ := pegel.Channel(ModalityAirTemperature)
	if got := kCh.FromCanonical(0); got != 273.15 {
		t.Errorf("0C = %v K", got)
	}
}

func TestNodeValidation(t *testing.T) {
	lib, _ := VendorByName("libelium")
	cases := []NodeConfig{
		{},
		{ID: "x"},
		{ID: "x", Vendor: lib},
		{ID: "x", Vendor: lib, Modalities: []Modality{Modality(99)}},
	}
	for i, cfg := range cases {
		if _, err := NewNode(cfg); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	davis, _ := VendorByName("davis")
	// davis has no NDVI channel.
	if _, err := NewNode(NodeConfig{ID: "x", Vendor: davis, Modalities: []Modality{ModalityNDVI}}); err == nil {
		t.Error("modality absent from vendor must be rejected")
	}
}

func TestNodeSample(t *testing.T) {
	lib, _ := VendorByName("libelium")
	n, err := NewNode(NodeConfig{
		ID: "n1", Vendor: lib, District: "mangaung",
		Modalities: []Modality{ModalityRainfall, ModalityAirTemperature},
		NoiseSD:    0.01, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := n.Sample(testDay())
	if len(rs) != 2 {
		t.Fatalf("readings = %d, want 2", len(rs))
	}
	for _, r := range rs {
		if r.NodeID != "n1" || r.Vendor != "libelium" || r.District != "mangaung" {
			t.Errorf("metadata wrong: %+v", r)
		}
		if r.Seq == 0 {
			t.Error("sequence should start at 1")
		}
	}
	// Values should be near truth (1% noise).
	for _, r := range rs {
		switch r.PropertyName {
		case "pluviometer":
			if math.Abs(r.Value-8.2) > 1.5 {
				t.Errorf("rain %v too far from 8.2", r.Value)
			}
		case "temperature":
			if math.Abs(r.Value-24.5) > 3 {
				t.Errorf("temp %v too far from 24.5", r.Value)
			}
		}
	}
}

func TestNodeFailureRate(t *testing.T) {
	lib, _ := VendorByName("libelium")
	n, _ := NewNode(NodeConfig{
		ID: "n1", Vendor: lib,
		Modalities:  []Modality{ModalityRainfall},
		FailureRate: 1.0, Seed: 1,
	})
	if rs := n.Sample(testDay()); len(rs) != 0 {
		t.Errorf("full failure rate should produce nothing, got %d", len(rs))
	}
}

func TestFleetDeployment(t *testing.T) {
	f, err := NewFleet(10, []string{"mangaung", "xhariep"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes) != 10 {
		t.Fatalf("fleet size = %d", len(f.Nodes))
	}
	rs := f.Sample(testDay())
	if len(rs) == 0 {
		t.Fatal("fleet should produce readings")
	}
	vendors := make(map[string]bool)
	for _, n := range f.Nodes {
		vendors[n.Vendor()] = true
	}
	if len(vendors) < 4 {
		t.Errorf("fleet should span vendors, got %v", vendors)
	}
	if _, err := NewFleet(0, []string{"x"}, 1); err == nil {
		t.Error("zero fleet should error")
	}
	if _, err := NewFleet(3, nil, 1); err == nil {
		t.Error("no districts should error")
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		NodeID:   "fs-mangaung-libelium-03",
		Seq:      1234,
		Time:     time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		BatteryV: 3.87,
		Readings: []PacketReading{{Code: 1, Value: 8.25}, {Code: 3, Value: 24.5}},
	}
	buf, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeID != p.NodeID || got.Seq != p.Seq || !got.Time.Equal(p.Time) {
		t.Errorf("header mismatch: %+v", got)
	}
	if math.Abs(got.BatteryV-p.BatteryV) > 0.005 {
		t.Errorf("battery %v vs %v", got.BatteryV, p.BatteryV)
	}
	if len(got.Readings) != 2 || got.Readings[0] != p.Readings[0] || got.Readings[1] != p.Readings[1] {
		t.Errorf("readings mismatch: %+v", got.Readings)
	}
}

func TestPacketValidation(t *testing.T) {
	if _, err := EncodePacket(Packet{NodeID: "", Readings: []PacketReading{{1, 1}}}); err == nil {
		t.Error("empty node id should fail")
	}
	if _, err := EncodePacket(Packet{NodeID: "x"}); err == nil {
		t.Error("no readings should fail")
	}
	long := make([]PacketReading, maxReadings+1)
	if _, err := EncodePacket(Packet{NodeID: "x", Readings: long}); err == nil {
		t.Error("too many readings should fail")
	}
}

func TestPacketCorruptionDetected(t *testing.T) {
	p := Packet{NodeID: "n", Seq: 1, Time: time.Unix(1e9, 0), BatteryV: 4, Readings: []PacketReading{{1, 2.5}}}
	buf, _ := EncodePacket(p)
	for i := 0; i < len(buf); i++ {
		bad := make([]byte, len(buf))
		copy(bad, buf)
		bad[i] ^= 0x40
		if _, err := DecodePacket(bad); err == nil {
			// CRC collisions are possible in principle but a single-bit
			// flip is always caught by CRC-16.
			t.Errorf("bit flip at %d not detected", i)
		}
	}
	if _, err := DecodePacket(buf[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := DecodePacket(make([]byte, 64)); !errors.Is(err, ErrBadMagic) {
		t.Error("zero buffer should fail magic check")
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(maxReadings)
		p := Packet{
			NodeID:   "node-" + string(rune('a'+rng.Intn(26))),
			Seq:      rng.Uint32(),
			Time:     time.Unix(rng.Int63n(4e9), 0).UTC(),
			BatteryV: 3 + rng.Float64(),
			Readings: make([]PacketReading, n),
		}
		for i := range p.Readings {
			p.Readings[i] = PacketReading{Code: uint8(rng.Intn(256)), Value: rng.NormFloat64() * 100}
		}
		buf, err := EncodePacket(p)
		if err != nil {
			return false
		}
		got, err := DecodePacket(buf)
		if err != nil {
			return false
		}
		if got.NodeID != p.NodeID || got.Seq != p.Seq || !got.Time.Equal(p.Time) {
			return false
		}
		for i := range p.Readings {
			if got.Readings[i] != p.Readings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackReadings(t *testing.T) {
	lib, _ := VendorByName("libelium")
	n, _ := NewNode(NodeConfig{
		ID: "n1", Vendor: lib, District: "xhariep",
		Modalities: []Modality{ModalityRainfall, ModalitySoilMoisture},
		Seed:       7,
	})
	rs := n.Sample(testDay())
	pkt, err := PackReadings(lib, rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnpackReadings(lib, "xhariep", pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("unpacked %d, want %d", len(back), len(rs))
	}
	for i := range rs {
		if back[i].PropertyName != rs[i].PropertyName || back[i].Value != rs[i].Value {
			t.Errorf("reading %d mismatch: %+v vs %+v", i, back[i], rs[i])
		}
		if back[i].District != "xhariep" {
			t.Errorf("district lost: %+v", back[i])
		}
	}
}

func TestPackReadingsErrors(t *testing.T) {
	lib, _ := VendorByName("libelium")
	if _, err := PackReadings(lib, nil); err == nil {
		t.Error("empty pack should fail")
	}
	mixed := []RawReading{
		{NodeID: "a", PropertyName: "pluviometer"},
		{NodeID: "b", PropertyName: "pluviometer"},
	}
	if _, err := PackReadings(lib, mixed); err == nil {
		t.Error("mixed nodes should fail")
	}
	if _, err := PackReadings(lib, []RawReading{{NodeID: "a", PropertyName: "nope"}}); err == nil {
		t.Error("unknown wire name should fail")
	}
	if _, err := UnpackReadings(lib, "d", Packet{Readings: []PacketReading{{Code: 250}}}); err == nil {
		t.Error("unknown code should fail")
	}
}

func TestLinkPerfectAndLossy(t *testing.T) {
	frame := []byte("hello world frame")
	perfect := NewLink(LinkConfig{Seed: 1})
	if got := perfect.Deliver(frame); string(got) != string(frame) {
		t.Fatal("perfect link should deliver")
	}
	dead := NewLink(LinkConfig{LossRate: 1, MaxRetries: 3, Seed: 1})
	if got := dead.Deliver(frame); got != nil {
		t.Fatal("fully lossy link should drop")
	}
	st := dead.Stats()
	if st.GivenUp != 1 || st.Retries != 3 {
		t.Errorf("stats = %+v", st)
	}

	lossy := NewLink(LinkConfig{LossRate: 0.5, MaxRetries: 5, Seed: 42})
	delivered := 0
	for i := 0; i < 200; i++ {
		if lossy.Deliver(frame) != nil {
			delivered++
		}
	}
	if delivered < 180 {
		t.Errorf("retries should recover most frames: %d/200", delivered)
	}
	if lossy.Stats().Goodput() != float64(delivered)/200 {
		t.Error("goodput accounting wrong")
	}
}

func TestLinkCorruptionHitsCRC(t *testing.T) {
	p := Packet{NodeID: "n", Seq: 1, Time: time.Unix(1e9, 0), BatteryV: 4, Readings: []PacketReading{{1, 2.5}}}
	frame, _ := EncodePacket(p)
	link := NewLink(LinkConfig{CorruptRate: 1, MaxRetries: 0, Seed: 9})
	// With corruption certain and no retries, most deliveries fail CRC
	// and are treated as losses. Over repeats, deliveries are rare.
	ok := 0
	for i := 0; i < 50; i++ {
		if out := link.Deliver(frame); out != nil {
			if _, err := DecodePacket(out); err == nil {
				ok++
			}
		}
	}
	if ok > 2 {
		t.Errorf("corrupted frames decoded cleanly %d times", ok)
	}
}

func TestSMSChunkReassemble(t *testing.T) {
	g := NewSMSGateway()
	frame := make([]byte, 500)
	for i := range frame {
		frame[i] = byte(i)
	}
	chunks := g.Chunk(7, frame)
	if len(chunks) != 4 { // 500/136 → 4
		t.Fatalf("chunks = %d", len(chunks))
	}
	// Shuffle order.
	chunks[0], chunks[2] = chunks[2], chunks[0]
	out, err := g.Reassemble(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(frame) {
		t.Fatal("reassembly mismatch")
	}
	// Missing chunk.
	if _, err := g.Reassemble(chunks[:3]); err == nil {
		t.Error("missing chunk should fail")
	}
	// Duplicate chunk.
	dup := append([]smsChunk{}, chunks...)
	dup[1] = dup[0]
	if _, err := g.Reassemble(dup); err == nil {
		t.Error("duplicate chunk should fail")
	}
	if _, err := g.Reassemble(nil); err == nil {
		t.Error("no chunks should fail")
	}
}

func TestCloudStoreDownloadProtocol(t *testing.T) {
	c := NewCloudStore()
	day := testDay()
	for i := 0; i < 25; i++ {
		c.Upload([]RawReading{{NodeID: "n", Time: day.Date.Add(time.Duration(i) * time.Hour)}})
	}
	if c.Len() != 25 || c.Uploads() != 25 {
		t.Fatalf("Len=%d Uploads=%d", c.Len(), c.Uploads())
	}
	batch, cur, err := c.Download(0, 10)
	if err != nil || len(batch) != 10 || cur != 10 {
		t.Fatalf("download 1: %d %d %v", len(batch), cur, err)
	}
	batch, cur, err = c.Download(cur, 100)
	if err != nil || len(batch) != 15 || cur != 25 {
		t.Fatalf("download 2: %d %d %v", len(batch), cur, err)
	}
	batch, cur, err = c.Download(cur, 10)
	if err != nil || len(batch) != 0 || cur != 25 {
		t.Fatalf("download 3 (empty): %d %d %v", len(batch), cur, err)
	}
	if _, _, err := c.Download(-1, 5); err == nil {
		t.Error("negative cursor should fail")
	}
	if _, _, err := c.Download(999, 5); err == nil {
		t.Error("out-of-range cursor should fail")
	}
	w := c.Window(day.Date, day.Date.Add(5*time.Hour))
	if len(w) != 5 {
		t.Errorf("window = %d, want 5", len(w))
	}
}

func TestGatewayEndToEnd(t *testing.T) {
	cloud := NewCloudStore()
	link := NewLink(LinkConfig{LossRate: 0.2, CorruptRate: 0.05, MaxRetries: 4, Seed: 5})
	gw := NewGateway(link, cloud)
	fleet, err := NewFleet(8, []string{"mangaung", "xhariep", "fezile-dabi"}, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fleet.Nodes {
		gw.Register(n)
	}
	day := testDay()
	rounds := 0
	for i := 0; i < 30; i++ {
		day.Date = day.Date.AddDate(0, 0, 1)
		for _, n := range fleet.Nodes {
			rs := n.Sample(day)
			if len(rs) == 0 {
				continue
			}
			rounds++
			if err := gw.Ingest(rs); err != nil {
				t.Fatalf("ingest: %v", err)
			}
		}
	}
	if gw.Decoded == 0 {
		t.Fatal("nothing made it through the uplink")
	}
	if gw.Decoded+gw.Dropped != rounds {
		t.Errorf("accounting: decoded %d + dropped %d != rounds %d", gw.Decoded, gw.Dropped, rounds)
	}
	if cloud.Len() == 0 {
		t.Fatal("cloud store is empty")
	}
	// Readings must have survived with vendor naming intact.
	batch, _, _ := cloud.Download(0, 50)
	names := make(map[string]bool)
	for _, r := range batch {
		names[r.PropertyName] = true
	}
	if len(names) < 3 {
		t.Errorf("expected heterogeneous names in the cloud, got %v", names)
	}
}

func TestGatewayRejectsUnregistered(t *testing.T) {
	gw := NewGateway(NewLink(LinkConfig{Seed: 1}), NewCloudStore())
	err := gw.Ingest([]RawReading{{NodeID: "ghost", PropertyName: "x"}})
	if err == nil {
		t.Error("unregistered node should be rejected")
	}
	if err := gw.Ingest(nil); err != nil {
		t.Error("empty ingest should be a no-op")
	}
}

func TestModalityString(t *testing.T) {
	for _, m := range AllModalities {
		if s := m.String(); s == "" || s[0] == 'M' {
			t.Errorf("modality %d has bad name %q", m, s)
		}
	}
	if Modality(99).String() == "" {
		t.Error("unknown modality should render")
	}
}

func TestRawReadingString(t *testing.T) {
	r := RawReading{NodeID: "n1", PropertyName: "Hoehe", Value: 250, UnitName: "cm", Seq: 9, Time: time.Unix(1e9, 0)}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}
