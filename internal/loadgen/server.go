package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dissemination"
	"repro/internal/eventlog"
	"repro/internal/forecast"
	"repro/internal/gateway"
	"repro/internal/graphlog"
	"repro/internal/rdf"
)

// Bulletin vocabulary — the same IRIs dissemination.SemanticWeb
// asserts, so the SPARQL load mix reads real bulletin shapes.
var (
	bulletinClass = rdf.NSDEWS.IRI("Bulletin")
	probProp      = rdf.NSDEWS.IRI("probability")
	bandProp      = rdf.NSDEWS.IRI("dviBand")
	leadProp      = rdf.NSDEWS.IRI("leadDays")
	regionProp    = rdf.NSDEWS.IRI("affectsRegion")
	issuedProp    = rdf.NSDEWS.IRI("issued")
)

// BulletinTriples is how many triples one materialized bulletin
// asserts; the graph-parity oracle multiplies by it.
const BulletinTriples = 6

// ServerConfig configures the harness server stack.
type ServerConfig struct {
	// LogDir is the durable event log directory (required: chaos
	// recovery is the point of this server).
	LogDir string
	// GraphDir is the persistent bulletin-graph directory (required).
	GraphDir string
	// FlushInterval tunes the gateway SSE pump (0 = gateway default).
	FlushInterval time.Duration
	// DefaultBuffer / MaxBuffer tune SSE queue capacities (0 = gateway
	// defaults).
	DefaultBuffer int
	MaxBuffer     int
	// CheckpointInterval is the graph store's snapshot cadence (0 =
	// graphlog default).
	CheckpointInterval time.Duration
}

// Server is the self-contained gateway stack cmd/dewsload serves (and
// chaos-kills): a broker writing through a durable event log, the HTTP
// gateway over it, and a persistent bulletin graph materialized from
// the log. The event log is the source of truth for bulletins: every
// bulletin publish is materialized into RDF keyed by its durable
// offset, and startup replays the log through the same idempotent
// materializer, so crash recovery converges the graph to exactly the
// bulletins the recovered log holds (recovery-equals-never-crashed).
type Server struct {
	Broker *core.Broker
	Log    *eventlog.Log
	Store  *graphlog.Store
	GW     *gateway.Gateway

	web *dissemination.SemanticWeb
	mux *http.ServeMux

	bulletinSub *core.Subscription

	// materialized counts bulletins committed to the graph by this
	// process (replayed + live); decodeErrs counts bulletin publishes
	// that did not decode as bulletins.
	materialized atomic.Int64
	decodeErrs   atomic.Int64
	orphansSwept atomic.Int64
}

// NewServer opens the durable stores, recovers, reconciles the graph
// against the log, and wires the HTTP stack.
func NewServer(cfg ServerConfig) (srv *Server, err error) {
	if cfg.LogDir == "" || cfg.GraphDir == "" {
		return nil, fmt.Errorf("loadgen: server needs LogDir and GraphDir")
	}
	broker := core.NewBroker()
	broker.SetRetainedLimit(65536)

	elog, err := eventlog.Open(eventlog.Config{Dir: cfg.LogDir})
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			elog.Close()
		}
	}()
	if _, err = broker.AttachLog(elog); err != nil {
		return nil, err
	}

	store, err := graphlog.Open(graphlog.Config{
		Dir:                cfg.GraphDir,
		CheckpointInterval: cfg.CheckpointInterval,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			store.Close()
		}
	}()

	s := &Server{Broker: broker, Log: elog, Store: store}
	s.web = dissemination.NewPersistentSemanticWeb(store.Graph(), store.AddAll)

	// Reconcile the materialized view with the recovered log before
	// serving: drop graph bulletins the crashed log no longer knows
	// (committed to the graph WAL in the instants before a kill that
	// the event log's batched fsync lost), then replay every surviving
	// bulletin record through the idempotent materializer.
	if err = s.reconcile(); err != nil {
		return nil, err
	}

	// Live path: bulletins flow through a broker handler subscription.
	s.bulletinSub, err = broker.SubscribeHandler("bulletin/#", 8192, core.DropOldest, func(m core.Message) {
		if merr := s.materialize(m); merr != nil {
			s.decodeErrs.Add(1)
		}
	})
	if err != nil {
		return nil, err
	}

	gw, err := gateway.New(gateway.Config{
		Broker:        broker,
		FlushInterval: cfg.FlushInterval,
		DefaultBuffer: cfg.DefaultBuffer,
		MaxBuffer:     cfg.MaxBuffer,
		Extra: func() map[string]any {
			return map[string]any{
				"semweb": map[string]any{
					"bulletin_triples": s.web.TripleCount(),
					"store":            s.Store.Stats(),
				},
				"loadgen": map[string]any{
					"bulletins_materialized": s.materialized.Load(),
					"bulletin_decode_errors": s.decodeErrs.Load(),
					"orphans_swept":          s.orphansSwept.Load(),
				},
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s.GW = gw

	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/semweb/", http.StripPrefix("/semweb", s.web))
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP entry point (gateway at the root, semantic
// web under /semweb/).
func (s *Server) Handler() http.Handler { return s.mux }

// MaterializedBulletins returns how many bulletin commits this process
// has performed (startup replay + live).
func (s *Server) MaterializedBulletins() int64 { return s.materialized.Load() }

// Close shuts the stack down cleanly: gateway streams get goodbyes,
// the dispatcher drains, and both durable stores flush and close — so
// a clean shutdown loses nothing (the chaos oracles rely on this when
// they open the directories offline afterwards).
func (s *Server) Close() error {
	_ = s.GW.Close()
	s.Broker.DrainDispatch()
	s.Broker.StopDispatch()
	var first error
	if err := s.Log.Close(); err != nil {
		first = err
	}
	if err := s.Store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// bulletinNode mints the offset-keyed bulletin IRI. Offsets are unique
// and durable, so materialization is idempotent: replaying the same
// record re-asserts the same six triples into a set.
func bulletinNode(district string, offset uint64) rdf.IRI {
	return rdf.NSOBS.IRI(fmt.Sprintf("bulletin/%s/%d", district, offset))
}

// materialize commits one bulletin message to the graph.
func (s *Server) materialize(m core.Message) error {
	b, err := bulletinOf(m)
	if err != nil {
		return err
	}
	node := bulletinNode(b.District, m.Offset)
	if err := s.Store.AddAll(
		rdf.T(node, rdf.RDFType, bulletinClass),
		rdf.T(node, regionProp, rdf.NSGEO.IRI(b.District)),
		rdf.T(node, probProp, rdf.NewFloat(b.Probability)),
		rdf.T(node, bandProp, rdf.NewLiteral(b.Band.String())),
		rdf.T(node, leadProp, rdf.NewInt(int64(b.LeadDays))),
		rdf.T(node, issuedProp,
			rdf.NewTypedLiteral(b.Issued.UTC().Format(time.RFC3339), rdf.XSDDateTime)),
	); err != nil {
		return err
	}
	s.materialized.Add(1)
	return nil
}

// bulletinOf decodes a published message back into a bulletin. Remote
// publishes arrive as generic JSON values, so decode via re-marshal.
func bulletinOf(m core.Message) (forecast.Bulletin, error) {
	var b forecast.Bulletin
	raw := m.PayloadJSON()
	if len(raw) == 0 {
		return b, fmt.Errorf("loadgen: bulletin message without payload")
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, err
	}
	if err := b.Validate(); err != nil {
		return b, err
	}
	return b, nil
}

// reconcile converges the persistent graph to the recovered event log.
//
// Sweep: a bulletin whose offset is at or past the recovered log's next
// offset was lost with the crashed tail — its graph triples are
// orphans; remove them. (The log recovers a contiguous prefix, so
// offset >= NextOffset is exactly "lost".)
//
// Replay: every bulletin record the log did keep flows through the
// idempotent materializer, re-asserting triples the graph WAL may not
// have persisted. No-op re-adds never hit the graph WAL.
func (s *Server) reconcile() error {
	next := s.Log.NextOffset()
	type orphan struct{ node rdf.Term }
	var orphans []orphan
	g := s.Store.Graph()
	g.ForEachMatch(nil, rdf.RDFType, bulletinClass, func(t rdf.Triple) bool {
		iri, ok := t.S.(rdf.IRI)
		if !ok {
			return true
		}
		// IRI shape: .../bulletin/<district>/<offset>
		idx := strings.LastIndexByte(string(iri), '/')
		if idx < 0 {
			return true
		}
		off, err := strconv.ParseUint(string(iri)[idx+1:], 10, 64)
		if err != nil {
			return true
		}
		if off >= next {
			orphans = append(orphans, orphan{node: t.S})
		}
		return true
	})
	for _, o := range orphans {
		for _, t := range g.Match(o.node, nil, nil) {
			if _, err := s.Store.Remove(t); err != nil {
				return err
			}
		}
		s.orphansSwept.Add(1)
	}
	_, err := s.Broker.ReplayFrom(s.Log.OldestOffset(), "bulletin/#", func(m core.Message) error {
		return s.materialize(m)
	})
	return err
}
