package loadgen

import (
	"math/bits"
	"time"
)

// Histogram is a log-linear latency histogram: values bucket by
// power-of-two magnitude with 16 linear sub-buckets per octave, so the
// relative quantile error is bounded at ~6% across the full range
// (nanoseconds to minutes) with a fixed 1KiB footprint. Not
// concurrency-safe — each worker owns one and the runner merges them.
type Histogram struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [64 * subBuckets]uint64
}

const subBuckets = 16

// bucketIndex maps a value to its bucket. Values below subBuckets land
// in the linear prefix (exact); beyond it, the top 4 bits after the
// leading one select the sub-bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(v)
	sub := (v >> (uint(exp) - 4)) & (subBuckets - 1)
	return (exp-3)*subBuckets + int(sub)
}

// bucketValue returns a representative (upper-bound) value for bucket i.
func bucketValue(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := i/subBuckets + 3
	sub := uint64(i % subBuckets)
	return (1 << uint(exp)) | ((sub+1)<<(uint(exp)-4) - 1)
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketIndex(v)]++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// LatencySummary is the JSON rendering of a histogram, in milliseconds
// (floats) so BENCH_load.json is directly comparable across runs.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary renders the histogram.
func (h *Histogram) Summary() LatencySummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  h.count,
		P50Ms:  ms(h.Quantile(0.50)),
		P99Ms:  ms(h.Quantile(0.99)),
		P999Ms: ms(h.Quantile(0.999)),
		MeanMs: ms(h.Mean()),
		MaxMs:  ms(h.Max()),
	}
}
