package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// wireEnvelope is the publish-side wire shape (gateway.Envelope).
type wireEnvelope struct {
	Topic   string            `json:"topic"`
	Payload json.RawMessage   `json:"payload,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
}

// obsPayload is the observation event body.
type obsPayload struct {
	Node  string  `json:"node"`
	Seq   uint64  `json:"seq"`
	Value float64 `json:"value"`
	ID    string  `json:"id"`
}

// HeaderID and HeaderSent are the envelope headers the harness rides
// on: HeaderID carries the globally unique event identity (chaos
// oracles key on it), HeaderSent the publisher's send time in unix
// nanoseconds (the subscriber side turns it into publish→delivery
// latency). Exported so the offline oracles can key on the same names.
const (
	HeaderID   = "lg-id"
	HeaderSent = "lg-sent"
)

const (
	hdrID   = HeaderID
	hdrSent = HeaderSent
)

// AckedSet records which event IDs were positively acknowledged (HTTP
// 200) and which were sent but ended in an ambiguous transport error —
// the server may or may not have logged those. Each ID is sent at most
// once (failed batches are never retried), so "exactly once" stays
// checkable at the stream level.
type AckedSet struct {
	mu        sync.Mutex
	acked     map[string]struct{}
	uncertain map[string]struct{}
	// ackedBulletins counts acked events that carried a bulletin.
	ackedBulletins int
}

// NewAckedSet returns an empty set.
func NewAckedSet() *AckedSet {
	return &AckedSet{acked: make(map[string]struct{}), uncertain: make(map[string]struct{})}
}

func (a *AckedSet) ack(evs []Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ev := range evs {
		a.acked[ev.ID] = struct{}{}
		if ev.Bulletin != nil {
			a.ackedBulletins++
		}
	}
}

func (a *AckedSet) unsure(evs []Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ev := range evs {
		a.uncertain[ev.ID] = struct{}{}
	}
}

// Acked returns a copy of the acked ID set.
func (a *AckedSet) Acked() map[string]struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]struct{}, len(a.acked))
	for id := range a.acked {
		out[id] = struct{}{}
	}
	return out
}

// Uncertain returns a copy of the ambiguous ID set.
func (a *AckedSet) Uncertain() map[string]struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]struct{}, len(a.uncertain))
	for id := range a.uncertain {
		out[id] = struct{}{}
	}
	return out
}

// AckedBulletins returns how many acked events carried bulletins.
func (a *AckedSet) AckedBulletins() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ackedBulletins
}

// publisherResult is one publisher worker's accounting.
type publisherResult struct {
	hist      Histogram // publish→ack round trip
	published uint64    // events acked
	batches   uint64
	errors    uint64 // failed batches (connection refused, non-200, ...)
}

// publisher drives one closed-loop sensor: generate a batch, POST it,
// wait for the ack, pace to the target rate, repeat. Failed batches are
// dropped, never retried (see AckedSet). It returns when ctx ends.
func publisher(ctx context.Context, client *http.Client, base string, stream *Stream, batch int, interval time.Duration, sync bool, acked *AckedSet, res *publisherResult) {
	u := base + "/publish"
	if sync {
		u += "?sync=1"
	}
	evs := make([]Event, batch)
	envs := make([]wireEnvelope, batch)
	next := time.Now()
	for ctx.Err() == nil {
		for i := range evs {
			evs[i] = stream.Next()
		}
		sent := time.Now()
		sentNanos := strconv.FormatInt(sent.UnixNano(), 10)
		for i, ev := range evs {
			var body []byte
			if ev.Bulletin != nil {
				body, _ = json.Marshal(ev.Bulletin)
			} else {
				body, _ = json.Marshal(obsPayload{Node: ev.Node, Seq: ev.Seq, Value: ev.Value, ID: ev.ID})
			}
			envs[i] = wireEnvelope{
				Topic:   ev.Topic,
				Payload: body,
				Headers: map[string]string{hdrID: ev.ID, hdrSent: sentNanos},
			}
		}
		reqBody, _ := json.Marshal(envs)
		ok, ambiguous := postPublish(ctx, client, u, reqBody)
		res.batches++
		switch {
		case ok:
			res.hist.Observe(time.Since(sent))
			res.published += uint64(len(evs))
			acked.ack(evs)
		case ctx.Err() != nil:
			// The phase deadline cancelled the request in flight: not a
			// server failure, but the batch may have landed — ambiguous.
			acked.unsure(evs)
			return
		case ambiguous:
			res.errors++
			acked.unsure(evs)
		default:
			res.errors++
		}
		// Closed-loop pacing: hold the target cadence when ahead, go as
		// fast as acks allow when behind (sustained-throughput mode).
		next = next.Add(interval)
		if wait := time.Until(next); wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		} else if wait < -10*interval && interval > 0 {
			// Hopelessly behind (e.g. server downtime during chaos):
			// reset the schedule instead of bursting to catch up.
			next = time.Now()
		}
	}
}

// postPublish sends one batch. ok means HTTP 200; ambiguous means the
// request may have reached the server (anything past "dial failed").
func postPublish(ctx context.Context, client *http.Client, u string, body []byte) (ok, ambiguous bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		// A dial failure (server down between requests) definitely never
		// reached the log; anything else is ambiguous.
		return false, !isDialError(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusOK {
		return true, false
	}
	return false, false
}

// isDialError reports whether the round-trip error happened before any
// bytes were written (connection refused / no route), i.e. the request
// certainly never reached the gateway.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// subKind classifies a subscriber worker.
type subKind int

const (
	// subLive holds one long-lived subscription on a concrete topic.
	subLive subKind = iota
	// subWildcard is live on a wildcard pattern (obs/+/Prop, obs/d/#).
	subWildcard
	// subResumer periodically drops the stream on purpose and resumes
	// with Last-Event-ID, exercising the log-backed catch-up path under
	// load.
	subResumer
)

func (k subKind) String() string {
	switch k {
	case subLive:
		return "live"
	case subWildcard:
		return "wildcard"
	default:
		return "resumer"
	}
}

// subscriberResult is one subscriber worker's accounting. The counters
// are atomic because the runner samples them live (phase delivery
// rates); the histogram, lastOffset, and seenIDs are worker-private
// until the fleet is joined. The e2e histogram only records events
// published after the current connection was opened — catch-up history
// would otherwise dominate with stale timestamps.
type subscriberResult struct {
	hist     Histogram
	received atomic.Uint64
	// offsetRegressions counts deliveries at a non-advancing offset —
	// live-queue reordering under concurrent publishers, or post-crash
	// offset reuse; duplication is judged by identity (seenIDs), not this.
	offsetRegressions atomic.Uint64
	goodbyes          atomic.Uint64
	reconnects        atomic.Uint64
	errors            atomic.Uint64
	lastOffset        uint64
	// seenIDs is filled only when the worker is asked to track identity
	// (chaos verification); nil otherwise to bound memory.
	seenIDs map[string]int
}

// subscriber runs one SSE consumer until ctx ends, reconnecting with
// Last-Event-ID on any disconnect (what a real EventSource does).
// dropEvery, when positive, voluntarily closes the stream after that
// many events (resumer behavior).
func subscriber(ctx context.Context, client *http.Client, base, pattern string, buffer int, dropEvery int, res *subscriberResult) {
	first := true
	for ctx.Err() == nil {
		if !first {
			res.reconnects.Add(1)
		}
		first = false
		connStart := time.Now()
		sinceConnect := 0
		err := subscribeSSE(ctx, client, base, pattern, buffer, res.lastOffset, res.lastOffset > 0, func(ev sseEvent) error {
			switch ev.event {
			case "goodbye":
				res.goodbyes.Add(1)
				return io.EOF
			case "message":
				var env envelope
				if err := json.Unmarshal(ev.data, &env); err != nil {
					res.errors.Add(1)
					return nil
				}
				if env.Offset > 0 {
					if env.Offset <= res.lastOffset {
						res.offsetRegressions.Add(1)
					} else {
						// Advance-only: the resume cursor is the highest
						// offset seen, so a reordered straggler on a live
						// queue stream cannot drag a later reconnect back
						// into already-delivered history.
						res.lastOffset = env.Offset
					}
				}
				res.received.Add(1)
				sinceConnect++
				if res.seenIDs != nil {
					if id := env.Headers[hdrID]; id != "" {
						res.seenIDs[id]++
					}
				}
				if s := env.Headers[hdrSent]; s != "" {
					if nanos, err := strconv.ParseInt(s, 10, 64); err == nil {
						sent := time.Unix(0, nanos)
						if !sent.Before(connStart) {
							res.hist.Observe(time.Since(sent))
						}
					}
				}
				if dropEvery > 0 && sinceConnect >= dropEvery {
					return io.EOF
				}
				return nil
			default:
				return nil
			}
		})
		if err != nil && ctx.Err() == nil {
			res.errors.Add(1)
			// Server briefly gone (chaos restart): back off and retry.
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}

// sparqlResult is one query worker's accounting.
type sparqlResult struct {
	hist    Histogram
	queries uint64
	errors  uint64
}

// sparqlQueries is the mixed read workload over the bulletin graph.
var sparqlQueries = []string{
	`PREFIX dews: <http://dews.africrid.example/ontology/drought#>
SELECT ?b ?p WHERE { ?b dews:probability ?p . FILTER(?p > 0.5) } LIMIT 50`,
	`PREFIX dews: <http://dews.africrid.example/ontology/drought#>
ASK { ?b a dews:Bulletin . }`,
	`PREFIX dews: <http://dews.africrid.example/ontology/drought#>
PREFIX geo: <http://dews.africrid.example/ontology/geo#>
SELECT ?b ?r WHERE { ?b dews:affectsRegion ?r . ?b dews:dviBand ?band . } LIMIT 25`,
}

// sparqlWorker issues the query mix at the given per-worker interval.
func sparqlWorker(ctx context.Context, client *http.Client, base string, interval time.Duration, res *sparqlResult) {
	i := 0
	for ctx.Err() == nil {
		q := sparqlQueries[i%len(sparqlQueries)]
		i++
		start := time.Now()
		err := doSPARQL(ctx, client, base, q)
		if err != nil {
			// A request cut down by the phase deadline is not a server
			// failure; don't count it either way.
			if ctx.Err() != nil {
				return
			}
			res.queries++
			res.errors++
		} else {
			res.queries++
			res.hist.Observe(time.Since(start))
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

func doSPARQL(ctx context.Context, client *http.Client, base, query string) error {
	u := base + "/semweb/sparql?query=" + url.QueryEscape(query)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sparql: %d", resp.StatusCode)
	}
	return nil
}
