package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	// id is the SSE id: field parsed as an offset (0 when absent).
	id uint64
	// event is the event type ("message", "goodbye"; "" never reaches
	// the handler — the gateway always sets one).
	event string
	// data is the raw data: payload.
	data []byte
}

// envelope mirrors gateway.Envelope's wire shape. loadgen keeps its own
// decode-side struct so the harness can drive any conforming gateway,
// not just an in-process one.
type envelope struct {
	Offset  uint64            `json:"offset"`
	Topic   string            `json:"topic"`
	Time    time.Time         `json:"time"`
	Payload json.RawMessage   `json:"payload"`
	Headers map[string]string `json:"headers"`
}

// goodbyeInfo is the gateway's terminal event payload.
type goodbyeInfo struct {
	Reason  string `json:"reason"`
	Dropped int    `json:"dropped"`
}

// subscribeSSE opens one SSE subscription and invokes fn per event
// until the stream ends. When resume is true, lastEventID is sent as
// Last-Event-ID (the standard resume handshake; 0 replays the whole
// log). fn returning an error aborts the stream (io.EOF means "done,
// stop cleanly").
func subscribeSSE(ctx context.Context, client *http.Client, base, pattern string, buffer int, lastEventID uint64, resume bool, fn func(sseEvent) error) error {
	u := base + "/subscribe?pattern=" + url.QueryEscape(pattern)
	if buffer > 0 {
		u += "&buffer=" + strconv.Itoa(buffer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if resume {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("subscribe %s: %d %s", pattern, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return parseSSE(resp.Body, fn)
}

// parseSSE reads an SSE byte stream and delivers each complete event.
// Comment lines (keep-alives) are skipped. A clean EOF returns nil.
func parseSSE(r io.Reader, fn func(sseEvent) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var cur sseEvent
	pending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if pending {
				if err := fn(cur); err != nil {
					if err == io.EOF {
						return nil
					}
					return err
				}
				cur = sseEvent{}
				pending = false
			}
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "id: "):
			if v, err := strconv.ParseUint(line[4:], 10, 64); err == nil {
				cur.id = v
			}
			pending = true
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
			pending = true
		case strings.HasPrefix(line, "data: "):
			cur.data = append([]byte(nil), line[6:]...)
			pending = true
		}
	}
	return sc.Err()
}
