package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/wsn"
)

// DefaultDistricts is the Free State deployment of the paper, the same
// universe cmd/dews simulates.
var DefaultDistricts = []string{
	"mangaung", "xhariep", "lejweleputswa", "thabo-mofutsanyana", "fezile-dabi",
}

// defaultProperties lists the observed-property topic segments, taken
// from the WSN vocabulary so load topics are exactly the simulation's.
func defaultProperties() []string {
	out := make([]string, len(wsn.AllModalities))
	for i, m := range wsn.AllModalities {
		out[i] = m.String()
	}
	return out
}

// Event is one generated load event before any wall-clock stamping:
// everything here is a pure function of the stream seed, so two
// same-seed streams are byte-identical (see MarshalEvents). Send-time
// metadata (the lg-sent header the latency measurement rides on) is
// attached by the publisher at the moment of publish, never here.
type Event struct {
	// Topic is the concrete publish topic (obs/<district>/<property>,
	// or bulletin/<district> for bulletin events).
	Topic string `json:"topic"`
	// ID is the globally unique event identity "p<publisher>-<seq>";
	// the chaos oracles key on it.
	ID string `json:"id"`
	// Seq is the per-publisher sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// Node is the synthetic mote name.
	Node string `json:"node"`
	// Value is the synthetic reading.
	Value float64 `json:"value"`
	// Bulletin is non-nil when this event is a bulletin publish (the
	// graph-path fraction of the stream).
	Bulletin *BulletinPayload `json:"bulletin,omitempty"`
}

// BulletinPayload mirrors forecast.Bulletin's JSON shape: the server
// side decodes it and materializes RDF, so bulletin load events
// exercise the full knowledge path.
type BulletinPayload struct {
	District    string    `json:"District"`
	Issued      time.Time `json:"Issued"`
	LeadDays    int       `json:"LeadDays"`
	Probability float64   `json:"Probability"`
	Band        int       `json:"Band"`
	Forecaster  string    `json:"Forecaster"`
}

// StreamConfig parameterizes one publisher's deterministic stream.
type StreamConfig struct {
	// Seed is the run seed; combined with Publisher it derives the
	// stream's private source.
	Seed int64
	// Publisher is this stream's index within the run.
	Publisher int
	// Districts and Properties span the topic universe (defaults:
	// the five Free State districts × the WSN modalities).
	Districts  []string
	Properties []string
	// BulletinEvery emits a bulletin event every n-th event (0 = never).
	BulletinEvery int
}

// Stream generates a deterministic event sequence. Not safe for
// concurrent use; each publisher owns one.
type Stream struct {
	cfg  StreamConfig
	rng  *rand.Rand
	seq  uint64
	base time.Time
}

// NewStream builds a stream. The private source is derived from
// (Seed, Publisher) the same way the WSN fleet derives per-node seeds,
// so distinct publishers are decorrelated but jointly reproducible.
func NewStream(cfg StreamConfig) *Stream {
	if len(cfg.Districts) == 0 {
		cfg.Districts = DefaultDistricts
	}
	if len(cfg.Properties) == 0 {
		cfg.Properties = defaultProperties()
	}
	return &Stream{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed + int64(cfg.Publisher)*7919)),
		// Bulletin issue times must be deterministic too: a fixed epoch
		// advanced per event, not wall clock.
		base: time.Date(2015, 1, 1, 6, 0, 0, 0, time.UTC),
	}
}

// Next generates the stream's next event.
func (s *Stream) Next() Event {
	s.seq++
	district := s.cfg.Districts[s.rng.Intn(len(s.cfg.Districts))]
	ev := Event{
		ID:   fmt.Sprintf("p%d-%d", s.cfg.Publisher, s.seq),
		Seq:  s.seq,
		Node: fmt.Sprintf("lg-%s-%02d", district, s.cfg.Publisher),
	}
	if s.cfg.BulletinEvery > 0 && s.seq%uint64(s.cfg.BulletinEvery) == 0 {
		ev.Topic = "bulletin/" + district
		p := s.rng.Float64()
		ev.Value = p
		ev.Bulletin = &BulletinPayload{
			District:    district,
			Issued:      s.base.Add(time.Duration(s.seq) * time.Minute),
			LeadDays:    30,
			Probability: p,
			Band:        int(p * 3.99),
			Forecaster:  "loadgen",
		}
		return ev
	}
	prop := s.cfg.Properties[s.rng.Intn(len(s.cfg.Properties))]
	ev.Topic = "obs/" + district + "/" + prop
	ev.Value = s.rng.Float64() * 40
	return ev
}

// MarshalEvents renders the first n events of a fresh stream with the
// given config as canonical JSON lines. It exists for the determinism
// regression: two same-seed calls must return byte-identical output.
func MarshalEvents(cfg StreamConfig, n int) ([]byte, error) {
	s := NewStream(cfg)
	var out []byte
	for i := 0; i < n; i++ {
		line, err := json.Marshal(s.Next())
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}
