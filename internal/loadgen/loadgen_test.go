package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStreamDeterminism is the seed-reproducibility regression: two
// same-seed streams must render byte-identical event sequences, and
// the seed must actually matter.
func TestStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{Seed: 42, Publisher: 3, BulletinEvery: 10}
	a, err := MarshalEvents(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalEvents(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed streams diverged")
	}
	cfg.Seed = 43
	c, err := MarshalEvents(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestStreamShape sanity-checks generated events: unique IDs, topics
// in the expected universe, bulletins on cadence and valid.
func TestStreamShape(t *testing.T) {
	s := NewStream(StreamConfig{Seed: 7, Publisher: 1, BulletinEvery: 5})
	seen := map[string]bool{}
	bulletins := 0
	for i := 0; i < 100; i++ {
		ev := s.Next()
		if seen[ev.ID] {
			t.Fatalf("duplicate event id %s", ev.ID)
		}
		seen[ev.ID] = true
		if ev.Bulletin != nil {
			bulletins++
			if ev.Topic != "bulletin/"+ev.Bulletin.District {
				t.Fatalf("bulletin topic %q does not match district %q", ev.Topic, ev.Bulletin.District)
			}
			if ev.Bulletin.Probability < 0 || ev.Bulletin.Probability > 1 {
				t.Fatalf("bulletin probability %v outside [0,1]", ev.Bulletin.Probability)
			}
			if ev.Bulletin.Issued.IsZero() {
				t.Fatal("bulletin without deterministic issue time")
			}
		} else if len(ev.Topic) < 5 || ev.Topic[:4] != "obs/" {
			t.Fatalf("unexpected topic %q", ev.Topic)
		}
	}
	if bulletins != 20 {
		t.Fatalf("BulletinEvery=5 over 100 events: got %d bulletins, want 20", bulletins)
	}
}

// TestHistogramQuantiles checks the log-linear histogram's error bound:
// quantile estimates stay within the per-octave sub-bucket resolution
// (~6.25% relative) of the truth.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50000 * time.Microsecond},
		{0.99, 99000 * time.Microsecond},
		{0.999, 99900 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.93)
		hi := time.Duration(float64(tc.want) * 1.07)
		if got < lo || got > hi {
			t.Errorf("q%.3f = %v, want within 7%% of %v", tc.q, got, tc.want)
		}
	}
	if max := h.Max(); max != n*time.Microsecond {
		t.Errorf("max %v, want %v", max, n*time.Microsecond)
	}
}

// TestHistogramMerge: merging partial histograms equals observing
// everything in one.
func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i*i) * time.Microsecond
		all.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Quantile(0.99) != all.Quantile(0.99) || a.Max() != all.Max() {
		t.Fatalf("merged != combined: count %d/%d p99 %v/%v", a.Count(), all.Count(), a.Quantile(0.99), all.Quantile(0.99))
	}
}

// TestBucketBounds: every value maps to a bucket whose representative
// value is an upper bound within the designed relative error.
func TestBucketBounds(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		i := bucketIndex(v)
		rep := bucketValue(i)
		if rep < v {
			t.Errorf("bucketValue(%d)=%d below observed %d", i, rep, v)
		}
		if v >= subBuckets && float64(rep) > float64(v)*1.07 {
			t.Errorf("bucketValue(%d)=%d overshoots %d by more than 7%%", i, rep, v)
		}
	}
}

// startTestServer runs the harness server stack on fresh dirs.
func startTestServer(t *testing.T, logDir, graphDir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(ServerConfig{LogDir: logDir, GraphDir: graphDir, FlushInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	return s, hs
}

// TestSteadyRunInProcess drives the whole closed loop against an
// in-process server: publishers, a mixed subscriber fleet, SPARQL
// side-load — then checks the invariants the big harness stands on
// (no duplicates, graph parity, latency actually measured).
func TestSteadyRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("load loop")
	}
	s, hs := startTestServer(t, t.TempDir(), t.TempDir())
	defer s.Close()
	defer hs.Close()

	r := NewRunner(RunConfig{
		Target:          hs.URL,
		Seed:            1,
		Publishers:      4,
		Batch:           20,
		Subscribers:     20,
		WildcardFrac:    0.3,
		ResumerFrac:     0.2,
		ResumeDropEvery: 50,
		SPARQLClients:   2,
		SPARQLInterval:  50 * time.Millisecond,
		BulletinEvery:   10,
		TrackIDs:        true,
	})
	ctx := context.Background()
	if err := r.StartSubscribers(ctx); err != nil {
		t.Fatal(err)
	}
	res := r.RunLoad(ctx, 1500*time.Millisecond)
	r.StopSubscribers()

	if res.Published == 0 || res.PublishErrors > 0 {
		t.Fatalf("published=%d errors=%d", res.Published, res.PublishErrors)
	}
	if res.SSEDelivered == 0 {
		t.Fatal("no SSE deliveries measured")
	}
	if res.SPARQLQueries == 0 || res.SPARQLErrors > 0 {
		t.Fatalf("sparql queries=%d errors=%d", res.SPARQLQueries, res.SPARQLErrors)
	}
	if res.PublishAck.Count == 0 || res.PublishAck.P99Ms <= 0 {
		t.Fatalf("publish ack histogram empty: %+v", res.PublishAck)
	}
	reports := r.SubscriberReports()
	var e2eCount uint64
	kinds := map[string]bool{}
	for _, rep := range reports {
		kinds[rep.Kind] = true
		e2eCount += rep.E2E.Count
	}
	if !kinds["live"] || !kinds["wildcard"] || !kinds["resumer"] {
		t.Fatalf("fleet kinds missing: %v", kinds)
	}
	if e2eCount == 0 {
		t.Fatal("no end-to-end latencies measured")
	}
	// Offset regressions are legitimate live-queue reordering; identity
	// is the exactly-once check (TrackIDs is on above).
	if v := r.ExactlyOnceViolations(); v != 0 {
		t.Fatalf("exactly-once violated: %d duplicate identities", v)
	}

	// Graph parity: every acked bulletin materialized exactly
	// BulletinTriples triples (offset-keyed, so set semantics hold).
	if got, want := s.Store.Graph().Len(), int(s.MaterializedBulletins())*BulletinTriples; got != want {
		t.Fatalf("graph parity: %d triples, want %d (%d bulletins)", got, want, s.MaterializedBulletins())
	}
	if s.MaterializedBulletins() == 0 {
		t.Fatal("no bulletins materialized — graph path unexercised")
	}
}

// TestServerRecoveryConvergesGraph: clean close and reopen must
// converge the graph to exactly the log's bulletins (the
// recovery-equals-never-crashed oracle, minus the SIGKILL).
func TestServerRecoveryConvergesGraph(t *testing.T) {
	logDir, graphDir := t.TempDir(), t.TempDir()
	s, hs := startTestServer(t, logDir, graphDir)

	r := NewRunner(RunConfig{
		Target: hs.URL, Seed: 2, Publishers: 2, Batch: 10,
		BulletinEvery: 5, SyncPublish: true,
	})
	res := r.RunLoad(context.Background(), 500*time.Millisecond)
	if res.Published == 0 {
		t.Fatal("nothing published")
	}
	hs.Close()
	// Close drains the dispatcher, so the count is final only after it.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	bulletins := s.MaterializedBulletins()

	s2, err := NewServer(ServerConfig{LogDir: logDir, GraphDir: graphDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Replay re-materializes every logged bulletin; set semantics keep
	// the triple count at parity.
	if got := s2.MaterializedBulletins(); got != bulletins {
		t.Fatalf("recovered materializations %d, want %d", got, bulletins)
	}
	if got, want := s2.Store.Graph().Len(), int(bulletins)*BulletinTriples; got != want {
		t.Fatalf("recovered graph: %d triples, want %d", got, want)
	}
}
