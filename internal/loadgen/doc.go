// Package loadgen is the closed-loop load and chaos harness behind
// cmd/dewsload: it drives the real HTTP gateway with wsngen-style
// synthetic sensor publishers, fleets of concurrent SSE subscribers
// (live, wildcard and Last-Event-ID resumers) and a mixed SPARQL query
// stream, measuring end-to-end latency (publish → SSE delivery via
// embedded timestamps), sustained throughput and per-phase error rates.
//
// The package has three layers:
//
//   - a deterministic, seedable event stream generator (gen.go) whose
//     output is byte-identical across same-seed runs, so load runs are
//     reproducible and chaos cycles replayable;
//   - worker clients (client.go, sse.go) and log-bucketed latency
//     histograms (metrics.go) that together form the closed loop;
//   - a self-contained gateway server stack (server.go) — broker +
//     durable event log + persistent bulletin graph + HTTP gateway —
//     that cmd/dewsload re-execs as a child process so chaos mode can
//     SIGKILL and restart a real process, not a goroutine.
//
// The chaos-equivalence oracles (no lost acked publishes, exactly-once
// SSE resume, graph triple-count parity) live in the oracle subpackage.
package loadgen
