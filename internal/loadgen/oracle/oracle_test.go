package oracle

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// TestOraclesAgainstCleanRun: a clean (never-crashed) run must pass
// every oracle — contiguous log, all acked IDs exactly once, graph at
// triple parity.
func TestOraclesAgainstCleanRun(t *testing.T) {
	logDir, graphDir := t.TempDir(), t.TempDir()
	s, err := loadgen.NewServer(loadgen.ServerConfig{LogDir: logDir, GraphDir: graphDir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())

	r := loadgen.NewRunner(loadgen.RunConfig{
		Target: hs.URL, Seed: 11, Publishers: 2, Batch: 10,
		BulletinEvery: 4, SyncPublish: true,
	})
	res := r.RunLoad(context.Background(), 400*time.Millisecond)
	if res.Published == 0 {
		t.Fatal("nothing published")
	}
	hs.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	facts, err := ScanLog(logDir)
	if err != nil {
		t.Fatal(err)
	}
	if !facts.Contiguous {
		t.Error("clean log not contiguous")
	}
	if facts.Bulletins == 0 {
		t.Error("no bulletin records — graph oracle unexercised")
	}

	dur := CheckDurability(facts, r.Acked.Acked(), r.Acked.Uncertain())
	if !dur.OK() {
		t.Errorf("durability oracle failed on clean run: %+v", dur)
	}
	// The phase deadline cancels each publisher's last request in
	// flight; those batches are "uncertain" and may have landed. The
	// log must hold exactly acked + surviving-uncertain records.
	if facts.Records != int64(res.Published)+int64(dur.UncertainSurvived) {
		t.Errorf("log holds %d records, want %d acked + %d uncertain-survived",
			facts.Records, res.Published, dur.UncertainSurvived)
	}
	if dur.Acked != int(res.Published) {
		t.Errorf("acked set %d, published %d", dur.Acked, res.Published)
	}

	graph, err := CheckGraph(graphDir, facts)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Parity {
		t.Errorf("graph parity failed on clean run: %+v", graph)
	}
}

// TestDurabilityCatchesLoss: the oracle must actually flag a fabricated
// lost-ack and a duplicate.
func TestDurabilityCatchesLoss(t *testing.T) {
	facts := &LogFacts{IDCounts: map[string]int{"a": 1, "b": 2, "d": 1}}
	acked := map[string]struct{}{"a": {}, "b": {}, "c": {}}
	uncertain := map[string]struct{}{"d": {}, "e": {}}
	rep := CheckDurability(facts, acked, uncertain)
	if rep.OK() {
		t.Fatal("oracle passed a run with a lost ack and a duplicate")
	}
	if rep.AckedMissing != 1 || rep.AckedDuplicated != 1 {
		t.Errorf("missing=%d duplicated=%d, want 1 and 1", rep.AckedMissing, rep.AckedDuplicated)
	}
	if rep.UncertainSurvived != 1 || rep.UncertainDuplicated != 0 {
		t.Errorf("uncertain survived=%d duplicated=%d, want 1 and 0", rep.UncertainSurvived, rep.UncertainDuplicated)
	}
}
