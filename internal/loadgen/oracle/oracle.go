// Package oracle holds the offline chaos-recovery checks: after the
// harness server has been SIGKILLed, restarted, and finally shut down
// cleanly, these open the durable directories cold and decide whether
// recovery equals never-crashed — contiguous offsets, every acked
// publish present exactly once, and the bulletin graph at exact triple
// parity with the log.
package oracle

import (
	"fmt"
	"strings"

	"repro/internal/eventlog"
	"repro/internal/graphlog"
	"repro/internal/loadgen"
	"repro/internal/rdf"
)

// LogFacts is what one cold scan of a recovered event log establishes.
type LogFacts struct {
	Records      int64  `json:"records"`
	Bulletins    int64  `json:"bulletins"`
	OldestOffset uint64 `json:"oldest_offset"`
	NextOffset   uint64 `json:"next_offset"`
	// Contiguous is true when offsets run [OldestOffset, NextOffset)
	// with no gap or repeat — the log recovered a clean prefix.
	Contiguous bool `json:"contiguous"`
	// IDCounts maps loadgen.HeaderID values to occurrences in the log.
	IDCounts map[string]int `json:"-"`
}

// ScanLog opens the event log directory cold (exactly as a restarted
// server would) and audits every record.
func ScanLog(dir string) (*LogFacts, error) {
	l, err := eventlog.Open(eventlog.Config{Dir: dir})
	if err != nil {
		return nil, fmt.Errorf("oracle: reopening log: %w", err)
	}
	defer l.Close()
	f := &LogFacts{
		OldestOffset: l.OldestOffset(),
		NextOffset:   l.NextOffset(),
		Contiguous:   true,
		IDCounts:     make(map[string]int),
	}
	want := f.OldestOffset
	if _, err := l.Scan(1, func(rec eventlog.Record) error {
		if rec.Offset != want {
			f.Contiguous = false
		}
		want = rec.Offset + 1
		f.Records++
		if strings.HasPrefix(rec.Topic, "bulletin/") {
			f.Bulletins++
		}
		if id := rec.Headers[loadgen.HeaderID]; id != "" {
			f.IDCounts[id]++
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("oracle: scanning log: %w", err)
	}
	if want != f.NextOffset {
		f.Contiguous = false
	}
	return f, nil
}

// DurabilityReport compares the publishers' ack bookkeeping against
// the recovered log.
type DurabilityReport struct {
	Acked     int `json:"acked"`
	Uncertain int `json:"uncertain"`
	// AckedMissing counts acked IDs absent from the log — with sync
	// publishing this must be zero (a lost acked publish).
	AckedMissing int `json:"acked_missing"`
	// AckedDuplicated counts acked IDs logged more than once — must be
	// zero always (publishers never retry).
	AckedDuplicated int `json:"acked_duplicated"`
	// UncertainSurvived counts ambiguous-outcome IDs that did land;
	// informational — either outcome is correct.
	UncertainSurvived int `json:"uncertain_survived"`
	// UncertainDuplicated must be zero: even an ambiguous send happened
	// at most once.
	UncertainDuplicated int `json:"uncertain_duplicated"`
	// MissingSample lists up to 5 lost acked IDs for the failure report.
	MissingSample []string `json:"missing_sample,omitempty"`
}

// OK reports whether the durability contract held.
func (d DurabilityReport) OK() bool {
	return d.AckedMissing == 0 && d.AckedDuplicated == 0 && d.UncertainDuplicated == 0
}

// CheckDurability audits acked and uncertain publish sets against the
// recovered log's ID census.
func CheckDurability(f *LogFacts, acked, uncertain map[string]struct{}) DurabilityReport {
	rep := DurabilityReport{Acked: len(acked), Uncertain: len(uncertain)}
	for id := range acked {
		switch f.IDCounts[id] {
		case 0:
			rep.AckedMissing++
			if len(rep.MissingSample) < 5 {
				rep.MissingSample = append(rep.MissingSample, id)
			}
		case 1:
		default:
			rep.AckedDuplicated++
		}
	}
	for id := range uncertain {
		switch f.IDCounts[id] {
		case 0:
		case 1:
			rep.UncertainSurvived++
		default:
			rep.UncertainDuplicated++
		}
	}
	return rep
}

// GraphReport compares the recovered bulletin graph against the log.
type GraphReport struct {
	Triples       int   `json:"triples"`
	BulletinNodes int   `json:"bulletin_nodes"`
	WantTriples   int64 `json:"want_triples"`
	// Parity: triples == loadgen.BulletinTriples × log bulletin records
	// and one typed node per record — the materialized view converged
	// to exactly the recovered log.
	Parity bool `json:"parity"`
}

var bulletinClass = rdf.NSDEWS.IRI("Bulletin")

// CheckGraph opens the graph store cold. Opening runs the same
// recovery a restarted server performs (snapshot + WAL tail), but NOT
// the server's reconcile step — so this checks the state the last
// server instance actually persisted.
func CheckGraph(graphDir string, f *LogFacts) (*GraphReport, error) {
	store, err := graphlog.Open(graphlog.Config{Dir: graphDir})
	if err != nil {
		return nil, fmt.Errorf("oracle: reopening graph: %w", err)
	}
	defer store.Close()
	g := store.Graph()
	rep := &GraphReport{
		Triples:       g.Len(),
		BulletinNodes: g.Count(nil, rdf.RDFType, bulletinClass),
		WantTriples:   f.Bulletins * int64(loadgen.BulletinTriples),
	}
	rep.Parity = int64(rep.Triples) == rep.WantTriples && int64(rep.BulletinNodes) == f.Bulletins
	return rep, nil
}
