package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// ReplayFacts is what one full verification replay observed: a fresh
// firehose subscription from offset 1 reading the entire log through
// the live SSE path.
type ReplayFacts struct {
	Events      uint64 `json:"events"`
	FirstOffset uint64 `json:"first_offset"`
	LastOffset  uint64 `json:"last_offset"`
	Contiguous  bool   `json:"contiguous"`
	// IDCounts maps HeaderID → times delivered on this one stream;
	// exactly-once means every count is 1.
	IDCounts map[string]int `json:"-"`
	// Duplicated counts IDs delivered more than once.
	Duplicated int `json:"duplicated"`
}

// VerifyReplay opens one resuming firehose subscription from offset 1
// and reads until the stream reaches target (inclusive), auditing
// order and identity. This is the online half of the chaos oracle: the
// recovered server must be able to re-serve its whole history through
// the same SSE path clients use, exactly once, in offset order.
func VerifyReplay(ctx context.Context, client *http.Client, base string, target uint64, timeout time.Duration) (*ReplayFacts, error) {
	facts := &ReplayFacts{Contiguous: true, IDCounts: make(map[string]int)}
	if target == 0 {
		return facts, nil
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	err := subscribeSSE(ctx, client, base, "#", 0, 0, true, func(ev sseEvent) error {
		if ev.event != "message" {
			return nil
		}
		var env envelope
		if err := json.Unmarshal(ev.data, &env); err != nil {
			return err
		}
		if facts.Events == 0 {
			facts.FirstOffset = env.Offset
		} else if env.Offset != facts.LastOffset+1 {
			facts.Contiguous = false
		}
		facts.LastOffset = env.Offset
		facts.Events++
		if id := env.Headers[HeaderID]; id != "" {
			facts.IDCounts[id]++
			if facts.IDCounts[id] == 2 {
				facts.Duplicated++
			}
		}
		if env.Offset >= target {
			return io.EOF
		}
		return nil
	})
	return facts, err
}
