package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RunConfig parameterizes one load run against a gateway base URL.
type RunConfig struct {
	// Target is the gateway base URL (no trailing slash).
	Target string
	// Seed drives every random choice: event streams, topic fan-out,
	// subscriber pattern assignment. Same seed, same generated load.
	Seed int64
	// Publishers is the synthetic sensor count; each runs a closed loop.
	Publishers int
	// Rate is the total target publish rate in events/second across all
	// publishers (0 = as fast as acks allow).
	Rate float64
	// Batch is the events per publish request.
	Batch int
	// Subscribers is the SSE consumer fleet size.
	Subscribers int
	// WildcardFrac and ResumerFrac split the fleet: wildcard patterns
	// (obs/+/Prop, obs/district/#, a few firehose #) and deliberate
	// disconnect-and-resume consumers; the rest hold concrete topics.
	WildcardFrac float64
	ResumerFrac  float64
	// ResumeDropEvery makes resumers drop the stream after this many
	// events and reconnect with Last-Event-ID (default 512).
	ResumeDropEvery int
	// SubBuffer is the per-subscriber queue capacity hint (0 = server
	// default).
	SubBuffer int
	// SPARQLClients and SPARQLInterval shape the query side-load.
	SPARQLClients  int
	SPARQLInterval time.Duration
	// BulletinEvery emits one bulletin per publisher per this many
	// events (0 disables the graph path).
	BulletinEvery int
	// SyncPublish publishes with ?sync=1 so an ack means fsynced —
	// chaos mode uses it to make "no lost acked publish" exact.
	SyncPublish bool
	// TrackIDs makes subscribers record every lg-id they see (chaos
	// verification); costs memory, off for plain steady state.
	TrackIDs bool
	// Districts overrides the topic universe (default: the five Free
	// State districts).
	Districts []string
}

func (c *RunConfig) applyDefaults() {
	if c.Publishers <= 0 {
		c.Publishers = 8
	}
	if c.Batch <= 0 {
		c.Batch = 50
	}
	if c.Subscribers < 0 {
		c.Subscribers = 0
	}
	if c.ResumeDropEvery <= 0 {
		c.ResumeDropEvery = 512
	}
	if c.SPARQLInterval <= 0 {
		c.SPARQLInterval = 250 * time.Millisecond
	}
	if len(c.Districts) == 0 {
		c.Districts = DefaultDistricts
	}
}

// subscriberWorker pairs a worker's config with its live accounting.
type subscriberWorker struct {
	pattern   string
	kind      subKind
	dropEvery int
	res       subscriberResult
}

// Runner owns a load run: a subscriber fleet that stays connected
// across publisher phases (and across chaos kills — consumers
// reconnect with Last-Event-ID like real EventSources), plus
// closed-loop publisher/SPARQL phases run against it.
type Runner struct {
	cfg    RunConfig
	client *http.Client

	subs    []*subscriberWorker
	subWG   sync.WaitGroup
	subStop context.CancelFunc

	// Acked accumulates publish outcomes across every phase of the run.
	Acked *AckedSet

	// streams persist across phases so sequence numbers never restart.
	streams []*Stream
}

// NewRunner builds a runner (no connections yet).
func NewRunner(cfg RunConfig) *Runner {
	cfg.applyDefaults()
	transport := &http.Transport{
		MaxIdleConns:        cfg.Publishers + cfg.SPARQLClients + 16,
		MaxIdleConnsPerHost: cfg.Publishers + cfg.SPARQLClients + 16,
		IdleConnTimeout:     30 * time.Second,
	}
	r := &Runner{
		cfg:    cfg,
		client: &http.Client{Transport: transport},
		Acked:  NewAckedSet(),
	}
	for i := 0; i < cfg.Publishers; i++ {
		r.streams = append(r.streams, NewStream(StreamConfig{
			Seed:          cfg.Seed,
			Publisher:     i,
			Districts:     cfg.Districts,
			BulletinEvery: cfg.BulletinEvery,
		}))
	}
	return r
}

// subscriberPatterns deterministically assigns the fleet's patterns.
func (r *Runner) subscriberPatterns() []*subscriberWorker {
	cfg := r.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 9001))
	props := defaultProperties()
	n := cfg.Subscribers
	nResume := int(float64(n) * cfg.ResumerFrac)
	nWild := int(float64(n) * cfg.WildcardFrac)
	workers := make([]*subscriberWorker, 0, n)
	for i := 0; i < n; i++ {
		w := &subscriberWorker{}
		district := cfg.Districts[rng.Intn(len(cfg.Districts))]
		prop := props[rng.Intn(len(props))]
		switch {
		case i < nResume:
			w.kind = subResumer
			w.pattern = "obs/" + district + "/#"
			w.dropEvery = cfg.ResumeDropEvery
		case i < nResume+nWild:
			w.kind = subWildcard
			switch rng.Intn(3) {
			case 0:
				w.pattern = "obs/+/" + prop
			case 1:
				w.pattern = "obs/" + district + "/#"
			default:
				w.pattern = "#"
			}
		default:
			w.kind = subLive
			w.pattern = "obs/" + district + "/" + prop
		}
		if cfg.TrackIDs {
			w.res.seenIDs = make(map[string]int)
		}
		workers = append(workers, w)
	}
	return workers
}

// StartSubscribers connects the fleet and blocks until the server
// reports every stream active (or ctx/deadline ends).
func (r *Runner) StartSubscribers(ctx context.Context) error {
	if r.cfg.Subscribers == 0 {
		return nil
	}
	subCtx, cancel := context.WithCancel(ctx)
	r.subStop = cancel
	r.subs = r.subscriberPatterns()
	for _, w := range r.subs {
		w := w
		r.subWG.Add(1)
		go func() {
			defer r.subWG.Done()
			subscriber(subCtx, r.client, r.cfg.Target, w.pattern, r.cfg.SubBuffer, w.dropEvery, &w.res)
		}()
	}
	// Wait for the fleet to be fully connected so the measured phase
	// starts from a steady state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := FetchStats(ctx, r.client, r.cfg.Target)
		if err == nil && st.SSEClients >= int64(r.cfg.Subscribers) {
			return nil
		}
		if time.Now().After(deadline) {
			got := int64(-1)
			if err == nil {
				got = st.SSEClients
			}
			return fmt.Errorf("loadgen: only %d of %d subscribers connected after 60s (last err: %v)", got, r.cfg.Subscribers, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// StopSubscribers tears the fleet down and returns once every worker
// has exited. Safe to call once.
func (r *Runner) StopSubscribers() {
	if r.subStop != nil {
		r.subStop()
	}
	r.subWG.Wait()
}

// LoadResult is one publisher phase's outcome.
type LoadResult struct {
	DurationSecs  float64        `json:"duration_secs"`
	Published     uint64         `json:"published"`
	Batches       uint64         `json:"batches"`
	PublishErrors uint64         `json:"publish_errors"`
	ThroughputEPS float64        `json:"throughput_eps"`
	PublishAck    LatencySummary `json:"publish_ack"`
	SPARQL        LatencySummary `json:"sparql"`
	SPARQLQueries uint64         `json:"sparql_queries"`
	SPARQLErrors  uint64         `json:"sparql_errors"`
	// SSEDelivered counts subscriber deliveries during this phase;
	// DeliveredEPS is its rate.
	SSEDelivered uint64  `json:"sse_delivered"`
	DeliveredEPS float64 `json:"delivered_eps"`
}

// RunLoad drives the publisher and SPARQL workers for the given
// duration against the (already started) subscriber fleet.
func (r *Runner) RunLoad(ctx context.Context, duration time.Duration) *LoadResult {
	cfg := r.cfg
	phaseCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var interval time.Duration
	if cfg.Rate > 0 {
		perPublisher := cfg.Rate / float64(cfg.Publishers)
		interval = time.Duration(float64(cfg.Batch) / perPublisher * float64(time.Second))
	}

	deliveredBefore := r.deliveredTotal()
	pubResults := make([]publisherResult, cfg.Publishers)
	sparqlResults := make([]sparqlResult, cfg.SPARQLClients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Publishers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			publisher(phaseCtx, r.client, cfg.Target, r.streams[i], cfg.Batch, interval, cfg.SyncPublish, r.Acked, &pubResults[i])
		}()
	}
	for i := 0; i < cfg.SPARQLClients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sparqlWorker(phaseCtx, r.client, cfg.Target, cfg.SPARQLInterval, &sparqlResults[i])
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{DurationSecs: elapsed.Seconds()}
	var ackHist, sparqlHist Histogram
	for i := range pubResults {
		p := &pubResults[i]
		ackHist.Merge(&p.hist)
		res.Published += p.published
		res.Batches += p.batches
		res.PublishErrors += p.errors
	}
	for i := range sparqlResults {
		q := &sparqlResults[i]
		sparqlHist.Merge(&q.hist)
		res.SPARQLQueries += q.queries
		res.SPARQLErrors += q.errors
	}
	res.PublishAck = ackHist.Summary()
	res.SPARQL = sparqlHist.Summary()
	res.ThroughputEPS = float64(res.Published) / elapsed.Seconds()
	res.SSEDelivered = r.deliveredTotal() - deliveredBefore
	res.DeliveredEPS = float64(res.SSEDelivered) / elapsed.Seconds()
	return res
}

// deliveredTotal sums subscriber deliveries so far.
func (r *Runner) deliveredTotal() uint64 {
	var total uint64
	for _, w := range r.subs {
		total += w.res.received.Load()
	}
	return total
}

// SubscriberReport aggregates the fleet per kind after StopSubscribers.
type SubscriberReport struct {
	Kind     string `json:"kind"`
	Count    int    `json:"count"`
	Received uint64 `json:"received"`
	// OffsetRegressions counts deliveries whose offset did not advance.
	// On live queue-backed streams concurrent publishers' batch fan-outs
	// interleave (stamping is ordered under the broker lock, queue offers
	// are not), so a non-zero value is reordering, not duplication —
	// identity tracking (TrackIDs) is the duplicate oracle.
	OffsetRegressions uint64         `json:"offset_regressions"`
	Goodbyes          uint64         `json:"goodbyes"`
	Reconnects        uint64         `json:"reconnects"`
	Errors            uint64         `json:"errors"`
	E2E               LatencySummary `json:"e2e"`
}

// SubscriberReports aggregates per-kind results. Call after
// StopSubscribers (worker histograms are not synchronized).
func (r *Runner) SubscriberReports() []SubscriberReport {
	byKind := map[subKind]*SubscriberReport{}
	hists := map[subKind]*Histogram{}
	for _, w := range r.subs {
		rep, ok := byKind[w.kind]
		if !ok {
			rep = &SubscriberReport{Kind: w.kind.String()}
			byKind[w.kind] = rep
			hists[w.kind] = &Histogram{}
		}
		rep.Count++
		rep.Received += w.res.received.Load()
		rep.OffsetRegressions += w.res.offsetRegressions.Load()
		rep.Goodbyes += w.res.goodbyes.Load()
		rep.Reconnects += w.res.reconnects.Load()
		rep.Errors += w.res.errors.Load()
		hists[w.kind].Merge(&w.res.hist)
	}
	var out []SubscriberReport
	for _, k := range []subKind{subLive, subWildcard, subResumer} {
		if rep, ok := byKind[k]; ok {
			rep.E2E = hists[k].Summary()
			out = append(out, *rep)
		}
	}
	return out
}

// SeenIDs merges every tracked subscriber's identity observations
// (TrackIDs runs only).
func (r *Runner) SeenIDs() map[string]int {
	out := make(map[string]int)
	for _, w := range r.subs {
		for id, n := range w.res.seenIDs {
			out[id] += n
		}
	}
	return out
}

// ExactlyOnceViolations counts (subscriber, id) pairs where one stream
// delivered the same event identity more than once. Offsets can be
// legitimately reissued after a crash loses unsynced tail records, so
// identity — not offset — is the sound exactly-once oracle under
// chaos. Call after StopSubscribers (TrackIDs runs only).
func (r *Runner) ExactlyOnceViolations() int {
	violations := 0
	for _, w := range r.subs {
		for _, n := range w.res.seenIDs {
			if n > 1 {
				violations++
			}
		}
	}
	return violations
}

// StatsSnapshot is the subset of /stats the harness keys on.
type StatsSnapshot struct {
	SSEClients      int64
	SSEEvents       int64
	NextOffset      uint64
	OldestOffset    uint64
	BrokerPublished uint64
	Triples         int
	Raw             map[string]any
}

// FetchStats pulls and decodes /stats.
func FetchStats(ctx context.Context, client *http.Client, base string) (StatsSnapshot, error) {
	var snap StatsSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return snap, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return snap, err
	}
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("stats: %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		return snap, err
	}
	snap.Raw = raw
	snap.SSEClients = int64(numAt(raw, "gateway", "sse_clients"))
	snap.SSEEvents = int64(numAt(raw, "gateway", "sse_events_sent"))
	snap.NextOffset = uint64(numAt(raw, "eventlog", "next_offset"))
	snap.OldestOffset = uint64(numAt(raw, "eventlog", "oldest_offset"))
	snap.BrokerPublished = uint64(numAt(raw, "broker", "published"))
	snap.Triples = int(numAt(raw, "extra", "semweb", "bulletin_triples"))
	return snap, nil
}

// numAt walks a decoded JSON object path to a float64 (0 when absent).
func numAt(m map[string]any, path ...string) float64 {
	var cur any = m
	for _, key := range path {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0
		}
		cur = obj[key]
	}
	n, _ := cur.(float64)
	return n
}

// WaitHealthy polls /healthz until the server answers 200 or the
// deadline passes — used after spawning or restarting the server.
func WaitHealthy(ctx context.Context, client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not healthy after %v (last: %v)", base, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
