package forecast

import (
	"strings"
	"testing"
	"time"
)

func mapBulletin(district string, p float64, issued time.Time) Bulletin {
	return Bulletin{
		District: district, Issued: issued, LeadDays: 30,
		Probability: p, Band: BandFromProbability(p), Forecaster: "fused",
	}
}

func TestVulnerabilityMapUpdateAndOrder(t *testing.T) {
	m := NewVulnerabilityMap()
	at := time.Date(2015, 11, 20, 0, 0, 0, 0, time.UTC)
	if err := m.Update(mapBulletin("mangaung", 0.05, at)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(mapBulletin("xhariep", 0.5, at)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(mapBulletin("lejweleputswa", 0.95, at)); err != nil {
		t.Fatal(err)
	}
	ds := m.Districts()
	if len(ds) != 3 || ds[0] != "lejweleputswa" || ds[2] != "mangaung" {
		t.Errorf("severity ordering = %v", ds)
	}
	if m.WorstBand() != DVIExtreme {
		t.Errorf("worst = %v", m.WorstBand())
	}
	mean := m.MeanProbability()
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v", mean)
	}
	if _, ok := m.Entry("xhariep"); !ok {
		t.Error("entry missing")
	}
	if _, ok := m.Entry("ghost"); ok {
		t.Error("phantom entry")
	}
}

func TestVulnerabilityMapStaleUpdateIgnored(t *testing.T) {
	m := NewVulnerabilityMap()
	newer := time.Date(2015, 11, 20, 0, 0, 0, 0, time.UTC)
	older := newer.AddDate(0, 0, -7)
	if err := m.Update(mapBulletin("mangaung", 0.9, newer)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(mapBulletin("mangaung", 0.1, older)); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Entry("mangaung")
	if b.Probability != 0.9 {
		t.Errorf("stale update overwrote newer: %v", b.Probability)
	}
}

func TestVulnerabilityMapRender(t *testing.T) {
	m := NewVulnerabilityMap()
	if got := m.Render(); !strings.Contains(got, "no data") {
		t.Errorf("empty render = %q", got)
	}
	at := time.Date(2015, 11, 20, 0, 0, 0, 0, time.UTC)
	if err := m.Update(mapBulletin("mangaung", 0.97, at)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(mapBulletin("xhariep", 0.0, at)); err != nil {
		t.Fatal(err)
	}
	out := m.Render()
	if !strings.Contains(out, "##########") {
		t.Errorf("97%% should render a full bar:\n%s", out)
	}
	if !strings.Contains(out, "----------") {
		t.Errorf("0%% should render an empty bar:\n%s", out)
	}
	if !strings.Contains(out, "extreme") || !strings.Contains(out, "normal") {
		t.Errorf("bands missing:\n%s", out)
	}
	if !strings.Contains(out, "2015-11-20") {
		t.Errorf("issue date missing:\n%s", out)
	}
}

func TestVulnerabilityMapRejectsInvalid(t *testing.T) {
	m := NewVulnerabilityMap()
	if err := m.Update(Bulletin{}); err == nil {
		t.Error("invalid bulletin should be rejected")
	}
}

func TestBarBounds(t *testing.T) {
	if bar(0) != "----------" {
		t.Errorf("bar(0) = %q", bar(0))
	}
	if bar(1) != "##########" {
		t.Errorf("bar(1) = %q", bar(1))
	}
	if bar(1.7) != "##########" {
		t.Errorf("bar(>1) must clamp: %q", bar(1.7))
	}
	if got := bar(0.5); strings.Count(got, "#") != 5 {
		t.Errorf("bar(0.5) = %q", got)
	}
}
