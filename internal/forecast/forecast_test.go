package forecast

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestContingencyScores(t *testing.T) {
	var c Contingency
	// 30 hits, 10 misses, 20 false alarms, 40 correct negatives.
	for i := 0; i < 30; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 10; i++ {
		c.Add(false, true)
	}
	for i := 0; i < 20; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 40; i++ {
		c.Add(false, false)
	}
	if c.N() != 100 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.POD(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("POD = %v", got)
	}
	if got := c.FAR(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("FAR = %v", got)
	}
	if got := c.CSI(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CSI = %v", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Bias(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("Bias = %v", got)
	}
	if c.HSS() <= 0 {
		t.Errorf("HSS = %v should show skill", c.HSS())
	}
	if s := c.String(); !strings.Contains(s, "POD=0.750") {
		t.Errorf("String = %s", s)
	}
}

func TestContingencyDegenerate(t *testing.T) {
	var c Contingency
	if c.POD() != 0 || c.FAR() != 0 || c.CSI() != 0 || c.HSS() != 0 {
		t.Error("empty table should score zero, not NaN")
	}
}

func TestPerfectAndRandomHSS(t *testing.T) {
	var perfect Contingency
	for i := 0; i < 50; i++ {
		perfect.Add(true, true)
		perfect.Add(false, false)
	}
	if got := perfect.HSS(); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect HSS = %v", got)
	}
	// Forecasts independent of outcome → HSS ≈ 0.
	var random Contingency
	for i := 0; i < 25; i++ {
		random.Add(true, true)
		random.Add(true, false)
		random.Add(false, true)
		random.Add(false, false)
	}
	if got := random.HSS(); math.Abs(got) > 1e-9 {
		t.Errorf("random HSS = %v", got)
	}
}

func TestBrierScore(t *testing.T) {
	var b BrierScore
	b.Add(1, true)
	b.Add(0, false)
	if got := b.Score(); got != 0 {
		t.Errorf("perfect Brier = %v", got)
	}
	var worst BrierScore
	worst.Add(1, false)
	worst.Add(0, true)
	if got := worst.Score(); got != 1 {
		t.Errorf("worst Brier = %v", got)
	}
	var empty BrierScore
	if !math.IsNaN(empty.Score()) {
		t.Error("empty Brier should be NaN")
	}
	// Skill: a forecast half as wrong as reference scores 0.75 (1 - 0.25/1).
	var half BrierScore
	half.Add(0.5, false)
	half.Add(0.5, true)
	if got := half.Skill(worst); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("skill = %v", got)
	}
}

func TestQuickBrierBounds(t *testing.T) {
	f := func(ps []float64, outcome bool) bool {
		var b BrierScore
		for _, p := range ps {
			b.Add(math.Abs(math.Mod(p, 1)), outcome)
		}
		if b.N() == 0 {
			return math.IsNaN(b.Score())
		}
		s := b.Score()
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func baseFeatures() Features {
	return Features{
		Date:      time.Date(2015, 11, 20, 0, 0, 0, 0, time.UTC),
		RainSum30: 40, ClimRain30: 45,
		RainSum90: 120, ClimRain90: 130,
		SoilMoisture: 0.3, TempAnomaly: 0, NDVI: 0.45,
	}
}

func dryFeatures() Features {
	f := baseFeatures()
	f.RainSum30, f.RainSum90 = 2, 20
	f.SoilMoisture = 0.08
	f.TempAnomaly = 3
	f.NDVI = 0.18
	f.IKDryConsensus = 0.7
	f.CEPDrySignals = 2
	f.CEPConfidence = 0.8
	return f
}

func TestClimatology(t *testing.T) {
	c := Climatology{BaseRate: 0.22}
	if got := c.Forecast(dryFeatures()); got != 0.22 {
		t.Errorf("climatology must ignore features: %v", got)
	}
	if (Climatology{}).Name() == "" {
		t.Error("name empty")
	}
}

func TestPersistenceOrdering(t *testing.T) {
	p := Persistence{}
	wet, dry := p.Forecast(baseFeatures()), p.Forecast(dryFeatures())
	if dry <= wet {
		t.Errorf("dry %v should exceed wet %v", dry, wet)
	}
	// Missing climatology degrades to 0.5.
	f := baseFeatures()
	f.ClimRain90 = 0
	if got := p.Forecast(f); got != 0.5 {
		t.Errorf("degenerate climatology = %v", got)
	}
}

func TestSensorStatOrderingAndCalibration(t *testing.T) {
	s := SensorStat{Intercept: -1}
	wet, dry := s.Forecast(baseFeatures()), s.Forecast(dryFeatures())
	if dry <= wet {
		t.Errorf("sensor-only: dry %v should exceed wet %v", dry, wet)
	}
	// Calibration matches the mean to the base rate.
	train := []Features{baseFeatures(), dryFeatures(), baseFeatures(), baseFeatures()}
	s.Calibrate(train, 0.25)
	var mean float64
	for _, f := range train {
		mean += s.Forecast(f)
	}
	mean /= float64(len(train))
	if math.Abs(mean-0.25) > 0.02 {
		t.Errorf("calibrated mean = %v, want ≈0.25", mean)
	}
	// Degenerate inputs fall back safely.
	var s2 SensorStat
	s2.Calibrate(nil, 0.25)
	if s2.Intercept != -1 {
		t.Errorf("fallback intercept = %v", s2.Intercept)
	}
}

func TestIKOnly(t *testing.T) {
	k := IKOnly{BaseRate: 0.2}
	quiet := k.Forecast(baseFeatures())
	if math.Abs(quiet-0.2) > 0.05 {
		t.Errorf("no-signal IK forecast %v should sit near base rate", quiet)
	}
	f := baseFeatures()
	f.IKDryConsensus = 0.9
	high := k.Forecast(f)
	if high <= quiet {
		t.Errorf("dry consensus should raise probability: %v vs %v", high, quiet)
	}
	f.IKDryConsensus = 0
	f.IKWetConsensus = 0.9
	low := k.Forecast(f)
	if low >= quiet {
		t.Errorf("wet consensus should lower probability: %v vs %v", low, quiet)
	}
}

func TestFusedUsesAllEvidence(t *testing.T) {
	fu := Fused{Sensor: SensorStat{Intercept: -1}, IK: IKOnly{BaseRate: 0.2}}
	base := fu.Forecast(baseFeatures())
	dry := fu.Forecast(dryFeatures())
	if dry <= base {
		t.Errorf("fused: dry %v should exceed base %v", dry, base)
	}
	// CEP evidence alone moves the needle.
	f := baseFeatures()
	noCEP := fu.Forecast(f)
	f.CEPDrySignals = 3
	f.CEPConfidence = 0.9
	withCEP := fu.Forecast(f)
	if withCEP <= noCEP {
		t.Errorf("CEP inferences should add evidence: %v vs %v", withCEP, noCEP)
	}
	// IK evidence alone moves the needle too.
	f2 := baseFeatures()
	f2.IKDryConsensus = 0.8
	if fu.Forecast(f2) <= noCEP {
		t.Error("IK consensus should add evidence in fusion")
	}
}

func TestProbabilityBounds(t *testing.T) {
	forecasters := []Forecaster{
		Climatology{BaseRate: 0.2},
		Persistence{},
		SensorStat{Intercept: -1},
		IKOnly{BaseRate: 0.2},
		Fused{Sensor: SensorStat{Intercept: -1}, IK: IKOnly{BaseRate: 0.2}},
	}
	extreme := []Features{
		{}, // all zeros
		dryFeatures(),
		{RainSum30: 1e6, ClimRain30: 1, RainSum90: 1e6, ClimRain90: 1, SoilMoisture: 1, NDVI: 1},
		{IKDryConsensus: 1, IKWetConsensus: 1, CEPDrySignals: 100, CEPConfidence: 1},
	}
	for _, fc := range forecasters {
		for i, f := range extreme {
			p := fc.Forecast(f)
			if p <= 0 || p >= 1 || math.IsNaN(p) {
				t.Errorf("%s case %d: p = %v out of (0,1)", fc.Name(), i, p)
			}
		}
	}
}

func TestThreshold(t *testing.T) {
	th := Threshold{Forecaster: Climatology{BaseRate: 0.7}, Cut: 0.5}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	if !th.Decide(baseFeatures()) {
		t.Error("0.7 ≥ 0.5 should decide yes")
	}
	th.Cut = 0.9
	if th.Decide(baseFeatures()) {
		t.Error("0.7 < 0.9 should decide no")
	}
	if err := (Threshold{}).Validate(); err == nil {
		t.Error("missing forecaster should fail validation")
	}
	if err := (Threshold{Forecaster: Persistence{}, Cut: 2}).Validate(); err == nil {
		t.Error("cut > 1 should fail")
	}
	// Default cut is 0.5.
	d := Threshold{Forecaster: Climatology{BaseRate: 0.6}}
	if !d.Decide(baseFeatures()) {
		t.Error("default cut should be 0.5")
	}
}

func TestDVIBands(t *testing.T) {
	cases := []struct {
		p    float64
		want DVIBand
	}{
		{0.1, DVINormal}, {0.3, DVIWatch}, {0.5, DVIWarning},
		{0.7, DVISevere}, {0.9, DVIExtreme},
		{0.25, DVIWatch}, {0.45, DVIWarning}, {0.65, DVISevere}, {0.85, DVIExtreme},
	}
	for _, c := range cases {
		if got := BandFromProbability(c.p); got != c.want {
			t.Errorf("Band(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	for b, name := range map[DVIBand]string{
		DVINormal: "normal", DVIWatch: "watch", DVIWarning: "warning",
		DVISevere: "severe", DVIExtreme: "extreme",
	} {
		if b.String() != name {
			t.Errorf("band %d name %q", b, b.String())
		}
	}
}

func TestBulletin(t *testing.T) {
	fu := Fused{Sensor: SensorStat{Intercept: -1}, IK: IKOnly{BaseRate: 0.2}}
	b := MakeBulletin("mangaung", dryFeatures(), fu, 30)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Band < DVIWatch {
		t.Errorf("dry features should produce at least a watch: %v (p=%v)", b.Band, b.Probability)
	}
	if len(b.Evidence) < 2 {
		t.Errorf("evidence = %v", b.Evidence)
	}
	h := b.Headline()
	if !strings.Contains(h, "mangaung") || !strings.Contains(h, "30d") {
		t.Errorf("headline = %q", h)
	}
	d := b.Detail()
	if !strings.Contains(d, "model: fused") {
		t.Errorf("detail = %q", d)
	}
}

func TestBulletinValidation(t *testing.T) {
	good := Bulletin{District: "x", Issued: time.Now(), LeadDays: 30, Probability: 0.4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Bulletin){
		func(b *Bulletin) { b.District = "" },
		func(b *Bulletin) { b.Issued = time.Time{} },
		func(b *Bulletin) { b.LeadDays = 0 },
		func(b *Bulletin) { b.Probability = 1.5 },
	}
	for i, mutate := range cases {
		b := good
		mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestVerificationRow(t *testing.T) {
	v := Verification{Name: "fused", LeadDays: 30}
	v.Contingency.Add(true, true)
	v.Brier.Add(0.9, true)
	row := v.Row()
	if !strings.Contains(row, "fused") || !strings.Contains(row, "POD=") {
		t.Errorf("row = %q", row)
	}
}
