package forecast

import (
	"fmt"
	"math"
)

// Contingency is a 2×2 forecast verification table for event forecasts.
type Contingency struct {
	// Hits: forecast yes, observed yes.
	Hits int
	// Misses: forecast no, observed yes.
	Misses int
	// FalseAlarms: forecast yes, observed no.
	FalseAlarms int
	// CorrectNegatives: forecast no, observed no.
	CorrectNegatives int
}

// Add accumulates one verified forecast.
func (c *Contingency) Add(forecast, observed bool) {
	switch {
	case forecast && observed:
		c.Hits++
	case !forecast && observed:
		c.Misses++
	case forecast && !observed:
		c.FalseAlarms++
	default:
		c.CorrectNegatives++
	}
}

// N returns the table total.
func (c Contingency) N() int {
	return c.Hits + c.Misses + c.FalseAlarms + c.CorrectNegatives
}

// POD is the probability of detection (hit rate): H/(H+M).
func (c Contingency) POD() float64 {
	return safeDiv(float64(c.Hits), float64(c.Hits+c.Misses))
}

// FAR is the false alarm ratio: F/(H+F).
func (c Contingency) FAR() float64 {
	return safeDiv(float64(c.FalseAlarms), float64(c.Hits+c.FalseAlarms))
}

// CSI is the critical success index (threat score): H/(H+M+F).
func (c Contingency) CSI() float64 {
	return safeDiv(float64(c.Hits), float64(c.Hits+c.Misses+c.FalseAlarms))
}

// Accuracy is (H+CN)/N.
func (c Contingency) Accuracy() float64 {
	return safeDiv(float64(c.Hits+c.CorrectNegatives), float64(c.N()))
}

// Bias is the frequency bias (H+F)/(H+M): >1 over-forecasts.
func (c Contingency) Bias() float64 {
	return safeDiv(float64(c.Hits+c.FalseAlarms), float64(c.Hits+c.Misses))
}

// HSS is the Heidke skill score: accuracy relative to chance, in
// (-∞, 1], 0 = no skill.
func (c Contingency) HSS() float64 {
	h, m, f, cn := float64(c.Hits), float64(c.Misses), float64(c.FalseAlarms), float64(c.CorrectNegatives)
	num := 2 * (h*cn - f*m)
	den := (h+m)*(m+cn) + (h+f)*(f+cn)
	return safeDiv(num, den)
}

// String renders the headline scores.
func (c Contingency) String() string {
	return fmt.Sprintf("n=%d POD=%.3f FAR=%.3f CSI=%.3f HSS=%.3f acc=%.3f bias=%.2f",
		c.N(), c.POD(), c.FAR(), c.CSI(), c.HSS(), c.Accuracy(), c.Bias())
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// BrierScore measures probabilistic forecast quality: mean squared error
// of probabilities against binary outcomes. 0 is perfect; lower is
// better.
type BrierScore struct {
	sum float64
	n   int
}

// Add accumulates one probabilistic forecast.
func (b *BrierScore) Add(probability float64, observed bool) {
	o := 0.0
	if observed {
		o = 1
	}
	d := probability - o
	b.sum += d * d
	b.n++
}

// Score returns the mean squared probability error.
func (b BrierScore) Score() float64 {
	if b.n == 0 {
		return math.NaN()
	}
	return b.sum / float64(b.n)
}

// N returns the number of accumulated forecasts.
func (b BrierScore) N() int { return b.n }

// Skill computes the Brier skill score relative to a reference forecast
// (1 is perfect, 0 matches reference, negative is worse than reference).
func (b BrierScore) Skill(reference BrierScore) float64 {
	ref := reference.Score()
	if ref == 0 || math.IsNaN(ref) {
		return 0
	}
	return 1 - b.Score()/ref
}

// Verification bundles both views of a forecaster's performance.
type Verification struct {
	Name        string
	Contingency Contingency
	Brier       BrierScore
	// LeadDays is the verification horizon used.
	LeadDays int
}

// Row renders a result table row (EXPERIMENTS.md format).
func (v Verification) Row() string {
	return fmt.Sprintf("%-14s POD=%.3f FAR=%.3f CSI=%.3f HSS=%.3f Brier=%.4f n=%d",
		v.Name, v.Contingency.POD(), v.Contingency.FAR(), v.Contingency.CSI(),
		v.Contingency.HSS(), v.Brier.Score(), v.Contingency.N())
}
