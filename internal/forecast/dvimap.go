package forecast

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// VulnerabilityMap maintains the latest DVI per district — the "spatial
// distribution of drought vulnerability index" the paper's motivation
// section wants disseminated. It renders as a sorted table with severity
// bars for billboard/web display. Safe for concurrent use.
type VulnerabilityMap struct {
	mu      sync.RWMutex
	entries map[string]Bulletin
}

// NewVulnerabilityMap returns an empty map.
func NewVulnerabilityMap() *VulnerabilityMap {
	return &VulnerabilityMap{entries: make(map[string]Bulletin)}
}

// Update records a bulletin; only the newest per district is kept.
func (m *VulnerabilityMap) Update(b Bulletin) error {
	if err := b.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.entries[b.District]
	if ok && cur.Issued.After(b.Issued) {
		return nil // stale update
	}
	m.entries[b.District] = b
	return nil
}

// Entry returns the latest bulletin for a district.
func (m *VulnerabilityMap) Entry(district string) (Bulletin, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.entries[district]
	return b, ok
}

// Districts lists covered districts sorted by severity (worst first),
// then name.
func (m *VulnerabilityMap) Districts() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.entries))
	for d := range m.entries {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := m.entries[out[i]], m.entries[out[j]]
		if bi.Band != bj.Band {
			return bi.Band > bj.Band
		}
		return out[i] < out[j]
	})
	return out
}

// WorstBand returns the highest severity on the map.
func (m *VulnerabilityMap) WorstBand() DVIBand {
	m.mu.RLock()
	defer m.mu.RUnlock()
	worst := DVINormal
	for _, b := range m.entries {
		if b.Band > worst {
			worst = b.Band
		}
	}
	return worst
}

// MeanProbability averages drought probability across districts.
func (m *VulnerabilityMap) MeanProbability() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.entries) == 0 {
		return 0
	}
	var sum float64
	for _, b := range m.entries {
		sum += b.Probability
	}
	return sum / float64(len(m.entries))
}

// Render draws the spatial DVI table:
//
//	DVI map (issued 2015-11-20, 30d outlook)
//	lejweleputswa      ██████████ extreme  97%
//	xhariep            ████------ watch    38%
//	mangaung           ##-------- normal    4%
func (m *VulnerabilityMap) Render() string {
	districts := m.Districts()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(districts) == 0 {
		return "DVI map: no data\n"
	}
	var newest time.Time
	lead := 0
	for _, b := range m.entries {
		if b.Issued.After(newest) {
			newest = b.Issued
			lead = b.LeadDays
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "DVI map (issued %s, %dd outlook)\n", newest.Format("2006-01-02"), lead)
	for _, d := range districts {
		b := m.entries[d]
		fmt.Fprintf(&sb, "%-20s %s %-8s %3.0f%%\n", d, bar(b.Probability), b.Band, b.Probability*100)
	}
	return sb.String()
}

// bar renders a 10-cell probability bar.
func bar(p float64) string {
	filled := int(p*10 + 0.5)
	if filled > 10 {
		filled = 10
	}
	return strings.Repeat("#", filled) + strings.Repeat("-", 10-filled)
}
