// Package forecast implements the drought forecasters the evaluation
// compares — climatology and persistence baselines, a statistical
// sensor-only model ("most drought predicting/forecasting system is
// based on statistical model using data from weather stations and WSNs
// data only", §3 of the paper), an IK-only forecaster, and the paper's
// contribution: the fused forecaster that combines semantically
// integrated sensor data, CEP inferences and indigenous knowledge —
// plus the verification metrics (POD, FAR, CSI, HSS, Brier) and the
// drought vulnerability index (DVI) bulletins the output channels
// disseminate. Bulletins are also published on the broker's
// bulletin/<district> topic, where gateway clients subscribe to them.
package forecast
