package forecast

import (
	"fmt"
	"strings"
	"time"
)

// DVIBand is a drought-vulnerability-index category aligned with the
// ontology's severity scale.
type DVIBand int

// DVI bands.
const (
	DVINormal DVIBand = iota
	DVIWatch
	DVIWarning
	DVISevere
	DVIExtreme
)

// String names the band.
func (b DVIBand) String() string {
	switch b {
	case DVINormal:
		return "normal"
	case DVIWatch:
		return "watch"
	case DVIWarning:
		return "warning"
	case DVISevere:
		return "severe"
	case DVIExtreme:
		return "extreme"
	default:
		return fmt.Sprintf("DVIBand(%d)", int(b))
	}
}

// BandFromProbability maps a drought probability to a DVI band using the
// operational thresholds (0.25/0.45/0.65/0.85).
func BandFromProbability(p float64) DVIBand {
	switch {
	case p >= 0.85:
		return DVIExtreme
	case p >= 0.65:
		return DVISevere
	case p >= 0.45:
		return DVIWarning
	case p >= 0.25:
		return DVIWatch
	default:
		return DVINormal
	}
}

// Bulletin is the disseminated forecast product: "the information in
// form of drought vulnerability index is disseminated to the targeted
// end-user via various output IoT channels" (§4).
type Bulletin struct {
	// District is the target region slug.
	District string
	// Issued is the issue time.
	Issued time.Time
	// LeadDays is the forecast horizon.
	LeadDays int
	// Probability is the fused drought probability.
	Probability float64
	// Band is the DVI category.
	Band DVIBand
	// Evidence lists the contributing signals (human-readable).
	Evidence []string
	// Forecaster names the producing model.
	Forecaster string
}

// Validate checks bulletin well-formedness.
func (b Bulletin) Validate() error {
	switch {
	case b.District == "":
		return fmt.Errorf("forecast: bulletin without district")
	case b.Issued.IsZero():
		return fmt.Errorf("forecast: bulletin without issue time")
	case b.LeadDays <= 0:
		return fmt.Errorf("forecast: bulletin lead %d must be positive", b.LeadDays)
	case b.Probability < 0 || b.Probability > 1:
		return fmt.Errorf("forecast: bulletin probability %v outside [0,1]", b.Probability)
	}
	return nil
}

// Headline renders the one-line form used by SMS and radio channels.
func (b Bulletin) Headline() string {
	return fmt.Sprintf("[%s] %s: drought %s (p=%.0f%%, %dd outlook)",
		b.Issued.Format("2006-01-02"), b.District, strings.ToUpper(b.Band.String()),
		b.Probability*100, b.LeadDays)
}

// Detail renders the multi-line form used by billboards and the web
// channel.
func (b Bulletin) Detail() string {
	var sb strings.Builder
	sb.WriteString(b.Headline())
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "model: %s\n", b.Forecaster)
	for _, e := range b.Evidence {
		fmt.Fprintf(&sb, "  - %s\n", e)
	}
	return sb.String()
}

// MakeBulletin assembles a bulletin from a forecast and its features.
func MakeBulletin(district string, f Features, fc Forecaster, leadDays int) Bulletin {
	p := fc.Forecast(f)
	b := Bulletin{
		District:    district,
		Issued:      f.Date,
		LeadDays:    leadDays,
		Probability: p,
		Band:        BandFromProbability(p),
		Forecaster:  fc.Name(),
	}
	if d := relDeficit(f.RainSum90, f.ClimRain90); d > 0.2 {
		b.Evidence = append(b.Evidence, fmt.Sprintf("90-day rainfall %.0f%% below climatology", d*100))
	}
	if f.SoilMoisture < 0.18 {
		b.Evidence = append(b.Evidence, fmt.Sprintf("soil moisture low (%.2f)", f.SoilMoisture))
	}
	if f.IKDryConsensus > 0.3 {
		b.Evidence = append(b.Evidence, fmt.Sprintf("indigenous indicators point dry (consensus %.2f)", f.IKDryConsensus))
	}
	if f.CEPDrySignals > 0 {
		b.Evidence = append(b.Evidence, fmt.Sprintf("%d drought-precursor inference(s), mean confidence %.2f",
			f.CEPDrySignals, f.CEPConfidence))
	}
	return b
}
