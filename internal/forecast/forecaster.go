package forecast

import (
	"fmt"
	"math"
	"time"
)

// Features is the per-day unified feature vector the middleware exposes
// to forecasters: everything already semantically integrated and in
// canonical units.
type Features struct {
	// Date is the forecast issue day.
	Date time.Time
	// RainSum30 / RainSum90 are trailing observed rainfall totals (mm).
	RainSum30, RainSum90 float64
	// ClimRain30 / ClimRain90 are the climatological expectations of the
	// same windows.
	ClimRain30, ClimRain90 float64
	// SoilMoisture is the latest observed volumetric fraction.
	SoilMoisture float64
	// TempAnomaly is the current temperature anomaly (°C above seasonal).
	TempAnomaly float64
	// NDVI is the latest vegetation index.
	NDVI float64
	// IKDryConsensus / IKWetConsensus are the reliability-weighted IK
	// signals in [0,1] over the trailing attention window.
	IKDryConsensus, IKWetConsensus float64
	// CEPDrySignals is the number of drought-pointing CEP inferences in
	// the trailing 30 days; CEPConfidence their mean confidence.
	CEPDrySignals int
	CEPConfidence float64
}

// Forecaster issues a probability that a drought (ground truth: SPI-90
// run below -1) will be in progress LeadDays from the issue date.
type Forecaster interface {
	// Name identifies the forecaster in result tables.
	Name() string
	// Forecast returns P(drought at lead) in [0,1].
	Forecast(f Features) float64
}

// probClamp keeps probabilities honest.
func probClamp(p float64) float64 {
	if p < 0.001 {
		return 0.001
	}
	if p > 0.999 {
		return 0.999
	}
	return p
}

// logistic is the standard squashing function.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// --- climatology ---

// Climatology forecasts the training-period base rate regardless of
// conditions: the no-skill probabilistic reference.
type Climatology struct {
	// BaseRate is the training drought frequency.
	BaseRate float64
}

// Name implements Forecaster.
func (c Climatology) Name() string { return "climatology" }

// Forecast implements Forecaster.
func (c Climatology) Forecast(Features) float64 { return probClamp(c.BaseRate) }

// --- persistence ---

// Persistence forecasts "drought ahead" when current observed conditions
// already look like drought (relative 90-day rainfall deficit), the
// classic cheap baseline.
type Persistence struct{}

// Name implements Forecaster.
func (Persistence) Name() string { return "persistence" }

// Forecast implements Forecaster.
func (Persistence) Forecast(f Features) float64 {
	if f.ClimRain90 <= 0 {
		return 0.5
	}
	deficit := 1 - f.RainSum90/f.ClimRain90 // 0 = normal, 1 = no rain at all
	return probClamp(logistic(6*deficit - 2.2))
}

// --- sensor-only statistical model (§3's status quo) ---

// SensorStat is a fixed-form logistic model over the WSN features only:
// rainfall deficits at two scales, soil moisture, temperature anomaly and
// vegetation. Weights are climatologically sensible constants; Calibrate
// fits the intercept so the model's mean matches the training base rate.
type SensorStat struct {
	// Intercept is set by Calibrate (default -1).
	Intercept float64
}

// Name implements Forecaster.
func (SensorStat) Name() string { return "sensor-only" }

// score is the shared linear predictor.
func (s SensorStat) score(f Features) float64 {
	d30 := relDeficit(f.RainSum30, f.ClimRain30)
	d90 := relDeficit(f.RainSum90, f.ClimRain90)
	return s.Intercept +
		2.0*d30 +
		3.0*d90 +
		2.5*(0.25-f.SoilMoisture)*4 + // soil dryness, scaled to ~[-3,2.5]
		0.15*f.TempAnomaly +
		1.0*(0.40-f.NDVI)*2.5
}

// Forecast implements Forecaster.
func (s SensorStat) Forecast(f Features) float64 {
	return probClamp(logistic(s.score(f)))
}

// Calibrate fits the intercept by bisection so that the mean forecast
// over the training features matches the observed base rate — a
// lightweight stand-in for full logistic regression that keeps the model
// deterministic and dependency-free.
func (s *SensorStat) Calibrate(train []Features, baseRate float64) {
	if len(train) == 0 || baseRate <= 0 || baseRate >= 1 {
		s.Intercept = -1
		return
	}
	lo, hi := -10.0, 10.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		s.Intercept = mid
		var mean float64
		for _, f := range train {
			mean += s.Forecast(f)
		}
		mean /= float64(len(train))
		if mean > baseRate {
			hi = mid
		} else {
			lo = mid
		}
	}
}

func relDeficit(observed, clim float64) float64 {
	if clim <= 0 {
		return 0
	}
	d := 1 - observed/clim
	if d < -1 {
		return -1
	}
	if d > 1 {
		return 1
	}
	return d
}

// --- IK-only ---

// IKOnly forecasts from indigenous-knowledge consensus alone: the
// baseline representing "over 80% of farmers ... rely on IKF" (§2).
type IKOnly struct {
	// BaseRate anchors the probability when no signs are reported.
	BaseRate float64
}

// Name implements Forecaster.
func (IKOnly) Name() string { return "ik-only" }

// Forecast implements Forecaster.
func (k IKOnly) Forecast(f Features) float64 {
	base := k.BaseRate
	if base <= 0 {
		base = 0.2
	}
	// Dry consensus pushes up, wet consensus pushes down, both in [0,1].
	logit := math.Log(base/(1-base)) + 3.2*f.IKDryConsensus - 2.0*f.IKWetConsensus
	return probClamp(logistic(logit))
}

// --- fusion (the paper's method) ---

// Fused combines the sensor-only statistical score, the IK consensus and
// the CEP engine's semantic inferences. The combination is a
// confidence-weighted logit blend: CEP inferences — which already encode
// corroborated multi-source patterns — act as an additional additive
// evidence term, scaled by their mean confidence.
//
// Weight semantics (shared by the ablation harness): zero means "use the
// default"; a negative weight disables the stream entirely.
type Fused struct {
	Sensor SensorStat
	IK     IKOnly
	// WSensor/WIK weight the two logit streams (defaults 1.0/0.6).
	WSensor, WIK float64
	// WCEP scales the inference evidence term (default 0.9).
	WCEP float64
}

// Name implements Forecaster.
func (Fused) Name() string { return "fused" }

// Forecast implements Forecaster.
func (fu Fused) Forecast(f Features) float64 {
	ws, wik, wcep := fu.WSensor, fu.WIK, fu.WCEP
	switch {
	case ws == 0:
		ws = 1.0
	case ws < 0:
		ws = 0
	}
	switch {
	case wik == 0:
		wik = 0.6
	case wik < 0:
		wik = 0
	}
	switch {
	case wcep == 0:
		wcep = 0.9
	case wcep < 0:
		wcep = 0
	}
	if ws == 0 && wik == 0 {
		// Degenerate configuration; fall back to an even blend.
		ws, wik = 1, 1
	}
	sensorLogit := fu.Sensor.score(f)
	pIK := fu.IK.Forecast(f)
	ikLogit := math.Log(pIK / (1 - pIK))
	cepTerm := wcep * math.Min(float64(f.CEPDrySignals), 3) * f.CEPConfidence
	logit := (ws*sensorLogit + wik*ikLogit) / (ws + wik)
	return probClamp(logistic(logit + cepTerm))
}

// Threshold converts a probability forecast into a yes/no event forecast.
// The conventional operating point maximizing CSI sits near the base
// rate; we default to 0.5 and let experiments sweep it.
type Threshold struct {
	Forecaster Forecaster
	// Cut is the yes/no decision threshold (default 0.5).
	Cut float64
}

// Decide returns the binary forecast.
func (t Threshold) Decide(f Features) bool {
	cut := t.Cut
	if cut == 0 {
		cut = 0.5
	}
	return t.Forecaster.Forecast(f) >= cut
}

// Validate checks the threshold configuration.
func (t Threshold) Validate() error {
	if t.Forecaster == nil {
		return fmt.Errorf("forecast: threshold without forecaster")
	}
	if t.Cut < 0 || t.Cut > 1 {
		return fmt.Errorf("forecast: cut %v outside [0,1]", t.Cut)
	}
	return nil
}
