package ontology

import (
	"fmt"

	"repro/internal/rdf"
)

// Reasoner materializes the entailments of an RDFS/OWL-subset rule set
// into the ontology graph by forward chaining to fixpoint. The rule set
// covers what the middleware needs to classify observed properties and
// drive inference:
//
//	rdfs5   subPropertyOf transitivity
//	rdfs7   property value inheritance via subPropertyOf
//	rdfs2   rdfs:domain typing
//	rdfs3   rdfs:range typing (IRI/blank objects only)
//	rdfs9   type inheritance via subClassOf
//	rdfs11  subClassOf transitivity
//	owl-inv owl:inverseOf value mirroring
//	owl-sym owl:SymmetricProperty mirroring
//	owl-trn owl:TransitiveProperty closure
//	owl-eqc owl:equivalentClass ⇒ mutual subClassOf
//	owl-dis owl:disjointWith symmetry
//	owl-sam owl:sameAs symmetry + transitivity (no full substitution)
//
// Reasoning is monotone: the closure is a superset of the input and a
// second run adds nothing (idempotence). Both properties are covered by
// property-based tests.
type Reasoner struct {
	// MaxRounds bounds the fixpoint loop as a safety valve; 0 means the
	// default (64). The rule set is monotone so the loop always
	// terminates, but a bound turns a potential logic bug into an error
	// instead of a hang.
	MaxRounds int
}

// Result reports what a Materialize run did.
type Result struct {
	// Added is the number of entailed triples inserted.
	Added int
	// Rounds is the number of fixpoint iterations executed.
	Rounds int
}

// Materialize computes the entailment closure of o's graph in place.
func (r Reasoner) Materialize(o *Ontology) (Result, error) {
	g := o.Graph()
	maxRounds := r.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	var res Result
	for round := 0; ; round++ {
		if round >= maxRounds {
			return res, fmt.Errorf("ontology: reasoner did not reach fixpoint in %d rounds", maxRounds)
		}
		added := r.round(g)
		res.Rounds++
		res.Added += added
		if added == 0 {
			return res, nil
		}
	}
}

// round applies every rule once and returns the number of new triples.
// All rules read from one immutable snapshot — candidate checks and the
// nested pattern scans are lock-free and cannot observe the writes the
// round itself buffers.
func (r Reasoner) round(g *rdf.Graph) int {
	snap := g.Snapshot()
	var pending []rdf.Triple
	add := func(t rdf.Triple) {
		if t.Validate() == nil && !snap.Has(t) {
			pending = append(pending, t)
		}
	}

	r.ruleSubClassTransitivity(snap, add)
	r.ruleEquivalentClass(snap, add)
	r.ruleSubPropertyTransitivity(snap, add)
	r.ruleTypeInheritance(snap, add)
	r.rulePropertyInheritance(snap, add)
	r.ruleDomain(snap, add)
	r.ruleRange(snap, add)
	r.ruleInverse(snap, add)
	r.ruleSymmetric(snap, add)
	r.ruleTransitiveProps(snap, add)
	r.ruleDisjointSymmetry(snap, add)
	r.ruleSameAs(snap, add)

	n := 0
	for _, t := range pending {
		if !g.Has(t) {
			g.MustAdd(t)
			n++
		}
	}
	return n
}

// rdfs11: (a subClassOf b), (b subClassOf c) ⇒ (a subClassOf c).
func (Reasoner) ruleSubClassTransitivity(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFSSubClassOf, nil, func(t1 rdf.Triple) bool {
		g.ForEachMatch(t1.O, rdf.RDFSSubClassOf, nil, func(t2 rdf.Triple) bool {
			if !rdf.Equal(t1.S, t2.O) {
				add(rdf.T(t1.S, rdf.RDFSSubClassOf, t2.O))
			}
			return true
		})
		return true
	})
}

// owl:equivalentClass ⇒ subClassOf both ways (and symmetry of the
// equivalence itself).
func (Reasoner) ruleEquivalentClass(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.OWLEquivalentClass, nil, func(t rdf.Triple) bool {
		add(rdf.T(t.S, rdf.RDFSSubClassOf, t.O))
		if o, ok := t.O.(rdf.IRI); ok {
			add(rdf.T(o, rdf.RDFSSubClassOf, t.S))
			add(rdf.T(o, rdf.OWLEquivalentClass, t.S))
		}
		return true
	})
}

// rdfs5: subPropertyOf transitivity.
func (Reasoner) ruleSubPropertyTransitivity(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFSSubPropertyOf, nil, func(t1 rdf.Triple) bool {
		g.ForEachMatch(t1.O, rdf.RDFSSubPropertyOf, nil, func(t2 rdf.Triple) bool {
			if !rdf.Equal(t1.S, t2.O) {
				add(rdf.T(t1.S, rdf.RDFSSubPropertyOf, t2.O))
			}
			return true
		})
		return true
	})
}

// rdfs9: (x type c), (c subClassOf d) ⇒ (x type d).
func (Reasoner) ruleTypeInheritance(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFType, nil, func(t1 rdf.Triple) bool {
		g.ForEachMatch(t1.O, rdf.RDFSSubClassOf, nil, func(t2 rdf.Triple) bool {
			add(rdf.T(t1.S, rdf.RDFType, t2.O))
			return true
		})
		return true
	})
}

// rdfs7: (x p y), (p subPropertyOf q) ⇒ (x q y).
func (Reasoner) rulePropertyInheritance(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFSSubPropertyOf, nil, func(sp rdf.Triple) bool {
		p, ok1 := sp.S.(rdf.IRI)
		q, ok2 := sp.O.(rdf.IRI)
		if !ok1 || !ok2 || p == q {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			add(rdf.T(t.S, q, t.O))
			return true
		})
		return true
	})
}

// rdfs2: (p domain c), (x p y) ⇒ (x type c).
func (Reasoner) ruleDomain(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFSDomain, nil, func(d rdf.Triple) bool {
		p, ok := d.S.(rdf.IRI)
		if !ok {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			add(rdf.T(t.S, rdf.RDFType, d.O))
			return true
		})
		return true
	})
}

// rdfs3: (p range c), (x p y) ⇒ (y type c) — only when y is not a literal.
func (Reasoner) ruleRange(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFSRange, nil, func(rg rdf.Triple) bool {
		p, ok := rg.S.(rdf.IRI)
		if !ok {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			if t.O.Kind() != rdf.KindLiteral {
				add(rdf.T(t.O, rdf.RDFType, rg.O))
			}
			return true
		})
		return true
	})
}

// owl:inverseOf: (p inverseOf q), (x p y) ⇒ (y q x), and vice versa.
func (Reasoner) ruleInverse(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.OWLInverseOf, nil, func(iv rdf.Triple) bool {
		p, ok1 := iv.S.(rdf.IRI)
		q, ok2 := iv.O.(rdf.IRI)
		if !ok1 || !ok2 {
			return true
		}
		mirror := func(from, to rdf.IRI) {
			g.ForEachMatch(nil, from, nil, func(t rdf.Triple) bool {
				if t.O.Kind() != rdf.KindLiteral {
					add(rdf.T(t.O, to, t.S))
				}
				return true
			})
		}
		mirror(p, q)
		mirror(q, p)
		return true
	})
}

// owl:SymmetricProperty: (p type Symmetric), (x p y) ⇒ (y p x).
func (Reasoner) ruleSymmetric(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFType, rdf.OWLSymmetricProperty, func(d rdf.Triple) bool {
		p, ok := d.S.(rdf.IRI)
		if !ok {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			if t.O.Kind() != rdf.KindLiteral {
				add(rdf.T(t.O, p, t.S))
			}
			return true
		})
		return true
	})
}

// owl:TransitiveProperty: (x p y), (y p z) ⇒ (x p z).
func (Reasoner) ruleTransitiveProps(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.RDFType, rdf.OWLTransitiveProperty, func(d rdf.Triple) bool {
		p, ok := d.S.(rdf.IRI)
		if !ok {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t1 rdf.Triple) bool {
			g.ForEachMatch(t1.O, p, nil, func(t2 rdf.Triple) bool {
				if !rdf.Equal(t1.S, t2.O) {
					add(rdf.T(t1.S, p, t2.O))
				}
				return true
			})
			return true
		})
		return true
	})
}

// owl:disjointWith symmetry.
func (Reasoner) ruleDisjointSymmetry(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.OWLDisjointWith, nil, func(t rdf.Triple) bool {
		if o, ok := t.O.(rdf.IRI); ok {
			add(rdf.T(o, rdf.OWLDisjointWith, t.S))
		}
		return true
	})
}

// owl:sameAs symmetry and transitivity. Full individual substitution is
// deliberately out of scope (documented in DESIGN.md); type propagation
// across sameAs is included since classification depends on it.
func (Reasoner) ruleSameAs(g *rdf.Snapshot, add func(rdf.Triple)) {
	g.ForEachMatch(nil, rdf.OWLSameAs, nil, func(t1 rdf.Triple) bool {
		if o, ok := t1.O.(rdf.IRI); ok {
			add(rdf.T(o, rdf.OWLSameAs, t1.S))
		}
		g.ForEachMatch(t1.O, rdf.OWLSameAs, nil, func(t2 rdf.Triple) bool {
			if !rdf.Equal(t1.S, t2.O) {
				add(rdf.T(t1.S, rdf.OWLSameAs, t2.O))
			}
			return true
		})
		// Propagate types across sameAs.
		g.ForEachMatch(t1.O, rdf.RDFType, nil, func(t2 rdf.Triple) bool {
			add(rdf.T(t1.S, rdf.RDFType, t2.O))
			return true
		})
		g.ForEachMatch(t1.S, rdf.RDFType, nil, func(t2 rdf.Triple) bool {
			if o, ok := t1.O.(rdf.IRI); ok {
				add(rdf.T(o, rdf.RDFType, t2.O))
			}
			return true
		})
		return true
	})
}
