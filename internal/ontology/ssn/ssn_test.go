package ssn

import (
	"testing"
	"time"

	"repro/internal/ontology"
	"repro/internal/ontology/dolce"
	"repro/internal/rdf"
)

func TestBuildAlignment(t *testing.T) {
	o := Build()
	if _, err := (ontology.Reasoner{}).Materialize(o); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ cls, super rdf.IRI }{
		{Sensor, dolce.PhysicalObject},
		{Platform, dolce.PhysicalObject},
		{Observation, dolce.Perdurant},
		{ObservedProperty, dolce.Quality},
		{Unit, dolce.Abstract},
	}
	for _, c := range cases {
		if !o.IsSubClassOf(c.cls, c.super) {
			t.Errorf("%s should align under %s", c.cls.LocalName(), c.super.LocalName())
		}
	}
}

func TestUnitsDeclared(t *testing.T) {
	o := Build()
	for _, u := range []rdf.IRI{UnitMillimetre, UnitCelsius, UnitPercent, UnitMetre, UnitIndex} {
		if !o.IsA(u, Unit) {
			t.Errorf("%s should be a Unit individual", u.LocalName())
		}
		if _, ok := o.Graph().FirstObject(u, NS.IRI("symbol")); !ok {
			t.Errorf("%s has no symbol", u.LocalName())
		}
	}
}

func sampleRecord() Record {
	return Record{
		ID:       rdf.NSOBS.IRI("obs-1"),
		Sensor:   NS.IRI("sensor-1"),
		Property: rdf.NSDEWS.IRI("Rainfall"),
		Feature:  rdf.NSGEO.IRI("Mangaung"),
		Value:    12.5,
		Unit:     UnitMillimetre,
		Time:     time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		Quality:  0.93,
	}
}

func TestRecordValidate(t *testing.T) {
	good := sampleRecord()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"missing id", func(r *Record) { r.ID = "" }},
		{"missing property", func(r *Record) { r.Property = "" }},
		{"missing time", func(r *Record) { r.Time = time.Time{} }},
		{"quality too high", func(r *Record) { r.Quality = 1.5 }},
		{"quality negative", func(r *Record) { r.Quality = -0.1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := sampleRecord()
			c.mutate(&r)
			if err := r.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestRecordGraphRoundTrip(t *testing.T) {
	r := sampleRecord()
	g := rdf.NewGraph()
	if err := r.ToGraph(g); err != nil {
		t.Fatal(err)
	}
	got, err := FromGraph(g, r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensor != r.Sensor || got.Property != r.Property || got.Feature != r.Feature ||
		got.Unit != r.Unit || got.Value != r.Value || got.Quality != r.Quality ||
		!got.Time.Equal(r.Time) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordOptionalFields(t *testing.T) {
	r := sampleRecord()
	r.Sensor = ""
	r.Feature = ""
	r.Unit = ""
	g := rdf.NewGraph()
	if err := r.ToGraph(g); err != nil {
		t.Fatal(err)
	}
	got, err := FromGraph(g, r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensor != "" || got.Feature != "" || got.Unit != "" {
		t.Errorf("optional fields should stay empty: %+v", got)
	}
}

func TestFromGraphErrors(t *testing.T) {
	g := rdf.NewGraph()
	if _, err := FromGraph(g, rdf.NSOBS.IRI("missing")); err == nil {
		t.Error("missing node should error")
	}
	// Observation without property.
	id := rdf.NSOBS.IRI("broken")
	g.MustAdd(rdf.T(id, rdf.RDFType, Observation))
	if _, err := FromGraph(g, id); err == nil {
		t.Error("observation without property should error")
	}
	// With property but no time.
	g.MustAdd(rdf.T(id, HasObservedProperty, rdf.NSDEWS.IRI("Rainfall")))
	if _, err := FromGraph(g, id); err == nil {
		t.Error("observation without time should error")
	}
}

func TestToGraphRejectsInvalid(t *testing.T) {
	r := sampleRecord()
	r.Quality = 7
	if err := r.ToGraph(rdf.NewGraph()); err == nil {
		t.Error("invalid record must not serialize")
	}
}
