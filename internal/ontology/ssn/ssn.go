// Package ssn builds the sensor/observation vocabulary of the unified
// ontology library — an SSN/SOSA-style module aligned under the DOLCE
// upper level (sensors are physical objects, observations are perdurants,
// observed properties are qualities, units are abstract regions).
//
// It also defines the typed Observation record the middleware passes
// around, together with its projection to and from RDF.
package ssn

import (
	"fmt"
	"time"

	"repro/internal/ontology"
	"repro/internal/ontology/dolce"
	"repro/internal/rdf"
)

// NS is the sensor-ontology namespace.
const NS = rdf.NSSSN

// Classes.
var (
	Sensor            = NS.IRI("Sensor")
	Platform          = NS.IRI("Platform")
	Deployment        = NS.IRI("Deployment")
	ObservedProperty  = NS.IRI("ObservedProperty")
	Observation       = NS.IRI("Observation")
	FeatureOfInterest = NS.IRI("FeatureOfInterest")
	Result            = NS.IRI("Result")
	Unit              = NS.IRI("Unit")
	Stimulus          = NS.IRI("Stimulus")
)

// Properties.
var (
	Observes             = NS.IRI("observes")             // sensor → observed property
	IsObservedBy         = NS.IRI("isObservedBy")         // inverse
	MadeBySensor         = NS.IRI("madeBySensor")         // observation → sensor
	MadeObservation      = NS.IRI("madeObservation")      // inverse
	HasObservedProperty  = NS.IRI("observedProperty")     // observation → property
	HasFeatureOfInterest = NS.IRI("hasFeatureOfInterest") // observation → feature
	IsFeatureOf          = NS.IRI("isFeatureOfInterestOf")
	HasResult            = NS.IRI("hasResult")            // observation → result node
	HasSimpleResult      = NS.IRI("hasSimpleResult")      // observation → literal
	ResultTime           = NS.IRI("resultTime")           // observation → xsd:dateTime
	PhenomenonTime       = NS.IRI("phenomenonTime")       // observation → xsd:dateTime
	HasUnit              = NS.IRI("hasUnit")              // result/observation → unit
	HostedBy             = NS.IRI("hostedBy")             // sensor → platform
	Hosts                = NS.IRI("hosts")                // inverse
	DeployedAt           = NS.IRI("deployedAt")           // platform → feature (site)
	HasValue             = NS.IRI("hasValue")             // result → literal
	QualityOfObservation = NS.IRI("qualityOfObservation") // observation → [0,1] confidence
)

// Standard units used by the drought domain.
var (
	UnitMillimetre       = NS.IRI("unitMillimetre")
	UnitCelsius          = NS.IRI("unitCelsius")
	UnitKelvin           = NS.IRI("unitKelvin")
	UnitFahrenheit       = NS.IRI("unitFahrenheit")
	UnitPercent          = NS.IRI("unitPercent")
	UnitFraction         = NS.IRI("unitFraction") // volumetric fraction 0..1
	UnitMetre            = NS.IRI("unitMetre")
	UnitCentimetre       = NS.IRI("unitCentimetre")
	UnitMetrePerSecond   = NS.IRI("unitMetrePerSecond")
	UnitKilometrePerHour = NS.IRI("unitKilometrePerHour")
	UnitHectopascal      = NS.IRI("unitHectopascal")
	UnitIndex            = NS.IRI("unitIndex") // dimensionless index (NDVI, SPI)
)

// IRIVersion identifies the ontology document.
var IRIVersion = rdf.IRI("http://dews.africrid.example/ontology/ssn")

// Build constructs the sensor ontology, importing the DOLCE fragment and
// aligning every class under it.
func Build() *ontology.Ontology {
	o := ontology.New(IRIVersion, "Sensor & observation ontology (SSN-style)")
	o.Import(dolce.Build())

	o.Class(Sensor).Sub(dolce.PhysicalObject).
		Label("sensor", "en").
		Comment("Device that implements an observation procedure for some property.")
	o.Class(Platform).Sub(dolce.PhysicalObject).
		Label("platform", "en").
		Comment("Entity hosting sensors: a Waspmote node, a weather station, a farmer.")
	o.Class(Deployment).Sub(dolce.Process).
		Label("deployment", "en")
	o.Class(ObservedProperty).Sub(dolce.PhysicalQuality).
		Label("observed property", "en").
		Comment("Observable quality of a feature: rainfall depth, soil moisture, water level.")
	o.Class(Observation).Sub(dolce.Accomplishment).
		Label("observation", "en").
		Comment("Act of estimating a property value via a sensor; a perdurant.")
	o.Class(FeatureOfInterest).Sub(dolce.Particular).
		Label("feature of interest", "en").
		Comment("The thing whose property is observed: a field, a catchment, an air mass.")
	o.Class(Result).Sub(dolce.AbstractRegion).
		Label("result", "en")
	o.Class(Unit).Sub(dolce.AbstractRegion).
		Label("unit of measure", "en")
	o.Class(Stimulus).Sub(dolce.Event).
		Label("stimulus", "en").
		Comment("Detectable change in the environment that triggers a sensor.")

	o.ObjectProperty(Observes).
		Domain(Sensor).Range(ObservedProperty).
		Label("observes", "en").
		InverseOf(IsObservedBy)
	o.ObjectProperty(IsObservedBy).
		Domain(ObservedProperty).Range(Sensor).
		Label("is observed by", "en")
	o.ObjectProperty(MadeBySensor).
		Domain(Observation).Range(Sensor).
		Label("made by sensor", "en").
		InverseOf(MadeObservation)
	o.ObjectProperty(MadeObservation).
		Domain(Sensor).Range(Observation).
		Label("made observation", "en")
	o.ObjectProperty(HasObservedProperty).
		Domain(Observation).Range(ObservedProperty).
		Label("observed property", "en")
	o.ObjectProperty(HasFeatureOfInterest).
		Domain(Observation).Range(FeatureOfInterest).
		Label("has feature of interest", "en").
		InverseOf(IsFeatureOf)
	o.ObjectProperty(IsFeatureOf).
		Domain(FeatureOfInterest).Range(Observation).
		Label("is feature of interest of", "en")
	o.ObjectProperty(HasResult).
		Domain(Observation).Range(Result).
		Label("has result", "en")
	o.DatatypeProperty(HasSimpleResult).
		Domain(Observation).
		Label("has simple result", "en").
		Comment("Literal shortcut for scalar results.")
	o.DatatypeProperty(ResultTime).
		Domain(Observation).Range(rdf.IRI(rdf.XSDDateTime)).
		Label("result time", "en")
	o.DatatypeProperty(PhenomenonTime).
		Domain(Observation).Range(rdf.IRI(rdf.XSDDateTime)).
		Label("phenomenon time", "en")
	o.ObjectProperty(HasUnit).
		Range(Unit).
		Label("has unit", "en")
	o.ObjectProperty(HostedBy).
		Domain(Sensor).Range(Platform).
		Label("hosted by", "en").
		InverseOf(Hosts)
	o.ObjectProperty(Hosts).
		Domain(Platform).Range(Sensor).
		Label("hosts", "en")
	o.ObjectProperty(DeployedAt).
		Domain(Platform).
		Label("deployed at", "en")
	o.DatatypeProperty(HasValue).
		Domain(Result).
		Label("has value", "en")
	o.DatatypeProperty(QualityOfObservation).
		Domain(Observation).
		Label("quality of observation", "en").
		Comment("Confidence in [0,1] attached by the mediator (calibration, staleness, source trust).")

	// Alignment: observations are perdurants that the feature participates in.
	o.ObjectProperty(HasFeatureOfInterest).Sub(dolce.HasParticipant)

	// Unit individuals with symbols.
	units := []struct {
		iri    rdf.IRI
		label  string
		symbol string
	}{
		{UnitMillimetre, "millimetre", "mm"},
		{UnitCelsius, "degree Celsius", "°C"},
		{UnitKelvin, "kelvin", "K"},
		{UnitFahrenheit, "degree Fahrenheit", "°F"},
		{UnitPercent, "percent", "%"},
		{UnitFraction, "volumetric fraction", "m3/m3"},
		{UnitMetre, "metre", "m"},
		{UnitCentimetre, "centimetre", "cm"},
		{UnitMetrePerSecond, "metre per second", "m/s"},
		{UnitKilometrePerHour, "kilometre per hour", "km/h"},
		{UnitHectopascal, "hectopascal", "hPa"},
		{UnitIndex, "dimensionless index", "1"},
	}
	for _, u := range units {
		o.Individual(u.iri, Unit)
		o.MustAssert(u.iri, rdf.RDFSLabel, rdf.NewLangLiteral(u.label, "en"))
		o.MustAssert(u.iri, NS.IRI("symbol"), rdf.NewLiteral(u.symbol))
	}
	o.DatatypeProperty(NS.IRI("symbol")).Domain(Unit).Label("unit symbol", "en")

	return o
}

// Record is the typed observation the middleware circulates once a raw
// reading has been semantically annotated. It is the Go-side projection
// of an ssn:Observation node.
type Record struct {
	// ID is the observation node IRI.
	ID rdf.IRI
	// Sensor identifies the observing sensor.
	Sensor rdf.IRI
	// Property is the unified observed-property IRI.
	Property rdf.IRI
	// Feature is the feature of interest (e.g. a district's soil).
	Feature rdf.IRI
	// Value is the scalar result after unit normalization.
	Value float64
	// Unit is the normalized unit IRI.
	Unit rdf.IRI
	// Time is the phenomenon time.
	Time time.Time
	// Quality is the mediator's confidence in [0,1].
	Quality float64
}

// Validate reports whether the record is complete enough to annotate.
func (r Record) Validate() error {
	switch {
	case r.ID == "":
		return fmt.Errorf("ssn: record missing ID")
	case r.Property == "":
		return fmt.Errorf("ssn: record %s missing property", r.ID)
	case r.Time.IsZero():
		return fmt.Errorf("ssn: record %s missing time", r.ID)
	case r.Quality < 0 || r.Quality > 1:
		return fmt.Errorf("ssn: record %s quality %v outside [0,1]", r.ID, r.Quality)
	}
	return nil
}

// Triples returns the record's SSN triples after validating it.
func (r Record) Triples() ([]rdf.Triple, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	ts := []rdf.Triple{
		rdf.T(r.ID, rdf.RDFType, Observation),
		rdf.T(r.ID, HasObservedProperty, r.Property),
		rdf.T(r.ID, HasSimpleResult, rdf.NewFloat(r.Value)),
		rdf.T(r.ID, PhenomenonTime, rdf.NewTypedLiteral(r.Time.UTC().Format(time.RFC3339), rdf.XSDDateTime)),
		rdf.T(r.ID, QualityOfObservation, rdf.NewFloat(r.Quality)),
	}
	if r.Sensor != "" {
		ts = append(ts, rdf.T(r.ID, MadeBySensor, r.Sensor))
	}
	if r.Feature != "" {
		ts = append(ts, rdf.T(r.ID, HasFeatureOfInterest, r.Feature))
	}
	if r.Unit != "" {
		ts = append(ts, rdf.T(r.ID, HasUnit, r.Unit))
	}
	return ts, nil
}

// ToGraph writes the record as SSN triples into g.
func (r Record) ToGraph(g *rdf.Graph) error {
	ts, err := r.Triples()
	if err != nil {
		return err
	}
	return g.AddAll(ts...)
}

// FromGraph reads an observation node back into a Record. Missing
// optional fields are left zero; a missing mandatory field is an error.
func FromGraph(g *rdf.Graph, id rdf.IRI) (Record, error) {
	r := Record{ID: id, Quality: 1}
	if !g.Has(rdf.T(id, rdf.RDFType, Observation)) {
		return r, fmt.Errorf("ssn: %s is not an ssn:Observation", id)
	}
	if o, ok := g.FirstObject(id, HasObservedProperty); ok {
		if iri, ok := o.(rdf.IRI); ok {
			r.Property = iri
		}
	}
	if r.Property == "" {
		return r, fmt.Errorf("ssn: %s has no observed property", id)
	}
	if o, ok := g.FirstObject(id, MadeBySensor); ok {
		if iri, ok := o.(rdf.IRI); ok {
			r.Sensor = iri
		}
	}
	if o, ok := g.FirstObject(id, HasFeatureOfInterest); ok {
		if iri, ok := o.(rdf.IRI); ok {
			r.Feature = iri
		}
	}
	if o, ok := g.FirstObject(id, HasUnit); ok {
		if iri, ok := o.(rdf.IRI); ok {
			r.Unit = iri
		}
	}
	if o, ok := g.FirstObject(id, HasSimpleResult); ok {
		if lit, ok := o.(rdf.Literal); ok {
			if f, ok := lit.Float(); ok {
				r.Value = f
			}
		}
	}
	if o, ok := g.FirstObject(id, QualityOfObservation); ok {
		if lit, ok := o.(rdf.Literal); ok {
			if f, ok := lit.Float(); ok {
				r.Quality = f
			}
		}
	}
	if o, ok := g.FirstObject(id, PhenomenonTime); ok {
		if lit, ok := o.(rdf.Literal); ok {
			if t, err := time.Parse(time.RFC3339, lit.Lexical); err == nil {
				r.Time = t
			}
		}
	}
	if r.Time.IsZero() {
		return r, fmt.Errorf("ssn: %s has no parseable phenomenon time", id)
	}
	return r, nil
}
