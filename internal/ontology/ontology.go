// Package ontology provides the schema layer of the middleware's unified
// ontology library (Figure 1 of the paper): typed builders for classes and
// properties over an RDF graph, a forward-chaining RDFS/OWL-subset
// entailment engine, and consistency checking.
//
// The concrete ontologies — the DOLCE upper level, the SSN-style sensor
// vocabulary and the drought domain — live in the sub-packages
// ontology/dolce, ontology/ssn and ontology/drought and are all built
// through this package's API.
package ontology

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Ontology wraps an RDF graph with schema-level accessors. The graph holds
// both terminology (classes, properties, axioms) and assertions
// (individuals); the reasoner materializes entailments into the same
// graph.
type Ontology struct {
	g    *rdf.Graph
	iri  rdf.IRI
	pm   *rdf.PrefixMap
	name string
}

// New returns an empty ontology identified by the given IRI.
func New(iri rdf.IRI, name string) *Ontology {
	o := &Ontology{
		g:    rdf.NewGraph(),
		iri:  iri,
		pm:   rdf.DefaultPrefixes(),
		name: name,
	}
	o.g.MustAdd(rdf.T(iri, rdf.RDFType, rdf.OWLOntology))
	if name != "" {
		o.g.MustAdd(rdf.T(iri, rdf.RDFSLabel, rdf.NewLangLiteral(name, "en")))
	}
	return o
}

// FromGraph wraps an existing graph as an ontology without adding any
// header triples.
func FromGraph(g *rdf.Graph, iri rdf.IRI) *Ontology {
	return &Ontology{g: g, iri: iri, pm: rdf.DefaultPrefixes()}
}

// Graph exposes the underlying RDF graph.
func (o *Ontology) Graph() *rdf.Graph { return o.g }

// IRI returns the ontology identifier.
func (o *Ontology) IRI() rdf.IRI { return o.iri }

// Name returns the human-readable ontology name.
func (o *Ontology) Name() string { return o.name }

// Prefixes returns the prefix map used when serializing.
func (o *Ontology) Prefixes() *rdf.PrefixMap { return o.pm }

// Import merges another ontology's triples and records owl:imports.
func (o *Ontology) Import(other *Ontology) {
	o.g.MustAdd(rdf.T(o.iri, rdf.OWLImports, other.iri))
	o.g.Merge(other.g)
}

// --- terminology builders ---

// ClassBuilder incrementally attaches axioms to a class.
type ClassBuilder struct {
	o   *Ontology
	cls rdf.IRI
}

// Class declares (or re-opens) a class and returns a builder for it.
func (o *Ontology) Class(cls rdf.IRI) *ClassBuilder {
	o.g.MustAdd(rdf.T(cls, rdf.RDFType, rdf.OWLClass))
	o.g.MustAdd(rdf.T(cls, rdf.RDFType, rdf.RDFSClass))
	return &ClassBuilder{o: o, cls: cls}
}

// IRI returns the class IRI.
func (b *ClassBuilder) IRI() rdf.IRI { return b.cls }

// Sub asserts rdfs:subClassOf.
func (b *ClassBuilder) Sub(super rdf.IRI) *ClassBuilder {
	b.o.g.MustAdd(rdf.T(b.cls, rdf.RDFSSubClassOf, super))
	return b
}

// Label adds an rdfs:label in the given language.
func (b *ClassBuilder) Label(text, lang string) *ClassBuilder {
	b.o.g.MustAdd(rdf.T(b.cls, rdf.RDFSLabel, rdf.NewLangLiteral(text, lang)))
	return b
}

// Comment adds an English rdfs:comment.
func (b *ClassBuilder) Comment(text string) *ClassBuilder {
	b.o.g.MustAdd(rdf.T(b.cls, rdf.RDFSComment, rdf.NewLangLiteral(text, "en")))
	return b
}

// DisjointWith asserts owl:disjointWith (symmetric; one direction stored,
// the reasoner handles symmetry).
func (b *ClassBuilder) DisjointWith(other rdf.IRI) *ClassBuilder {
	b.o.g.MustAdd(rdf.T(b.cls, rdf.OWLDisjointWith, other))
	return b
}

// EquivalentTo asserts owl:equivalentClass.
func (b *ClassBuilder) EquivalentTo(other rdf.IRI) *ClassBuilder {
	b.o.g.MustAdd(rdf.T(b.cls, rdf.OWLEquivalentClass, other))
	return b
}

// PropertyBuilder incrementally attaches axioms to a property.
type PropertyBuilder struct {
	o    *Ontology
	prop rdf.IRI
}

// ObjectProperty declares an object property.
func (o *Ontology) ObjectProperty(p rdf.IRI) *PropertyBuilder {
	o.g.MustAdd(rdf.T(p, rdf.RDFType, rdf.OWLObjectProperty))
	o.g.MustAdd(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
	return &PropertyBuilder{o: o, prop: p}
}

// DatatypeProperty declares a datatype property.
func (o *Ontology) DatatypeProperty(p rdf.IRI) *PropertyBuilder {
	o.g.MustAdd(rdf.T(p, rdf.RDFType, rdf.OWLDatatypeProperty))
	o.g.MustAdd(rdf.T(p, rdf.RDFType, rdf.RDFProperty))
	return &PropertyBuilder{o: o, prop: p}
}

// IRI returns the property IRI.
func (b *PropertyBuilder) IRI() rdf.IRI { return b.prop }

// Sub asserts rdfs:subPropertyOf.
func (b *PropertyBuilder) Sub(super rdf.IRI) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFSSubPropertyOf, super))
	return b
}

// Domain asserts rdfs:domain.
func (b *PropertyBuilder) Domain(cls rdf.IRI) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFSDomain, cls))
	return b
}

// Range asserts rdfs:range.
func (b *PropertyBuilder) Range(cls rdf.IRI) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFSRange, cls))
	return b
}

// Label adds an rdfs:label in the given language.
func (b *PropertyBuilder) Label(text, lang string) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFSLabel, rdf.NewLangLiteral(text, lang)))
	return b
}

// Comment adds an English rdfs:comment.
func (b *PropertyBuilder) Comment(text string) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFSComment, rdf.NewLangLiteral(text, "en")))
	return b
}

// Transitive marks the property owl:TransitiveProperty.
func (b *PropertyBuilder) Transitive() *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFType, rdf.OWLTransitiveProperty))
	return b
}

// Symmetric marks the property owl:SymmetricProperty.
func (b *PropertyBuilder) Symmetric() *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFType, rdf.OWLSymmetricProperty))
	return b
}

// Functional marks the property owl:FunctionalProperty.
func (b *PropertyBuilder) Functional() *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.RDFType, rdf.OWLFunctionalProperty))
	return b
}

// InverseOf asserts owl:inverseOf.
func (b *PropertyBuilder) InverseOf(other rdf.IRI) *PropertyBuilder {
	b.o.g.MustAdd(rdf.T(b.prop, rdf.OWLInverseOf, other))
	return b
}

// --- assertion helpers ---

// Individual asserts rdf:type for an individual.
func (o *Ontology) Individual(ind rdf.IRI, cls rdf.IRI) {
	o.g.MustAdd(rdf.T(ind, rdf.RDFType, cls))
}

// Assert adds an arbitrary statement.
func (o *Ontology) Assert(s, p, obj rdf.Term) error {
	return o.g.Add(rdf.T(s, p, obj))
}

// MustAssert adds a statement, panicking on malformed input.
func (o *Ontology) MustAssert(s, p, obj rdf.Term) {
	o.g.MustAdd(rdf.T(s, p, obj))
}

// --- schema queries ---

// Classes returns every declared class IRI in deterministic order.
func (o *Ontology) Classes() []rdf.IRI {
	return o.typedIRIs(rdf.OWLClass, rdf.RDFSClass)
}

// Properties returns every declared property IRI in deterministic order.
func (o *Ontology) Properties() []rdf.IRI {
	return o.typedIRIs(rdf.OWLObjectProperty, rdf.OWLDatatypeProperty, rdf.RDFProperty)
}

func (o *Ontology) typedIRIs(types ...rdf.IRI) []rdf.IRI {
	seen := make(map[rdf.IRI]bool)
	for _, ty := range types {
		for _, s := range o.g.Subjects(rdf.RDFType, ty) {
			if iri, ok := s.(rdf.IRI); ok {
				seen[iri] = true
			}
		}
	}
	out := make([]rdf.IRI, 0, len(seen))
	for iri := range seen {
		out = append(out, iri)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsClass reports whether the IRI is declared as a class.
func (o *Ontology) IsClass(c rdf.IRI) bool {
	return o.g.Has(rdf.T(c, rdf.RDFType, rdf.OWLClass)) ||
		o.g.Has(rdf.T(c, rdf.RDFType, rdf.RDFSClass))
}

// SuperClasses returns the transitive closure of rdfs:subClassOf for cls
// (not including cls itself), computed on demand — it does not require a
// materialized closure.
func (o *Ontology) SuperClasses(cls rdf.IRI) []rdf.IRI {
	return o.closure(cls, rdf.RDFSSubClassOf, false)
}

// SubClasses returns the transitive closure of subclasses of cls.
func (o *Ontology) SubClasses(cls rdf.IRI) []rdf.IRI {
	return o.closure(cls, rdf.RDFSSubClassOf, true)
}

// SuperProperties returns the transitive closure of rdfs:subPropertyOf.
func (o *Ontology) SuperProperties(p rdf.IRI) []rdf.IRI {
	return o.closure(p, rdf.RDFSSubPropertyOf, false)
}

// closure walks subClassOf/subPropertyOf edges; inverse=true walks from
// object to subject (i.e. descendants).
func (o *Ontology) closure(start rdf.IRI, edge rdf.IRI, inverse bool) []rdf.IRI {
	visited := map[rdf.IRI]bool{start: true}
	frontier := []rdf.IRI{start}
	var out []rdf.IRI
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		var nexts []rdf.Term
		if inverse {
			nexts = o.g.Subjects(edge, cur)
		} else {
			nexts = o.g.Objects(cur, edge)
		}
		for _, nt := range nexts {
			n, ok := nt.(rdf.IRI)
			if !ok || visited[n] {
				continue
			}
			visited[n] = true
			out = append(out, n)
			frontier = append(frontier, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSubClassOf reports whether sub is (transitively) a subclass of super.
// A class is a subclass of itself.
func (o *Ontology) IsSubClassOf(sub, super rdf.IRI) bool {
	if sub == super {
		return true
	}
	for _, c := range o.SuperClasses(sub) {
		if c == super {
			return true
		}
	}
	return false
}

// TypesOf returns the asserted types of an individual (direct types only;
// run the reasoner to materialize inherited types first if needed).
func (o *Ontology) TypesOf(ind rdf.Term) []rdf.IRI {
	var out []rdf.IRI
	for _, t := range o.g.Objects(ind, rdf.RDFType) {
		if iri, ok := t.(rdf.IRI); ok {
			out = append(out, iri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsA reports whether individual ind is an instance of cls, considering
// the subclass hierarchy (but not un-materialized domain/range
// entailments).
func (o *Ontology) IsA(ind rdf.Term, cls rdf.IRI) bool {
	for _, t := range o.TypesOf(ind) {
		if t == cls || o.IsSubClassOf(t, cls) {
			return true
		}
	}
	return false
}

// InstancesOf returns all individuals whose (possibly inherited) type is
// cls.
func (o *Ontology) InstancesOf(cls rdf.IRI) []rdf.Term {
	seen := make(map[string]rdf.Term)
	classes := append([]rdf.IRI{cls}, o.SubClasses(cls)...)
	for _, c := range classes {
		for _, s := range o.g.Subjects(rdf.RDFType, c) {
			seen[s.Key()] = s
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]rdf.Term, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

// Label returns the preferred label of a term in the given language,
// falling back to any label, then to the IRI local name.
func (o *Ontology) Label(term rdf.Term, lang string) string {
	var anyLabel string
	var match string
	o.g.ForEachMatch(term, rdf.RDFSLabel, nil, func(t rdf.Triple) bool {
		l, ok := t.O.(rdf.Literal)
		if !ok {
			return true
		}
		if anyLabel == "" {
			anyLabel = l.Lexical
		}
		if l.Lang == lang {
			match = l.Lexical
			return false
		}
		return true
	})
	if match != "" {
		return match
	}
	if anyLabel != "" {
		return anyLabel
	}
	if iri, ok := term.(rdf.IRI); ok {
		return iri.LocalName()
	}
	return term.String()
}

// Stats summarizes the ontology for reporting (EXP-F1).
type Stats struct {
	Classes     int
	Properties  int
	Individuals int
	Triples     int
	SubClassAx  int
	DomainAx    int
	RangeAx     int
}

// Stats computes summary statistics over the current graph.
func (o *Ontology) Stats() Stats {
	classes := o.Classes()
	classSet := make(map[rdf.IRI]bool, len(classes))
	for _, c := range classes {
		classSet[c] = true
	}
	props := o.Properties()
	propSet := make(map[rdf.IRI]bool, len(props))
	for _, p := range props {
		propSet[p] = true
	}
	individuals := make(map[string]bool)
	o.g.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		if iri, ok := t.S.(rdf.IRI); ok && (classSet[iri] || propSet[iri]) {
			return true
		}
		if obj, ok := t.O.(rdf.IRI); ok && classSet[obj] {
			individuals[t.S.Key()] = true
		}
		return true
	})
	return Stats{
		Classes:     len(classes),
		Properties:  len(props),
		Individuals: len(individuals),
		Triples:     o.g.Len(),
		SubClassAx:  o.g.Count(nil, rdf.RDFSSubClassOf, nil),
		DomainAx:    o.g.Count(nil, rdf.RDFSDomain, nil),
		RangeAx:     o.g.Count(nil, rdf.RDFSRange, nil),
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("classes=%d properties=%d individuals=%d triples=%d subClassOf=%d domain=%d range=%d",
		s.Classes, s.Properties, s.Individuals, s.Triples, s.SubClassAx, s.DomainAx, s.RangeAx)
}
