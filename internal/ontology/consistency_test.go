package ontology

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestCheckDisjointViolation(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.Class(testNS.IRI("Animal")).DisjointWith(testNS.IRI("Plant"))
	o.Class(testNS.IRI("Plant"))
	o.Individual(testNS.IRI("weird"), testNS.IRI("Animal"))
	o.Individual(testNS.IRI("weird"), testNS.IRI("Plant"))
	materialize(t, o)
	vs := o.CheckConsistency()
	if !hasViolation(vs, ViolationDisjoint) {
		t.Errorf("expected disjoint violation, got %v", vs)
	}
}

func TestCheckFunctionalViolation(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.DatatypeProperty(testNS.IRI("officialName")).Functional()
	o.MustAssert(testNS.IRI("x"), testNS.IRI("officialName"), rdf.NewLiteral("a"))
	o.MustAssert(testNS.IRI("x"), testNS.IRI("officialName"), rdf.NewLiteral("b"))
	vs := o.CheckConsistency()
	if !hasViolation(vs, ViolationFunctional) {
		t.Errorf("expected functional violation, got %v", vs)
	}
}

func TestCheckLiteralInObjectProperty(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.ObjectProperty(testNS.IRI("locatedIn"))
	o.MustAssert(testNS.IRI("x"), testNS.IRI("locatedIn"), rdf.NewLiteral("Free State"))
	vs := o.CheckConsistency()
	if !hasViolation(vs, ViolationLiteralRange) {
		t.Errorf("expected literal-range violation, got %v", vs)
	}
}

func TestCheckUndeclaredClass(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.MustAssert(testNS.IRI("x"), rdf.RDFType, testNS.IRI("Ghost"))
	vs := o.CheckConsistency()
	if !hasViolation(vs, ViolationUndeclaredClass) {
		t.Errorf("expected undeclared-class violation, got %v", vs)
	}
}

func TestCleanOntologyHasNoViolations(t *testing.T) {
	o := buildTestOntology()
	materialize(t, o)
	if vs := o.CheckConsistency(); len(vs) != 0 {
		t.Errorf("clean ontology reported: %v", vs)
	}
}

func TestViolationStringAndKinds(t *testing.T) {
	v := Violation{Kind: ViolationDisjoint, Subject: testNS.IRI("x"), Detail: "boom"}
	if s := v.String(); !strings.Contains(s, "disjoint-classes") || !strings.Contains(s, "boom") {
		t.Errorf("String = %q", s)
	}
	for _, k := range []ViolationKind{ViolationDisjoint, ViolationFunctional, ViolationLiteralRange, ViolationUndeclaredClass} {
		if strings.HasPrefix(k.String(), "ViolationKind(") {
			t.Errorf("kind %d lacks a name", k)
		}
	}
	if !strings.HasPrefix(ViolationKind(42).String(), "ViolationKind(") {
		t.Error("unknown kind should render numerically")
	}
}

func TestConsistencyDeterministicOrder(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	for _, name := range []string{"G1", "G2", "G3"} {
		o.MustAssert(testNS.IRI("i-"+name), rdf.RDFType, testNS.IRI(name))
	}
	first := o.CheckConsistency()
	for trial := 0; trial < 3; trial++ {
		again := o.CheckConsistency()
		if len(again) != len(first) {
			t.Fatal("violation count unstable")
		}
		for i := range first {
			if first[i].String() != again[i].String() {
				t.Fatal("violation order unstable")
			}
		}
	}
}

func hasViolation(vs []Violation, kind ViolationKind) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}
