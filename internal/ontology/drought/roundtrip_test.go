package drought

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

// TestReasonerDeterministicAcrossSerialization: building the library,
// serializing it to Turtle, reparsing and re-reasoning must produce
// exactly the same entailment closure as reasoning over the in-memory
// build — the property a deployment relies on when it ships the ontology
// as a document.
func TestReasonerDeterministicAcrossSerialization(t *testing.T) {
	direct, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize the *asserted* (pre-reasoning) library and rebuild.
	asserted := Build()
	text := rdf.TurtleString(asserted.Graph(), asserted.Prefixes())
	reparsed, err := rdf.ParseTurtleString(text)
	if err != nil {
		t.Fatal(err)
	}
	viaDocument := ontology.FromGraph(reparsed, IRIVersion)
	if _, err := (ontology.Reasoner{}).Materialize(viaDocument); err != nil {
		t.Fatal(err)
	}

	if direct.Graph().Len() != viaDocument.Graph().Len() {
		t.Fatalf("closure sizes differ: direct %d vs via-document %d",
			direct.Graph().Len(), viaDocument.Graph().Len())
	}
	if !rdf.EqualGraphs(direct.Graph(), viaDocument.Graph()) {
		t.Fatal("closures differ triple-wise after serialization round trip")
	}
}

// TestClosureIdempotentUnderReserialization: reasoning an already-closed
// graph that went through Turtle adds nothing.
func TestClosureIdempotentUnderReserialization(t *testing.T) {
	direct, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	text := rdf.TurtleString(direct.Graph(), direct.Prefixes())
	reparsed, err := rdf.ParseTurtleString(text)
	if err != nil {
		t.Fatal(err)
	}
	o := ontology.FromGraph(reparsed, IRIVersion)
	res, err := ontology.Reasoner{}.Materialize(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 {
		t.Errorf("closed graph gained %d triples after round trip", res.Added)
	}
}
