// Package drought builds the drought domain ontology — the "unified
// ontology" the middleware annotates against. It covers:
//
//   - the observed environmental properties (rainfall, soil moisture,
//     temperature, humidity, wind, water level, NDVI) with the
//     multilingual labels from the paper's naming-heterogeneity example
//     ("Hoehe" in German, "Stav" in Czech for water level);
//   - the process/event chain (rainfall deficit → soil-moisture decline →
//     vegetation stress → drought event) modelled under DOLCE perdurants,
//     because "the representation of such phenomena requires better
//     understanding of the 'process' that leads to the 'event'";
//   - drought event types (meteorological, agricultural, hydrological,
//     socioeconomic) and the drought-vulnerability-index severity scale;
//   - the indigenous-knowledge indicator taxonomy (sifennefene worms,
//     mutiga tree phenology, bird behaviour, wind and celestial patterns);
//   - Free State geography (the paper's case-study domain): the province
//     and its five district municipalities as features of interest.
package drought

import (
	"repro/internal/ontology"
	"repro/internal/ontology/dolce"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
)

// NS is the drought-domain namespace; NSIK the indigenous-knowledge one;
// NSGEO the geography one.
const (
	NS    = rdf.NSDEWS
	NSIK  = rdf.NSIK
	NSGEO = rdf.NSGEO
)

// Environmental event and process classes.
var (
	EnvironmentalEvent   = NS.IRI("EnvironmentalEvent")
	EnvironmentalProcess = NS.IRI("EnvironmentalProcess")
	EnvironmentalState   = NS.IRI("EnvironmentalState")

	DroughtEvent          = NS.IRI("DroughtEvent")
	MeteorologicalDrought = NS.IRI("MeteorologicalDrought")
	AgriculturalDrought   = NS.IRI("AgriculturalDrought")
	HydrologicalDrought   = NS.IRI("HydrologicalDrought")
	SocioeconomicDrought  = NS.IRI("SocioeconomicDrought")

	RainfallDeficit     = NS.IRI("RainfallDeficit")
	SoilMoistureDecline = NS.IRI("SoilMoistureDecline")
	HeatWave            = NS.IRI("HeatWave")
	VegetationStress    = NS.IRI("VegetationStress")
	WaterLevelDecline   = NS.IRI("WaterLevelDecline")
	DrySpell            = NS.IRI("DrySpell")
	WetSpell            = NS.IRI("WetSpell")
)

// Observed properties of the unified vocabulary.
var (
	Rainfall           = NS.IRI("Rainfall")
	SoilMoisture       = NS.IRI("SoilMoisture")
	AirTemperature     = NS.IRI("AirTemperature")
	RelativeHumidity   = NS.IRI("RelativeHumidity")
	WindSpeed          = NS.IRI("WindSpeed")
	WaterLevel         = NS.IRI("WaterLevel")
	BarometricPressure = NS.IRI("BarometricPressure")
	NDVI               = NS.IRI("NDVI")
	SPI                = NS.IRI("SPI")
)

// Severity scale of the drought vulnerability index (DVI).
var (
	SeverityScale   = NS.IRI("DVISeverity")
	SeverityNormal  = NS.IRI("dviNormal")
	SeverityWatch   = NS.IRI("dviWatch")
	SeverityWarning = NS.IRI("dviWarning")
	SeveritySevere  = NS.IRI("dviSevere")
	SeverityExtreme = NS.IRI("dviExtreme")
)

// Domain relations.
var (
	LeadsTo       = NS.IRI("leadsTo")       // process → process/event (transitive)
	Indicates     = NS.IRI("indicates")     // indicator/process → event class
	AffectsRegion = NS.IRI("affectsRegion") // event → geographic feature
	HasSeverity   = NS.IRI("hasSeverity")   // event → DVI severity
	DerivedFrom   = NS.IRI("derivedFrom")   // inference → supporting observation
	// AltLabel carries well-known vocabulary aliases (instrument names,
	// vendor field names, diacritic-free spellings) used by the mediator's
	// alignment corpus — a lightweight skos:altLabel stand-in.
	AltLabel = NS.IRI("altLabel")
)

// Indigenous-knowledge indicator taxonomy.
var (
	IKIndicator         = NSIK.IRI("Indicator")
	EntomologicalSign   = NSIK.IRI("EntomologicalSign")
	BotanicalSign       = NSIK.IRI("BotanicalSign")
	OrnithologicalSign  = NSIK.IRI("OrnithologicalSign")
	AtmosphericSign     = NSIK.IRI("AtmosphericSign")
	CelestialSign       = NSIK.IRI("CelestialSign")
	AnimalBehaviourSign = NSIK.IRI("AnimalBehaviourSign")

	SifennefeneWormAbundance = NSIK.IRI("SifennefeneWormAbundance")
	MutigaTreeFlowering      = NSIK.IRI("MutigaTreeFlowering")
	AcaciaEarlyBloom         = NSIK.IRI("AcaciaEarlyBloom")
	AloeProfuseFlowering     = NSIK.IRI("AloeProfuseFlowering")
	StorkEarlyDeparture      = NSIK.IRI("StorkEarlyDeparture")
	SwallowLowFlight         = NSIK.IRI("SwallowLowFlight")
	EastWindPersistence      = NSIK.IRI("EastWindPersistence")
	HazeHorizon              = NSIK.IRI("HazeHorizon")
	MoonHalo                 = NSIK.IRI("MoonHalo")
	StarClusterDimness       = NSIK.IRI("StarClusterDimness")
	CattleRestlessness       = NSIK.IRI("CattleRestlessness")
	AntHillActivity          = NSIK.IRI("AntHillActivity")

	ReportedBy   = NSIK.IRI("reportedBy")   // indicator report → informant
	Informant    = NSIK.IRI("Informant")    // social endurant
	Reliability  = NSIK.IRI("reliability")  // informant → [0,1]
	ObservedSign = NSIK.IRI("observedSign") // report → indicator class
)

// Free State geography (paper §4: "The domain of this particular case
// study is Free State Province, South Africa").
var (
	Province          = NSGEO.IRI("Province")
	DistrictClass     = NSGEO.IRI("District")
	StationClass      = NSGEO.IRI("Station")
	FreeState         = NSGEO.IRI("FreeState")
	Mangaung          = NSGEO.IRI("Mangaung")
	Xhariep           = NSGEO.IRI("Xhariep")
	Lejweleputswa     = NSGEO.IRI("Lejweleputswa")
	ThaboMofutsanyana = NSGEO.IRI("ThaboMofutsanyana")
	FezileDabi        = NSGEO.IRI("FezileDabi")
	LocatedIn         = NSGEO.IRI("locatedIn")
	Latitude          = NSGEO.IRI("latitude")
	Longitude         = NSGEO.IRI("longitude")
)

// Districts lists the Free State district municipalities in a stable
// order; simulations and examples index into it.
var Districts = []rdf.IRI{Mangaung, Xhariep, Lejweleputswa, ThaboMofutsanyana, FezileDabi}

// IRIVersion identifies the ontology document.
var IRIVersion = rdf.IRI("http://dews.africrid.example/ontology/drought")

// Build constructs the drought domain ontology. It imports the sensor
// ontology (which itself imports DOLCE) so the result is the complete
// unified ontology library of Figure 1.
func Build() *ontology.Ontology {
	o := ontology.New(IRIVersion, "Drought domain ontology (unified)")
	o.Import(ssn.Build())

	// --- events, processes, states ---
	o.Class(EnvironmentalEvent).Sub(dolce.Event).
		Label("environmental event", "en").
		Comment("An event in the environment: a drought, a flood, a heat wave culmination.")
	o.Class(EnvironmentalProcess).Sub(dolce.Process).
		Label("environmental process", "en").
		Comment("A cumulative process whose progression can lead to an event.")
	o.Class(EnvironmentalState).Sub(dolce.State).
		Label("environmental state", "en")

	o.Class(DroughtEvent).Sub(EnvironmentalEvent).
		Label("drought", "en").
		Label("komelelo", "st").
		Label("droogte", "af").
		Comment("Prolonged precipitation/soil-water deficit event with agricultural impact.")
	o.Class(MeteorologicalDrought).Sub(DroughtEvent).
		Label("meteorological drought", "en").
		Comment("Precipitation deficit relative to climatology (SPI-based).")
	o.Class(AgriculturalDrought).Sub(DroughtEvent).
		Label("agricultural drought", "en").
		Comment("Soil-moisture deficit during the growing season.")
	o.Class(HydrologicalDrought).Sub(DroughtEvent).
		Label("hydrological drought", "en").
		Comment("Surface/ground water storage deficit (water levels).")
	o.Class(SocioeconomicDrought).Sub(DroughtEvent).
		Label("socioeconomic drought", "en")

	for _, p := range []struct {
		iri     rdf.IRI
		label   string
		comment string
	}{
		{RainfallDeficit, "rainfall deficit", "Accumulating shortfall of rainfall against seasonal climatology."},
		{SoilMoistureDecline, "soil moisture decline", "Sustained decrease of volumetric soil moisture."},
		{HeatWave, "heat wave", "Run of days with temperature far above climatology."},
		{VegetationStress, "vegetation stress", "NDVI decline indicating water-stressed vegetation."},
		{WaterLevelDecline, "water level decline", "Falling river/dam levels."},
		{DrySpell, "dry spell", "Consecutive days without measurable rain."},
		{WetSpell, "wet spell", "Consecutive rain days."},
	} {
		o.Class(p.iri).Sub(EnvironmentalProcess).Label(p.label, "en").Comment(p.comment)
	}

	// The causal chain the CEP engine reasons over.
	o.ObjectProperty(LeadsTo).
		Domain(dolce.Perdurant).Range(dolce.Perdurant).
		Transitive().
		Label("leads to", "en").
		Comment("Process-to-event progression; transitive so chains compose.")
	o.MustAssert(RainfallDeficit, LeadsTo, SoilMoistureDecline)
	o.MustAssert(SoilMoistureDecline, LeadsTo, VegetationStress)
	o.MustAssert(VegetationStress, LeadsTo, AgriculturalDrought)
	o.MustAssert(RainfallDeficit, LeadsTo, MeteorologicalDrought)
	o.MustAssert(WaterLevelDecline, LeadsTo, HydrologicalDrought)
	o.MustAssert(HeatWave, LeadsTo, SoilMoistureDecline)

	// --- observed properties with heterogeneous labels ---
	type propDef struct {
		iri    rdf.IRI
		unit   rdf.IRI
		labels map[string]string // lang → label
	}
	props := []propDef{
		{Rainfall, ssn.UnitMillimetre, map[string]string{
			"en": "rainfall", "af": "reënval", "st": "pula", "zu": "imvula",
			"de": "Niederschlag", "fr": "précipitations",
		}},
		{SoilMoisture, ssn.UnitFraction, map[string]string{
			"en": "soil moisture", "af": "grondvog", "st": "mongobo wa mobu",
			"de": "Bodenfeuchte", "cs": "vlhkost půdy",
		}},
		{AirTemperature, ssn.UnitCelsius, map[string]string{
			"en": "air temperature", "af": "lugtemperatuur", "st": "mocheso",
			"de": "Lufttemperatur", "fr": "température",
		}},
		{RelativeHumidity, ssn.UnitPercent, map[string]string{
			"en": "relative humidity", "af": "humiditeit", "de": "Luftfeuchtigkeit",
		}},
		{WindSpeed, ssn.UnitMetrePerSecond, map[string]string{
			"en": "wind speed", "af": "windspoed", "st": "lebelo la moya",
			"de": "Windgeschwindigkeit",
		}},
		// The paper's own example: "water level property name is 'Hoehe'
		// (in German) or 'Stav' (in Czech)".
		{WaterLevel, ssn.UnitMetre, map[string]string{
			"en": "water level", "de": "Hoehe", "cs": "Stav", "af": "watervlak",
		}},
		{BarometricPressure, ssn.UnitHectopascal, map[string]string{
			"en": "barometric pressure", "de": "Luftdruck",
		}},
		{NDVI, ssn.UnitIndex, map[string]string{
			"en": "normalized difference vegetation index",
		}},
		{SPI, ssn.UnitIndex, map[string]string{
			"en": "standardized precipitation index",
		}},
	}
	for _, p := range props {
		cb := o.Class(p.iri).Sub(ssn.ObservedProperty)
		for lang, label := range p.labels {
			cb.Label(label, lang)
		}
		o.MustAssert(p.iri, ssn.HasUnit, p.unit)
	}

	// Alias corpus for the mediator: instrument names, vendor field
	// names, diacritic-free spellings.
	o.DatatypeProperty(AltLabel).
		Label("alternative label", "en").
		Comment("Well-known alias used for vocabulary alignment (skos:altLabel stand-in).")
	aliases := map[rdf.IRI][]string{
		Rainfall:           {"pluviometer", "rain gauge", "precipitation", "rain rate", "srazky", "srážky", "rain"},
		SoilMoisture:       {"soil water content", "soil humidity", "bodemvocht"},
		AirTemperature:     {"outside temperature", "air temp", "teplota", "temperatuur"},
		RelativeHumidity:   {"outside humidity", "air humidity", "vlhkost vzduchu", "rh"},
		WindSpeed:          {"anemometer", "wind", "rychlost vetru"},
		WaterLevel:         {"stage", "gauge height", "vodostav", "waterstand"},
		NDVI:               {"vegetation index", "plantegroei", "greenness"},
		BarometricPressure: {"pressure", "tlak"},
	}
	for prop, names := range aliases {
		for _, n := range names {
			o.MustAssert(prop, AltLabel, rdf.NewLiteral(n))
		}
	}

	// --- DVI severity scale ---
	o.Class(SeverityScale).Sub(dolce.AbstractRegion).
		Label("DVI severity", "en").
		Comment("Ordered severity bands of the drought vulnerability index.")
	sev := []struct {
		iri   rdf.IRI
		label string
		rank  int64
	}{
		{SeverityNormal, "normal", 0},
		{SeverityWatch, "watch", 1},
		{SeverityWarning, "warning", 2},
		{SeveritySevere, "severe", 3},
		{SeverityExtreme, "extreme", 4},
	}
	for _, s := range sev {
		o.Individual(s.iri, SeverityScale)
		o.MustAssert(s.iri, rdf.RDFSLabel, rdf.NewLangLiteral(s.label, "en"))
		o.MustAssert(s.iri, NS.IRI("rank"), rdf.NewInt(s.rank))
	}
	o.DatatypeProperty(NS.IRI("rank")).Domain(SeverityScale)

	o.ObjectProperty(Indicates).
		Range(EnvironmentalEvent).
		Label("indicates", "en").
		Comment("A sign (process or IK indicator) points at a class of event.")
	o.ObjectProperty(AffectsRegion).
		Domain(EnvironmentalEvent).
		Label("affects region", "en")
	o.ObjectProperty(HasSeverity).
		Domain(EnvironmentalEvent).Range(SeverityScale).
		Label("has severity", "en")
	o.ObjectProperty(DerivedFrom).
		Label("derived from", "en").
		Comment("Provenance: an inferred event node links to the observations behind it.")

	// --- IK indicator taxonomy ---
	o.Class(IKIndicator).Sub(dolce.Event).
		Label("indigenous-knowledge indicator", "en").
		Comment("Observable sign in the local environment carrying forecast information.")
	ikBranches := []struct {
		iri   rdf.IRI
		label string
	}{
		{EntomologicalSign, "entomological sign"},
		{BotanicalSign, "botanical sign"},
		{OrnithologicalSign, "ornithological sign"},
		{AtmosphericSign, "atmospheric sign"},
		{CelestialSign, "celestial sign"},
		{AnimalBehaviourSign, "animal behaviour sign"},
	}
	for _, b := range ikBranches {
		o.Class(b.iri).Sub(IKIndicator).Label(b.label, "en")
	}
	ikSigns := []struct {
		iri       rdf.IRI
		parent    rdf.IRI
		label     string
		indicates rdf.IRI
	}{
		{SifennefeneWormAbundance, EntomologicalSign, "sifennefene worm abundance", DroughtEvent},
		{MutigaTreeFlowering, BotanicalSign, "mutiga tree flowering", DroughtEvent},
		{AcaciaEarlyBloom, BotanicalSign, "acacia early bloom", DroughtEvent},
		{AloeProfuseFlowering, BotanicalSign, "aloe profuse flowering", DroughtEvent},
		{StorkEarlyDeparture, OrnithologicalSign, "stork early departure", DroughtEvent},
		{SwallowLowFlight, OrnithologicalSign, "swallow low flight", WetSpell},
		{EastWindPersistence, AtmosphericSign, "persistent east wind", DroughtEvent},
		{HazeHorizon, AtmosphericSign, "haze on the horizon", DroughtEvent},
		{MoonHalo, CelestialSign, "halo around the moon", WetSpell},
		{StarClusterDimness, CelestialSign, "dim star cluster (Selemela)", DroughtEvent},
		{CattleRestlessness, AnimalBehaviourSign, "cattle restlessness", HeatWave},
		{AntHillActivity, EntomologicalSign, "raised ant-hill activity", WetSpell},
	}
	for _, s := range ikSigns {
		o.Class(s.iri).Sub(s.parent).Label(s.label, "en")
		o.MustAssert(s.iri, Indicates, s.indicates)
	}

	o.Class(Informant).Sub(dolce.SocialObject).
		Label("informant", "en").
		Comment("A local knowledge holder contributing IK reports.")
	o.ObjectProperty(ReportedBy).Range(Informant).Label("reported by", "en")
	o.DatatypeProperty(Reliability).Domain(Informant).
		Label("reliability", "en").
		Comment("Track-record weight in [0,1] maintained by the IK module.")
	o.ObjectProperty(ObservedSign).Range(IKIndicator).Label("observed sign", "en")

	// --- geography ---
	o.Class(Province).Sub(ssn.FeatureOfInterest).Label("province", "en")
	o.Class(DistrictClass).Sub(ssn.FeatureOfInterest).Label("district municipality", "en")
	o.Class(StationClass).Sub(ssn.FeatureOfInterest).Label("observation station", "en")
	o.ObjectProperty(LocatedIn).Transitive().Label("located in", "en")
	o.DatatypeProperty(Latitude).Label("latitude", "en")
	o.DatatypeProperty(Longitude).Label("longitude", "en")

	o.Individual(FreeState, Province)
	o.MustAssert(FreeState, rdf.RDFSLabel, rdf.NewLangLiteral("Free State", "en"))
	districts := []struct {
		iri      rdf.IRI
		label    string
		lat, lon float64
	}{
		{Mangaung, "Mangaung Metropolitan", -29.12, 26.21},
		{Xhariep, "Xhariep", -30.05, 25.40},
		{Lejweleputswa, "Lejweleputswa", -28.20, 26.50},
		{ThaboMofutsanyana, "Thabo Mofutsanyana", -28.45, 28.50},
		{FezileDabi, "Fezile Dabi", -27.10, 27.50},
	}
	for _, d := range districts {
		o.Individual(d.iri, DistrictClass)
		o.MustAssert(d.iri, rdf.RDFSLabel, rdf.NewLangLiteral(d.label, "en"))
		o.MustAssert(d.iri, LocatedIn, FreeState)
		o.MustAssert(d.iri, Latitude, rdf.NewFloat(d.lat))
		o.MustAssert(d.iri, Longitude, rdf.NewFloat(d.lon))
	}

	return o
}

// BuildMaterialized builds the unified ontology and runs the reasoner to
// fixpoint, returning the closed ontology (the form the middleware's
// ontology segment layer serves).
func BuildMaterialized() (*ontology.Ontology, ontology.Result, error) {
	o := Build()
	res, err := ontology.Reasoner{}.Materialize(o)
	return o, res, err
}

// SeverityRank returns the ordinal rank of a DVI severity individual, or
// -1 when the IRI is not part of the scale.
func SeverityRank(o *ontology.Ontology, severity rdf.IRI) int {
	v, ok := o.Graph().FirstObject(severity, NS.IRI("rank"))
	if !ok {
		return -1
	}
	lit, ok := v.(rdf.Literal)
	if !ok {
		return -1
	}
	n, ok := lit.Int()
	if !ok {
		return -1
	}
	return int(n)
}
