package drought

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/ontology/dolce"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
)

func TestBuildMaterialized(t *testing.T) {
	o, res, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 {
		t.Error("materialization should add entailments")
	}
	stats := o.Stats()
	if stats.Classes < 60 {
		t.Errorf("expected a substantial ontology library, got %+v", stats)
	}
	t.Logf("ontology library: %s (entailed %d in %d rounds)", stats, res.Added, res.Rounds)
}

func TestDroughtUnderDolceCategories(t *testing.T) {
	o, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cls  rdf.IRI
		want dolce.Category
	}{
		{DroughtEvent, dolce.CategoryPerdurant},
		{AgriculturalDrought, dolce.CategoryPerdurant},
		{RainfallDeficit, dolce.CategoryPerdurant},
		{ssn.Sensor, dolce.CategoryEndurant},
		{ssn.ObservedProperty, dolce.CategoryQuality},
		{Rainfall, dolce.CategoryQuality},
		{WaterLevel, dolce.CategoryQuality},
		{ssn.Unit, dolce.CategoryAbstract},
		{SeverityScale, dolce.CategoryAbstract},
		{IKIndicator, dolce.CategoryPerdurant},
		{Informant, dolce.CategoryEndurant},
	}
	for _, c := range cases {
		if got := dolce.Classify(o, c.cls); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.cls.LocalName(), got, c.want)
		}
	}
}

func TestCausalChainTransitive(t *testing.T) {
	o, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	// leadsTo is transitive: rainfall deficit ... leads to agricultural drought.
	if !o.Graph().Has(rdf.T(RainfallDeficit, LeadsTo, AgriculturalDrought)) {
		t.Error("transitive leadsTo chain not materialized")
	}
	if !o.Graph().Has(rdf.T(HeatWave, LeadsTo, AgriculturalDrought)) {
		t.Error("heat wave chain not materialized")
	}
}

func TestMultilingualWaterLevelLabels(t *testing.T) {
	o := Build()
	// The paper's example: Hoehe (de), Stav (cs).
	if got := o.Label(WaterLevel, "de"); got != "Hoehe" {
		t.Errorf("German label = %q, want Hoehe", got)
	}
	if got := o.Label(WaterLevel, "cs"); got != "Stav" {
		t.Errorf("Czech label = %q, want Stav", got)
	}
	if got := o.Label(WaterLevel, "en"); got != "water level" {
		t.Errorf("English label = %q", got)
	}
}

func TestDistrictsGeography(t *testing.T) {
	o, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	if len(Districts) != 5 {
		t.Fatalf("Districts = %v", Districts)
	}
	for _, d := range Districts {
		if !o.IsA(d, DistrictClass) {
			t.Errorf("%s should be a District", d)
		}
		if !o.IsA(d, ssn.FeatureOfInterest) {
			t.Errorf("%s should be a FeatureOfInterest via hierarchy", d)
		}
		if !o.Graph().Has(rdf.T(d, LocatedIn, FreeState)) {
			t.Errorf("%s should be located in Free State", d)
		}
	}
}

func TestSeverityScaleOrdering(t *testing.T) {
	o := Build()
	ranks := []struct {
		iri  rdf.IRI
		want int
	}{
		{SeverityNormal, 0}, {SeverityWatch, 1}, {SeverityWarning, 2},
		{SeveritySevere, 3}, {SeverityExtreme, 4},
	}
	for _, r := range ranks {
		if got := SeverityRank(o, r.iri); got != r.want {
			t.Errorf("SeverityRank(%s) = %d, want %d", r.iri.LocalName(), got, r.want)
		}
	}
	if SeverityRank(o, NS.IRI("nope")) != -1 {
		t.Error("unknown severity should rank -1")
	}
}

func TestIKIndicatorsIndicateEvents(t *testing.T) {
	o, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	for _, sign := range []rdf.IRI{SifennefeneWormAbundance, MutigaTreeFlowering, StarClusterDimness} {
		if !o.Graph().Has(rdf.T(sign, Indicates, DroughtEvent)) {
			t.Errorf("%s should indicate DroughtEvent", sign.LocalName())
		}
		if !o.IsSubClassOf(sign, IKIndicator) {
			t.Errorf("%s should be an IK indicator", sign.LocalName())
		}
	}
	// Wet-signs indicate wet spells, not drought.
	if o.Graph().Has(rdf.T(MoonHalo, Indicates, DroughtEvent)) {
		t.Error("moon halo is a wet-spell sign")
	}
}

func TestConsistencyOfLibrary(t *testing.T) {
	o, _, err := BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	vs := o.CheckConsistency()
	for _, v := range vs {
		t.Errorf("library violation: %v", v)
	}
}

func TestObservedPropertiesHaveUnits(t *testing.T) {
	o := Build()
	for _, p := range []rdf.IRI{Rainfall, SoilMoisture, AirTemperature, WaterLevel, NDVI} {
		if _, ok := o.Graph().FirstObject(p, ssn.HasUnit); !ok {
			t.Errorf("%s has no unit", p.LocalName())
		}
	}
}

func TestLibrarySerializesAndReparses(t *testing.T) {
	o := Build()
	text := rdf.TurtleString(o.Graph(), o.Prefixes())
	g2, err := rdf.ParseTurtleString(text)
	if err != nil {
		t.Fatalf("library turtle does not reparse: %v", err)
	}
	if !rdf.EqualGraphs(o.Graph(), g2) {
		t.Error("library turtle round-trip lost triples")
	}
	// And it can be wrapped again as an ontology.
	o2 := ontology.FromGraph(g2, IRIVersion)
	if len(o2.Classes()) != len(o.Classes()) {
		t.Error("class count changed after round trip")
	}
}
