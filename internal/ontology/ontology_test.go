package ontology

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

var testNS = rdf.Namespace("http://test.example/")

func buildTestOntology() *Ontology {
	o := New(testNS.IRI("onto"), "test ontology")
	o.Class(testNS.IRI("Animal")).Label("animal", "en")
	o.Class(testNS.IRI("Mammal")).Sub(testNS.IRI("Animal"))
	o.Class(testNS.IRI("Cow")).Sub(testNS.IRI("Mammal")).Label("cow", "en").Label("khomo", "st")
	o.Class(testNS.IRI("Plant")).DisjointWith(testNS.IRI("Animal"))
	o.ObjectProperty(testNS.IRI("eats")).
		Domain(testNS.IRI("Animal")).
		Range(testNS.IRI("Plant")).
		Label("eats", "en")
	o.DatatypeProperty(testNS.IRI("age")).Domain(testNS.IRI("Animal"))
	o.Individual(testNS.IRI("daisy"), testNS.IRI("Cow"))
	return o
}

func TestOntologyHeader(t *testing.T) {
	o := buildTestOntology()
	if o.IRI() != testNS.IRI("onto") {
		t.Errorf("IRI = %v", o.IRI())
	}
	if o.Name() != "test ontology" {
		t.Errorf("Name = %q", o.Name())
	}
	if !o.Graph().Has(rdf.T(o.IRI(), rdf.RDFType, rdf.OWLOntology)) {
		t.Error("missing owl:Ontology header")
	}
}

func TestClassesAndProperties(t *testing.T) {
	o := buildTestOntology()
	classes := o.Classes()
	if len(classes) != 4 {
		t.Errorf("Classes = %v", classes)
	}
	props := o.Properties()
	if len(props) != 2 {
		t.Errorf("Properties = %v", props)
	}
	if !o.IsClass(testNS.IRI("Cow")) {
		t.Error("Cow should be a class")
	}
	if o.IsClass(testNS.IRI("daisy")) {
		t.Error("daisy is an individual, not a class")
	}
}

func TestSubClassClosure(t *testing.T) {
	o := buildTestOntology()
	supers := o.SuperClasses(testNS.IRI("Cow"))
	if len(supers) != 2 {
		t.Fatalf("SuperClasses(Cow) = %v", supers)
	}
	subs := o.SubClasses(testNS.IRI("Animal"))
	if len(subs) != 2 {
		t.Fatalf("SubClasses(Animal) = %v", subs)
	}
	if !o.IsSubClassOf(testNS.IRI("Cow"), testNS.IRI("Animal")) {
		t.Error("Cow should be subclass of Animal (transitively)")
	}
	if !o.IsSubClassOf(testNS.IRI("Cow"), testNS.IRI("Cow")) {
		t.Error("class is subclass of itself")
	}
	if o.IsSubClassOf(testNS.IRI("Animal"), testNS.IRI("Cow")) {
		t.Error("subclass relation must not invert")
	}
}

func TestSubClassCycleTerminates(t *testing.T) {
	o := New(testNS.IRI("onto"), "")
	a, b := testNS.IRI("A"), testNS.IRI("B")
	o.Class(a).Sub(b)
	o.Class(b).Sub(a)
	supers := o.SuperClasses(a)
	if len(supers) != 1 || supers[0] != b {
		t.Errorf("cycle closure = %v", supers)
	}
}

func TestIsAAndInstancesOf(t *testing.T) {
	o := buildTestOntology()
	daisy := testNS.IRI("daisy")
	if !o.IsA(daisy, testNS.IRI("Cow")) {
		t.Error("daisy IsA Cow")
	}
	if !o.IsA(daisy, testNS.IRI("Animal")) {
		t.Error("daisy IsA Animal via hierarchy without materialization")
	}
	if o.IsA(daisy, testNS.IRI("Plant")) {
		t.Error("daisy is not a Plant")
	}
	inst := o.InstancesOf(testNS.IRI("Animal"))
	if len(inst) != 1 || !rdf.Equal(inst[0], daisy) {
		t.Errorf("InstancesOf(Animal) = %v", inst)
	}
}

func TestLabelFallbacks(t *testing.T) {
	o := buildTestOntology()
	cow := testNS.IRI("Cow")
	if got := o.Label(cow, "st"); got != "khomo" {
		t.Errorf("sesotho label = %q", got)
	}
	if got := o.Label(cow, "zz"); got == "" {
		t.Error("should fall back to any label")
	}
	if got := o.Label(testNS.IRI("Unlabelled"), "en"); got != "Unlabelled" {
		t.Errorf("fallback to local name, got %q", got)
	}
}

func TestTypesOf(t *testing.T) {
	o := buildTestOntology()
	types := o.TypesOf(testNS.IRI("daisy"))
	if len(types) != 1 || types[0] != testNS.IRI("Cow") {
		t.Errorf("TypesOf = %v", types)
	}
}

func TestImport(t *testing.T) {
	base := New(testNS.IRI("base"), "base")
	base.Class(testNS.IRI("Thing2"))
	o := New(testNS.IRI("onto"), "")
	o.Import(base)
	if !o.IsClass(testNS.IRI("Thing2")) {
		t.Error("imported class missing")
	}
	if !o.Graph().Has(rdf.T(o.IRI(), rdf.OWLImports, base.IRI())) {
		t.Error("owl:imports missing")
	}
}

func TestStats(t *testing.T) {
	o := buildTestOntology()
	s := o.Stats()
	if s.Classes != 4 || s.Properties != 2 || s.Individuals != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.SubClassAx != 2 || s.DomainAx != 2 || s.RangeAx != 1 {
		t.Errorf("axiom counts = %+v", s)
	}
	if !strings.Contains(s.String(), "classes=4") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestAssertErrors(t *testing.T) {
	o := buildTestOntology()
	if err := o.Assert(rdf.NewLiteral("x"), testNS.IRI("p"), testNS.IRI("y")); err == nil {
		t.Error("literal subject must be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAssert should panic on bad triple")
		}
	}()
	o.MustAssert(rdf.NewLiteral("x"), testNS.IRI("p"), testNS.IRI("y"))
}
