package ontology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func materialize(t *testing.T, o *Ontology) Result {
	t.Helper()
	res, err := Reasoner{}.Materialize(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRDFS11SubClassTransitivity(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	a, b, c := testNS.IRI("A"), testNS.IRI("B"), testNS.IRI("C")
	o.Class(a).Sub(b)
	o.Class(b).Sub(c)
	o.Class(c)
	materialize(t, o)
	if !o.Graph().Has(rdf.T(a, rdf.RDFSSubClassOf, c)) {
		t.Error("rdfs11 missing: A subClassOf C")
	}
}

func TestRDFS9TypeInheritance(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	cow, mammal := testNS.IRI("Cow"), testNS.IRI("Mammal")
	o.Class(cow).Sub(mammal)
	o.Class(mammal)
	o.Individual(testNS.IRI("daisy"), cow)
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("daisy"), rdf.RDFType, mammal)) {
		t.Error("rdfs9 missing: daisy type Mammal")
	}
}

func TestRDFS2Domain(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.Class(testNS.IRI("Sensor"))
	o.ObjectProperty(testNS.IRI("observes")).Domain(testNS.IRI("Sensor"))
	o.MustAssert(testNS.IRI("s1"), testNS.IRI("observes"), testNS.IRI("rain"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("s1"), rdf.RDFType, testNS.IRI("Sensor"))) {
		t.Error("rdfs2 missing: s1 type Sensor")
	}
}

func TestRDFS3RangeSkipsLiterals(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.Class(testNS.IRI("Property2"))
	o.ObjectProperty(testNS.IRI("observes")).Range(testNS.IRI("Property2"))
	o.MustAssert(testNS.IRI("s1"), testNS.IRI("observes"), testNS.IRI("rain"))
	o.MustAssert(testNS.IRI("s1"), testNS.IRI("observes"), rdf.NewLiteral("junk"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("rain"), rdf.RDFType, testNS.IRI("Property2"))) {
		t.Error("rdfs3 missing: rain typed by range")
	}
	// The literal must not be typed (it can't be a subject anyway).
	if o.Graph().Count(nil, rdf.RDFType, testNS.IRI("Property2")) != 1 {
		t.Error("rdfs3 typed something unexpected")
	}
}

func TestRDFS7PropertyInheritance(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	sub, super := testNS.IRI("hasDistrict"), testNS.IRI("hasRegion")
	o.ObjectProperty(sub).Sub(super)
	o.ObjectProperty(super)
	o.MustAssert(testNS.IRI("fs"), sub, testNS.IRI("mangaung"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("fs"), super, testNS.IRI("mangaung"))) {
		t.Error("rdfs7 missing: value via super-property")
	}
}

func TestRDFS5SubPropertyTransitivity(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	p, q, r := testNS.IRI("p"), testNS.IRI("q"), testNS.IRI("r")
	o.ObjectProperty(p).Sub(q)
	o.ObjectProperty(q).Sub(r)
	o.ObjectProperty(r)
	materialize(t, o)
	if !o.Graph().Has(rdf.T(p, rdf.RDFSSubPropertyOf, r)) {
		t.Error("rdfs5 missing")
	}
}

func TestOWLInverse(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.ObjectProperty(testNS.IRI("observes")).InverseOf(testNS.IRI("observedBy"))
	o.ObjectProperty(testNS.IRI("observedBy"))
	o.MustAssert(testNS.IRI("s1"), testNS.IRI("observes"), testNS.IRI("rain"))
	o.MustAssert(testNS.IRI("soil"), testNS.IRI("observedBy"), testNS.IRI("s2"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("rain"), testNS.IRI("observedBy"), testNS.IRI("s1"))) {
		t.Error("inverse (forward) missing")
	}
	if !o.Graph().Has(rdf.T(testNS.IRI("s2"), testNS.IRI("observes"), testNS.IRI("soil"))) {
		t.Error("inverse (backward) missing")
	}
}

func TestOWLSymmetric(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.ObjectProperty(testNS.IRI("adjacentTo")).Symmetric()
	o.MustAssert(testNS.IRI("a"), testNS.IRI("adjacentTo"), testNS.IRI("b"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("b"), testNS.IRI("adjacentTo"), testNS.IRI("a"))) {
		t.Error("symmetric mirror missing")
	}
}

func TestOWLTransitive(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.ObjectProperty(testNS.IRI("partOf")).Transitive()
	o.MustAssert(testNS.IRI("a"), testNS.IRI("partOf"), testNS.IRI("b"))
	o.MustAssert(testNS.IRI("b"), testNS.IRI("partOf"), testNS.IRI("c"))
	o.MustAssert(testNS.IRI("c"), testNS.IRI("partOf"), testNS.IRI("d"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("a"), testNS.IRI("partOf"), testNS.IRI("d"))) {
		t.Error("transitive closure missing a→d")
	}
}

func TestOWLEquivalentClass(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	a, b := testNS.IRI("Precipitation"), testNS.IRI("Rainfall")
	o.Class(a).EquivalentTo(b)
	o.Class(b)
	o.Individual(testNS.IRI("x"), a)
	materialize(t, o)
	g := o.Graph()
	if !g.Has(rdf.T(b, rdf.RDFSSubClassOf, a)) || !g.Has(rdf.T(a, rdf.RDFSSubClassOf, b)) {
		t.Error("equivalentClass should imply mutual subClassOf")
	}
	if !g.Has(rdf.T(testNS.IRI("x"), rdf.RDFType, b)) {
		t.Error("instance should inherit equivalent class")
	}
}

func TestOWLSameAs(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.Class(testNS.IRI("Station2"))
	a, b, c := testNS.IRI("st-A"), testNS.IRI("st-B"), testNS.IRI("st-C")
	o.Individual(a, testNS.IRI("Station2"))
	o.MustAssert(a, rdf.OWLSameAs, b)
	o.MustAssert(b, rdf.OWLSameAs, c)
	materialize(t, o)
	g := o.Graph()
	if !g.Has(rdf.T(b, rdf.OWLSameAs, a)) {
		t.Error("sameAs symmetry missing")
	}
	if !g.Has(rdf.T(a, rdf.OWLSameAs, c)) {
		t.Error("sameAs transitivity missing")
	}
	if !g.Has(rdf.T(c, rdf.RDFType, testNS.IRI("Station2"))) {
		t.Error("type propagation across sameAs missing")
	}
}

func TestDisjointSymmetry(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	o.Class(testNS.IRI("A")).DisjointWith(testNS.IRI("B"))
	o.Class(testNS.IRI("B"))
	materialize(t, o)
	if !o.Graph().Has(rdf.T(testNS.IRI("B"), rdf.OWLDisjointWith, testNS.IRI("A"))) {
		t.Error("disjointWith symmetry missing")
	}
}

func TestReasonerIdempotent(t *testing.T) {
	o := buildTestOntology()
	o.MustAssert(testNS.IRI("daisy"), testNS.IRI("eats"), testNS.IRI("grass"))
	first := materialize(t, o)
	if first.Added == 0 {
		t.Fatal("expected entailments on first run")
	}
	second := materialize(t, o)
	if second.Added != 0 {
		t.Errorf("second run added %d triples; closure not reached", second.Added)
	}
}

func TestReasonerMonotone(t *testing.T) {
	o := buildTestOntology()
	before := o.Graph().Triples()
	materialize(t, o)
	for _, tr := range before {
		if !o.Graph().Has(tr) {
			t.Fatalf("reasoner removed triple %v", tr)
		}
	}
}

func TestReasonerMaxRounds(t *testing.T) {
	o := New(testNS.IRI("o"), "")
	// A long subclass chain needs several rounds; with MaxRounds 1 it
	// cannot finish.
	prev := testNS.IRI("C0")
	o.Class(prev)
	for i := 1; i < 20; i++ {
		cur := testNS.IRI(string(rune('C')) + string(rune('0'+i%10)) + string(rune('a'+i/10)))
		o.Class(cur).Sub(prev)
		prev = cur
	}
	if _, err := (Reasoner{MaxRounds: 1}).Materialize(o); err == nil {
		t.Error("expected max-rounds error")
	}
}

// TestQuickReasonerProperties: on random ontologies the closure is
// monotone, idempotent, and every entailed subclass edge is sound
// (derivable by path reachability).
func TestQuickReasonerProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := New(testNS.IRI("o"), "")
		const n = 8
		classes := make([]rdf.IRI, n)
		for i := range classes {
			classes[i] = testNS.IRI("K" + string(rune('A'+i)))
			o.Class(classes[i])
		}
		// Random subclass edges (DAG-ish: from lower to higher index, plus a
		// few random ones to exercise cycles).
		reach := make(map[[2]int]bool)
		var edges [][2]int
		for i := 0; i < 12; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			o.Class(classes[a]).Sub(classes[b])
			edges = append(edges, [2]int{a, b})
			reach[[2]int{a, b}] = true
		}
		// Floyd-Warshall reference reachability.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[[2]int{i, k}] && reach[[2]int{k, j}] {
						reach[[2]int{i, j}] = true
					}
				}
			}
		}
		if _, err := (Reasoner{}).Materialize(o); err != nil {
			return false
		}
		// Soundness + completeness of subClassOf closure vs reference.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				has := o.Graph().Has(rdf.T(classes[i], rdf.RDFSSubClassOf, classes[j]))
				if has != reach[[2]int{i, j}] {
					return false
				}
			}
		}
		// Idempotence.
		res2, err := (Reasoner{}).Materialize(o)
		return err == nil && res2.Added == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
