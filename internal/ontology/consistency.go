package ontology

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// ViolationKind identifies a class of consistency violation.
type ViolationKind int

const (
	// ViolationDisjoint: an individual is typed by two classes asserted
	// disjoint.
	ViolationDisjoint ViolationKind = iota + 1
	// ViolationFunctional: a functional property has two distinct values
	// for the same subject.
	ViolationFunctional
	// ViolationLiteralRange: an object property (or a property whose range
	// is a class) holds a literal value.
	ViolationLiteralRange
	// ViolationUndeclaredClass: an individual is typed by an IRI never
	// declared as a class.
	ViolationUndeclaredClass
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationDisjoint:
		return "disjoint-classes"
	case ViolationFunctional:
		return "functional-property"
	case ViolationLiteralRange:
		return "literal-in-object-position"
	case ViolationUndeclaredClass:
		return "undeclared-class"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation describes one detected inconsistency.
type Violation struct {
	Kind    ViolationKind
	Subject rdf.Term
	Detail  string
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Kind, v.Subject, v.Detail)
}

// CheckConsistency scans the (ideally materialized) ontology for
// violations. It never mutates the graph. Violations are returned in a
// deterministic order.
func (o *Ontology) CheckConsistency() []Violation {
	var out []Violation
	out = append(out, o.checkDisjoint()...)
	out = append(out, o.checkFunctional()...)
	out = append(out, o.checkObjectPropertyLiterals()...)
	out = append(out, o.checkUndeclaredClasses()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if c := out[i].Subject.Key(); c != out[j].Subject.Key() {
			return c < out[j].Subject.Key()
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

func (o *Ontology) checkDisjoint() []Violation {
	g := o.g
	var out []Violation
	g.ForEachMatch(nil, rdf.OWLDisjointWith, nil, func(d rdf.Triple) bool {
		a, ok1 := d.S.(rdf.IRI)
		b, ok2 := d.O.(rdf.IRI)
		if !ok1 || !ok2 || a.Key() > b.Key() {
			// Each symmetric pair is checked once.
			return true
		}
		for _, ind := range g.Subjects(rdf.RDFType, a) {
			if g.Has(rdf.T(ind, rdf.RDFType, b)) {
				out = append(out, Violation{
					Kind:    ViolationDisjoint,
					Subject: ind,
					Detail:  fmt.Sprintf("typed by disjoint classes %s and %s", a, b),
				})
			}
		}
		return true
	})
	return out
}

func (o *Ontology) checkFunctional() []Violation {
	g := o.g
	var out []Violation
	g.ForEachMatch(nil, rdf.RDFType, rdf.OWLFunctionalProperty, func(d rdf.Triple) bool {
		p, ok := d.S.(rdf.IRI)
		if !ok {
			return true
		}
		perSubject := make(map[string]int)
		subjTerm := make(map[string]rdf.Term)
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			perSubject[t.S.Key()]++
			subjTerm[t.S.Key()] = t.S
			return true
		})
		keys := make([]string, 0, len(perSubject))
		for k, n := range perSubject {
			if n > 1 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, Violation{
				Kind:    ViolationFunctional,
				Subject: subjTerm[k],
				Detail:  fmt.Sprintf("functional property %s has %d values", p, perSubject[k]),
			})
		}
		return true
	})
	return out
}

func (o *Ontology) checkObjectPropertyLiterals() []Violation {
	g := o.g
	var out []Violation
	g.ForEachMatch(nil, rdf.RDFType, rdf.OWLObjectProperty, func(d rdf.Triple) bool {
		p, ok := d.S.(rdf.IRI)
		if !ok {
			return true
		}
		g.ForEachMatch(nil, p, nil, func(t rdf.Triple) bool {
			if t.O.Kind() == rdf.KindLiteral {
				out = append(out, Violation{
					Kind:    ViolationLiteralRange,
					Subject: t.S,
					Detail:  fmt.Sprintf("object property %s holds literal %s", p, t.O),
				})
			}
			return true
		})
		return true
	})
	return out
}

func (o *Ontology) checkUndeclaredClasses() []Violation {
	g := o.g
	declared := make(map[rdf.IRI]bool)
	for _, c := range o.Classes() {
		declared[c] = true
	}
	// Built-in meta classes are always fine.
	for _, c := range []rdf.IRI{
		rdf.OWLClass, rdf.RDFSClass, rdf.OWLOntology, rdf.RDFProperty,
		rdf.OWLObjectProperty, rdf.OWLDatatypeProperty, rdf.OWLThing,
		rdf.OWLTransitiveProperty, rdf.OWLSymmetricProperty,
		rdf.OWLFunctionalProperty, rdf.RDFStatement,
	} {
		declared[c] = true
	}
	var out []Violation
	seen := make(map[rdf.IRI]bool)
	g.ForEachMatch(nil, rdf.RDFType, nil, func(t rdf.Triple) bool {
		cls, ok := t.O.(rdf.IRI)
		if !ok || declared[cls] || seen[cls] {
			return true
		}
		seen[cls] = true
		out = append(out, Violation{
			Kind:    ViolationUndeclaredClass,
			Subject: cls,
			Detail:  "used as a type but never declared as a class",
		})
		return true
	})
	return out
}
