// Package dolce builds the fragment of the DOLCE foundational ontology
// (Descriptive Ontology for Linguistic and Cognitive Engineering, Masolo
// et al., WonderWeb D17) that the paper uses as its upper level: the
// top-level split into endurants, perdurants, qualities and abstracts,
// with the participation, quality and parthood relations that connect
// them.
//
// The paper classifies environmental entities with exactly these
// categories ("the entities will be identified and classified based on
// DOLCE classification of endurants, perdurants and quality"), so this is
// the fragment we axiomatize; the substitution is recorded in DESIGN.md.
package dolce

import (
	"repro/internal/ontology"
	"repro/internal/rdf"
)

// NS is the DOLCE namespace used by the middleware.
const NS = rdf.NSDOLCE

// Top-level and intermediate DOLCE categories.
var (
	Particular = NS.IRI("Particular")

	// Endurants: wholly present at any time they are present.
	Endurant            = NS.IRI("Endurant")
	PhysicalEndurant    = NS.IRI("PhysicalEndurant")
	PhysicalObject      = NS.IRI("PhysicalObject")
	AmountOfMatter      = NS.IRI("AmountOfMatter")
	Feature             = NS.IRI("Feature")
	NonPhysicalEndurant = NS.IRI("NonPhysicalEndurant")
	SocialObject        = NS.IRI("SocialObject")

	// Perdurants: happen in time, have temporal parts.
	Perdurant      = NS.IRI("Perdurant")
	Event          = NS.IRI("Event")
	Achievement    = NS.IRI("Achievement")
	Accomplishment = NS.IRI("Accomplishment")
	Stative        = NS.IRI("Stative")
	State          = NS.IRI("State")
	Process        = NS.IRI("Process")

	// Qualities: inhere in entities; their values live in regions.
	Quality         = NS.IRI("Quality")
	PhysicalQuality = NS.IRI("PhysicalQuality")
	TemporalQuality = NS.IRI("TemporalQuality")
	AbstractQuality = NS.IRI("AbstractQuality")

	// Abstracts: outside space-time (value spaces).
	Abstract       = NS.IRI("Abstract")
	Region         = NS.IRI("Region")
	PhysicalRegion = NS.IRI("PhysicalRegion")
	TemporalRegion = NS.IRI("TemporalRegion")
	TimeInterval   = NS.IRI("TimeInterval")
	AbstractRegion = NS.IRI("AbstractRegion")
)

// DOLCE relations.
var (
	ParticipatesIn = NS.IRI("participatesIn") // endurant × perdurant
	HasParticipant = NS.IRI("hasParticipant") // inverse
	HasQuality     = NS.IRI("hasQuality")     // particular × quality
	InheresIn      = NS.IRI("inheresIn")      // inverse
	HasQuale       = NS.IRI("hasQuale")       // quality × region
	PartOf         = NS.IRI("partOf")         // transitive parthood
	HasPart        = NS.IRI("hasPart")        // inverse
	PrecededBy     = NS.IRI("precededBy")     // perdurant ordering (transitive)
	HappensDuring  = NS.IRI("happensDuring")  // perdurant × time interval
	HasLocation    = NS.IRI("hasLocation")    // particular × physical region
)

// IRIVersion identifies the ontology document.
var IRIVersion = rdf.IRI("http://dews.africrid.example/ontology/dolce")

// Build constructs the DOLCE fragment as a fresh ontology.
func Build() *ontology.Ontology {
	o := ontology.New(IRIVersion, "DOLCE upper-level fragment")

	o.Class(Particular).
		Label("particular", "en").
		Comment("Anything that exists in the DOLCE sense; the root of the taxonomy.")

	// Endurant branch.
	o.Class(Endurant).Sub(Particular).
		Label("endurant", "en").
		Comment("Entity wholly present at any time it is present (objects, amounts of matter).").
		DisjointWith(Perdurant)
	o.Class(PhysicalEndurant).Sub(Endurant).Label("physical endurant", "en")
	o.Class(PhysicalObject).Sub(PhysicalEndurant).
		Label("physical object", "en").
		Comment("Endurant with unity: sensors, trees, worms, farms.")
	o.Class(AmountOfMatter).Sub(PhysicalEndurant).
		Label("amount of matter", "en").
		Comment("Mereologically invariant stuff: water, soil, air.")
	o.Class(Feature).Sub(PhysicalEndurant).
		Label("feature", "en").
		Comment("Dependent places or bounds: a catchment, a horizon.")
	o.Class(NonPhysicalEndurant).Sub(Endurant).Label("non-physical endurant", "en")
	o.Class(SocialObject).Sub(NonPhysicalEndurant).
		Label("social object", "en").
		Comment("Socially constructed endurants: communities, institutions, knowledge systems.")

	// Perdurant branch.
	o.Class(Perdurant).Sub(Particular).
		Label("perdurant", "en").
		Comment("Entity that happens in time: events, states, processes.")
	o.Class(Event).Sub(Perdurant).
		Label("event", "en").
		Comment("Perdurant that is not homeomeric: a drought, a storm.")
	o.Class(Achievement).Sub(Event).
		Label("achievement", "en").
		Comment("Instantaneous event: onset of rain, a threshold crossing.")
	o.Class(Accomplishment).Sub(Event).
		Label("accomplishment", "en").
		Comment("Extended event with culmination: a full drought episode.")
	o.Class(Stative).Sub(Perdurant).Label("stative", "en")
	o.Class(State).Sub(Stative).
		Label("state", "en").
		Comment("Homeomeric stative perdurant: being dry, being depleted.")
	o.Class(Process).Sub(Stative).
		Label("process", "en").
		Comment("Cumulative stative perdurant: soil-moisture decline, rainfall accumulation.")

	// Quality branch.
	o.Class(Quality).Sub(Particular).
		Label("quality", "en").
		Comment("Individual quality inhering in a particular: the temperature of this air mass.").
		DisjointWith(Abstract)
	o.Class(PhysicalQuality).Sub(Quality).Label("physical quality", "en")
	o.Class(TemporalQuality).Sub(Quality).Label("temporal quality", "en")
	o.Class(AbstractQuality).Sub(Quality).Label("abstract quality", "en")

	// Abstract branch.
	o.Class(Abstract).Sub(Particular).
		Label("abstract", "en").
		Comment("Entities outside space-time; notably regions (value spaces).")
	o.Class(Region).Sub(Abstract).Label("region", "en")
	o.Class(PhysicalRegion).Sub(Region).
		Label("physical region", "en").
		Comment("Value space of physical qualities: the millimetre scale, the Celsius scale.")
	o.Class(TemporalRegion).Sub(Region).Label("temporal region", "en")
	o.Class(TimeInterval).Sub(TemporalRegion).Label("time interval", "en")
	o.Class(AbstractRegion).Sub(Region).Label("abstract region", "en")

	// Relations.
	o.ObjectProperty(ParticipatesIn).
		Domain(Endurant).Range(Perdurant).
		Label("participates in", "en").
		Comment("Connects an endurant to the perdurants it takes part in.").
		InverseOf(HasParticipant)
	o.ObjectProperty(HasParticipant).
		Domain(Perdurant).Range(Endurant).
		Label("has participant", "en")
	o.ObjectProperty(HasQuality).
		Domain(Particular).Range(Quality).
		Label("has quality", "en").
		InverseOf(InheresIn)
	o.ObjectProperty(InheresIn).
		Domain(Quality).Range(Particular).
		Label("inheres in", "en")
	o.ObjectProperty(HasQuale).
		Domain(Quality).Range(Region).
		Label("has quale", "en").
		Comment("Maps a quality to the region (value) it occupies at a time.")
	o.ObjectProperty(PartOf).
		Transitive().
		Label("part of", "en").
		InverseOf(HasPart)
	o.ObjectProperty(HasPart).Transitive().Label("has part", "en")
	o.ObjectProperty(PrecededBy).
		Domain(Perdurant).Range(Perdurant).
		Transitive().
		Label("preceded by", "en").
		Comment("Temporal precedence between perdurants; the 'process leads to event' chain.")
	o.ObjectProperty(HappensDuring).
		Domain(Perdurant).Range(TimeInterval).
		Label("happens during", "en")
	o.ObjectProperty(HasLocation).
		Domain(Particular).Range(PhysicalRegion).
		Label("has location", "en")

	return o
}

// Category is a coarse DOLCE classification used by the annotator to tag
// incoming entities (the "what" of the paper's what/where/when).
type Category int

// Categories, aligned with the top-level split.
const (
	CategoryUnknown Category = iota
	CategoryEndurant
	CategoryPerdurant
	CategoryQuality
	CategoryAbstract
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CategoryEndurant:
		return "endurant"
	case CategoryPerdurant:
		return "perdurant"
	case CategoryQuality:
		return "quality"
	case CategoryAbstract:
		return "abstract"
	default:
		return "unknown"
	}
}

// Classify returns the top-level DOLCE category of a class IRI with
// respect to the (materialized or not) ontology o.
func Classify(o *ontology.Ontology, cls rdf.IRI) Category {
	switch {
	case o.IsSubClassOf(cls, Endurant):
		return CategoryEndurant
	case o.IsSubClassOf(cls, Perdurant):
		return CategoryPerdurant
	case o.IsSubClassOf(cls, Quality):
		return CategoryQuality
	case o.IsSubClassOf(cls, Abstract):
		return CategoryAbstract
	default:
		return CategoryUnknown
	}
}
