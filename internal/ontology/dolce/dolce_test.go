package dolce

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
)

func TestBuildTaxonomy(t *testing.T) {
	o := Build()
	pairs := []struct{ sub, super rdf.IRI }{
		{PhysicalObject, Endurant},
		{AmountOfMatter, Endurant},
		{Process, Perdurant},
		{State, Perdurant},
		{Event, Perdurant},
		{Accomplishment, Event},
		{TimeInterval, Abstract},
		{PhysicalQuality, Quality},
	}
	for _, p := range pairs {
		if !o.IsSubClassOf(p.sub, p.super) {
			t.Errorf("%s should be under %s", p.sub.LocalName(), p.super.LocalName())
		}
	}
	if o.IsSubClassOf(Endurant, Perdurant) {
		t.Error("endurant/perdurant branches must be separate")
	}
}

func TestEndurantPerdurantDisjoint(t *testing.T) {
	o := Build()
	if _, err := (ontology.Reasoner{}).Materialize(o); err != nil {
		t.Fatal(err)
	}
	if !o.Graph().Has(rdf.T(Endurant, rdf.OWLDisjointWith, Perdurant)) {
		t.Error("endurant must be disjoint with perdurant")
	}
	// An individual typed by both is flagged.
	o.Individual(NS.IRI("weird"), Endurant)
	o.Individual(NS.IRI("weird"), Perdurant)
	if vs := o.CheckConsistency(); len(vs) == 0 {
		t.Error("expected a disjointness violation")
	}
}

func TestClassify(t *testing.T) {
	o := Build()
	cases := []struct {
		cls  rdf.IRI
		want Category
	}{
		{PhysicalObject, CategoryEndurant},
		{Process, CategoryPerdurant},
		{PhysicalQuality, CategoryQuality},
		{TimeInterval, CategoryAbstract},
		{NS.IRI("Unknown"), CategoryUnknown},
	}
	for _, c := range cases {
		if got := Classify(o, c.cls); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.cls.LocalName(), got, c.want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CategoryEndurant:  "endurant",
		CategoryPerdurant: "perdurant",
		CategoryQuality:   "quality",
		CategoryAbstract:  "abstract",
		CategoryUnknown:   "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestRelationsHaveDomainsAndInverses(t *testing.T) {
	o := Build()
	g := o.Graph()
	if !g.Has(rdf.T(ParticipatesIn, rdf.RDFSDomain, Endurant)) {
		t.Error("participatesIn domain missing")
	}
	if !g.Has(rdf.T(ParticipatesIn, rdf.OWLInverseOf, HasParticipant)) {
		t.Error("participatesIn inverse missing")
	}
	if !g.Has(rdf.T(PartOf, rdf.RDFType, rdf.OWLTransitiveProperty)) {
		t.Error("partOf must be transitive")
	}
}
