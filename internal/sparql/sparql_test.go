package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

// testGraph builds a small sensor-flavoured graph:
//
//	:s1 a :Sensor ; :observes :Rainfall ; :value 12.5 ; :label "rain gauge"@en .
//	:s2 a :Sensor ; :observes :SoilMoisture ; :value 0.18 .
//	:s3 a :Station ; :observes :Rainfall ; :value 48 .
//	:Rainfall rdfs:label "Niederschlag"@de .
func testGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	src := `
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:s1 a ex:Sensor ; ex:observes ex:Rainfall ; ex:value 12.5 ; ex:label "rain gauge"@en .
ex:s2 a ex:Sensor ; ex:observes ex:SoilMoisture ; ex:value 0.18 .
ex:s3 a ex:Station ; ex:observes ex:Rainfall ; ex:value 48 .
ex:Rainfall rdfs:label "Niederschlag"@de .
`
	g, err := rdf.ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustSelect(t *testing.T, g *rdf.Graph, q string) *Solutions {
	t.Helper()
	query, err := Parse(q)
	if err != nil {
		t.Fatalf("parse: %v\nquery: %s", err, q)
	}
	sol, err := NewEngine(g).Select(query)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return sol
}

func TestSelectBasic(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s a ex:Sensor . }`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %s", len(sol.Rows), sol)
	}
}

func TestSelectJoin(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE {
  ?s a ex:Sensor .
  ?s ex:observes ex:Rainfall .
  ?s ex:value ?v .
}`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
	v := sol.Rows[0][Var("v")].(rdf.Literal)
	if f, _ := v.Float(); f != 12.5 {
		t.Errorf("v = %v", v)
	}
}

func TestSelectStar(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?s ex:observes ?p . }`)
	if len(sol.Vars) != 2 {
		t.Fatalf("vars = %v", sol.Vars)
	}
	if len(sol.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(sol.Rows))
	}
}

func TestFilterNumericComparison(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:value ?v . FILTER(?v > 1 && ?v < 20) }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only 12.5)", len(sol.Rows))
	}
}

func TestFilterArithmetic(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:value ?v . FILTER(?v * 2 >= 96) }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (48*2)", len(sol.Rows))
	}
}

func TestFilterRegexAndStringFns(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		filter string
		want   int
	}{
		{`FILTER REGEX(?l, "gauge")`, 1},
		{`FILTER REGEX(?l, "GAUGE", "i")`, 1},
		{`FILTER(CONTAINS(?l, "rain"))`, 1},
		{`FILTER(STRSTARTS(?l, "rain"))`, 1},
		{`FILTER(STRENDS(?l, "gauge"))`, 1},
		{`FILTER(STRLEN(?l) = 10)`, 1},
		{`FILTER(UCASE(?l) = "RAIN GAUGE")`, 1},
		{`FILTER(LCASE(?l) = "rain gauge")`, 1},
		{`FILTER(LANG(?l) = "en")`, 1},
		{`FILTER(LANG(?l) = "de")`, 0},
	}
	for _, c := range cases {
		t.Run(c.filter, func(t *testing.T) {
			sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:label ?l . `+c.filter+` }`)
			if len(sol.Rows) != c.want {
				t.Errorf("rows = %d, want %d", len(sol.Rows), c.want)
			}
		})
	}
}

func TestFilterTermPredicates(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:s1 ?p ?o . FILTER(ISLITERAL(?o)) }`)
	if len(sol.Rows) != 2 { // 12.5 and "rain gauge"@en
		t.Fatalf("rows = %d, want 2", len(sol.Rows))
	}
	sol = mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:s1 ?p ?o . FILTER(ISIRI(?o)) }`)
	if len(sol.Rows) != 2 { // ex:Sensor, ex:Rainfall
		t.Fatalf("iri rows = %d, want 2", len(sol.Rows))
	}
}

func TestFilterDatatypeAndStr(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?v WHERE { ex:s2 ex:value ?v . FILTER(DATATYPE(?v) = xsd:decimal) }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("datatype rows = %d, want 1", len(sol.Rows))
	}
	sol = mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s a ex:Station . FILTER(STR(?s) = "http://example.org/s3") }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("str rows = %d, want 1", len(sol.Rows))
	}
}

func TestFilterBoundAndOptional(t *testing.T) {
	g := testGraph(t)
	// s2 has no label; OPTIONAL keeps it, FILTER(!BOUND) isolates it.
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s a ex:Sensor .
  OPTIONAL { ?s ex:label ?l . }
  FILTER(!BOUND(?l))
}`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
	if got := sol.Rows[0][Var("s")]; !rdf.Equal(got, rdf.IRI("http://example.org/s2")) {
		t.Errorf("s = %v", got)
	}
}

func TestOptionalBindsWhenPresent(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s ?l WHERE {
  ?s a ex:Sensor .
  OPTIONAL { ?s ex:label ?l . }
}`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sol.Rows))
	}
	labelled := 0
	for _, r := range sol.Rows {
		if _, ok := r[Var("l")]; ok {
			labelled++
		}
	}
	if labelled != 1 {
		t.Errorf("labelled = %d, want 1", labelled)
	}
}

func TestUnion(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  { ?s a ex:Sensor . } UNION { ?s a ex:Station . }
}`)
	if len(sol.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(sol.Rows))
	}
}

func TestUnionThreeBranches(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  { ?s ex:observes ex:Rainfall . }
  UNION { ?s ex:observes ex:SoilMoisture . }
  UNION { ?s a ex:Station . }
}`)
	if len(sol.Rows) != 4 { // s1, s3, s2, s3-again
		t.Fatalf("rows = %d, want 4", len(sol.Rows))
	}
}

func TestDistinct(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?p WHERE { ?s ex:observes ?p . }`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sol.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:value ?v . } ORDER BY ?v`)
	if len(sol.Rows) != 3 {
		t.Fatalf("rows = %d", len(sol.Rows))
	}
	first, _ := sol.Rows[0][Var("v")].(rdf.Literal).Float()
	last, _ := sol.Rows[2][Var("v")].(rdf.Literal).Float()
	if first != 0.18 || last != 48 {
		t.Errorf("order: first=%v last=%v", first, last)
	}

	sol = mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?v WHERE { ?s ex:value ?v . } ORDER BY DESC(?v) LIMIT 1`)
	if len(sol.Rows) != 1 {
		t.Fatalf("limit rows = %d", len(sol.Rows))
	}
	if f, _ := sol.Rows[0][Var("v")].(rdf.Literal).Float(); f != 48 {
		t.Errorf("DESC first = %v", f)
	}

	sol = mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?v WHERE { ?s ex:value ?v . } ORDER BY ?v OFFSET 1 LIMIT 1`)
	if f, _ := sol.Rows[0][Var("v")].(rdf.Literal).Float(); f != 12.5 {
		t.Errorf("offset row = %v", f)
	}

	sol = mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?v WHERE { ?s ex:value ?v . } OFFSET 99`)
	if len(sol.Rows) != 0 {
		t.Errorf("over-offset rows = %d", len(sol.Rows))
	}
}

func TestAsk(t *testing.T) {
	g := testGraph(t)
	q, err := Parse(`PREFIX ex: <http://example.org/> ASK { ex:s1 a ex:Sensor . }`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := NewEngine(g).Ask(q)
	if err != nil || !ok {
		t.Fatalf("ASK = %v, %v", ok, err)
	}
	q, _ = Parse(`PREFIX ex: <http://example.org/> ASK { ex:s1 a ex:Station . }`)
	ok, err = NewEngine(g).Ask(q)
	if err != nil || ok {
		t.Fatalf("negative ASK = %v, %v", ok, err)
	}
}

func TestConstruct(t *testing.T) {
	g := testGraph(t)
	q, err := Parse(`
PREFIX ex: <http://example.org/>
CONSTRUCT { ?p ex:observedBy ?s . } WHERE { ?s ex:observes ?p . }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEngine(g).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("constructed %d triples, want 3", out.Len())
	}
	if !out.Has(rdf.T(rdf.IRI("http://example.org/Rainfall"),
		rdf.IRI("http://example.org/observedBy"),
		rdf.IRI("http://example.org/s1"))) {
		t.Error("expected inverted triple missing")
	}
}

func TestConstructSkipsInvalid(t *testing.T) {
	g := testGraph(t)
	// ?v binds literals; a literal subject is invalid and must be skipped.
	q, err := Parse(`
PREFIX ex: <http://example.org/>
CONSTRUCT { ?v ex:of ?s . } WHERE { ?s ex:value ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEngine(g).Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("invalid template rows must be skipped, got %d", out.Len())
	}
}

func TestQueryDispatch(t *testing.T) {
	g := testGraph(t)
	e := NewEngine(g)
	if res, err := e.Query(`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s a ex:Sensor . }`); err != nil {
		t.Fatal(err)
	} else if _, ok := res.(*Solutions); !ok {
		t.Errorf("dispatch select = %T", res)
	}
	if res, err := e.Query(`PREFIX ex: <http://example.org/> ASK { ?s a ex:Sensor . }`); err != nil {
		t.Fatal(err)
	} else if b, ok := res.(bool); !ok || !b {
		t.Errorf("dispatch ask = %v", res)
	}
	if res, err := e.Query(`PREFIX ex: <http://example.org/> CONSTRUCT { ?s a ex:Thing . } WHERE { ?s a ex:Sensor . }`); err != nil {
		t.Fatal(err)
	} else if _, ok := res.(*rdf.Graph); !ok {
		t.Errorf("dispatch construct = %T", res)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ``},
		{"no form", `WHERE { ?s ?p ?o . }`},
		{"select no vars", `SELECT WHERE { ?s ?p ?o . }`},
		{"unterminated group", `SELECT ?s WHERE { ?s ?p ?o .`},
		{"unknown prefix", `SELECT ?s WHERE { ?s a nope:Thing . }`},
		{"bad filter", `SELECT ?s WHERE { ?s ?p ?o . FILTER ?s }`},
		{"literal predicate", `SELECT ?s WHERE { ?s "p" ?o . }`},
		{"trailing garbage", `ASK { ?s ?p ?o . } LIMIT 5 ???`},
		{"negative limit", `SELECT ?s WHERE { ?s ?p ?o . } LIMIT -2`},
		{"bare word", `SELECT ?s WHERE { ?s banana ?o . }`},
		{"lone ampersand", `SELECT ?s WHERE { ?s ?p ?o . FILTER(?o & 1) }`},
		{"unterminated string", `SELECT ?s WHERE { ?s ?p "oops . }`},
		{"construct with filter in template", `CONSTRUCT { FILTER(1=1) } WHERE { ?s ?p ?o . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("expected parse error for %q", c.src)
			}
		})
	}
}

func TestFilterErrorEliminatesRow(t *testing.T) {
	g := testGraph(t)
	// LANG on an IRI errors; those rows must be dropped, not crash.
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:s1 ?p ?o . FILTER(LANG(?o) = "en") }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
}

func TestDivisionByZeroEliminatesRow(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?v WHERE { ?s ex:value ?v . FILTER(1 / (?v - ?v) > 0) }`)
	if len(sol.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(sol.Rows))
	}
}

func TestSolutionsString(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s a ex:Station . }`)
	s := sol.String()
	if !strings.Contains(s, "?s") || !strings.Contains(s, "s3") {
		t.Errorf("String() = %q", s)
	}
}

func TestLangTaggedLiteralInPattern(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?p WHERE { ?p rdfs:label "Niederschlag"@de . }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
}

func TestNumericLiteralObjects(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:value 48 . }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
}

func TestSemicolonAndCommaInPatterns(t *testing.T) {
	g := testGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s a ex:Sensor ; ex:observes ex:Rainfall . }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(sol.Rows))
	}
}

func TestPatternOrderingSelectivity(t *testing.T) {
	ps := []TriplePattern{
		{S: PatternTerm{Var: "a"}, P: PatternTerm{Var: "b"}, O: PatternTerm{Var: "c"}},
		{S: PatternTerm{Term: rdf.IRI("x")}, P: PatternTerm{Term: rdf.IRI("y")}, O: PatternTerm{Var: "c"}},
	}
	ordered := orderPatterns(ps)
	if ordered[0].S.IsVar() {
		t.Error("most selective pattern should come first")
	}
}

func TestQueryFormString(t *testing.T) {
	if FormSelect.String() != "SELECT" || FormAsk.String() != "ASK" || FormConstruct.String() != "CONSTRUCT" {
		t.Error("form names wrong")
	}
	if !strings.Contains(QueryForm(9).String(), "9") {
		t.Error("unknown form should render numerically")
	}
}
