package sparql

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/rdf"
)

// Expr is a FILTER / ORDER BY expression. Evaluation yields a Value or an
// error; per the SPARQL error semantics a FILTER whose expression errors
// eliminates the solution rather than failing the query.
type Expr interface {
	Eval(b Binding) (Value, error)
	String() string
}

// Value is an evaluated expression result: an RDF term or an ebv-capable
// scalar. Terms are kept as rdf.Term; numerics/booleans as native Go.
type Value struct {
	// Term is set when the value is an RDF term.
	Term rdf.Term
	// Num / Bool / Str are set for computed scalars (Kind tells which).
	Kind ValueKind
	Num  float64
	Bool bool
	Str  string
}

// ValueKind discriminates computed value kinds.
type ValueKind int

// Value kinds.
const (
	KindTerm ValueKind = iota + 1
	KindNum
	KindBool
	KindStr
)

func termValue(t rdf.Term) Value { return Value{Kind: KindTerm, Term: t} }
func numValue(f float64) Value   { return Value{Kind: KindNum, Num: f} }
func boolValue(b bool) Value     { return Value{Kind: KindBool, Bool: b} }
func strValue(s string) Value    { return Value{Kind: KindStr, Str: s} }

// asNum coerces the value to a float64.
func (v Value) asNum() (float64, error) {
	switch v.Kind {
	case KindNum:
		return v.Num, nil
	case KindBool:
		if v.Bool {
			return 1, nil
		}
		return 0, nil
	case KindTerm:
		if lit, ok := v.Term.(rdf.Literal); ok {
			if f, ok := lit.Float(); ok {
				return f, nil
			}
		}
	}
	return 0, fmt.Errorf("sparql: %v is not numeric", v)
}

// asStr coerces the value to its string form.
func (v Value) asStr() (string, error) {
	switch v.Kind {
	case KindStr:
		return v.Str, nil
	case KindNum:
		return trimFloat(v.Num), nil
	case KindBool:
		if v.Bool {
			return "true", nil
		}
		return "false", nil
	case KindTerm:
		switch t := v.Term.(type) {
		case rdf.Literal:
			return t.Lexical, nil
		case rdf.IRI:
			return t.Value(), nil
		}
	}
	return "", fmt.Errorf("sparql: %v has no string form", v)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// EBV computes the SPARQL effective boolean value.
func (v Value) EBV() (bool, error) {
	switch v.Kind {
	case KindBool:
		return v.Bool, nil
	case KindNum:
		return v.Num != 0, nil
	case KindStr:
		return v.Str != "", nil
	case KindTerm:
		lit, ok := v.Term.(rdf.Literal)
		if !ok {
			return false, fmt.Errorf("sparql: no boolean value for %s", v.Term)
		}
		if b, ok := lit.Bool(); ok {
			return b, nil
		}
		if lit.IsNumeric() {
			f, ok := lit.Float()
			if !ok {
				return false, fmt.Errorf("sparql: malformed numeric literal %s", lit)
			}
			return f != 0, nil
		}
		if lit.EffectiveDatatype() == rdf.XSDString || lit.Lang != "" {
			return lit.Lexical != "", nil
		}
		return false, fmt.Errorf("sparql: no boolean value for %s", lit)
	}
	return false, fmt.Errorf("sparql: empty value")
}

// --- expression nodes ---

// VarExpr references a variable.
type VarExpr struct{ Name Var }

// Eval implements Expr.
func (e VarExpr) Eval(b Binding) (Value, error) {
	t, ok := b[e.Name]
	if !ok {
		return Value{}, fmt.Errorf("sparql: unbound variable ?%s", e.Name)
	}
	return termValue(t), nil
}

func (e VarExpr) String() string { return "?" + string(e.Name) }

// ConstExpr wraps a constant RDF term.
type ConstExpr struct{ Term rdf.Term }

// Eval implements Expr.
func (e ConstExpr) Eval(Binding) (Value, error) { return termValue(e.Term), nil }

func (e ConstExpr) String() string { return e.Term.String() }

// BinaryExpr applies an operator to two sub-expressions.
type BinaryExpr struct {
	Op   string // "||" "&&" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "/"
	L, R Expr
}

// Eval implements Expr.
func (e BinaryExpr) Eval(b Binding) (Value, error) {
	switch e.Op {
	case "||":
		// SPARQL logical-or: true beats error.
		lv, lerr := e.L.Eval(b)
		var lb bool
		if lerr == nil {
			lb, lerr = lv.EBV()
		}
		if lerr == nil && lb {
			return boolValue(true), nil
		}
		rv, rerr := e.R.Eval(b)
		var rb bool
		if rerr == nil {
			rb, rerr = rv.EBV()
		}
		if rerr == nil && rb {
			return boolValue(true), nil
		}
		if lerr != nil {
			return Value{}, lerr
		}
		if rerr != nil {
			return Value{}, rerr
		}
		return boolValue(false), nil
	case "&&":
		lv, lerr := e.L.Eval(b)
		var lb bool
		if lerr == nil {
			lb, lerr = lv.EBV()
		}
		if lerr == nil && !lb {
			return boolValue(false), nil
		}
		rv, rerr := e.R.Eval(b)
		var rb bool
		if rerr == nil {
			rb, rerr = rv.EBV()
		}
		if rerr == nil && !rb {
			return boolValue(false), nil
		}
		if lerr != nil {
			return Value{}, lerr
		}
		if rerr != nil {
			return Value{}, rerr
		}
		return boolValue(true), nil
	}

	lv, err := e.L.Eval(b)
	if err != nil {
		return Value{}, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case "=", "!=":
		eq, err := valuesEqual(lv, rv)
		if err != nil {
			return Value{}, err
		}
		if e.Op == "!=" {
			eq = !eq
		}
		return boolValue(eq), nil
	case "<", "<=", ">", ">=":
		c, err := compareValues(lv, rv)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case "<":
			return boolValue(c < 0), nil
		case "<=":
			return boolValue(c <= 0), nil
		case ">":
			return boolValue(c > 0), nil
		default:
			return boolValue(c >= 0), nil
		}
	case "+", "-", "*", "/":
		lf, err := lv.asNum()
		if err != nil {
			return Value{}, err
		}
		rf, err := rv.asNum()
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case "+":
			return numValue(lf + rf), nil
		case "-":
			return numValue(lf - rf), nil
		case "*":
			return numValue(lf * rf), nil
		default:
			if rf == 0 {
				return Value{}, fmt.Errorf("sparql: division by zero")
			}
			return numValue(lf / rf), nil
		}
	}
	return Value{}, fmt.Errorf("sparql: unknown operator %q", e.Op)
}

func (e BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// valuesEqual implements SPARQL '=' with numeric promotion.
func valuesEqual(a, b Value) (bool, error) {
	// Numeric comparison when both sides are numeric-capable.
	if af, aerr := a.asNum(); aerr == nil {
		if bf, berr := b.asNum(); berr == nil {
			if numericCapable(a) && numericCapable(b) {
				return af == bf, nil
			}
		}
	}
	as, aerr := a.asStr()
	bs, berr := b.asStr()
	if aerr == nil && berr == nil {
		// Language tags distinguish literals.
		if a.Kind == KindTerm && b.Kind == KindTerm {
			return rdf.Equal(a.Term, b.Term), nil
		}
		return as == bs, nil
	}
	if a.Kind == KindTerm && b.Kind == KindTerm {
		return rdf.Equal(a.Term, b.Term), nil
	}
	return false, fmt.Errorf("sparql: incomparable values")
}

func numericCapable(v Value) bool {
	switch v.Kind {
	case KindNum:
		return true
	case KindTerm:
		if lit, ok := v.Term.(rdf.Literal); ok {
			if lit.IsNumeric() {
				return true
			}
		}
	}
	return false
}

// orderCompare implements the total order ORDER BY sorts by. Values
// that failed to evaluate (unbound variables, type errors) sort lowest,
// then blank nodes, then IRIs, then literals — per the SPARQL
// "Ordering" operator mapping. Within literals, numeric literals
// compare by value and everything else by string form; the two groups
// are kept apart so the order stays transitive (mixing value-based and
// lexical comparison in one group would not be a total order). It never
// fails: incomparable pairs fall back to a deterministic rank
// comparison instead of aborting the sort.
func orderCompare(a Value, aerr error, b Value, berr error) int {
	ra, rb := orderRank(a, aerr), orderRank(b, berr)
	if ra != rb {
		return ra - rb
	}
	switch ra {
	case orderRankUnbound:
		return 0
	case orderRankNumeric:
		af, _ := a.asNum()
		bf, _ := b.asNum()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default: // blank, IRI, plain: all compare by string form
		as, _ := orderString(a)
		bs, _ := orderString(b)
		return strings.Compare(as, bs)
	}
}

// Order ranks, lowest first.
const (
	orderRankUnbound = iota
	orderRankBlank
	orderRankIRI
	orderRankNumeric
	orderRankPlain
)

func orderRank(v Value, err error) int {
	if err != nil {
		return orderRankUnbound
	}
	switch v.Kind {
	case KindNum:
		return orderRankNumeric
	case KindBool, KindStr:
		return orderRankPlain
	case KindTerm:
		switch t := v.Term.(type) {
		case rdf.BlankNode:
			return orderRankBlank
		case rdf.IRI:
			return orderRankIRI
		case rdf.Literal:
			if t.IsNumeric() {
				return orderRankNumeric
			}
			return orderRankPlain
		}
	}
	return orderRankUnbound
}

// orderString returns the string the non-numeric ranks compare by.
func orderString(v Value) (string, bool) {
	if v.Kind == KindTerm {
		if b, ok := v.Term.(rdf.BlankNode); ok {
			return b.Label(), true
		}
	}
	s, err := v.asStr()
	return s, err == nil
}

// compareValues orders two values: numerics numerically, otherwise
// lexically by string form. It is the comparison behind the FILTER
// operators (<, <=, >, >=), where incomparable values are an error that
// eliminates the solution; ORDER BY uses orderCompare instead.
func compareValues(a, b Value) (int, error) {
	if numericCapable(a) && numericCapable(b) {
		af, _ := a.asNum()
		bf, _ := b.asNum()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	as, aerr := a.asStr()
	bs, berr := b.asStr()
	if aerr != nil || berr != nil {
		return 0, fmt.Errorf("sparql: incomparable values")
	}
	return strings.Compare(as, bs), nil
}

// UnaryExpr applies '!' or unary '-'.
type UnaryExpr struct {
	Op string
	X  Expr
}

// Eval implements Expr.
func (e UnaryExpr) Eval(b Binding) (Value, error) {
	v, err := e.X.Eval(b)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case "!":
		bv, err := v.EBV()
		if err != nil {
			return Value{}, err
		}
		return boolValue(!bv), nil
	case "-":
		f, err := v.asNum()
		if err != nil {
			return Value{}, err
		}
		return numValue(-f), nil
	}
	return Value{}, fmt.Errorf("sparql: unknown unary %q", e.Op)
}

func (e UnaryExpr) String() string { return e.Op + e.X.String() }

// FuncExpr is a built-in function call.
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

func (e FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Eval implements Expr.
func (e FuncExpr) Eval(b Binding) (Value, error) {
	argn := func(want int) error {
		if len(e.Args) != want {
			return fmt.Errorf("sparql: %s expects %d args, got %d", e.Name, want, len(e.Args))
		}
		return nil
	}
	switch e.Name {
	case "BOUND":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		ve, ok := e.Args[0].(VarExpr)
		if !ok {
			return Value{}, fmt.Errorf("sparql: BOUND expects a variable")
		}
		_, bound := b[ve.Name]
		return boolValue(bound), nil
	case "ISIRI", "ISURI", "ISLITERAL", "ISBLANK":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindTerm {
			return boolValue(false), nil
		}
		switch e.Name {
		case "ISLITERAL":
			return boolValue(v.Term.Kind() == rdf.KindLiteral), nil
		case "ISBLANK":
			return boolValue(v.Term.Kind() == rdf.KindBlank), nil
		default:
			return boolValue(v.Term.Kind() == rdf.KindIRI), nil
		}
	case "STR":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		s, err := v.asStr()
		if err != nil {
			return Value{}, err
		}
		return strValue(s), nil
	case "LANG":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		if lit, ok := v.Term.(rdf.Literal); ok {
			return strValue(lit.Lang), nil
		}
		return Value{}, fmt.Errorf("sparql: LANG on non-literal")
	case "DATATYPE":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		if lit, ok := v.Term.(rdf.Literal); ok {
			return termValue(lit.EffectiveDatatype()), nil
		}
		return Value{}, fmt.Errorf("sparql: DATATYPE on non-literal")
	case "SAMETERM":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		a, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		c, err := e.Args[1].Eval(b)
		if err != nil {
			return Value{}, err
		}
		if a.Kind != KindTerm || c.Kind != KindTerm {
			return boolValue(false), nil
		}
		return boolValue(rdf.Equal(a.Term, c.Term)), nil
	case "REGEX":
		if len(e.Args) != 2 && len(e.Args) != 3 {
			return Value{}, fmt.Errorf("sparql: REGEX expects 2 or 3 args")
		}
		text, err := evalStr(e.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		pat, err := evalStr(e.Args[1], b)
		if err != nil {
			return Value{}, err
		}
		if len(e.Args) == 3 {
			flags, err := evalStr(e.Args[2], b)
			if err != nil {
				return Value{}, err
			}
			if strings.Contains(flags, "i") {
				pat = "(?i)" + pat
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return Value{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return boolValue(re.MatchString(text)), nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		if err := argn(2); err != nil {
			return Value{}, err
		}
		a, err := evalStr(e.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		c, err := evalStr(e.Args[1], b)
		if err != nil {
			return Value{}, err
		}
		switch e.Name {
		case "CONTAINS":
			return boolValue(strings.Contains(a, c)), nil
		case "STRSTARTS":
			return boolValue(strings.HasPrefix(a, c)), nil
		default:
			return boolValue(strings.HasSuffix(a, c)), nil
		}
	case "LCASE", "UCASE":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		s, err := evalStr(e.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		if e.Name == "LCASE" {
			return strValue(strings.ToLower(s)), nil
		}
		return strValue(strings.ToUpper(s)), nil
	case "STRLEN":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		s, err := evalStr(e.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		return numValue(float64(len([]rune(s)))), nil
	case "ABS":
		if err := argn(1); err != nil {
			return Value{}, err
		}
		v, err := e.Args[0].Eval(b)
		if err != nil {
			return Value{}, err
		}
		f, err := v.asNum()
		if err != nil {
			return Value{}, err
		}
		if f < 0 {
			f = -f
		}
		return numValue(f), nil
	}
	return Value{}, fmt.Errorf("sparql: unknown function %s", e.Name)
}

func evalStr(e Expr, b Binding) (string, error) {
	v, err := e.Eval(b)
	if err != nil {
		return "", err
	}
	return v.asStr()
}
