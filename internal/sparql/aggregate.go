package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// AggSelect is one aggregate projection: (COUNT(?x) AS ?n) or
// (AVG(?v) AS ?mean). Star marks COUNT(*).
type AggSelect struct {
	// Fn is the upper-cased aggregate name: COUNT, SUM, AVG, MIN, MAX.
	Fn string
	// Arg is the aggregated variable (ignored when Star).
	Arg Var
	// Star marks COUNT(*).
	Star bool
	// As is the output variable.
	As Var
	// Distinct marks COUNT(DISTINCT ?x).
	Distinct bool
}

// String renders the projection.
func (a AggSelect) String() string {
	arg := "?" + string(a.Arg)
	if a.Star {
		arg = "*"
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return fmt.Sprintf("(%s(%s) AS ?%s)", a.Fn, arg, a.As)
}

// hasAggregates reports whether the query needs the grouping evaluator.
func (q *Query) hasAggregates() bool {
	return len(q.Aggregates) > 0 || len(q.GroupBy) > 0
}

// evalAggregates turns raw solution rows into grouped/aggregated rows.
// With no GROUP BY the whole result set forms one implicit group.
func evalAggregates(q *Query, rows []Binding) ([]Binding, error) {
	type group struct {
		key  Binding
		rows []Binding
	}
	var groups []*group
	if len(q.GroupBy) == 0 {
		groups = []*group{{key: Binding{}, rows: rows}}
	} else {
		index := make(map[string]*group)
		for _, r := range rows {
			k := r.key(q.GroupBy)
			g, ok := index[k]
			if !ok {
				keyBinding := make(Binding, len(q.GroupBy))
				for _, v := range q.GroupBy {
					if t, bound := r[v]; bound {
						keyBinding[v] = t
					}
				}
				g = &group{key: keyBinding}
				index[k] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, r)
		}
		// Deterministic group order.
		sort.Slice(groups, func(i, j int) bool {
			return groups[i].key.key(q.GroupBy) < groups[j].key.key(q.GroupBy)
		})
	}

	out := make([]Binding, 0, len(groups))
	for _, g := range groups {
		row := g.key.Clone()
		for _, agg := range q.Aggregates {
			val, ok, err := computeAggregate(agg, g.rows)
			if err != nil {
				return nil, err
			}
			if ok {
				row[agg.As] = val
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// computeAggregate evaluates one aggregate over a group's rows. The
// second result reports whether a value is produced (empty numeric groups
// yield unbound, matching SPARQL's error-as-unbound behaviour; COUNT of
// an empty group is 0).
func computeAggregate(agg AggSelect, rows []Binding) (rdf.Term, bool, error) {
	switch agg.Fn {
	case "COUNT":
		if agg.Star {
			return rdf.NewInt(int64(len(rows))), true, nil
		}
		if agg.Distinct {
			seen := make(map[string]bool)
			for _, r := range rows {
				if t, ok := r[agg.Arg]; ok {
					seen[t.Key()] = true
				}
			}
			return rdf.NewInt(int64(len(seen))), true, nil
		}
		n := 0
		for _, r := range rows {
			if _, ok := r[agg.Arg]; ok {
				n++
			}
		}
		return rdf.NewInt(int64(n)), true, nil
	case "SUM", "AVG":
		var sum float64
		n := 0
		for _, r := range rows {
			t, ok := r[agg.Arg]
			if !ok {
				continue
			}
			lit, ok := t.(rdf.Literal)
			if !ok {
				continue
			}
			f, ok := lit.Float()
			if !ok {
				continue
			}
			sum += f
			n++
		}
		if agg.Fn == "SUM" {
			return rdf.NewFloat(sum), true, nil
		}
		if n == 0 {
			return nil, false, nil
		}
		return rdf.NewFloat(sum / float64(n)), true, nil
	case "MIN", "MAX":
		var best Value
		have := false
		for _, r := range rows {
			t, ok := r[agg.Arg]
			if !ok {
				continue
			}
			v := termValue(t)
			if !have {
				best = v
				have = true
				continue
			}
			c, err := compareValues(v, best)
			if err != nil {
				continue // incomparable values are skipped
			}
			if (agg.Fn == "MIN" && c < 0) || (agg.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		if !have {
			return nil, false, nil
		}
		return best.Term, best.Term != nil, nil
	default:
		return nil, false, fmt.Errorf("sparql: unknown aggregate %s", agg.Fn)
	}
}

// aggregateNames recognizes the aggregate keywords during parsing.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// parseAggSelect parses "(COUNT(DISTINCT? ?x|*) AS ?n)" after the opening
// '(' has been consumed.
func (p *parser) parseAggSelect() (AggSelect, error) {
	var out AggSelect
	t, err := p.next()
	if err != nil {
		return out, err
	}
	if t.kind != sKeyword || !aggregateNames[t.text] {
		return out, p.errf("expected aggregate function, got %s", t)
	}
	out.Fn = t.text
	if tok, err := p.next(); err != nil || tok.kind != sLParen {
		return out, p.errf("expected ( after %s", out.Fn)
	}
	t, err = p.peek()
	if err != nil {
		return out, err
	}
	if t.kind == sKeyword && t.text == "DISTINCT" {
		out.Distinct = true
		if _, err := p.next(); err != nil {
			return out, err
		}
		t, err = p.peek()
		if err != nil {
			return out, err
		}
	}
	switch {
	case t.kind == sStar:
		if out.Fn != "COUNT" {
			return out, p.errf("* only valid in COUNT")
		}
		out.Star = true
		if _, err := p.next(); err != nil {
			return out, err
		}
	case t.kind == sVar:
		out.Arg = Var(t.text)
		if _, err := p.next(); err != nil {
			return out, err
		}
	default:
		return out, p.errf("expected variable or * in aggregate, got %s", t)
	}
	if tok, err := p.next(); err != nil || tok.kind != sRParen {
		return out, p.errf("expected ) after aggregate argument")
	}
	if tok, err := p.next(); err != nil || tok.kind != sKeyword || tok.text != "AS" {
		return out, p.errf("expected AS in aggregate projection")
	}
	t, err = p.next()
	if err != nil {
		return out, err
	}
	if t.kind != sVar {
		return out, p.errf("expected output variable after AS")
	}
	out.As = Var(t.text)
	if tok, err := p.next(); err != nil || tok.kind != sRParen {
		return out, p.errf("expected ) closing aggregate projection")
	}
	return out, nil
}

// validateAggregates enforces the SPARQL projection rule: with grouping,
// plain projected variables must appear in GROUP BY.
func (q *Query) validateAggregates() error {
	if !q.hasAggregates() {
		return nil
	}
	grouped := make(map[Var]bool, len(q.GroupBy))
	for _, v := range q.GroupBy {
		grouped[v] = true
	}
	for _, v := range q.Select {
		if !grouped[v] {
			return fmt.Errorf("sparql: variable ?%s projected outside GROUP BY", v)
		}
	}
	names := make(map[Var]bool)
	for _, a := range q.Aggregates {
		if a.As == "" {
			return fmt.Errorf("sparql: aggregate without AS variable")
		}
		if names[a.As] || grouped[a.As] {
			return fmt.Errorf("sparql: duplicate output variable ?%s", a.As)
		}
		names[a.As] = true
	}
	return nil
}

// aggProjection returns the output variable order: group-by style plain
// vars first (in SELECT order), then aggregate outputs.
func (q *Query) aggProjection() []Var {
	out := make([]Var, 0, len(q.Select)+len(q.Aggregates))
	out = append(out, q.Select...)
	for _, a := range q.Aggregates {
		out = append(out, a.As)
	}
	return out
}
