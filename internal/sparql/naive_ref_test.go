package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// This file cross-checks the streaming ID-based executor against a
// naive reference evaluator that implements the textbook semantics the
// pre-dictionary engine used: materialized []Binding sets, per-row map
// clones, term-level matching via Graph.ForEachMatch. Random small
// graphs and random BGP/OPTIONAL/UNION/FILTER queries must yield
// identical solution multisets.

// --- naive reference evaluation (old engine semantics) ---

func naiveSolutions(t *testing.T, g *rdf.Graph, q *Query) []Binding {
	t.Helper()
	rows, err := naiveGroup(g, q.Where, []Binding{{}})
	if err != nil {
		t.Fatalf("naive eval: %v", err)
	}
	return rows
}

func naiveGroup(g *rdf.Graph, grp *Group, input []Binding) ([]Binding, error) {
	rows := input
	for _, el := range grp.Elements {
		var err error
		switch el := el.(type) {
		case BGP:
			rows, err = naiveBGP(g, el, rows)
		case Filter:
			rows = naiveFilter(el, rows)
		case Optional:
			rows, err = naiveOptional(g, el, rows)
		case Union:
			rows, err = naiveUnion(g, el, rows)
		case SubGroup:
			rows, err = naiveGroup(g, el.Group, rows)
		default:
			err = fmt.Errorf("unknown element %T", el)
		}
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return rows, nil
		}
	}
	return rows, nil
}

func naiveBGP(g *rdf.Graph, bgp BGP, input []Binding) ([]Binding, error) {
	rows := input
	for _, tp := range bgp.Patterns {
		var next []Binding
		for _, b := range rows {
			next = append(next, naiveMatch(g, tp, b)...)
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

func naiveMatch(g *rdf.Graph, tp TriplePattern, b Binding) []Binding {
	resolve := func(pt PatternTerm) rdf.Term {
		if !pt.IsVar() {
			return pt.Term
		}
		if t, ok := b[pt.Var]; ok {
			return t
		}
		return nil
	}
	var out []Binding
	g.ForEachMatch(resolve(tp.S), resolve(tp.P), resolve(tp.O), func(t rdf.Triple) bool {
		nb := b.Clone()
		if naiveBind(nb, tp.S, t.S) && naiveBind(nb, tp.P, t.P) && naiveBind(nb, tp.O, t.O) {
			out = append(out, nb)
		}
		return true
	})
	return out
}

func naiveBind(b Binding, pt PatternTerm, t rdf.Term) bool {
	if !pt.IsVar() {
		return true
	}
	if existing, ok := b[pt.Var]; ok {
		return rdf.Equal(existing, t)
	}
	b[pt.Var] = t
	return true
}

func naiveFilter(f Filter, rows []Binding) []Binding {
	var out []Binding
	for _, b := range rows {
		v, err := f.Expr.Eval(b)
		if err != nil {
			continue
		}
		if ok, err := v.EBV(); err == nil && ok {
			out = append(out, b)
		}
	}
	return out
}

func naiveOptional(g *rdf.Graph, o Optional, rows []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range rows {
		extended, err := naiveGroup(g, o.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(extended) == 0 {
			out = append(out, b)
		} else {
			out = append(out, extended...)
		}
	}
	return out, nil
}

func naiveUnion(g *rdf.Graph, u Union, rows []Binding) ([]Binding, error) {
	var out []Binding
	for _, branch := range u.Branches {
		cloned := make([]Binding, len(rows))
		for i, r := range rows {
			cloned[i] = r.Clone()
		}
		res, err := naiveGroup(g, branch, cloned)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// --- random graph / query generation ---

var refVars = []Var{"a", "b", "c", "x"}

func refGraph(rng *rand.Rand) *rdf.Graph {
	ns := rdf.Namespace("http://ref.example/")
	g := rdf.NewGraph()
	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		s := ns.IRI(fmt.Sprintf("s%d", rng.Intn(8)))
		p := ns.IRI(fmt.Sprintf("p%d", rng.Intn(4)))
		var o rdf.Term
		switch rng.Intn(3) {
		case 0:
			o = ns.IRI(fmt.Sprintf("o%d", rng.Intn(6)))
		case 1:
			o = rdf.NewInt(int64(rng.Intn(10)))
		default:
			o = ns.IRI(fmt.Sprintf("s%d", rng.Intn(8))) // link to a subject
		}
		g.MustAdd(rdf.T(s, p, o))
	}
	return g
}

func refPatternTerm(rng *rand.Rand, pos int) PatternTerm {
	ns := rdf.Namespace("http://ref.example/")
	if rng.Intn(2) == 0 {
		return PatternTerm{Var: refVars[rng.Intn(len(refVars))]}
	}
	switch pos {
	case 1:
		return PatternTerm{Term: ns.IRI(fmt.Sprintf("p%d", rng.Intn(4)))}
	case 2:
		if rng.Intn(3) == 0 {
			return PatternTerm{Term: rdf.NewInt(int64(rng.Intn(10)))}
		}
		return PatternTerm{Term: ns.IRI(fmt.Sprintf("o%d", rng.Intn(6)))}
	default:
		return PatternTerm{Term: ns.IRI(fmt.Sprintf("s%d", rng.Intn(8)))}
	}
}

func refBGP(rng *rand.Rand, maxPats int) BGP {
	n := 1 + rng.Intn(maxPats)
	var bgp BGP
	for i := 0; i < n; i++ {
		bgp.Patterns = append(bgp.Patterns, TriplePattern{
			S: refPatternTerm(rng, 0),
			P: refPatternTerm(rng, 1),
			O: refPatternTerm(rng, 2),
		})
	}
	return bgp
}

func refFilter(rng *rand.Rand) Filter {
	v := refVars[rng.Intn(len(refVars))]
	switch rng.Intn(4) {
	case 0:
		return Filter{Expr: BinaryExpr{Op: ">", L: VarExpr{Name: v}, R: ConstExpr{Term: rdf.NewInt(int64(rng.Intn(10)))}}}
	case 1:
		return Filter{Expr: FuncExpr{Name: "ISIRI", Args: []Expr{VarExpr{Name: v}}}}
	case 2:
		w := refVars[rng.Intn(len(refVars))]
		return Filter{Expr: BinaryExpr{Op: "!=", L: VarExpr{Name: v}, R: VarExpr{Name: w}}}
	default:
		return Filter{Expr: FuncExpr{Name: "BOUND", Args: []Expr{VarExpr{Name: v}}}}
	}
}

func refQuery(rng *rand.Rand) *Query {
	grp := &Group{}
	grp.Elements = append(grp.Elements, refBGP(rng, 3))
	if rng.Intn(2) == 0 {
		grp.Elements = append(grp.Elements, refFilter(rng))
	}
	if rng.Intn(2) == 0 {
		grp.Elements = append(grp.Elements, Optional{Group: &Group{Elements: []GroupElement{refBGP(rng, 2)}}})
	}
	if rng.Intn(3) == 0 {
		grp.Elements = append(grp.Elements, Union{Branches: []*Group{
			{Elements: []GroupElement{refBGP(rng, 2)}},
			{Elements: []GroupElement{refBGP(rng, 2)}},
		}})
	}
	if rng.Intn(4) == 0 {
		grp.Elements = append(grp.Elements, refFilter(rng))
	}
	return &Query{Form: FormSelect, Where: grp, Limit: -1}
}

// canonical renders a solution multiset in a comparable form.
func canonical(rows []Binding) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var parts []string
		for v, t := range r {
			parts = append(parts, string(v)+"="+t.Key())
		}
		sort.Strings(parts)
		out[i] = strings.Join(parts, "\x1f")
	}
	sort.Strings(out)
	return out
}

// TestExecutorMatchesNaiveReference: the streaming ID executor and the
// naive reference evaluation agree on the solution multiset for random
// graphs and random BGP/OPTIONAL/UNION/FILTER queries.
func TestExecutorMatchesNaiveReference(t *testing.T) {
	const rounds = 400
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := refGraph(rng)
		q := refQuery(rng)

		want := canonical(naiveSolutions(t, g, q))
		sol, err := NewEngine(g).Select(q)
		if err != nil {
			t.Fatalf("seed %d: streaming eval: %v", seed, err)
		}
		got := canonical(sol.Rows)

		if len(got) != len(want) {
			t.Fatalf("seed %d: %d solutions, reference has %d\nquery group: %+v",
				seed, len(got), len(want), q.Where)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: multiset mismatch at %d:\n got %q\nwant %q", seed, i, got[i], want[i])
			}
		}
	}
}

// TestExecutorMatchesNaiveOnHashJoinScale: a larger graph pushes the
// adaptive pattern operators over the hash-join threshold; results must
// still match the reference exactly.
func TestExecutorMatchesNaiveOnHashJoinScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ns := rdf.Namespace("http://ref.example/")
	g := rdf.NewGraph()
	for i := 0; i < 3000; i++ {
		s := ns.IRI(fmt.Sprintf("s%d", i%400))
		g.MustAdd(rdf.T(s, ns.IRI(fmt.Sprintf("p%d", i%3)), rdf.NewInt(int64(rng.Intn(50)))))
		g.MustAdd(rdf.T(s, ns.IRI("kind"), ns.IRI(fmt.Sprintf("K%d", i%5))))
	}
	q, err := Parse(`
PREFIX ref: <http://ref.example/>
SELECT * WHERE {
  ?s ref:kind ref:K2 .
  ?s ref:p0 ?v .
  ?s ref:p1 ?w .
  FILTER(?v > ?w)
}`)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(naiveSolutions(t, g, q))
	sol, err := NewEngine(g).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	got := canonical(sol.Rows)
	if len(got) != len(want) {
		t.Fatalf("%d solutions, reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("multiset mismatch at %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}
