package sparql

import (
	"testing"

	"repro/internal/rdf"
)

// aggGraph: three sensors in two districts with numeric values.
func aggGraph(t *testing.T) *rdf.Graph {
	t.Helper()
	g, err := rdf.ParseTurtleString(`
@prefix ex: <http://example.org/> .
ex:s1 ex:in ex:mangaung ; ex:value 10 .
ex:s2 ex:in ex:mangaung ; ex:value 30 .
ex:s3 ex:in ex:xhariep  ; ex:value 5 .
ex:s4 ex:in ex:xhariep  .
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCountStar(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?s ex:in ?d . }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d", len(sol.Rows))
	}
	if n, _ := sol.Rows[0][Var("n")].(rdf.Literal).Int(); n != 4 {
		t.Errorf("COUNT(*) = %d, want 4", n)
	}
}

func TestCountVarSkipsUnbound(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(?v) AS ?n) WHERE { ?s ex:in ?d . OPTIONAL { ?s ex:value ?v . } }`)
	if n, _ := sol.Rows[0][Var("n")].(rdf.Literal).Int(); n != 3 {
		t.Errorf("COUNT(?v) = %d, want 3 (s4 has no value)", n)
	}
}

func TestCountDistinct(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE { ?s ex:in ?d . }`)
	if n, _ := sol.Rows[0][Var("n")].(rdf.Literal).Int(); n != 2 {
		t.Errorf("COUNT(DISTINCT ?d) = %d, want 2", n)
	}
}

func TestGroupByWithAggregates(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?d (COUNT(*) AS ?n) (SUM(?v) AS ?total) (AVG(?v) AS ?mean)
       (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)
WHERE { ?s ex:in ?d . OPTIONAL { ?s ex:value ?v . } }
GROUP BY ?d
ORDER BY ?d`)
	if len(sol.Rows) != 2 {
		t.Fatalf("groups = %d: %s", len(sol.Rows), sol)
	}
	// Deterministic ORDER BY ?d: mangaung before xhariep.
	m := sol.Rows[0]
	if d := m[Var("d")].(rdf.IRI); d.LocalName() != "mangaung" {
		t.Fatalf("first group = %s", d)
	}
	if n, _ := m[Var("n")].(rdf.Literal).Int(); n != 2 {
		t.Errorf("mangaung count = %d", n)
	}
	if tot, _ := m[Var("total")].(rdf.Literal).Float(); tot != 40 {
		t.Errorf("mangaung sum = %v", tot)
	}
	if mean, _ := m[Var("mean")].(rdf.Literal).Float(); mean != 20 {
		t.Errorf("mangaung avg = %v", mean)
	}
	if lo, _ := m[Var("lo")].(rdf.Literal).Float(); lo != 10 {
		t.Errorf("mangaung min = %v", lo)
	}
	if hi, _ := m[Var("hi")].(rdf.Literal).Float(); hi != 30 {
		t.Errorf("mangaung max = %v", hi)
	}
	x := sol.Rows[1]
	if n, _ := x[Var("n")].(rdf.Literal).Int(); n != 2 {
		t.Errorf("xhariep count = %d", n)
	}
	if tot, _ := x[Var("total")].(rdf.Literal).Float(); tot != 5 {
		t.Errorf("xhariep sum = %v", tot)
	}
}

func TestAvgOfEmptyGroupUnbound(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT (AVG(?zz) AS ?mean) WHERE { ?s ex:in ?d . }`)
	if len(sol.Rows) != 1 {
		t.Fatalf("rows = %d", len(sol.Rows))
	}
	if _, bound := sol.Rows[0][Var("mean")]; bound {
		t.Error("AVG over nothing should be unbound")
	}
}

func TestOrderByAggregateOutput(t *testing.T) {
	g := aggGraph(t)
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?d (SUM(?v) AS ?total)
WHERE { ?s ex:in ?d ; ex:value ?v . }
GROUP BY ?d
ORDER BY DESC(?total)`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d", len(sol.Rows))
	}
	first, _ := sol.Rows[0][Var("total")].(rdf.Literal).Float()
	second, _ := sol.Rows[1][Var("total")].(rdf.Literal).Float()
	if first < second {
		t.Errorf("DESC order broken: %v then %v", first, second)
	}
}

func TestMinMaxOverIRIs(t *testing.T) {
	g := aggGraph(t)
	// MIN/MAX over IRIs fall back to lexical comparison.
	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT (MIN(?s) AS ?first) WHERE { ?s ex:in ?d . }`)
	if got := sol.Rows[0][Var("first")].(rdf.IRI); got.LocalName() != "s1" {
		t.Errorf("MIN(?s) = %s", got)
	}
}

func TestAggregateParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"projected var outside group by",
			`PREFIX ex: <http://e/> SELECT ?s (COUNT(*) AS ?n) WHERE { ?s ex:p ?o . }`},
		{"star in sum",
			`PREFIX ex: <http://e/> SELECT (SUM(*) AS ?n) WHERE { ?s ex:p ?o . }`},
		{"missing AS",
			`PREFIX ex: <http://e/> SELECT (COUNT(?s) ?n) WHERE { ?s ex:p ?o . }`},
		{"missing output var",
			`PREFIX ex: <http://e/> SELECT (COUNT(?s) AS ) WHERE { ?s ex:p ?o . }`},
		{"duplicate output",
			`PREFIX ex: <http://e/> SELECT (COUNT(?s) AS ?n) (SUM(?o) AS ?n) WHERE { ?s ex:p ?o . }`},
		{"empty group by",
			`PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s ex:p ?o . } GROUP BY`},
		{"junk in aggregate",
			`PREFIX ex: <http://e/> SELECT (COUNT(ex:x) AS ?n) WHERE { ?s ex:p ?o . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("expected parse error for %s", c.src)
			}
		})
	}
}

func TestAggSelectString(t *testing.T) {
	a := AggSelect{Fn: "COUNT", Star: true, As: "n"}
	if a.String() != "(COUNT(*) AS ?n)" {
		t.Errorf("String = %q", a.String())
	}
	d := AggSelect{Fn: "COUNT", Arg: "x", Distinct: true, As: "n"}
	if d.String() != "(COUNT(DISTINCT ?x) AS ?n)" {
		t.Errorf("String = %q", d.String())
	}
}

// TestAggregatesOverObservations: the realistic use — per-district mean
// soil moisture straight from the integrated graph.
func TestAggregatesOverObservations(t *testing.T) {
	src := `
@prefix ssn:  <http://dews.africrid.example/ontology/ssn#> .
@prefix dews: <http://dews.africrid.example/ontology/drought#> .
@prefix geo:  <http://dews.africrid.example/ontology/geo#> .
@prefix obs:  <http://dews.africrid.example/data/observation/> .
obs:1 a ssn:Observation ; ssn:observedProperty dews:SoilMoisture ;
      ssn:hasFeatureOfInterest geo:Mangaung ; ssn:hasSimpleResult 0.1 .
obs:2 a ssn:Observation ; ssn:observedProperty dews:SoilMoisture ;
      ssn:hasFeatureOfInterest geo:Mangaung ; ssn:hasSimpleResult 0.2 .
obs:3 a ssn:Observation ; ssn:observedProperty dews:SoilMoisture ;
      ssn:hasFeatureOfInterest geo:Xhariep ; ssn:hasSimpleResult 0.4 .
`
	g, err := rdf.ParseTurtleString(src)
	if err != nil {
		t.Fatal(err)
	}
	sol := mustSelect(t, g, `
SELECT ?where (AVG(?v) AS ?mean) (COUNT(*) AS ?n)
WHERE {
  ?o ssn:observedProperty dews:SoilMoisture ;
     ssn:hasFeatureOfInterest ?where ;
     ssn:hasSimpleResult ?v .
}
GROUP BY ?where
ORDER BY ?mean`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d", len(sol.Rows))
	}
	driest := sol.Rows[0]
	if w := driest[Var("where")].(rdf.IRI); w.LocalName() != "Mangaung" {
		t.Errorf("driest = %s", w)
	}
	if mean, _ := driest[Var("mean")].(rdf.Literal).Float(); mean < 0.149 || mean > 0.151 {
		t.Errorf("mean = %v", mean)
	}
}
