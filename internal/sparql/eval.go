package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Engine evaluates parsed queries against an RDF graph. Every query
// runs against an immutable snapshot taken when evaluation starts, so
// evaluation is lock-free and never blocks concurrent writers.
type Engine struct {
	g    *rdf.Graph
	snap *rdf.Snapshot
}

// NewEngine returns an engine bound to a graph. Each query evaluates
// against a fresh snapshot of the graph's state at call time.
func NewEngine(g *rdf.Graph) *Engine { return &Engine{g: g} }

// NewSnapshotEngine returns an engine pinned to one immutable snapshot:
// every query sees exactly that state, regardless of later writes.
func NewSnapshotEngine(s *rdf.Snapshot) *Engine { return &Engine{snap: s} }

func (e *Engine) snapshot() *rdf.Snapshot {
	if e.snap != nil {
		return e.snap
	}
	return e.g.Snapshot()
}

// Select runs a SELECT query and returns its solutions.
//
// Solution modifiers apply in SPARQL algebra order: ORDER BY over the
// full solution rows, then projection, then DISTINCT, then OFFSET/LIMIT
// — so SELECT DISTINCT ... LIMIT n returns n distinct rows whenever
// that many exist.
func (e *Engine) Select(q *Query) (*Solutions, error) {
	if q.Form != FormSelect {
		return nil, fmt.Errorf("sparql: Select called with %s query", q.Form)
	}
	prog, err := compile(q, e.snapshot())
	if err != nil {
		return nil, err
	}

	if q.hasAggregates() {
		rows, err := evalAggregates(q, prog.collectBindings())
		if err != nil {
			return nil, err
		}
		vars := q.aggProjection()
		return finishRows(q, vars, rows), nil
	}

	vars := q.Select
	if len(vars) == 0 {
		vars = collectVars(q.Where)
	}
	if len(q.OrderBy) > 0 {
		return finishRows(q, vars, prog.collectBindings()), nil
	}
	return streamSelect(q, vars, prog), nil
}

// finishRows applies the modifier pipeline to materialized rows:
// order → project → distinct → slice.
func finishRows(q *Query, vars []Var, rows []Binding) *Solutions {
	orderRows(q, rows)
	rows = projectRows(vars, rows)
	if q.Distinct {
		rows = distinctRows(vars, rows)
	}
	rows = sliceRows(q, rows)
	return &Solutions{Vars: vars, Rows: rows}
}

// streamSelect is the fast path for queries without ORDER BY or
// aggregates: projection, DISTINCT and OFFSET/LIMIT all run inside the
// streaming pipeline at the ID level, and LIMIT stops the scan early.
func streamSelect(q *Query, vars []Var, prog *program) *Solutions {
	slots := make([]int, len(vars))
	for i, v := range vars {
		if s, ok := prog.slots[v]; ok {
			slots[i] = s
		} else {
			slots[i] = -1 // projected variable bound nowhere
		}
	}
	var (
		out     []Binding
		seen    map[string]struct{}
		keyBuf  []byte
		skipped int
	)
	if q.Distinct {
		seen = make(map[string]struct{})
	}
	prog.run(func(row []rdf.ID) bool {
		if q.Distinct {
			keyBuf = keyBuf[:0]
			for _, s := range slots {
				var id rdf.ID
				if s >= 0 {
					id = row[s]
				}
				keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			if _, dup := seen[string(keyBuf)]; dup {
				return true
			}
			seen[string(keyBuf)] = struct{}{}
		}
		if skipped < q.Offset {
			skipped++
			return true
		}
		if q.Limit >= 0 && len(out) >= q.Limit {
			return false // covers LIMIT 0: never admit a row
		}
		b := make(Binding, len(vars))
		for i, s := range slots {
			if s >= 0 && row[s] != 0 {
				b[vars[i]] = prog.snap.TermOf(row[s])
			}
		}
		out = append(out, b)
		return q.Limit < 0 || len(out) < q.Limit
	})
	return &Solutions{Vars: vars, Rows: out}
}

// Ask runs an ASK query. The scan stops at the first solution.
func (e *Engine) Ask(q *Query) (bool, error) {
	if q.Form != FormAsk {
		return false, fmt.Errorf("sparql: Ask called with %s query", q.Form)
	}
	prog, err := compile(q, e.snapshot())
	if err != nil {
		return false, err
	}
	found := false
	prog.run(func([]rdf.ID) bool {
		found = true
		return false
	})
	return found, nil
}

// Construct runs a CONSTRUCT query, returning a new graph built from the
// template. Solutions that would instantiate an invalid triple (e.g. a
// literal subject) are skipped per the SPARQL spec.
func (e *Engine) Construct(q *Query) (*rdf.Graph, error) {
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: Construct called with %s query", q.Form)
	}
	prog, err := compile(q, e.snapshot())
	if err != nil {
		return nil, err
	}
	rows := prog.collectBindings()
	orderRows(q, rows)
	rows = sliceRows(q, rows)
	out := rdf.NewGraph()
	for _, b := range rows {
		for _, tp := range q.Template {
			s, ok1 := instantiate(tp.S, b)
			p, ok2 := instantiate(tp.P, b)
			o, ok3 := instantiate(tp.O, b)
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			t := rdf.T(s, p, o)
			if t.Validate() == nil {
				out.MustAdd(t)
			}
		}
	}
	return out, nil
}

// Query parses and runs src, dispatching on the query form. The results
// are returned as (*Solutions) for SELECT, bool for ASK and *rdf.Graph
// for CONSTRUCT.
func (e *Engine) Query(src string) (any, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch q.Form {
	case FormSelect:
		return e.Select(q)
	case FormAsk:
		return e.Ask(q)
	case FormConstruct:
		return e.Construct(q)
	default:
		return nil, fmt.Errorf("sparql: unknown form %v", q.Form)
	}
}

func instantiate(pt PatternTerm, b Binding) (rdf.Term, bool) {
	if !pt.IsVar() {
		return pt.Term, true
	}
	t, ok := b[pt.Var]
	return t, ok
}

// orderPatterns sorts patterns most-selective-first: patterns with more
// concrete (or already-join-connected) positions come earlier. This is a
// static heuristic; selectivity re-estimation per join step is not needed
// at our scale.
func orderPatterns(ps []TriplePattern) []TriplePattern {
	out := make([]TriplePattern, len(ps))
	copy(out, ps)
	bound := make(map[Var]bool)
	for i := 0; i < len(out); i++ {
		best, bestScore := i, -1
		for j := i; j < len(out); j++ {
			score := 0
			for _, pt := range []PatternTerm{out[j].S, out[j].P, out[j].O} {
				if !pt.IsVar() || bound[pt.Var] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		out[i], out[best] = out[best], out[i]
		for _, v := range out[i].Vars() {
			bound[v] = true
		}
	}
	return out
}

// --- modifiers ---

// orderRows sorts rows by the ORDER BY keys under SPARQL's total order
// (unbound < blank nodes < IRIs < literals); it never fails, even over
// mixed term kinds.
func orderRows(q *Query, rows []Binding) {
	if len(q.OrderBy) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range q.OrderBy {
			vi, ei := k.Expr.Eval(rows[i])
			vj, ej := k.Expr.Eval(rows[j])
			c := orderCompare(vi, ei, vj, ej)
			if c == 0 {
				continue
			}
			if k.Descending {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func projectRows(vars []Var, rows []Binding) []Binding {
	out := make([]Binding, len(rows))
	for i, r := range rows {
		proj := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := r[v]; ok {
				proj[v] = t
			}
		}
		out[i] = proj
	}
	return out
}

func distinctRows(vars []Var, rows []Binding) []Binding {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := r.key(vars)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func sliceRows(q *Query, rows []Binding) []Binding {
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return rows
}

// collectVars gathers every variable mentioned in a group, in first-seen
// order (used for SELECT * and slot assignment).
func collectVars(g *Group) []Var {
	var out []Var
	seen := make(map[Var]bool)
	add := func(vs ...Var) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	var walk func(*Group)
	walk = func(g *Group) {
		for _, el := range g.Elements {
			switch el := el.(type) {
			case BGP:
				for _, tp := range el.Patterns {
					add(tp.Vars()...)
				}
			case Optional:
				walk(el.Group)
			case Union:
				for _, b := range el.Branches {
					walk(b)
				}
			case SubGroup:
				walk(el.Group)
			}
		}
	}
	walk(g)
	return out
}
