package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Engine evaluates parsed queries against an RDF graph.
type Engine struct {
	g *rdf.Graph
}

// NewEngine returns an engine bound to a graph.
func NewEngine(g *rdf.Graph) *Engine { return &Engine{g: g} }

// Select runs a SELECT query and returns its solutions.
func (e *Engine) Select(q *Query) (*Solutions, error) {
	if q.Form != FormSelect {
		return nil, fmt.Errorf("sparql: Select called with %s query", q.Form)
	}
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	var vars []Var
	if q.hasAggregates() {
		// Grouping happens before ORDER/LIMIT so modifiers can reference
		// aggregate outputs.
		rows, err = evalAggregates(q, rows)
		if err != nil {
			return nil, err
		}
		vars = q.aggProjection()
	} else {
		vars = q.Select
		if len(vars) == 0 {
			vars = collectVars(q.Where)
		}
	}
	rows, err = e.applyModifiers(q, rows)
	if err != nil {
		return nil, err
	}
	// Project.
	out := make([]Binding, len(rows))
	for i, r := range rows {
		proj := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := r[v]; ok {
				proj[v] = t
			}
		}
		out[i] = proj
	}
	sol := &Solutions{Vars: vars, Rows: out}
	if q.Distinct {
		sol = distinct(sol)
	}
	return sol, nil
}

// Ask runs an ASK query.
func (e *Engine) Ask(q *Query) (bool, error) {
	if q.Form != FormAsk {
		return false, fmt.Errorf("sparql: Ask called with %s query", q.Form)
	}
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// Construct runs a CONSTRUCT query, returning a new graph built from the
// template. Solutions that would instantiate an invalid triple (e.g. a
// literal subject) are skipped per the SPARQL spec.
func (e *Engine) Construct(q *Query) (*rdf.Graph, error) {
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: Construct called with %s query", q.Form)
	}
	rows, err := e.evalGroup(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}
	rows, err = e.applyModifiers(q, rows)
	if err != nil {
		return nil, err
	}
	out := rdf.NewGraph()
	for _, b := range rows {
		for _, tp := range q.Template {
			s, ok1 := instantiate(tp.S, b)
			p, ok2 := instantiate(tp.P, b)
			o, ok3 := instantiate(tp.O, b)
			if !ok1 || !ok2 || !ok3 {
				continue
			}
			t := rdf.T(s, p, o)
			if t.Validate() == nil {
				out.MustAdd(t)
			}
		}
	}
	return out, nil
}

// Query parses and runs src, dispatching on the query form. The results
// are returned as (*Solutions) for SELECT, bool for ASK and *rdf.Graph
// for CONSTRUCT.
func (e *Engine) Query(src string) (any, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch q.Form {
	case FormSelect:
		return e.Select(q)
	case FormAsk:
		return e.Ask(q)
	case FormConstruct:
		return e.Construct(q)
	default:
		return nil, fmt.Errorf("sparql: unknown form %v", q.Form)
	}
}

func instantiate(pt PatternTerm, b Binding) (rdf.Term, bool) {
	if !pt.IsVar() {
		return pt.Term, true
	}
	t, ok := b[pt.Var]
	return t, ok
}

// --- group evaluation ---

func (e *Engine) evalGroup(g *Group, input []Binding) ([]Binding, error) {
	rows := input
	for _, el := range g.Elements {
		var err error
		switch el := el.(type) {
		case BGP:
			rows, err = e.evalBGP(el, rows)
		case Filter:
			rows = evalFilter(el, rows)
		case Optional:
			rows, err = e.evalOptional(el, rows)
		case Union:
			rows, err = e.evalUnion(el, rows)
		case SubGroup:
			rows, err = e.evalGroup(el.Group, rows)
		default:
			err = fmt.Errorf("sparql: unknown group element %T", el)
		}
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return rows, nil
		}
	}
	return rows, nil
}

// evalBGP joins each triple pattern against the graph. Patterns are
// reordered greedily by estimated selectivity (bound terms count) to keep
// intermediate results small.
func (e *Engine) evalBGP(bgp BGP, input []Binding) ([]Binding, error) {
	patterns := orderPatterns(bgp.Patterns)
	rows := input
	for _, tp := range patterns {
		var next []Binding
		for _, b := range rows {
			matches := e.matchPattern(tp, b)
			next = append(next, matches...)
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// orderPatterns sorts patterns most-selective-first: patterns with more
// concrete (or already-join-connected) positions come earlier. This is a
// static heuristic; selectivity re-estimation per join step is not needed
// at our scale.
func orderPatterns(ps []TriplePattern) []TriplePattern {
	out := make([]TriplePattern, len(ps))
	copy(out, ps)
	bound := make(map[Var]bool)
	for i := 0; i < len(out); i++ {
		best, bestScore := i, -1
		for j := i; j < len(out); j++ {
			score := 0
			for _, pt := range []PatternTerm{out[j].S, out[j].P, out[j].O} {
				if !pt.IsVar() || bound[pt.Var] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		}
		out[i], out[best] = out[best], out[i]
		for _, v := range out[i].Vars() {
			bound[v] = true
		}
	}
	return out
}

// matchPattern matches a single triple pattern under an existing binding.
func (e *Engine) matchPattern(tp TriplePattern, b Binding) []Binding {
	resolve := func(pt PatternTerm) rdf.Term {
		if !pt.IsVar() {
			return pt.Term
		}
		if t, ok := b[pt.Var]; ok {
			return t
		}
		return nil
	}
	s, p, o := resolve(tp.S), resolve(tp.P), resolve(tp.O)
	var out []Binding
	e.g.ForEachMatch(s, p, o, func(t rdf.Triple) bool {
		nb := b.Clone()
		if ok := bindIfVar(nb, tp.S, t.S) && bindIfVar(nb, tp.P, t.P) && bindIfVar(nb, tp.O, t.O); ok {
			out = append(out, nb)
		}
		return true
	})
	return out
}

func bindIfVar(b Binding, pt PatternTerm, t rdf.Term) bool {
	if !pt.IsVar() {
		return true
	}
	if existing, ok := b[pt.Var]; ok {
		return rdf.Equal(existing, t)
	}
	b[pt.Var] = t
	return true
}

func evalFilter(f Filter, rows []Binding) []Binding {
	var out []Binding
	for _, b := range rows {
		v, err := f.Expr.Eval(b)
		if err != nil {
			continue // SPARQL: errors eliminate the solution
		}
		ok, err := v.EBV()
		if err == nil && ok {
			out = append(out, b)
		}
	}
	return out
}

func (e *Engine) evalOptional(o Optional, rows []Binding) ([]Binding, error) {
	var out []Binding
	for _, b := range rows {
		extended, err := e.evalGroup(o.Group, []Binding{b})
		if err != nil {
			return nil, err
		}
		if len(extended) == 0 {
			out = append(out, b)
		} else {
			out = append(out, extended...)
		}
	}
	return out, nil
}

func (e *Engine) evalUnion(u Union, rows []Binding) ([]Binding, error) {
	var out []Binding
	for _, branch := range u.Branches {
		res, err := e.evalGroup(branch, cloneAll(rows))
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

func cloneAll(rows []Binding) []Binding {
	out := make([]Binding, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// --- modifiers ---

func (e *Engine) applyModifiers(q *Query, rows []Binding) ([]Binding, error) {
	if len(q.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range q.OrderBy {
				vi, ei := k.Expr.Eval(rows[i])
				vj, ej := k.Expr.Eval(rows[j])
				// Unbound/error sorts first (SPARQL: lowest).
				switch {
				case ei != nil && ej != nil:
					continue
				case ei != nil:
					return !k.Descending
				case ej != nil:
					return k.Descending
				}
				c, err := compareValues(vi, vj)
				if err != nil {
					sortErr = err
					return false
				}
				if c == 0 {
					continue
				}
				if k.Descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return rows, nil
}

func distinct(s *Solutions) *Solutions {
	seen := make(map[string]bool, len(s.Rows))
	out := make([]Binding, 0, len(s.Rows))
	for _, r := range s.Rows {
		k := r.key(s.Vars)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return &Solutions{Vars: s.Vars, Rows: out}
}

// collectVars gathers every variable mentioned in a group, in first-seen
// order (used for SELECT *).
func collectVars(g *Group) []Var {
	var out []Var
	seen := make(map[Var]bool)
	add := func(vs ...Var) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	var walk func(*Group)
	walk = func(g *Group) {
		for _, el := range g.Elements {
			switch el := el.(type) {
			case BGP:
				for _, tp := range el.Patterns {
					add(tp.Vars()...)
				}
			case Optional:
				walk(el.Group)
			case Union:
				for _, b := range el.Branches {
					walk(b)
				}
			case SubGroup:
				walk(el.Group)
			}
		}
	}
	walk(g)
	return out
}
