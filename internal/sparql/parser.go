package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL query in the supported subset. The returned Query
// carries the prefix environment (seeded from rdf.DefaultPrefixes so the
// middleware's vocabularies are always available).
func Parse(src string) (*Query, error) {
	p := &parser{lex: &lexer{src: src}, q: &Query{
		Prefixes: rdf.DefaultPrefixes(),
		Limit:    -1,
	}}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.q, nil
}

type parser struct {
	lex    *lexer
	peeked *sToken
	q      *Query
	bnode  int
}

func (p *parser) next() (sToken, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lex.next()
}

func (p *parser) peek() (sToken, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return sToken{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: parse: %s", fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != sKeyword || t.text != kw {
		return p.errf("expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) parse() error {
	// Prologue.
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == sKeyword && t.text == "PREFIX" {
			if _, err := p.next(); err != nil {
				return err
			}
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		break
	}

	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != sKeyword {
		return p.errf("expected query form, got %s", t)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "ASK":
		return p.parseAsk()
	case "CONSTRUCT":
		return p.parseConstruct()
	default:
		return p.errf("unsupported query form %s", t.text)
	}
}

func (p *parser) parsePrefix() error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != sPName || !strings.HasSuffix(t.text, ":") {
		return p.errf("expected prefix name, got %s", t)
	}
	prefix := strings.TrimSuffix(t.text, ":")
	iriTok, err := p.next()
	if err != nil {
		return err
	}
	if iriTok.kind != sIRI {
		return p.errf("expected namespace IRI after PREFIX, got %s", iriTok)
	}
	p.q.Prefixes.Bind(prefix, rdf.Namespace(iriTok.text))
	return nil
}

func (p *parser) parseSelect() error {
	p.q.Form = FormSelect
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind == sKeyword && t.text == "DISTINCT" {
		p.q.Distinct = true
		if _, err := p.next(); err != nil {
			return err
		}
	}
	// Projection.
	t, err = p.peek()
	if err != nil {
		return err
	}
	if t.kind == sStar {
		if _, err := p.next(); err != nil {
			return err
		}
	} else {
		for {
			t, err = p.peek()
			if err != nil {
				return err
			}
			if t.kind == sVar {
				p.q.Select = append(p.q.Select, Var(t.text))
				if _, err := p.next(); err != nil {
					return err
				}
				continue
			}
			if t.kind == sLParen {
				if _, err := p.next(); err != nil {
					return err
				}
				agg, err := p.parseAggSelect()
				if err != nil {
					return err
				}
				p.q.Aggregates = append(p.q.Aggregates, agg)
				continue
			}
			break
		}
		if len(p.q.Select) == 0 && len(p.q.Aggregates) == 0 {
			return p.errf("SELECT needs variables, aggregates or *")
		}
	}
	// Optional WHERE keyword.
	t, err = p.peek()
	if err != nil {
		return err
	}
	if t.kind == sKeyword && t.text == "WHERE" {
		if _, err := p.next(); err != nil {
			return err
		}
	}
	g, err := p.parseGroup()
	if err != nil {
		return err
	}
	p.q.Where = g
	if err := p.parseSolutionModifiers(); err != nil {
		return err
	}
	return p.q.validateAggregates()
}

func (p *parser) parseAsk() error {
	p.q.Form = FormAsk
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind == sKeyword && t.text == "WHERE" {
		if _, err := p.next(); err != nil {
			return err
		}
	}
	g, err := p.parseGroup()
	if err != nil {
		return err
	}
	p.q.Where = g
	return p.expectEOF()
}

func (p *parser) parseConstruct() error {
	p.q.Form = FormConstruct
	tmplGroup, err := p.parseGroup()
	if err != nil {
		return err
	}
	// The template must be a pure BGP.
	for _, el := range tmplGroup.Elements {
		bgp, ok := el.(BGP)
		if !ok {
			return p.errf("CONSTRUCT template must contain only triple patterns")
		}
		p.q.Template = append(p.q.Template, bgp.Patterns...)
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return err
	}
	g, err := p.parseGroup()
	if err != nil {
		return err
	}
	p.q.Where = g
	return p.parseSolutionModifiers()
}

func (p *parser) parseSolutionModifiers() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == sEOF {
			return nil
		}
		if t.kind != sKeyword {
			return p.errf("unexpected trailing token %s", t)
		}
		switch t.text {
		case "GROUP":
			if _, err := p.next(); err != nil {
				return err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			for {
				v, err := p.peek()
				if err != nil {
					return err
				}
				if v.kind != sVar {
					break
				}
				p.q.GroupBy = append(p.q.GroupBy, Var(v.text))
				if _, err := p.next(); err != nil {
					return err
				}
			}
			if len(p.q.GroupBy) == 0 {
				return p.errf("GROUP BY needs at least one variable")
			}
		case "ORDER":
			if _, err := p.next(); err != nil {
				return err
			}
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			if err := p.parseOrderKeys(); err != nil {
				return err
			}
		case "LIMIT":
			if _, err := p.next(); err != nil {
				return err
			}
			n, err := p.parseInt()
			if err != nil {
				return err
			}
			p.q.Limit = n
		case "OFFSET":
			if _, err := p.next(); err != nil {
				return err
			}
			n, err := p.parseInt()
			if err != nil {
				return err
			}
			p.q.Offset = n
		default:
			return p.errf("unexpected keyword %s", t.text)
		}
	}
}

func (p *parser) parseInt() (int, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	if t.kind != sNumber {
		return 0, p.errf("expected integer, got %s", t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf("expected non-negative integer, got %q", t.text)
	}
	return n, nil
}

func (p *parser) parseOrderKeys() error {
	for {
		t, err := p.peek()
		if err != nil {
			return err
		}
		switch {
		case t.kind == sVar:
			if _, err := p.next(); err != nil {
				return err
			}
			p.q.OrderBy = append(p.q.OrderBy, OrderKey{Expr: VarExpr{Name: Var(t.text)}})
		case t.kind == sKeyword && (t.text == "ASC" || t.text == "DESC"):
			if _, err := p.next(); err != nil {
				return err
			}
			if tok, err := p.next(); err != nil || tok.kind != sLParen {
				return p.errf("expected ( after %s", t.text)
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			if tok, err := p.next(); err != nil || tok.kind != sRParen {
				return p.errf("expected ) in ORDER BY")
			}
			p.q.OrderBy = append(p.q.OrderBy, OrderKey{Expr: e, Descending: t.text == "DESC"})
		default:
			if len(p.q.OrderBy) == 0 {
				return p.errf("ORDER BY needs at least one key")
			}
			return nil
		}
	}
}

func (p *parser) expectEOF() error {
	t, err := p.peek()
	if err != nil {
		return err
	}
	if t.kind != sEOF {
		return p.errf("unexpected trailing token %s", t)
	}
	return nil
}

// --- group graph patterns ---

func (p *parser) parseGroup() (*Group, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != sLBrace {
		return nil, p.errf("expected {, got %s", t)
	}
	g := &Group{}
	var bgp *BGP
	flush := func() {
		if bgp != nil && len(bgp.Patterns) > 0 {
			g.Elements = append(g.Elements, *bgp)
		}
		bgp = nil
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch {
		case t.kind == sRBrace:
			flush()
			if _, err := p.next(); err != nil {
				return nil, err
			}
			return g, nil
		case t.kind == sEOF:
			return nil, p.errf("unterminated group pattern")
		case t.kind == sKeyword && t.text == "FILTER":
			flush()
			if _, err := p.next(); err != nil {
				return nil, err
			}
			e, err := p.parseBrackettedOrCall()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Filter{Expr: e})
			p.skipDot()
		case t.kind == sKeyword && t.text == "OPTIONAL":
			flush()
			if _, err := p.next(); err != nil {
				return nil, err
			}
			inner, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, Optional{Group: inner})
			p.skipDot()
		case t.kind == sLBrace:
			flush()
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			branches := []*Group{first}
			for {
				t2, err := p.peek()
				if err != nil {
					return nil, err
				}
				if t2.kind == sKeyword && t2.text == "UNION" {
					if _, err := p.next(); err != nil {
						return nil, err
					}
					br, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					branches = append(branches, br)
					continue
				}
				break
			}
			if len(branches) == 1 {
				g.Elements = append(g.Elements, SubGroup{Group: first})
			} else {
				g.Elements = append(g.Elements, Union{Branches: branches})
			}
			p.skipDot()
		default:
			if bgp == nil {
				bgp = &BGP{}
			}
			if err := p.parseTriplesSameSubject(bgp); err != nil {
				return nil, err
			}
		}
	}
}

// skipDot consumes an optional '.' separator.
func (p *parser) skipDot() {
	t, err := p.peek()
	if err == nil && t.kind == sDot {
		_, _ = p.next()
	}
}

// parseTriplesSameSubject parses "subject pred obj (, obj)* (; pred obj...)* .?"
func (p *parser) parseTriplesSameSubject(bgp *BGP) error {
	subj, err := p.parsePatternTerm()
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseVerb()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parsePatternTerm()
			if err != nil {
				return err
			}
			bgp.Patterns = append(bgp.Patterns, TriplePattern{S: subj, P: pred, O: obj})
			t, err := p.peek()
			if err != nil {
				return err
			}
			if t.kind == sComma {
				if _, err := p.next(); err != nil {
					return err
				}
				continue
			}
			break
		}
		t, err := p.peek()
		if err != nil {
			return err
		}
		if t.kind == sSemicolon {
			if _, err := p.next(); err != nil {
				return err
			}
			// allow trailing ';' before '.' or '}'
			t2, err := p.peek()
			if err != nil {
				return err
			}
			if t2.kind == sDot || t2.kind == sRBrace {
				break
			}
			continue
		}
		break
	}
	p.skipDot()
	return nil
}

func (p *parser) parseVerb() (PatternTerm, error) {
	t, err := p.peek()
	if err != nil {
		return PatternTerm{}, err
	}
	if t.kind == sKeyword && t.text == "A" {
		if _, err := p.next(); err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: rdf.RDFType}, nil
	}
	pt, err := p.parsePatternTerm()
	if err != nil {
		return PatternTerm{}, err
	}
	if !pt.IsVar() && pt.Term.Kind() != rdf.KindIRI {
		return PatternTerm{}, p.errf("predicate must be IRI or variable")
	}
	return pt, nil
}

func (p *parser) parsePatternTerm() (PatternTerm, error) {
	t, err := p.next()
	if err != nil {
		return PatternTerm{}, err
	}
	switch t.kind {
	case sVar:
		return PatternTerm{Var: Var(t.text)}, nil
	case sIRI:
		return PatternTerm{Term: rdf.IRI(t.text)}, nil
	case sPName:
		iri, err := p.q.Prefixes.Resolve(t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: iri}, nil
	case sString:
		lit, err := p.finishLiteral(t.text)
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: lit}, nil
	case sNumber:
		return PatternTerm{Term: numberLit(t.text)}, nil
	case sKeyword:
		switch t.text {
		case "TRUE":
			return PatternTerm{Term: rdf.NewBool(true)}, nil
		case "FALSE":
			return PatternTerm{Term: rdf.NewBool(false)}, nil
		}
	}
	return PatternTerm{}, p.errf("expected term, got %s", t)
}

func (p *parser) finishLiteral(text string) (rdf.Literal, error) {
	t, err := p.peek()
	if err != nil {
		return rdf.Literal{}, err
	}
	switch t.kind {
	case sLangTag:
		if _, err := p.next(); err != nil {
			return rdf.Literal{}, err
		}
		return rdf.NewLangLiteral(text, t.text), nil
	case sDTSep:
		if _, err := p.next(); err != nil {
			return rdf.Literal{}, err
		}
		dt, err := p.next()
		if err != nil {
			return rdf.Literal{}, err
		}
		switch dt.kind {
		case sIRI:
			return rdf.NewTypedLiteral(text, rdf.IRI(dt.text)), nil
		case sPName:
			iri, err := p.q.Prefixes.Resolve(dt.text)
			if err != nil {
				return rdf.Literal{}, err
			}
			return rdf.NewTypedLiteral(text, iri), nil
		default:
			return rdf.Literal{}, p.errf("expected datatype after ^^")
		}
	default:
		return rdf.NewLiteral(text), nil
	}
}

func numberLit(text string) rdf.Literal {
	if strings.ContainsAny(text, "eE") {
		return rdf.Literal{Lexical: text, Datatype: rdf.XSDDouble}
	}
	if strings.Contains(text, ".") {
		return rdf.Literal{Lexical: text, Datatype: rdf.XSDDecimal}
	}
	return rdf.Literal{Lexical: text, Datatype: rdf.XSDInteger}
}

// --- expressions ---

// parseBrackettedOrCall parses FILTER's argument: '(' expr ')' or a
// builtin call like REGEX(...).
func (p *parser) parseBrackettedOrCall() (Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == sLParen {
		if _, err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if tok, err := p.next(); err != nil || tok.kind != sRParen {
			return nil, p.errf("expected ) after FILTER expression")
		}
		return e, nil
	}
	if t.kind == sKeyword && builtins[t.text] {
		return p.parsePrimaryExpr()
	}
	return nil, p.errf("FILTER expects ( or a function call, got %s", t)
}

// Precedence climbing: || < && < comparison < additive < multiplicative <
// unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == sOp && t.text == "||" {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: "||", L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == sOp && t.text == "&&" {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: "&&", L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == sOp {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			if _, err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: t.text, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == sOp && (t.text == "+" || t.text == "-") {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if (t.kind == sOp && t.text == "/") || t.kind == sStar {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			op := "/"
			if t.kind == sStar {
				op = "*"
			}
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = BinaryExpr{Op: op, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == sOp && (t.text == "!" || t.text == "-") {
		if _, err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: t.text, X: x}, nil
	}
	return p.parsePrimaryExpr()
}

func (p *parser) parsePrimaryExpr() (Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case sLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if tok, err := p.next(); err != nil || tok.kind != sRParen {
			return nil, p.errf("expected )")
		}
		return e, nil
	case sVar:
		return VarExpr{Name: Var(t.text)}, nil
	case sIRI:
		return ConstExpr{Term: rdf.IRI(t.text)}, nil
	case sPName:
		iri, err := p.q.Prefixes.Resolve(t.text)
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: iri}, nil
	case sString:
		lit, err := p.finishLiteral(t.text)
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: lit}, nil
	case sNumber:
		return ConstExpr{Term: numberLit(t.text)}, nil
	case sKeyword:
		switch {
		case t.text == "TRUE":
			return ConstExpr{Term: rdf.NewBool(true)}, nil
		case t.text == "FALSE":
			return ConstExpr{Term: rdf.NewBool(false)}, nil
		case builtins[t.text]:
			return p.parseCall(t.text)
		}
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func (p *parser) parseCall(name string) (Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != sLParen {
		return nil, p.errf("expected ( after %s", name)
	}
	var args []Expr
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == sRParen {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			return FuncExpr{Name: name, Args: args}, nil
		}
		if len(args) > 0 {
			if t.kind != sComma {
				return nil, p.errf("expected , in %s arguments, got %s", name, t)
			}
			if _, err := p.next(); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
}
