package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// This file implements the streaming, dictionary-encoded query executor.
//
// A parsed WHERE clause is compiled once per evaluation into a chain of
// operators that push rows of term IDs ([]rdf.ID, one slot per variable,
// 0 = unbound) from the graph snapshot towards a sink. Joins happen
// directly over IDs: each triple pattern either probes the snapshot's
// sorted indexes with its bound components (index nested-loop join) or —
// once enough rows have streamed through to amortize the build — scans
// its constant-bound range once into a hash table keyed by the shared
// (join) variables and probes that (hash join). IDs are decoded back to
// terms only at FILTER evaluation and at the projection boundary.
//
// The operator chain uses no per-row closures: every operator holds a
// pointer to the next one, and pattern operators reuse a pre-bound
// callback, so a row flowing through the chain allocates nothing.

// compile errors surface at plan time; the run itself cannot fail.
func compile(q *Query, snap *rdf.Snapshot) (*program, error) {
	p := &program{
		snap:  snap,
		slots: make(map[Var]int),
	}
	for _, v := range collectVars(q.Where) {
		p.slots[v] = len(p.varOf)
		p.varOf = append(p.varOf, v)
	}
	bound := make(map[int]bool)
	root, err := p.compileGroup(q.Where, bound)
	if err != nil {
		return nil, err
	}
	p.root = root
	return p, nil
}

// program is a compiled query: variable slot assignment plus the
// operator tree template.
type program struct {
	snap  *rdf.Snapshot
	slots map[Var]int
	varOf []Var
	root  *cGroup
}

// --- compiled (immutable) plan nodes ---

type cNode interface{ isNode() }

type cGroup struct{ elems []cNode }

func (*cGroup) isNode() {}

type cBGP struct{ pats []*cPattern }

func (*cBGP) isNode() {}

type cFilter struct{ expr Expr }

func (*cFilter) isNode() {}

type cOptional struct{ group *cGroup }

func (*cOptional) isNode() {}

type cUnion struct{ branches []*cGroup }

func (*cUnion) isNode() {}

// cPos is one compiled triple-pattern position.
type cPos struct {
	slot    int    // variable slot, or -1 for a constant
	id      rdf.ID // constant's dictionary ID (0 when missing or var)
	missing bool   // constant term absent from the dictionary
	always  bool   // variable slot definitely bound when this pattern runs
}

type cPattern struct {
	s, p, o cPos
	// keySlots are the definitely-bound variable positions — the join
	// key a hash join builds on. pos is 0/1/2 for S/P/O.
	keySlots []struct{ pos, slot int }
	// anyMissing marks a pattern that can never match this snapshot.
	anyMissing bool
}

func (p *program) compileGroup(g *Group, bound map[int]bool) (*cGroup, error) {
	out := &cGroup{}
	for _, el := range g.Elements {
		switch el := el.(type) {
		case BGP:
			out.elems = append(out.elems, p.compileBGP(el, bound))
		case Filter:
			out.elems = append(out.elems, &cFilter{expr: el.Expr})
		case Optional:
			inner, err := p.compileGroup(el.Group, copyBound(bound))
			if err != nil {
				return nil, err
			}
			out.elems = append(out.elems, &cOptional{group: inner})
		case Union:
			u := &cUnion{}
			var common map[int]bool
			for _, br := range el.Branches {
				bb := copyBound(bound)
				cb, err := p.compileGroup(br, bb)
				if err != nil {
					return nil, err
				}
				u.branches = append(u.branches, cb)
				if common == nil {
					common = bb
				} else {
					for s := range common {
						if !bb[s] {
							delete(common, s)
						}
					}
				}
			}
			for s := range common {
				bound[s] = true
			}
			out.elems = append(out.elems, u)
		case SubGroup:
			inner, err := p.compileGroup(el.Group, bound)
			if err != nil {
				return nil, err
			}
			out.elems = append(out.elems, inner)
		default:
			return nil, fmt.Errorf("sparql: unknown group element %T", el)
		}
	}
	return out, nil
}

func copyBound(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func (p *program) compileBGP(bgp BGP, bound map[int]bool) *cBGP {
	out := &cBGP{}
	for _, tp := range orderPatterns(bgp.Patterns) {
		cp := &cPattern{
			s: p.compilePos(tp.S, bound),
			p: p.compilePos(tp.P, bound),
			o: p.compilePos(tp.O, bound),
		}
		cp.anyMissing = cp.s.missing || cp.p.missing || cp.o.missing
		for i, pos := range [3]cPos{cp.s, cp.p, cp.o} {
			if pos.slot >= 0 && pos.always {
				cp.keySlots = append(cp.keySlots, struct{ pos, slot int }{i, pos.slot})
			}
		}
		out.pats = append(out.pats, cp)
		// Every variable of the pattern is definitely bound afterwards.
		for _, v := range tp.Vars() {
			bound[p.slots[v]] = true
		}
	}
	return out
}

func (p *program) compilePos(pt PatternTerm, bound map[int]bool) cPos {
	if pt.IsVar() {
		slot := p.slots[pt.Var]
		return cPos{slot: slot, always: bound[slot]}
	}
	id, ok := p.snap.LookupID(pt.Term)
	return cPos{slot: -1, id: id, missing: !ok}
}

// --- runtime operators ---

// runner carries the mutable row shared by the whole operator chain.
type runner struct {
	row []rdf.ID
}

type op interface {
	// feed processes the runner's current row, invoking downstream
	// operators for every produced solution. It must leave the row
	// exactly as it found it, and returns false to abort the run.
	feed(r *runner) bool
}

// sinkOp terminates a chain with an arbitrary consumer. The row passed
// to fn is live — the consumer must copy what it keeps.
type sinkOp struct {
	r  *runner
	fn func(row []rdf.ID) bool
}

func (s *sinkOp) feed(*runner) bool { return s.fn(s.r.row) }

// run pushes the single empty seed row through the compiled tree into
// sink, which is called once per solution with the runner's row live.
func (p *program) run(sink func(row []rdf.ID) bool) {
	r := &runner{row: make([]rdf.ID, len(p.varOf))}
	head := buildChain(p, p.root.elems, &sinkOp{r: r, fn: sink})
	head.feed(r)
}

// buildChain materializes fresh operator state for one evaluation.
func buildChain(p *program, elems []cNode, next op) op {
	for i := len(elems) - 1; i >= 0; i-- {
		switch el := elems[i].(type) {
		case *cBGP:
			for j := len(el.pats) - 1; j >= 0; j-- {
				next = newPatOp(p, el.pats[j], next)
			}
		case *cFilter:
			next = &filterOp{prog: p, expr: el.expr, next: next, scratch: make(Binding)}
		case *cOptional:
			o := &optOp{next: next}
			o.inner = buildChain(p, el.group.elems, &optSink{o: o})
			next = o
		case *cUnion:
			u := &unionOp{next: next}
			for _, br := range el.branches {
				u.heads = append(u.heads, buildChain(p, br.elems, &unionSink{u: u}))
			}
			next = u
		case *cGroup:
			next = buildChain(p, el.elems, next)
		}
	}
	return next
}

// --- triple pattern operator ---

// hashBuildAfter and hashCostDivisor tune the adaptive join: a pattern
// operator starts as an index nested-loop join (binary search per input
// row) and switches to a hash join — one scan of its constant-bound
// range, hashed on the join variables — once the rows already streamed
// through would have amortized the build (calls > range/divisor).
const (
	hashProbeMin    = 8
	hashCostDivisor = 64
)

type patOp struct {
	prog *program
	pat  *cPattern
	next op

	// adaptive join state
	calls     int
	rangeSize int // -1 until measured
	hash      map[[3]rdf.ID][]rdf.IDTriple
	built     bool

	// pre-bound callback state (no per-row closures)
	r       *runner
	ok      bool
	cb      func(rdf.IDTriple) bool
	scratch [3]int // slots bound by the current triple, -1 terminated
}

func newPatOp(p *program, pat *cPattern, next op) op {
	o := &patOp{prog: p, pat: pat, next: next, rangeSize: -1}
	o.cb = o.bindTriple
	return o
}

func (o *patOp) feed(r *runner) bool {
	if o.pat.anyMissing {
		return true // pattern can never match: zero solutions, keep going
	}
	o.calls++
	if !o.built && len(o.pat.keySlots) > 0 && o.calls >= hashProbeMin {
		if o.rangeSize < 0 {
			o.rangeSize = o.prog.snap.CountID(o.constPattern())
		}
		if o.calls > o.rangeSize/hashCostDivisor+2*hashProbeMin {
			o.build()
		}
	}
	o.r, o.ok = r, true
	if o.built {
		var key [3]rdf.ID
		for i, ks := range o.pat.keySlots {
			key[i] = r.row[ks.slot]
		}
		for _, t := range o.hash[key] {
			if !o.cb(t) {
				break
			}
		}
	} else {
		sv, pv, ov := o.resolve(r)
		o.prog.snap.ForEachMatchID(sv, pv, ov, o.cb)
	}
	o.r = nil
	return o.ok
}

// constPattern returns the pattern with only its constants bound.
func (o *patOp) constPattern() (rdf.ID, rdf.ID, rdf.ID) {
	var s, p, q rdf.ID
	if o.pat.s.slot < 0 {
		s = o.pat.s.id
	}
	if o.pat.p.slot < 0 {
		p = o.pat.p.id
	}
	if o.pat.o.slot < 0 {
		q = o.pat.o.id
	}
	return s, p, q
}

// resolve returns the pattern with constants and currently-bound
// variables filled in, for an index lookup.
func (o *patOp) resolve(r *runner) (rdf.ID, rdf.ID, rdf.ID) {
	get := func(pos cPos) rdf.ID {
		if pos.slot < 0 {
			return pos.id
		}
		return r.row[pos.slot]
	}
	return get(o.pat.s), get(o.pat.p), get(o.pat.o)
}

// build scans the constant-bound range once and hashes it on the join
// key, so every further input row probes in O(1).
func (o *patOp) build() {
	o.hash = make(map[[3]rdf.ID][]rdf.IDTriple)
	s, p, q := o.constPattern()
	o.prog.snap.ForEachMatchID(s, p, q, func(t rdf.IDTriple) bool {
		var key [3]rdf.ID
		for i, ks := range o.pat.keySlots {
			key[i] = component(t, ks.pos)
		}
		o.hash[key] = append(o.hash[key], t)
		return true
	})
	o.built = true
}

func component(t rdf.IDTriple, pos int) rdf.ID {
	switch pos {
	case 0:
		return t.S
	case 1:
		return t.P
	default:
		return t.O
	}
}

// bindTriple extends the current row with one matching triple, forwards
// it downstream, and backtracks. It is the pre-bound callback for both
// index scans and hash probes.
func (o *patOp) bindTriple(t rdf.IDTriple) bool {
	r := o.r
	n := 0
	for i, pos := range [3]cPos{o.pat.s, o.pat.p, o.pat.o} {
		if pos.slot < 0 {
			continue // constants match by construction of scan and build
		}
		v := component(t, i)
		if cur := r.row[pos.slot]; cur != 0 {
			if cur != v {
				// Join mismatch on a repeated or maybe-bound variable.
				for j := 0; j < n; j++ {
					r.row[o.scratch[j]] = 0
				}
				return true
			}
			continue
		}
		r.row[pos.slot] = v
		o.scratch[n] = pos.slot
		n++
	}
	ok := o.next.feed(r)
	for j := 0; j < n; j++ {
		r.row[o.scratch[j]] = 0
	}
	if !ok {
		o.ok = false
		return false
	}
	return true
}

// --- filter operator ---

type filterOp struct {
	prog    *program
	expr    Expr
	next    op
	scratch Binding
}

func (f *filterOp) feed(r *runner) bool {
	clear(f.scratch)
	f.prog.decodeInto(r.row, f.scratch)
	v, err := f.expr.Eval(f.scratch)
	if err != nil {
		return true // SPARQL: errors eliminate the solution
	}
	if ok, err := v.EBV(); err != nil || !ok {
		return true
	}
	return f.next.feed(r)
}

// --- optional (left join) operator ---

type optOp struct {
	inner   op
	next    op
	matched bool
}

func (o *optOp) feed(r *runner) bool {
	o.matched = false
	if !o.inner.feed(r) {
		return false
	}
	if !o.matched {
		return o.next.feed(r)
	}
	return true
}

type optSink struct{ o *optOp }

func (s *optSink) feed(r *runner) bool {
	s.o.matched = true
	return s.o.next.feed(r)
}

// --- union operator ---

type unionOp struct {
	heads []op
	next  op
}

func (u *unionOp) feed(r *runner) bool {
	for _, h := range u.heads {
		if !h.feed(r) {
			return false
		}
	}
	return true
}

type unionSink struct{ u *unionOp }

func (s *unionSink) feed(r *runner) bool { return s.u.next.feed(r) }

// --- decode boundary ---

// decodeInto translates a row of IDs into a term binding.
func (p *program) decodeInto(row []rdf.ID, b Binding) {
	for slot, id := range row {
		if id != 0 {
			b[p.varOf[slot]] = p.snap.TermOf(id)
		}
	}
}

// collectBindings materializes every solution as a term-level Binding
// (used by the ORDER BY, aggregate and CONSTRUCT paths, which need the
// whole result set anyway).
func (p *program) collectBindings() []Binding {
	var out []Binding
	p.run(func(row []rdf.ID) bool {
		b := make(Binding, len(row))
		p.decodeInto(row, b)
		out = append(out, b)
		return true
	})
	return out
}
