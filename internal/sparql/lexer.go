package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// sTokKind enumerates SPARQL token kinds.
type sTokKind int

const (
	sEOF     sTokKind = iota + 1
	sVar              // ?name
	sIRI              // <...>
	sPName            // prefix:local or prefix:
	sKeyword          // SELECT, WHERE, FILTER, ... (upper-cased in text)
	sString           // quoted literal (unescaped text)
	sLangTag          // @en
	sDTSep            // ^^
	sNumber
	sLBrace
	sRBrace
	sLParen
	sRParen
	sDot
	sSemicolon
	sComma
	sStar
	sOp // = != < <= > >= && || ! + - /
)

type sToken struct {
	kind sTokKind
	text string
	pos  int
}

func (t sToken) String() string {
	if t.kind == sEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// sparql keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "WHERE": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "PREFIX": true,
	"BASE": true, "DISTINCT": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"A": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"AS": true, "GROUP": true,
}

// builtin function names (recognized as keywords that start calls).
var builtins = map[string]bool{
	"BOUND": true, "REGEX": true, "STR": true, "LANG": true,
	"DATATYPE": true, "ISIRI": true, "ISURI": true, "ISLITERAL": true,
	"ISBLANK": true, "CONTAINS": true, "STRSTARTS": true, "STRENDS": true,
	"LCASE": true, "UCASE": true, "STRLEN": true, "ABS": true,
	"SAMETERM": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: position %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		if r == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(r) {
			return
		}
		l.pos += w
	}
}

func (l *lexer) next() (sToken, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return sToken{kind: sEOF, pos: start}, nil
	}
	r, w := l.peekRune()
	switch r {
	case '{':
		l.pos += w
		return sToken{kind: sLBrace, text: "{", pos: start}, nil
	case '}':
		l.pos += w
		return sToken{kind: sRBrace, text: "}", pos: start}, nil
	case '(':
		l.pos += w
		return sToken{kind: sLParen, text: "(", pos: start}, nil
	case ')':
		l.pos += w
		return sToken{kind: sRParen, text: ")", pos: start}, nil
	case ';':
		l.pos += w
		return sToken{kind: sSemicolon, text: ";", pos: start}, nil
	case ',':
		l.pos += w
		return sToken{kind: sComma, text: ",", pos: start}, nil
	case '*':
		l.pos += w
		return sToken{kind: sStar, text: "*", pos: start}, nil
	case '.':
		// ".5" is a number
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.lexNumber()
		}
		l.pos += w
		return sToken{kind: sDot, text: ".", pos: start}, nil
	case '?', '$':
		l.pos += w
		name := l.lexName()
		if name == "" {
			return sToken{}, l.errf("empty variable name")
		}
		return sToken{kind: sVar, text: name, pos: start}, nil
	case '<':
		// IRI or operator.
		if l.pos+1 < len(l.src) {
			c := l.src[l.pos+1]
			if c == '=' {
				l.pos += 2
				return sToken{kind: sOp, text: "<=", pos: start}, nil
			}
			if c == ' ' || c == '?' || c == '\t' || c == '\n' {
				l.pos++
				return sToken{kind: sOp, text: "<", pos: start}, nil
			}
		}
		return l.lexIRI()
	case '>':
		l.pos += w
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return sToken{kind: sOp, text: ">=", pos: start}, nil
		}
		return sToken{kind: sOp, text: ">", pos: start}, nil
	case '=':
		l.pos += w
		return sToken{kind: sOp, text: "=", pos: start}, nil
	case '!':
		l.pos += w
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return sToken{kind: sOp, text: "!=", pos: start}, nil
		}
		return sToken{kind: sOp, text: "!", pos: start}, nil
	case '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return sToken{kind: sOp, text: "&&", pos: start}, nil
		}
		return sToken{}, l.errf("lone '&'")
	case '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return sToken{kind: sOp, text: "||", pos: start}, nil
		}
		return sToken{}, l.errf("lone '|'")
	case '+':
		l.pos += w
		return sToken{kind: sOp, text: "+", pos: start}, nil
	case '-':
		l.pos += w
		// negative number literal
		if l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			tok, err := l.lexNumber()
			if err != nil {
				return tok, err
			}
			tok.text = "-" + tok.text
			tok.pos = start
			return tok, nil
		}
		return sToken{kind: sOp, text: "-", pos: start}, nil
	case '/':
		l.pos += w
		return sToken{kind: sOp, text: "/", pos: start}, nil
	case '^':
		if strings.HasPrefix(l.src[l.pos:], "^^") {
			l.pos += 2
			return sToken{kind: sDTSep, text: "^^", pos: start}, nil
		}
		return sToken{}, l.errf("lone '^'")
	case '"', '\'':
		return l.lexString(byte(r))
	case '@':
		l.pos += w
		tag := l.lexName()
		if tag == "" {
			return sToken{}, l.errf("empty language tag")
		}
		return sToken{kind: sLangTag, text: strings.ToLower(tag), pos: start}, nil
	}
	if r >= '0' && r <= '9' {
		return l.lexNumber()
	}
	if unicode.IsLetter(r) || r == '_' {
		word := l.lexName()
		// prefixed name?
		if l.pos < len(l.src) && l.src[l.pos] == ':' {
			l.pos++
			local := l.lexLocalName()
			return sToken{kind: sPName, text: word + ":" + local, pos: start}, nil
		}
		upper := strings.ToUpper(word)
		if keywords[upper] || builtins[upper] {
			return sToken{kind: sKeyword, text: upper, pos: start}, nil
		}
		return sToken{}, l.errf("unexpected word %q", word)
	}
	if r == ':' {
		// default-prefix pname
		l.pos += w
		local := l.lexLocalName()
		return sToken{kind: sPName, text: ":" + local, pos: start}, nil
	}
	return sToken{}, l.errf("unexpected character %q", r)
}

func (l *lexer) lexName() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.pos += w
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

// lexLocalName allows '-' and '.' (not trailing) in addition to name runes.
func (l *lexer) lexLocalName() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			l.pos += w
			continue
		}
		if r == '.' {
			// Only continue when followed by a name rune (else it is the
			// triple terminator).
			if l.pos+w < len(l.src) {
				nr, _ := utf8.DecodeRuneInString(l.src[l.pos+w:])
				if unicode.IsLetter(nr) || unicode.IsDigit(nr) || nr == '_' {
					l.pos += w
					continue
				}
			}
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIRI() (sToken, error) {
	start := l.pos
	l.pos++ // consume '<'
	var b strings.Builder
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		l.pos += w
		switch r {
		case '>':
			return sToken{kind: sIRI, text: b.String(), pos: start}, nil
		case '\n':
			return sToken{}, l.errf("newline in IRI")
		default:
			b.WriteRune(r)
		}
	}
	return sToken{}, l.errf("unterminated IRI")
}

func (l *lexer) lexString(quote byte) (sToken, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return sToken{kind: sString, text: b.String(), pos: start}, nil
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return sToken{}, l.errf("dangling escape")
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			default:
				return sToken{}, l.errf("invalid escape \\%c", l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			return sToken{}, l.errf("newline in string")
		}
		b.WriteByte(c)
		l.pos++
	}
	return sToken{}, l.errf("unterminated string")
}

func (l *lexer) lexNumber() (sToken, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// trailing dot = statement terminator
			if l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
				return sToken{kind: sNumber, text: l.src[start:l.pos], pos: start}, nil
			}
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return sToken{kind: sNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return sToken{kind: sNumber, text: l.src[start:l.pos], pos: start}, nil
}
