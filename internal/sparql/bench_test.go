package sparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// benchSensorGraph builds a synthetic sensor-description graph of about
// nTriples triples (4 per sensor): type, observed property, district and
// a numeric reading.
func benchSensorGraph(b *testing.B, nTriples int) *rdf.Graph {
	b.Helper()
	ns := rdf.Namespace("http://bench.example/")
	sensorClass := ns.IRI("Sensor")
	observes := ns.IRI("observes")
	inDistrict := ns.IRI("inDistrict")
	value := ns.IRI("value")
	props := make([]rdf.IRI, 10)
	for i := range props {
		props[i] = ns.IRI(fmt.Sprintf("prop%d", i))
	}
	districts := make([]rdf.IRI, 100)
	for i := range districts {
		districts[i] = ns.IRI(fmt.Sprintf("district%d", i))
	}
	g := rdf.NewGraph()
	for i := 0; i < nTriples/4; i++ {
		s := ns.IRI(fmt.Sprintf("sensor%d", i))
		g.MustAdd(rdf.T(s, rdf.RDFType, sensorClass))
		g.MustAdd(rdf.T(s, observes, props[i%len(props)]))
		g.MustAdd(rdf.T(s, inDistrict, districts[i%len(districts)]))
		g.MustAdd(rdf.T(s, value, rdf.NewFloat(float64(i%1000))))
	}
	return g
}

// benchJoinQuery is a 4-pattern join plus numeric FILTER: "sensors for
// property prop3 in district13 with a high reading". district13 sensors
// are a subset of prop3 sensors (i%100==13 implies i%10==3) so every
// pattern narrows the result.
const benchJoinQuery = `
PREFIX ex: <http://bench.example/>
SELECT ?s ?v WHERE {
  ?s a ex:Sensor .
  ?s ex:observes ex:prop3 .
  ?s ex:inDistrict ex:district13 .
  ?s ex:value ?v .
  FILTER(?v >= 500)
}`

func benchSPARQLJoin(b *testing.B, nTriples int) {
	g := benchSensorGraph(b, nTriples)
	q, err := Parse(benchJoinQuery)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(g)
	// Sanity: the query must actually select something.
	sol, err := e.Select(q)
	if err != nil {
		b.Fatal(err)
	}
	if nTriples >= 100_000 && len(sol.Rows) == 0 {
		b.Fatal("benchmark query selects nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARQLJoin1k(b *testing.B)   { benchSPARQLJoin(b, 1_000) }
func BenchmarkSPARQLJoin100k(b *testing.B) { benchSPARQLJoin(b, 100_000) }
