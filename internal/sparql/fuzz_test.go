package sparql

import (
	"testing"

	"repro/internal/rdf"
)

// FuzzParseQuery feeds arbitrary input to the SPARQL parser: it must
// either return an error or produce a query that the executor can
// compile — never panic or hang. Queries that parse are additionally
// compiled against a tiny snapshot so plan-time code is fuzzed too
// (compilation is linear in the query; evaluation is deliberately not
// run, since a parsed cross join can be exponential).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`SELECT ?s WHERE { ?s ?p ?o . }`,
		`PREFIX ex: <http://example.org/> SELECT DISTINCT ?s ?v WHERE { ?s a ex:Sensor . ?s ex:value ?v . FILTER(?v > 1 && ?v < 20) } ORDER BY DESC(?v) LIMIT 5 OFFSET 2`,
		`SELECT ?s WHERE { { ?s a <http://x/A> . } UNION { ?s a <http://x/B> . } }`,
		`SELECT ?s ?l WHERE { ?s <http://x/p> ?v . OPTIONAL { ?s <http://x/label> ?l . } }`,
		`ASK { ?s <http://x/p> "lit"@en . }`,
		`CONSTRUCT { ?s <http://x/q> ?o . } WHERE { ?s <http://x/p> ?o . }`,
		`PREFIX ex: <http://example.org/> SELECT ?d (COUNT(?s) AS ?n) (AVG(?v) AS ?mean) WHERE { ?s ex:in ?d . ?s ex:v ?v . } GROUP BY ?d`,
		`SELECT ?s WHERE { ?s ?p ?o . FILTER REGEX(STR(?o), "^a.*b$", "i") }`,
		`SELECT ?s WHERE { ?s ?p "x\"y\\z" . }`,
		`SELECT ?s WHERE { ?s ?p 3.25e-2 . FILTER(BOUND(?s) || !ISBLANK(?s)) }`,
		"SELECT * WHERE { ?s ?p ?o . } # comment\n",
		`select ?s where { ?s a [] . }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	tiny := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	tiny.MustAdd(rdf.T(ex.IRI("s"), ex.IRI("p"), rdf.NewInt(1)))
	snap := tiny.Snapshot()

	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query without error")
		}
		if q.Where == nil {
			t.Fatal("parsed query has nil WHERE group")
		}
		if _, err := compile(q, snap); err != nil {
			t.Fatalf("parsed query failed to compile: %v", err)
		}
	})
}
