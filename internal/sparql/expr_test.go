package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func evalExprStr(t *testing.T, expr string, b Binding) (Value, error) {
	t.Helper()
	// Wrap the expression in a throwaway query to reuse the parser.
	q, err := Parse(`SELECT ?s WHERE { ?s ?p ?o . FILTER(` + expr + `) }`)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	filter := findFilter(t, q.Where)
	return filter.Expr.Eval(b)
}

func findFilter(t *testing.T, g *Group) Filter {
	t.Helper()
	for _, el := range g.Elements {
		if f, ok := el.(Filter); ok {
			return f
		}
	}
	t.Fatal("no filter found")
	return Filter{}
}

func TestExprArithmeticAndLogic(t *testing.T) {
	b := Binding{"x": rdf.NewInt(10), "y": rdf.NewFloat(2.5)}
	cases := []struct {
		expr string
		want bool
	}{
		{"?x + ?y = 12.5", true},
		{"?x - ?y > 7", true},
		{"?x * 2 = 20", true},
		{"?x / 4 = 2.5", true},
		{"-?y < 0", true},
		{"!(?x < 5)", true},
		{"?x > 5 && ?y > 5", false},
		{"?x > 5 || ?y > 5", true},
		{"?x != 10", false},
		{"?x <= 10 && ?x >= 10", true},
	}
	for _, c := range cases {
		t.Run(c.expr, func(t *testing.T) {
			v, err := evalExprStr(t, c.expr, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.EBV()
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("%s = %v, want %v", c.expr, got, c.want)
			}
		})
	}
}

func TestExprErrorCases(t *testing.T) {
	b := Binding{"iri": rdf.IRI("http://x/a"), "s": rdf.NewLiteral("abc")}
	cases := []string{
		"?unbound > 1",       // unbound variable
		"?iri + 1 > 0",       // IRI is not numeric
		"?s * 2 = 4",         // string arithmetic
		"1 / 0 = 1",          // division by zero
		"LANG(?iri) = \"\"",  // LANG on IRI
		"DATATYPE(?iri) = 1", // DATATYPE on IRI
	}
	for _, expr := range cases {
		t.Run(expr, func(t *testing.T) {
			if _, err := evalExprStr(t, expr, b); err == nil {
				t.Errorf("%s should error", expr)
			}
		})
	}
}

func TestExprOrTrueBeatsError(t *testing.T) {
	// SPARQL: error || true = true.
	b := Binding{"x": rdf.NewInt(1)}
	v, err := evalExprStr(t, "?unbound > 1 || ?x = 1", b)
	if err != nil {
		t.Fatalf("true branch should rescue the OR: %v", err)
	}
	if ok, _ := v.EBV(); !ok {
		t.Error("OR should be true")
	}
	// error && false = false.
	v, err = evalExprStr(t, "?unbound > 1 && ?x = 2", b)
	if err != nil {
		t.Fatalf("false branch should rescue the AND: %v", err)
	}
	if ok, _ := v.EBV(); ok {
		t.Error("AND should be false")
	}
	// error || false = error.
	if _, err := evalExprStr(t, "?unbound > 1 || ?x = 2", b); err == nil {
		t.Error("error||false must propagate the error")
	}
}

func TestEBVRules(t *testing.T) {
	cases := []struct {
		val     Value
		want    bool
		wantErr bool
	}{
		{termValue(rdf.NewBool(true)), true, false},
		{termValue(rdf.NewBool(false)), false, false},
		{termValue(rdf.NewInt(0)), false, false},
		{termValue(rdf.NewInt(3)), true, false},
		{termValue(rdf.NewLiteral("")), false, false},
		{termValue(rdf.NewLiteral("x")), true, false},
		{termValue(rdf.NewLangLiteral("x", "en")), true, false},
		{termValue(rdf.IRI("http://x")), false, true},
		{termValue(rdf.BlankNode("b")), false, true},
		{numValue(0), false, false},
		{numValue(1.5), true, false},
		{strValue(""), false, false},
		{strValue("y"), true, false},
		{boolValue(true), true, false},
		{termValue(rdf.NewTypedLiteral("zzz", rdf.XSDInteger)), false, true}, // malformed numeric
		{Value{}, false, true},                                               // empty value
	}
	for i, c := range cases {
		got, err := c.val.EBV()
		if (err != nil) != c.wantErr {
			t.Errorf("case %d: err = %v, wantErr %v", i, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("case %d: EBV = %v, want %v", i, got, c.want)
		}
	}
}

func TestExprStringFunctions(t *testing.T) {
	b := Binding{"l": rdf.NewLangLiteral("Drought Watch", "en")}
	cases := []struct {
		expr string
		want bool
	}{
		{`STRLEN(?l) = 13`, true},
		{`UCASE(?l) = "DROUGHT WATCH"`, true},
		{`LCASE(?l) = "drought watch"`, true},
		{`CONTAINS(?l, "Watch")`, true},
		{`STRSTARTS(STR(?l), "Drought")`, true},
		{`STRENDS(?l, "Watch")`, true},
		{`ABS(-3) = 3`, true},
		{`SAMETERM(?l, ?l)`, true},
		{`SAMETERM(?l, "Drought Watch")`, false}, // lang tag differs
		{`ISLITERAL(?l)`, true},
		{`ISBLANK(?l)`, false},
		{`ISIRI(?l)`, false},
		{`BOUND(?l)`, true},
		{`!BOUND(?nope)`, true},
	}
	for _, c := range cases {
		t.Run(c.expr, func(t *testing.T) {
			v, err := evalExprStr(t, c.expr, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := v.EBV()
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("%s = %v, want %v", c.expr, got, c.want)
			}
		})
	}
}

func TestExprFunctionArity(t *testing.T) {
	b := Binding{"x": rdf.NewInt(1)}
	bad := []string{
		`STRLEN(?x, ?x) = 1`,
		`REGEX(?x) `,
		`CONTAINS(?x) `,
		`BOUND(1)`,
	}
	for _, expr := range bad {
		if _, err := evalExprStr(t, expr, b); err == nil {
			t.Errorf("%s should error", expr)
		}
	}
	if _, err := Parse(`SELECT ?s WHERE { ?s ?p ?o . FILTER(NOSUCHFN(?s)) }`); err == nil {
		t.Error("unknown function should fail at parse")
	}
}

func TestExprRegexFlags(t *testing.T) {
	b := Binding{"l": rdf.NewLiteral("Sifennefene")}
	v, err := evalExprStr(t, `REGEX(?l, "^sifen", "i")`, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := v.EBV(); !ok {
		t.Error("case-insensitive regex should match")
	}
	if _, err := evalExprStr(t, `REGEX(?l, "([")`, b); err == nil {
		t.Error("bad regex should error")
	}
}

func TestExprStrings(t *testing.T) {
	// Exercise the String() renderings for diagnostics.
	q, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s ex:p ?o .
  FILTER(?o > 1 && REGEX(STR(?s), "x") || !BOUND(?z))
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := findFilter(t, q.Where)
	s := f.Expr.String()
	for _, frag := range []string{"?o", ">", "REGEX", "STR", "BOUND", "||", "&&", "!"} {
		if !strings.Contains(s, frag) {
			t.Errorf("expr string %q missing %q", s, frag)
		}
	}
	// Pattern term and triple pattern strings.
	bgp := q.Where.Elements[0].(BGP)
	ts := bgp.Patterns[0].String()
	if !strings.Contains(ts, "?s") || !strings.Contains(ts, "<http://example.org/p>") {
		t.Errorf("pattern string = %q", ts)
	}
}

func TestSolutionsSortedVars(t *testing.T) {
	s := &Solutions{Vars: []Var{"z", "a", "m"}}
	sorted := s.SortedVars()
	if sorted[0] != "a" || sorted[2] != "z" {
		t.Errorf("SortedVars = %v", sorted)
	}
	// Original untouched.
	if s.Vars[0] != "z" {
		t.Error("SortedVars must not mutate")
	}
}

func TestValueCoercions(t *testing.T) {
	if _, err := (Value{Kind: KindBool, Bool: true}).asNum(); err != nil {
		t.Error("bool should coerce to num")
	}
	if s, err := (Value{Kind: KindNum, Num: 2.5}).asStr(); err != nil || s != "2.5" {
		t.Errorf("num asStr = %q, %v", s, err)
	}
	if s, err := (Value{Kind: KindBool, Bool: false}).asStr(); err != nil || s != "false" {
		t.Errorf("bool asStr = %q, %v", s, err)
	}
	if s, err := termValue(rdf.IRI("http://x")).asStr(); err != nil || s != "http://x" {
		t.Errorf("iri asStr = %q, %v", s, err)
	}
	if _, err := (Value{}).asStr(); err == nil {
		t.Error("empty value has no string form")
	}
	if _, err := termValue(rdf.BlankNode("b")).asStr(); err == nil {
		t.Error("blank node has no string form")
	}
}
