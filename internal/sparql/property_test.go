package sparql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

// randomDataGraph builds a random sensor-ish graph.
func randomDataGraph(rng *rand.Rand, n int) *rdf.Graph {
	g := rdf.NewGraph()
	ns := rdf.Namespace("http://example.org/")
	props := []rdf.IRI{ns.IRI("observes"), ns.IRI("value"), ns.IRI("at")}
	for i := 0; i < n; i++ {
		s := ns.IRI(fmt.Sprintf("s%d", rng.Intn(20)))
		p := props[rng.Intn(len(props))]
		var o rdf.Term
		if rng.Intn(2) == 0 {
			o = ns.IRI(fmt.Sprintf("o%d", rng.Intn(10)))
		} else {
			o = rdf.NewFloat(rng.Float64() * 100)
		}
		g.MustAdd(rdf.T(s, p, o))
	}
	return g
}

// TestQuickBGPSoundness: every solution of "?s ?p ?o" with a FILTER on a
// bound predicate corresponds to a triple actually in the graph.
func TestQuickBGPSoundness(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT ?s ?o WHERE { ?s ex:value ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDataGraph(rng, 120)
		sols, err := NewEngine(g).Select(q)
		if err != nil {
			return false
		}
		valueProp := rdf.IRI("http://example.org/value")
		for _, row := range sols.Rows {
			if !g.Has(rdf.T(row["s"], valueProp, row["o"])) {
				return false
			}
		}
		// Completeness: solution count equals direct match count.
		return len(sols.Rows) == g.Count(nil, valueProp, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinConsistency: a two-pattern join's solutions each satisfy
// both patterns, and DISTINCT never increases the row count.
func TestQuickJoinConsistency(t *testing.T) {
	qJoin, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT ?s ?x ?v WHERE { ?s ex:observes ?x . ?s ex:value ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	qDistinct, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?s WHERE { ?s ex:observes ?x . ?s ex:value ?v . }`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDataGraph(rng, 150)
		e := NewEngine(g)
		joined, err := e.Select(qJoin)
		if err != nil {
			return false
		}
		obs := rdf.IRI("http://example.org/observes")
		val := rdf.IRI("http://example.org/value")
		for _, row := range joined.Rows {
			if !g.Has(rdf.T(row["s"], obs, row["x"])) || !g.Has(rdf.T(row["s"], val, row["v"])) {
				return false
			}
		}
		distinct, err := e.Select(qDistinct)
		if err != nil {
			return false
		}
		return len(distinct.Rows) <= len(joined.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickLimitOffsetPartition: LIMIT/OFFSET pages partition the ordered
// result set without loss or duplication.
func TestQuickLimitOffsetPartition(t *testing.T) {
	full, err := Parse(`
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:value ?v . } ORDER BY ?v ?s`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDataGraph(rng, 100)
		e := NewEngine(g)
		all, err := e.Select(full)
		if err != nil {
			return false
		}
		pageSize := 1 + rng.Intn(10)
		var paged []Binding
		for offset := 0; ; offset += pageSize {
			q, err := Parse(fmt.Sprintf(`
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:value ?v . } ORDER BY ?v ?s LIMIT %d OFFSET %d`, pageSize, offset))
			if err != nil {
				return false
			}
			page, err := e.Select(q)
			if err != nil {
				return false
			}
			paged = append(paged, page.Rows...)
			if len(page.Rows) < pageSize {
				break
			}
		}
		if len(paged) != len(all.Rows) {
			return false
		}
		for i := range paged {
			if !rdf.Equal(paged[i]["s"], all.Rows[i]["s"]) || !rdf.Equal(paged[i]["v"], all.Rows[i]["v"]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
