package sparql

import (
	"testing"

	"repro/internal/rdf"
)

// TestDistinctAppliesBeforeLimit: per SPARQL algebra, Distinct precedes
// Slice, so SELECT DISTINCT ... LIMIT n must return n distinct rows
// whenever that many exist. The old evaluator sliced first and could
// return fewer. (Regression: fails on the pre-dictionary engine.)
func TestDistinctAppliesBeforeLimit(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	obs := ex.IRI("observes")
	// Two sensors observe A (duplicate projected rows), one observes B.
	g.MustAdd(rdf.T(ex.IRI("s1"), obs, ex.IRI("A")))
	g.MustAdd(rdf.T(ex.IRI("s2"), obs, ex.IRI("A")))
	g.MustAdd(rdf.T(ex.IRI("s3"), obs, ex.IRI("B")))

	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?p WHERE { ?s ex:observes ?p . } ORDER BY ?p LIMIT 2`)
	if len(sol.Rows) != 2 {
		t.Fatalf("DISTINCT LIMIT 2 returned %d rows, want 2 (distinct before slice)", len(sol.Rows))
	}
	want := []rdf.Term{ex.IRI("A"), ex.IRI("B")}
	for i, w := range want {
		if !rdf.Equal(sol.Rows[i][Var("p")], w) {
			t.Errorf("row %d = %v, want %v", i, sol.Rows[i][Var("p")], w)
		}
	}
}

// TestDistinctBeforeOffset: OFFSET must skip distinct rows, not raw ones.
func TestDistinctBeforeOffset(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	obs := ex.IRI("observes")
	g.MustAdd(rdf.T(ex.IRI("s1"), obs, ex.IRI("A")))
	g.MustAdd(rdf.T(ex.IRI("s2"), obs, ex.IRI("A")))
	g.MustAdd(rdf.T(ex.IRI("s3"), obs, ex.IRI("B")))

	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?p WHERE { ?s ex:observes ?p . } ORDER BY ?p OFFSET 1`)
	if len(sol.Rows) != 1 || !rdf.Equal(sol.Rows[0][Var("p")], ex.IRI("B")) {
		t.Fatalf("OFFSET 1 over distinct rows = %v, want exactly [B]", sol.Rows)
	}
}

// TestOrderByMixedTermKinds: ORDER BY over mixed kinds must not abort
// the query; SPARQL defines a total order with blank nodes before IRIs
// before literals. The old evaluator returned an error as soon as two
// incomparable values met (e.g. a blank node against anything).
// (Regression: fails on the pre-dictionary engine.)
func TestOrderByMixedTermKinds(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	p := ex.IRI("p")
	g.MustAdd(rdf.T(ex.IRI("a"), p, rdf.BlankNode("z9")))
	g.MustAdd(rdf.T(ex.IRI("a"), p, ex.IRI("AnIRI")))
	g.MustAdd(rdf.T(ex.IRI("a"), p, rdf.NewInt(5)))
	g.MustAdd(rdf.T(ex.IRI("a"), p, rdf.NewLiteral("abc")))

	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?s ex:p ?x . } ORDER BY ?x`)
	if len(sol.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(sol.Rows))
	}
	want := []rdf.Term{rdf.BlankNode("z9"), ex.IRI("AnIRI"), rdf.NewInt(5), rdf.NewLiteral("abc")}
	for i, w := range want {
		if !rdf.Equal(sol.Rows[i][Var("x")], w) {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, sol.Rows[i][Var("x")], w, sol.Rows)
		}
	}
}

// TestOrderByUnboundSortsFirst: rows where the key is unbound come
// before every bound value, ascending.
func TestOrderByUnboundSortsFirst(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	g.MustAdd(rdf.T(ex.IRI("s1"), ex.IRI("p"), rdf.NewInt(1)))
	g.MustAdd(rdf.T(ex.IRI("s2"), ex.IRI("p"), rdf.NewInt(2)))
	g.MustAdd(rdf.T(ex.IRI("s1"), ex.IRI("label"), rdf.NewLiteral("one")))

	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?s ?l WHERE { ?s ex:p ?v . OPTIONAL { ?s ex:label ?l . } } ORDER BY ?l`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sol.Rows))
	}
	if _, bound := sol.Rows[0][Var("l")]; bound {
		t.Errorf("unbound ORDER BY key should sort first, got %v", sol.Rows)
	}
}

// TestOrderByDescendingMixedKinds: DESC inverts the total order.
func TestOrderByDescendingMixedKinds(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	p := ex.IRI("p")
	g.MustAdd(rdf.T(ex.IRI("a"), p, rdf.BlankNode("b0")))
	g.MustAdd(rdf.T(ex.IRI("a"), p, rdf.NewInt(3)))

	sol := mustSelect(t, g, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ?s ex:p ?x . } ORDER BY DESC(?x)`)
	if len(sol.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sol.Rows))
	}
	if !rdf.Equal(sol.Rows[0][Var("x")], rdf.NewInt(3)) {
		t.Errorf("DESC should put the literal first, got %v", sol.Rows)
	}
}

// TestLimitZero: LIMIT 0 returns no rows on both the streaming path
// (no ORDER BY) and the materialized path (with ORDER BY).
func TestLimitZero(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	g.MustAdd(rdf.T(ex.IRI("s1"), ex.IRI("p"), rdf.NewInt(1)))
	for _, q := range []string{
		`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?v . } LIMIT 0`,
		`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?v . } ORDER BY ?v LIMIT 0`,
	} {
		if sol := mustSelect(t, g, q); len(sol.Rows) != 0 {
			t.Errorf("LIMIT 0 returned %d rows for %q", len(sol.Rows), q)
		}
	}
}

// TestSnapshotEngineIsolation: a snapshot engine pinned before a write
// keeps answering from the old state while a live engine sees the write.
func TestSnapshotEngineIsolation(t *testing.T) {
	g := rdf.NewGraph()
	ex := rdf.Namespace("http://example.org/")
	g.MustAdd(rdf.T(ex.IRI("s1"), rdf.RDFType, ex.IRI("Sensor")))

	pinned := NewSnapshotEngine(g.Snapshot())
	live := NewEngine(g)
	g.MustAdd(rdf.T(ex.IRI("s2"), rdf.RDFType, ex.IRI("Sensor")))

	const q = `PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s a ex:Sensor . }`
	solPinned, err := pinned.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	solLive, err := live.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(solPinned.(*Solutions).Rows); n != 1 {
		t.Errorf("pinned snapshot sees %d sensors, want 1", n)
	}
	if n := len(solLive.(*Solutions).Rows); n != 2 {
		t.Errorf("live engine sees %d sensors, want 2", n)
	}
}
