// Package sparql implements the SPARQL-subset query engine of the
// middleware's ontology segment layer ("users are enabled to pose concise
// and expressive queries", §4.1 of the paper).
//
// Supported: SELECT (with DISTINCT, ORDER BY, LIMIT, OFFSET), ASK and
// CONSTRUCT forms; basic graph patterns; FILTER with a full expression
// language (logic, comparison, arithmetic, string and term functions);
// OPTIONAL; UNION; aggregates (COUNT/SUM/AVG/MIN/MAX with GROUP BY and
// COUNT(DISTINCT ?x)); PREFIX declarations. Property paths, subqueries
// and federation are out of scope.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// QueryForm discriminates the top-level query type.
type QueryForm int

// The supported query forms.
const (
	FormSelect QueryForm = iota + 1
	FormAsk
	FormConstruct
)

// String names the form.
func (f QueryForm) String() string {
	switch f {
	case FormSelect:
		return "SELECT"
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	default:
		return fmt.Sprintf("QueryForm(%d)", int(f))
	}
}

// Var is a SPARQL variable name without the leading '?'.
type Var string

// PatternTerm is a position in a triple pattern: either a concrete RDF
// term or a variable.
type PatternTerm struct {
	Term rdf.Term // nil when IsVar
	Var  Var
}

// IsVar reports whether the pattern term is a variable.
func (p PatternTerm) IsVar() bool { return p.Term == nil }

// String renders the pattern term.
func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + string(p.Var)
	}
	return p.Term.String()
}

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern.
func (t TriplePattern) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Vars returns the distinct variables of the pattern.
func (t TriplePattern) Vars() []Var {
	var out []Var
	seen := make(map[Var]bool)
	for _, pt := range []PatternTerm{t.S, t.P, t.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// GroupElement is one element of a group graph pattern.
type GroupElement interface{ isGroupElement() }

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Patterns []TriplePattern
}

func (BGP) isGroupElement() {}

// Filter wraps a boolean expression constraining the bindings.
type Filter struct {
	Expr Expr
}

func (Filter) isGroupElement() {}

// Optional is an OPTIONAL { ... } block (left join).
type Optional struct {
	Group *Group
}

func (Optional) isGroupElement() {}

// Union is a { A } UNION { B } alternation (2+ branches).
type Union struct {
	Branches []*Group
}

func (Union) isGroupElement() {}

// SubGroup is a nested group graph pattern.
type SubGroup struct {
	Group *Group
}

func (SubGroup) isGroupElement() {}

// Group is a group graph pattern: an ordered list of elements.
type Group struct {
	Elements []GroupElement
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Expr       Expr
	Descending bool
}

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Prefixes *rdf.PrefixMap
	// Select: projected variables; empty means '*' (unless Aggregates).
	Select   []Var
	Distinct bool
	// Aggregates holds (FN(?x) AS ?out) projections; GroupBy the GROUP BY
	// variables. Either being non-empty switches the evaluator into
	// grouping mode.
	Aggregates []AggSelect
	GroupBy    []Var
	// Construct template (FormConstruct only).
	Template []TriplePattern
	Where    *Group
	OrderBy  []OrderKey
	Limit    int // -1 = unlimited
	Offset   int
}

// Binding maps variables to terms.
type Binding map[Var]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// key returns a canonical form for DISTINCT comparisons over the given
// variable order.
func (b Binding) key(vars []Var) string {
	var sb strings.Builder
	for _, v := range vars {
		if t, ok := b[v]; ok {
			sb.WriteString(t.Key())
		}
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// Solutions is a query result set for SELECT queries.
type Solutions struct {
	// Vars is the projection, in SELECT order.
	Vars []Var
	// Rows holds one binding per solution.
	Rows []Binding
}

// SortedVars returns the projection sorted (for stable textual output of
// '*' queries).
func (s *Solutions) SortedVars() []Var {
	out := make([]Var, len(s.Vars))
	copy(out, s.Vars)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the solutions as an aligned text table (used by the CLI
// and tests).
func (s *Solutions) String() string {
	var sb strings.Builder
	for i, v := range s.Vars {
		if i > 0 {
			sb.WriteByte('\t')
		}
		sb.WriteString("?" + string(v))
	}
	sb.WriteByte('\n')
	for _, row := range s.Rows {
		for i, v := range s.Vars {
			if i > 0 {
				sb.WriteByte('\t')
			}
			if t, ok := row[v]; ok {
				sb.WriteString(t.String())
			} else {
				sb.WriteString("UNDEF")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
