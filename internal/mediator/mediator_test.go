package mediator

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/climate"
	"repro/internal/ontology/drought"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
	"repro/internal/wsn"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"rain", "rain", 0},
		{"Hoehe", "Höhe", 2},
		{"soil", "soli", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestQuickLevenshteinMetricAxioms checks identity, symmetry and the
// triangle inequality on random short strings.
func TestQuickLevenshteinMetricAxioms(t *testing.T) {
	alphabet := []rune("abcde")
	gen := func(seed int64) string {
		n := int(seed%7) + 1
		if n < 0 {
			n = -n%7 + 1
		}
		out := make([]rune, n)
		s := seed
		for i := range out {
			s = s*6364136223846793005 + 1442695040888963407
			idx := int((s >> 33) % int64(len(alphabet)))
			if idx < 0 {
				idx += len(alphabet)
			}
			out[i] = alphabet[idx]
		}
		return string(out)
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if Levenshtein(a, a) != 0 {
			return false
		}
		if Levenshtein(a, b) != Levenshtein(b, a) {
			return false
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("rainfall", "rainfall"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := JaroWinkler("", ""); got != 1 {
		t.Errorf("empty = %v", got)
	}
	if got := JaroWinkler("abc", ""); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	// Prefix boost: "rainRate" closer to "rainfall" than "fallrain".
	if JaroWinkler("rainrate", "rainfall") <= Jaro("rainrate", "rainfall") {
		t.Error("prefix boost missing")
	}
	for _, pair := range [][2]string{{"soil", "temperature"}, {"wind", "Stav"}} {
		v := JaroWinkler(pair[0], pair[1])
		if v < 0 || v > 1 {
			t.Errorf("JW(%q,%q) = %v outside [0,1]", pair[0], pair[1], v)
		}
	}
}

func TestTokenDice(t *testing.T) {
	if got := TokenDice("soil moisture", "soil_moisture"); got != 1 {
		t.Errorf("token-equal = %v", got)
	}
	if got := TokenDice("soilMoist", "soil moisture"); got <= 0.4 {
		t.Errorf("camelCase token overlap = %v", got)
	}
	if got := TokenDice("wind", "rain"); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
}

func TestTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"soil_moisture", []string{"soil", "moisture"}},
		{"soilMoist", []string{"soil", "moist"}},
		{"rain-rate", []string{"rain", "rate"}},
		{"Niederschlag", []string{"niederschlag"}},
		{"outsideTemp", []string{"outside", "temp"}},
	}
	for _, c := range cases {
		got := tokens(c.in)
		if len(got) != len(c.want) {
			t.Errorf("tokens(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("tokens(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func buildRegistry(t *testing.T) *Registry {
	t.Helper()
	o, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(o)
}

func TestRegistryExactRegistration(t *testing.T) {
	r := buildRegistry(t)
	r.Register("davis", "soilMoist", drought.SoilMoisture)
	a, err := r.Resolve("davis", "soilMoist")
	if err != nil {
		t.Fatal(err)
	}
	if a.Property != drought.SoilMoisture || a.Confidence != 1 {
		t.Errorf("alignment = %+v", a)
	}
	exact, _, _ := r.Stats()
	if exact != 1 {
		t.Errorf("exact hits = %d", exact)
	}
}

func TestRegistryGlobalRegistration(t *testing.T) {
	r := buildRegistry(t)
	r.Register("", "xlevel", drought.WaterLevel)
	a, err := r.Resolve("anyvendor", "xlevel")
	if err != nil || a.Property != drought.WaterLevel {
		t.Fatalf("global alignment failed: %+v %v", a, err)
	}
}

func TestRegistryFuzzyHoeheStav(t *testing.T) {
	r := buildRegistry(t)
	// The paper's example: Hoehe (German) and Stav (Czech) both mean
	// water level, and both appear as labels in the ontology.
	for _, name := range []string{"Hoehe", "Stav"} {
		a, err := r.Resolve("hydro", name)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", name, err)
		}
		if a.Property != drought.WaterLevel {
			t.Errorf("%s resolved to %s, want WaterLevel", name, a.Property.LocalName())
		}
	}
}

func TestRegistryFuzzyVariants(t *testing.T) {
	r := buildRegistry(t)
	cases := []struct {
		wire string
		want rdf.IRI
	}{
		{"soil_moisture", drought.SoilMoisture},
		{"soilmoisture", drought.SoilMoisture},
		{"Bodenfeuchte", drought.SoilMoisture},
		{"rainfall", drought.Rainfall},
		{"reenval", drought.Rainfall},      // Afrikaans "reënval" label
		{"Niederschlag", drought.Rainfall}, // German label
		{"water level", drought.WaterLevel},
		{"windspoed", drought.WindSpeed},
		{"Lufttemperatur", drought.AirTemperature},
	}
	for _, c := range cases {
		a, err := r.Resolve("v", c.wire)
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.wire, err)
			continue
		}
		if a.Property != c.want {
			t.Errorf("Resolve(%q) = %s (label %q, conf %.2f), want %s",
				c.wire, a.Property.LocalName(), a.MatchedLabel, a.Confidence, c.want.LocalName())
		}
	}
}

func TestSeedAlignmentsDisambiguate(t *testing.T) {
	r := buildRegistry(t)
	// Unseeded, the bare Czech "Vlhkost" is ambiguous and fuzzy-matches
	// the soil-moisture label "vlhkost půdy".
	a, err := r.Resolve("chmi", "Vlhkost")
	if err != nil {
		t.Fatal(err)
	}
	if a.Property == drought.RelativeHumidity {
		t.Skip("fuzzy match already disambiguates; seed unnecessary")
	}
	// Seeded, the vendor-scoped registration wins.
	r2 := buildRegistry(t)
	SeedAlignments(r2)
	a2, err := r2.Resolve("chmi", "Vlhkost")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Property != drought.RelativeHumidity {
		t.Errorf("seeded Vlhkost = %s, want RelativeHumidity", a2.Property.LocalName())
	}
	// Other vendors are unaffected by the vendor-scoped seed.
	a3, err := r2.Resolve("pegelonline", "Bodenfeuchte")
	if err != nil || a3.Property != drought.SoilMoisture {
		t.Errorf("unrelated vendor affected: %+v %v", a3, err)
	}
}

func TestAllBuiltinVendorsAlign(t *testing.T) {
	r := buildRegistry(t)
	SeedAlignments(r)
	for _, v := range wsn.BuiltinVendors() {
		for _, ch := range v.Channels {
			if _, err := r.Resolve(v.Name, ch.WireName); err != nil {
				t.Errorf("vendor %s wire name %q does not align: %v", v.Name, ch.WireName, err)
			}
		}
	}
}

func TestRegistryMiss(t *testing.T) {
	r := buildRegistry(t)
	if _, err := r.Resolve("v", "zzzzqqq"); err == nil {
		t.Error("garbage should not align")
	}
	_, _, misses := r.Stats()
	if misses != 1 {
		t.Errorf("misses = %d", misses)
	}
}

func TestRegistryLearning(t *testing.T) {
	r := buildRegistry(t)
	r.LearnThreshold = 0.5
	if _, err := r.Resolve("hydro", "Hoehe"); err != nil {
		t.Fatal(err)
	}
	_, fuzzy1, _ := r.Stats()
	if fuzzy1 != 1 {
		t.Fatalf("first resolve should be fuzzy")
	}
	// Second resolve of the same name must hit the learned cache.
	if _, err := r.Resolve("hydro", "Hoehe"); err != nil {
		t.Fatal(err)
	}
	exact, fuzzy2, _ := r.Stats()
	if exact != 1 || fuzzy2 != 1 {
		t.Errorf("learning failed: exact=%d fuzzy=%d", exact, fuzzy2)
	}
}

func TestUnitTable(t *testing.T) {
	u := NewUnitTable()
	cases := []struct {
		unit      string
		canonical rdf.IRI
		in, want  float64
	}{
		{"mm", ssn.UnitMillimetre, 5, 5},
		{"in", ssn.UnitMillimetre, 1, 25.4},
		{"pct", ssn.UnitFraction, 31, 0.31},
		{"cbar", ssn.UnitFraction, 200, 0},
		{"cbar", ssn.UnitFraction, 0, 1},
		{"degF", ssn.UnitCelsius, 212, 100},
		{"K", ssn.UnitCelsius, 273.15, 0},
		{"km_h", ssn.UnitMetrePerSecond, 36, 10},
		{"cm", ssn.UnitMetre, 250, 2.5},
		{"pct", ssn.UnitPercent, 62, 62},
	}
	for _, c := range cases {
		got, err := u.Convert(c.unit, c.canonical, c.in)
		if err != nil {
			t.Errorf("Convert(%s→%s): %v", c.unit, c.canonical.LocalName(), err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Convert(%s→%s, %v) = %v, want %v", c.unit, c.canonical.LocalName(), c.in, got, c.want)
		}
	}
	if _, err := u.Convert("furlongs", ssn.UnitMetre, 1); err == nil {
		t.Error("unknown unit should fail")
	}
	if _, err := u.Convert("mm", ssn.UnitCelsius, 1); err == nil {
		t.Error("nonsense conversion should fail")
	}
}

func buildAnnotator(t *testing.T) *Annotator {
	t.Helper()
	o, _, err := drought.BuildMaterialized()
	if err != nil {
		t.Fatal(err)
	}
	return NewAnnotator(o)
}

func rawReading() wsn.RawReading {
	return wsn.RawReading{
		NodeID:       "fs-mangaung-pegelonline-02",
		Vendor:       "pegelonline",
		District:     "mangaung",
		PropertyName: "Hoehe",
		UnitName:     "cm",
		Value:        250,
		Time:         time.Date(2015, 11, 20, 6, 0, 0, 0, time.UTC),
		Seq:          17,
		BatteryV:     4.0,
	}
}

func TestAnnotateHeterogeneousReading(t *testing.T) {
	a := buildAnnotator(t)
	rec, err := a.Annotate(rawReading())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Property != drought.WaterLevel {
		t.Errorf("property = %s", rec.Property.LocalName())
	}
	if rec.Unit != ssn.UnitMetre {
		t.Errorf("unit = %s", rec.Unit.LocalName())
	}
	if math.Abs(rec.Value-2.5) > 1e-9 {
		t.Errorf("value = %v, want 2.5 (cm→m)", rec.Value)
	}
	if rec.Feature != drought.Mangaung {
		t.Errorf("feature = %s, want Mangaung", rec.Feature)
	}
	if rec.Quality <= 0 || rec.Quality > 1 {
		t.Errorf("quality = %v", rec.Quality)
	}
	if a.Annotated() != 1 {
		t.Errorf("annotated = %d", a.Annotated())
	}
}

func TestAnnotateLowBatteryDeratesQuality(t *testing.T) {
	a := buildAnnotator(t)
	healthy := rawReading()
	weak := rawReading()
	weak.BatteryV = 3.3
	weak.Seq = 18
	rh, err := a.Annotate(healthy)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := a.Annotate(weak)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Quality >= rh.Quality {
		t.Errorf("weak battery quality %v should be below healthy %v", rw.Quality, rh.Quality)
	}
}

func TestAnnotateFailureHistogram(t *testing.T) {
	a := buildAnnotator(t)
	bad := rawReading()
	bad.PropertyName = "zzzzqq"
	if _, err := a.Annotate(bad); err == nil {
		t.Fatal("expected failure")
	}
	badUnit := rawReading()
	badUnit.UnitName = "furlongs"
	if _, err := a.Annotate(badUnit); err == nil {
		t.Fatal("expected unit failure")
	}
	f := a.Failures()
	if f["no-alignment"] != 1 || f["no-unit-conversion"] != 1 {
		t.Errorf("failures = %v", f)
	}
}

func TestAnnotateBatchAndGraph(t *testing.T) {
	a := buildAnnotator(t)
	batch := []wsn.RawReading{rawReading()}
	r2 := rawReading()
	r2.PropertyName = "Niederschlag"
	r2.UnitName = "mm"
	r2.Value = 12
	r2.Seq = 19
	batch = append(batch, r2)
	bad := rawReading()
	bad.PropertyName = "junkname"
	batch = append(batch, bad)

	g := rdf.NewGraph()
	recs, err := a.ToGraph(batch, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if g.Len() == 0 {
		t.Fatal("graph should hold observation triples")
	}
	// The graph round-trips through SSN.
	back, err := ssn.FromGraph(g, recs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.Property != recs[0].Property {
		t.Error("graph round trip lost the property")
	}
}

func TestMintIDsUnique(t *testing.T) {
	a := buildAnnotator(t)
	seen := make(map[rdf.IRI]bool)
	r := rawReading()
	for i := 0; i < 50; i++ {
		rec, err := a.Annotate(r)
		if err != nil {
			t.Fatal(err)
		}
		if seen[rec.ID] {
			t.Fatalf("duplicate observation ID %s", rec.ID)
		}
		seen[rec.ID] = true
	}
}

func TestDistrictIRIFallback(t *testing.T) {
	if districtIRI("") != "" {
		t.Error("empty district should stay empty")
	}
	if got := districtIRI("mangaung"); got != drought.Mangaung {
		t.Errorf("mangaung = %s", got)
	}
	if got := districtIRI("unknown place"); got != rdf.NSGEO.IRI("unknown-place") {
		t.Errorf("fallback = %s", got)
	}
}

func TestQualityBounds(t *testing.T) {
	f := func(conf, batt float64) bool {
		c := math.Abs(math.Mod(conf, 1))
		q := quality(c, math.Abs(math.Mod(batt, 5)))
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndToEndWSNToRecords(t *testing.T) {
	// Full path: fleet → gateway → cloud → annotator.
	a := buildAnnotator(t)
	cloud := wsn.NewCloudStore()
	link := wsn.NewLink(wsn.LinkConfig{LossRate: 0.1, MaxRetries: 3, Seed: 3})
	gw := wsn.NewGateway(link, cloud)
	fleet, err := wsn.NewFleet(10, []string{"mangaung", "xhariep"}, 55)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fleet.Nodes {
		gw.Register(n)
	}
	day := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		for _, n := range fleet.Nodes {
			rs := n.Sample(sampleDay(day.AddDate(0, 0, i)))
			if len(rs) > 0 {
				if err := gw.Ingest(rs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	raw, _, err := cloud.Download(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, failed := a.AnnotateBatch(raw)
	if len(recs) == 0 {
		t.Fatal("no records annotated")
	}
	// The overwhelming majority of vendor names must align.
	rate := float64(len(recs)) / float64(len(recs)+failed)
	if rate < 0.95 {
		t.Errorf("alignment rate %.2f too low (failures: %v)", rate, a.Failures())
	}
	// All records are in canonical units with sane values.
	for _, r := range recs {
		if r.Property == drought.SoilMoisture && (r.Value < 0 || r.Value > 1) {
			t.Errorf("soil moisture %v outside [0,1]", r.Value)
		}
		if r.Property == drought.AirTemperature && (r.Value < -30 || r.Value > 55) {
			t.Errorf("temperature %v implausible", r.Value)
		}
	}
}

func sampleDay(date time.Time) climate.Day {
	return climate.Day{
		Date: date, RainMM: 4, TempC: 22, SoilMoisture: 0.3,
		RelHumidity: 60, WindSpeedMS: 3, NDVI: 0.4, WaterLevelM: 2.5,
	}
}
