// Package mediator implements the middleware's heterogeneity-elimination
// stage (§4 of the paper): it resolves vendor-specific property names
// against the unified ontology (naming heterogeneity), converts vendor
// units to the canonical units the ontology prescribes (cognitive
// heterogeneity), and annotates raw readings into SSN observation
// records ready for the ontology segment layer. The middleware's ingest
// pipeline mediates each fetched batch in one AnnotateBatch call, so
// per-reading failures are counted without aborting the batch.
package mediator
