package mediator

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ontology"
	"repro/internal/ontology/drought"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
	"repro/internal/wsn"
)

// Annotator turns raw vendor readings into unified SSN observation
// records and RDF: the "semantic referencing of the metadata" stage of
// the paper's middleware. Safe for concurrent use.
type Annotator struct {
	onto    *ontology.Ontology
	reg     *Registry
	units   *UnitTable
	mu      sync.Mutex
	counter uint64
	// stats
	annotated int
	failures  map[string]int
}

// NewAnnotator builds an annotator over the unified ontology.
func NewAnnotator(o *ontology.Ontology) *Annotator {
	return &Annotator{
		onto:     o,
		reg:      NewRegistry(o),
		units:    NewUnitTable(),
		failures: make(map[string]int),
	}
}

// Registry exposes the alignment registry (for pre-registering mappings
// and reading statistics).
func (a *Annotator) Registry() *Registry { return a.reg }

// Annotated returns how many readings were successfully annotated.
func (a *Annotator) Annotated() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.annotated
}

// Failures returns a copy of the failure histogram keyed by reason.
func (a *Annotator) Failures() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.failures))
	for k, v := range a.failures {
		out[k] = v
	}
	return out
}

func (a *Annotator) fail(reason string) {
	a.mu.Lock()
	a.failures[reason]++
	a.mu.Unlock()
}

// Annotate resolves and converts one raw reading. The returned record is
// in canonical units with a quality score combining alignment confidence
// and device health.
func (a *Annotator) Annotate(r wsn.RawReading) (ssn.Record, error) {
	align, err := a.reg.Resolve(r.Vendor, r.PropertyName)
	if err != nil {
		a.fail("no-alignment")
		return ssn.Record{}, err
	}
	canonicalUnit, ok := a.canonicalUnit(align.Property)
	if !ok {
		a.fail("no-canonical-unit")
		return ssn.Record{}, fmt.Errorf("mediator: property %s has no canonical unit", align.Property.LocalName())
	}
	value, err := a.units.Convert(r.UnitName, canonicalUnit, r.Value)
	if err != nil {
		a.fail("no-unit-conversion")
		return ssn.Record{}, err
	}
	rec := ssn.Record{
		ID:       a.mintID(r),
		Sensor:   rdf.NSSSN.IRI("sensor/" + sanitize(r.NodeID)),
		Property: align.Property,
		Feature:  districtIRI(r.District),
		Value:    value,
		Unit:     canonicalUnit,
		Time:     r.Time,
		Quality:  quality(align.Confidence, r.BatteryV),
	}
	if err := rec.Validate(); err != nil {
		a.fail("invalid-record")
		return ssn.Record{}, err
	}
	a.mu.Lock()
	a.annotated++
	a.mu.Unlock()
	return rec, nil
}

// AnnotateBatch annotates a batch, collecting successes and returning the
// number of failures (already counted in the failure histogram).
func (a *Annotator) AnnotateBatch(rs []wsn.RawReading) ([]ssn.Record, int) {
	out := make([]ssn.Record, 0, len(rs))
	failed := 0
	for _, r := range rs {
		rec, err := a.Annotate(r)
		if err != nil {
			failed++
			continue
		}
		out = append(out, rec)
	}
	return out, failed
}

// ToGraph annotates a batch directly into an RDF graph, returning the
// records too. The whole batch goes in as one atomic AddAll: a
// concurrent query snapshot never observes half an ingest cycle, and a
// large batch takes the graph's bulk sort-and-merge path instead of
// paying per-triple insertion.
func (a *Annotator) ToGraph(rs []wsn.RawReading, g *rdf.Graph) ([]ssn.Record, error) {
	recs, _ := a.AnnotateBatch(rs)
	var batch []rdf.Triple
	for _, rec := range recs {
		ts, err := rec.Triples()
		if err != nil {
			return nil, err
		}
		batch = append(batch, ts...)
	}
	if err := g.AddAll(batch...); err != nil {
		return nil, err
	}
	return recs, nil
}

// canonicalUnit reads property ssn:hasUnit unit from the ontology.
func (a *Annotator) canonicalUnit(property rdf.IRI) (rdf.IRI, bool) {
	t, ok := a.onto.Graph().FirstObject(property, ssn.HasUnit)
	if !ok {
		return "", false
	}
	iri, ok := t.(rdf.IRI)
	return iri, ok
}

func (a *Annotator) mintID(r wsn.RawReading) rdf.IRI {
	a.mu.Lock()
	a.counter++
	n := a.counter
	a.mu.Unlock()
	return rdf.NSOBS.IRI(fmt.Sprintf("%s/%d-%d", sanitize(r.NodeID), r.Seq, n))
}

// quality combines alignment confidence with a battery-health factor:
// full confidence above 3.8 V, linear derating to 0.5 at 3.4 V.
func quality(alignConfidence, batteryV float64) float64 {
	health := 1.0
	switch {
	case batteryV <= 0:
		// Unknown battery (e.g. non-mote source): neutral.
	case batteryV < 3.4:
		health = 0.5
	case batteryV < 3.8:
		health = 0.5 + 0.5*(batteryV-3.4)/0.4
	}
	q := alignConfidence * health
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// districtIRI maps a WSN district slug to the geography individual.
func districtIRI(district string) rdf.IRI {
	if district == "" {
		return ""
	}
	slug := strings.ToLower(strings.ReplaceAll(district, " ", "-"))
	for _, d := range drought.Districts {
		if strings.EqualFold(d.LocalName(), strings.ReplaceAll(slug, "-", "")) ||
			strings.EqualFold(strings.ReplaceAll(d.LocalName(), " ", ""), strings.ReplaceAll(slug, "-", "")) {
			return d
		}
	}
	// Unknown sites still get a stable IRI inside the geo namespace.
	return rdf.NSGEO.IRI(slug)
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
