package mediator

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ontology"
	"repro/internal/ontology/drought"
	"repro/internal/ontology/ssn"
	"repro/internal/rdf"
)

// Alignment is a resolved mapping from a vendor wire name to a unified
// ontology property.
type Alignment struct {
	// Property is the unified observed-property class IRI.
	Property rdf.IRI
	// Confidence in [0,1]: 1.0 for exact/registered alignments, the
	// similarity score for fuzzy matches.
	Confidence float64
	// MatchedLabel is the ontology label that won the fuzzy match
	// (empty for registered alignments).
	MatchedLabel string
}

// Registry resolves wire names against the ontology. Resolution order:
//
//  1. explicit registrations (vendor-qualified first, then global);
//  2. fuzzy label matching over every rdfs:label (any language) of every
//     subclass of ssn:ObservedProperty, accepted above Threshold;
//  3. failure (counted; the caller decides whether to drop or quarantine).
//
// Fuzzy matches above LearnThreshold are cached as if registered, so the
// registry "learns" stable vocabulary over time. Safe for concurrent use.
type Registry struct {
	// Threshold is the minimum similarity for a fuzzy match (default 0.78).
	Threshold float64
	// LearnThreshold is the minimum similarity to cache a fuzzy match
	// (default 0.9).
	LearnThreshold float64

	mu sync.RWMutex
	// exact maps key ("vendor\x00name" or "\x00name") → alignment.
	exact map[string]Alignment
	// labels is the fuzzy-match corpus: label → property IRI.
	labels []labelEntry
	// stats
	hitsExact, hitsFuzzy, misses int
}

type labelEntry struct {
	label    string
	property rdf.IRI
}

// NewRegistry builds a registry whose fuzzy corpus is extracted from the
// ontology: every label of every subclass of ssn:ObservedProperty.
func NewRegistry(o *ontology.Ontology) *Registry {
	r := &Registry{
		Threshold:      0.78,
		LearnThreshold: 0.9,
		exact:          make(map[string]Alignment),
	}
	props := o.SubClasses(ssn.ObservedProperty)
	for _, p := range props {
		for _, labelProp := range []rdf.IRI{rdf.RDFSLabel, drought.AltLabel} {
			o.Graph().ForEachMatch(p, labelProp, nil, func(t rdf.Triple) bool {
				if lit, ok := t.O.(rdf.Literal); ok {
					r.labels = append(r.labels, labelEntry{label: lit.Lexical, property: p})
				}
				return true
			})
		}
		// The class local name is also a usable label ("SoilMoisture").
		r.labels = append(r.labels, labelEntry{label: p.LocalName(), property: p})
	}
	sort.Slice(r.labels, func(i, j int) bool {
		if r.labels[i].label != r.labels[j].label {
			return r.labels[i].label < r.labels[j].label
		}
		return r.labels[i].property < r.labels[j].property
	})
	return r
}

// Register adds an explicit alignment. Empty vendor means "any vendor".
func (r *Registry) Register(vendor, wireName string, property rdf.IRI) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exact[alignKey(vendor, wireName)] = Alignment{Property: property, Confidence: 1}
}

// LabelCount returns the size of the fuzzy corpus.
func (r *Registry) LabelCount() int { return len(r.labels) }

// Stats returns (exact hits, fuzzy hits, misses).
func (r *Registry) Stats() (exact, fuzzy, misses int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hitsExact, r.hitsFuzzy, r.misses
}

// Resolve maps a vendor wire name to a unified property.
func (r *Registry) Resolve(vendor, wireName string) (Alignment, error) {
	r.mu.RLock()
	if a, ok := r.exact[alignKey(vendor, wireName)]; ok {
		r.mu.RUnlock()
		r.countExact()
		return a, nil
	}
	if a, ok := r.exact[alignKey("", wireName)]; ok {
		r.mu.RUnlock()
		r.countExact()
		return a, nil
	}
	r.mu.RUnlock()

	best, ok := r.fuzzyMatch(wireName)
	if !ok {
		r.mu.Lock()
		r.misses++
		r.mu.Unlock()
		return Alignment{}, fmt.Errorf("mediator: no alignment for %s/%s", vendor, wireName)
	}
	r.mu.Lock()
	r.hitsFuzzy++
	if best.Confidence >= r.LearnThreshold {
		r.exact[alignKey(vendor, wireName)] = best
	}
	r.mu.Unlock()
	return best, nil
}

func (r *Registry) countExact() {
	r.mu.Lock()
	r.hitsExact++
	r.mu.Unlock()
}

// fuzzyMatch scans the label corpus for the best similarity.
func (r *Registry) fuzzyMatch(wireName string) (Alignment, bool) {
	bestScore := 0.0
	var bestEntry labelEntry
	for _, e := range r.labels {
		s := Similarity(wireName, e.label)
		if s > bestScore {
			bestScore = s
			bestEntry = e
		}
	}
	if bestScore < r.Threshold {
		return Alignment{}, false
	}
	return Alignment{
		Property:     bestEntry.property,
		Confidence:   bestScore,
		MatchedLabel: bestEntry.label,
	}, true
}

func alignKey(vendor, wireName string) string {
	return strings.ToLower(vendor) + "\x00" + strings.ToLower(wireName)
}

// SeedAlignments registers the disambiguations that fuzzy matching cannot
// decide on its own — vendor terms that are ambiguous across properties
// (Czech "Vlhkost" alone means humidity, while "vlhkost půdy" is soil
// moisture). A deployment ships such a seed table alongside the ontology;
// the paper's §5 "gathering ... through questionnaire, workshop and
// interactive sessions" plays the same role for IK vocabulary.
func SeedAlignments(r *Registry) {
	r.Register("chmi", "Vlhkost", drought.RelativeHumidity)
	r.Register("davis", "outsideHumidity", drought.RelativeHumidity)
	r.Register("davis", "outsideTemp", drought.AirTemperature)
}

// --- unit conversion ---

// UnitConversion converts a vendor value into the canonical unit of a
// property.
type UnitConversion struct {
	// Canonical is the canonical unit IRI the conversion produces.
	Canonical rdf.IRI
	// Convert maps vendor value → canonical value.
	Convert func(float64) float64
}

// UnitTable maps (vendor unit name, canonical unit IRI) → conversion.
// The canonical unit of a property comes from the ontology
// (property ssn:hasUnit unit); the vendor unit name arrives with the raw
// reading.
type UnitTable struct {
	conv map[string]map[rdf.IRI]func(float64) float64
}

// NewUnitTable returns the built-in conversion table covering the vendor
// population of the WSN substrate.
func NewUnitTable() *UnitTable {
	id := func(v float64) float64 { return v }
	t := &UnitTable{conv: make(map[string]map[rdf.IRI]func(float64) float64)}
	add := func(unitName string, canonical rdf.IRI, f func(float64) float64) {
		m, ok := t.conv[unitName]
		if !ok {
			m = make(map[rdf.IRI]func(float64) float64)
			t.conv[unitName] = m
		}
		m[canonical] = f
	}
	// Rain depth.
	add("mm", ssn.UnitMillimetre, id)
	add("in", ssn.UnitMillimetre, func(v float64) float64 { return v * 25.4 })
	// Soil moisture.
	add("frac", ssn.UnitFraction, id)
	add("pct", ssn.UnitFraction, func(v float64) float64 { return v / 100 })
	add("cbar", ssn.UnitFraction, func(v float64) float64 { return clamp01(1 - v/200) })
	// Humidity stays percent.
	add("pct", ssn.UnitPercent, id)
	add("frac", ssn.UnitPercent, func(v float64) float64 { return v * 100 })
	// Temperature.
	add("degC", ssn.UnitCelsius, id)
	add("degF", ssn.UnitCelsius, func(v float64) float64 { return (v - 32) * 5 / 9 })
	add("K", ssn.UnitCelsius, func(v float64) float64 { return v - 273.15 })
	// Wind.
	add("m_s", ssn.UnitMetrePerSecond, id)
	add("km_h", ssn.UnitMetrePerSecond, func(v float64) float64 { return v / 3.6 })
	// Levels.
	add("m", ssn.UnitMetre, id)
	add("cm", ssn.UnitMetre, func(v float64) float64 { return v / 100 })
	// Indices.
	add("idx", ssn.UnitIndex, id)
	return t
}

// Convert maps a vendor value to the canonical unit.
func (t *UnitTable) Convert(vendorUnit string, canonical rdf.IRI, value float64) (float64, error) {
	m, ok := t.conv[vendorUnit]
	if !ok {
		return 0, fmt.Errorf("mediator: unknown vendor unit %q", vendorUnit)
	}
	f, ok := m[canonical]
	if !ok {
		return 0, fmt.Errorf("mediator: no conversion %q → %s", vendorUnit, canonical.LocalName())
	}
	return f(value), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
