package mediator

import (
	"strings"
	"unicode"
)

// Levenshtein returns the edit distance between two strings (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSimilarity normalizes edit distance into [0,1].
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// Jaro computes the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := maxInt(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, len(ra))
	bMatch := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := maxInt(0, i-window)
		hi := minInt2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if bMatch[j] || ra[i] != rb[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := range ra {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (p=0.1, max 4).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenDice computes the Sørensen–Dice coefficient over word tokens,
// catching multi-word labels ("soil moisture" vs "soil_moisture").
func TokenDice(a, b string) float64 {
	ta, tb := tokens(a), tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, t := range ta {
		set[t] = true
	}
	common := 0
	for _, t := range tb {
		if set[t] {
			common++
		}
	}
	return 2 * float64(common) / float64(len(ta)+len(tb))
}

// tokens splits an identifier into lower-cased word tokens, handling
// snake_case, kebab-case, camelCase and spaces.
func tokens(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range s {
		switch {
		case r == '_' || r == '-' || r == ' ' || r == '.' || r == '/':
			flush()
			prevLower = false
		case unicode.IsUpper(r):
			if prevLower {
				flush()
			}
			cur.WriteRune(unicode.ToLower(r))
			prevLower = false
		default:
			cur.WriteRune(unicode.ToLower(r))
			prevLower = unicode.IsLower(r) || unicode.IsDigit(r)
		}
	}
	flush()
	return out
}

// Similarity is the mediator's combined score: the maximum of
// Jaro-Winkler over the normalized whole strings and token Dice, which
// covers both typo-level and word-level variation.
func Similarity(a, b string) float64 {
	na, nb := normalize(a), normalize(b)
	jw := JaroWinkler(na, nb)
	td := TokenDice(a, b)
	if td > jw {
		return td
	}
	return jw
}

// normalize lower-cases and strips separators for whole-string comparison.
func normalize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || r == '-' || r == ' ' || r == '.' {
			continue
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
