package cep

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event is one item on the stream. Type names are free-form; by
// convention the DEWS layer uses ontology local names ("rainfall",
// "RainfallDeficit", "ik-MutigaTreeFlowering").
type Event struct {
	// Type is the event type name rules match on.
	Type string
	// Time is the event timestamp; the engine requires non-decreasing
	// times within a stream.
	Time time.Time
	// Value is the numeric payload aggregates operate on (0 for pure
	// signals).
	Value float64
	// Confidence in [0,1]; emitted composites carry rule confidence
	// combined with input confidence.
	Confidence float64
	// Key is an opaque partition tag (e.g. the district slug); the engine
	// treats it as payload.
	Key string
	// Attrs carries any additional string attributes.
	Attrs map[string]string
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%s[%s]=%.3f@%s(conf=%.2f)",
		e.Type, e.Key, e.Value, e.Time.Format("2006-01-02"), e.Confidence)
}

// Validate reports event well-formedness.
func (e Event) Validate() error {
	if e.Type == "" {
		return fmt.Errorf("cep: event without type")
	}
	if e.Time.IsZero() {
		return fmt.Errorf("cep: event %s without time", e.Type)
	}
	if e.Confidence < 0 || e.Confidence > 1 {
		return fmt.Errorf("cep: event %s confidence %v outside [0,1]", e.Type, e.Confidence)
	}
	return nil
}

// LessEvents is the canonical event ordering: time, then type. Any
// consumer sorting events (or structures carrying them) must use it so
// merged streams agree on order.
func LessEvents(a, b Event) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.Type < b.Type
}

// SortEvents orders events by LessEvents (stable input for the engine
// when merging sources).
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		return LessEvents(evs[i], evs[j])
	})
}

// Duration is a parsed DSL duration. Only the units the domain needs are
// supported: d (days), h (hours), m (minutes).
type Duration time.Duration

// ParseDuration parses "30d", "12h", "45m".
func ParseDuration(s string) (Duration, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("cep: bad duration %q", s)
	}
	unit := s[len(s)-1]
	num := s[:len(s)-1]
	var n int
	for _, r := range num {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("cep: bad duration %q", s)
		}
		n = n*10 + int(r-'0')
	}
	if n == 0 {
		return 0, fmt.Errorf("cep: zero duration %q", s)
	}
	switch unit {
	case 'd':
		return Duration(time.Duration(n) * 24 * time.Hour), nil
	case 'h':
		return Duration(time.Duration(n) * time.Hour), nil
	case 'm':
		return Duration(time.Duration(n) * time.Minute), nil
	default:
		return 0, fmt.Errorf("cep: bad duration unit %q", s)
	}
}

// String renders the duration in the DSL's units.
func (d Duration) String() string {
	td := time.Duration(d)
	switch {
	case td%(24*time.Hour) == 0:
		return fmt.Sprintf("%dd", td/(24*time.Hour))
	case td%time.Hour == 0:
		return fmt.Sprintf("%dh", td/time.Hour)
	default:
		return fmt.Sprintf("%dm", td/time.Minute)
	}
}

// normalizeType canonicalizes a type name for matching (case-insensitive).
func normalizeType(s string) string { return strings.ToLower(s) }
