package cep

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2015, 10, 1, 0, 0, 0, 0, time.UTC)

// mkEvents builds a daily series of one type from values.
func mkEvents(typ string, start time.Time, values []float64) []Event {
	out := make([]Event, len(values))
	for i, v := range values {
		out[i] = Event{Type: typ, Time: start.AddDate(0, 0, i), Value: v, Confidence: 1}
	}
	return out
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"30d", 30 * 24 * time.Hour, true},
		{"12h", 12 * time.Hour, true},
		{"45m", 45 * time.Minute, true},
		{"0d", 0, false},
		{"d", 0, false},
		{"30", 0, false},
		{"30x", 0, false},
		{"-3d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseDuration(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && time.Duration(got) != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round trip of String.
	for _, s := range []string{"30d", "12h", "45m"} {
		d, _ := ParseDuration(s)
		if d.String() != s {
			t.Errorf("Duration round trip %q = %q", s, d.String())
		}
	}
}

func TestParseRulesBasic(t *testing.T) {
	rules, err := ParseRules(`
# drought precursor
RULE rainfall-deficit
WHEN avg(rainfall) < 1.2 OVER 30d
COOLDOWN 14d
EMIT RainfallDeficit SEVERITY warning CONFIDENCE 0.7 SOURCE sensor
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if r.Name != "rainfall-deficit" || r.Emit != "RainfallDeficit" ||
		r.Severity != "warning" || r.Confidence != 0.7 || r.Source != "sensor" {
		t.Errorf("rule = %+v", r)
	}
	if time.Duration(r.Cooldown) != 14*24*time.Hour {
		t.Errorf("cooldown = %v", r.Cooldown)
	}
	agg, ok := r.When.(AggCondition)
	if !ok || agg.Fn != AggAvg || agg.EventType != "rainfall" || agg.Op != "<" || agg.Threshold != 1.2 {
		t.Errorf("condition = %#v", r.When)
	}
}

func TestParseRulesComposite(t *testing.T) {
	rules, err := ParseRules(`
RULE complex
WHEN (avg(rain) < 1 OVER 30d AND last(soil) < 0.2 OVER 10d) OR SEQ(A, B, C) WITHIN 45d
EMIT Alert

RULE counting
WHEN COUNT(ik-worms) >= 2 WITHIN 30d AND ABSENT rain FOR 21d
EMIT IKAlert
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	or, ok := rules[0].When.(OrCondition)
	if !ok || len(or.Subs) != 2 {
		t.Fatalf("top = %#v", rules[0].When)
	}
	if _, ok := or.Subs[0].(AndCondition); !ok {
		t.Errorf("first branch should be AND: %#v", or.Subs[0])
	}
	seq, ok := or.Subs[1].(SeqCondition)
	if !ok || len(seq.Types) != 3 {
		t.Errorf("second branch = %#v", or.Subs[1])
	}
	and, ok := rules[1].When.(AndCondition)
	if !ok || len(and.Subs) != 2 {
		t.Fatalf("rule 2 = %#v", rules[1].When)
	}
	if _, ok := and.Subs[1].(AbsenceCondition); !ok {
		t.Errorf("expected ABSENT: %#v", and.Subs[1])
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no when", "RULE x EMIT Y"},
		{"no emit", "RULE x WHEN avg(a) < 1 OVER 3d"},
		{"bad duration", "RULE x WHEN avg(a) < 1 OVER 3y EMIT Y"},
		{"bad op", "RULE x WHEN avg(a) ~ 1 OVER 3d EMIT Y"},
		{"bad threshold", "RULE x WHEN avg(a) < banana OVER 3d EMIT Y"},
		{"seq one type", "RULE x WHEN SEQ(A) WITHIN 3d EMIT Y"},
		{"unclosed paren", "RULE x WHEN (avg(a) < 1 OVER 3d EMIT Y"},
		{"bad confidence", "RULE x WHEN avg(a) < 1 OVER 3d EMIT Y CONFIDENCE 2"},
		{"dup names", "RULE x WHEN avg(a)<1 OVER 3d EMIT Y RULE x WHEN avg(a)<1 OVER 3d EMIT Z"},
		{"junk condition", "RULE x WHEN banana EMIT Y"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseRules(c.src); err == nil {
				t.Errorf("expected error for %q", c.src)
			}
		})
	}
}

func TestMustParseRulesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseRules("garbage")
}

func TestRuleStringRoundTrip(t *testing.T) {
	src := `RULE r1
WHEN avg(rain) < 1.5 OVER 30d AND COUNT(worms) >= 2 WITHIN 20d
COOLDOWN 7d
EMIT Alert SEVERITY severe CONFIDENCE 0.8`
	rules := MustParseRules(src)
	again := MustParseRules(rules[0].String())
	if again[0].Name != rules[0].Name || again[0].Emit != rules[0].Emit ||
		again[0].Severity != rules[0].Severity || again[0].Confidence != rules[0].Confidence {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", rules[0], again[0])
	}
}

func TestAggregateRuleFires(t *testing.T) {
	eng, err := NewEngine(MustParseRules(`
RULE dry
WHEN avg(rainfall) < 1.0 OVER 10d
EMIT Dry
`))
	if err != nil {
		t.Fatal(err)
	}
	// 15 dry days: rule fires once enough window accumulates (and keeps
	// firing without cooldown).
	emitted, err := eng.ProcessAll(mkEvents("rainfall", t0, repeat(0.2, 15)))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) == 0 {
		t.Fatal("dry spell should fire")
	}
	if emitted[0].Type != "Dry" {
		t.Errorf("emitted type = %s", emitted[0].Type)
	}
	// Wet series: never fires.
	eng2, _ := NewEngine(MustParseRules(`
RULE dry
WHEN avg(rainfall) < 1.0 OVER 10d
EMIT Dry
`))
	emitted, err = eng2.ProcessAll(mkEvents("rainfall", t0, repeat(5, 15)))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 0 {
		t.Errorf("wet series fired %d times", len(emitted))
	}
}

func TestCooldownSuppressesRefiring(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE dry
WHEN avg(rainfall) < 1.0 OVER 5d
COOLDOWN 10d
EMIT Dry
`))
	emitted, err := eng.ProcessAll(mkEvents("rainfall", t0, repeat(0, 30)))
	if err != nil {
		t.Fatal(err)
	}
	// 30 days of firing conditions with a 10d cooldown → ~3 firings.
	if len(emitted) < 2 || len(emitted) > 4 {
		t.Errorf("emissions with cooldown = %d, want ~3", len(emitted))
	}
}

func TestMinMaxSumLastCount(t *testing.T) {
	src := `
RULE hot WHEN max(temp) > 35 OVER 5d EMIT Hot
RULE cold WHEN min(temp) < 0 OVER 5d EMIT Cold
RULE wet WHEN sum(rain) > 50 OVER 5d EMIT Wet
RULE now WHEN last(soil) < 0.1 OVER 5d EMIT DrySoil
RULE busy WHEN COUNT(rain) >= 5 WITHIN 5d EMIT Busy
`
	eng, err := NewEngine(MustParseRules(src))
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Type: "temp", Time: t0, Value: 36, Confidence: 1},
		{Type: "temp", Time: t0.AddDate(0, 0, 1), Value: -2, Confidence: 1},
		{Type: "rain", Time: t0.AddDate(0, 0, 1), Value: 30, Confidence: 1},
		{Type: "rain", Time: t0.AddDate(0, 0, 2), Value: 30, Confidence: 1},
		{Type: "soil", Time: t0.AddDate(0, 0, 2), Value: 0.05, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]int)
	for _, e := range emitted {
		types[e.Type]++
	}
	for _, want := range []string{"Hot", "Cold", "Wet", "DrySoil"} {
		if types[want] == 0 {
			t.Errorf("%s did not fire: %v", want, types)
		}
	}
	if types["Busy"] != 0 {
		t.Errorf("Busy should not fire with only 2 rain events")
	}
}

func TestSequenceDetection(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE chain
WHEN SEQ(A, B, C) WITHIN 10d
EMIT Chained
`))
	evs := []Event{
		{Type: "A", Time: t0, Value: 1, Confidence: 1},
		{Type: "B", Time: t0.AddDate(0, 0, 2), Value: 1, Confidence: 1},
		{Type: "C", Time: t0.AddDate(0, 0, 4), Value: 1, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 || emitted[0].Type != "Chained" {
		t.Fatalf("emitted = %v", emitted)
	}
}

func TestSequenceOrderMatters(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE chain WHEN SEQ(A, B) WITHIN 10d EMIT Chained
`))
	evs := []Event{
		{Type: "B", Time: t0, Value: 1, Confidence: 1},
		{Type: "A", Time: t0.AddDate(0, 0, 1), Value: 1, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 0 {
		t.Errorf("B then A should not match SEQ(A, B): %v", emitted)
	}
}

func TestSequenceExpiry(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE chain WHEN SEQ(A, B) WITHIN 5d EMIT Chained
`))
	evs := []Event{
		{Type: "A", Time: t0, Value: 1, Confidence: 1},
		{Type: "B", Time: t0.AddDate(0, 0, 8), Value: 1, Confidence: 1}, // too late
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 0 {
		t.Errorf("expired sequence matched: %v", emitted)
	}
}

func TestAbsenceCondition(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE silent
WHEN ABSENT rainfall FOR 7d
COOLDOWN 30d
EMIT NoRain
`))
	evs := []Event{
		{Type: "rainfall", Time: t0, Value: 5, Confidence: 1},
		// Heartbeat events of another type advance the clock.
		{Type: "tick", Time: t0.AddDate(0, 0, 3), Value: 0, Confidence: 1},
		{Type: "tick", Time: t0.AddDate(0, 0, 8), Value: 0, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 || emitted[0].Type != "NoRain" {
		t.Fatalf("absence: %v", emitted)
	}
}

func TestRuleChaining(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE first
WHEN avg(rain) < 1 OVER 3d
COOLDOWN 90d
EMIT Deficit

RULE second
WHEN COUNT(Deficit) >= 1 WITHIN 10d
COOLDOWN 90d
EMIT DroughtWarning SEVERITY severe
`))
	emitted, err := eng.ProcessAll(mkEvents("rain", t0, repeat(0, 5)))
	if err != nil {
		t.Fatal(err)
	}
	types := make(map[string]bool)
	for _, e := range emitted {
		types[e.Type] = true
	}
	if !types["Deficit"] || !types["DroughtWarning"] {
		t.Fatalf("chaining failed: %v", emitted)
	}
	// Severity attr propagated.
	for _, e := range emitted {
		if e.Type == "DroughtWarning" && e.Attrs["severity"] != "severe" {
			t.Errorf("severity attr = %q", e.Attrs["severity"])
		}
	}
}

func TestChainCycleDetected(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE loop
WHEN COUNT(Ouro) >= 1 WITHIN 10d
EMIT Ouro
`))
	_, err := eng.Process(Event{Type: "Ouro", Time: t0, Value: 1, Confidence: 1})
	if err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("cycle should be detected, got %v", err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r WHEN avg(a) < 1 OVER 3d EMIT X
`))
	if _, err := eng.Process(Event{Type: "a", Time: t0.AddDate(0, 0, 5), Value: 0, Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process(Event{Type: "a", Time: t0, Value: 0, Confidence: 1}); err == nil {
		t.Fatal("out-of-order event should be rejected")
	}
	if eng.Stats().OutOfOrder != 1 {
		t.Errorf("stats = %+v", eng.Stats())
	}
}

func TestEventValidation(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r WHEN avg(a) < 1 OVER 3d EMIT X
`))
	bad := []Event{
		{},
		{Type: "a"},
		{Type: "a", Time: t0, Confidence: 2},
	}
	for i, ev := range bad {
		if _, err := eng.Process(ev); err == nil {
			t.Errorf("case %d: invalid event accepted", i)
		}
	}
}

func TestConfidencePropagation(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r
WHEN avg(sig) > 0.5 OVER 5d
COOLDOWN 30d
EMIT Out CONFIDENCE 0.8
`))
	// Low-confidence inputs must produce a lower-confidence emission.
	evs := []Event{
		{Type: "sig", Time: t0, Value: 1, Confidence: 0.5},
		{Type: "sig", Time: t0.AddDate(0, 0, 1), Value: 1, Confidence: 0.5},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Fatalf("emitted = %v", emitted)
	}
	got := emitted[0].Confidence
	if got > 0.5 || got < 0.3 {
		t.Errorf("confidence = %v, want ≈ 0.8 × 0.5", got)
	}
}

func TestEngineRejectsBadRules(t *testing.T) {
	if _, err := NewEngine([]Rule{{Name: "x"}}); err == nil {
		t.Fatal("rule without WHEN/EMIT should be rejected")
	}
}

func TestCaseInsensitiveTypeMatching(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r WHEN count(RainFall) >= 1 WITHIN 5d EMIT X
`))
	emitted, err := eng.Process(Event{Type: "rainfall", Time: t0, Value: 1, Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Errorf("case-insensitive match failed: %v", emitted)
	}
}

func TestWindowEviction(t *testing.T) {
	w := newWindow(5 * 24 * time.Hour)
	for i := 0; i < 300; i++ {
		w.add(t0.AddDate(0, 0, i), 1)
	}
	if w.count() > 6 {
		t.Errorf("window count = %d after eviction", w.count())
	}
	if sum, _ := w.aggregate(AggSum); sum > 6 {
		t.Errorf("sum = %v not evicted", sum)
	}
	// Compaction must have kept memory bounded.
	if len(w.times) > 64+10 {
		t.Errorf("backing array len = %d; compaction failed", len(w.times))
	}
}

func TestWindowAggregates(t *testing.T) {
	w := newWindow(10 * 24 * time.Hour)
	for i, v := range []float64{3, 1, 4, 1, 5} {
		w.add(t0.AddDate(0, 0, i), v)
	}
	checks := []struct {
		fn   AggFunc
		want float64
	}{
		{AggCount, 5}, {AggSum, 14}, {AggAvg, 2.8},
		{AggMin, 1}, {AggMax, 5}, {AggLast, 5},
	}
	for _, c := range checks {
		got, ok := w.aggregate(c.fn)
		if !ok || got != c.want {
			t.Errorf("%s = %v (%v), want %v", c.fn, got, ok, c.want)
		}
	}
	empty := newWindow(time.Hour)
	if _, ok := empty.aggregate(AggAvg); ok {
		t.Error("empty window avg should report !ok")
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r WHEN avg(a) < 1 OVER 5d EMIT X
`))
	emitted, err := eng.ProcessAll(mkEvents("a", t0, repeat(0, 10)))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.EventsProcessed != 10+len(emitted) {
		t.Errorf("events processed = %d", st.EventsProcessed)
	}
	if st.Emissions != len(emitted) {
		t.Errorf("emissions = %d, want %d", st.Emissions, len(emitted))
	}
	if st.RulesEvaluated == 0 {
		t.Error("rules evaluated not counted")
	}
}

func TestNonListenerEventIgnoredCheaply(t *testing.T) {
	eng, _ := NewEngine(MustParseRules(`
RULE r WHEN avg(a) < 1 OVER 5d EMIT X
`))
	before := eng.Stats().RulesEvaluated
	if _, err := eng.Process(Event{Type: "unrelated", Time: t0, Value: 1, Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().RulesEvaluated != before {
		t.Error("non-listening rule should not be evaluated")
	}
}
