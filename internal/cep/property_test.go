package cep

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickWindowConservation: window aggregates always agree with a
// naive recomputation over the retained samples, across random add
// sequences and spans.
func TestQuickWindowConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spanDays := 1 + rng.Intn(60)
		w := newWindow(time.Duration(spanDays) * 24 * time.Hour)
		type sample struct {
			at time.Time
			v  float64
		}
		var all []sample
		cur := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 200; i++ {
			cur = cur.Add(time.Duration(rng.Intn(48)) * time.Hour)
			v := rng.NormFloat64() * 10
			w.add(cur, v)
			all = append(all, sample{cur, v})
		}
		// Naive reference over the window (exclusive cutoff like evict).
		cutoff := cur.Add(-time.Duration(spanDays) * 24 * time.Hour)
		var refSum float64
		refCount := 0
		refMin, refMax := 1e18, -1e18
		for _, s := range all {
			if s.at.After(cutoff) {
				refSum += s.v
				refCount++
				if s.v < refMin {
					refMin = s.v
				}
				if s.v > refMax {
					refMax = s.v
				}
			}
		}
		if w.count() != refCount {
			return false
		}
		if refCount == 0 {
			_, ok := w.aggregate(AggAvg)
			return !ok
		}
		sum, _ := w.aggregate(AggSum)
		if diff := sum - refSum; diff > 1e-6 || diff < -1e-6 {
			return false
		}
		min, _ := w.aggregate(AggMin)
		max, _ := w.aggregate(AggMax)
		return min == refMin && max == refMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineDeterminism: processing the same random event batch
// twice through fresh engines yields identical emissions.
func TestQuickEngineDeterminism(t *testing.T) {
	rules := MustParseRules(`
RULE a WHEN avg(x) < 0 OVER 10d COOLDOWN 5d EMIT NegX
RULE b WHEN COUNT(y) >= 3 WITHIN 7d COOLDOWN 7d EMIT ManyY
RULE c WHEN SEQ(NegX, ManyY) WITHIN 30d COOLDOWN 30d EMIT Chain
`)
	gen := func(seed int64) []Event {
		rng := rand.New(rand.NewSource(seed))
		cur := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		var evs []Event
		for i := 0; i < 150; i++ {
			cur = cur.Add(time.Duration(1+rng.Intn(24)) * time.Hour)
			typ := "x"
			if rng.Intn(2) == 0 {
				typ = "y"
			}
			evs = append(evs, Event{Type: typ, Time: cur, Value: rng.NormFloat64(), Confidence: 1})
		}
		return evs
	}
	f := func(seed int64) bool {
		e1, err := NewEngine(rules)
		if err != nil {
			return false
		}
		e2, err := NewEngine(rules)
		if err != nil {
			return false
		}
		out1, err1 := e1.ProcessAll(gen(seed))
		out2, err2 := e2.ProcessAll(gen(seed))
		if (err1 == nil) != (err2 == nil) || len(out1) != len(out2) {
			return false
		}
		for i := range out1 {
			if out1[i].Type != out2[i].Type || !out1[i].Time.Equal(out2[i].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickEmissionConfidenceBounds: emitted confidences stay in [0,1]
// for arbitrary input confidences.
func TestQuickEmissionConfidenceBounds(t *testing.T) {
	rules := MustParseRules(`
RULE a WHEN COUNT(x) >= 1 WITHIN 5d EMIT Out CONFIDENCE 0.9
`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng, err := NewEngine(rules)
		if err != nil {
			return false
		}
		cur := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 50; i++ {
			cur = cur.Add(time.Hour)
			out, err := eng.Process(Event{Type: "x", Time: cur, Value: 1, Confidence: rng.Float64()})
			if err != nil {
				return false
			}
			for _, e := range out {
				if e.Confidence < 0 || e.Confidence > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
