package cep

import (
	"fmt"
	"strings"
)

// AggFunc enumerates the windowed aggregates.
type AggFunc int

// Aggregate functions.
const (
	AggAvg AggFunc = iota + 1
	AggMin
	AggMax
	AggSum
	AggCount
	AggLast
)

var aggNames = map[string]AggFunc{
	"avg": AggAvg, "min": AggMin, "max": AggMax,
	"sum": AggSum, "count": AggCount, "last": AggLast,
}

// String names the aggregate.
func (f AggFunc) String() string {
	for n, v := range aggNames {
		if v == f {
			return n
		}
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// CmpOp is a comparison operator in conditions.
type CmpOp string

// apply evaluates the comparison.
func (op CmpOp) apply(a, b float64) bool {
	switch op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	case "=", "==":
		return a == b
	case "!=":
		return a != b
	default:
		return false
	}
}

// Condition is a node of a rule's WHEN tree.
type Condition interface {
	fmt.Stringer
	// eventTypes returns the (normalized) event types the condition
	// listens to, so the engine can index rules by input.
	eventTypes() []string
}

// AggCondition compares a windowed aggregate against a constant:
// avg(rainfall) < 1.2 OVER 30d.
type AggCondition struct {
	Fn        AggFunc
	EventType string
	Op        CmpOp
	Threshold float64
	Over      Duration
	// EmptyIsFalse: an empty window makes the condition false (default);
	// count() aggregates treat empty windows as zero instead.
}

// String implements Condition.
func (c AggCondition) String() string {
	return fmt.Sprintf("%s(%s) %s %g OVER %s", c.Fn, c.EventType, c.Op, c.Threshold, c.Over)
}

func (c AggCondition) eventTypes() []string { return []string{normalizeType(c.EventType)} }

// SeqCondition matches an ordered sequence of event types within a span:
// SEQ(RainfallDeficit, SoilMoistureDecline) WITHIN 45d.
type SeqCondition struct {
	Types  []string
	Within Duration
}

// String implements Condition.
func (c SeqCondition) String() string {
	return fmt.Sprintf("SEQ(%s) WITHIN %s", strings.Join(c.Types, ", "), c.Within)
}

func (c SeqCondition) eventTypes() []string {
	out := make([]string, len(c.Types))
	for i, t := range c.Types {
		out[i] = normalizeType(t)
	}
	return out
}

// CountCondition counts events of a type within a span:
// COUNT(ik-worms) >= 2 WITHIN 30d.
type CountCondition struct {
	EventType string
	Op        CmpOp
	Threshold float64
	Within    Duration
}

// String implements Condition.
func (c CountCondition) String() string {
	return fmt.Sprintf("COUNT(%s) %s %g WITHIN %s", c.EventType, c.Op, c.Threshold, c.Within)
}

func (c CountCondition) eventTypes() []string { return []string{normalizeType(c.EventType)} }

// AbsenceCondition is true when no event of the type arrived for the
// given span: ABSENT rainfall FOR 21d.
type AbsenceCondition struct {
	EventType string
	For       Duration
}

// String implements Condition.
func (c AbsenceCondition) String() string {
	return fmt.Sprintf("ABSENT %s FOR %s", c.EventType, c.For)
}

func (c AbsenceCondition) eventTypes() []string { return []string{normalizeType(c.EventType)} }

// AndCondition is a conjunction.
type AndCondition struct{ Subs []Condition }

// String implements Condition.
func (c AndCondition) String() string { return joinConds(c.Subs, " AND ") }

func (c AndCondition) eventTypes() []string { return unionTypes(c.Subs) }

// OrCondition is a disjunction.
type OrCondition struct{ Subs []Condition }

// String implements Condition.
func (c OrCondition) String() string { return joinConds(c.Subs, " OR ") }

func (c OrCondition) eventTypes() []string { return unionTypes(c.Subs) }

func joinConds(subs []Condition, sep string) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func unionTypes(subs []Condition) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range subs {
		for _, t := range s.eventTypes() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// Rule is one compiled CEP rule.
type Rule struct {
	// Name identifies the rule (unique within an engine).
	Name string
	// When is the condition tree.
	When Condition
	// Cooldown suppresses re-firing for the given span (0 = fire freely).
	Cooldown Duration
	// Emit is the composite event type produced on firing.
	Emit string
	// Severity is an optional label attached to emissions ("watch",
	// "warning", "severe", "extreme").
	Severity string
	// Confidence is the rule's own confidence in [0,1] (default 1).
	Confidence float64
	// Source tags where the rule came from ("ik", "sensor", "fusion").
	Source string
}

// Validate checks rule well-formedness.
func (r Rule) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("cep: rule without name")
	case r.When == nil:
		return fmt.Errorf("cep: rule %s without WHEN", r.Name)
	case r.Emit == "":
		return fmt.Errorf("cep: rule %s without EMIT", r.Name)
	case r.Confidence < 0 || r.Confidence > 1:
		return fmt.Errorf("cep: rule %s confidence %v outside [0,1]", r.Name, r.Confidence)
	}
	return nil
}

// String renders the rule in DSL form.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RULE %s\nWHEN %s\n", r.Name, r.When)
	if r.Cooldown != 0 {
		fmt.Fprintf(&b, "COOLDOWN %s\n", r.Cooldown)
	}
	fmt.Fprintf(&b, "EMIT %s", r.Emit)
	if r.Severity != "" {
		fmt.Fprintf(&b, " SEVERITY %s", r.Severity)
	}
	if r.Confidence != 0 && r.Confidence != 1 {
		fmt.Fprintf(&b, " CONFIDENCE %g", r.Confidence)
	}
	return b.String()
}
