// Package cep implements the detection-oriented Complex Event Processing
// engine of the paper's ontology segment layer: the component that
// "infer[s] patterns leading to drought event based on a set of rules
// derived from indigenous knowledge".
//
// The engine consumes a single time-ordered event stream — the
// middleware runs one engine shard per district, fanned out across a
// worker pool and serialized behind per-shard locks (see
// internal/core's Ingest pipeline) — maintains per-type sliding
// windows, and evaluates declarative rules written in a small text DSL:
//
//	RULE rainfall-deficit
//	WHEN avg(rainfall) < 1.2 OVER 30d AND last(soil_moisture) < 0.25
//	COOLDOWN 14d
//	EMIT RainfallDeficit SEVERITY warning CONFIDENCE 0.7
//
// Rules support windowed aggregates (avg/min/max/sum/count/last),
// sequence detection (SEQ(A, B, C) WITHIN 45d), event counting
// (COUNT(x) >= n WITHIN 30d), absence (ABSENT x FOR 21d), boolean
// composition with AND/OR and parentheses, per-rule cooldowns, and
// emission of composite events that feed back into the stream so rules
// can chain (process → event, the paper's DOLCE story). Events arriving
// behind a shard's clock are rejected with ErrOutOfOrder, which callers
// count rather than fail on (lossy uplinks reorder).
package cep
