package cep

import (
	"math"
	"time"
)

// window is a time-bounded buffer of (time, value) samples for one event
// type, supporting O(1) amortized eviction and O(1) running aggregates
// for sum/count; min/max fall back to a scan on demand (windows are small
// at daily cadence).
type window struct {
	span   time.Duration
	times  []time.Time
	values []float64
	sum    float64
	head   int // index of the first live sample
}

func newWindow(span time.Duration) *window {
	return &window{span: span}
}

// add appends a sample and evicts everything older than span before t.
func (w *window) add(t time.Time, v float64) {
	w.times = append(w.times, t)
	w.values = append(w.values, v)
	w.sum += v
	w.evict(t)
}

// observe advances time without adding a sample (for absence checks and
// aggregate reads at arbitrary times).
func (w *window) observe(t time.Time) { w.evict(t) }

func (w *window) evict(now time.Time) {
	cutoff := now.Add(-w.span)
	for w.head < len(w.times) && !w.times[w.head].After(cutoff) {
		w.sum -= w.values[w.head]
		w.head++
	}
	// Compact when the dead prefix dominates.
	if w.head > 64 && w.head*2 > len(w.times) {
		n := copy(w.times, w.times[w.head:])
		w.times = w.times[:n]
		m := copy(w.values, w.values[w.head:])
		w.values = w.values[:m]
		w.head = 0
	}
}

func (w *window) count() int { return len(w.times) - w.head }

func (w *window) aggregate(fn AggFunc) (float64, bool) {
	n := w.count()
	if n == 0 {
		return 0, false
	}
	switch fn {
	case AggCount:
		return float64(n), true
	case AggSum:
		return w.sum, true
	case AggAvg:
		return w.sum / float64(n), true
	case AggMin:
		min := math.Inf(1)
		for _, v := range w.values[w.head:] {
			if v < min {
				min = v
			}
		}
		return min, true
	case AggMax:
		max := math.Inf(-1)
		for _, v := range w.values[w.head:] {
			if v > max {
				max = v
			}
		}
		return max, true
	case AggLast:
		return w.values[len(w.values)-1], true
	default:
		return 0, false
	}
}

// lastTime returns the newest sample time (zero when empty — callers use
// it for ABSENT checks).
func (w *window) lastTime() time.Time {
	if len(w.times) == 0 {
		return time.Time{}
	}
	return w.times[len(w.times)-1]
}
