package cep

import (
	"errors"
	"fmt"
	"time"
)

// ErrOutOfOrder marks events rejected for arriving behind the engine's
// clock. Callers skip these (lossy uplinks reorder); every other
// Process error is a configuration or data bug and must surface.
var ErrOutOfOrder = errors.New("cep: out-of-order event")

// maxChainDepth bounds rule chaining (rule A emits an event that fires
// rule B, ...). Cycles among rules otherwise loop forever.
const maxChainDepth = 8

// EngineStats summarizes an engine's activity.
type EngineStats struct {
	EventsProcessed int
	RulesEvaluated  int
	Emissions       int
	ChainDepthMax   int
	OutOfOrder      int
}

// Engine evaluates a fixed rule set over a single time-ordered event
// stream. It is deliberately single-goroutine; Process must not be
// called concurrently. The core layer shards one engine per district
// and serializes each shard behind its own lock (see
// core.Segment.CEPEngine), which is what lets ingest cycles fan
// districts out across workers without the engine itself locking.
type Engine struct {
	rules []Rule
	// byType maps normalized event type → indexes of rules listening to it.
	byType map[string][]int
	// timeDriven lists rules that must be re-evaluated on every event
	// (those containing ABSENT conditions).
	timeDriven []int
	// windows per normalized event type, sized to the largest span any
	// condition demands for that type.
	windows map[string]*window
	// conf tracks a per-type window of confidences (aligned spans).
	conf map[string]*window
	// seqStates per rule index → sequence partial-match state.
	seqStates map[int][]*seqState
	// lastFire per rule index.
	lastFire map[int]time.Time
	// lastSeqComplete per rule index per condition pointer identity is
	// tricky; keyed by rule idx + condition string instead.
	seqDone map[string]time.Time
	clock   time.Time
	stats   EngineStats
}

// seqState is one partial sequence match.
type seqState struct {
	condKey string
	types   []string
	next    int
	started time.Time
	within  time.Duration
}

// NewEngine compiles a rule set. Every rule is validated; window spans
// are pre-sized.
func NewEngine(rules []Rule) (*Engine, error) {
	e := &Engine{
		rules:     rules,
		byType:    make(map[string][]int),
		windows:   make(map[string]*window),
		conf:      make(map[string]*window),
		seqStates: make(map[int][]*seqState),
		lastFire:  make(map[int]time.Time),
		seqDone:   make(map[string]time.Time),
	}
	spans := make(map[string]time.Duration)
	for i, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		for _, t := range r.When.eventTypes() {
			e.byType[t] = append(e.byType[t], i)
		}
		if hasAbsence(r.When) {
			e.timeDriven = append(e.timeDriven, i)
		}
		collectSpans(r.When, spans)
	}
	for t, span := range spans {
		e.windows[t] = newWindow(span)
		e.conf[t] = newWindow(span)
	}
	return e, nil
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Stats returns a copy of the engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// collectSpans records the maximum window span needed per event type.
func collectSpans(c Condition, spans map[string]time.Duration) {
	grow := func(t string, d Duration) {
		key := normalizeType(t)
		if time.Duration(d) > spans[key] {
			spans[key] = time.Duration(d)
		}
	}
	switch c := c.(type) {
	case AggCondition:
		grow(c.EventType, c.Over)
	case CountCondition:
		grow(c.EventType, c.Within)
	case AbsenceCondition:
		grow(c.EventType, c.For)
	case SeqCondition:
		for _, t := range c.Types {
			grow(t, c.Within)
		}
	case AndCondition:
		for _, s := range c.Subs {
			collectSpans(s, spans)
		}
	case OrCondition:
		for _, s := range c.Subs {
			collectSpans(s, spans)
		}
	}
}

func hasAbsence(c Condition) bool {
	switch c := c.(type) {
	case AbsenceCondition:
		return true
	case AndCondition:
		for _, s := range c.Subs {
			if hasAbsence(s) {
				return true
			}
		}
	case OrCondition:
		for _, s := range c.Subs {
			if hasAbsence(s) {
				return true
			}
		}
	}
	return false
}

// Process feeds one event. It returns every emission the event caused,
// including chained ones, in firing order. Events must arrive in
// non-decreasing time order; out-of-order events are rejected.
func (e *Engine) Process(ev Event) ([]Event, error) {
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	if !e.clock.IsZero() && ev.Time.Before(e.clock) {
		e.stats.OutOfOrder++
		return nil, fmt.Errorf("%w: %s before clock %s", ErrOutOfOrder, ev, e.clock.Format(time.RFC3339))
	}
	var emitted []Event
	if err := e.process(ev, 0, &emitted); err != nil {
		return nil, err
	}
	return emitted, nil
}

// ProcessAll sorts the batch by time and feeds it through.
func (e *Engine) ProcessAll(evs []Event) ([]Event, error) {
	SortEvents(evs)
	var out []Event
	for _, ev := range evs {
		em, err := e.Process(ev)
		if err != nil {
			return out, err
		}
		out = append(out, em...)
	}
	return out, nil
}

func (e *Engine) process(ev Event, depth int, emitted *[]Event) error {
	if depth > maxChainDepth {
		return fmt.Errorf("cep: rule chain deeper than %d (cycle?) at %s", maxChainDepth, ev.Type)
	}
	if depth > e.stats.ChainDepthMax {
		e.stats.ChainDepthMax = depth
	}
	e.clock = ev.Time
	e.stats.EventsProcessed++

	key := normalizeType(ev.Type)
	if w, ok := e.windows[key]; ok {
		w.add(ev.Time, ev.Value)
		e.conf[key].add(ev.Time, ev.Confidence)
	}
	e.advanceSequences(ev)

	// Determine candidate rules: listeners on this type + time-driven.
	candidates := e.byType[key]
	for _, idx := range e.timeDriven {
		candidates = appendUnique(candidates, idx)
	}
	for _, idx := range candidates {
		r := e.rules[idx]
		e.stats.RulesEvaluated++
		if r.Cooldown != 0 {
			if last, ok := e.lastFire[idx]; ok && ev.Time.Before(last.Add(time.Duration(r.Cooldown))) {
				continue
			}
		}
		if !e.eval(r.When, idx, ev.Time) {
			continue
		}
		e.lastFire[idx] = ev.Time
		out := Event{
			Type:       r.Emit,
			Time:       ev.Time,
			Value:      1,
			Confidence: e.emissionConfidence(r, ev),
			Key:        ev.Key,
			Attrs: map[string]string{
				"rule":     r.Name,
				"severity": r.Severity,
				"source":   r.Source,
			},
		}
		e.stats.Emissions++
		*emitted = append(*emitted, out)
		if err := e.process(out, depth+1, emitted); err != nil {
			return err
		}
	}
	return nil
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// emissionConfidence combines the rule confidence with the mean
// confidence of the triggering event's type window (the provenance-aware
// part of the paper's "detection-oriented CEP").
func (e *Engine) emissionConfidence(r Rule, trigger Event) float64 {
	conf := r.Confidence
	if w, ok := e.conf[normalizeType(trigger.Type)]; ok {
		if mean, ok := w.aggregate(AggAvg); ok {
			conf *= mean
		}
	} else if trigger.Confidence > 0 {
		conf *= trigger.Confidence
	}
	if conf < 0 {
		return 0
	}
	if conf > 1 {
		return 1
	}
	return conf
}

// advanceSequences updates NFA partial matches for every SEQ condition of
// rules listening to the event's type (non-listeners cannot advance).
func (e *Engine) advanceSequences(ev Event) {
	key := normalizeType(ev.Type)
	for _, idx := range e.byType[key] {
		r := e.rules[idx]
		forEachSeq(r.When, func(sc SeqCondition) {
			condKey := seqKey(idx, sc)
			types := sc.eventTypes()
			// Start a new instance when the event matches the head.
			if types[0] == key {
				e.seqStates[idx] = append(e.seqStates[idx], &seqState{
					condKey: condKey,
					types:   types,
					next:    1,
					started: ev.Time,
					within:  time.Duration(sc.Within),
				})
			}
			// Advance existing instances (skip brand-new ones at next==1
			// matching the same event type again is fine — they wait for
			// the *next* stage).
			live := e.seqStates[idx][:0]
			for _, st := range e.seqStates[idx] {
				if st.condKey != condKey {
					live = append(live, st)
					continue
				}
				if ev.Time.Sub(st.started) > st.within {
					continue // expired
				}
				if st.next < len(st.types) && st.types[st.next] == key && ev.Time.After(st.started) {
					st.next++
				}
				if st.next >= len(st.types) {
					e.seqDone[condKey] = ev.Time
					continue // completed; do not keep
				}
				live = append(live, st)
			}
			e.seqStates[idx] = live
		})
	}
}

func forEachSeq(c Condition, fn func(SeqCondition)) {
	switch c := c.(type) {
	case SeqCondition:
		fn(c)
	case AndCondition:
		for _, s := range c.Subs {
			forEachSeq(s, fn)
		}
	case OrCondition:
		for _, s := range c.Subs {
			forEachSeq(s, fn)
		}
	}
}

func seqKey(ruleIdx int, sc SeqCondition) string {
	return fmt.Sprintf("%d|%s", ruleIdx, sc.String())
}

// eval evaluates a condition tree at the given time.
func (e *Engine) eval(c Condition, ruleIdx int, now time.Time) bool {
	switch c := c.(type) {
	case AggCondition:
		w, ok := e.windows[normalizeType(c.EventType)]
		if !ok {
			return false
		}
		w.observe(now)
		v, ok := w.aggregate(c.Fn)
		if !ok {
			// Empty window: count() is zero, everything else undefined.
			if c.Fn == AggCount {
				return c.Op.apply(0, c.Threshold)
			}
			return false
		}
		return c.Op.apply(v, c.Threshold)
	case CountCondition:
		w, ok := e.windows[normalizeType(c.EventType)]
		if !ok {
			return c.Op.apply(0, c.Threshold)
		}
		w.observe(now)
		return c.Op.apply(float64(w.count()), c.Threshold)
	case AbsenceCondition:
		w, ok := e.windows[normalizeType(c.EventType)]
		if !ok {
			return true // never seen
		}
		last := w.lastTime()
		if last.IsZero() {
			return true
		}
		return now.Sub(last) >= time.Duration(c.For)
	case SeqCondition:
		// True when a completion happened within the condition's window
		// of 'now' (sticky semantics so SEQ composes with AND).
		done, ok := e.seqDone[seqKey(ruleIdx, c)]
		if !ok {
			return false
		}
		return now.Sub(done) <= time.Duration(c.Within)
	case AndCondition:
		for _, s := range c.Subs {
			if !e.eval(s, ruleIdx, now) {
				return false
			}
		}
		return true
	case OrCondition:
		for _, s := range c.Subs {
			if e.eval(s, ruleIdx, now) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
