package cep

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseRules parses a document of rules in the CEP DSL. Rules are
// separated implicitly by the next RULE keyword; '#' starts a line
// comment.
func ParseRules(src string) ([]Rule, error) {
	p := &ruleParser{toks: tokenizeRules(src)}
	var rules []Rule
	names := make(map[string]bool)
	for !p.atEOF() {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if names[r.Name] {
			return nil, fmt.Errorf("cep: duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("cep: no rules in input")
	}
	return rules, nil
}

// MustParseRules is ParseRules for static, programmer-authored rule text.
func MustParseRules(src string) []Rule {
	rs, err := ParseRules(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// --- tokenizer ---

type ruleTok struct {
	text string
	pos  int
}

func tokenizeRules(src string) []ruleTok {
	var toks []ruleTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, ruleTok{string(c), i})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, ruleTok{src[i:j], i})
			i = j
		default:
			j := i
			for j < len(src) && !unicode.IsSpace(rune(src[j])) &&
				!strings.ContainsRune("(),<>=!#", rune(src[j])) {
				j++
			}
			toks = append(toks, ruleTok{src[i:j], i})
			i = j
		}
	}
	return toks
}

type ruleParser struct {
	toks []ruleTok
	pos  int
}

func (p *ruleParser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *ruleParser) peek() string {
	if p.atEOF() {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *ruleParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *ruleParser) errf(format string, args ...any) error {
	where := "end of input"
	if !p.atEOF() {
		where = fmt.Sprintf("%q (offset %d)", p.toks[p.pos].text, p.toks[p.pos].pos)
	}
	return fmt.Errorf("cep: parse at %s: %s", where, fmt.Sprintf(format, args...))
}

func (p *ruleParser) expectWord(w string) error {
	if !strings.EqualFold(p.peek(), w) {
		return p.errf("expected %s", w)
	}
	p.next()
	return nil
}

func (p *ruleParser) parseRule() (Rule, error) {
	r := Rule{Confidence: 1}
	if err := p.expectWord("RULE"); err != nil {
		return r, err
	}
	r.Name = p.next()
	if r.Name == "" {
		return r, p.errf("rule needs a name")
	}
	if err := p.expectWord("WHEN"); err != nil {
		return r, err
	}
	cond, err := p.parseOr()
	if err != nil {
		return r, err
	}
	r.When = cond
	// Optional clauses until EMIT.
	for {
		switch strings.ToUpper(p.peek()) {
		case "COOLDOWN":
			p.next()
			d, err := ParseDuration(p.next())
			if err != nil {
				return r, err
			}
			r.Cooldown = d
		case "EMIT":
			p.next()
			r.Emit = p.next()
			if r.Emit == "" {
				return r, p.errf("EMIT needs an event type")
			}
			// Optional EMIT attributes.
			for {
				switch strings.ToUpper(p.peek()) {
				case "SEVERITY":
					p.next()
					r.Severity = strings.ToLower(p.next())
				case "CONFIDENCE":
					p.next()
					f, err := strconv.ParseFloat(p.next(), 64)
					if err != nil || f < 0 || f > 1 {
						return r, p.errf("CONFIDENCE needs a number in [0,1]")
					}
					r.Confidence = f
				case "SOURCE":
					p.next()
					r.Source = strings.ToLower(p.next())
				default:
					if err := r.Validate(); err != nil {
						return r, err
					}
					return r, nil
				}
			}
		default:
			return r, p.errf("expected COOLDOWN or EMIT")
		}
	}
}

func (p *ruleParser) parseOr() (Condition, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	subs := []Condition{left}
	for strings.EqualFold(p.peek(), "OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		subs = append(subs, right)
	}
	if len(subs) == 1 {
		return left, nil
	}
	return OrCondition{Subs: subs}, nil
}

func (p *ruleParser) parseAnd() (Condition, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	subs := []Condition{left}
	for strings.EqualFold(p.peek(), "AND") {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		subs = append(subs, right)
	}
	if len(subs) == 1 {
		return left, nil
	}
	return AndCondition{Subs: subs}, nil
}

func (p *ruleParser) parsePrimary() (Condition, error) {
	tok := p.peek()
	switch {
	case tok == "(":
		p.next()
		c, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, p.errf("expected )")
		}
		p.next()
		return c, nil
	case strings.EqualFold(tok, "SEQ"):
		return p.parseSeq()
	case strings.EqualFold(tok, "COUNT"):
		return p.parseCount()
	case strings.EqualFold(tok, "ABSENT"):
		return p.parseAbsent()
	default:
		if _, ok := aggNames[strings.ToLower(tok)]; ok {
			return p.parseAgg()
		}
		return nil, p.errf("expected condition")
	}
}

func (p *ruleParser) parseAgg() (Condition, error) {
	fn := aggNames[strings.ToLower(p.next())]
	if p.peek() != "(" {
		return nil, p.errf("expected ( after aggregate")
	}
	p.next()
	evType := p.next()
	if evType == "" || evType == ")" {
		return nil, p.errf("aggregate needs an event type")
	}
	if p.peek() != ")" {
		return nil, p.errf("expected ) after aggregate argument")
	}
	p.next()
	op := CmpOp(p.next())
	if !validCmp(op) {
		return nil, p.errf("expected comparison operator, got %q", op)
	}
	threshold, err := strconv.ParseFloat(p.next(), 64)
	if err != nil {
		return nil, p.errf("expected numeric threshold")
	}
	if err := p.expectWord("OVER"); err != nil {
		return nil, err
	}
	d, err := ParseDuration(p.next())
	if err != nil {
		return nil, err
	}
	return AggCondition{Fn: fn, EventType: evType, Op: op, Threshold: threshold, Over: d}, nil
}

func (p *ruleParser) parseSeq() (Condition, error) {
	p.next() // SEQ
	if p.peek() != "(" {
		return nil, p.errf("expected ( after SEQ")
	}
	p.next()
	var types []string
	for {
		t := p.next()
		if t == "" {
			return nil, p.errf("unterminated SEQ")
		}
		types = append(types, t)
		switch p.peek() {
		case ",":
			p.next()
		case ")":
			p.next()
			if len(types) < 2 {
				return nil, p.errf("SEQ needs at least two event types")
			}
			if err := p.expectWord("WITHIN"); err != nil {
				return nil, err
			}
			d, err := ParseDuration(p.next())
			if err != nil {
				return nil, err
			}
			return SeqCondition{Types: types, Within: d}, nil
		default:
			return nil, p.errf("expected , or ) in SEQ")
		}
	}
}

func (p *ruleParser) parseCount() (Condition, error) {
	p.next() // COUNT
	if p.peek() != "(" {
		return nil, p.errf("expected ( after COUNT")
	}
	p.next()
	evType := p.next()
	if p.peek() != ")" {
		return nil, p.errf("expected ) after COUNT argument")
	}
	p.next()
	op := CmpOp(p.next())
	if !validCmp(op) {
		return nil, p.errf("expected comparison operator")
	}
	threshold, err := strconv.ParseFloat(p.next(), 64)
	if err != nil {
		return nil, p.errf("expected numeric threshold")
	}
	if err := p.expectWord("WITHIN"); err != nil {
		return nil, err
	}
	d, err := ParseDuration(p.next())
	if err != nil {
		return nil, err
	}
	return CountCondition{EventType: evType, Op: op, Threshold: threshold, Within: d}, nil
}

func (p *ruleParser) parseAbsent() (Condition, error) {
	p.next() // ABSENT
	evType := p.next()
	if evType == "" {
		return nil, p.errf("ABSENT needs an event type")
	}
	if err := p.expectWord("FOR"); err != nil {
		return nil, err
	}
	d, err := ParseDuration(p.next())
	if err != nil {
		return nil, err
	}
	return AbsenceCondition{EventType: evType, For: d}, nil
}

func validCmp(op CmpOp) bool {
	switch op {
	case "<", "<=", ">", ">=", "=", "==", "!=":
		return true
	}
	return false
}
