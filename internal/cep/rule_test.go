package cep

import (
	"strings"
	"testing"
	"time"
)

func TestCmpOpApply(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b float64
		want bool
	}{
		{"<", 1, 2, true}, {"<", 2, 1, false},
		{"<=", 2, 2, true}, {"<=", 3, 2, false},
		{">", 2, 1, true}, {">", 1, 2, false},
		{">=", 2, 2, true}, {">=", 1, 2, false},
		{"=", 2, 2, true}, {"=", 1, 2, false},
		{"==", 2, 2, true},
		{"!=", 1, 2, true}, {"!=", 2, 2, false},
		{"~", 1, 1, false}, // unknown op is never true
	}
	for _, c := range cases {
		if got := c.op.apply(c.a, c.b); got != c.want {
			t.Errorf("%v.apply(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestConditionStringsAndTypes(t *testing.T) {
	or := OrCondition{Subs: []Condition{
		AndCondition{Subs: []Condition{
			AggCondition{Fn: AggAvg, EventType: "rain", Op: "<", Threshold: 1, Over: mustDur(t, "30d")},
			AbsenceCondition{EventType: "rain", For: mustDur(t, "7d")},
		}},
		SeqCondition{Types: []string{"A", "B"}, Within: mustDur(t, "10d")},
		CountCondition{EventType: "worms", Op: ">=", Threshold: 2, Within: mustDur(t, "20d")},
	}}
	s := or.String()
	for _, frag := range []string{"avg(rain)", "ABSENT rain FOR 7d", "SEQ(A, B)", "COUNT(worms)", "AND", "OR"} {
		if !strings.Contains(s, frag) {
			t.Errorf("condition string %q missing %q", s, frag)
		}
	}
	types := or.eventTypes()
	// rain, a, b, worms (normalized, deduplicated).
	if len(types) != 4 {
		t.Errorf("eventTypes = %v", types)
	}
	seen := make(map[string]bool)
	for _, ty := range types {
		if seen[ty] {
			t.Errorf("duplicate type %q", ty)
		}
		seen[ty] = true
		if ty != strings.ToLower(ty) {
			t.Errorf("type %q not normalized", ty)
		}
	}
}

func TestRuleValidateBranches(t *testing.T) {
	good := Rule{Name: "r", When: CountCondition{EventType: "x", Op: ">=", Threshold: 1, Within: mustDur(t, "5d")}, Emit: "E", Confidence: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Rule{
		{},
		{Name: "r"},
		{Name: "r", When: good.When},
		{Name: "r", When: good.When, Emit: "E", Confidence: -0.1},
		{Name: "r", When: good.When, Emit: "E", Confidence: 1.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, r)
		}
	}
}

func TestEngineRulesAccessor(t *testing.T) {
	rules := MustParseRules(`RULE r WHEN avg(x) < 1 OVER 5d EMIT E`)
	eng, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Rules(); len(got) != 1 || got[0].Name != "r" {
		t.Errorf("Rules() = %v", got)
	}
}

func TestAbsenceInsideOr(t *testing.T) {
	// hasAbsence must find ABSENT nested under OR so the rule becomes
	// time-driven.
	eng, err := NewEngine(MustParseRules(`
RULE r
WHEN avg(rain) < -999 OVER 5d OR ABSENT rain FOR 3d
COOLDOWN 30d
EMIT Quiet
`))
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Type: "rain", Time: t0, Value: 5, Confidence: 1},
		{Type: "tick", Time: t0.AddDate(0, 0, 4), Value: 0, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 || emitted[0].Type != "Quiet" {
		t.Fatalf("OR-nested absence did not fire: %v", emitted)
	}
}

func TestSeqInsideAndFires(t *testing.T) {
	eng, err := NewEngine(MustParseRules(`
RULE r
WHEN SEQ(A, B) WITHIN 10d AND COUNT(B) >= 1 WITHIN 10d
COOLDOWN 30d
EMIT Both
`))
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Type: "A", Time: t0, Value: 1, Confidence: 1},
		{Type: "B", Time: t0.AddDate(0, 0, 2), Value: 1, Confidence: 1},
	}
	emitted, err := eng.ProcessAll(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Fatalf("AND-nested SEQ: %v", emitted)
	}
}

func TestAbsenceOfNeverSeenType(t *testing.T) {
	eng, err := NewEngine(MustParseRules(`
RULE r
WHEN ABSENT ghost FOR 1d
COOLDOWN 365d
EMIT NoGhost
`))
	if err != nil {
		t.Fatal(err)
	}
	emitted, err := eng.Process(Event{Type: "ghost-unrelated", Time: t0, Value: 0, Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 {
		t.Fatalf("absence of never-seen type should hold: %v", emitted)
	}
}

func TestCountOfUnknownTypeComparesToZero(t *testing.T) {
	// COUNT over a type no rule window tracks (possible via OR branches
	// pruned by span collection) behaves as zero. Construct directly.
	r := Rule{
		Name: "r",
		When: CountCondition{EventType: "never", Op: "<=", Threshold: 0, Within: mustDur(t, "5d")},
		Emit: "Zero", Confidence: 1,
	}
	eng, err := NewEngine([]Rule{r})
	if err != nil {
		t.Fatal(err)
	}
	// "never" IS tracked here (it's in the rule), so add an event of a
	// different type via the time-driven path: COUNT rules are listener-
	// driven, so fire it with its own type once.
	emitted, err := eng.Process(Event{Type: "never", Time: t0, Value: 1, Confidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One event in window → count 1 → "<= 0" false.
	if len(emitted) != 0 {
		t.Fatalf("count<=0 with one event fired: %v", emitted)
	}
}

func TestParseCountErrors(t *testing.T) {
	bad := []string{
		`RULE r WHEN COUNT x ) >= 1 WITHIN 5d EMIT E`,
		`RULE r WHEN COUNT(x >= 1 WITHIN 5d EMIT E`,
		`RULE r WHEN COUNT(x) banana 1 WITHIN 5d EMIT E`,
		`RULE r WHEN COUNT(x) >= one WITHIN 5d EMIT E`,
		`RULE r WHEN COUNT(x) >= 1 OVER 5d EMIT E`,
		`RULE r WHEN COUNT(x) >= 1 WITHIN nope EMIT E`,
		`RULE r WHEN ABSENT FOR 5d EMIT E`,
		`RULE r WHEN ABSENT x UNTIL 5d EMIT E`,
		`RULE r WHEN ABSENT x FOR xyz EMIT E`,
	}
	for _, src := range bad {
		if _, err := ParseRules(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestWindowLastTimeEmpty(t *testing.T) {
	w := newWindow(time.Hour)
	if !w.lastTime().IsZero() {
		t.Error("empty window lastTime should be zero")
	}
	w.add(t0, 1)
	if !w.lastTime().Equal(t0) {
		t.Error("lastTime should be the newest sample")
	}
}

func mustDur(t *testing.T, s string) Duration {
	t.Helper()
	d, err := ParseDuration(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
