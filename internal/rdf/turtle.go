package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"
)

// ParseTurtle reads a Turtle document into a new graph. The supported
// subset covers everything the middleware serializes plus the common
// abbreviations: @prefix/PREFIX, @base/BASE, prefixed names, 'a',
// predicate-object lists (';'), object lists (','), anonymous and
// property-carrying blank nodes ('[…]'), collections ('(…)'), numeric,
// boolean, and string literals with language tags and datatypes, and
// triple-quoted long strings.
func ParseTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	p := newTurtleParser(r)
	if err := p.parseDocument(g); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseTurtleString is ParseTurtle over a string.
func ParseTurtleString(s string) (*Graph, error) {
	return ParseTurtle(strings.NewReader(s))
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIRI
	tokPName   // prefixed name, text holds "prefix:local"
	tokBlank   // blank node label without "_:"
	tokLiteral // quoted string; lexical value in text (unescaped)
	tokLangTag // @lang
	tokDTSep   // ^^
	tokNumber
	tokBoolean
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokA         // keyword 'a'
	tokPrefixDir // @prefix or PREFIX
	tokBaseDir   // @base or BASE
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIRI:
		return fmt.Sprintf("<%s>", t.text)
	case tokLiteral:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type turtleParser struct {
	r       *bufio.Reader
	line    int
	peeked  *token
	prefix  *PrefixMap
	base    string
	bnodeCt int
	// pendingDot is set when the lexer consumed a statement-terminating
	// '.' while scanning a prefixed name (e.g. "dews:Drought.").
	pendingDot bool
}

func newTurtleParser(r io.Reader) *turtleParser {
	return &turtleParser{
		r:      bufio.NewReaderSize(r, 64*1024),
		line:   1,
		prefix: NewPrefixMap(),
	}
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) readRune() (rune, bool) {
	r, _, err := p.r.ReadRune()
	if err != nil {
		return 0, false
	}
	if r == '\n' {
		p.line++
	}
	return r, true
}

func (p *turtleParser) unread() { _ = p.r.UnreadRune() }

func (p *turtleParser) skipSpaceAndComments() {
	for {
		r, ok := p.readRune()
		if !ok {
			return
		}
		if r == '#' {
			for {
				c, ok := p.readRune()
				if !ok || c == '\n' {
					break
				}
			}
			continue
		}
		if !unicode.IsSpace(r) {
			if r == '\n' {
				p.line--
			}
			p.unread()
			return
		}
	}
}

func (p *turtleParser) peek() (token, error) {
	if p.peeked != nil {
		return *p.peeked, nil
	}
	t, err := p.lex()
	if err != nil {
		return token{}, err
	}
	p.peeked = &t
	return t, nil
}

func (p *turtleParser) next() (token, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lex()
}

func (p *turtleParser) expect(kind tokKind) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != kind {
		return p.errf("expected token kind %d, got %s", kind, t)
	}
	return nil
}

func (p *turtleParser) lex() (token, error) {
	p.skipSpaceAndComments()
	r, ok := p.readRune()
	if !ok {
		return token{kind: tokEOF, line: p.line}, nil
	}
	switch r {
	case '<':
		return p.lexIRI()
	case '"', '\'':
		return p.lexString(r)
	case '.':
		// Distinguish statement dot from a leading decimal like ".5"
		nr, ok2 := p.readRune()
		if ok2 {
			p.unread()
			if nr >= '0' && nr <= '9' {
				return p.lexNumber('.')
			}
		}
		return token{kind: tokDot, text: ".", line: p.line}, nil
	case ';':
		return token{kind: tokSemicolon, text: ";", line: p.line}, nil
	case ',':
		return token{kind: tokComma, text: ",", line: p.line}, nil
	case '[':
		return token{kind: tokLBracket, text: "[", line: p.line}, nil
	case ']':
		return token{kind: tokRBracket, text: "]", line: p.line}, nil
	case '(':
		return token{kind: tokLParen, text: "(", line: p.line}, nil
	case ')':
		return token{kind: tokRParen, text: ")", line: p.line}, nil
	case '^':
		r2, ok2 := p.readRune()
		if !ok2 || r2 != '^' {
			return token{}, p.errf("lone '^'")
		}
		return token{kind: tokDTSep, text: "^^", line: p.line}, nil
	case '@':
		word := p.lexWord()
		switch strings.ToLower(word) {
		case "prefix":
			return token{kind: tokPrefixDir, text: "@prefix", line: p.line}, nil
		case "base":
			return token{kind: tokBaseDir, text: "@base", line: p.line}, nil
		default:
			return token{kind: tokLangTag, text: strings.ToLower(word), line: p.line}, nil
		}
	case '_':
		r2, ok2 := p.readRune()
		if !ok2 || r2 != ':' {
			return token{}, p.errf("expected ':' after '_' in blank node label")
		}
		label := p.lexWord()
		if label == "" {
			return token{}, p.errf("empty blank node label")
		}
		return token{kind: tokBlank, text: label, line: p.line}, nil
	case '+', '-':
		return p.lexNumber(r)
	}
	if r >= '0' && r <= '9' {
		return p.lexNumber(r)
	}
	if isPNCharBase(r) {
		p.unread()
		return p.lexPNameOrKeyword()
	}
	return token{}, p.errf("unexpected character %q", r)
}

func (p *turtleParser) lexIRI() (token, error) {
	var b strings.Builder
	for {
		r, ok := p.readRune()
		if !ok {
			return token{}, p.errf("unterminated IRI")
		}
		switch r {
		case '>':
			return token{kind: tokIRI, text: b.String(), line: p.line}, nil
		case '\\':
			esc, err := p.readEscape()
			if err != nil {
				return token{}, err
			}
			b.WriteRune(esc)
		case '\n':
			return token{}, p.errf("newline in IRI")
		default:
			b.WriteRune(r)
		}
	}
}

func (p *turtleParser) lexString(quote rune) (token, error) {
	// Check for long (triple-quoted) form.
	long := false
	r1, ok := p.readRune()
	if ok && r1 == quote {
		r2, ok2 := p.readRune()
		if ok2 && r2 == quote {
			long = true
		} else {
			if ok2 {
				p.unread()
			}
			// Empty string "" — the second quote closed it.
			return token{kind: tokLiteral, text: "", line: p.line}, nil
		}
	} else if ok {
		p.unread()
	}

	var b strings.Builder
	for {
		r, ok := p.readRune()
		if !ok {
			return token{}, p.errf("unterminated string literal")
		}
		if r == quote {
			if !long {
				return token{kind: tokLiteral, text: b.String(), line: p.line}, nil
			}
			// Need three closing quotes.
			r2, ok2 := p.readRune()
			if ok2 && r2 == quote {
				r3, ok3 := p.readRune()
				if ok3 && r3 == quote {
					return token{kind: tokLiteral, text: b.String(), line: p.line}, nil
				}
				if ok3 {
					p.unread()
				}
				b.WriteRune(quote)
				b.WriteRune(quote)
				continue
			}
			if ok2 {
				p.unread()
			}
			b.WriteRune(quote)
			continue
		}
		if r == '\\' {
			esc, err := p.readEscape()
			if err != nil {
				return token{}, err
			}
			b.WriteRune(esc)
			continue
		}
		if r == '\n' && !long {
			return token{}, p.errf("newline in single-line string")
		}
		b.WriteRune(r)
	}
}

func (p *turtleParser) readEscape() (rune, error) {
	r, ok := p.readRune()
	if !ok {
		return 0, p.errf("dangling escape")
	}
	switch r {
	case 't':
		return '\t', nil
	case 'b':
		return '\b', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u':
		return p.readHex(4)
	case 'U':
		return p.readHex(8)
	default:
		return 0, p.errf("invalid escape \\%c", r)
	}
}

func (p *turtleParser) readHex(n int) (rune, error) {
	v := 0
	for i := 0; i < n; i++ {
		r, ok := p.readRune()
		if !ok {
			return 0, p.errf("truncated \\u escape")
		}
		d := hexVal(r)
		if d < 0 {
			return 0, p.errf("invalid hex digit %q", r)
		}
		v = v*16 + d
	}
	return rune(v), nil
}

func hexVal(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10
	}
	return -1
}

// lexWord reads a run of letters, digits, '-' and '_'.
func (p *turtleParser) lexWord() string {
	var b strings.Builder
	for {
		r, ok := p.readRune()
		if !ok {
			break
		}
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_' {
			b.WriteRune(r)
			continue
		}
		p.unread()
		break
	}
	return b.String()
}

func (p *turtleParser) lexNumber(first rune) (token, error) {
	var b strings.Builder
	b.WriteRune(first)
	seenDot := first == '.'
	seenExp := false
	for {
		r, ok := p.readRune()
		if !ok {
			break
		}
		switch {
		case r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == '.' && !seenDot && !seenExp:
			// A dot followed by a non-digit terminates the statement
			// instead ("1 ." vs "1.5").
			nr, ok2 := p.readRune()
			if ok2 {
				p.unread()
			}
			if !ok2 || nr < '0' || nr > '9' {
				p.unread() // push the dot back
				return token{kind: tokNumber, text: b.String(), line: p.line}, nil
			}
			seenDot = true
			b.WriteRune(r)
		case (r == 'e' || r == 'E') && !seenExp:
			seenExp = true
			b.WriteRune(r)
			nr, ok2 := p.readRune()
			if ok2 && (nr == '+' || nr == '-' || (nr >= '0' && nr <= '9')) {
				b.WriteRune(nr)
			} else if ok2 {
				p.unread()
			}
		default:
			p.unread()
			return token{kind: tokNumber, text: b.String(), line: p.line}, nil
		}
	}
	return token{kind: tokNumber, text: b.String(), line: p.line}, nil
}

func isPNCharBase(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexPNameOrKeyword reads a prefixed name ("pre:local", ":local", or a bare
// keyword such as 'a', 'true', 'false', 'PREFIX', 'BASE').
func (p *turtleParser) lexPNameOrKeyword() (token, error) {
	var b strings.Builder
	colon := false
	for {
		r, ok := p.readRune()
		if !ok {
			break
		}
		if r == ':' && !colon {
			colon = true
			b.WriteRune(r)
			continue
		}
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' ||
			(colon && r == '.') {
			b.WriteRune(r)
			continue
		}
		p.unread()
		break
	}
	text := b.String()
	// A trailing '.' belongs to the statement terminator, not the name.
	for strings.HasSuffix(text, ".") {
		text = text[:len(text)-1]
		// Push the dot back by constructing a synthetic reader state:
		// simplest is to remember via peeked token after returning; instead
		// we re-buffer by unreading is impossible for >1 rune, so handle
		// at parse level: we return the name and an implicit dot token.
		p.pendingDot = true
	}
	switch text {
	case "a":
		if !colon {
			return token{kind: tokA, text: "a", line: p.line}, nil
		}
	case "true", "false":
		if !colon {
			return token{kind: tokBoolean, text: text, line: p.line}, nil
		}
	case "PREFIX", "prefix":
		if !colon {
			return token{kind: tokPrefixDir, text: text, line: p.line}, nil
		}
	case "BASE", "base":
		if !colon {
			return token{kind: tokBaseDir, text: text, line: p.line}, nil
		}
	}
	if !colon {
		return token{}, p.errf("bare word %q is not valid Turtle", text)
	}
	return token{kind: tokPName, text: text, line: p.line}, nil
}

// --- parser ---

func (p *turtleParser) parseDocument(g *Graph) error {
	for {
		if p.pendingDot {
			return p.errf("unexpected '.'")
		}
		tok, err := p.peek()
		if err != nil {
			return err
		}
		switch tok.kind {
		case tokEOF:
			return nil
		case tokPrefixDir:
			if _, err := p.next(); err != nil {
				return err
			}
			if err := p.parsePrefixDirective(tok.text == "@prefix"); err != nil {
				return err
			}
		case tokBaseDir:
			if _, err := p.next(); err != nil {
				return err
			}
			if err := p.parseBaseDirective(tok.text == "@base"); err != nil {
				return err
			}
		default:
			if err := p.parseStatement(g); err != nil {
				return err
			}
		}
	}
}

func (p *turtleParser) parsePrefixDirective(atForm bool) error {
	tok, err := p.next()
	if err != nil {
		return err
	}
	if tok.kind != tokPName || !strings.HasSuffix(tok.text, ":") {
		return p.errf("expected prefix declaration, got %s", tok)
	}
	prefix := strings.TrimSuffix(tok.text, ":")
	iriTok, err := p.next()
	if err != nil {
		return err
	}
	if iriTok.kind != tokIRI {
		return p.errf("expected namespace IRI, got %s", iriTok)
	}
	p.prefix.Bind(prefix, Namespace(p.resolveIRI(iriTok.text)))
	if atForm {
		return p.expectDot()
	}
	return nil
}

func (p *turtleParser) parseBaseDirective(atForm bool) error {
	iriTok, err := p.next()
	if err != nil {
		return err
	}
	if iriTok.kind != tokIRI {
		return p.errf("expected base IRI, got %s", iriTok)
	}
	p.base = iriTok.text
	if atForm {
		return p.expectDot()
	}
	return nil
}

func (p *turtleParser) expectDot() error {
	if p.pendingDot {
		p.pendingDot = false
		return nil
	}
	return p.expect(tokDot)
}

func (p *turtleParser) resolveIRI(raw string) string {
	if p.base == "" || strings.Contains(raw, "://") || strings.HasPrefix(raw, "urn:") {
		return raw
	}
	if strings.HasPrefix(raw, "#") || !strings.Contains(raw, ":") {
		return p.base + raw
	}
	return raw
}

func (p *turtleParser) parseStatement(g *Graph) error {
	subj, err := p.parseSubject(g)
	if err != nil {
		return err
	}
	if err := p.parsePredicateObjectList(g, subj, true); err != nil {
		return err
	}
	return p.expectDot()
}

func (p *turtleParser) parseSubject(g *Graph) (Term, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokIRI:
		return IRI(p.resolveIRI(tok.text)), nil
	case tokPName:
		return p.prefix.Resolve(tok.text)
	case tokBlank:
		return BlankNode(tok.text), nil
	case tokLBracket:
		return p.parseBlankNodePropertyList(g)
	case tokLParen:
		return p.parseCollection(g)
	default:
		return nil, p.errf("invalid subject %s", tok)
	}
}

// parsePredicateObjectList parses "p o, o2; p2 o3" after a subject.
// required reports whether at least one predicate-object pair must appear
// (false inside a '[ ... ]' that may be empty).
func (p *turtleParser) parsePredicateObjectList(g *Graph, subj Term, required bool) error {
	first := true
	for {
		tok, err := p.peek()
		if err != nil {
			return err
		}
		if tok.kind == tokDot || tok.kind == tokRBracket || tok.kind == tokEOF || p.pendingDot {
			if first && required {
				return p.errf("expected predicate, got %s", tok)
			}
			return nil
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		if err := p.parseObjectList(g, subj, pred); err != nil {
			return err
		}
		first = false
		sep, err := p.peek()
		if err != nil {
			return err
		}
		if sep.kind == tokSemicolon {
			if _, err := p.next(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokA:
		return RDFType, nil
	case tokIRI:
		return IRI(p.resolveIRI(tok.text)), nil
	case tokPName:
		return p.prefix.Resolve(tok.text)
	default:
		return nil, p.errf("invalid predicate %s", tok)
	}
}

func (p *turtleParser) parseObjectList(g *Graph, subj, pred Term) error {
	for {
		obj, err := p.parseObject(g)
		if err != nil {
			return err
		}
		if err := g.Add(Triple{S: subj, P: pred, O: obj}); err != nil {
			return err
		}
		tok, err := p.peek()
		if err != nil {
			return err
		}
		if tok.kind != tokComma {
			return nil
		}
		if _, err := p.next(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) parseObject(g *Graph) (Term, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokIRI:
		return IRI(p.resolveIRI(tok.text)), nil
	case tokPName:
		return p.prefix.Resolve(tok.text)
	case tokBlank:
		return BlankNode(tok.text), nil
	case tokLBracket:
		return p.parseBlankNodePropertyList(g)
	case tokLParen:
		return p.parseCollection(g)
	case tokLiteral:
		return p.finishLiteral(tok)
	case tokNumber:
		return numberLiteral(tok.text), nil
	case tokBoolean:
		return Literal{Lexical: tok.text, Datatype: XSDBoolean}, nil
	default:
		return nil, p.errf("invalid object %s", tok)
	}
}

// finishLiteral handles optional @lang or ^^datatype after a quoted string.
func (p *turtleParser) finishLiteral(strTok token) (Term, error) {
	tok, err := p.peek()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokLangTag:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		return Literal{Lexical: strTok.text, Lang: tok.text}, nil
	case tokDTSep:
		if _, err := p.next(); err != nil {
			return nil, err
		}
		dtTok, err := p.next()
		if err != nil {
			return nil, err
		}
		var dt IRI
		switch dtTok.kind {
		case tokIRI:
			dt = IRI(p.resolveIRI(dtTok.text))
		case tokPName:
			dt, err = p.prefix.Resolve(dtTok.text)
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("invalid datatype %s", dtTok)
		}
		return NewTypedLiteral(strTok.text, dt), nil
	default:
		return Literal{Lexical: strTok.text}, nil
	}
}

func numberLiteral(text string) Literal {
	if strings.ContainsAny(text, "eE") {
		return Literal{Lexical: text, Datatype: XSDDouble}
	}
	if strings.Contains(text, ".") {
		return Literal{Lexical: text, Datatype: XSDDecimal}
	}
	return Literal{Lexical: text, Datatype: XSDInteger}
}

func (p *turtleParser) freshBlank() BlankNode {
	b := BlankNode(fmt.Sprintf("t%d", p.bnodeCt))
	p.bnodeCt++
	return b
}

func (p *turtleParser) parseBlankNodePropertyList(g *Graph) (Term, error) {
	node := p.freshBlank()
	if err := p.parsePredicateObjectList(g, node, false); err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *turtleParser) parseCollection(g *Graph) (Term, error) {
	var items []Term
	for {
		tok, err := p.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokRParen {
			if _, err := p.next(); err != nil {
				return nil, err
			}
			break
		}
		item, err := p.parseObject(g)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return RDFNil, nil
	}
	head := Term(p.freshBlank())
	cur := head
	for i, item := range items {
		if err := g.Add(Triple{S: cur, P: RDFFirst, O: item}); err != nil {
			return nil, err
		}
		if i == len(items)-1 {
			if err := g.Add(Triple{S: cur, P: RDFRest, O: RDFNil}); err != nil {
				return nil, err
			}
			break
		}
		next := Term(p.freshBlank())
		if err := g.Add(Triple{S: cur, P: RDFRest, O: next}); err != nil {
			return nil, err
		}
		cur = next
	}
	return head, nil
}

// --- serializer ---

// WriteTurtle serializes the graph as Turtle using the given prefixes
// (nil means DefaultPrefixes). Subjects are grouped with ';' and ','
// abbreviations and emitted in deterministic order.
func WriteTurtle(w io.Writer, g *Graph, pm *PrefixMap) error {
	if pm == nil {
		pm = DefaultPrefixes()
	}
	bw := bufio.NewWriter(w)

	used := usedPrefixes(g, pm)
	for _, prefix := range used {
		ns, _ := pm.Namespace(prefix)
		fmt.Fprintf(bw, "@prefix %s: <%s> .\n", prefix, string(ns))
	}
	if len(used) > 0 {
		fmt.Fprintln(bw)
	}

	triples := g.Triples()
	// Group by subject key preserving sorted order.
	type group struct {
		subj  Term
		preds []Term
		objs  map[string][]Term
	}
	var groups []*group
	byKey := make(map[string]*group)
	predSeen := make(map[string]map[string]bool)
	for _, t := range triples {
		sk := t.S.Key()
		gr, ok := byKey[sk]
		if !ok {
			gr = &group{subj: t.S, objs: make(map[string][]Term)}
			byKey[sk] = gr
			groups = append(groups, gr)
			predSeen[sk] = make(map[string]bool)
		}
		pk := t.P.Key()
		if !predSeen[sk][pk] {
			predSeen[sk][pk] = true
			gr.preds = append(gr.preds, t.P)
		}
		gr.objs[pk] = append(gr.objs[pk], t.O)
	}

	for _, gr := range groups {
		fmt.Fprintf(bw, "%s", renderTerm(gr.subj, pm))
		for pi, pred := range gr.preds {
			if pi == 0 {
				bw.WriteString(" ")
			} else {
				bw.WriteString(" ;\n    ")
			}
			bw.WriteString(renderPredicate(pred, pm))
			objs := gr.objs[pred.Key()]
			for oi, o := range objs {
				if oi > 0 {
					bw.WriteString(",")
				}
				bw.WriteString(" ")
				bw.WriteString(renderTerm(o, pm))
			}
		}
		bw.WriteString(" .\n")
	}
	return bw.Flush()
}

// TurtleString returns the Turtle serialization as a string.
func TurtleString(g *Graph, pm *PrefixMap) string {
	var b strings.Builder
	_ = WriteTurtle(&b, g, pm)
	return b.String()
}

func renderPredicate(t Term, pm *PrefixMap) string {
	if i, ok := t.(IRI); ok && i == RDFType {
		return "a"
	}
	return renderTerm(t, pm)
}

func renderTerm(t Term, pm *PrefixMap) string {
	switch v := t.(type) {
	case IRI:
		return pm.Compact(v)
	case Literal:
		if v.Lang == "" && v.Datatype != "" && v.Datatype != XSDString {
			// Compact the datatype too.
			return "\"" + escapeLiteral(v.Lexical) + "\"^^" + pm.Compact(v.Datatype)
		}
		return v.String()
	default:
		return t.String()
	}
}

func usedPrefixes(g *Graph, pm *PrefixMap) []string {
	need := make(map[string]bool)
	check := func(t Term) {
		switch v := t.(type) {
		case IRI:
			c := pm.Compact(v)
			if i := strings.Index(c, ":"); i > 0 && !strings.HasPrefix(c, "<") {
				need[c[:i]] = true
			}
		case Literal:
			if v.Datatype != "" {
				c := pm.Compact(v.Datatype)
				if i := strings.Index(c, ":"); i > 0 && !strings.HasPrefix(c, "<") {
					need[c[:i]] = true
				}
			}
		}
	}
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		check(t.S)
		check(t.P)
		check(t.O)
		return true
	})
	out := make([]string, 0, len(need))
	for p := range need {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
