package rdf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Graph {
	t.Helper()
	g, err := ParseTurtleString(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return g
}

func TestParseTurtleBasic(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:a ex:p "hello" .
ex:a ex:q "bonjour"@fr .
ex:b ex:r "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .
`)
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	a := IRI("http://example.org/a")
	p := IRI("http://example.org/p")
	if !g.Has(T(a, p, IRI("http://example.org/b"))) {
		t.Error("missing iri triple")
	}
	if !g.Has(T(a, p, NewLiteral("hello"))) {
		t.Error("missing plain literal triple")
	}
	if !g.Has(T(a, IRI("http://example.org/q"), NewLangLiteral("bonjour", "fr"))) {
		t.Error("missing lang literal triple")
	}
}

func TestParseTurtleAbbreviations(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a a ex:Class ;
     ex:p ex:b, ex:c ;
     ex:q 42 .
`)
	a := IRI("http://example.org/a")
	if !g.Has(T(a, RDFType, IRI("http://example.org/Class"))) {
		t.Error("'a' keyword not handled")
	}
	if !g.Has(T(a, IRI("http://example.org/p"), IRI("http://example.org/c"))) {
		t.Error("object list not handled")
	}
	if !g.Has(T(a, IRI("http://example.org/q"), Literal{Lexical: "42", Datatype: XSDInteger})) {
		t.Error("integer abbreviation not handled")
	}
}

func TestParseTurtleNumericForms(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:int 7 .
ex:a ex:neg -3 .
ex:a ex:dec 2.75 .
ex:a ex:dbl 1.0e6 .
ex:a ex:bool true .
ex:a ex:boolf false .
`)
	ex := Namespace("http://example.org/")
	cases := []struct {
		p    IRI
		want Literal
	}{
		{ex.IRI("int"), Literal{Lexical: "7", Datatype: XSDInteger}},
		{ex.IRI("neg"), Literal{Lexical: "-3", Datatype: XSDInteger}},
		{ex.IRI("dec"), Literal{Lexical: "2.75", Datatype: XSDDecimal}},
		{ex.IRI("dbl"), Literal{Lexical: "1.0e6", Datatype: XSDDouble}},
		{ex.IRI("bool"), Literal{Lexical: "true", Datatype: XSDBoolean}},
		{ex.IRI("boolf"), Literal{Lexical: "false", Datatype: XSDBoolean}},
	}
	for _, c := range cases {
		if !g.Has(T(ex.IRI("a"), c.p, c.want)) {
			t.Errorf("missing %s %s", c.p, c.want)
		}
	}
}

func TestParseTurtleBlankNodes(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p _:x .
_:x ex:q ex:b .
ex:c ex:r [ ex:s ex:d ; ex:t "v" ] .
ex:e ex:u [] .
`)
	if !g.Has(T(IRI("http://example.org/a"), IRI("http://example.org/p"), BlankNode("x"))) {
		t.Error("labelled blank as object missing")
	}
	if !g.Has(T(BlankNode("x"), IRI("http://example.org/q"), IRI("http://example.org/b"))) {
		t.Error("labelled blank as subject missing")
	}
	// The anonymous node must carry both inner properties.
	inner := g.Match(nil, IRI("http://example.org/s"), IRI("http://example.org/d"))
	if len(inner) != 1 {
		t.Fatalf("bracket blank properties: %v", inner)
	}
	bn := inner[0].S
	if !g.Has(T(bn, IRI("http://example.org/t"), NewLiteral("v"))) {
		t.Error("second property of bracket blank missing")
	}
	if g.Count(IRI("http://example.org/e"), IRI("http://example.org/u"), nil) != 1 {
		t.Error("empty [] object missing")
	}
}

func TestParseTurtleCollections(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:list ( ex:x ex:y ex:z ) .
ex:b ex:empty ( ) .
`)
	// Walk the list.
	head, ok := g.FirstObject(IRI("http://example.org/a"), IRI("http://example.org/list"))
	if !ok {
		t.Fatal("list head missing")
	}
	var items []Term
	for !Equal(head, RDFNil) {
		first, ok := g.FirstObject(head, RDFFirst)
		if !ok {
			t.Fatal("broken list: no rdf:first")
		}
		items = append(items, first)
		rest, ok := g.FirstObject(head, RDFRest)
		if !ok {
			t.Fatal("broken list: no rdf:rest")
		}
		head = rest
	}
	if len(items) != 3 {
		t.Fatalf("list items = %v", items)
	}
	if e, ok := g.FirstObject(IRI("http://example.org/b"), IRI("http://example.org/empty")); !ok || !Equal(e, RDFNil) {
		t.Errorf("empty collection should be rdf:nil, got %v", e)
	}
}

func TestParseTurtleStringEscapes(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p "tab\there\nnewline \"quote\" back\\slash" .
ex:a ex:q "unicode é and \U0001F600" .
ex:a ex:r """long
string with "quotes" inside""" .
`)
	var found bool
	g.ForEachMatch(nil, IRI("http://example.org/p"), nil, func(tr Triple) bool {
		l := tr.O.(Literal)
		found = l.Lexical == "tab\there\nnewline \"quote\" back\\slash"
		return false
	})
	if !found {
		t.Error("escape handling wrong for ex:p")
	}
	g.ForEachMatch(nil, IRI("http://example.org/q"), nil, func(tr Triple) bool {
		l := tr.O.(Literal)
		if l.Lexical != "unicode é and 😀" {
			t.Errorf("unicode escapes: %q", l.Lexical)
		}
		return false
	})
	g.ForEachMatch(nil, IRI("http://example.org/r"), nil, func(tr Triple) bool {
		l := tr.O.(Literal)
		if !strings.Contains(l.Lexical, "\"quotes\"") || !strings.Contains(l.Lexical, "\n") {
			t.Errorf("long string: %q", l.Lexical)
		}
		return false
	})
}

func TestParseTurtleComments(t *testing.T) {
	g := mustParse(t, `
# leading comment
@prefix ex: <http://example.org/> . # trailing comment
ex:a ex:p ex:b . # another
# done
`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleSparqlStyleDirectives(t *testing.T) {
	g := mustParse(t, `
PREFIX ex: <http://example.org/>
ex:a ex:p ex:b .
`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleBase(t *testing.T) {
	g := mustParse(t, `
@base <http://example.org/base/> .
@prefix ex: <http://example.org/> .
<rel> ex:p <#frag> .
`)
	if !g.Has(T(IRI("http://example.org/base/rel"), IRI("http://example.org/p"), IRI("http://example.org/base/#frag"))) {
		t.Errorf("base resolution failed: %v", g.Triples())
	}
}

func TestParseTurtleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown prefix", `ex:a ex:p ex:b .`},
		{"unterminated iri", `<http://example.org/a ex:p ex:b .`},
		{"unterminated string", `@prefix ex: <http://e/> . ex:a ex:p "oops .`},
		{"missing dot", `@prefix ex: <http://e/> . ex:a ex:p ex:b`},
		{"literal subject", `@prefix ex: <http://e/> . "lit" ex:p ex:b .`},
		{"bare word", `@prefix ex: <http://e/> . ex:a ex:p banana .`},
		{"lone caret", `@prefix ex: <http://e/> . ex:a ex:p "x"^ .`},
		{"bad escape", `@prefix ex: <http://e/> . ex:a ex:p "\z" .`},
		{"bad unicode escape", `@prefix ex: <http://e/> . ex:a ex:p "\u00zz" .`},
		{"unclosed bracket", `@prefix ex: <http://e/> . ex:a ex:p [ ex:q ex:b .`},
		{"empty blank label", `@prefix ex: <http://e/> . _: ex:p ex:b .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseTurtleString(c.src); err == nil {
				t.Errorf("expected parse error for %q", c.src)
			}
		})
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	src := `
@prefix dews: <http://dews.africrid.example/ontology/drought#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
dews:Drought a rdfs:Class ;
    rdfs:label "Drought"@en, "Komelelo"@st ;
    rdfs:comment "A prolonged water deficit event." .
dews:severity rdfs:domain dews:Drought .
`
	g1 := mustParse(t, src)
	out := TurtleString(g1, nil)
	g2, err := ParseTurtleString(out)
	if err != nil {
		t.Fatalf("reparse: %v\noutput:\n%s", err, out)
	}
	if !EqualGraphs(g1, g2) {
		t.Errorf("round trip lost triples:\n%s\nvs\n%s", NTriplesString(g1), NTriplesString(g2))
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g1 := NewGraph()
	g1.MustAdd(T(exA, exP, exB))
	g1.MustAdd(T(exA, exP, NewLangLiteral("wet season", "en")))
	g1.MustAdd(T(BlankNode("n1"), exQ, NewTypedLiteral("7", XSDInteger)))
	g1.MustAdd(T(exB, exQ, NewLiteral("line1\nline2")))

	s := NTriplesString(g1)
	g2, err := ParseNTriples(strings.NewReader(s))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if !EqualGraphs(g1, g2) {
		t.Errorf("n-triples round trip mismatch:\n%s\nvs\n%s", s, NTriplesString(g2))
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	cases := []string{
		`<http://e/a> <http://e/p> .`,            // missing object
		`<http://e/a> "lit" <http://e/b> .`,      // literal predicate
		`"lit" <http://e/p> <http://e/b> .`,      // literal subject
		`<http://e/a> <http://e/p> <http://e/b>`, // missing dot
	}
	for _, src := range cases {
		if _, err := ParseNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	src := "# comment\n\n<http://e/a> <http://e/p> <http://e/b> .\n"
	g, err := ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

// randomGraph builds a pseudo-random graph with a mixture of term types.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	ns := Namespace("http://example.org/ns#")
	words := []string{"rain", "soil", "heat", "wind", "maize", "Hoehe", "Stav", "komelelo"}
	langs := []string{"en", "st", "af", "zu", "de", "cs"}
	for i := 0; i < n; i++ {
		s := Term(ns.IRI(words[rng.Intn(len(words))] + "S"))
		if rng.Intn(4) == 0 {
			s = BlankNode(words[rng.Intn(len(words))])
		}
		p := ns.IRI(words[rng.Intn(len(words))] + "P")
		var o Term
		switch rng.Intn(5) {
		case 0:
			o = ns.IRI(words[rng.Intn(len(words))])
		case 1:
			o = NewLangLiteral(words[rng.Intn(len(words))]+" value\twith\nescapes\"", langs[rng.Intn(len(langs))])
		case 2:
			o = NewInt(rng.Int63n(1000) - 500)
		case 3:
			o = NewFloat(rng.Float64() * 100)
		default:
			o = BlankNode(words[rng.Intn(len(words))])
		}
		g.MustAdd(T(s, p, o))
	}
	return g
}

// TestQuickTurtleRoundTrip: serialize∘parse is the identity on random graphs.
func TestQuickTurtleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomGraph(rng, 40)
		out := TurtleString(g1, nil)
		g2, err := ParseTurtleString(out)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, out)
			return false
		}
		return EqualGraphs(g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickNTriplesRoundTrip: same property through the N-Triples codec.
func TestQuickNTriplesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomGraph(rng, 40)
		s := NTriplesString(g1)
		g2, err := ParseNTriples(strings.NewReader(s))
		if err != nil {
			return false
		}
		return EqualGraphs(g1, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPrefixMap(t *testing.T) {
	pm := DefaultPrefixes()
	iri, err := pm.Resolve("rdfs:label")
	if err != nil || iri != RDFSLabel {
		t.Fatalf("Resolve = %v, %v", iri, err)
	}
	if _, err := pm.Resolve("nope:x"); err == nil {
		t.Error("unknown prefix should error")
	}
	if _, err := pm.Resolve("noColon"); err == nil {
		t.Error("non-pname should error")
	}
	if got := pm.Compact(RDFSLabel); got != "rdfs:label" {
		t.Errorf("Compact = %q", got)
	}
	if got := pm.Compact(IRI("http://unknown.example/x")); !strings.HasPrefix(got, "<") {
		t.Errorf("unmatched IRI should stay angle-bracketed, got %q", got)
	}
	// Longest-namespace wins.
	pm.Bind("short", Namespace("http://long.example/"))
	pm.Bind("long", Namespace("http://long.example/deep/"))
	if got := pm.Compact(IRI("http://long.example/deep/x")); got != "long:x" {
		t.Errorf("longest-match compaction failed: %q", got)
	}
	// Local names needing escapes are not compacted.
	if got := pm.Compact(IRI("http://long.example/deep/a b")); !strings.HasPrefix(got, "<") {
		t.Errorf("invalid local name must not compact: %q", got)
	}
}

func TestNamespaceHelpers(t *testing.T) {
	ns := Namespace("http://example.org/v#")
	i := ns.IRI("Thing")
	if !ns.Contains(i) {
		t.Error("Contains failed")
	}
	local, ok := ns.Local(i)
	if !ok || local != "Thing" {
		t.Errorf("Local = %q, %v", local, ok)
	}
	if _, ok := ns.Local(IRI("http://other/x")); ok {
		t.Error("Local on foreign IRI should fail")
	}
}

func TestPrefixOrdering(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("z", "http://z/")
	pm.Bind("a", "http://a/")
	pm.Bind("z", "http://z2/") // rebind keeps position
	if got := pm.Prefixes(); got[0] != "z" || got[1] != "a" {
		t.Errorf("Prefixes = %v", got)
	}
	if got := pm.SortedPrefixes(); got[0] != "a" || got[1] != "z" {
		t.Errorf("SortedPrefixes = %v", got)
	}
	ns, ok := pm.Namespace("z")
	if !ok || ns != "http://z2/" {
		t.Errorf("rebind failed: %v", ns)
	}
}
