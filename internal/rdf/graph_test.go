package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var (
	exNS = Namespace("http://example.org/")
	exA  = exNS.IRI("a")
	exB  = exNS.IRI("b")
	exC  = exNS.IRI("c")
	exP  = exNS.IRI("p")
	exQ  = exNS.IRI("q")
)

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := T(exA, exP, exB)
	if g.Has(tr) {
		t.Fatal("empty graph should not contain triple")
	}
	if err := g.Add(tr); err != nil {
		t.Fatal(err)
	}
	if !g.Has(tr) {
		t.Fatal("graph should contain added triple")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	// Duplicate add is a no-op.
	if err := g.Add(tr); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after dup add = %d, want 1", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove should report true for present triple")
	}
	if g.Remove(tr) {
		t.Fatal("Remove should report false for absent triple")
	}
	if g.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", g.Len())
	}
}

func TestGraphAddInvalid(t *testing.T) {
	g := NewGraph()
	tests := []Triple{
		{},                                   // all nil
		{S: exA, P: exP},                     // nil object
		{S: NewLiteral("x"), P: exP, O: exB}, // literal subject
		{S: exA, P: NewLiteral("p"), O: exB}, // literal predicate
		{S: exA, P: BlankNode("b"), O: exB},  // blank predicate
	}
	for i, tr := range tests {
		if err := g.Add(tr); err == nil {
			t.Errorf("case %d: Add(%v) should fail", i, tr)
		}
	}
	if g.Len() != 0 {
		t.Fatal("invalid adds must not change the graph")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd on invalid triple should panic")
		}
	}()
	NewGraph().MustAdd(Triple{})
}

func TestGraphMatchPatterns(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(exA, exP, exB))
	g.MustAdd(T(exA, exP, exC))
	g.MustAdd(T(exA, exQ, exB))
	g.MustAdd(T(exB, exP, exC))
	g.MustAdd(T(exC, exQ, NewInt(5)))

	tests := []struct {
		name    string
		s, p, o Term
		want    int
	}{
		{"all wild", nil, nil, nil, 5},
		{"s bound", exA, nil, nil, 3},
		{"p bound", nil, exP, nil, 3},
		{"o bound", nil, nil, exB, 2},
		{"sp bound", exA, exP, nil, 2},
		{"so bound", exA, nil, exB, 2},
		{"po bound", nil, exP, exC, 2},
		{"spo bound hit", exA, exP, exB, 1},
		{"spo bound miss", exB, exQ, exA, 0},
		{"literal object", nil, nil, NewInt(5), 1},
		{"absent subject", exNS.IRI("zz"), nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := len(g.Match(tt.s, tt.p, tt.o)); got != tt.want {
				t.Errorf("Match returned %d triples, want %d", got, tt.want)
			}
			if got := g.Count(tt.s, tt.p, tt.o); got != tt.want {
				t.Errorf("Count = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.MustAdd(T(exA, exP, NewInt(int64(i))))
	}
	n := 0
	g.ForEachMatch(exA, exP, nil, func(Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestSubjectsObjectsFirstObject(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(exA, exP, exB))
	g.MustAdd(T(exC, exP, exB))
	g.MustAdd(T(exA, exQ, NewInt(1)))

	subs := g.Subjects(exP, exB)
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v, want 2", subs)
	}
	objs := g.Objects(exA, nil)
	if len(objs) != 2 {
		t.Fatalf("Objects = %v, want 2", objs)
	}
	o, ok := g.FirstObject(exA, exQ)
	if !ok || !Equal(o, NewInt(1)) {
		t.Fatalf("FirstObject = %v, %v", o, ok)
	}
	if _, ok := g.FirstObject(exB, exQ); ok {
		t.Fatal("FirstObject on absent pattern should report false")
	}
}

func TestDeterministicSubjects(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.MustAdd(T(exNS.IRI(fmt.Sprintf("s%02d", i)), exP, exB))
	}
	first := g.Subjects(exP, exB)
	for trial := 0; trial < 5; trial++ {
		again := g.Subjects(exP, exB)
		for i := range first {
			if !Equal(first[i], again[i]) {
				t.Fatal("Subjects order is not deterministic")
			}
		}
	}
}

func TestGraphMergeCloneEqual(t *testing.T) {
	g := NewGraph()
	g.MustAdd(T(exA, exP, exB))
	g.MustAdd(T(exB, exQ, NewLangLiteral("rain", "en")))

	c := g.Clone()
	if !EqualGraphs(g, c) {
		t.Fatal("clone should equal original")
	}
	c.MustAdd(T(exC, exP, exA))
	if EqualGraphs(g, c) {
		t.Fatal("graphs with different sizes should differ")
	}
	if g.Len() != 2 {
		t.Fatal("mutating clone must not affect original")
	}

	d := NewGraph()
	d.MustAdd(T(exA, exP, exB))
	d.MustAdd(T(exC, exP, exA)) // same size as g, different content
	if EqualGraphs(g, d) {
		t.Fatal("same-size different-content graphs should differ")
	}
}

func TestNewGraphFrom(t *testing.T) {
	g, err := NewGraphFrom(T(exA, exP, exB), T(exB, exP, exC))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if _, err := NewGraphFrom(Triple{}); err == nil {
		t.Fatal("NewGraphFrom with invalid triple should error")
	}
}

func TestNewBlankNodeUnique(t *testing.T) {
	g := NewGraph()
	seen := make(map[BlankNode]bool)
	for i := 0; i < 100; i++ {
		b := g.NewBlankNode()
		if seen[b] {
			t.Fatalf("duplicate blank node %s", b)
		}
		seen[b] = true
	}
}

func TestGraphConcurrency(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.MustAdd(T(exNS.IRI(fmt.Sprintf("w%d-%d", w, i)), exP, exB))
				g.Count(nil, exP, nil)
				g.Match(nil, nil, exB)
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", g.Len(), 8*200)
	}
}

// TestQuickIndexCoherence checks that after a random add/remove workload,
// every pattern query agrees with a naive reference implementation.
func TestQuickIndexCoherence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		ref := make(map[string]Triple)
		terms := []Term{exA, exB, exC}
		preds := []Term{exP, exQ}
		for op := 0; op < 300; op++ {
			tr := T(terms[rng.Intn(3)], preds[rng.Intn(2)], terms[rng.Intn(3)])
			if rng.Intn(3) == 0 {
				g.Remove(tr)
				delete(ref, tr.Key())
			} else {
				g.MustAdd(tr)
				ref[tr.Key()] = tr
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		// Every reference triple must be found via each index path.
		for _, tr := range ref {
			if !g.Has(tr) {
				return false
			}
			if len(g.Match(tr.S, tr.P, nil)) == 0 ||
				len(g.Match(nil, tr.P, tr.O)) == 0 ||
				len(g.Match(tr.S, nil, tr.O)) == 0 {
				return false
			}
		}
		// Full scan must equal reference exactly.
		all := g.Triples()
		if len(all) != len(ref) {
			return false
		}
		for _, tr := range all {
			if _, ok := ref[tr.Key()]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTripleValidateAndString(t *testing.T) {
	tr := T(exA, exP, NewLangLiteral("drought", "en"))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := `<http://example.org/a> <http://example.org/p> "drought"@en .`
	if tr.String() != want {
		t.Errorf("String() = %s, want %s", tr.String(), want)
	}
	if !tr.Equal(tr) {
		t.Error("triple should equal itself")
	}
	if tr.Equal(T(exA, exP, exB)) {
		t.Error("different triples should not be equal")
	}
}

func TestSortTriples(t *testing.T) {
	ts := []Triple{
		T(exB, exP, exA),
		T(exA, exQ, exA),
		T(exA, exP, exB),
		T(exA, exP, exA),
	}
	SortTriples(ts)
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Key() > ts[i].Key() {
			t.Fatalf("not sorted at %d: %v > %v", i, ts[i-1], ts[i])
		}
	}
}
