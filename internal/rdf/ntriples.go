package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples serializes the graph in canonical (sorted) N-Triples form.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// NTriplesString returns the canonical N-Triples serialization as a string.
func NTriplesString(g *Graph) string {
	var b strings.Builder
	_ = WriteNTriples(&b, g) // strings.Builder never errors
	return b.String()
}

// ParseNTriples reads an N-Triples document into a new graph.
func ParseNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTriplesLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: n-triples line %d: %w", lineNo, err)
		}
		if err := g.Add(t); err != nil {
			return nil, fmt.Errorf("rdf: n-triples line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return g, nil
}

// parseNTriplesLine parses one statement, reusing the Turtle lexer since
// N-Triples is a syntactic subset of Turtle.
func parseNTriplesLine(line string) (Triple, error) {
	p := newTurtleParser(strings.NewReader(line))
	s, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	if err := p.expect(tokDot); err != nil {
		return Triple{}, err
	}
	t := Triple{S: s, P: pr, O: o}
	if err := t.Validate(); err != nil {
		return Triple{}, err
	}
	return t, nil
}

// parseTerm parses a single ground term (no abbreviations) for N-Triples.
func (p *turtleParser) parseTerm() (Term, error) {
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokIRI:
		return IRI(tok.text), nil
	case tokBlank:
		return BlankNode(tok.text), nil
	case tokLiteral:
		return p.finishLiteral(tok)
	default:
		return nil, fmt.Errorf("unexpected token %s", tok)
	}
}
