package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// deltaCap bounds the unsealed write buffer. Keeping it small keeps both
// the per-Add insertion memmove and the per-snapshot delta copy cheap;
// batch ingestion (AddAll, Merge, the parsers' output) goes through the
// sort-and-merge path instead and is not bound by it.
const deltaCap = 256

// Graph is an in-memory set of triples, dictionary-encoded: terms are
// interned to dense uint32 IDs and triples are stored as ID-triples in
// three sorted index permutations (SPO, POS, OSP), so every triple
// pattern with at least one bound component is answered by binary
// search over a contiguous range rather than hash lookups on serialized
// term strings.
//
// Writes go to a small sorted delta that is merged into the sealed base
// arrays when it fills up; Snapshot freezes the current state in O(delta)
// so reads (ForEachMatch, SPARQL evaluation) run lock-free on immutable
// data and never block writers.
//
// A Graph is safe for concurrent use. The zero value is not usable;
// call NewGraph.
type Graph struct {
	mu sync.RWMutex
	d  *dict
	// base holds the sealed, sorted bulk of the data. The arrays are
	// immutable once published (snapshots alias them); mutation replaces
	// them wholesale.
	base [nIndexes][]Key3
	// mid is a sealed intermediate level between delta and base. It
	// absorbs delta compactions so the O(n) base merge is paid only once
	// per midCap(n) triples rather than once per deltaCap. Like base,
	// its arrays are immutable once published.
	mid [nIndexes][]Key3
	// delta holds recent writes, sorted, mutated in place. Snapshots
	// copy it, so in-place mutation never invalidates a snapshot.
	delta [nIndexes][]Key3
	n     int
	// snap caches the latest snapshot; nil after any mutation.
	snap *Snapshot
	// bnodeSeq numbers graph-allocated blank nodes.
	bnodeSeq int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{d: newDict()}
}

// NewGraphFrom returns a graph initialized with the given triples.
// Invalid triples are rejected with an error.
func NewGraphFrom(ts ...Triple) (*Graph, error) {
	g := NewGraph()
	if err := g.AddAll(ts...); err != nil {
		return nil, err
	}
	return g, nil
}

// Len returns the number of distinct triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// NewBlankNode allocates a fresh blank node with a label unique within
// this graph ("g0", "g1", ...).
func (g *Graph) NewBlankNode() BlankNode {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := BlankNode(fmt.Sprintf("g%d", g.bnodeSeq))
	g.bnodeSeq++
	return b
}

// Snapshot returns an immutable point-in-time view of the graph. It is
// O(len(delta)) when the graph changed since the last call and O(1)
// otherwise, so per-query snapshotting is cheap.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snapshotLocked()
}

func (g *Graph) snapshotLocked() *Snapshot {
	if g.snap != nil {
		return g.snap
	}
	g.snap = newSnapshot(g.d, g.d.snapshotTerms(), g.base, g.mid, g.delta, g.n)
	return g.snap
}

// midCap bounds the intermediate level relative to the sealed bulk, so
// the amortized per-add merge cost stays constant as the graph grows.
func (g *Graph) midCap() int {
	if c := g.n / 8; c > 4096 {
		return c
	}
	return 4096
}

// Add inserts a triple. Adding an existing triple is a no-op. It returns
// an error when the triple is not well-formed.
func (g *Graph) Add(t Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	it := IDTriple{S: g.d.intern(t.S), P: g.d.intern(t.P), O: g.d.intern(t.O)}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addLocked(it)
	return nil
}

func (g *Graph) addLocked(it IDTriple) {
	k := Key3{it.S, it.P, it.O}
	if g.containsLocked(k) {
		return
	}
	for ix := 0; ix < nIndexes; ix++ {
		g.delta[ix] = insertSorted(g.delta[ix], toKey(ix, it))
	}
	g.n++
	g.snap = nil
	if len(g.delta[ixSPO]) >= deltaCap {
		g.compactLocked()
	}
}

func (g *Graph) containsLocked(k Key3) bool {
	return contains3(g.base[ixSPO], k) || contains3(g.mid[ixSPO], k) ||
		contains3(g.delta[ixSPO], k)
}

// compactLocked merges the delta into a fresh mid level, and the mid
// level into fresh base arrays once it outgrows midCap. The old arrays
// are left untouched for any snapshot still aliasing them.
func (g *Graph) compactLocked() {
	for ix := 0; ix < nIndexes; ix++ {
		if len(g.delta[ix]) == 0 {
			continue
		}
		g.mid[ix] = mergeSorted(g.mid[ix], g.delta[ix])
		g.delta[ix] = nil
	}
	if len(g.mid[ixSPO]) >= g.midCap() {
		for ix := 0; ix < nIndexes; ix++ {
			g.base[ix] = mergeSorted(g.base[ix], g.mid[ix])
			g.mid[ix] = nil
		}
	}
}

// AddAll inserts every triple as one atomic batch: concurrent snapshots
// see either none or all of the batch. It stops at the first invalid
// triple; the valid prefix is still applied (documented fail-fast
// semantics).
func (g *Graph) AddAll(ts ...Triple) error {
	its, ferr := g.InternTriples(ts)
	if len(its) == 0 {
		return ferr
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addBatchLocked(its)
	return ferr
}

// addBatchLocked applies a batch of pre-interned triples atomically. Small
// batches go through the per-triple insert; larger ones sort the batch
// once per index and merge, instead of paying one insertion memmove (and
// potential compaction) per triple. It returns how many were new.
func (g *Graph) addBatchLocked(its []IDTriple) int {
	if len(its) <= deltaCap {
		before := g.n
		for _, it := range its {
			g.addLocked(it)
		}
		return g.n - before
	}
	fresh := make([]Key3, 0, len(its))
	for _, it := range its {
		k := Key3{it.S, it.P, it.O}
		if g.containsLocked(k) {
			continue
		}
		fresh = append(fresh, k)
	}
	if len(fresh) == 0 {
		return 0
	}
	sort.Slice(fresh, func(i, j int) bool { return key3Less(fresh[i], fresh[j]) })
	// Batch-internal duplicates survive the membership filter; drop them.
	dedup := fresh[:1]
	for _, k := range fresh[1:] {
		if k != dedup[len(dedup)-1] {
			dedup = append(dedup, k)
		}
	}
	for ix := 0; ix < nIndexes; ix++ {
		batch := make([]Key3, len(dedup))
		if ix == ixSPO {
			copy(batch, dedup)
		} else {
			for i, k := range dedup {
				batch[i] = toKey(ix, fromKey(ixSPO, k))
			}
			sort.Slice(batch, func(i, j int) bool { return key3Less(batch[i], batch[j]) })
		}
		// Merge into mid, not base: sustained batch ingest then costs
		// O(mid+batch) per batch, with the O(n) base fold amortized by
		// the midCap schedule exactly like the per-triple path.
		g.mid[ix] = mergeSorted(mergeSorted(g.mid[ix], g.delta[ix]), batch)
		g.delta[ix] = nil
	}
	g.n += len(dedup)
	if len(g.mid[ixSPO]) >= g.midCap() {
		for ix := 0; ix < nIndexes; ix++ {
			g.base[ix] = mergeSorted(g.base[ix], g.mid[ix])
			g.mid[ix] = nil
		}
	}
	g.snap = nil
	return len(dedup)
}

// MustAdd inserts a triple and panics on malformed input. It is intended
// for static, programmer-authored data such as ontology axioms, where a
// malformed triple is a programming error.
func (g *Graph) MustAdd(t Triple) {
	if err := g.Add(t); err != nil {
		panic(err)
	}
}

// Remove deletes a triple, reporting whether it was present. Removal
// from the sealed base rebuilds the base arrays (O(n)); it is the rare
// operation in this workload and keeps the indexes tombstone-free.
func (g *Graph) Remove(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	sid, ok1 := g.d.lookup(t.S)
	pid, ok2 := g.d.lookup(t.P)
	oid, ok3 := g.d.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return g.RemoveID(IDTriple{S: sid, P: pid, O: oid})
}

// RemoveID deletes a dictionary-encoded triple, reporting whether it was
// present. It is the ID-level form of Remove, used by the persistence
// layer's WAL replay.
func (g *Graph) RemoveID(it IDTriple) bool {
	k := Key3{it.S, it.P, it.O}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case contains3(g.delta[ixSPO], k):
		for ix := 0; ix < nIndexes; ix++ {
			g.delta[ix] = removeSorted(g.delta[ix], toKey(ix, it))
		}
	case contains3(g.mid[ixSPO], k):
		for ix := 0; ix < nIndexes; ix++ {
			g.mid[ix] = rebuildWithout(g.mid[ix], toKey(ix, it))
		}
	case contains3(g.base[ixSPO], k):
		for ix := 0; ix < nIndexes; ix++ {
			g.base[ix] = rebuildWithout(g.base[ix], toKey(ix, it))
		}
	default:
		return false
	}
	g.n--
	g.snap = nil
	return true
}

// Has reports whether the graph contains the exact triple.
func (g *Graph) Has(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	sid, ok1 := g.d.lookup(t.S)
	pid, ok2 := g.d.lookup(t.P)
	oid, ok3 := g.d.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	k := Key3{sid, pid, oid}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.containsLocked(k)
}

// rebuildWithout returns a fresh copy of a sealed sorted array with one
// element dropped (the sealed arrays are aliased by snapshots and must
// never be mutated in place).
func rebuildWithout(old []Key3, kk Key3) []Key3 {
	fresh := make([]Key3, 0, len(old)-1)
	for _, e := range old {
		if e != kk {
			fresh = append(fresh, e)
		}
	}
	return fresh
}

// Match returns all triples matching the pattern, where a nil component
// is a wildcard. The result order is unspecified.
func (g *Graph) Match(s, p, o Term) []Triple {
	return g.Snapshot().Match(s, p, o)
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) Count(s, p, o Term) int {
	return g.Snapshot().Count(s, p, o)
}

// ForEachMatch streams triples matching the pattern to fn; iteration
// stops early when fn returns false. A nil component is a wildcard.
//
// Iteration runs over a snapshot, so fn may mutate the graph; the
// mutation is simply not visible to the ongoing iteration.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	g.Snapshot().ForEachMatch(s, p, o, fn)
}

// Triples returns a snapshot of every triple in deterministic order.
func (g *Graph) Triples() []Triple {
	return g.Snapshot().Triples()
}

// Subjects returns the distinct subjects of triples matching (-, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	return g.Snapshot().Subjects(p, o)
}

// Objects returns the distinct objects of triples matching (s, p, -).
func (g *Graph) Objects(s, p Term) []Term {
	return g.Snapshot().Objects(s, p)
}

// FirstObject returns the object of an arbitrary triple matching
// (s, p, -) and whether one exists. It is the common accessor for
// functional properties.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	return g.Snapshot().FirstObject(s, p)
}

// Merge adds every triple of src into g. Blank node labels are kept
// as-is; callers that need blank-node isolation should rename first.
func (g *Graph) Merge(src *Graph) {
	if err := g.AddAll(src.Triples()...); err != nil {
		// src held only validated triples; re-validation cannot fail.
		panic(err)
	}
}

// Clone returns a deep copy of the graph. The copy shares the (append-
// only) term dictionary and the sealed base arrays with the original;
// both are immutable, so the two graphs evolve independently.
func (g *Graph) Clone() *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := &Graph{d: g.d, base: g.base, mid: g.mid, n: g.n, bnodeSeq: g.bnodeSeq}
	for ix := range g.delta {
		if len(g.delta[ix]) > 0 {
			out.delta[ix] = append([]Key3(nil), g.delta[ix]...)
		}
	}
	return out
}

// EqualGraphs reports whether two graphs contain exactly the same triple
// set (no blank-node isomorphism — labels must match).
func EqualGraphs(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if !b.Has(t) {
			equal = false
			return false
		}
		return true
	})
	return equal
}
