package rdf

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an in-memory set of triples with three complete indexes
// (SPO, POS, OSP) so that every triple pattern with at least one bound
// component is answered by index lookup rather than a scan.
//
// A Graph is safe for concurrent use: reads take a shared lock, writes an
// exclusive one. The zero value is not usable; call NewGraph.
type Graph struct {
	mu sync.RWMutex
	// spo maps subject key → predicate key → object key → triple.
	spo map[string]map[string]map[string]Triple
	// pos maps predicate key → object key → subject key → triple.
	pos map[string]map[string]map[string]Triple
	// osp maps object key → subject key → predicate key → triple.
	osp map[string]map[string]map[string]Triple
	n   int
	// bnodeSeq numbers graph-allocated blank nodes.
	bnodeSeq int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(map[string]map[string]map[string]Triple),
		pos: make(map[string]map[string]map[string]Triple),
		osp: make(map[string]map[string]map[string]Triple),
	}
}

// NewGraphFrom returns a graph initialized with the given triples.
// Invalid triples are rejected with an error.
func NewGraphFrom(ts ...Triple) (*Graph, error) {
	g := NewGraph()
	for _, t := range ts {
		if err := g.Add(t); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Len returns the number of distinct triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// NewBlankNode allocates a fresh blank node with a label unique within
// this graph ("g0", "g1", ...).
func (g *Graph) NewBlankNode() BlankNode {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := BlankNode(fmt.Sprintf("g%d", g.bnodeSeq))
	g.bnodeSeq++
	return b
}

// Add inserts a triple. Adding an existing triple is a no-op. It returns
// an error when the triple is not well-formed.
func (g *Graph) Add(t Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addLocked(t)
	return nil
}

// AddAll inserts every triple, stopping at the first invalid one.
func (g *Graph) AddAll(ts ...Triple) error {
	for _, t := range ts {
		if err := g.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// MustAdd inserts a triple and panics on malformed input. It is intended
// for static, programmer-authored data such as ontology axioms, where a
// malformed triple is a programming error.
func (g *Graph) MustAdd(t Triple) {
	if err := g.Add(t); err != nil {
		panic(err)
	}
}

func (g *Graph) addLocked(t Triple) {
	sk, pk, ok := t.S.Key(), t.P.Key(), t.O.Key()
	if _, exists := g.spo[sk][pk][ok]; exists {
		return
	}
	idxAdd(g.spo, sk, pk, ok, t)
	idxAdd(g.pos, pk, ok, sk, t)
	idxAdd(g.osp, ok, sk, pk, t)
	g.n++
}

func idxAdd(idx map[string]map[string]map[string]Triple, a, b, c string, t Triple) {
	l2, ok := idx[a]
	if !ok {
		l2 = make(map[string]map[string]Triple)
		idx[a] = l2
	}
	l3, ok := l2[b]
	if !ok {
		l3 = make(map[string]Triple)
		l2[b] = l3
	}
	l3[c] = t
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sk, pk, ok := t.S.Key(), t.P.Key(), t.O.Key()
	if _, exists := g.spo[sk][pk][ok]; !exists {
		return false
	}
	idxRemove(g.spo, sk, pk, ok)
	idxRemove(g.pos, pk, ok, sk)
	idxRemove(g.osp, ok, sk, pk)
	g.n--
	return true
}

func idxRemove(idx map[string]map[string]map[string]Triple, a, b, c string) {
	l2 := idx[a]
	l3 := l2[b]
	delete(l3, c)
	if len(l3) == 0 {
		delete(l2, b)
	}
	if len(l2) == 0 {
		delete(idx, a)
	}
}

// Has reports whether the graph contains the exact triple.
func (g *Graph) Has(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.spo[t.S.Key()][t.P.Key()][t.O.Key()]
	return ok
}

// Match returns all triples matching the pattern, where a nil component is
// a wildcard. The result order is unspecified.
func (g *Graph) Match(s, p, o Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) Count(s, p, o Term) int {
	n := 0
	g.ForEachMatch(s, p, o, func(Triple) bool {
		n++
		return true
	})
	return n
}

// ForEachMatch streams triples matching the pattern to fn; iteration stops
// early when fn returns false. A nil component is a wildcard.
//
// fn must not mutate the graph.
func (g *Graph) ForEachMatch(s, p, o Term, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	switch {
	case s != nil && p != nil && o != nil:
		if t, ok := g.spo[s.Key()][p.Key()][o.Key()]; ok {
			fn(t)
		}
	case s != nil && p != nil:
		for _, t := range g.spo[s.Key()][p.Key()] {
			if !fn(t) {
				return
			}
		}
	case s != nil && o != nil:
		for _, t := range g.osp[o.Key()][s.Key()] {
			if !fn(t) {
				return
			}
		}
	case p != nil && o != nil:
		for _, t := range g.pos[p.Key()][o.Key()] {
			if !fn(t) {
				return
			}
		}
	case s != nil:
		for _, l3 := range g.spo[s.Key()] {
			for _, t := range l3 {
				if !fn(t) {
					return
				}
			}
		}
	case p != nil:
		for _, l3 := range g.pos[p.Key()] {
			for _, t := range l3 {
				if !fn(t) {
					return
				}
			}
		}
	case o != nil:
		for _, l3 := range g.osp[o.Key()] {
			for _, t := range l3 {
				if !fn(t) {
					return
				}
			}
		}
	default:
		for _, l2 := range g.spo {
			for _, l3 := range l2 {
				for _, t := range l3 {
					if !fn(t) {
						return
					}
				}
			}
		}
	}
}

// Triples returns a snapshot of every triple in deterministic order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	SortTriples(out)
	return out
}

// Subjects returns the distinct subjects of triples matching (-, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	seen := make(map[string]Term)
	g.ForEachMatch(nil, p, o, func(t Triple) bool {
		seen[t.S.Key()] = t.S
		return true
	})
	return collect(seen)
}

// Objects returns the distinct objects of triples matching (s, p, -).
func (g *Graph) Objects(s, p Term) []Term {
	seen := make(map[string]Term)
	g.ForEachMatch(s, p, nil, func(t Triple) bool {
		seen[t.O.Key()] = t.O
		return true
	})
	return collect(seen)
}

// FirstObject returns the object of an arbitrary triple matching (s, p, -)
// and whether one exists. It is the common accessor for functional
// properties.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	var out Term
	g.ForEachMatch(s, p, nil, func(t Triple) bool {
		out = t.O
		return false
	})
	return out, out != nil
}

func collect(m map[string]Term) []Term {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order keeps downstream output stable.
	sort.Strings(keys)
	out := make([]Term, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Merge adds every triple of src into g. Blank node labels are kept as-is;
// callers that need blank-node isolation should rename first.
func (g *Graph) Merge(src *Graph) {
	for _, t := range src.Triples() {
		g.MustAdd(t)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.Merge(g)
	return out
}

// EqualGraphs reports whether two graphs contain exactly the same triple
// set (no blank-node isomorphism — labels must match).
func EqualGraphs(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if !b.Has(t) {
			equal = false
			return false
		}
		return true
	})
	return equal
}
