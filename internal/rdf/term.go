// Package rdf implements the RDF 1.1 data model used throughout the
// middleware: terms (IRIs, literals, blank nodes), triples, and an indexed
// in-memory graph with N-Triples and Turtle serializations.
//
// The package is self-contained (stdlib only) and is the foundation for the
// ontology library (internal/ontology), the SPARQL-subset query engine
// (internal/sparql) and the semantic annotator (internal/mediator).
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the concrete type of a Term.
type TermKind int

const (
	// KindIRI identifies an IRI reference term.
	KindIRI TermKind = iota + 1
	// KindLiteral identifies a literal term (plain, typed or language-tagged).
	KindLiteral
	// KindBlank identifies a blank node term.
	KindBlank
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindLiteral:
		return "Literal"
	case KindBlank:
		return "BlankNode"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is an RDF term: an IRI, a literal, or a blank node.
//
// Terms are immutable value types. Equality is defined by Equal and by the
// Key method, which returns a canonical string usable as a map key.
type Term interface {
	// Kind reports the concrete kind of the term.
	Kind() TermKind
	// Key returns a canonical encoding of the term, unique across kinds,
	// suitable for use as a map key.
	Key() string
	// String returns the N-Triples representation of the term.
	String() string
}

// Equal reports whether two terms are equal under RDF term equality.
// Both nil is true; one nil is false.
func Equal(a, b Term) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	return a.Key() == b.Key()
}

// IRI is an absolute IRI reference such as
// "http://dews.africrid.example/ontology#Drought".
type IRI string

var _ Term = IRI("")

// Kind implements Term.
func (IRI) Kind() TermKind { return KindIRI }

// Key implements Term.
func (i IRI) Key() string { return "<" + string(i) + ">" }

// String returns the N-Triples form, e.g. <http://example.org/a>.
func (i IRI) String() string { return "<" + escapeIRI(string(i)) + ">" }

// Value returns the raw IRI string.
func (i IRI) Value() string { return string(i) }

// LocalName returns the fragment after the last '#' or '/', or the whole
// IRI when it has neither. It is a display convenience, not a semantic
// operation.
func (i IRI) LocalName() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/:"); idx >= 0 && idx+1 < len(s) {
		return s[idx+1:]
	}
	return s
}

// Literal is an RDF literal: a lexical form plus either a datatype IRI or a
// language tag. A literal with an empty Datatype and empty Lang is treated
// as xsd:string per RDF 1.1.
type Literal struct {
	// Lexical is the lexical form of the literal.
	Lexical string
	// Datatype is the datatype IRI; empty means xsd:string (or language
	// string when Lang is set).
	Datatype IRI
	// Lang is the language tag (lowercased), set only for language-tagged
	// strings, in which case Datatype must be empty or rdf:langString.
	Lang string
}

var _ Term = Literal{}

// Common XSD datatype IRIs.
const (
	XSDString   = IRI("http://www.w3.org/2001/XMLSchema#string")
	XSDBoolean  = IRI("http://www.w3.org/2001/XMLSchema#boolean")
	XSDInteger  = IRI("http://www.w3.org/2001/XMLSchema#integer")
	XSDDecimal  = IRI("http://www.w3.org/2001/XMLSchema#decimal")
	XSDDouble   = IRI("http://www.w3.org/2001/XMLSchema#double")
	XSDDateTime = IRI("http://www.w3.org/2001/XMLSchema#dateTime")
	XSDDate     = IRI("http://www.w3.org/2001/XMLSchema#date")
	// RDFLangString is the datatype of language-tagged strings.
	RDFLangString = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
)

// NewLiteral returns a plain (xsd:string) literal.
func NewLiteral(lexical string) Literal {
	return Literal{Lexical: lexical}
}

// NewTypedLiteral returns a literal with an explicit datatype.
func NewTypedLiteral(lexical string, datatype IRI) Literal {
	if datatype == XSDString {
		datatype = ""
	}
	return Literal{Lexical: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal. The tag is
// normalized to lower case.
func NewLangLiteral(lexical, lang string) Literal {
	return Literal{Lexical: lexical, Lang: strings.ToLower(lang)}
}

// NewBool returns an xsd:boolean literal.
func NewBool(v bool) Literal {
	return Literal{Lexical: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// NewInt returns an xsd:integer literal.
func NewInt(v int64) Literal {
	return Literal{Lexical: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewFloat returns an xsd:double literal.
func NewFloat(v float64) Literal {
	return Literal{Lexical: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// Kind implements Term.
func (Literal) Kind() TermKind { return KindLiteral }

// Key implements Term.
func (l Literal) Key() string {
	switch {
	case l.Lang != "":
		return "\"" + l.Lexical + "\"@" + l.Lang
	case l.Datatype != "":
		return "\"" + l.Lexical + "\"^^" + string(l.Datatype)
	default:
		return "\"" + l.Lexical + "\""
	}
}

// String returns the N-Triples form with escaping.
func (l Literal) String() string {
	var b strings.Builder
	b.WriteByte('"')
	b.WriteString(escapeLiteral(l.Lexical))
	b.WriteByte('"')
	switch {
	case l.Lang != "":
		b.WriteByte('@')
		b.WriteString(l.Lang)
	case l.Datatype != "" && l.Datatype != XSDString:
		b.WriteString("^^")
		b.WriteString(l.Datatype.String())
	}
	return b.String()
}

// EffectiveDatatype returns the datatype IRI taking RDF 1.1 defaults into
// account: xsd:string for plain literals, rdf:langString for language
// strings.
func (l Literal) EffectiveDatatype() IRI {
	switch {
	case l.Lang != "":
		return RDFLangString
	case l.Datatype == "":
		return XSDString
	default:
		return l.Datatype
	}
}

// IsNumeric reports whether the literal's datatype is one of the numeric
// XSD types understood by the query engine.
func (l Literal) IsNumeric() bool {
	switch l.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble:
		return true
	}
	return false
}

// Float returns the literal parsed as float64. The second result reports
// whether parsing succeeded (the literal need not be declared numeric; a
// plain "3.2" parses too).
func (l Literal) Float() (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(l.Lexical), 64)
	return f, err == nil
}

// Int returns the literal parsed as int64 and whether parsing succeeded.
func (l Literal) Int() (int64, bool) {
	v, err := strconv.ParseInt(strings.TrimSpace(l.Lexical), 10, 64)
	return v, err == nil
}

// Bool returns the literal parsed as xsd:boolean and whether parsing
// succeeded ("true", "false", "1", "0").
func (l Literal) Bool() (bool, bool) {
	switch strings.TrimSpace(l.Lexical) {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// BlankNode is a graph-scoped anonymous node identified by a label.
type BlankNode string

var _ Term = BlankNode("")

// Kind implements Term.
func (BlankNode) Kind() TermKind { return KindBlank }

// Key implements Term.
func (b BlankNode) Key() string { return "_:" + string(b) }

// String returns the N-Triples form, e.g. _:b0.
func (b BlankNode) String() string { return "_:" + string(b) }

// Label returns the blank node label without the "_:" prefix.
func (b BlankNode) Label() string { return string(b) }

// escapeLiteral escapes a literal lexical form for N-Triples output.
func escapeLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeIRI escapes characters not permitted inside an N-Triples IRIREF.
func escapeIRI(s string) string {
	if !strings.ContainsAny(s, "<>\"{}|^`\\ ") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\', ' ':
			fmt.Fprintf(&b, "\\u%04X", r)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
