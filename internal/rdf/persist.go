package rdf

import "fmt"

// This file is the exported, ID-level surface the persistence layer
// (internal/graphlog) is built on: enumerating a snapshot's dictionary
// and sorted index runs for serialization, and reconstructing a graph
// from them — plus the pre-interned mutation entry points a write-ahead
// log needs so the bytes it frames are exactly the bytes replay applies.

// Exported index identifiers for Snapshot.Run. They mirror the internal
// permutation order: every Key3 of run IndexSPO is (S, P, O), of
// IndexPOS is (P, O, S), and of IndexOSP is (O, S, P).
const (
	IndexSPO = ixSPO
	IndexPOS = ixPOS
	IndexOSP = ixOSP
	// NumIndexes is the number of index permutations a graph maintains.
	NumIndexes = nIndexes
)

// Terms returns the snapshot's frozen decode table: entry i is the term
// with ID i+1. The slice is shared and must not be modified.
func (s *Snapshot) Terms() []Term { return s.terms }

// Run returns the snapshot's triples for one index permutation as a
// single sorted, duplicate-free run, fusing the snapshot's internal
// levels. When the snapshot has no unsealed writes (the common state
// after bulk ingest or a compaction) the sealed base array is returned
// directly without copying. The result aliases immutable snapshot data
// and must not be modified.
func (s *Snapshot) Run(ix int) []Key3 {
	if ix < 0 || ix >= nIndexes {
		return nil
	}
	if len(s.mid[ix]) == 0 && len(s.delta[ix]) == 0 {
		return s.base[ix]
	}
	return mergeSorted(mergeSorted(s.base[ix], s.mid[ix]), s.delta[ix])
}

// LevelLens returns the per-level run lengths of the snapshot's SPO
// index (base, mid, delta) — the merge-structure shape, surfaced in
// store stats.
func (s *Snapshot) LevelLens() (base, mid, delta int) {
	return len(s.base[ixSPO]), len(s.mid[ixSPO]), len(s.delta[ixSPO])
}

// LookupIDTriple resolves a triple to dictionary-encoded form without
// interning anything. ok is false when any term has never been interned
// — such a triple cannot be in the graph.
func (g *Graph) LookupIDTriple(t Triple) (IDTriple, bool) {
	s, ok := g.d.lookup(t.S)
	if !ok {
		return IDTriple{}, false
	}
	p, ok := g.d.lookup(t.P)
	if !ok {
		return IDTriple{}, false
	}
	o, ok := g.d.lookup(t.O)
	if !ok {
		return IDTriple{}, false
	}
	return IDTriple{S: s, P: p, O: o}, true
}

// InternTriples validates ts and interns every term, returning the batch
// in dictionary-encoded form. Like AddAll it stops at the first invalid
// triple: the valid prefix is returned along with the error, so callers
// can preserve AddAll's documented prefix-applied semantics.
func (g *Graph) InternTriples(ts []Triple) ([]IDTriple, error) {
	var ferr error
	for i, t := range ts {
		if err := t.Validate(); err != nil {
			ferr, ts = err, ts[:i]
			break
		}
	}
	if len(ts) == 0 {
		return nil, ferr
	}
	its := make([]IDTriple, len(ts))
	for i, t := range ts {
		its[i] = IDTriple{S: g.d.intern(t.S), P: g.d.intern(t.P), O: g.d.intern(t.O)}
	}
	return its, ferr
}

// AddAllIDs applies a batch of pre-interned triples as one atomic batch
// and returns how many were new. Every ID must have been assigned by
// this graph's dictionary (via InternTriples or RestoreTerms); an
// out-of-range ID is rejected before anything is applied.
func (g *Graph) AddAllIDs(its []IDTriple) (int, error) {
	max := g.d.len()
	for _, it := range its {
		if it.S == 0 || it.S > max || it.P == 0 || it.P > max || it.O == 0 || it.O > max {
			return 0, fmt.Errorf("rdf: ID triple %v outside dictionary of %d terms", it, max)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addBatchLocked(its), nil
}

// HasID reports whether the graph contains the exact ID-triple.
func (g *Graph) HasID(it IDTriple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.containsLocked(Key3{it.S, it.P, it.O})
}

// DictLen returns the number of interned terms, which is also the
// highest assigned ID. It counts the shared dictionary, so clones of a
// graph report the same value.
func (g *Graph) DictLen() ID { return g.d.len() }

// DictRange returns the terms with IDs in (after, DictLen()], in ID
// order. The returned slice aliases the append-only dictionary and must
// not be modified.
func (g *Graph) DictRange(after ID) []Term {
	g.d.mu.Lock()
	defer g.d.mu.Unlock()
	if int(after) >= len(g.d.terms) {
		return nil
	}
	return g.d.terms[after:]
}

// RestoreTerms extends the dictionary with terms whose IDs are already
// known: term i of the slice has ID firstID+i. IDs at or below the
// current DictLen must match the existing assignment (WAL replay after a
// snapshot revisits the overlap); an ID gap or a conflicting assignment
// is a corruption error.
func (g *Graph) RestoreTerms(firstID ID, terms []Term) error {
	if firstID == 0 {
		return fmt.Errorf("rdf: RestoreTerms with ID 0 (0 is the wildcard sentinel)")
	}
	for _, t := range terms {
		if t == nil {
			return fmt.Errorf("rdf: RestoreTerms with nil term")
		}
	}
	d := g.d
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, t := range terms {
		id := firstID + ID(i)
		switch cur := ID(len(d.terms)); {
		case id <= cur:
			if d.terms[id-1].Key() != t.Key() {
				return fmt.Errorf("rdf: RestoreTerms conflict at ID %d: have %s, got %s",
					id, d.terms[id-1].Key(), t.Key())
			}
		case id == cur+1:
			d.terms = append(d.terms, t)
			d.ids.Store(t.Key(), id)
		default:
			return fmt.Errorf("rdf: RestoreTerms gap: next ID is %d, got %d", cur+1, id)
		}
	}
	return nil
}

// BlankNodeSeq returns the graph's blank-node allocation cursor (the
// number of NewBlankNode calls so far), for persistence.
func (g *Graph) BlankNodeSeq() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bnodeSeq
}

// RestoreBlankNodeSeq fast-forwards the blank-node allocation cursor so
// a reopened graph never re-issues a label a persisted triple already
// uses. It never moves the cursor backwards.
func (g *Graph) RestoreBlankNodeSeq(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n > g.bnodeSeq {
		g.bnodeSeq = n
	}
}

// NewGraphFromRuns reconstructs a graph directly from pre-sorted index
// runs — the snapshot-load path. Each run must be strictly sorted in its
// permutation's key order with every ID in [1, len(terms)], the three
// runs must describe the same triple set, and terms must be positionally
// valid for how the runs use them (subjects IRI or blank, predicates
// IRI). Validation is a sequential pass per run so a corrupt or
// hand-crafted snapshot fails with a clean error instead of corrupting
// queries or panicking later.
//
// The runs and terms are adopted, not copied: they become the sealed
// base arrays and decode table of the returned graph and must not be
// modified afterwards.
func NewGraphFromRuns(terms []Term, runs [NumIndexes][]Key3, bnodeSeq int) (*Graph, error) {
	n := len(runs[ixSPO])
	for ix := 1; ix < nIndexes; ix++ {
		if len(runs[ix]) != n {
			return nil, fmt.Errorf("rdf: index runs disagree on length: %d vs %d", n, len(runs[ix]))
		}
	}
	kinds := make([]byte, len(terms))
	for i, t := range terms {
		if t == nil {
			return nil, fmt.Errorf("rdf: nil term at ID %d", i+1)
		}
		kinds[i] = byte(t.Kind())
	}
	max := ID(len(terms))
	var sums [nIndexes]uint64
	for ix := 0; ix < nIndexes; ix++ {
		var prev Key3
		for i, k := range runs[ix] {
			if k.A == 0 || k.A > max || k.B == 0 || k.B > max || k.C == 0 || k.C > max {
				return nil, fmt.Errorf("rdf: run %d entry %d references ID outside [1, %d]", ix, i, max)
			}
			if i > 0 && !key3Less(prev, k) {
				return nil, fmt.Errorf("rdf: run %d not strictly sorted at entry %d", ix, i)
			}
			prev = k
			sums[ix] ^= mixTriple(fromKey(ix, k))
		}
	}
	// The order-independent checksum catches runs that are individually
	// well-formed but describe different triple sets, without the sort or
	// hash table a direct comparison would need.
	if sums[ixPOS] != sums[ixSPO] || sums[ixOSP] != sums[ixSPO] {
		return nil, fmt.Errorf("rdf: index runs describe different triple sets")
	}
	for _, k := range runs[ixSPO] {
		if sk := TermKind(kinds[k.A-1]); sk != KindIRI && sk != KindBlank {
			return nil, fmt.Errorf("rdf: subject ID %d is a %s", k.A, sk)
		}
		if pk := TermKind(kinds[k.B-1]); pk != KindIRI {
			return nil, fmt.Errorf("rdf: predicate ID %d is a %s", k.B, pk)
		}
	}
	g := &Graph{d: newDictFromTerms(terms), base: runs, n: n, bnodeSeq: bnodeSeq}
	return g, nil
}

// mixTriple hashes an ID-triple into a well-mixed word for the
// order-independent run checksum (an xor-fold of per-triple hashes).
func mixTriple(t IDTriple) uint64 {
	h := uint64(t.S)*0x9E3779B185EBCA87 ^ uint64(t.P)*0xC2B2AE3D27D4EB4F ^ uint64(t.O)*0x165667B19E3779F9
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// newDictFromTerms builds a dictionary whose decode slice is exactly
// terms. Populating the lookup structure is the dominant cost of a
// snapshot load at millions of terms, so the restored terms go into the
// frozen hash index — hashed in place, no Key() strings, no per-entry
// allocation — which builds several times faster than any map[string]ID
// and stays lock-free to read.
func newDictFromTerms(terms []Term) *dict {
	return &dict{terms: terms, frozen: newFrozenIndex(terms)}
}
