package rdf

import (
	"strings"
	"testing"
)

// fuzzSeeds are representative documents from the unit-test fixtures —
// every syntactic feature the parser supports, so the fuzzer mutates
// from real structure instead of discovering the grammar from scratch.
var fuzzSeeds = []string{
	"",
	"# just a comment\n",
	`@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:a ex:p "hello" .
ex:a ex:q "bonjour"@fr .
ex:b ex:r "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .
`,
	`@prefix ex: <http://example.org/> .
ex:a a ex:Class ;
     ex:p ex:b, ex:c ;
     ex:q 42 .
`,
	`@prefix ex: <http://example.org/> .
ex:a ex:knows [ ex:name "Bob" ; ex:age 42 ] .
_:x ex:p ex:b .
`,
	`@prefix ex: <http://example.org/> .
ex:a ex:list ( ex:b "two" 3 ) .
ex:empty ex:list () .
`,
	`PREFIX ex: <http://example.org/>
ex:a ex:p true .
ex:a ex:q false .
ex:a ex:r -17 .
ex:a ex:s 2.5e3 .
`,
	`@base <http://example.org/base/> .
@prefix ex: <http://example.org/> .
<rel> ex:p <http://abs.example/x> .
`,
	`@prefix ex: <http://e/> . ex:a ex:p """long
string with "quotes" and
newlines""" .
`,
	`@prefix ex: <http://e/> . ex:a ex:p "esc \t \n \" \\ \u00e9" .`,
	`<http://e/s> <http://e/p> <http://e/o> .`,
	// Near-miss documents: one byte away from valid.
	`@prefix ex: <http://e/> . ex:a ex:p "oops .`,
	`@prefix ex: <http://e/> . ex:a ex:p ex:b`,
	`@prefix ex: <http://e/> . ex:a ex:p [ ex:q ex:b .`,
}

// FuzzParseTurtle checks the full parse → serialize → reparse loop:
// any input must either fail with an error or round-trip to an
// identical graph — and must never panic. Serialization is checked both
// ways (Turtle with prefix abbreviation, and canonical N-Triples).
func FuzzParseTurtle(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseTurtleString(src)
		if err != nil {
			if g != nil {
				t.Fatalf("error %v but non-nil graph", err)
			}
			return // clean rejection is fine
		}
		// Round-trip through Turtle: the serializer's output must parse
		// and mean the same graph.
		ttl := TurtleString(g, nil)
		g2, err := ParseTurtleString(ttl)
		if err != nil {
			t.Fatalf("serialized Turtle does not reparse: %v\noriginal:\n%s\nserialized:\n%s", err, src, ttl)
		}
		if !EqualGraphs(g, g2) {
			t.Fatalf("Turtle round-trip changed the graph\noriginal:\n%s\nserialized:\n%s\nwant:\n%s\ngot:\n%s",
				src, ttl, NTriplesString(g), NTriplesString(g2))
		}
		// And through canonical N-Triples.
		nt := NTriplesString(g)
		g3, err := ParseNTriples(strings.NewReader(nt))
		if err != nil {
			t.Fatalf("canonical N-Triples does not reparse: %v\n%s", err, nt)
		}
		if !EqualGraphs(g, g3) {
			t.Fatalf("N-Triples round-trip changed the graph\nwant:\n%s\ngot:\n%s", nt, NTriplesString(g3))
		}
	})
}

// FuzzParseNTriples: same contract for the line-oriented subset — error
// or exact round-trip, never a panic. N-Triples serialization is
// canonical (sorted), so a second serialization must be byte-identical.
func FuzzParseNTriples(f *testing.F) {
	f.Add("<http://e/s> <http://e/p> <http://e/o> .\n")
	f.Add("<http://e/s> <http://e/p> \"lit\"@en .\n# comment\n\n")
	f.Add("_:b0 <http://e/p> \"3.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n")
	f.Add("<http://e/s> <http://e/p> \"esc \\t \\\" \\\\ \\u00e9\" .\n")
	f.Add("<http://e/s> <http://e/p> <http://e/o>")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseNTriples(strings.NewReader(src))
		if err != nil {
			return
		}
		nt := NTriplesString(g)
		g2, err := ParseNTriples(strings.NewReader(nt))
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, nt)
		}
		if !EqualGraphs(g, g2) {
			t.Fatalf("round-trip changed the graph\nwant:\n%s\ngot:\n%s", nt, NTriplesString(g2))
		}
		if nt2 := NTriplesString(g2); nt2 != nt {
			t.Fatalf("canonical serialization not stable:\nfirst:\n%s\nsecond:\n%s", nt, nt2)
		}
	})
}
