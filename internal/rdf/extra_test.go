package rdf

import (
	"strings"
	"testing"
)

func TestAddAll(t *testing.T) {
	g := NewGraph()
	if err := g.AddAll(T(exA, exP, exB), T(exB, exP, exC)); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if err := g.AddAll(T(exC, exP, exA), Triple{}); err == nil {
		t.Fatal("invalid triple in batch should error")
	}
	// The valid prefix of the failed batch was applied (documented
	// fail-fast semantics).
	if g.Len() != 3 {
		t.Fatalf("Len after partial batch = %d", g.Len())
	}
}

func TestIRIValue(t *testing.T) {
	if IRI("http://x/a").Value() != "http://x/a" {
		t.Error("Value should return the raw IRI")
	}
}

func TestBlankNodeLabel(t *testing.T) {
	if BlankNode("b7").Label() != "b7" {
		t.Error("Label should strip nothing")
	}
}

func TestParseTurtleEscapedIRI(t *testing.T) {
	g, err := ParseTurtleString(`<http://example.org/aA> <http://example.org/p> <http://example.org/b> .`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(T(IRI("http://example.org/aA"), IRI("http://example.org/p"), IRI("http://example.org/b"))) {
		t.Errorf("unicode escape in IRI not decoded: %v", g.Triples())
	}
}

func TestTurtleSerializerEscapesRoundTrip(t *testing.T) {
	g := NewGraph()
	// An IRI containing a space must serialize escaped and survive
	// the round trip as N-Triples (Turtle compaction refuses it).
	weird := IRI("http://example.org/has space")
	g.MustAdd(T(exA, exP, weird))
	s := NTriplesString(g)
	g2, err := ParseNTriples(strings.NewReader(s))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	// The escape decodes back to the literal character.
	if g2.Len() != 1 {
		t.Fatalf("Len = %d", g2.Len())
	}
	if !g2.Has(T(exA, exP, weird)) {
		t.Errorf("escaped IRI did not round-trip: %s", NTriplesString(g2))
	}
}
