package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespace is an IRI prefix that can mint terms, e.g.
//
//	var EX = rdf.Namespace("http://example.org/")
//	EX.IRI("Drought")  // <http://example.org/Drought>
type Namespace string

// IRI returns the namespace concatenated with the local name.
func (ns Namespace) IRI(local string) IRI { return IRI(string(ns) + local) }

// Contains reports whether the IRI falls inside this namespace.
func (ns Namespace) Contains(i IRI) bool {
	return strings.HasPrefix(string(i), string(ns))
}

// Local returns the part of the IRI after the namespace; ok is false when
// the IRI is not in this namespace.
func (ns Namespace) Local(i IRI) (string, bool) {
	if !ns.Contains(i) {
		return "", false
	}
	return string(i)[len(ns):], true
}

// Well-known namespaces used across the middleware.
const (
	NSRDF  = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
	NSRDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
	NSOWL  = Namespace("http://www.w3.org/2002/07/owl#")
	NSXSD  = Namespace("http://www.w3.org/2001/XMLSchema#")

	// Project namespaces (the unified ontology library of Figure 1).
	NSDOLCE = Namespace("http://dews.africrid.example/ontology/dolce#")
	NSSSN   = Namespace("http://dews.africrid.example/ontology/ssn#")
	NSDEWS  = Namespace("http://dews.africrid.example/ontology/drought#")
	NSIK    = Namespace("http://dews.africrid.example/ontology/ik#")
	NSGEO   = Namespace("http://dews.africrid.example/ontology/geo#")
	NSOBS   = Namespace("http://dews.africrid.example/data/observation/")
)

// Core RDF/RDFS/OWL vocabulary terms.
var (
	RDFType      = NSRDF.IRI("type")
	RDFProperty  = NSRDF.IRI("Property")
	RDFFirst     = NSRDF.IRI("first")
	RDFRest      = NSRDF.IRI("rest")
	RDFNil       = NSRDF.IRI("nil")
	RDFValue     = NSRDF.IRI("value")
	RDFStatement = NSRDF.IRI("Statement")

	RDFSClass         = NSRDFS.IRI("Class")
	RDFSSubClassOf    = NSRDFS.IRI("subClassOf")
	RDFSSubPropertyOf = NSRDFS.IRI("subPropertyOf")
	RDFSDomain        = NSRDFS.IRI("domain")
	RDFSRange         = NSRDFS.IRI("range")
	RDFSLabel         = NSRDFS.IRI("label")
	RDFSComment       = NSRDFS.IRI("comment")
	RDFSResource      = NSRDFS.IRI("Resource")
	RDFSSeeAlso       = NSRDFS.IRI("seeAlso")
	RDFSIsDefinedBy   = NSRDFS.IRI("isDefinedBy")

	OWLClass              = NSOWL.IRI("Class")
	OWLObjectProperty     = NSOWL.IRI("ObjectProperty")
	OWLDatatypeProperty   = NSOWL.IRI("DatatypeProperty")
	OWLTransitiveProperty = NSOWL.IRI("TransitiveProperty")
	OWLSymmetricProperty  = NSOWL.IRI("SymmetricProperty")
	OWLFunctionalProperty = NSOWL.IRI("FunctionalProperty")
	OWLInverseOf          = NSOWL.IRI("inverseOf")
	OWLSameAs             = NSOWL.IRI("sameAs")
	OWLEquivalentClass    = NSOWL.IRI("equivalentClass")
	OWLDisjointWith       = NSOWL.IRI("disjointWith")
	OWLOntology           = NSOWL.IRI("Ontology")
	OWLImports            = NSOWL.IRI("imports")
	OWLThing              = NSOWL.IRI("Thing")
	OWLNothing            = NSOWL.IRI("Nothing")
)

// PrefixMap maps prefix labels (without the colon) to namespaces, for
// Turtle parsing/serialization and for compacting IRIs in logs and CLIs.
type PrefixMap struct {
	byPrefix map[string]Namespace
	// ordered prefixes for deterministic output
	order []string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{byPrefix: make(map[string]Namespace)}
}

// DefaultPrefixes returns a prefix map pre-populated with the well-known
// and project namespaces.
func DefaultPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Bind("rdf", NSRDF)
	pm.Bind("rdfs", NSRDFS)
	pm.Bind("owl", NSOWL)
	pm.Bind("xsd", NSXSD)
	pm.Bind("dolce", NSDOLCE)
	pm.Bind("ssn", NSSSN)
	pm.Bind("dews", NSDEWS)
	pm.Bind("ik", NSIK)
	pm.Bind("geo", NSGEO)
	pm.Bind("obs", NSOBS)
	return pm
}

// Bind associates a prefix with a namespace, replacing any previous
// binding for that prefix.
func (pm *PrefixMap) Bind(prefix string, ns Namespace) {
	if _, exists := pm.byPrefix[prefix]; !exists {
		pm.order = append(pm.order, prefix)
	}
	pm.byPrefix[prefix] = ns
}

// Resolve expands a prefixed name like "dews:Drought" to a full IRI.
func (pm *PrefixMap) Resolve(pname string) (IRI, error) {
	i := strings.Index(pname, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a prefixed name", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	ns, ok := pm.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q", prefix)
	}
	return ns.IRI(local), nil
}

// Namespace returns the namespace bound to prefix.
func (pm *PrefixMap) Namespace(prefix string) (Namespace, bool) {
	ns, ok := pm.byPrefix[prefix]
	return ns, ok
}

// Compact renders an IRI using the longest matching bound namespace, e.g.
// dews:Drought. When no namespace matches it returns the <...> form.
func (pm *PrefixMap) Compact(i IRI) string {
	bestLen := -1
	best := ""
	for prefix, ns := range pm.byPrefix {
		if ns.Contains(i) && len(ns) > bestLen {
			local, _ := ns.Local(i)
			if !validLocalName(local) {
				continue
			}
			bestLen = len(ns)
			best = prefix + ":" + local
		}
	}
	if bestLen < 0 {
		return i.String()
	}
	return best
}

// Prefixes returns the bound prefixes in binding order.
func (pm *PrefixMap) Prefixes() []string {
	out := make([]string, len(pm.order))
	copy(out, pm.order)
	return out
}

// SortedPrefixes returns the bound prefixes in lexicographic order.
func (pm *PrefixMap) SortedPrefixes() []string {
	out := pm.Prefixes()
	sort.Strings(out)
	return out
}

// validLocalName reports whether local can appear after a prefix colon in
// Turtle without escaping. We are conservative: alphanumerics, '_', '-',
// '.' (not leading/trailing).
func validLocalName(local string) bool {
	if local == "" {
		return true
	}
	if local[0] == '.' || local[len(local)-1] == '.' {
		return false
	}
	for _, r := range local {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.':
		default:
			return false
		}
	}
	return true
}
