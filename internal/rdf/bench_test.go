package rdf

import (
	"fmt"
	"testing"
)

// benchTriplePool pre-generates distinct sensor-flavoured triples so the
// Add benchmark measures graph insertion, not term construction.
func benchTriplePool(n int) []Triple {
	ns := Namespace("http://bench.example/")
	props := make([]IRI, 8)
	for i := range props {
		props[i] = ns.IRI(fmt.Sprintf("p%d", i))
	}
	out := make([]Triple, n)
	for i := range out {
		out[i] = T(
			ns.IRI(fmt.Sprintf("s%d", i/len(props))),
			props[i%len(props)],
			NewInt(int64(i)),
		)
	}
	return out
}

// BenchmarkGraphAdd measures triple insertion. The graph is reset every
// poolSize iterations so the steady state is "insert a fresh triple into
// a graph of up to poolSize triples".
func BenchmarkGraphAdd(b *testing.B) {
	const poolSize = 1 << 17
	pool := benchTriplePool(poolSize)
	b.ReportAllocs()
	b.ResetTimer()
	var g *Graph
	for i := 0; i < b.N; i++ {
		if i%poolSize == 0 {
			g = NewGraph()
		}
		if err := g.Add(pool[i%poolSize]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphMatchSP measures a bound (s, p, -) lookup on a populated
// graph — the access pattern the reasoner and the query engine hit most.
func BenchmarkGraphMatchSP(b *testing.B) {
	const poolSize = 1 << 16
	pool := benchTriplePool(poolSize)
	g := NewGraph()
	for _, t := range pool {
		if err := g.Add(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		t := pool[i%poolSize]
		g.ForEachMatch(t.S, t.P, nil, func(Triple) bool {
			n++
			return true
		})
	}
	if n == 0 {
		b.Fatal("no matches")
	}
}
