package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermKinds(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
	}{
		{"iri", IRI("http://example.org/a"), KindIRI},
		{"literal", NewLiteral("hello"), KindLiteral},
		{"blank", BlankNode("b0"), KindBlank},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.Kind(); got != tt.kind {
				t.Errorf("Kind() = %v, want %v", got, tt.kind)
			}
		})
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "IRI" || KindLiteral.String() != "Literal" || KindBlank.String() != "BlankNode" {
		t.Errorf("unexpected kind strings: %v %v %v", KindIRI, KindLiteral, KindBlank)
	}
	if got := TermKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind should embed number, got %q", got)
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Term
		want bool
	}{
		{"same iri", IRI("http://x/a"), IRI("http://x/a"), true},
		{"diff iri", IRI("http://x/a"), IRI("http://x/b"), false},
		{"iri vs literal same text", IRI("x"), NewLiteral("x"), false},
		{"plain literals", NewLiteral("a"), NewLiteral("a"), true},
		{"lang differs", NewLangLiteral("a", "en"), NewLangLiteral("a", "st"), false},
		{"lang case-normalized", NewLangLiteral("a", "EN"), NewLangLiteral("a", "en"), true},
		{"datatype differs", NewTypedLiteral("1", XSDInteger), NewTypedLiteral("1", XSDDouble), false},
		{"both nil", nil, nil, true},
		{"one nil", IRI("x"), nil, false},
		{"blank nodes", BlankNode("a"), BlankNode("a"), true},
		{"blank vs iri", BlankNode("a"), IRI("a"), false},
		{"xsd:string normalizes to plain", NewTypedLiteral("a", XSDString), NewLiteral("a"), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Equal(tt.a, tt.b); got != tt.want {
				t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestIRILocalName(t *testing.T) {
	tests := []struct {
		iri  IRI
		want string
	}{
		{IRI("http://example.org/onto#Drought"), "Drought"},
		{IRI("http://example.org/onto/Drought"), "Drought"},
		{IRI("urn:thing"), "thing"},
		{IRI("plain"), "plain"},
		{IRI("http://example.org/onto#"), "http://example.org/onto#"},
	}
	for _, tt := range tests {
		if got := tt.iri.LocalName(); got != tt.want {
			t.Errorf("LocalName(%q) = %q, want %q", tt.iri, got, tt.want)
		}
	}
}

func TestLiteralConstructors(t *testing.T) {
	if l := NewBool(true); l.Lexical != "true" || l.Datatype != XSDBoolean {
		t.Errorf("NewBool: %+v", l)
	}
	if l := NewInt(-42); l.Lexical != "-42" || l.Datatype != XSDInteger {
		t.Errorf("NewInt: %+v", l)
	}
	if l := NewFloat(2.5); l.Lexical != "2.5" || l.Datatype != XSDDouble {
		t.Errorf("NewFloat: %+v", l)
	}
	if l := NewLangLiteral("pula", "ST"); l.Lang != "st" {
		t.Errorf("NewLangLiteral should lower-case tag: %+v", l)
	}
}

func TestLiteralAccessors(t *testing.T) {
	if f, ok := NewFloat(3.25).Float(); !ok || f != 3.25 {
		t.Errorf("Float() = %v, %v", f, ok)
	}
	if _, ok := NewLiteral("xyz").Float(); ok {
		t.Error("Float on non-number should fail")
	}
	if v, ok := NewInt(7).Int(); !ok || v != 7 {
		t.Errorf("Int() = %v, %v", v, ok)
	}
	if b, ok := NewBool(true).Bool(); !ok || !b {
		t.Errorf("Bool() = %v, %v", b, ok)
	}
	if b, ok := (Literal{Lexical: "0"}).Bool(); !ok || b {
		t.Errorf(`Bool("0") = %v, %v`, b, ok)
	}
	if _, ok := NewLiteral("maybe").Bool(); ok {
		t.Error("Bool on junk should fail")
	}
}

func TestLiteralEffectiveDatatype(t *testing.T) {
	tests := []struct {
		lit  Literal
		want IRI
	}{
		{NewLiteral("x"), XSDString},
		{NewLangLiteral("x", "en"), RDFLangString},
		{NewTypedLiteral("1", XSDInteger), XSDInteger},
	}
	for _, tt := range tests {
		if got := tt.lit.EffectiveDatatype(); got != tt.want {
			t.Errorf("EffectiveDatatype(%v) = %v, want %v", tt.lit, got, tt.want)
		}
	}
}

func TestLiteralIsNumeric(t *testing.T) {
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() {
		t.Error("int/double literals should be numeric")
	}
	if NewLiteral("1").IsNumeric() {
		t.Error("plain literal is not numeric even if it parses")
	}
}

func TestLiteralStringEscaping(t *testing.T) {
	l := NewLiteral("line1\nline2\t\"quoted\"\\slash")
	s := l.String()
	want := `"line1\nline2\t\"quoted\"\\slash"`
	if s != want {
		t.Errorf("String() = %s, want %s", s, want)
	}
}

func TestIRIStringEscaping(t *testing.T) {
	i := IRI("http://example.org/bad iri<>")
	s := i.String()
	if strings.ContainsAny(s[1:len(s)-1], " <>") {
		t.Errorf("IRI.String() must escape forbidden chars, got %s", s)
	}
}

func TestTermKeyUniqueAcrossKinds(t *testing.T) {
	// The same text as IRI, literal, and blank node must yield distinct keys.
	keys := map[string]bool{
		IRI("x").Key():        true,
		NewLiteral("x").Key(): true,
		BlankNode("x").Key():  true,
	}
	if len(keys) != 3 {
		t.Errorf("keys collide: %v", keys)
	}
}

func TestKeyDistinguishesLangAndDatatype(t *testing.T) {
	a := NewLangLiteral("x", "en").Key()
	b := NewTypedLiteral("x", XSDInteger).Key()
	c := NewLiteral("x").Key()
	if a == b || a == c || b == c {
		t.Errorf("literal keys collide: %q %q %q", a, b, c)
	}
}

func TestQuickLiteralFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got, ok := NewFloat(v).Float()
		return ok && (got == v || (got != got && v != v)) // NaN equals itself for our purpose
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, ok := NewInt(v).Int()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
