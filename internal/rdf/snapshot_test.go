package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

var (
	snapNS = Namespace("http://snap.example/")
)

func snapTriple(i int) Triple {
	return T(
		snapNS.IRI(fmt.Sprintf("s%d", i/4)),
		snapNS.IRI(fmt.Sprintf("p%d", i%4)),
		NewInt(int64(i)),
	)
}

// TestSnapshotImmutable: a snapshot keeps answering from the state it
// was taken at, across delta writes, compactions and removals.
func TestSnapshotImmutable(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 100; i++ {
		g.MustAdd(snapTriple(i))
	}
	snap := g.Snapshot()
	if snap.Len() != 100 {
		t.Fatalf("snapshot Len = %d", snap.Len())
	}

	// Mutate heavily: enough adds to force delta compaction, plus a
	// removal of a triple the snapshot owns.
	for i := 100; i < 2000; i++ {
		g.MustAdd(snapTriple(i))
	}
	if !g.Remove(snapTriple(7)) {
		t.Fatal("Remove(7) reported absent")
	}

	if snap.Len() != 100 {
		t.Errorf("snapshot Len changed to %d", snap.Len())
	}
	if !snap.Has(snapTriple(7)) {
		t.Error("snapshot lost a removed triple")
	}
	if snap.Has(snapTriple(1500)) {
		t.Error("snapshot sees a post-snapshot write")
	}
	n := 0
	snap.ForEachMatch(nil, nil, nil, func(Triple) bool { n++; return true })
	if n != 100 {
		t.Errorf("snapshot iterates %d triples, want 100", n)
	}

	// The live graph sees everything.
	if g.Len() != 1999 {
		t.Errorf("graph Len = %d, want 1999", g.Len())
	}
	if g.Has(snapTriple(7)) {
		t.Error("graph still has removed triple")
	}
}

// TestSnapshotCached: repeated snapshots of an unchanged graph are the
// same object; any mutation invalidates the cache.
func TestSnapshotCached(t *testing.T) {
	g := NewGraph()
	g.MustAdd(snapTriple(1))
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s1 != s2 {
		t.Error("unchanged graph should reuse the cached snapshot")
	}
	g.MustAdd(snapTriple(2))
	if s3 := g.Snapshot(); s1 == s3 {
		t.Error("mutation must invalidate the cached snapshot")
	}
}

// TestMatchAcrossLevels: pattern matching agrees with a naive oracle
// while triples are spread across base, mid and delta, with random
// interleaved removals.
func TestMatchAcrossLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraph()
	present := make(map[string]Triple)
	for i := 0; i < 3000; i++ {
		tr := snapTriple(rng.Intn(1200))
		if rng.Intn(5) == 0 {
			got := g.Remove(tr)
			_, want := present[tr.Key()]
			if got != want {
				t.Fatalf("step %d: Remove=%v, oracle=%v", i, got, want)
			}
			delete(present, tr.Key())
		} else {
			g.MustAdd(tr)
			present[tr.Key()] = tr
		}
	}
	if g.Len() != len(present) {
		t.Fatalf("Len = %d, oracle %d", g.Len(), len(present))
	}
	// Full scan equals oracle.
	seen := 0
	g.ForEachMatch(nil, nil, nil, func(tr Triple) bool {
		if _, ok := present[tr.Key()]; !ok {
			t.Fatalf("scan produced absent triple %v", tr)
		}
		seen++
		return true
	})
	if seen != len(present) {
		t.Fatalf("scan saw %d, oracle %d", seen, len(present))
	}
	// Bound-pattern counts equal oracle counts.
	for p := 0; p < 4; p++ {
		pred := snapNS.IRI(fmt.Sprintf("p%d", p))
		want := 0
		for _, tr := range present {
			if Equal(tr.P, pred) {
				want++
			}
		}
		if got := g.Count(nil, pred, nil); got != want {
			t.Errorf("Count(-, p%d, -) = %d, want %d", p, got, want)
		}
	}
}

// TestAddAllBulkMatchesIncremental: the sort-and-merge bulk path and
// one-by-one Add produce identical graphs, including batch-internal
// duplicates and overlap with existing triples.
func TestAddAllBulkMatchesIncremental(t *testing.T) {
	var batch []Triple
	for i := 0; i < 2000; i++ {
		batch = append(batch, snapTriple(i%1500)) // dups past 1500
	}
	bulk := NewGraph()
	bulk.MustAdd(snapTriple(3)) // overlap with the batch
	if err := bulk.AddAll(batch...); err != nil {
		t.Fatal(err)
	}
	inc := NewGraph()
	for _, tr := range batch {
		inc.MustAdd(tr)
	}
	if !EqualGraphs(bulk, inc) {
		t.Fatalf("bulk Len=%d incremental Len=%d", bulk.Len(), inc.Len())
	}
}

// TestCloneIndependence: a clone and its source evolve independently.
func TestCloneIndependence(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 600; i++ { // cross the compaction threshold
		g.MustAdd(snapTriple(i))
	}
	c := g.Clone()
	g.MustAdd(snapTriple(9000))
	c.Remove(snapTriple(5))
	if g.Len() != 601 || c.Len() != 599 {
		t.Fatalf("Len g=%d c=%d, want 601/599", g.Len(), c.Len())
	}
	if c.Has(snapTriple(9000)) {
		t.Error("clone sees source write")
	}
	if !g.Has(snapTriple(5)) {
		t.Error("source lost triple removed from clone")
	}
}

// TestSnapshotConcurrentReadWrite: lock-free snapshot reads race-cleanly
// against concurrent writers (exercised under -race in CI).
func TestSnapshotConcurrentReadWrite(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 500; i++ {
		g.MustAdd(snapTriple(i))
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					g.MustAdd(snapTriple(500 + w*100000 + i))
				case 1:
					g.Remove(snapTriple(500 + w*100000 + i - 2))
				default:
					g.AddAll(snapTriple(w*100000+i), snapTriple(w*100000+i+1))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				snap := g.Snapshot()
				n := 0
				snap.ForEachMatch(nil, nil, nil, func(Triple) bool { n++; return true })
				if n != snap.Len() {
					t.Errorf("snapshot iterated %d of %d triples", n, snap.Len())
					return
				}
				snap.Count(nil, snapNS.IRI("p1"), nil)
			}
		}()
	}
	// Writers churn for the readers' whole lifetime.
	readers.Wait()
	close(stop)
	writers.Wait()
}
