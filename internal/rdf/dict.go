package rdf

import (
	"hash/maphash"
	"sync"
)

// ID is a dictionary-assigned identifier for an interned term. IDs are
// dense, start at 1 and are never reused; 0 is reserved as "no term"
// (used as the wildcard sentinel in ID-level matching).
type ID uint32

// IDTriple is a triple in dictionary-encoded form.
type IDTriple struct {
	S, P, O ID
}

// dict interns terms to dense uint32 IDs. It is append-only: a term,
// once assigned an ID, keeps it for the lifetime of the dictionary.
//
// Lookups go through two structures: an optional frozen index over the
// terms restored in bulk from a snapshot (immutable after construction,
// so reads need no lock), and a sync.Map overlay for terms interned
// afterwards, so snapshot readers resolve query constants without
// taking any lock. Assignment (and growth of the reverse slice) is
// serialized by mu. The reverse slice is only ever appended to, so a
// slice header captured under mu remains valid forever: later appends
// either write past the captured length or reallocate, never
// disturbing already-published entries.
type dict struct {
	frozen *frozenIndex // terms restored at construction, nil otherwise
	ids    sync.Map     // term key (string) → ID, terms after frozen

	mu    sync.Mutex
	terms []Term // ID-1 → term
}

func newDict() *dict { return &dict{} }

// lookup resolves a term to its ID without interning it.
func (d *dict) lookup(t Term) (ID, bool) {
	if d.frozen != nil {
		if id, ok := d.frozen.lookup(t); ok {
			return id, true
		}
	}
	v, ok := d.ids.Load(t.Key())
	if !ok {
		return 0, false
	}
	return v.(ID), true
}

// intern returns the ID for t, assigning a fresh one when unseen.
func (d *dict) intern(t Term) ID {
	if d.frozen != nil {
		if id, ok := d.frozen.lookup(t); ok {
			return id
		}
	}
	key := t.Key()
	if v, ok := d.ids.Load(key); ok {
		return v.(ID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Double-check: another writer may have interned t meanwhile. The
	// frozen index is immutable, so only the overlay needs a recheck.
	if v, ok := d.ids.Load(key); ok {
		return v.(ID)
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.ids.Store(key, id)
	return id
}

// len returns the number of interned terms (the highest assigned ID).
func (d *dict) len() ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ID(len(d.terms))
}

// snapshotTerms captures the current reverse-lookup slice. The returned
// slice is immutable from the caller's point of view.
func (d *dict) snapshotTerms() []Term {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.terms
}

// frozenIndex is an open-addressing hash index over a fixed term slice,
// built once when a dictionary is restored from a snapshot. Building it
// is the dominant cost of reopening a multi-million-triple store, so it
// avoids everything a map[string]ID build pays per term: terms are
// hashed field-by-field (no Key() string materialization, no per-entry
// allocation) and slots hold only the uint32 ID — probe matches are
// confirmed against the term slice itself.
type frozenIndex struct {
	seed  maphash.Seed
	mask  uint64
	slots []ID // hash slot → term ID, 0 = empty
	terms []Term
}

// newFrozenIndex indexes terms (term i has ID i+1). The table is sized
// to at most 50% load so linear probes stay short.
func newFrozenIndex(terms []Term) *frozenIndex {
	size := 8
	for size < 2*len(terms) {
		size <<= 1
	}
	ix := &frozenIndex{
		seed:  maphash.MakeSeed(),
		mask:  uint64(size - 1),
		slots: make([]ID, size),
		terms: terms,
	}
	for i, t := range terms {
		at := ix.hash(t) & ix.mask
		for ix.slots[at] != 0 {
			at = (at + 1) & ix.mask
		}
		ix.slots[at] = ID(i + 1)
	}
	return ix
}

// lookup resolves t to its ID, or reports absence after hitting an
// empty slot. Hash equality alone never decides a match: the candidate
// term is compared, so collisions cost a probe step, not correctness.
func (ix *frozenIndex) lookup(t Term) (ID, bool) {
	for at := ix.hash(t) & ix.mask; ; at = (at + 1) & ix.mask {
		id := ix.slots[at]
		if id == 0 {
			return 0, false
		}
		if termEq(ix.terms[id-1], t) {
			return id, true
		}
	}
}

// hash digests a term's kind and fields directly, with separators so
// field boundaries can't alias across kinds.
func (ix *frozenIndex) hash(t Term) uint64 {
	var h maphash.Hash
	h.SetSeed(ix.seed)
	switch t := t.(type) {
	case IRI:
		h.WriteByte(byte(KindIRI))
		h.WriteString(string(t))
	case BlankNode:
		h.WriteByte(byte(KindBlank))
		h.WriteString(string(t))
	case Literal:
		h.WriteByte(byte(KindLiteral))
		h.WriteString(t.Lexical)
		h.WriteByte(0xff)
		h.WriteString(string(t.Datatype))
		h.WriteByte(0xff)
		h.WriteString(t.Lang)
	default:
		h.WriteByte(0xfe)
		h.WriteString(t.Key())
	}
	return h.Sum64()
}

// termEq is RDF term equality specialized to the built-in kinds so the
// frozen index's probe comparisons neither allocate (Key) nor risk an
// interface comparison panic on exotic Term implementations.
func termEq(a, b Term) bool {
	switch a := a.(type) {
	case IRI:
		b, ok := b.(IRI)
		return ok && a == b
	case BlankNode:
		b, ok := b.(BlankNode)
		return ok && a == b
	case Literal:
		b, ok := b.(Literal)
		return ok && a == b
	default:
		return Equal(a, b)
	}
}
