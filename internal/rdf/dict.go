package rdf

import "sync"

// ID is a dictionary-assigned identifier for an interned term. IDs are
// dense, start at 1 and are never reused; 0 is reserved as "no term"
// (used as the wildcard sentinel in ID-level matching).
type ID uint32

// IDTriple is a triple in dictionary-encoded form.
type IDTriple struct {
	S, P, O ID
}

// dict interns terms to dense uint32 IDs. It is append-only: a term,
// once assigned an ID, keeps it for the lifetime of the dictionary.
//
// Lookups go through a sync.Map so snapshot readers resolve query
// constants without taking any lock; assignment (and growth of the
// reverse slice) is serialized by mu. The reverse slice is only ever
// appended to, so a slice header captured under mu remains valid
// forever: later appends either write past the captured length or
// reallocate, never disturbing already-published entries.
type dict struct {
	ids sync.Map // term key (string) → ID

	mu    sync.Mutex
	terms []Term // ID-1 → term
}

func newDict() *dict { return &dict{} }

// lookup resolves a term to its ID without interning it.
func (d *dict) lookup(t Term) (ID, bool) {
	v, ok := d.ids.Load(t.Key())
	if !ok {
		return 0, false
	}
	return v.(ID), true
}

// intern returns the ID for t, assigning a fresh one when unseen.
func (d *dict) intern(t Term) ID {
	key := t.Key()
	if v, ok := d.ids.Load(key); ok {
		return v.(ID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Double-check: another writer may have interned t meanwhile.
	if v, ok := d.ids.Load(key); ok {
		return v.(ID)
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.ids.Store(key, id)
	return id
}

// snapshotTerms captures the current reverse-lookup slice. The returned
// slice is immutable from the caller's point of view.
func (d *dict) snapshotTerms() []Term {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.terms
}
