package rdf

import "sort"

// The three index permutations. Each index stores triples with their
// components permuted into (A, B, C) key order and sorted
// lexicographically, so that every triple pattern with at least one
// bound component is a contiguous range in one of them:
//
//	ixSPO: A=S B=P C=O   answers (s - -), (s p -), (s p o)
//	ixPOS: A=P B=O C=S   answers (- p -), (- p o)
//	ixOSP: A=O B=S C=P   answers (- - o), (s - o)
const (
	ixSPO = iota
	ixPOS
	ixOSP
	nIndexes
)

// Key3 is one entry of a permuted index: a triple with its components
// reordered into the index's (A, B, C) key order. It is exported for the
// persistence layer (internal/graphlog), which serializes and reloads
// the sorted runs directly; everything else should work with Triple or
// IDTriple.
type Key3 struct{ A, B, C ID }

func key3Less(x, y Key3) bool {
	if x.A != y.A {
		return x.A < y.A
	}
	if x.B != y.B {
		return x.B < y.B
	}
	return x.C < y.C
}

// toKey permutes a triple into index order.
func toKey(ix int, t IDTriple) Key3 {
	switch ix {
	case ixPOS:
		return Key3{t.P, t.O, t.S}
	case ixOSP:
		return Key3{t.O, t.S, t.P}
	default:
		return Key3{t.S, t.P, t.O}
	}
}

// fromKey undoes toKey.
func fromKey(ix int, k Key3) IDTriple {
	switch ix {
	case ixPOS:
		return IDTriple{S: k.C, P: k.A, O: k.B}
	case ixOSP:
		return IDTriple{S: k.B, P: k.C, O: k.A}
	default:
		return IDTriple{S: k.A, P: k.B, O: k.C}
	}
}

// range1 returns the [lo, hi) range of entries whose first component
// equals a.
func range1(arr []Key3, a ID) (int, int) {
	lo := sort.Search(len(arr), func(i int) bool { return arr[i].A >= a })
	hi := sort.Search(len(arr), func(i int) bool { return arr[i].A > a })
	return lo, hi
}

// range2 returns the [lo, hi) range of entries whose first two
// components equal (a, b).
func range2(arr []Key3, a, b ID) (int, int) {
	lo := sort.Search(len(arr), func(i int) bool {
		e := arr[i]
		return e.A > a || (e.A == a && e.B >= b)
	})
	hi := sort.Search(len(arr), func(i int) bool {
		e := arr[i]
		return e.A > a || (e.A == a && e.B > b)
	})
	return lo, hi
}

// contains3 reports whether the sorted array holds exactly k.
func contains3(arr []Key3, k Key3) bool {
	i := sort.Search(len(arr), func(i int) bool { return !key3Less(arr[i], k) })
	return i < len(arr) && arr[i] == k
}

// insertSorted inserts k into the sorted array, keeping it sorted. The
// caller has already established that k is absent.
func insertSorted(arr []Key3, k Key3) []Key3 {
	i := sort.Search(len(arr), func(i int) bool { return key3Less(k, arr[i]) })
	arr = append(arr, Key3{})
	copy(arr[i+1:], arr[i:])
	arr[i] = k
	return arr
}

// removeSorted deletes k from the sorted array in place.
func removeSorted(arr []Key3, k Key3) []Key3 {
	i := sort.Search(len(arr), func(i int) bool { return !key3Less(arr[i], k) })
	if i < len(arr) && arr[i] == k {
		copy(arr[i:], arr[i+1:])
		arr = arr[:len(arr)-1]
	}
	return arr
}

// mergeSorted merges two sorted, duplicate-free arrays into a fresh one.
func mergeSorted(base, delta []Key3) []Key3 {
	out := make([]Key3, 0, len(base)+len(delta))
	i, j := 0, 0
	for i < len(base) && j < len(delta) {
		if key3Less(base[i], delta[j]) {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, delta[j])
			j++
		}
	}
	out = append(out, base[i:]...)
	out = append(out, delta[j:]...)
	return out
}

// Snapshot is an immutable point-in-time view of a Graph. All reads are
// lock-free: the snapshot shares the graph's sealed base arrays and owns
// a private copy of the small unsealed delta, so concurrent writers
// never invalidate it and a long-running query never blocks a writer.
//
// Snapshots also expose the dictionary-encoded (ID-level) form of the
// data, which the SPARQL executor joins over directly.
//
//dewsvet:immutable
type Snapshot struct {
	d     *dict
	terms []Term // frozen decode table: ID-1 → term
	base  [nIndexes][]Key3
	mid   [nIndexes][]Key3
	delta [nIndexes][]Key3
	n     int
}

// newSnapshot builds a snapshot over a graph's current runs: the sealed
// base and mid arrays are shared (the graph never mutates them in
// place), the small unsealed delta is copied so later writes cannot
// leak into the frozen view. It lives here, next to the type, so every
// write to Snapshot fields stays in the declaring file — after this
// constructor returns, the snapshot is frozen.
func newSnapshot(d *dict, terms []Term, base, mid, delta [nIndexes][]Key3, n int) *Snapshot {
	s := &Snapshot{d: d, terms: terms, base: base, mid: mid, n: n}
	for i := range delta {
		if len(delta[i]) > 0 {
			s.delta[i] = append([]Key3(nil), delta[i]...)
		}
	}
	return s
}

// levels returns the snapshot's sorted runs for one index, largest
// first.
func (s *Snapshot) levels(ix int) [3][]Key3 {
	return [3][]Key3{s.base[ix], s.mid[ix], s.delta[ix]}
}

// Len returns the number of triples in the snapshot.
func (s *Snapshot) Len() int { return s.n }

// LookupID resolves a term to its dictionary ID. A term the dictionary
// has never seen cannot occur in any triple of this snapshot.
func (s *Snapshot) LookupID(t Term) (ID, bool) {
	if t == nil {
		return 0, false
	}
	return s.d.lookup(t)
}

// TermOf decodes an ID back to its term, or nil for 0 / unknown IDs.
func (s *Snapshot) TermOf(id ID) Term {
	if id == 0 || int(id) > len(s.terms) {
		return nil
	}
	return s.terms[id-1]
}

// indexFor picks the index and bound-prefix arity for a pattern with the
// given bound components (0 = wildcard).
func indexFor(sp, pp, op ID) (ix int, arity int) {
	switch {
	case sp != 0 && pp != 0:
		return ixSPO, 2 // (s p -) and (s p o): o checked by caller
	case pp != 0 && op != 0:
		return ixPOS, 2
	case sp != 0 && op != 0:
		return ixOSP, 2
	case sp != 0:
		return ixSPO, 1
	case pp != 0:
		return ixPOS, 1
	case op != 0:
		return ixOSP, 1
	default:
		return ixSPO, 0
	}
}

// prefix returns the index-order key prefix for the pattern.
func prefix(ix int, sp, pp, op ID) (ID, ID) {
	k := toKey(ix, IDTriple{S: sp, P: pp, O: op})
	return k.A, k.B
}

// ForEachMatchID streams ID-triples matching the pattern (0 components
// are wildcards) until fn returns false. It returns false when stopped
// early. The iteration order within one call is deterministic (sealed
// base in index order, then the delta in index order).
func (s *Snapshot) ForEachMatchID(sp, pp, op ID, fn func(IDTriple) bool) bool {
	if sp != 0 && pp != 0 && op != 0 {
		if s.HasID(IDTriple{S: sp, P: pp, O: op}) {
			return fn(IDTriple{S: sp, P: pp, O: op})
		}
		return true
	}
	ix, arity := indexFor(sp, pp, op)
	a, b := prefix(ix, sp, pp, op)
	for _, arr := range s.levels(ix) {
		lo, hi := 0, len(arr)
		switch arity {
		case 1:
			lo, hi = range1(arr, a)
		case 2:
			lo, hi = range2(arr, a, b)
		}
		for _, k := range arr[lo:hi] {
			if !fn(fromKey(ix, k)) {
				return false
			}
		}
	}
	return true
}

// CountID returns the number of triples matching the ID pattern without
// iterating them (two binary searches per array).
func (s *Snapshot) CountID(sp, pp, op ID) int {
	if sp != 0 && pp != 0 && op != 0 {
		if s.HasID(IDTriple{S: sp, P: pp, O: op}) {
			return 1
		}
		return 0
	}
	ix, arity := indexFor(sp, pp, op)
	a, b := prefix(ix, sp, pp, op)
	n := 0
	for _, arr := range s.levels(ix) {
		switch arity {
		case 0:
			n += len(arr)
		case 1:
			lo, hi := range1(arr, a)
			n += hi - lo
		case 2:
			lo, hi := range2(arr, a, b)
			n += hi - lo
		}
	}
	return n
}

// HasID reports whether the exact ID-triple is present.
func (s *Snapshot) HasID(t IDTriple) bool {
	k := Key3{t.S, t.P, t.O}
	return contains3(s.base[ixSPO], k) || contains3(s.mid[ixSPO], k) ||
		contains3(s.delta[ixSPO], k)
}

// resolve maps a term-level pattern to IDs. ok is false when a bound
// term is not in the dictionary, i.e. the pattern cannot match.
func (s *Snapshot) resolve(t Term) (ID, bool) {
	if t == nil {
		return 0, true
	}
	id, ok := s.d.lookup(t)
	return id, ok
}

// ForEachMatch streams triples matching the term-level pattern to fn
// (nil components are wildcards); iteration stops when fn returns false.
func (s *Snapshot) ForEachMatch(sub, pred, obj Term, fn func(Triple) bool) {
	sp, ok1 := s.resolve(sub)
	pp, ok2 := s.resolve(pred)
	op, ok3 := s.resolve(obj)
	if !ok1 || !ok2 || !ok3 {
		return
	}
	s.ForEachMatchID(sp, pp, op, func(t IDTriple) bool {
		return fn(Triple{S: s.terms[t.S-1], P: s.terms[t.P-1], O: s.terms[t.O-1]})
	})
}

// Match returns all triples matching the pattern.
func (s *Snapshot) Match(sub, pred, obj Term) []Triple {
	var out []Triple
	s.ForEachMatch(sub, pred, obj, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of triples matching the term-level pattern.
func (s *Snapshot) Count(sub, pred, obj Term) int {
	sp, ok1 := s.resolve(sub)
	pp, ok2 := s.resolve(pred)
	op, ok3 := s.resolve(obj)
	if !ok1 || !ok2 || !ok3 {
		return 0
	}
	return s.CountID(sp, pp, op)
}

// Has reports whether the snapshot contains the exact triple.
func (s *Snapshot) Has(t Triple) bool {
	if t.Validate() != nil {
		return false
	}
	sp, ok1 := s.resolve(t.S)
	pp, ok2 := s.resolve(t.P)
	op, ok3 := s.resolve(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return s.HasID(IDTriple{S: sp, P: pp, O: op})
}

// FirstObject returns the object of an arbitrary triple matching
// (s, p, -) and whether one exists.
func (s *Snapshot) FirstObject(sub, pred Term) (Term, bool) {
	var out Term
	s.ForEachMatch(sub, pred, nil, func(t Triple) bool {
		out = t.O
		return false
	})
	return out, out != nil
}

// Subjects returns the distinct subjects of triples matching (-, p, o).
// Deduplication runs over uint32 IDs; each distinct subject is decoded
// exactly once at the end, instead of once per matching triple into a
// string-keyed map.
func (s *Snapshot) Subjects(p, o Term) []Term {
	pp, ok1 := s.resolve(p)
	op, ok2 := s.resolve(o)
	if !ok1 || !ok2 {
		return []Term{}
	}
	seen := make(map[ID]struct{})
	s.ForEachMatchID(0, pp, op, func(t IDTriple) bool {
		seen[t.S] = struct{}{}
		return true
	})
	return s.decodeDistinct(seen)
}

// Objects returns the distinct objects of triples matching (s, p, -),
// deduplicated over IDs like Subjects.
func (s *Snapshot) Objects(sub, p Term) []Term {
	sp, ok1 := s.resolve(sub)
	pp, ok2 := s.resolve(p)
	if !ok1 || !ok2 {
		return []Term{}
	}
	seen := make(map[ID]struct{})
	s.ForEachMatchID(sp, pp, 0, func(t IDTriple) bool {
		seen[t.O] = struct{}{}
		return true
	})
	return s.decodeDistinct(seen)
}

// decodeDistinct decodes a set of IDs and sorts the terms by canonical
// key — the same deterministic order the string-keyed dedupe produced,
// but paid only once per distinct term.
func (s *Snapshot) decodeDistinct(seen map[ID]struct{}) []Term {
	type keyed struct {
		t Term
		k string
	}
	ks := make([]keyed, 0, len(seen))
	for id := range seen {
		t := s.terms[id-1]
		ks = append(ks, keyed{t: t, k: t.Key()})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].k < ks[j].k })
	out := make([]Term, len(ks))
	for i, e := range ks {
		out[i] = e.t
	}
	return out
}

// Triples returns every triple in deterministic (SPO key) order.
func (s *Snapshot) Triples() []Triple {
	out := make([]Triple, 0, s.n)
	s.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	SortTriples(out)
	return out
}
