package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is an RDF statement: subject, predicate, object.
//
// Subjects are IRIs or blank nodes; predicates are IRIs; objects are any
// term. Validity is checked by Validate, not by construction, so that
// parsers can build triples incrementally.
type Triple struct {
	S Term
	P Term
	O Term
}

// T is a convenience constructor for a Triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Validate reports nil when the triple is well-formed RDF, and a
// descriptive error otherwise.
func (t Triple) Validate() error {
	if t.S == nil || t.P == nil || t.O == nil {
		return fmt.Errorf("rdf: triple has nil component: %v", t)
	}
	switch t.S.Kind() {
	case KindIRI, KindBlank:
	default:
		return fmt.Errorf("rdf: subject must be IRI or blank node, got %s", t.S.Kind())
	}
	if t.P.Kind() != KindIRI {
		return fmt.Errorf("rdf: predicate must be IRI, got %s", t.P.Kind())
	}
	return nil
}

// Key returns a canonical encoding of the triple usable as a map key.
func (t Triple) Key() string {
	return t.S.Key() + "\x00" + t.P.Key() + "\x00" + t.O.Key()
}

// String returns the N-Triples serialization of the statement, including
// the terminating period.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Equal reports component-wise term equality.
func (t Triple) Equal(u Triple) bool {
	return Equal(t.S, u.S) && Equal(t.P, u.P) && Equal(t.O, u.O)
}

// SortTriples sorts a slice of triples into a deterministic order
// (lexicographic by subject, predicate, object key). It is used by the
// serializers and by tests that compare graphs.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if c := strings.Compare(a.S.Key(), b.S.Key()); c != 0 {
			return c < 0
		}
		if c := strings.Compare(a.P.Key(), b.P.Key()); c != 0 {
			return c < 0
		}
		return a.O.Key() < b.O.Key()
	})
}
