package graphlog

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/eventlog"
	"repro/internal/rdf"
)

// benchTriples generates the standard reopen corpus: 1M subjects per
// 10M triples, 10 predicates, 100k distinct objects — a bulletin-like
// shape where terms are heavily shared but the triple set is distinct.
func benchTriples(n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := 0; i < n; i++ {
		ts[i] = rdf.T(
			rdf.IRI("http://dews.example/s/"+strconv.Itoa(i/10)),
			rdf.IRI("http://dews.example/p/"+strconv.Itoa(i%10)),
			rdf.IRI("http://dews.example/o/"+strconv.Itoa(i%100000)),
		)
	}
	return ts
}

const benchBatch = 1 << 16

// buildStoreDir ingests n triples and checkpoints, leaving a
// snapshot-only store directory — the reopen benchmark's input.
func buildStoreDir(b *testing.B, dir string, ts []rdf.Triple) {
	b.Helper()
	st, err := Open(Config{Dir: dir, CheckpointInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	for at := 0; at < len(ts); at += benchBatch {
		end := at + benchBatch
		if end > len(ts) {
			end = len(ts)
		}
		if err := st.AddAll(ts[at:end]...); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchReopen measures Open (snapshot load + empty-tail replay) against
// a checkpointed store of n triples.
func benchReopen(b *testing.B, n int) {
	dir := b.TempDir()
	buildStoreDir(b, dir, benchTriples(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(Config{Dir: dir, CheckpointInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		if st.Graph().Len() != n {
			b.Fatalf("reopened %d triples, want %d", st.Graph().Len(), n)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphReopen1M(b *testing.B) { benchReopen(b, 1_000_000) }

// BenchmarkGraphReopen10M is the acceptance benchmark for the issue's
// ≥20x-faster-than-reingest gate. It needs ~2GB and minutes of setup,
// so it only runs when asked for explicitly; its number is recorded in
// the committed baseline.
func BenchmarkGraphReopen10M(b *testing.B) {
	if os.Getenv("DEWS_BENCH_LARGE") == "" {
		b.Skip("set DEWS_BENCH_LARGE=1 to run the 10M-triple benchmarks")
	}
	benchReopen(b, 10_000_000)
}

// benchReingest is the reopen comparison point: rebuilding the same
// graph by re-adding every triple to a fresh in-memory rdf.Graph.
func benchReingest(b *testing.B, n int) {
	ts := benchTriples(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := rdf.NewGraph()
		for at := 0; at < len(ts); at += benchBatch {
			end := at + benchBatch
			if end > len(ts) {
				end = len(ts)
			}
			if err := g.AddAll(ts[at:end]...); err != nil {
				b.Fatal(err)
			}
		}
		if g.Len() != n {
			b.Fatalf("ingested %d triples, want %d", g.Len(), n)
		}
	}
}

func BenchmarkGraphReingest1M(b *testing.B) { benchReingest(b, 1_000_000) }

func BenchmarkGraphReingest10M(b *testing.B) {
	if os.Getenv("DEWS_BENCH_LARGE") == "" {
		b.Skip("set DEWS_BENCH_LARGE=1 to run the 10M-triple benchmarks")
	}
	benchReingest(b, 10_000_000)
}

// BenchmarkGraphWALAppend measures the WAL layer of a commit — payload
// encode plus eventlog append of a bulletin-sized (6-triple) batch
// record — the per-commit durability overhead the store adds on top of
// the in-memory graph mutation.
func BenchmarkGraphWALAppend(b *testing.B) {
	st, err := Open(Config{Dir: b.TempDir(), CheckpointInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := walBatch{add: []rdf.IDTriple{
		{S: 1, P: 2, O: 3}, {S: 1, P: 4, O: 5}, {S: 1, P: 6, O: 7},
		{S: 1, P: 8, O: 9}, {S: 1, P: 10, O: 11}, {S: 1, P: 12, O: 13},
	}}
	now := time.Now().UTC()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendWALBatch(buf[:0], &batch)
		if _, err := st.wal.Append(eventlog.Record{Topic: walTopic, Time: now, Payload: buf}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAddBulletin is the end-to-end durable write: intern +
// WAL + in-memory apply of one six-triple bulletin.
func BenchmarkStoreAddBulletin(b *testing.B) {
	st, err := Open(Config{Dir: b.TempDir(), CheckpointInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AddAll(bulletin(i)...); err != nil {
			b.Fatal(err)
		}
	}
}
