package graphlog

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/rdf"
)

func iri(s string) rdf.IRI { return rdf.IRI("http://dews.example/" + s) }

// bulletin returns a batch shaped like a SemanticWeb bulletin delivery.
func bulletin(n int) []rdf.Triple {
	b := iri("bulletin/kaduna/" + strconv.Itoa(n))
	return []rdf.Triple{
		rdf.T(b, iri("ont#type"), iri("ont#Bulletin")),
		rdf.T(b, iri("ont#district"), iri("district/kaduna")),
		rdf.T(b, iri("ont#severity"), rdf.NewInt(int64(n%5))),
		rdf.T(b, iri("ont#headline"), rdf.NewLangLiteral("drought alert "+strconv.Itoa(n), "en")),
		rdf.T(b, iri("ont#issued"), rdf.NewTypedLiteral("2015-03-0"+strconv.Itoa(n%9+1), rdf.XSDDate)),
		rdf.T(b, iri("ont#source"), rdf.BlankNode("src"+strconv.Itoa(n%3))),
	}
}

func openTestStore(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = -1 // tests drive checkpoints explicitly
	}
	if cfg.FsyncInterval == 0 {
		cfg.FsyncInterval = time.Millisecond
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})

	want := rdf.NewGraph()
	for i := 0; i < 10; i++ {
		ts := bulletin(i)
		if err := st.AddAll(ts...); err != nil {
			t.Fatal(err)
		}
		if err := want.AddAll(ts...); err != nil {
			t.Fatal(err)
		}
	}
	// One removal so replay exercises the delete path.
	gone := bulletin(3)[1]
	if ok, err := st.Remove(gone); err != nil || !ok {
		t.Fatalf("Remove = %v, %v; want true, nil", ok, err)
	}
	want.Remove(gone)
	// Removing an absent triple is a durable no-op.
	if ok, err := st.Remove(gone); err != nil || ok {
		t.Fatalf("second Remove = %v, %v; want false, nil", ok, err)
	}
	if !rdf.EqualGraphs(st.Graph(), want) {
		t.Fatal("live graph differs from reference")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, Config{})
	defer st2.Close()
	if !rdf.EqualGraphs(st2.Graph(), want) {
		t.Fatal("reopened graph differs from reference")
	}
	s := st2.Stats()
	if s.SnapshotLoaded {
		t.Fatal("no checkpoint ran, yet a snapshot was loaded")
	}
	if s.ReplayedRecords == 0 || s.Triples != want.Len() {
		t.Fatalf("stats = %+v, want full-WAL replay of %d triples", s, want.Len())
	}
}

func TestStoreCheckpointAndReopen(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})
	want := rdf.NewGraph()
	add := func(n int) {
		t.Helper()
		ts := bulletin(n)
		if err := st.AddAll(ts...); err != nil {
			t.Fatal(err)
		}
		if err := want.AddAll(ts...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		add(i)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// An immediate second checkpoint has nothing to do.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Checkpoints; got != 1 {
		t.Fatalf("checkpoints = %d, want 1 (second was a no-op)", got)
	}
	for i := 8; i < 13; i++ {
		add(i)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, "*"+snapSuffix))
	if len(snaps) != 1 {
		t.Fatalf("snapshot files = %v, want exactly one", snaps)
	}

	st2 := openTestStore(t, dir, Config{})
	defer st2.Close()
	if !rdf.EqualGraphs(st2.Graph(), want) {
		t.Fatal("reopened graph differs from reference")
	}
	s := st2.Stats()
	if !s.SnapshotLoaded {
		t.Fatal("reopen did not use the snapshot")
	}
	if s.ReplayedRecords != 5 {
		t.Fatalf("replayed %d records, want 5 (only the post-checkpoint tail)", s.ReplayedRecords)
	}
	// New writes must keep working after a snapshot-based reopen (dict
	// cursor, blank-node seq, WAL offsets all restored).
	extra := bulletin(99)
	if err := st2.AddAll(extra...); err != nil {
		t.Fatal(err)
	}
	want.AddAll(extra...)
	if !rdf.EqualGraphs(st2.Graph(), want) {
		t.Fatal("post-reopen write diverged")
	}
}

func TestStoreSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})
	want := rdf.NewGraph()
	for i := 0; i < 6; i++ {
		ts := bulletin(i)
		st.AddAll(ts...)
		want.AddAll(ts...)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A corrupt snapshot claiming a high offset must be skipped; the WAL
	// is intact, so recovery falls back to a full replay.
	bad := filepath.Join(dir, "00000000000000000099"+snapSuffix)
	if err := os.WriteFile(bad, []byte("DEWGSNP1 this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir, Config{})
	defer st2.Close()
	if !rdf.EqualGraphs(st2.Graph(), want) {
		t.Fatal("graph after skipping corrupt snapshot differs")
	}
	if s := st2.Stats(); s.SnapshotsSkipped != 1 || s.SnapshotLoaded {
		t.Fatalf("stats = %+v, want one skipped snapshot and none loaded", s)
	}
}

func TestStoreRefusesTruncatedWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})
	for i := 0; i < 8; i++ {
		st.AddAll(bulletin(i)...)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(bulletin(9)...)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the snapshot the WAL truncation relied on: the store must
	// refuse to open rather than serve the tail as if it were everything.
	snaps, _ := filepath.Glob(filepath.Join(dir, "*"+snapSuffix))
	for _, p := range snaps {
		os.Remove(p)
	}
	if _, err := Open(Config{Dir: dir, CheckpointInterval: -1}); err == nil {
		t.Fatal("Open succeeded with truncated WAL and no snapshot")
	}
}

func TestStoreChunksOversizedBatches(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})
	n := walBatchTriples*2 + 100
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.T(iri("s/"+strconv.Itoa(i/10)), iri("p/"+strconv.Itoa(i%10)), rdf.NewInt(int64(i)))
	}
	if err := st.AddAll(ts...); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Appended; got != 3 {
		t.Fatalf("WAL records = %d, want 3 chunks", got)
	}
	if st.Graph().Len() != n {
		t.Fatalf("graph has %d triples, want %d", st.Graph().Len(), n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir, Config{})
	defer st2.Close()
	if st2.Graph().Len() != n {
		t.Fatalf("reopened graph has %d triples, want %d", st2.Graph().Len(), n)
	}
}

func TestStoreDedupesRewrites(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Config{})
	defer st.Close()
	ts := bulletin(1)
	if err := st.AddAll(ts...); err != nil {
		t.Fatal(err)
	}
	// Re-asserting the same facts appends nothing to the WAL.
	if err := st.AddAll(ts...); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Appended; got != 1 {
		t.Fatalf("WAL records = %d, want 1 (duplicate batch skipped)", got)
	}
}

func TestStoreClosedErrors(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Config{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.AddAll(bulletin(0)...); err != ErrClosed {
		t.Fatalf("AddAll on closed store = %v, want ErrClosed", err)
	}
	// The rejected AddAll still interned the terms, so Remove's lookup
	// succeeds and it must hit the closed check.
	if _, err := st.Remove(bulletin(0)[0]); err != ErrClosed {
		t.Fatalf("Remove on closed store = %v, want ErrClosed", err)
	}
	if _, err := st.Remove(rdf.T(iri("never"), iri("seen"), iri("terms"))); err != nil {
		t.Fatalf("Remove of unknown triple = %v, want nil (lookup short-circuits)", err)
	}
	if err := st.Checkpoint(); err != ErrClosed {
		t.Fatalf("Checkpoint on closed store = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	var ts []rdf.Triple
	for i := 0; i < 50; i++ {
		ts = append(ts, bulletin(i)...)
	}
	if err := g.AddAll(ts...); err != nil {
		t.Fatal(err)
	}
	b := g.NewBlankNode() // bump the allocation cursor past the restores
	g.Add(rdf.T(b, iri("ont#note"), rdf.NewLiteral("generated")))

	path := filepath.Join(t.TempDir(), "g"+snapSuffix)
	if err := WriteSnapshotFile(path, g.Snapshot(), 42, g.BlankNodeSeq()); err != nil {
		t.Fatal(err)
	}
	g2, info, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALOffset != 42 || info.Triples != g.Len() {
		t.Fatalf("info = %+v, want offset 42 and %d triples", info, g.Len())
	}
	if !rdf.EqualGraphs(g, g2) {
		t.Fatal("snapshot round-trip changed the graph")
	}
	if g2.BlankNodeSeq() != g.BlankNodeSeq() {
		t.Fatalf("blank-node seq %d, want %d", g2.BlankNodeSeq(), g.BlankNodeSeq())
	}

	// Any single-byte corruption must be detected (framing CRCs cover
	// every section). Try a spread of positions.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{8, len(raw) / 3, len(raw) / 2, len(raw) - 5} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshotFile(path); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncations too.
	for _, n := range []int{0, 7, 100, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSnapshotFile(path); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// TestStoreOpensSeededSnapshot covers the offline bulk-load flow
// (rdfpipe -to snapshot): a snapshot written at WAL offset 1, dropped
// into an empty directory, opens as a full store that accepts writes.
func TestStoreOpensSeededSnapshot(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 4; i++ {
		if err := g.AddAll(bulletin(i)...); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := WriteSnapshotFile(filepath.Join(dir, "seed"+snapSuffix), g.Snapshot(), 1, g.BlankNodeSeq()); err != nil {
		t.Fatal(err)
	}

	st := openTestStore(t, dir, Config{})
	defer st.Close()
	if !rdf.EqualGraphs(st.Graph(), g) {
		t.Fatal("seeded store differs from bulk-loaded graph")
	}
	if !st.Stats().SnapshotLoaded {
		t.Fatal("stats do not report the seed snapshot as loaded")
	}
	if err := st.AddAll(bulletin(99)...); err != nil {
		t.Fatal(err)
	}
	if err := g.AddAll(bulletin(99)...); err != nil {
		t.Fatal(err)
	}
	if !rdf.EqualGraphs(st.Graph(), g) {
		t.Fatal("post-seed write diverged")
	}
}
