package graphlog

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/rdf"
)

// The crash-recovery contract: a store that crashed at an arbitrary WAL
// byte position and reopened must equal a store that never crashed but
// simply stopped after some prefix of committed operations. These tests
// simulate the crash by copying the store directory and then truncating
// or bit-flipping the WAL tail at randomized offsets.

// op is one committed operation = exactly one WAL record.
type op struct {
	add []rdf.Triple
	del rdf.Triple
}

// genOps builds a deterministic mixed workload: bulletin batches, some
// shared-term small batches, and removals of earlier triples.
func genOps(rng *rand.Rand, n int) []op {
	ops := make([]op, 0, n)
	var added []rdf.Triple
	for i := 0; i < n; i++ {
		switch {
		case i > 3 && rng.Intn(4) == 0:
			ops = append(ops, op{del: added[rng.Intn(len(added))]})
		default:
			var ts []rdf.Triple
			if rng.Intn(2) == 0 {
				ts = bulletin(i)
			} else {
				for j := 0; j < 1+rng.Intn(5); j++ {
					ts = append(ts, rdf.T(
						iri("s/"+strconv.Itoa(rng.Intn(8))),
						iri("p/"+strconv.Itoa(rng.Intn(4))),
						rdf.NewInt(int64(rng.Intn(20))),
					))
				}
			}
			added = append(added, ts...)
			ops = append(ops, op{add: ts})
		}
	}
	return ops
}

// prefixGraphs returns reference graphs: prefixGraphs[j] is the state
// after the first j operations, applied to a plain in-memory graph.
func prefixGraphs(t *testing.T, ops []op) []*rdf.Graph {
	t.Helper()
	gs := make([]*rdf.Graph, len(ops)+1)
	g := rdf.NewGraph()
	gs[0] = g.Clone()
	for i, o := range ops {
		if o.del.S != nil {
			g.Remove(o.del)
		} else if err := g.AddAll(o.add...); err != nil {
			t.Fatal(err)
		}
		gs[i+1] = g.Clone()
	}
	return gs
}

// runStore applies ops to a fresh store at dir, checkpointing after
// checkpointAt ops (-1 for never), syncing every record so the simulated
// crashes are about torn writes, not lost fsync windows.
func runStore(t *testing.T, dir string, ops []op, checkpointAt int) {
	t.Helper()
	st := openTestStore(t, dir, Config{})
	for i, o := range ops {
		if o.del.S != nil {
			if _, err := st.Remove(o.del); err != nil {
				t.Fatal(err)
			}
		} else if err := st.AddAll(o.add...); err != nil {
			t.Fatal(err)
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		if i+1 == checkpointAt {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, p)
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// lastWALSegment returns the path of the highest-offset WAL segment —
// the active one at crash time, where a torn write would land.
func lastWALSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	return segs[len(segs)-1]
}

// matchPrefix asserts g equals some reference prefix, returning which.
func matchPrefix(t *testing.T, g *rdf.Graph, prefixes []*rdf.Graph, what string) int {
	t.Helper()
	for j := len(prefixes) - 1; j >= 0; j-- {
		if rdf.EqualGraphs(g, prefixes[j]) {
			return j
		}
	}
	t.Fatalf("%s: recovered graph (%d triples) matches no operation prefix", what, g.Len())
	return -1
}

func testCrashEquivalence(t *testing.T, checkpointAt int) {
	rng := rand.New(rand.NewSource(7))
	ops := genOps(rng, 24)
	prefixes := prefixGraphs(t, ops)

	clean := t.TempDir()
	runStore(t, clean, ops, checkpointAt)

	// Sanity: a clean reopen is the full prefix.
	{
		st := openTestStore(t, clean, Config{})
		if j := matchPrefix(t, st.Graph(), prefixes, "clean reopen"); j != len(ops) {
			t.Fatalf("clean reopen matched prefix %d, want %d", j, len(ops))
		}
		st.Close()
	}

	seg := lastWALSegment(t, clean)
	segData, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := filepath.Rel(clean, seg)

	// minJ is the weakest state any crash may roll back to: everything
	// the snapshot covers survives a destroyed WAL tail.
	minJ := 0
	if checkpointAt > 0 {
		minJ = checkpointAt
	}

	for trial := 0; trial < 30; trial++ {
		cut := rng.Intn(len(segData) + 1)
		t.Run(fmt.Sprintf("truncate_cp%d_at%d", checkpointAt, cut), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, clean, dir)
			if err := os.WriteFile(filepath.Join(dir, rel), segData[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(Config{Dir: dir, CheckpointInterval: -1})
			if err != nil {
				t.Fatalf("reopen after truncation to %d bytes: %v", cut, err)
			}
			defer st.Close()
			if j := matchPrefix(t, st.Graph(), prefixes, "truncated tail"); j < minJ {
				t.Fatalf("recovered prefix %d below checkpoint floor %d", j, minJ)
			}
			// Recovery must leave a writable store, not just a readable one.
			if err := st.AddAll(bulletin(1000)...); err != nil {
				t.Fatal(err)
			}
		})
	}

	for trial := 0; trial < 30; trial++ {
		pos := rng.Intn(len(segData))
		bit := byte(1) << rng.Intn(8)
		t.Run(fmt.Sprintf("bitflip_cp%d_at%d", checkpointAt, pos), func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, clean, dir)
			mut := append([]byte(nil), segData...)
			mut[pos] ^= bit
			if err := os.WriteFile(filepath.Join(dir, rel), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			// A flipped bit is detected by the frame CRC (tail truncated
			// there) or by segment/record validation (clean open error).
			// What must never happen: a panic, or a graph that matches no
			// committed prefix.
			st, err := Open(Config{Dir: dir, CheckpointInterval: -1})
			if err != nil {
				return
			}
			defer st.Close()
			if j := matchPrefix(t, st.Graph(), prefixes, "bit-flipped tail"); j < minJ {
				t.Fatalf("recovered prefix %d below checkpoint floor %d", j, minJ)
			}
		})
	}
}

func TestCrashRecoveryEquivalence(t *testing.T) {
	t.Run("no_checkpoint", func(t *testing.T) { testCrashEquivalence(t, -1) })
	t.Run("mid_run_checkpoint", func(t *testing.T) { testCrashEquivalence(t, 12) })
}
