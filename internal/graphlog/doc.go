// Package graphlog makes the dictionary-encoded triple store durable:
// a write-ahead log of committed mutation batches layered on the
// eventlog's segment/CRC/fsync machinery, plus periodic binary
// snapshots of the graph's frozen dictionary and sorted index runs.
//
// Reopening a store costs O(snapshot + WAL tail): the newest snapshot
// is loaded by adopting its pre-sorted runs directly (no re-parsing,
// no re-sorting, no re-interning hash churn beyond rebuilding the
// lookup map), then the WAL records past the snapshot's covered offset
// are replayed. A background checkpointer writes a fresh snapshot and
// truncates redundant WAL segments once the tail grows past a
// configured fraction of the graph.
//
// Crash recovery is the ordinary open path — a clean Close does not
// checkpoint or do anything else a crash would skip — so "recovered
// after a crash" and "never crashed" are the same code path and the
// same resulting graph, modulo the last unsynced fsync window.
package graphlog
