package graphlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eventlog"
	"repro/internal/rdf"
)

const (
	// walTopic tags graph WAL records inside the eventlog frames.
	walTopic = "graph"
	// walBatchTriples chunks oversized mutation batches into multiple WAL
	// records so a bulk load never hits the eventlog's per-record size
	// cap. Atomicity (what a concurrent reader or a crash can observe) is
	// per chunk; callers that need a whole batch atomic must stay under
	// this many triples, which every runtime writer (a bulletin is six
	// triples) does by orders of magnitude.
	walBatchTriples = 8192

	snapSuffix = ".gsnap"
)

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("graphlog: store is closed")

// Config configures a Store.
type Config struct {
	// Dir is the store directory (required; created if missing).
	// Snapshots live at Dir/*.gsnap, the WAL under Dir/wal/.
	Dir string
	// SegmentBytes and FsyncInterval tune the WAL's eventlog (defaults:
	// 8MiB segments, 25ms batched fsync).
	SegmentBytes  int64
	FsyncInterval time.Duration
	// CheckpointInterval is how often the background checkpointer polls
	// the tail-size trigger (default 15s; negative disables background
	// checkpointing — Checkpoint can still be called manually).
	CheckpointInterval time.Duration
	// CheckpointFraction triggers a checkpoint once the WAL tail holds
	// more than this fraction of the graph's triples (default 0.25).
	CheckpointFraction float64
	// CheckpointMinTail is an absolute floor: no checkpoint happens while
	// the tail holds fewer triples than this, however small the graph
	// (default 10000).
	CheckpointMinTail int
}

func (c *Config) applyDefaults() {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 15 * time.Second
	}
	if c.CheckpointFraction <= 0 {
		c.CheckpointFraction = 0.25
	}
	if c.CheckpointMinTail <= 0 {
		c.CheckpointMinTail = 10000
	}
}

// Stats is a point-in-time summary of the persistent store, surfaced by
// the gateway's /stats.
type Stats struct {
	Triples   int `json:"triples"`
	DictTerms int `json:"dict_terms"`
	// BaseRun/MidRun/DeltaRun are the per-level SPO run lengths of the
	// in-memory graph (base is what a snapshot would serialize).
	BaseRun  int `json:"base_run"`
	MidRun   int `json:"mid_run"`
	DeltaRun int `json:"delta_run"`
	// SnapshotOffset is the WAL offset covered by the newest snapshot;
	// WALTailRecords/Triples measure the replay debt beyond it.
	SnapshotOffset uint64 `json:"snapshot_offset"`
	WALTailRecords uint64 `json:"wal_tail_records"`
	WALTailTriples uint64 `json:"wal_tail_triples"`
	WALSegments    int    `json:"wal_segments"`
	WALBytes       int64  `json:"wal_bytes"`
	// Appended counts WAL records written by this process.
	Appended uint64 `json:"appended"`
	// Checkpoint accounting. LastCheckpointAgeSecs is -1 before the
	// first checkpoint of this process.
	Checkpoints           uint64  `json:"checkpoints"`
	CheckpointFailures    uint64  `json:"checkpoint_failures"`
	LastCheckpointAgeSecs float64 `json:"last_checkpoint_age_secs"`
	LastCheckpointMicros  int64   `json:"last_checkpoint_micros"`
	// Recovery accounting from Open: whether a snapshot was loaded and
	// how much WAL tail was replayed on top of it.
	SnapshotLoaded   bool `json:"snapshot_loaded"`
	ReplayedRecords  int  `json:"replayed_records"`
	ReplayedTriples  int  `json:"replayed_triples"`
	SnapshotsSkipped int  `json:"snapshots_skipped"`
}

// Store is a persistent rdf.Graph: a write-ahead log of committed
// mutation batches plus periodic binary snapshots, so reopening costs
// O(snapshot + WAL tail) instead of re-ingesting every triple.
//
// All mutations must go through the store (AddAll, Add, Remove); reads
// go through Graph(), which is safe for concurrent readers. The store
// serializes commits internally: a batch is encoded, appended to the
// WAL, and only then applied to the in-memory graph, all under one
// lock, so WAL order is exactly apply order and replay is
// deterministic.
//
// Durability matches the eventlog underneath: fsync is batched (25ms
// default), so a crash can lose the last few milliseconds of commits
// but never corrupts what was synced — Open truncates a torn tail and
// replays the rest, leaving the graph exactly as if the lost commits
// had never happened.
type Store struct {
	cfg Config

	mu         sync.Mutex
	g          *rdf.Graph
	wal        *eventlog.Log
	lastTermID rdf.ID // highest term ID already captured by a WAL record or snapshot
	encBuf     []byte
	closed     bool

	// Stats state, guarded by mu.
	snapOffset       uint64
	tailTriples      uint64
	appended         uint64
	checkpoints      uint64
	checkpointFails  uint64
	lastCheckpoint   time.Time
	lastCheckpointD  time.Duration
	snapshotLoaded   bool
	replayedRecords  int
	replayedTriples  int
	snapshotsSkipped int

	// cpMu serializes checkpoints (manual and background).
	cpMu sync.Mutex

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) the store at cfg.Dir: it opens the WAL, loads
// the newest readable snapshot, replays the WAL tail beyond it, and
// starts the background checkpointer. A snapshot that fails validation
// is skipped in favor of an older one (or a full WAL replay) — losing a
// checkpoint costs reopen time, never data.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("graphlog: Config.Dir is required")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphlog: %w", err)
	}
	wal, err := eventlog.Open(eventlog.Config{
		Dir:           filepath.Join(cfg.Dir, "wal"),
		SegmentBytes:  cfg.SegmentBytes,
		FsyncInterval: cfg.FsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("graphlog: opening WAL: %w", err)
	}
	st := &Store{cfg: cfg, wal: wal, stop: make(chan struct{})}
	if err := st.recover(); err != nil {
		// Recovery already failed; fold in any close error so the caller
		// sees the full teardown story instead of a silently leaked WAL.
		return nil, errors.Join(err, wal.Close())
	}
	st.lastTermID = st.g.DictLen()
	if cfg.CheckpointInterval > 0 {
		st.wg.Add(1)
		go st.checkpointLoop()
	}
	return st, nil
}

// recover builds the in-memory graph: newest valid snapshot, then WAL
// tail replay.
func (st *Store) recover() error {
	snaps, err := st.snapshotPaths()
	if err != nil {
		return err
	}
	from := uint64(1)
	// Newest first; fall back on validation failure.
	var loadErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		g, info, err := ReadSnapshotFile(snaps[i])
		if err != nil {
			st.snapshotsSkipped++
			if loadErr == nil {
				loadErr = err
			}
			continue
		}
		st.g, st.snapshotLoaded = g, true
		st.snapOffset = info.WALOffset
		from = info.WALOffset
		break
	}
	if st.g == nil {
		st.g = rdf.NewGraph()
	}
	// Replay must start at or after the WAL's first surviving record;
	// starting before it means records were truncated on the promise of a
	// snapshot that is now unreadable (or missing). Refuse to open rather
	// than silently serve a partial graph.
	if oldest := st.wal.OldestOffset(); from < oldest {
		if loadErr != nil {
			return fmt.Errorf("graphlog: replay needs WAL offset %d but log starts at %d (newest snapshot unreadable: %v)",
				from, oldest, loadErr)
		}
		return fmt.Errorf("graphlog: snapshot covers WAL up to %d but log starts at %d", from, oldest)
	}
	if next := st.wal.NextOffset(); from > next {
		return fmt.Errorf("graphlog: snapshot claims WAL offset %d beyond log end %d", from, next)
	}
	_, err = st.wal.Scan(from, func(rec eventlog.Record) error {
		b, err := decodeWALBatch(rec.Payload)
		if err != nil {
			return fmt.Errorf("WAL record %d: %w", rec.Offset, err)
		}
		return st.apply(rec.Offset, b)
	})
	if err != nil {
		return fmt.Errorf("graphlog: replay: %w", err)
	}
	return nil
}

// apply replays one decoded WAL batch onto the graph.
func (st *Store) apply(off uint64, b *walBatch) error {
	if len(b.terms) > 0 {
		if err := st.g.RestoreTerms(b.firstID, b.terms); err != nil {
			return fmt.Errorf("WAL record %d: %w", off, err)
		}
	}
	if len(b.add) > 0 {
		if _, err := st.g.AddAllIDs(b.add); err != nil {
			return fmt.Errorf("WAL record %d: %w", off, err)
		}
	}
	for _, it := range b.del {
		st.g.RemoveID(it)
	}
	st.replayedRecords++
	st.replayedTriples += len(b.add) + len(b.del)
	st.tailTriples += uint64(len(b.add) + len(b.del))
	return nil
}

// Graph returns the underlying graph for reads (queries, snapshots,
// serialization). Mutating it directly bypasses the WAL and breaks
// crash recovery — use the store's mutation methods.
func (st *Store) Graph() *rdf.Graph { return st.g }

// AddAll validates, interns and durably adds a batch of triples.
// Like rdf.Graph.AddAll it applies the valid prefix and returns the
// first validation error; a WAL write error means the batch (or a
// suffix of it, for bulk loads beyond the chunking limit) was not
// applied.
func (st *Store) AddAll(ts ...rdf.Triple) error {
	its, ferr := st.g.InternTriples(ts)
	if len(its) == 0 {
		return ferr
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	for len(its) > 0 {
		chunk := its
		if len(chunk) > walBatchTriples {
			chunk = chunk[:walBatchTriples]
		}
		its = its[len(chunk):]
		// Skip triples already present so re-asserting facts (reasoners,
		// idempotent publishers) doesn't grow the WAL.
		fresh := make([]rdf.IDTriple, 0, len(chunk))
		for _, it := range chunk {
			if !st.g.HasID(it) {
				fresh = append(fresh, it)
			}
		}
		if err := st.commitLocked(fresh, nil); err != nil {
			return err
		}
	}
	return ferr
}

// Add durably adds a single triple.
func (st *Store) Add(t rdf.Triple) error { return st.AddAll(t) }

// Remove durably removes a triple, reporting whether it was present.
func (st *Store) Remove(t rdf.Triple) (bool, error) {
	it, ok := st.g.LookupIDTriple(t)
	if !ok {
		return false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false, ErrClosed
	}
	if !st.g.HasID(it) {
		return false, nil
	}
	if err := st.commitLocked(nil, []rdf.IDTriple{it}); err != nil {
		return false, err
	}
	return true, nil
}

// commitLocked writes one WAL record for the mutation and applies it to
// the graph. Caller holds st.mu. The dict delta is every term interned
// since the last commit — interning is concurrent, so the delta can
// include terms of batches still waiting on the lock; replay tolerates
// the overlap (RestoreTerms verifies instead of re-appending).
func (st *Store) commitLocked(add, del []rdf.IDTriple) error {
	if len(add) == 0 && len(del) == 0 {
		return nil
	}
	b := walBatch{firstID: st.lastTermID + 1, add: add, del: del}
	if cur := st.g.DictLen(); cur > st.lastTermID {
		b.terms = st.g.DictRange(st.lastTermID)
		st.lastTermID = cur
	}
	st.encBuf = appendWALBatch(st.encBuf[:0], &b)
	// WAL order must equal apply order: the append happens under st.mu by
	// design, or two racing commits could land in the log in the opposite
	// order of their graph application and replay would diverge.
	//dewsvet:lockhold-ok WAL order must equal apply order; the append stays under st.mu by design
	if _, err := st.wal.Append(eventlog.Record{
		Topic:   walTopic,
		Time:    time.Now().UTC(),
		Payload: st.encBuf,
	}); err != nil {
		// The record did not land: roll back the delta cursor so the
		// terms ride along with the next successful commit.
		if b.terms != nil {
			st.lastTermID = b.firstID - 1
		}
		return fmt.Errorf("graphlog: WAL append: %w", err)
	}
	if len(add) > 0 {
		if _, err := st.g.AddAllIDs(add); err != nil {
			return err
		}
	}
	for _, it := range del {
		st.g.RemoveID(it)
	}
	st.appended++
	st.tailTriples += uint64(len(add) + len(del))
	return nil
}

// Sync forces the WAL to disk, upgrading the batched-fsync durability
// to "this commit is on stable storage now".
func (st *Store) Sync() error { return st.wal.Sync() }

// Checkpoint writes a snapshot of the current graph and truncates the
// WAL segments it makes redundant. Safe to call concurrently with
// writes; concurrent checkpoints serialize.
func (st *Store) Checkpoint() error {
	st.cpMu.Lock()
	defer st.cpMu.Unlock()

	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	snap := st.g.Snapshot()
	nextOff := st.wal.NextOffset()
	bseq := st.g.BlankNodeSeq()
	covered := st.tailTriples
	prevOff := st.snapOffset
	st.mu.Unlock()
	if nextOff == prevOff {
		return nil // nothing new since the last snapshot
	}

	start := time.Now()
	path := filepath.Join(st.cfg.Dir, fmt.Sprintf("%020d%s", nextOff, snapSuffix))
	// The slow file work below runs under cpMu alone, which serializes
	// checkpoints only; the write path takes st.mu and never cpMu, so
	// commits flow freely while the snapshot streams out.
	//dewsvet:lockhold-ok cpMu serializes checkpoints only; the write path never takes it
	err := WriteSnapshotFile(path, snap, nextOff, bseq)
	if err == nil {
		err = st.dropSnapshotsBelow(nextOff) //dewsvet:lockhold-ok cpMu serializes checkpoints only; writers never take it
	}
	if err == nil {
		// Seal the active segment so TruncateBefore can drop everything
		// the snapshot covers; records appended meanwhile live in later
		// segments and survive.
		//dewsvet:lockhold-ok cpMu serializes checkpoints only; writers never take it
		if err = st.wal.Rotate(); err == nil {
			_, err = st.wal.TruncateBefore(nextOff) //dewsvet:lockhold-ok cpMu serializes checkpoints only; writers never take it
		}
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.checkpointFails++
		return fmt.Errorf("graphlog: checkpoint: %w", err)
	}
	st.snapOffset = nextOff
	st.tailTriples -= covered
	st.checkpoints++
	st.lastCheckpoint = time.Now()
	st.lastCheckpointD = time.Since(start)
	return nil
}

// dropSnapshotsBelow removes snapshot files older than the one covering
// keep. Removal failures are ignored: a stale snapshot wastes disk but
// is skipped at recovery in favor of the newer one.
func (st *Store) dropSnapshotsBelow(keep uint64) error {
	snaps, err := st.snapshotPaths()
	if err != nil {
		return err
	}
	for _, p := range snaps {
		base := strings.TrimSuffix(filepath.Base(p), snapSuffix)
		if off, err := parseUint(base); err == nil && off < keep {
			os.Remove(p)
		}
	}
	return nil
}

// snapshotPaths returns the snapshot files sorted oldest to newest (the
// filename is the zero-padded covered WAL offset).
func (st *Store) snapshotPaths() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.cfg.Dir, "*"+snapSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func parseUint(s string) (uint64, error) {
	var v uint64
	if s == "" {
		return 0, errors.New("empty")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

// checkpointLoop polls the tail-size trigger.
func (st *Store) checkpointLoop() {
	defer st.wg.Done()
	tick := time.NewTicker(st.cfg.CheckpointInterval)
	defer tick.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-tick.C:
			if st.shouldCheckpoint() {
				st.Checkpoint() // failure is counted in stats and retried next tick
			}
		}
	}
}

// shouldCheckpoint applies the tail-fraction trigger.
func (st *Store) shouldCheckpoint() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	tail := st.tailTriples
	if tail < uint64(st.cfg.CheckpointMinTail) {
		return false
	}
	return float64(tail) >= st.cfg.CheckpointFraction*float64(st.g.Len())
}

// Stats returns a point-in-time summary.
func (st *Store) Stats() Stats {
	wal := st.wal.Stats()
	snap := st.g.Snapshot()
	base, mid, delta := snap.LevelLens()
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Triples:            snap.Len(),
		DictTerms:          int(st.g.DictLen()),
		BaseRun:            base,
		MidRun:             mid,
		DeltaRun:           delta,
		SnapshotOffset:     st.snapOffset,
		WALTailTriples:     st.tailTriples,
		WALSegments:        wal.Segments,
		WALBytes:           wal.Bytes,
		Appended:           st.appended,
		Checkpoints:        st.checkpoints,
		CheckpointFailures: st.checkpointFails,
		SnapshotLoaded:     st.snapshotLoaded,
		ReplayedRecords:    st.replayedRecords,
		ReplayedTriples:    st.replayedTriples,
		SnapshotsSkipped:   st.snapshotsSkipped,
	}
	// Offsets start at 1, so with no snapshot the whole log is tail.
	snapBase := st.snapOffset
	if snapBase < 1 {
		snapBase = 1
	}
	if wal.NextOffset > snapBase {
		s.WALTailRecords = wal.NextOffset - snapBase
	}
	s.LastCheckpointAgeSecs = -1
	if !st.lastCheckpoint.IsZero() {
		s.LastCheckpointAgeSecs = time.Since(st.lastCheckpoint).Seconds()
	}
	s.LastCheckpointMicros = st.lastCheckpointD.Microseconds()
	return s
}

// Close stops the checkpointer and closes the WAL (flushing buffered
// appends). It does not checkpoint: the clean-shutdown path and the
// crash path are deliberately identical, so recovery is exercised on
// every reopen rather than only after crashes.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	close(st.stop)
	st.wg.Wait()
	// A checkpoint in flight still holds cpMu; let it finish against the
	// closed WAL (its truncate may fail harmlessly).
	return st.wal.Close()
}
