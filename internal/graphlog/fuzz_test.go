package graphlog

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rdf"
)

// FuzzDecodeGraphWAL asserts the WAL payload decoder is total: any byte
// string either decodes cleanly or fails with an error — no panics, no
// unbounded allocations — and whatever decodes re-encodes to the same
// batch.
func FuzzDecodeGraphWAL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{walRecBatch})
	seed := walBatch{
		firstID: 3,
		terms: []rdf.Term{
			rdf.IRI("http://e/x"),
			rdf.BlankNode("b1"),
			rdf.NewLangLiteral("hi", "en"),
			rdf.NewTypedLiteral("4", rdf.XSDInteger),
			rdf.NewLiteral("plain"),
		},
		add: []rdf.IDTriple{{S: 3, P: 4, O: 5}, {S: 1, P: 4, O: 7}},
		del: []rdf.IDTriple{{S: 1, P: 2, O: 3}},
	}
	f.Add(appendWALBatch(nil, &seed))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeWALBatch(data)
		if err != nil {
			return
		}
		re := appendWALBatch(nil, b)
		b2, err := decodeWALBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip changed the batch:\n%+v\n%+v", b, b2)
		}
	})
}

// FuzzDecodeGraphSnapshot asserts the snapshot reader is total over
// arbitrary file contents, and that anything it accepts survives a
// write/read round trip as an equal graph.
func FuzzDecodeGraphSnapshot(f *testing.F) {
	g := rdf.NewGraph()
	for i := 0; i < 5; i++ {
		if err := g.AddAll(bulletin(i)...); err != nil {
			f.Fatal(err)
		}
	}
	seedPath := filepath.Join(f.TempDir(), "seed"+snapSuffix)
	if err := WriteSnapshotFile(seedPath, g.Snapshot(), 9, g.BlankNodeSeq()); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(snapMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := readSnapshot(bufio.NewReader(bytes.NewReader(data)), int64(len(data)), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := writeSnapshot(w, g.Snapshot(), 1, g.BlankNodeSeq()); err != nil {
			t.Fatalf("rewriting accepted snapshot: %v", err)
		}
		w.Flush()
		g2, _, err := readSnapshot(bufio.NewReader(&buf), int64(buf.Len()), "fuzz2")
		if err != nil {
			t.Fatalf("re-reading rewritten snapshot: %v", err)
		}
		if !rdf.EqualGraphs(g, g2) {
			t.Fatal("snapshot round trip changed the graph")
		}
	})
}
