package graphlog

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// Binary codecs shared by the WAL record payloads and the snapshot
// files. Everything is little-endian; variable-length fields are uvarint
// length-prefixed. Decoders never trust a length field further than the
// bytes that actually remain, so corrupt (or fuzzed) input fails with a
// clean error instead of a panic or an absurd allocation.

// Term wire kinds. A literal's shape is part of the kind so the common
// cases (IRI, plain literal) cost one tag byte and one length.
const (
	termIRI      = 1 // uvarint len, IRI bytes
	termBlank    = 2 // uvarint len, label bytes
	termLitPlain = 3 // uvarint len, lexical bytes
	termLitTyped = 4 // lexical, then uvarint len + datatype IRI bytes
	termLitLang  = 5 // lexical, then uvarint len + language tag bytes
)

// uvarint reads one uvarint length field at body[at:] and bounds it by
// the bytes that could still follow it.
func uvarint(body []byte, at int) (int, int, error) {
	v, n := binary.Uvarint(body[at:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint at byte %d", at)
	}
	at += n
	if v > uint64(len(body)-at) {
		return 0, 0, fmt.Errorf("length %d exceeds remaining %d bytes", v, len(body)-at)
	}
	return int(v), at, nil
}

// uvarintVal reads one uvarint value field (not a length — an ID or a
// count) without the remaining-bytes bound.
func uvarintVal(body []byte, at int) (uint64, int, error) {
	v, n := binary.Uvarint(body[at:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint at byte %d", at)
	}
	return v, at + n, nil
}

// appendTerm appends t's wire encoding to dst.
func appendTerm(dst []byte, t rdf.Term) []byte {
	switch t := t.(type) {
	case rdf.IRI:
		dst = append(dst, termIRI)
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		return append(dst, t...)
	case rdf.BlankNode:
		dst = append(dst, termBlank)
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		return append(dst, t...)
	case rdf.Literal:
		switch {
		case t.Lang != "":
			dst = append(dst, termLitLang)
			dst = binary.AppendUvarint(dst, uint64(len(t.Lexical)))
			dst = append(dst, t.Lexical...)
			dst = binary.AppendUvarint(dst, uint64(len(t.Lang)))
			return append(dst, t.Lang...)
		case t.Datatype != "":
			dst = append(dst, termLitTyped)
			dst = binary.AppendUvarint(dst, uint64(len(t.Lexical)))
			dst = append(dst, t.Lexical...)
			dst = binary.AppendUvarint(dst, uint64(len(t.Datatype)))
			return append(dst, t.Datatype...)
		default:
			dst = append(dst, termLitPlain)
			dst = binary.AppendUvarint(dst, uint64(len(t.Lexical)))
			return append(dst, t.Lexical...)
		}
	default:
		// The rdf package has exactly three Term implementations; a new
		// one must be given a wire kind before it can be persisted.
		panic(fmt.Sprintf("graphlog: unencodable term type %T", t))
	}
}

// decodeTerm decodes one term at body[at:], returning it and the next
// read position.
func decodeTerm(body []byte, at int) (rdf.Term, int, error) {
	if at >= len(body) {
		return nil, 0, fmt.Errorf("truncated term at byte %d", at)
	}
	kind := body[at]
	at++
	n, at, err := uvarint(body, at)
	if err != nil {
		return nil, 0, err
	}
	first := string(body[at : at+n])
	at += n
	switch kind {
	case termIRI:
		return rdf.IRI(first), at, nil
	case termBlank:
		return rdf.BlankNode(first), at, nil
	case termLitPlain:
		return rdf.Literal{Lexical: first}, at, nil
	case termLitTyped:
		if n, at, err = uvarint(body, at); err != nil {
			return nil, 0, err
		}
		dt := rdf.IRI(body[at : at+n])
		if dt == "" {
			return nil, 0, fmt.Errorf("typed literal with empty datatype at byte %d", at)
		}
		return rdf.Literal{Lexical: first, Datatype: dt}, at + n, nil
	case termLitLang:
		if n, at, err = uvarint(body, at); err != nil {
			return nil, 0, err
		}
		lang := string(body[at : at+n])
		if lang == "" {
			return nil, 0, fmt.Errorf("language literal with empty tag at byte %d", at)
		}
		return rdf.Literal{Lexical: first, Lang: lang}, at + n, nil
	default:
		return nil, 0, fmt.Errorf("unknown term kind %d at byte %d", kind, at-1)
	}
}

// WAL record payload layout (the eventlog frame already carries length +
// CRC + offset; this is the body the graph layer owns):
//
//	u8      recType (walRecBatch)
//	uvarint firstID          dict-delta base (meaningful when termCount > 0)
//	uvarint termCount, then termCount × term
//	uvarint addCount,  then addCount  × (uvarint S, uvarint P, uvarint O)
//	uvarint delCount,  then delCount  × (uvarint S, uvarint P, uvarint O)
const walRecBatch = 1

// walBatch is one committed mutation batch: the terms the batch
// interned (IDs firstID..firstID+len(terms)-1) plus the ID-triples it
// added and removed.
type walBatch struct {
	firstID rdf.ID
	terms   []rdf.Term
	add     []rdf.IDTriple
	del     []rdf.IDTriple
}

// appendWALBatch appends b's payload encoding to dst.
func appendWALBatch(dst []byte, b *walBatch) []byte {
	dst = append(dst, walRecBatch)
	dst = binary.AppendUvarint(dst, uint64(b.firstID))
	dst = binary.AppendUvarint(dst, uint64(len(b.terms)))
	for _, t := range b.terms {
		dst = appendTerm(dst, t)
	}
	for _, its := range [2][]rdf.IDTriple{b.add, b.del} {
		dst = binary.AppendUvarint(dst, uint64(len(its)))
		for _, it := range its {
			dst = binary.AppendUvarint(dst, uint64(it.S))
			dst = binary.AppendUvarint(dst, uint64(it.P))
			dst = binary.AppendUvarint(dst, uint64(it.O))
		}
	}
	return dst
}

// decodeWALBatch decodes a WAL record payload.
func decodeWALBatch(body []byte) (*walBatch, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("graphlog: empty WAL record")
	}
	if body[0] != walRecBatch {
		return nil, fmt.Errorf("graphlog: unknown WAL record type %d", body[0])
	}
	b := &walBatch{}
	first, at, err := uvarintVal(body, 1)
	if err != nil {
		return nil, fmt.Errorf("graphlog: WAL batch firstID: %w", err)
	}
	if first > 1<<32-1 {
		return nil, fmt.Errorf("graphlog: WAL batch firstID %d overflows ID", first)
	}
	b.firstID = rdf.ID(first)
	termCount, at, err := uvarintVal(body, at)
	if err != nil {
		return nil, fmt.Errorf("graphlog: WAL batch term count: %w", err)
	}
	// Every encoded term is at least 2 bytes, every encoded triple at
	// least 3: a corrupt count cannot force a huge allocation.
	if termCount > uint64(len(body)-at)/2 {
		return nil, fmt.Errorf("graphlog: WAL batch claims %d terms in %d bytes", termCount, len(body)-at)
	}
	if termCount > 0 {
		if b.firstID == 0 {
			return nil, fmt.Errorf("graphlog: WAL batch with terms but firstID 0")
		}
		b.terms = make([]rdf.Term, 0, termCount)
		for i := uint64(0); i < termCount; i++ {
			var t rdf.Term
			if t, at, err = decodeTerm(body, at); err != nil {
				return nil, fmt.Errorf("graphlog: WAL batch term %d: %w", i, err)
			}
			b.terms = append(b.terms, t)
		}
	}
	for which, dst := range []*[]rdf.IDTriple{&b.add, &b.del} {
		count, next, err := uvarintVal(body, at)
		if err != nil {
			return nil, fmt.Errorf("graphlog: WAL batch triple count: %w", err)
		}
		at = next
		if count > uint64(len(body)-at) {
			return nil, fmt.Errorf("graphlog: WAL batch claims %d triples in %d bytes", count, len(body)-at)
		}
		if count == 0 {
			continue
		}
		its := make([]rdf.IDTriple, 0, count)
		for i := uint64(0); i < count; i++ {
			var s, p, o uint64
			if s, at, err = uvarintVal(body, at); err == nil {
				if p, at, err = uvarintVal(body, at); err == nil {
					o, at, err = uvarintVal(body, at)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("graphlog: WAL batch triple %d of set %d: %w", i, which, err)
			}
			if s == 0 || s > 1<<32-1 || p == 0 || p > 1<<32-1 || o == 0 || o > 1<<32-1 {
				return nil, fmt.Errorf("graphlog: WAL batch triple %d has ID outside [1, 2^32)", i)
			}
			its = append(its, rdf.IDTriple{S: rdf.ID(s), P: rdf.ID(p), O: rdf.ID(o)})
		}
		*dst = its
	}
	if at != len(body) {
		return nil, fmt.Errorf("graphlog: WAL batch has %d trailing bytes", len(body)-at)
	}
	return b, nil
}
