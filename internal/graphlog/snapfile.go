package graphlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/rdf"
)

// Snapshot file layout. A snapshot is a full serialization of a graph
// snapshot — the dictionary decode table plus the three fused sorted
// index runs — framed so that any corruption (torn write, bit rot,
// truncation) is detected on load:
//
//	8B  magic "DEWGSNP1"
//	section HEADER: walOffset u64, nTriples u64, bnodeSeq u64, nTerms u64
//	section DICT:   nTerms × term (see codec.go)
//	section RUN ×3: nTriples × (A u32, B u32, C u32)   SPO, POS, OSP order
//	8B  end magic "DEWGSNPE"
//
// Every section is [len u64][payload][crc32c u32] with the CRC over the
// payload, so large runs stream through a fixed buffer on both write and
// read. walOffset is the eventlog offset of the first WAL record NOT
// reflected in the snapshot; replay resumes there.
const (
	snapMagic    = "DEWGSNP1"
	snapEndMagic = "DEWGSNPE"
	snapHdrLen   = 32
	key3Bytes    = 12
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotInfo describes a snapshot file's header.
type SnapshotInfo struct {
	// WALOffset is the offset of the first WAL record not reflected in
	// the snapshot (replay resumes here).
	WALOffset uint64
	// Triples and Terms are the run length and dictionary size.
	Triples int
	Terms   int
	// BlankNodeSeq is the persisted blank-node allocation cursor.
	BlankNodeSeq int
}

// WriteSnapshotFile serializes snap to path atomically: the bytes go to
// a temp file in the same directory which is fsynced, renamed over path,
// and the directory fsynced. A crash mid-write leaves either the old
// file or the new one, never a partial snapshot under the final name.
func WriteSnapshotFile(path string, snap *rdf.Snapshot, walOffset uint64, bnodeSeq int) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			// Best-effort: f is non-nil only on error paths, where err
			// already reports why the snapshot write failed.
			_ = f.Close()
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()

	w := bufio.NewWriterSize(f, 1<<20)
	if err = writeSnapshot(w, snap, walOffset, bnodeSeq); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	err = f.Close()
	f = nil
	if err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// writeSnapshot streams the snapshot encoding to w (everything but the
// file handling of WriteSnapshotFile — also the fast path for in-memory
// round-trip tests).
func writeSnapshot(w *bufio.Writer, snap *rdf.Snapshot, walOffset uint64, bnodeSeq int) error {
	terms := snap.Terms()
	var runs [rdf.NumIndexes][]rdf.Key3
	for ix := range runs {
		runs[ix] = snap.Run(ix)
	}
	if _, err := w.WriteString(snapMagic); err != nil {
		return err
	}
	hdr := make([]byte, 0, snapHdrLen)
	hdr = binary.LittleEndian.AppendUint64(hdr, walOffset)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(runs[0])))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(bnodeSeq))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(terms)))
	if err := writeSection(w, hdr); err != nil {
		return err
	}
	if err := writeDictSection(w, terms); err != nil {
		return err
	}
	for ix := 0; ix < rdf.NumIndexes; ix++ {
		if err := writeRunSection(w, runs[ix]); err != nil {
			return err
		}
	}
	_, err := w.WriteString(snapEndMagic)
	return err
}

// ReadSnapshotFile loads a snapshot file into a fresh graph. Corruption
// anywhere — framing, CRCs, or the graph-level invariants checked by
// rdf.NewGraphFromRuns — yields an error, never a panic or a bad graph.
func ReadSnapshotFile(path string) (*rdf.Graph, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close() //dewsvet:wralerr-ok read-only handle; a close error cannot lose data
	st, err := f.Stat()
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	return readSnapshot(bufio.NewReaderSize(f, 1<<20), st.Size(), path)
}

// readSnapshot decodes a snapshot from r, whose total length must be
// size (the bound for every allocation). path only labels errors.
func readSnapshot(r *bufio.Reader, size int64, path string) (*rdf.Graph, SnapshotInfo, error) {
	var info SnapshotInfo
	remain := size

	var magic [8]byte
	if err := readFull(r, &remain, magic[:]); err != nil {
		return nil, info, fmt.Errorf("graphlog: snapshot %s: %w", path, err)
	}
	if string(magic[:]) != snapMagic {
		return nil, info, fmt.Errorf("graphlog: %s is not a graph snapshot (bad magic)", path)
	}

	hdr, err := readSection(r, &remain, snapHdrLen)
	if err != nil {
		return nil, info, fmt.Errorf("graphlog: snapshot %s header: %w", path, err)
	}
	info.WALOffset = binary.LittleEndian.Uint64(hdr[0:])
	nTriples := binary.LittleEndian.Uint64(hdr[8:])
	bseq := binary.LittleEndian.Uint64(hdr[16:])
	nTerms := binary.LittleEndian.Uint64(hdr[24:])
	// Each triple costs 3×key3Bytes across the runs, each term at least 2
	// bytes in the dict: claims beyond the file's actual size are corrupt,
	// and rejecting them here bounds every allocation below by file size.
	if nTriples > uint64(remain)/(rdf.NumIndexes*key3Bytes) || nTerms > uint64(remain)/2 || bseq > math.MaxInt32 {
		return nil, info, fmt.Errorf("graphlog: snapshot %s header claims %d triples / %d terms beyond file size", path, nTriples, nTerms)
	}
	info.Triples = int(nTriples)
	info.Terms = int(nTerms)
	info.BlankNodeSeq = int(bseq)

	dictBuf, err := readSection(r, &remain, -1)
	if err != nil {
		return nil, info, fmt.Errorf("graphlog: snapshot %s dict: %w", path, err)
	}
	terms := make([]rdf.Term, 0, nTerms)
	for at := 0; at < len(dictBuf); {
		var t rdf.Term
		if t, at, err = decodeTerm(dictBuf, at); err != nil {
			return nil, info, fmt.Errorf("graphlog: snapshot %s dict term %d: %w", path, len(terms), err)
		}
		if uint64(len(terms)) == nTerms {
			return nil, info, fmt.Errorf("graphlog: snapshot %s dict has more than the declared %d terms", path, nTerms)
		}
		terms = append(terms, t)
	}
	if uint64(len(terms)) != nTerms {
		return nil, info, fmt.Errorf("graphlog: snapshot %s dict has %d terms, header declares %d", path, len(terms), nTerms)
	}

	var runs [rdf.NumIndexes][]rdf.Key3
	for ix := 0; ix < rdf.NumIndexes; ix++ {
		if runs[ix], err = readRunSection(r, &remain, int(nTriples)); err != nil {
			return nil, info, fmt.Errorf("graphlog: snapshot %s run %d: %w", path, ix, err)
		}
	}

	if err := readFull(r, &remain, magic[:]); err != nil {
		return nil, info, fmt.Errorf("graphlog: snapshot %s trailer: %w", path, err)
	}
	if string(magic[:]) != snapEndMagic {
		return nil, info, fmt.Errorf("graphlog: snapshot %s has a bad end marker", path)
	}
	if remain != 0 {
		return nil, info, fmt.Errorf("graphlog: snapshot %s has %d trailing bytes", path, remain)
	}

	g, err := rdf.NewGraphFromRuns(terms, runs, info.BlankNodeSeq)
	if err != nil {
		return nil, info, fmt.Errorf("graphlog: snapshot %s: %w", path, err)
	}
	return g, info, nil
}

// writeSection writes one fully-buffered section.
func writeSection(w *bufio.Writer, payload []byte) error {
	var pre [8]byte
	binary.LittleEndian.PutUint64(pre[:], uint64(len(payload)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// writeDictSection encodes the decode table. The encoded size must be
// known before the payload, so terms are encoded into one buffer; at 10M
// triples the dictionary is tens of MB, a transient small next to the
// graph itself.
func writeDictSection(w *bufio.Writer, terms []rdf.Term) error {
	var size int
	for _, t := range terms {
		size += len(t.Key()) + 8
	}
	buf := make([]byte, 0, size)
	for _, t := range terms {
		buf = appendTerm(buf, t)
	}
	return writeSection(w, buf)
}

// writeRunSection streams one index run through a fixed chunk buffer,
// computing the CRC incrementally — no 12n-byte staging allocation.
func writeRunSection(w *bufio.Writer, run []rdf.Key3) error {
	var pre [8]byte
	binary.LittleEndian.PutUint64(pre[:], uint64(len(run))*key3Bytes)
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	var sum uint32
	buf := make([]byte, 0, 4096*key3Bytes)
	for i, k := range run {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k.A))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k.B))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k.C))
		if len(buf) == cap(buf) || i == len(run)-1 {
			sum = crc32.Update(sum, castagnoli, buf)
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	_, err := w.Write(crc[:])
	return err
}

// readSection reads one fully-buffered section. wantLen < 0 accepts any
// length that fits in the remaining file bytes; otherwise the declared
// length must match exactly.
func readSection(r *bufio.Reader, remain *int64, wantLen int64) ([]byte, error) {
	var pre [8]byte
	if err := readFull(r, remain, pre[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(pre[:])
	if wantLen >= 0 && n != uint64(wantLen) {
		return nil, fmt.Errorf("section length %d, want %d", n, wantLen)
	}
	if *remain < 4 || n > uint64(*remain-4) {
		return nil, fmt.Errorf("section length %d exceeds remaining %d file bytes", n, *remain)
	}
	payload := make([]byte, n)
	if err := readFull(r, remain, payload); err != nil {
		return nil, err
	}
	return payload, verifyCRC(r, remain, crc32.Checksum(payload, castagnoli))
}

// readRunSection streams one index run section into a []Key3, CRCing
// through the same fixed-size chunks the writer used.
func readRunSection(r *bufio.Reader, remain *int64, n int) ([]rdf.Key3, error) {
	var pre [8]byte
	if err := readFull(r, remain, pre[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(pre[:]); got != uint64(n)*key3Bytes {
		return nil, fmt.Errorf("run section length %d, want %d for %d triples", got, n*key3Bytes, n)
	}
	if uint64(n)*key3Bytes > uint64(max64(*remain-4, 0)) {
		return nil, fmt.Errorf("run section exceeds remaining %d file bytes", *remain)
	}
	run := make([]rdf.Key3, 0, n)
	var sum uint32
	buf := make([]byte, 4096*key3Bytes)
	for left := n; left > 0; {
		chunk := len(buf) / key3Bytes
		if chunk > left {
			chunk = left
		}
		b := buf[:chunk*key3Bytes]
		if err := readFull(r, remain, b); err != nil {
			return nil, err
		}
		sum = crc32.Update(sum, castagnoli, b)
		for at := 0; at < len(b); at += key3Bytes {
			run = append(run, rdf.Key3{
				A: rdf.ID(binary.LittleEndian.Uint32(b[at:])),
				B: rdf.ID(binary.LittleEndian.Uint32(b[at+4:])),
				C: rdf.ID(binary.LittleEndian.Uint32(b[at+8:])),
			})
		}
		left -= chunk
	}
	return run, verifyCRC(r, remain, sum)
}

// verifyCRC reads the section trailer and compares it to the computed sum.
func verifyCRC(r *bufio.Reader, remain *int64, sum uint32) error {
	var crc [4]byte
	if err := readFull(r, remain, crc[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(crc[:]); got != sum {
		return fmt.Errorf("CRC mismatch: file %08x, computed %08x", got, sum)
	}
	return nil
}

// readFull fills buf from r, decrementing the remaining-bytes budget and
// normalizing EOF-family errors.
func readFull(r *bufio.Reader, remain *int64, buf []byte) error {
	if int64(len(buf)) > *remain {
		return fmt.Errorf("truncated: need %d bytes, %d remain", len(buf), *remain)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("truncated read: %w", err)
	}
	*remain -= int64(len(buf))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //dewsvet:wralerr-ok the Sync result is what matters; the directory handle is read-only
	return d.Sync()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
