package dews

import (
	"strings"
	"testing"

	"repro/internal/forecast"
)

func TestRunFusionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := smallConfig(7)
	cfg.Years, cfg.TrainYears = 8, 4
	rows, res, err := RunFusionAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d", len(rows))
	}
	if len(res.Issues) == 0 {
		t.Fatal("no issues recorded")
	}
	byName := make(map[string]forecast.Verification)
	for _, r := range rows {
		byName[r.Variant] = r.Verif
		if r.Verif.Contingency.N() != len(res.Issues) {
			t.Errorf("%s scored %d of %d issues", r.Variant, r.Verif.Contingency.N(), len(res.Issues))
		}
	}
	t.Logf("\n%s", FormatAblationTable(rows))

	full := byName["full"]
	// Every ablated variant should be ≤ full on Brier within tolerance —
	// removing evidence must not make the forecast much better.
	for _, name := range []string{"no-cep", "no-ik", "no-sensor"} {
		if byName[name].Brier.Score() < full.Brier.Score()*0.95 {
			t.Errorf("%s Brier %.4f markedly better than full %.4f — fusion is hurting",
				name, byName[name].Brier.Score(), full.Brier.Score())
		}
	}
	// Removing the sensor stream should hurt much more than removing CEP.
	if byName["no-sensor"].Brier.Score() <= byName["no-cep"].Brier.Score() {
		t.Logf("note: no-sensor (%.4f) not worse than no-cep (%.4f) on this seed",
			byName["no-sensor"].Brier.Score(), byName["no-cep"].Brier.Score())
	}
	table := FormatAblationTable(rows)
	if !strings.Contains(table, "no-ik") {
		t.Errorf("table missing variants: %s", table)
	}
}

func TestEvaluateOffline(t *testing.T) {
	issues := []Issue{
		{District: "x", Features: forecast.Features{RainSum90: 10, ClimRain90: 100, SoilMoisture: 0.05}, Observed: true},
		{District: "x", Features: forecast.Features{RainSum90: 100, ClimRain90: 100, SoilMoisture: 0.4}, Observed: false},
	}
	v := Evaluate("test", forecast.Persistence{}, issues, 0, 30)
	if v.Contingency.N() != 2 {
		t.Fatalf("scored %d", v.Contingency.N())
	}
	if v.Name != "test" || v.LeadDays != 30 {
		t.Errorf("metadata = %+v", v)
	}
}

func TestFusedWeightDisabling(t *testing.T) {
	sensor := forecast.SensorStat{Intercept: -1}
	ikOnly := forecast.IKOnly{BaseRate: 0.2}
	// Sensors read near-normal while IK and CEP point dry, so each
	// stream's marginal contribution is unambiguous (and probabilities
	// stay off the clamp).
	f := forecast.Features{
		RainSum30: 38, ClimRain30: 40, RainSum90: 115, ClimRain90: 120,
		SoilMoisture: 0.3, NDVI: 0.45,
		IKDryConsensus: 0.9, CEPDrySignals: 1, CEPConfidence: 0.7,
	}
	full := forecast.Fused{Sensor: sensor, IK: ikOnly}.Forecast(f)
	noCEP := forecast.Fused{Sensor: sensor, IK: ikOnly, WCEP: -1}.Forecast(f)
	if noCEP >= full {
		t.Errorf("disabling CEP should lower the dry-case probability: %v vs %v", noCEP, full)
	}
	noIK := forecast.Fused{Sensor: sensor, IK: ikOnly, WIK: -1}.Forecast(f)
	if noIK >= full {
		t.Errorf("disabling IK should lower the dry-case probability: %v vs %v", noIK, full)
	}
	// Degenerate double-disable still yields a sane probability.
	p := forecast.Fused{Sensor: sensor, IK: ikOnly, WSensor: -1, WIK: -1}.Forecast(f)
	if p <= 0 || p >= 1 {
		t.Errorf("degenerate fusion p = %v", p)
	}
}
