package dews

import "testing"

// TestSkillTableShape logs the EXP-C1 table for a medium run so the shape
// is visible in -v output (and fails only on gross inversions).
func TestSkillTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := smallConfig(42)
	cfg.Years, cfg.TrainYears = 10, 5
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatSkillTable(res))
	clim, _ := res.SkillByName("climatology")
	fused, _ := res.SkillByName("fused")
	if fused.Brier.Score() >= clim.Brier.Score() {
		t.Errorf("fused (%.4f) should beat climatology (%.4f) on Brier",
			fused.Brier.Score(), clim.Brier.Score())
	}
}
