// Package dews assembles the complete IoT-based Drought Early Warning
// System of the paper's §5: the climate truth drives a heterogeneous WSN
// whose readings cross the lossy uplink into the cloud store; the
// semantic middleware downloads, mediates and integrates them with
// indigenous-knowledge reports through the CEP engine; forecasters
// consume the unified features; and bulletins fan out through the
// dissemination hub. A Run verifies every forecaster against the
// climate ground truth, producing the skill tables of EXP-C1.
package dews

import (
	"math"
	"time"

	"repro/internal/forecast"
	"repro/internal/ik"
)

// featureBuilder maintains one district's rolling feature state from the
// middleware's observation/event streams.
type featureBuilder struct {
	district string
	// dailyRain holds observed district-mean rainfall per simulated day.
	dailyRain []float64
	// latest point observations.
	soil, ndvi, temp   float64
	haveSoil, haveNDVI bool
	// tempByDOY is the training climatology of temperature.
	tempByDOY *[367]float64
	// climDaily is the training climatology of daily rainfall by DOY.
	climDaily *[367]float64
	// ikReports holds recent reports for consensus windows.
	ikReports []ik.Report
	// cepSignals holds recent drought-pointing inference times+confidence.
	cepSignals []cepSignal
	tracker    *ik.InformantTracker
	catalogue  map[string]ik.Indicator
}

type cepSignal struct {
	at   time.Time
	conf float64
}

// droughtSignalTypes are the CEP emission types counted as
// drought-pointing evidence.
var droughtSignalTypes = map[string]bool{
	"RainfallDeficit":     true,
	"SoilMoistureDecline": true,
	"HeatWave":            true,
	"VegetationStress":    true,
	"IKDroughtWarning":    true,
	"DroughtWarning":      true,
}

func newFeatureBuilder(district string, climDaily, tempByDOY *[367]float64, tracker *ik.InformantTracker) *featureBuilder {
	return &featureBuilder{
		district:  district,
		climDaily: climDaily,
		tempByDOY: tempByDOY,
		tracker:   tracker,
		catalogue: ik.CatalogueBySlug(),
		soil:      0.25, ndvi: 0.4,
	}
}

// addDay records one day's observed district means. Missing values (no
// surviving readings) carry the previous state for point values and 0
// for rain.
func (fb *featureBuilder) addDay(rainMean float64, soil, ndvi, temp float64, haveSoil, haveNDVI, haveTemp bool) {
	fb.dailyRain = append(fb.dailyRain, rainMean)
	if haveSoil {
		fb.soil = soil
		fb.haveSoil = true
	}
	if haveNDVI {
		fb.ndvi = ndvi
		fb.haveNDVI = true
	}
	if haveTemp {
		fb.temp = temp
	}
}

func (fb *featureBuilder) addIKReport(r ik.Report) {
	fb.ikReports = append(fb.ikReports, r)
}

func (fb *featureBuilder) addCEPSignal(eventType string, at time.Time, conf float64) {
	if droughtSignalTypes[eventType] {
		fb.cepSignals = append(fb.cepSignals, cepSignal{at: at, conf: conf})
	}
}

// features assembles the forecast feature vector for the given date.
func (fb *featureBuilder) features(date time.Time) forecast.Features {
	f := forecast.Features{
		Date:         date,
		RainSum30:    trailingSum(fb.dailyRain, 30),
		RainSum90:    trailingSum(fb.dailyRain, 90),
		SoilMoisture: fb.soil,
		NDVI:         fb.ndvi,
	}
	doy := date.YearDay()
	f.ClimRain30 = climSum(fb.climDaily, doy, 30)
	f.ClimRain90 = climSum(fb.climDaily, doy, 90)
	f.TempAnomaly = fb.temp - fb.tempByDOY[doy]

	// IK consensus over the trailing 45 days, split by polarity.
	cutoff := date.AddDate(0, 0, -45)
	var dry, wet []ik.Report
	live := fb.ikReports[:0]
	for _, r := range fb.ikReports {
		if r.Time.Before(cutoff) {
			continue
		}
		live = append(live, r)
		ind, ok := fb.catalogue[r.Indicator]
		if !ok {
			continue
		}
		if ind.Polarity == ik.PolarityDry {
			dry = append(dry, r)
		} else {
			wet = append(wet, r)
		}
	}
	fb.ikReports = live
	f.IKDryConsensus = ik.ConsensusStrength(dry, fb.tracker)
	f.IKWetConsensus = ik.ConsensusStrength(wet, fb.tracker)

	// CEP signals over the trailing 30 days.
	sigCut := date.AddDate(0, 0, -30)
	liveSig := fb.cepSignals[:0]
	var confSum float64
	for _, s := range fb.cepSignals {
		if s.at.Before(sigCut) {
			continue
		}
		liveSig = append(liveSig, s)
		confSum += s.conf
	}
	fb.cepSignals = liveSig
	f.CEPDrySignals = len(liveSig)
	if len(liveSig) > 0 {
		f.CEPConfidence = confSum / float64(len(liveSig))
	}
	return f
}

func trailingSum(vals []float64, n int) float64 {
	start := len(vals) - n
	if start < 0 {
		start = 0
	}
	var sum float64
	for _, v := range vals[start:] {
		sum += v
	}
	return sum
}

// climSum sums the climatological daily rainfall for the n days ending
// at day-of-year doy (wrapping the year boundary).
func climSum(clim *[367]float64, doy, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		d := doy - i
		for d < 1 {
			d += 365
		}
		if d > 366 {
			d -= 365
		}
		sum += clim[d]
	}
	return sum
}

// fitClimatology computes per-DOY mean daily rainfall and temperature
// from a training prefix of observed district means.
func fitClimatology(dailyRain, dailyTemp []float64, startDate time.Time) (rain, temp *[367]float64) {
	var rainSum, tempSum, count [367]float64
	for i := range dailyRain {
		doy := startDate.AddDate(0, 0, i).YearDay()
		rainSum[doy] += dailyRain[i]
		tempSum[doy] += dailyTemp[i]
		count[doy]++
	}
	rain, temp = new([367]float64), new([367]float64)
	for d := 1; d <= 366; d++ {
		if count[d] > 0 {
			rain[d] = rainSum[d] / count[d]
			temp[d] = tempSum[d] / count[d]
		}
	}
	// Smooth over a ±7-day window to tame single-year noise.
	smooth := func(a *[367]float64) {
		var out [367]float64
		for d := 1; d <= 365; d++ {
			var s float64
			for k := -7; k <= 7; k++ {
				dd := d + k
				for dd < 1 {
					dd += 365
				}
				for dd > 365 {
					dd -= 365
				}
				s += a[dd]
			}
			out[d] = s / 15
		}
		out[366] = out[365]
		*a = out
	}
	smooth(rain)
	smooth(temp)
	return rain, temp
}

// nanToZero guards aggregates.
func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}
