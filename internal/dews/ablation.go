package dews

import (
	"fmt"
	"strings"

	"repro/internal/forecast"
)

// AblationResult is one fusion-variant row.
type AblationResult struct {
	Variant string
	Verif   forecast.Verification
}

// RunFusionAblation runs one simulation with issue recording and then
// re-scores fusion variants offline, answering the design questions
// DESIGN.md calls out: how much of the fused forecaster's skill comes
// from each evidence stream?
//
// Variants:
//
//	full          sensor + IK + CEP (the paper's method)
//	no-cep        sensor + IK logits only
//	no-ik         sensor + CEP only
//	no-sensor     IK + CEP only
//	sensor-only   the plain statistical baseline (reference)
func RunFusionAblation(cfg Config) ([]AblationResult, *Result, error) {
	cfg.RecordIssues = true
	system, err := NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := system.Run()
	if err != nil {
		return nil, nil, err
	}
	if len(res.Issues) == 0 {
		return nil, nil, fmt.Errorf("dews: ablation run produced no issues")
	}
	sensor := res.CalibratedSensor
	ikOnly := forecast.IKOnly{BaseRate: res.TrainBase}

	variants := []struct {
		name string
		fc   forecast.Forecaster
	}{
		{"full", forecast.Fused{Sensor: sensor, IK: ikOnly}},
		{"no-cep", forecast.Fused{Sensor: sensor, IK: ikOnly, WCEP: -1}},
		{"no-ik", forecast.Fused{Sensor: sensor, IK: ikOnly, WIK: -1}},
		{"no-sensor", forecast.Fused{Sensor: sensor, IK: ikOnly, WSensor: -1}},
		{"sensor-only", &sensor},
	}
	lead := cfg.LeadDays
	if lead == 0 {
		lead = 30
	}
	out := make([]AblationResult, 0, len(variants))
	for _, v := range variants {
		out = append(out, AblationResult{
			Variant: v.name,
			Verif:   Evaluate(v.name, v.fc, res.Issues, cfg.DecisionThreshold, lead),
		})
	}
	return out, res, nil
}

// FormatAblationTable renders the ablation rows.
func FormatAblationTable(rows []AblationResult) string {
	var sb strings.Builder
	sb.WriteString("fusion ablation (offline re-scoring of one simulation):\n")
	for _, r := range rows {
		sb.WriteString("  " + r.Verif.Row() + "\n")
	}
	return sb.String()
}
