package dews

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cep"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/dissemination"
	"repro/internal/eventlog"
	"repro/internal/forecast"
	"repro/internal/gateway"
	"repro/internal/graphlog"
	"repro/internal/ik"
	"repro/internal/ontology/drought"
	"repro/internal/ontology/ssn"
	"repro/internal/wsn"
)

// SensorRules is the sensor-derived CEP rule set of the DEWS: thresholds
// on the unified observed properties, plus the chained drought-warning
// pattern over emitted processes (the paper's process→event chain).
const SensorRules = `
RULE rainfall-deficit
WHEN avg(Rainfall) < 0.9 OVER 30d
COOLDOWN 14d
EMIT RainfallDeficit SEVERITY watch CONFIDENCE 0.8 SOURCE sensor

RULE soil-moisture-decline
WHEN avg(SoilMoisture) < 0.16 OVER 21d
COOLDOWN 14d
EMIT SoilMoistureDecline SEVERITY warning CONFIDENCE 0.8 SOURCE sensor

RULE heat-wave
WHEN min(AirTemperature) > 27 OVER 5d
COOLDOWN 10d
EMIT HeatWave SEVERITY watch CONFIDENCE 0.7 SOURCE sensor

RULE vegetation-stress
WHEN avg(NDVI) < 0.25 OVER 30d
COOLDOWN 21d
EMIT VegetationStress SEVERITY warning CONFIDENCE 0.75 SOURCE sensor

RULE drought-pattern
WHEN SEQ(RainfallDeficit, SoilMoistureDecline) WITHIN 60d
COOLDOWN 30d
EMIT DroughtWarning SEVERITY severe CONFIDENCE 0.85 SOURCE fusion
`

// Config configures a DEWS simulation run.
type Config struct {
	// Seed drives every random component.
	Seed int64
	// Districts to simulate (default: all five Free State districts).
	Districts []string
	// NodesPerDistrict sizes the WSN (default 4).
	NodesPerDistrict int
	// Years is the total simulated span (default 12).
	Years int
	// TrainYears is the climatology/calibration prefix (default 6).
	TrainYears int
	// LeadDays is the forecast horizon (default 30).
	LeadDays int
	// Informants per district (default 8).
	Informants int
	// IKReportRate is the informant attention rate (default 0.02).
	IKReportRate float64
	// LinkLossRate is the radio loss probability (default 0.15).
	LinkLossRate float64
	// DecisionThreshold converts probabilities to yes/no (default 0.5).
	DecisionThreshold float64
	// RecordIssues retains every verified (features, outcome) pair in the
	// Result so ablations can re-evaluate forecaster variants offline
	// without re-running the simulation.
	RecordIssues bool
	// FetchParallelism bounds concurrent per-source downloads in the
	// protocol layer (0 keeps the layer's default; 1 forces serial).
	FetchParallelism int
	// GatewayBuffer is the default per-client SSE queue capacity of the
	// subscription gateway (0 keeps the gateway's default).
	GatewayBuffer int
	// LogDir, when set, makes the broker durable: every published
	// message is written through to a segmented event log in this
	// directory, retained topics and the offset sequence are recovered
	// from it on startup, and SSE clients can resume by offset.
	LogDir string
	// LogSegmentBytes rotates log segments at this size (0 = eventlog
	// default, 8MiB).
	LogSegmentBytes int64
	// LogRetain drops sealed log segments once their newest write is
	// older than this (0 = keep forever).
	LogRetain time.Duration
	// GraphDir, when set, makes the semantic-web bulletin graph durable:
	// every bulletin's triples are committed through a graph write-ahead
	// log in this directory, periodically checkpointed into binary
	// snapshot files, and the graph is recovered (snapshot + WAL tail)
	// on startup.
	GraphDir string
	// GraphCheckpointInterval is how often the graph store considers
	// writing a snapshot and truncating its WAL (0 = graphlog default,
	// 15s; negative disables background checkpointing).
	GraphCheckpointInterval time.Duration
	// GraphCheckpointFraction triggers a checkpoint once the WAL tail
	// holds more than this fraction of the graph's triples (0 = graphlog
	// default, 0.25).
	GraphCheckpointFraction float64
}

func (c *Config) applyDefaults() {
	if len(c.Districts) == 0 {
		for _, d := range drought.Districts {
			c.Districts = append(c.Districts, strings.ToLower(d.LocalName()))
		}
	}
	if c.NodesPerDistrict == 0 {
		c.NodesPerDistrict = 4
	}
	if c.Years == 0 {
		c.Years = 12
	}
	if c.TrainYears == 0 {
		c.TrainYears = 6
	}
	if c.LeadDays == 0 {
		c.LeadDays = 30
	}
	if c.Informants == 0 {
		c.Informants = 8
	}
	if c.IKReportRate == 0 {
		c.IKReportRate = 0.02
	}
	if c.LinkLossRate == 0 {
		c.LinkLossRate = 0.15
	}
	if c.DecisionThreshold == 0 {
		c.DecisionThreshold = 0.5
	}
}

// Validate rejects nonsense configurations.
func (c Config) Validate() error {
	if c.TrainYears >= c.Years {
		return fmt.Errorf("dews: TrainYears %d must be below Years %d", c.TrainYears, c.Years)
	}
	if c.LeadDays < 1 {
		return fmt.Errorf("dews: LeadDays must be positive")
	}
	return nil
}

// districtState bundles one district's simulation machinery.
type districtState struct {
	name    string
	gen     *climate.Generator
	days    []climate.Day
	truth   *climate.Truth
	fleet   *wsn.Fleet
	cloud   *wsn.CloudStore
	gateway *wsn.Gateway
	reports []ik.Report
	// reportIdx advances through reports as days pass.
	reportIdx int
	builder   *featureBuilder
}

// Result is the outcome of a Run.
type Result struct {
	// Skill holds one verification per forecaster, aggregated across
	// districts over the evaluation period.
	Skill []forecast.Verification
	// Bulletins are the fused-forecaster products disseminated.
	Bulletins []forecast.Bulletin
	// Hub is the dissemination accounting.
	Hub dissemination.HubStats
	// Ingest totals.
	Fetched, Annotated, Failed, Inferences int
	// DroughtFraction is the mean ground-truth drought frequency over
	// the evaluation period.
	DroughtFraction float64
	// EvaluatedDays counts verified forecast issue days.
	EvaluatedDays int
	// Issues holds every verified forecast issue when
	// Config.RecordIssues is set (for offline ablation).
	Issues []Issue
	// TrainBase is the training-period drought base rate used for
	// calibration (exposed for ablations).
	TrainBase float64
	// CalibratedSensor is the trained sensor-only model (for building
	// fusion variants offline).
	CalibratedSensor forecast.SensorStat
}

// Issue is one verified forecast opportunity.
type Issue struct {
	District string
	Features forecast.Features
	// Observed is the ground truth at the verification lead.
	Observed bool
}

// SkillByName indexes the verifications.
func (r *Result) SkillByName(name string) (forecast.Verification, bool) {
	for _, v := range r.Skill {
		if v.Name == name {
			return v, true
		}
	}
	return forecast.Verification{}, false
}

// System is an assembled DEWS.
type System struct {
	cfg        Config
	middleware *core.Middleware
	hub        *dissemination.Hub
	billboard  *dissemination.SmartBillboard
	sms        *dissemination.SMSBroadcast
	radio      *dissemination.IPRadio
	web        *dissemination.SemanticWeb
	dviMap     *forecast.VulnerabilityMap
	districts  []*districtState
	// log is the durable event log under the broker (nil without
	// Config.LogDir); recovered counts the records replayed from a
	// previous run at startup.
	log       *eventlog.Log
	recovered int
	// store is the persistent triple store behind the semantic-web
	// channel (nil without Config.GraphDir).
	store *graphlog.Store

	// totalsMu guards the running ingest totals, which the gateway's
	// /stats endpoint reads while Run is (or was) accumulating them.
	totalsMu sync.Mutex
	totals   IngestTotals
}

// IngestTotals is the running pipeline accounting surfaced by the
// gateway's /stats endpoint (Result carries the same numbers once Run
// returns).
type IngestTotals struct {
	Fetched    int `json:"fetched"`
	Annotated  int `json:"annotated"`
	Failed     int `json:"failed"`
	Inferences int `json:"inferences"`
}

// NewSystem builds the full stack.
func NewSystem(cfg Config) (sys *System, err error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	onto, _, err := drought.BuildMaterialized()
	if err != nil {
		return nil, err
	}
	rules, err := cep.ParseRules(SensorRules)
	if err != nil {
		return nil, err
	}
	ikRules, err := ik.CompileRules(ik.Catalogue())
	if err != nil {
		return nil, err
	}
	mw, err := core.New(core.Config{
		Ontology: onto,
		Rules:    append(rules, ikRules...),
		// Graph materialization of every observation is too heavy for
		// multi-decade runs; inferences are graphed by the middleware when
		// enabled. Examples enable it on short runs.
		GraphObservations: false,
	})
	if err != nil {
		return nil, err
	}
	if cfg.FetchParallelism > 0 {
		mw.Protocol().SetParallelism(cfg.FetchParallelism)
	}
	// The simulation's own topic universe is small and closed (per
	// district: observations, IK indicators, events, one bulletin), but
	// -serve exposes /publish to the network; cap retained-topic
	// cardinality so remote publishers cannot grow broker memory
	// without bound. Together with the gateway's per-envelope payload
	// cap this bounds worst-case retained bytes.
	mw.Broker().SetRetainedLimit(8192)

	var elog *eventlog.Log
	recovered := 0
	if cfg.LogDir != "" {
		elog, err = eventlog.Open(eventlog.Config{
			Dir:          cfg.LogDir,
			SegmentBytes: cfg.LogSegmentBytes,
			RetainAge:    cfg.LogRetain,
		})
		if err != nil {
			return nil, err
		}
		// Any later constructor failure must release the log — its sync
		// and compaction goroutines would otherwise tick for the life of
		// the process.
		defer func() {
			if err != nil {
				err = errors.Join(err, elog.Close())
			}
		}()
		// The retained limit is already set, so recovery honors it.
		recovered, err = mw.Broker().AttachLog(elog)
		if err != nil {
			return nil, err
		}
	}

	var store *graphlog.Store
	web := dissemination.NewSemanticWeb()
	if cfg.GraphDir != "" {
		store, err = graphlog.Open(graphlog.Config{
			Dir:                cfg.GraphDir,
			CheckpointInterval: cfg.GraphCheckpointInterval,
			CheckpointFraction: cfg.GraphCheckpointFraction,
		})
		if err != nil {
			return nil, err
		}
		// Like the event log: a later constructor failure must release the
		// store, or its checkpoint goroutine outlives the failed build.
		defer func() {
			if err != nil {
				err = errors.Join(err, store.Close())
			}
		}()
		web = dissemination.NewPersistentSemanticWeb(store.Graph(), store.AddAll)
	}

	s := &System{
		cfg:        cfg,
		middleware: mw,
		log:        elog,
		recovered:  recovered,
		store:      store,
		hub:        dissemination.NewHub(),
		billboard:  dissemination.NewSmartBillboard(),
		sms:        dissemination.NewSMSBroadcast(),
		radio:      dissemination.NewIPRadio("st"),
		web:        web,
		dviMap:     forecast.NewVulnerabilityMap(),
	}
	if err := s.hub.Register(s.billboard, forecast.DVINormal); err != nil {
		return nil, err
	}
	if err := s.hub.Register(s.sms, forecast.DVIWarning); err != nil {
		return nil, err
	}
	if err := s.hub.Register(s.radio, forecast.DVIWatch); err != nil {
		return nil, err
	}
	if err := s.hub.Register(s.web, forecast.DVINormal); err != nil {
		return nil, err
	}

	for di, name := range cfg.Districts {
		seed := cfg.Seed + int64(di)*101
		gen, err := climate.NewGenerator(climate.DefaultParams(seed))
		if err != nil {
			return nil, err
		}
		cloud := wsn.NewCloudStore()
		link := wsn.NewLink(wsn.LinkConfig{
			LossRate: cfg.LinkLossRate, CorruptRate: 0.03, MaxRetries: 4, Seed: seed + 1,
		})
		gw := wsn.NewGateway(link, cloud)
		fleet, err := wsn.NewFleet(cfg.NodesPerDistrict, []string{name}, seed+2)
		if err != nil {
			return nil, err
		}
		for _, n := range fleet.Nodes {
			gw.Register(n)
		}
		if err := mw.Protocol().AddSource("cloud-"+name, cloud); err != nil {
			return nil, err
		}
		if err := s.sms.Subscribe(name, fmt.Sprintf("+27-51-%04d", di)); err != nil {
			return nil, err
		}
		s.districts = append(s.districts, &districtState{
			name: name, gen: gen, cloud: cloud, gateway: gw, fleet: fleet,
		})
	}
	return s, nil
}

// Middleware exposes the semantic middleware (for examples and tests).
func (s *System) Middleware() *core.Middleware { return s.middleware }

// Recovered returns how many durable records were replayed from a
// previous run's event log when the system was built (0 without LogDir).
func (s *System) Recovered() int { return s.recovered }

// Close releases the system's durable resources: it fsyncs and closes
// the event log and the graph store (a no-op for in-memory systems).
// Call it once the run — and any -serve period — is over.
func (s *System) Close() error {
	var first error
	if s.log != nil {
		first = s.log.Close()
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// GraphStore exposes the persistent triple store behind the
// semantic-web channel (nil without Config.GraphDir).
func (s *System) GraphStore() *graphlog.Store { return s.store }

// Web exposes the semantic-web channel (examples mount it over HTTP).
func (s *System) Web() *dissemination.SemanticWeb { return s.web }

// Billboard exposes the billboard channel.
func (s *System) Billboard() *dissemination.SmartBillboard { return s.billboard }

// DVIMap exposes the spatial drought-vulnerability-index distribution.
func (s *System) DVIMap() *forecast.VulnerabilityMap { return s.dviMap }

// IngestTotals returns the running pipeline accounting.
func (s *System) IngestTotals() IngestTotals {
	s.totalsMu.Lock()
	defer s.totalsMu.Unlock()
	return s.totals
}

// NewGateway builds the HTTP/SSE subscription gateway over the system's
// broker, with the DEWS ingest and dissemination totals wired into its
// /stats endpoint.
func (s *System) NewGateway() (*gateway.Gateway, error) {
	return gateway.New(gateway.Config{
		Broker:        s.middleware.Broker(),
		DefaultBuffer: s.cfg.GatewayBuffer,
		Extra: func() map[string]any {
			semweb := map[string]any{
				"bulletin_triples": s.web.TripleCount(),
			}
			if s.store != nil {
				semweb["store"] = s.store.Stats()
			}
			return map[string]any{
				"ingest":          s.IngestTotals(),
				"ik_out_of_order": s.middleware.IKOutOfOrder(),
				"dissemination":   s.hub.Stats(),
				"semweb":          semweb,
			}
		},
	})
}

// ServeMux mounts the gateway at the root alongside the semantic-web
// channel: gateway endpoints (/subscribe, /publish, /v1/queue, /stats,
// /healthz) plus the RDF channel under /semweb/ and at its legacy paths
// (/bulletins, /sparql, /health). The returned Gateway should be shut
// down when the server stops so SSE clients get a clean goodbye.
func (s *System) ServeMux() (*http.ServeMux, *gateway.Gateway, error) {
	gw, err := s.NewGateway()
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/semweb/", http.StripPrefix("/semweb", s.web))
	mux.Handle("/bulletins", s.web)
	mux.Handle("/sparql", s.web)
	mux.Handle("/health", s.web)
	return mux, gw, nil
}

// Run executes the full simulation and verification.
func (s *System) Run() (*Result, error) {
	cfg := s.cfg
	totalDays := 365 * cfg.Years
	trainDays := 365 * cfg.TrainYears

	// --- phase 1: simulate climate, ground truth and IK reports ---
	for _, d := range s.districts {
		d.days = d.gen.GenerateDays(totalDays)
		truth, err := climate.Label(d.days, 90)
		if err != nil {
			return nil, err
		}
		d.truth = truth
		pool, err := ik.NewInformantPool(cfg.Informants, cfg.Seed+int64(len(d.name)))
		if err != nil {
			return nil, err
		}
		reports, err := ik.GenerateReports(ik.GeneratorConfig{
			Pool: pool, District: d.name, ReportRate: cfg.IKReportRate,
			Seed: cfg.Seed + 7,
		}, d.days, truth)
		if err != nil {
			return nil, err
		}
		d.reports = reports
		// Score the training prefix so informant reliabilities are warm.
		var trainReports []ik.Report
		for _, r := range reports {
			if r.Time.Before(d.days[0].Date.AddDate(0, 0, trainDays)) {
				trainReports = append(trainReports, r)
			}
		}
		if _, err := ik.ScoreReports(trainReports, d.days, truth, s.middleware.IKTracker()); err != nil {
			return nil, err
		}
	}

	// --- phase 2: fit climatology and calibrate forecasters ---
	// (from the true series' training prefix: in deployment this is the
	// historical record).
	for _, d := range s.districts {
		rain := make([]float64, trainDays)
		temp := make([]float64, trainDays)
		for i := 0; i < trainDays; i++ {
			rain[i] = d.days[i].RainMM
			temp[i] = d.days[i].TempC
		}
		climRain, climTemp := fitClimatology(rain, temp, d.days[0].Date)
		d.builder = newFeatureBuilder(d.name, climRain, climTemp, s.middleware.IKTracker())
	}
	baseRate := 0.0
	for _, d := range s.districts {
		n, k := 0, 0
		for i := trainDays; i < totalDays; i++ {
			if i < len(d.truth.InDrought) {
				n++
				if d.truth.InDrought[i] {
					k++
				}
			}
		}
		if n > 0 {
			baseRate += float64(k) / float64(n)
		}
	}
	baseRate /= float64(len(s.districts))
	if baseRate <= 0 {
		baseRate = 0.1
	}
	trainBase := 0.0
	for _, d := range s.districts {
		k := 0
		for i := 0; i < trainDays; i++ {
			if d.truth.InDrought[i] {
				k++
			}
		}
		trainBase += float64(k) / float64(trainDays)
	}
	trainBase /= float64(len(s.districts))
	if trainBase <= 0.01 {
		trainBase = 0.1
	}

	sensor := forecast.SensorStat{Intercept: -1}
	ikOnly := forecast.IKOnly{BaseRate: trainBase}
	forecasters := []forecast.Forecaster{
		forecast.Climatology{BaseRate: trainBase},
		forecast.Persistence{},
		&sensor,
		ikOnly,
		forecast.Fused{Sensor: sensor, IK: ikOnly},
	}
	verifs := make([]forecast.Verification, len(forecasters))
	for i, fc := range forecasters {
		verifs[i] = forecast.Verification{Name: fc.Name(), LeadDays: cfg.LeadDays}
	}

	// --- phase 3: day-by-day through the real pipeline ---
	evSubs := make(map[string]*core.Subscription)
	for _, d := range s.districts {
		sub, err := s.middleware.Broker().Subscribe("event/"+d.name+"/#", 65536, core.DropOldest)
		if err != nil {
			return nil, err
		}
		evSubs[d.name] = sub
	}
	obsSub, err := s.middleware.Broker().Subscribe("obs/#", 1<<20, core.DropOldest)
	if err != nil {
		return nil, err
	}

	result := &Result{}
	var trainFeatures []forecast.Features
	droughtDaySum, droughtDayN := 0, 0

	for dayIdx := 0; dayIdx < totalDays; dayIdx++ {
		// 3a. sensors sample and upload.
		for _, d := range s.districts {
			day := d.days[dayIdx]
			for _, n := range d.fleet.Nodes {
				if rs := n.Sample(day); len(rs) > 0 {
					if err := d.gateway.Ingest(rs); err != nil {
						return nil, err
					}
				}
			}
		}
		// 3b. middleware ingests from every cloud. Ingest may salvage a
		// partial batch when a source fails, so account the cycle's work
		// before deciding the error is fatal.
		rep, err := s.middleware.Ingest(0)
		result.Fetched += rep.Fetched
		result.Annotated += rep.Annotated
		result.Failed += rep.Failed
		result.Inferences += rep.Inferences
		s.totalsMu.Lock()
		s.totals.Fetched += rep.Fetched
		s.totals.Annotated += rep.Annotated
		s.totals.Failed += rep.Failed
		s.totals.Inferences += rep.Inferences
		s.totalsMu.Unlock()
		if err != nil {
			return nil, err
		}

		// 3c. IK reports dated today enter the middleware.
		for _, d := range s.districts {
			today := d.days[dayIdx].Date
			var due []ik.Report
			for d.reportIdx < len(d.reports) && !d.reports[d.reportIdx].Time.After(today) {
				due = append(due, d.reports[d.reportIdx])
				d.reportIdx++
			}
			if len(due) > 0 {
				if _, err := s.middleware.PublishIKReports(due); err != nil {
					return nil, err
				}
				for _, r := range due {
					d.builder.addIKReport(r)
				}
			}
		}

		// 3d. feature builders consume today's published messages.
		s.consumeObservations(obsSub)
		for _, d := range s.districts {
			for _, msg := range evSubs[d.name].Poll(0) {
				if ev, ok := msg.Payload.(cep.Event); ok {
					d.builder.addCEPSignal(ev.Type, ev.Time, ev.Confidence)
				}
			}
		}

		// 3e. forecast issue + verification (evaluation period only;
		// verification needs truth at lead).
		verifyIdx := dayIdx + cfg.LeadDays
		for _, d := range s.districts {
			f := d.builder.features(d.days[dayIdx].Date)
			if dayIdx < trainDays {
				if dayIdx >= 120 { // skip cold-start window
					trainFeatures = append(trainFeatures, f)
				}
				continue
			}
			if dayIdx == trainDays {
				// Calibrate the sensor model once, entering evaluation.
				sensor.Calibrate(trainFeatures, trainBase)
				forecasters[2] = &sensor
				forecasters[4] = forecast.Fused{Sensor: sensor, IK: ikOnly}
			}
			if verifyIdx >= totalDays {
				continue
			}
			observed := d.truth.InDrought[verifyIdx]
			droughtDaySum += boolToInt(observed)
			droughtDayN++
			for i, fc := range forecasters {
				p := fc.Forecast(f)
				verifs[i].Brier.Add(p, observed)
				verifs[i].Contingency.Add(p >= cfg.DecisionThreshold, observed)
			}
			result.EvaluatedDays++
			if cfg.RecordIssues {
				result.Issues = append(result.Issues, Issue{
					District: d.name, Features: f, Observed: observed,
				})
			}

			// Fused bulletin dissemination (weekly cadence). Bulletins
			// also go out on the broker's bulletin topic, so gateway
			// subscribers (SSE dashboards, ack-queue SMS bridges) see the
			// same product as the in-process channels — and late
			// subscribers replay the latest bulletin per district from
			// the retained store.
			if dayIdx%7 == 0 {
				b := forecast.MakeBulletin(d.name, f, forecasters[4], cfg.LeadDays)
				if err := s.hub.Publish(b); err != nil {
					return nil, err
				}
				if _, err := s.middleware.Broker().Publish(core.Message{
					Topic:   core.TopicBulletin(d.name),
					Time:    b.Issued,
					Payload: b,
					Headers: map[string]string{"band": b.Band.String()},
				}); err != nil {
					return nil, err
				}
				if err := s.dviMap.Update(b); err != nil {
					return nil, err
				}
				result.Bulletins = append(result.Bulletins, b)
			}
		}
	}

	result.Skill = verifs
	result.Hub = s.hub.Stats()
	result.TrainBase = trainBase
	result.CalibratedSensor = sensor
	if droughtDayN > 0 {
		result.DroughtFraction = float64(droughtDaySum) / float64(droughtDayN)
	}
	return result, nil
}

// Evaluate re-scores any forecaster against recorded issues (requires
// Config.RecordIssues). This is how ablations compare fusion variants
// without re-simulating.
func Evaluate(name string, fc forecast.Forecaster, issues []Issue, threshold float64, leadDays int) forecast.Verification {
	if threshold == 0 {
		threshold = 0.5
	}
	v := forecast.Verification{Name: name, LeadDays: leadDays}
	for _, is := range issues {
		p := fc.Forecast(is.Features)
		v.Brier.Add(p, is.Observed)
		v.Contingency.Add(p >= threshold, is.Observed)
	}
	return v
}

// consumeObservations folds the day's observation messages into district
// daily means.
func (s *System) consumeObservations(sub *core.Subscription) {
	type agg struct {
		rainSum          float64
		rainN            int
		soilSum, ndviSum float64
		soilN, ndviN     int
		tempSum          float64
		tempN            int
	}
	perDistrict := make(map[string]*agg)
	for _, msg := range sub.Poll(0) {
		parts := strings.Split(msg.Topic, "/")
		if len(parts) != 3 {
			continue
		}
		district, prop := parts[1], parts[2]
		a, ok := perDistrict[district]
		if !ok {
			a = &agg{}
			perDistrict[district] = a
		}
		rec, ok := msg.Payload.(ssn.Record)
		if !ok {
			continue
		}
		switch prop {
		case "Rainfall":
			a.rainSum += rec.Value
			a.rainN++
		case "SoilMoisture":
			a.soilSum += rec.Value
			a.soilN++
		case "NDVI":
			a.ndviSum += rec.Value
			a.ndviN++
		case "AirTemperature":
			a.tempSum += rec.Value
			a.tempN++
		}
	}
	for _, d := range s.districts {
		a := perDistrict[d.name]
		if a == nil {
			d.builder.addDay(0, 0, 0, 0, false, false, false)
			continue
		}
		rain := 0.0
		if a.rainN > 0 {
			rain = nanToZero(a.rainSum / float64(a.rainN))
		}
		d.builder.addDay(rain,
			safeMean(a.soilSum, a.soilN), safeMean(a.ndviSum, a.ndviN), safeMean(a.tempSum, a.tempN),
			a.soilN > 0, a.ndviN > 0, a.tempN > 0)
	}
}

func safeMean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// FormatSkillTable renders the EXP-C1 table.
func FormatSkillTable(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "forecast skill @%dd lead, %d verified issues, base rate %.2f\n",
		skillLead(r), r.EvaluatedDays, r.DroughtFraction)
	for _, v := range r.Skill {
		sb.WriteString(v.Row())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func skillLead(r *Result) int {
	if len(r.Skill) > 0 {
		return r.Skill[0].LeadDays
	}
	return 0
}
