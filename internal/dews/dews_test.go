package dews

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ik"
)

// smallConfig keeps unit-test runs fast: one district, short span.
func smallConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Districts:        []string{"mangaung"},
		NodesPerDistrict: 3,
		Years:            6,
		TrainYears:       3,
		LeadDays:         30,
		Informants:       6,
		IKReportRate:     0.03,
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{Seed: 1}
	c.applyDefaults()
	if len(c.Districts) != 5 {
		t.Errorf("default districts = %v", c.Districts)
	}
	if c.Years == 0 || c.TrainYears == 0 || c.LeadDays == 0 {
		t.Error("defaults not applied")
	}
	bad := Config{Years: 3, TrainYears: 5, LeadDays: 30}
	if err := bad.Validate(); err == nil {
		t.Error("TrainYears >= Years should fail")
	}
	bad2 := Config{Years: 5, TrainYears: 2, LeadDays: 0}
	if err := bad2.Validate(); err == nil {
		t.Error("zero lead should fail")
	}
}

func TestNewSystem(t *testing.T) {
	s, err := NewSystem(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Middleware() == nil || s.Web() == nil || s.Billboard() == nil {
		t.Fatal("accessors nil")
	}
	if len(s.districts) != 1 {
		t.Fatalf("districts = %d", len(s.districts))
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run is slow")
	}
	s, err := NewSystem(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched == 0 || res.Annotated == 0 {
		t.Fatalf("pipeline moved no data: %+v", res)
	}
	annotRate := float64(res.Annotated) / float64(res.Fetched)
	if annotRate < 0.9 {
		t.Errorf("annotation rate %.2f too low", annotRate)
	}
	if res.EvaluatedDays == 0 {
		t.Fatal("no forecasts verified")
	}
	if len(res.Skill) != 5 {
		t.Fatalf("forecasters = %d", len(res.Skill))
	}
	names := map[string]bool{}
	for _, v := range res.Skill {
		names[v.Name] = true
		if v.Contingency.N() != res.EvaluatedDays {
			t.Errorf("%s verified %d of %d", v.Name, v.Contingency.N(), res.EvaluatedDays)
		}
	}
	for _, want := range []string{"climatology", "persistence", "sensor-only", "ik-only", "fused"} {
		if !names[want] {
			t.Errorf("missing forecaster %s", want)
		}
	}
	if len(res.Bulletins) == 0 {
		t.Error("no bulletins disseminated")
	}
	if res.Hub.Received == 0 || res.Hub.Delivered["billboard"] == 0 {
		t.Errorf("hub stats = %+v", res.Hub)
	}
	table := FormatSkillTable(res)
	if !strings.Contains(table, "fused") {
		t.Errorf("table = %s", table)
	}
	// Directional claim (paper §6): fusion should not be worse than the
	// best single source on Brier score by a meaningful margin.
	fused, _ := res.SkillByName("fused")
	sensorOnly, _ := res.SkillByName("sensor-only")
	ikOnly, _ := res.SkillByName("ik-only")
	best := sensorOnly.Brier.Score()
	if b := ikOnly.Brier.Score(); b < best {
		best = b
	}
	if fused.Brier.Score() > best*1.15 {
		t.Errorf("fused Brier %.4f clearly worse than best single-source %.4f\n%s",
			fused.Brier.Score(), best, table)
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := smallConfig(17)
	cfg.Years, cfg.TrainYears = 4, 2
	s1, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fetched != r2.Fetched || r1.Annotated != r2.Annotated ||
		r1.Inferences != r2.Inferences || r1.EvaluatedDays != r2.EvaluatedDays {
		t.Errorf("non-deterministic run: %+v vs %+v", r1, r2)
	}
	for i := range r1.Skill {
		if r1.Skill[i].Brier.Score() != r2.Skill[i].Brier.Score() {
			t.Errorf("forecaster %s Brier differs across identical runs", r1.Skill[i].Name)
		}
	}
}

func TestFeatureBuilder(t *testing.T) {
	var clim, tempC [367]float64
	for d := 1; d <= 366; d++ {
		clim[d] = 1.5
		tempC[d] = 20
	}
	fb := newFeatureBuilder("x", &clim, &tempC, ik.NewInformantTracker())
	date := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		fb.addDay(2.0, 0.3, 0.5, 22, true, true, true)
	}
	f := fb.features(date)
	if f.RainSum30 != 60 || f.RainSum90 != 180 {
		t.Errorf("rain sums = %v / %v", f.RainSum30, f.RainSum90)
	}
	if f.ClimRain30 != 45 || f.ClimRain90 != 135 {
		t.Errorf("clim sums = %v / %v", f.ClimRain30, f.ClimRain90)
	}
	if f.SoilMoisture != 0.3 || f.NDVI != 0.5 {
		t.Errorf("point features = %+v", f)
	}
	if f.TempAnomaly != 2 {
		t.Errorf("temp anomaly = %v", f.TempAnomaly)
	}
}

func TestFeatureBuilderIKWindows(t *testing.T) {
	var clim, tempC [367]float64
	fb := newFeatureBuilder("x", &clim, &tempC, ik.NewInformantTracker())
	date := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	// Two dry reports inside the 45d window, one stale beyond it.
	fb.addIKReport(ik.Report{Informant: "a", Indicator: "mutiga-flowering", Time: date.AddDate(0, 0, -10), Strength: 0.9})
	fb.addIKReport(ik.Report{Informant: "b", Indicator: "sifennefene-worms", Time: date.AddDate(0, 0, -20), Strength: 0.8})
	fb.addIKReport(ik.Report{Informant: "c", Indicator: "mutiga-flowering", Time: date.AddDate(0, 0, -90), Strength: 1})
	fb.addIKReport(ik.Report{Informant: "d", Indicator: "moon-halo", Time: date.AddDate(0, 0, -5), Strength: 0.7})
	f := fb.features(date)
	if f.IKDryConsensus <= 0 {
		t.Error("dry consensus missing")
	}
	if f.IKWetConsensus <= 0 {
		t.Error("wet consensus missing")
	}
	// Stale report evicted: asking again sees only live ones.
	if len(fb.ikReports) != 3 {
		t.Errorf("live reports = %d, want 3", len(fb.ikReports))
	}
}

func TestFeatureBuilderCEPWindow(t *testing.T) {
	var clim, tempC [367]float64
	fb := newFeatureBuilder("x", &clim, &tempC, ik.NewInformantTracker())
	date := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	fb.addCEPSignal("RainfallDeficit", date.AddDate(0, 0, -5), 0.8)
	fb.addCEPSignal("IKDroughtWarning", date.AddDate(0, 0, -10), 0.6)
	fb.addCEPSignal("RainfallDeficit", date.AddDate(0, 0, -60), 0.9) // stale
	fb.addCEPSignal("NotADroughtSignal", date, 1.0)                  // ignored type
	f := fb.features(date)
	if f.CEPDrySignals != 2 {
		t.Errorf("CEP signals = %d, want 2", f.CEPDrySignals)
	}
	if f.CEPConfidence < 0.69 || f.CEPConfidence > 0.71 {
		t.Errorf("CEP confidence = %v, want 0.7", f.CEPConfidence)
	}
}

func TestClimSumWrapsYear(t *testing.T) {
	var clim [367]float64
	for d := 1; d <= 366; d++ {
		clim[d] = 1
	}
	if got := climSum(&clim, 10, 30); got != 30 {
		t.Errorf("wrap sum = %v", got)
	}
}

func TestFitClimatology(t *testing.T) {
	start := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	days := 365 * 3
	rain := make([]float64, days)
	temp := make([]float64, days)
	for i := range rain {
		rain[i] = 2
		temp[i] = 18
	}
	cr, ct := fitClimatology(rain, temp, start)
	for d := 1; d <= 365; d++ {
		if cr[d] < 1.9 || cr[d] > 2.1 {
			t.Fatalf("clim rain[%d] = %v", d, cr[d])
		}
		if ct[d] < 17.9 || ct[d] > 18.1 {
			t.Fatalf("clim temp[%d] = %v", d, ct[d])
		}
	}
}

func TestSensorRulesParse(t *testing.T) {
	s, err := NewSystem(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// The middleware accepted the combined rule set; sanity-check the CEP
	// shard compiles per district.
	if _, err := s.Middleware().Segment().CEPEngine("mangaung"); err != nil {
		t.Fatal(err)
	}
}

// TestDurableLogAcrossSystems wires Config.LogDir end to end: a run's
// published messages survive into a second system built over the same
// directory, which recovers retained topics and continues the offset
// sequence.
func TestDurableLogAcrossSystems(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig(7)
	cfg.Years = 2
	cfg.TrainYears = 1
	cfg.LogDir = dir

	first, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Recovered() != 0 {
		t.Fatalf("fresh system recovered %d records", first.Recovered())
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	published := first.Middleware().Broker().Stats().Published
	if published == 0 {
		t.Fatal("run published nothing")
	}
	nextOffset := first.Middleware().Broker().NextOffset()
	bulletin, ok := first.Middleware().Broker().Retained("bulletin/mangaung")
	if !ok {
		t.Fatal("no retained bulletin after run")
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := second.Recovered(); got != published {
		t.Fatalf("second system recovered %d records, want %d", got, published)
	}
	if got := second.Middleware().Broker().NextOffset(); got != nextOffset {
		t.Fatalf("offset sequence broke across restart: %d, want %d", got, nextOffset)
	}
	got, ok := second.Middleware().Broker().Retained("bulletin/mangaung")
	if !ok {
		t.Fatal("retained bulletin lost across restart")
	}
	if got.Offset != bulletin.Offset || !got.Time.Equal(bulletin.Time) {
		t.Fatalf("recovered bulletin %+v, want offset %d time %v", got, bulletin.Offset, bulletin.Time)
	}
}

// TestPersistentSemanticWeb runs a short simulation with a durable
// graph, restarts the system on the same directory, and checks the
// bulletin graph is recovered — and that new bulletins mint IRIs past
// the recovered sequence instead of overwriting persisted ones.
func TestPersistentSemanticWeb(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run is slow")
	}
	dir := t.TempDir()
	cfg := smallConfig(11)
	cfg.Years = 4
	cfg.TrainYears = 2
	cfg.GraphDir = dir
	cfg.GraphCheckpointInterval = -1 // recovery must work from WAL alone

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.GraphStore() == nil {
		t.Fatal("GraphDir set but no store")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bulletins) == 0 {
		t.Fatal("run produced no bulletins")
	}
	firstTriples := sys.Web().TripleCount()
	if firstTriples == 0 {
		t.Fatal("semantic-web graph is empty after the run")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if got := sys2.Web().TripleCount(); got != firstTriples {
		t.Fatalf("recovered %d triples, want %d", got, firstTriples)
	}
	st := sys2.GraphStore().Stats()
	if st.Triples != firstTriples {
		t.Fatalf("store stats report %d triples, want %d", st.Triples, firstTriples)
	}
	// A delivery after recovery must extend the graph (fresh sequence
	// number), not silently rewrite an existing bulletin node.
	if err := sys2.Web().Deliver(res.Bulletins[0]); err != nil {
		t.Fatal(err)
	}
	if got := sys2.Web().TripleCount(); got <= firstTriples {
		t.Fatalf("post-recovery delivery did not extend the graph (%d -> %d)", firstTriples, got)
	}
}
