package dews

// Golden-schema regression for the full /stats document. Operators,
// dashboards, tools/benchguard and cmd/dewsload all key on these
// exact section and counter names; a silent rename or type change
// breaks them long after the code change that caused it. The schema
// below is the contract: every leaf must exist with the right JSON
// kind, and no undocumented key may appear — drift fails in CI either
// way, forcing the schema (and the consumers) to be updated in the
// same PR that changes the shape.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
)

// kind is the JSON type a schema leaf requires.
type kind int

const (
	kNum kind = iota
	kBool
	kObj // object with unchecked contents (free-form maps)
)

// node is either a leaf (checked kind) or an interior object with an
// exact key set.
type node struct {
	leaf     bool
	kind     kind
	children map[string]node
}

func leaf(k kind) node            { return node{leaf: true, kind: k} }
func obj(ch map[string]node) node { return node{children: ch} }

// statsSchema is the documented /stats shape for a durable system
// (LogDir + GraphDir set): sections broker, gateway, eventlog, extra
// (ingest, dissemination, semweb incl. the persistent store).
var statsSchema = obj(map[string]node{
	"broker": obj(map[string]node{
		"published":        leaf(kNum),
		"deliveries":       leaf(kNum),
		"drops":            leaf(kNum),
		"subscriptions":    leaf(kNum),
		"dispatch_workers": leaf(kNum),
	}),
	"gateway": obj(map[string]node{
		"sse_clients":       leaf(kNum),
		"sse_streams_total": leaf(kNum),
		"sse_resumed_total": leaf(kNum),
		"sse_events_sent":   leaf(kNum),
		"slow_disconnects":  leaf(kNum),
		"published":         leaf(kNum),
		"publish_batches":   leaf(kNum),
		"publish_synced":    leaf(kNum),
		"queues":            leaf(kNum),
		"goodbyes": obj(map[string]node{
			"shutdown":      leaf(kNum),
			"slow_consumer": leaf(kNum),
			"replay_failed": leaf(kNum),
		}),
	}),
	"eventlog": obj(map[string]node{
		"segments":           leaf(kNum),
		"bytes":              leaf(kNum),
		"oldest_offset":      leaf(kNum),
		"next_offset":        leaf(kNum),
		"appended":           leaf(kNum),
		"fsyncs":             leaf(kNum),
		"fsync_failures":     leaf(kNum),
		"last_fsync_micros":  leaf(kNum),
		"fsync_ewma_micros":  leaf(kNum),
		"seal_failures":      leaf(kNum),
		"compacted_segments": leaf(kNum),
	}),
	"extra": obj(map[string]node{
		"ingest": obj(map[string]node{
			"fetched":    leaf(kNum),
			"annotated":  leaf(kNum),
			"failed":     leaf(kNum),
			"inferences": leaf(kNum),
		}),
		"ik_out_of_order": leaf(kNum),
		"dissemination": obj(map[string]node{
			"Received":  leaf(kNum),
			"Delivered": leaf(kObj),
			"Filtered":  leaf(kObj),
			"Errors":    leaf(kObj),
		}),
		"semweb": obj(map[string]node{
			"bulletin_triples": leaf(kNum),
			"store": obj(map[string]node{
				"triples":                  leaf(kNum),
				"dict_terms":               leaf(kNum),
				"base_run":                 leaf(kNum),
				"mid_run":                  leaf(kNum),
				"delta_run":                leaf(kNum),
				"snapshot_offset":          leaf(kNum),
				"wal_tail_records":         leaf(kNum),
				"wal_tail_triples":         leaf(kNum),
				"wal_segments":             leaf(kNum),
				"wal_bytes":                leaf(kNum),
				"appended":                 leaf(kNum),
				"checkpoints":              leaf(kNum),
				"checkpoint_failures":      leaf(kNum),
				"last_checkpoint_age_secs": leaf(kNum),
				"last_checkpoint_micros":   leaf(kNum),
				"snapshot_loaded":          leaf(kBool),
				"replayed_records":         leaf(kNum),
				"replayed_triples":         leaf(kNum),
				"snapshots_skipped":        leaf(kNum),
			}),
		}),
	}),
})

// checkNode walks value against schema, reporting every violation.
func checkNode(path string, schema node, value any, report func(string)) {
	if schema.leaf {
		switch schema.kind {
		case kNum:
			if _, ok := value.(float64); !ok {
				report(fmt.Sprintf("%s: want number, got %T", path, value))
			}
		case kBool:
			if _, ok := value.(bool); !ok {
				report(fmt.Sprintf("%s: want bool, got %T", path, value))
			}
		case kObj:
			if _, ok := value.(map[string]any); !ok {
				report(fmt.Sprintf("%s: want object, got %T", path, value))
			}
		}
		return
	}
	m, ok := value.(map[string]any)
	if !ok {
		report(fmt.Sprintf("%s: want object, got %T", path, value))
		return
	}
	var keys []string
	for k := range schema.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		child, present := m[k]
		if !present {
			report(fmt.Sprintf("%s.%s: missing", path, k))
			continue
		}
		checkNode(path+"."+k, schema.children[k], child, report)
	}
	for k := range m {
		if _, documented := schema.children[k]; !documented {
			report(fmt.Sprintf("%s.%s: undocumented key (add it to statsSchema and the docs, or remove it)", path, k))
		}
	}
}

func TestStatsGoldenSchema(t *testing.T) {
	cfg := smallConfig(5)
	cfg.LogDir = t.TempDir()
	cfg.GraphDir = t.TempDir()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	mux, gw, err := sys.ServeMux()
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	checkNode("stats", statsSchema, doc, func(msg string) { t.Error(msg) })
}
