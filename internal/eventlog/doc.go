// Package eventlog is an append-only, segment-file event log: the
// durability substrate under the application abstraction layer's broker.
// Every record is framed with a length and a CRC so a torn tail (crash
// mid-write) is detected and truncated on reopen; records are grouped
// into size-rotated segment files named by their base offset; fsyncs are
// batched on a timer so appends never wait on the disk; and a compaction
// goroutine drops whole expired segments (by age or total bytes) without
// blocking appends. Offsets are assigned densely from 1 and never reused,
// so they double as resume cursors for streaming consumers (the gateway's
// SSE Last-Event-ID rides on them).
//
// The record body format is versioned per segment (see codec.go): new
// segments use the compact binary v2 codec — encoded into a pooled
// buffer, decoded without reflection — while headerless v1 (JSON-era)
// segments remain fully readable, so a log directory written by an
// older release opens, replays and compacts unchanged.
package eventlog
