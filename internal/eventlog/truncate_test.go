package eventlog

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func appendSeq(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(Record{
			Topic:   "graph",
			Time:    time.Unix(1700000000+int64(i), 0).UTC(),
			Payload: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRotateSealsActiveSegment(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Rotating an empty log is a no-op.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("segments after empty rotate = %d, want 1", got)
	}

	appendSeq(t, l, 10)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 2 {
		t.Fatalf("segments after rotate = %d, want 2", st.Segments)
	}
	// Appends continue in the fresh segment with a contiguous offset.
	appendSeq(t, l, 5)
	if st := l.Stats(); st.NextOffset != 16 {
		t.Fatalf("NextOffset = %d, want 16", st.NextOffset)
	}
	// Every record stays readable across the rotation boundary.
	recs, _, err := l.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 15 {
		t.Fatalf("read %d records, want 15", len(recs))
	}
}

func TestTruncateBeforeDropsOnlyCoveredSealedSegments(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Three sealed segments of 10 records each plus an active tail.
	for i := 0; i < 3; i++ {
		appendSeq(t, l, 10)
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	appendSeq(t, l, 3)

	// Offset inside the second segment: only the first is fully covered.
	removed, err := l.TruncateBefore(15)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if got := l.OldestOffset(); got != 11 {
		t.Fatalf("OldestOffset = %d, want 11", got)
	}

	// Everything below the tail: both remaining sealed segments go, the
	// active segment survives even though it is fully covered too.
	removed, err = l.TruncateBefore(1 << 60)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	st := l.Stats()
	if st.Segments != 1 {
		t.Fatalf("segments = %d, want 1 (active)", st.Segments)
	}
	if st.OldestOffset != 31 {
		t.Fatalf("OldestOffset = %d, want 31", st.OldestOffset)
	}

	// Surviving records replay, and the log reopens cleanly after the
	// truncation (offset-contiguous segment set).
	recs, _, err := l.Read(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Offset != 31 {
		t.Fatalf("read %d records starting at %d, want 3 from 31", len(recs), recs[0].Offset)
	}
	dir := l.cfg.Dir
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != 34 {
		t.Fatalf("NextOffset after reopen = %d, want 34", got)
	}
}
