package eventlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Defaults for Config zero values.
const (
	defaultSegmentBytes    = 8 << 20
	defaultFsyncInterval   = 25 * time.Millisecond
	defaultCompactInterval = 30 * time.Second
	// maxRecordBytes bounds one framed record. The gateway already caps
	// payloads at 64KiB; this is a corruption guard, not a policy knob —
	// a frame header claiming more than this is treated as garbage.
	maxRecordBytes = 16 << 20
	// frameHeader is the per-record overhead: uint32 body length +
	// uint32 CRC of the body.
	frameHeader = 8
	segSuffix   = ".seg"
	// writeBufBytes sizes the append buffer in front of the active
	// segment: appends cost a memcpy, and the buffer drains to the OS on
	// the fsync tick or whenever a reader snapshots the log.
	writeBufBytes = 64 << 10
	// encBufMax caps the retained encode buffer; a one-off huge record
	// must not pin its footprint forever.
	encBufMax = 1 << 20
)

// castagnoli is the CRC polynomial used for record framing (same choice
// as Kafka and most storage systems: better error detection than IEEE
// and hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one durable event. Payload is raw JSON — the log stores the
// wire form, not Go types, so a replayed payload decodes to generic
// values exactly like a message published through the gateway. The JSON
// tags are the v1 on-disk body format; v2 segments store the same fields
// in the compact binary layout described in codec.go.
type Record struct {
	// Offset is the log-assigned dense sequence number (first record is
	// offset 1). On Append the field is ignored and assigned.
	Offset uint64 `json:"offset"`
	// Topic is the '/'-separated subject.
	Topic string `json:"topic"`
	// Time is the event time of the payload.
	Time time.Time `json:"time"`
	// Payload is the body as raw JSON.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Headers carries string metadata.
	Headers map[string]string `json:"headers,omitempty"`
}

// Config configures a Log.
type Config struct {
	// Dir is the segment directory (required; created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 8MiB).
	SegmentBytes int64
	// RetainAge drops sealed segments whose newest write is older than
	// this. Age is measured from wall-clock write time, not record event
	// time (the simulation publishes historical event times). 0 keeps
	// segments forever.
	RetainAge time.Duration
	// RetainBytes drops the oldest sealed segments while the log's total
	// size exceeds this. 0 means unlimited. The active segment is never
	// dropped.
	RetainBytes int64
	// FsyncInterval is the batched-fsync cadence (default 25ms). Appends
	// only buffer-write; the sync loop flushes dirty segments on this
	// timer, so one fsync amortizes over every append in the window.
	FsyncInterval time.Duration
	// CompactInterval is the retention sweep cadence (default 30s).
	CompactInterval time.Duration
}

func (c *Config) applyDefaults() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = defaultSegmentBytes
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = defaultFsyncInterval
	}
	if c.CompactInterval <= 0 {
		c.CompactInterval = defaultCompactInterval
	}
}

// Stats is a point-in-time summary, surfaced by the gateway's /stats.
type Stats struct {
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// OldestOffset is the first offset still readable (compaction moves
	// it forward); NextOffset is the offset the next append will get.
	// OldestOffset == NextOffset means the log is empty.
	OldestOffset uint64 `json:"oldest_offset"`
	NextOffset   uint64 `json:"next_offset"`
	// Appended counts records written by this process.
	Appended uint64 `json:"appended"`
	// Fsyncs counts batched syncs; the latency fields expose the cost of
	// the last one and an exponential moving average. FsyncFailures is
	// non-zero when the disk refused a flush — the affected appends stay
	// buffer-only until a retry succeeds.
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncFailures   uint64  `json:"fsync_failures"`
	LastFsyncMicros int64   `json:"last_fsync_micros"`
	FsyncEWMAMicros float64 `json:"fsync_ewma_micros"`
	// SealFailures counts segment rotations that failed and were left
	// for a later append to retry (the active segment keeps growing in
	// the meantime; no data is lost).
	SealFailures     uint64 `json:"seal_failures"`
	CompactedDropped uint64 `json:"compacted_segments"`
}

// segment is one on-disk file holding records [base, base+count).
type segment struct {
	base  uint64
	path  string
	bytes int64
	count int
	// version is the record body format (segVersionV1 JSON, segVersionV2
	// binary); new segments are always v2.
	version uint8
	// sealedAt is when the segment stopped being active (zero while
	// active); retention-by-age measures from it.
	sealedAt time.Time
}

func (s *segment) end() uint64 { return s.base + uint64(s.count) }

// Log is a durable, offset-addressed record log over segment files. All
// methods are safe for concurrent use; reads never block appends beyond
// a brief snapshot of the segment list.
type Log struct {
	cfg Config

	mu       sync.Mutex
	segments []*segment
	active   *os.File
	// w buffers appends to the active segment; it is flushed before any
	// reader snapshot and before every fsync, so readers and durability
	// always see a complete-frame prefix.
	w      *bufio.Writer
	dirty  bool
	closed bool
	// compactMu serializes retention sweeps so two concurrent Compacts
	// cannot pick overlapping drop sets.
	compactMu sync.Mutex

	appended      uint64
	fsyncs        uint64
	fsyncFailures uint64
	sealFailures  uint64
	lastFsync     time.Duration
	fsyncEWMA     float64
	compacted     uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (or creates) the log in cfg.Dir, recovering from a torn
// tail by truncating the last segment to its final complete record, and
// starts the fsync and compaction loops.
func Open(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, errors.New("eventlog: config needs a directory")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	l := &Log{cfg: cfg, stop: make(chan struct{})}
	if err := l.load(); err != nil {
		return nil, err
	}
	l.wg.Add(2)
	go l.syncLoop()
	go l.compactLoop()
	return l, nil
}

// load scans the directory, validates every segment, truncates a torn
// tail on the last one, and opens the active segment for append. A log
// written by a v1 (JSON codec) release migrates transparently: its
// sealed segments stay v1 and readable, and its tail is either sealed
// (when it holds records) or rewritten in place (when empty) so appends
// always land in a v2 segment.
func (l *Log) load() error {
	names, err := filepath.Glob(filepath.Join(l.cfg.Dir, "*"+segSuffix))
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		baseStr := strings.TrimSuffix(filepath.Base(path), segSuffix)
		base, err := strconv.ParseUint(baseStr, 10, 64)
		if err != nil {
			return fmt.Errorf("eventlog: segment %s: bad name", path)
		}
		l.segments = append(l.segments, &segment{base: base, path: path})
	}
	if len(l.segments) == 0 {
		return l.startSegment(1)
	}
	for i, seg := range l.segments {
		last := i == len(l.segments)-1
		version, count, good, err := scanSegment(seg.path, last)
		if err != nil {
			return err
		}
		seg.version = version
		seg.count = count
		seg.bytes = good
		if info, err := os.Stat(seg.path); err == nil {
			seg.sealedAt = info.ModTime()
		}
		if i > 0 && l.segments[i-1].end() != seg.base {
			return fmt.Errorf("eventlog: offset gap between segments %s and %s",
				l.segments[i-1].path, seg.path)
		}
	}
	tail := l.segments[len(l.segments)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	// Truncate the torn tail (no-op when the segment is clean).
	if err := f.Truncate(tail.bytes); err != nil {
		return errors.Join(fmt.Errorf("eventlog: truncating torn tail of %s: %w", tail.path, err), f.Close())
	}
	if tail.version != segVersionV2 {
		if tail.count > 0 {
			// A v1 tail with records: leave it sealed as-is and start a
			// fresh v2 segment for new appends — formats never mix
			// within one file.
			if err := f.Close(); err != nil {
				return fmt.Errorf("eventlog: %w", err)
			}
			return l.startSegment(tail.end())
		}
		// An empty (or headerless torn) tail holds nothing to preserve:
		// rewrite it in place as a v2 segment.
		if _, err := f.Write(segMagicV2[:]); err != nil {
			return errors.Join(fmt.Errorf("eventlog: writing v2 header to %s: %w", tail.path, err), f.Close())
		}
		tail.version = segVersionV2
		tail.bytes = segHeaderLen
		l.dirty = true
	} else if _, err := f.Seek(tail.bytes, io.SeekStart); err != nil {
		return errors.Join(fmt.Errorf("eventlog: %w", err), f.Close())
	}
	tail.sealedAt = time.Time{}
	l.active = f
	l.w = bufio.NewWriterSize(f, writeBufBytes)
	return nil
}

// scanSegment sniffs a segment's format version and walks its frames,
// returning the version, record count and byte length of the valid
// prefix. A corrupt or incomplete frame is a truncation point when tail
// is set (crash recovery keeps every complete record) and a hard error
// otherwise: torn writes only ever happen at the end of the last
// segment. Only frame integrity (length + CRC) is checked here — record
// bodies are not decoded, so recovery cost is a sequential read.
func scanSegment(path string, tail bool) (uint8, int, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close() //dewsvet:wralerr-ok read-only handle; a close error cannot lose data
	r := bufio.NewReaderSize(f, 64<<10)
	var (
		version = uint8(segVersionV1)
		count   int
		good    int64
		header  [frameHeader]byte
		body    []byte
	)
	if head, err := r.Peek(segHeaderLen); err != nil {
		// Fewer than 8 bytes total: an empty file is a valid (v1-era or
		// just-created) empty segment; a 1..7-byte file is torn.
		if len(head) == 0 {
			return segVersionV1, 0, 0, nil
		}
		if !tail {
			return 0, 0, 0, fmt.Errorf("eventlog: segment %s corrupt at byte 0", path)
		}
		return segVersionV1, 0, 0, nil
	} else if bytes.Equal(head, segMagicV2[:]) {
		version = segVersionV2
		if _, err := r.Discard(segHeaderLen); err != nil {
			return 0, 0, 0, fmt.Errorf("eventlog: %w", err)
		}
		good = segHeaderLen
	}
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return version, count, good, nil
			}
			break // torn header
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordBytes {
			break // garbage length
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			break // torn body
		}
		if crc32.Checksum(body, castagnoli) != crc {
			break // corrupt body
		}
		count++
		good += frameHeader + int64(n)
	}
	if !tail {
		return 0, 0, 0, fmt.Errorf("eventlog: segment %s corrupt at byte %d", path, good)
	}
	return version, count, good, nil
}

// startSegment creates and activates an empty v2 segment whose first
// record will be base, writing the format header through the append
// buffer. Caller holds l.mu (or is single-threaded in load).
func (l *Log) startSegment(base uint64) error {
	path := filepath.Join(l.cfg.Dir, fmt.Sprintf("%020d%s", base, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644) //dewsvet:lockhold-ok cold path: segment creation happens at open and on rotation, not per append
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	l.segments = append(l.segments, &segment{base: base, path: path, version: segVersionV2, bytes: segHeaderLen})
	l.active = f
	if l.w == nil {
		l.w = bufio.NewWriterSize(f, writeBufBytes)
	} else {
		l.w.Reset(f)
	}
	if _, err := l.w.Write(segMagicV2[:]); err != nil { //dewsvet:lockhold-ok header write lands in the fresh append buffer
		return fmt.Errorf("eventlog: %w", err)
	}
	l.dirty = true
	return nil
}

// flushLocked drains the append buffer to the OS. Caller holds l.mu. A
// failed flush re-marks the log dirty so the sync loop retries.
func (l *Log) flushLocked() error {
	if l.w == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil { //dewsvet:lockhold-ok the sequencer's buffered-writer handoff: draining to the OS under l.mu is the design
		l.dirty = true
		return fmt.Errorf("eventlog: flushing append buffer: %w", err)
	}
	return nil
}

// sealActive flushes, fsyncs and closes the active segment and swaps in
// a fresh one. The replacement file is created *first*: any failure
// before the swap leaves the current segment active and untouched (it
// simply keeps growing past SegmentBytes and rotation retries on the
// next append), so a transient disk error can never wedge the log or
// lose an already-written record. Caller holds l.mu.
//
//dewsvet:lockhold-ok rotation must swap files atomically under the sequencer lock; it amortizes over SegmentBytes of appends
func (l *Log) sealActive() error {
	tail := l.segments[len(l.segments)-1]
	path := filepath.Join(l.cfg.Dir, fmt.Sprintf("%020d%s", tail.end(), segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	abort := func(err error) error {
		// Best-effort cleanup of the never-written replacement file;
		// the caller's error is the one that matters.
		_ = f.Close()
		_ = os.Remove(path)
		return err
	}
	if err := l.flushLocked(); err != nil {
		return abort(err)
	}
	if err := l.active.Sync(); err != nil {
		return abort(fmt.Errorf("eventlog: %w", err))
	}
	// A Close failure after a successful sync cannot lose data; swap to
	// the new segment regardless so appends continue.
	closeErr := l.active.Close()
	tail.sealedAt = time.Now()
	l.dirty = false
	l.segments = append(l.segments, &segment{base: tail.end(), path: path, version: segVersionV2, bytes: segHeaderLen})
	l.active = f
	l.w.Reset(f)
	if _, err := l.w.Write(segMagicV2[:]); err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	l.dirty = true
	if closeErr != nil {
		return fmt.Errorf("eventlog: closing sealed segment: %w", closeErr)
	}
	return nil
}

// encPool recycles frame-encode buffers. Record bodies are encoded
// outside the log lock (concurrent appenders encode in parallel into
// pooled buffers), so the lock's critical section is only the
// sequencing itself: patch the offset, checksum, and hand the frame to
// the buffered writer.
var encPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

// putEnc returns an encode buffer to the pool unless a huge record blew
// it past the retention cap — a one-off 20 MiB record must not pin
// 20 MiB forever.
func putEnc(bp *[]byte, buf []byte) {
	if cap(buf) <= encBufMax {
		*bp = buf[:0]
		encPool.Put(bp)
	}
}

// encodeFrame appends one [header][body] frame for rec to buf. The
// header and the body's offset field are zero placeholders, patched by
// patchFrame once the sequencer assigns the offset. Errors only on an
// oversized record.
func encodeFrame(buf []byte, rec *Record) ([]byte, error) {
	start := len(buf)
	var zero [frameHeader]byte
	buf = append(buf, zero[:]...)
	buf = appendRecordV2(buf, rec)
	if body := len(buf) - start - frameHeader; body > maxRecordBytes {
		return buf, fmt.Errorf("eventlog: record of %d bytes exceeds limit %d", body, maxRecordBytes)
	}
	return buf, nil
}

// patchFrame stamps the assigned offset into a pre-encoded frame and
// completes its header (length + CRC over the patched body). The offset
// occupies the first 8 body bytes (see codec.go), so sequencing a
// record costs three fixed-size writes and one checksum — this is the
// entire per-record cost inside the append lock.
func patchFrame(frame []byte, off uint64) {
	body := frame[frameHeader:]
	binary.LittleEndian.PutUint64(body[0:8], off)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
}

// appendFrameLocked sequences one pre-encoded frame: assigns the tail
// offset, patches it in, writes through the buffered writer, and
// rotates the segment when it exceeds SegmentBytes. Caller holds l.mu.
func (l *Log) appendFrameLocked(frame []byte) (uint64, error) {
	tail := l.segments[len(l.segments)-1]
	off := tail.end()
	patchFrame(frame, off)
	if _, err := l.w.Write(frame); err != nil { //dewsvet:lockhold-ok the sequencer's buffered-writer handoff: a memcpy into the append buffer, spilling only when full
		return 0, fmt.Errorf("eventlog: %w", err)
	}
	tail.count++
	tail.bytes += int64(len(frame))
	l.appended++
	l.dirty = true
	if tail.bytes >= l.cfg.SegmentBytes {
		// The record is already written and counted, so a rotation
		// failure must not fail the append — a caller (the broker)
		// treats an Append error as "record did not happen" and would
		// desync its offset sequence from the log. sealActive leaves the
		// current segment active and consistent on failure; rotation
		// retries on the next append, and the failure is visible in
		// Stats.
		if err := l.sealActive(); err != nil {
			l.sealFailures++
		}
	}
	return off, nil
}

// Append encodes the record with the v2 binary codec into a pooled
// buffer outside the lock, then takes the lock only to sequence it:
// assign the next offset, patch it into the frame, and hand the bytes
// to the buffered active segment. Concurrent appenders therefore
// serialize on the offset assignment and buffer write, not on payload
// encoding; WAL order equals offset order by construction. Durability
// arrives with the next batched fsync (or Sync/Close).
//
//dewsvet:hotpath
func (l *Log) Append(rec Record) (uint64, error) {
	bp := encPool.Get().(*[]byte)
	buf, err := encodeFrame((*bp)[:0], &rec)
	if err != nil {
		putEnc(bp, buf)
		return 0, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		putEnc(bp, buf)
		return 0, errors.New("eventlog: log is closed")
	}
	off, err := l.appendFrameLocked(buf)
	l.mu.Unlock()
	putEnc(bp, buf)
	return off, err
}

// AppendBatch appends recs as one contiguous offset run: every record
// is encoded outside the lock, then the lock is taken once to sequence
// and write all of them back to back. It returns the first assigned
// offset and how many records were appended; on error the first n
// records are durably appended (offsets first..first+n-1) and the rest
// were not. An empty batch returns (0, 0, nil).
//
//dewsvet:hotpath
func (l *Log) AppendBatch(recs []Record) (first uint64, n int, err error) {
	if len(recs) == 0 {
		return 0, 0, nil
	}
	bp := encPool.Get().(*[]byte)
	buf := (*bp)[:0]
	starts := make([]int, len(recs)+1) //dewsvet:hotalloc-ok one frame-offset slice amortized over the whole batch
	for i := range recs {
		starts[i] = len(buf)
		if buf, err = encodeFrame(buf, &recs[i]); err != nil {
			putEnc(bp, buf)
			return 0, 0, err
		}
	}
	starts[len(recs)] = len(buf)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		putEnc(bp, buf)
		return 0, 0, errors.New("eventlog: log is closed")
	}
	for i := range recs {
		off, werr := l.appendFrameLocked(buf[starts[i]:starts[i+1]])
		if werr != nil {
			err = werr
			break
		}
		if i == 0 {
			first = off
		}
		n++
	}
	l.mu.Unlock()
	putEnc(bp, buf)
	return first, n, err
}

// NextOffset returns the offset the next append will receive.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[len(l.segments)-1].end()
}

// OldestOffset returns the first offset still readable; equal to
// NextOffset when the log holds no records.
func (l *Log) OldestOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestLocked()
}

func (l *Log) oldestLocked() uint64 {
	for _, seg := range l.segments {
		if seg.count > 0 {
			return seg.base
		}
	}
	return l.segments[len(l.segments)-1].end()
}

// segView is an immutable snapshot of one segment's readable extent.
type segView struct {
	base    uint64
	path    string
	bytes   int64
	count   int
	version uint8
}

// Scan streams records with offset >= from to fn, in offset order, up to
// the log's end at call time, and returns the next offset to scan from
// (== NextOffset of the snapshot). Records older than the retention
// horizon are silently skipped: callers detect the gap by comparing from
// with OldestOffset. fn errors abort the scan and are returned as-is.
// The segment list is snapshotted under the lock but files are read
// outside it, so scanning never blocks appends; bytes beyond the
// snapshot are ignored even if the file has grown since.
func (l *Log) Scan(from uint64, fn func(Record) error) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("eventlog: log is closed")
	}
	// Readers see what the snapshot claims, so the append buffer must be
	// on disk (well, in the page cache) before the views are taken.
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	views := make([]segView, 0, len(l.segments))
	for _, seg := range l.segments {
		views = append(views, segView{base: seg.base, path: seg.path, bytes: seg.bytes, count: seg.count, version: seg.version})
	}
	l.mu.Unlock()

	next := views[len(views)-1].base + uint64(views[len(views)-1].count)
	var dec decoder
	for _, v := range views {
		if v.count == 0 || v.base+uint64(v.count) <= from {
			continue
		}
		if err := scanView(&dec, v, from, fn); err != nil {
			return next, err
		}
	}
	return next, nil
}

// scanView reads one segment snapshot, calling fn for records >= from,
// decoding bodies with the segment's format version. Reads are buffered,
// and bodies below the cursor are skipped with Discard instead of
// copied/checksummed — a tail catch-up pays for the gap, not for
// re-decoding the whole segment.
func scanView(dec *decoder, v segView, from uint64, fn func(Record) error) error {
	f, err := os.Open(v.path)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close() //dewsvet:wralerr-ok read-only handle; a close error cannot lose data
	r := bufio.NewReaderSize(io.LimitReader(f, v.bytes), 64<<10)
	if v.version == segVersionV2 {
		if _, err := r.Discard(segHeaderLen); err != nil {
			return fmt.Errorf("eventlog: segment %s missing v2 header: %w", v.path, err)
		}
	}
	var header [frameHeader]byte
	var body []byte
	var rec Record
	for off := v.base; off < v.base+uint64(v.count); off++ {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return fmt.Errorf("eventlog: segment %s short at offset %d: %w", v.path, off, err)
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxRecordBytes {
			return fmt.Errorf("eventlog: segment %s corrupt frame at offset %d", v.path, off)
		}
		if off < from {
			if _, err := r.Discard(int(n)); err != nil {
				return fmt.Errorf("eventlog: segment %s short at offset %d: %w", v.path, off, err)
			}
			continue
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("eventlog: segment %s short at offset %d: %w", v.path, off, err)
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return fmt.Errorf("eventlog: segment %s CRC mismatch at offset %d", v.path, off)
		}
		if err := dec.decodeRecord(v.version, body, &rec); err != nil {
			return fmt.Errorf("eventlog: segment %s record at offset %d: %w", v.path, off, err)
		}
		if rec.Offset != off {
			return fmt.Errorf("eventlog: segment %s offset mismatch: frame %d carries %d", v.path, off, rec.Offset)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Read collects up to max records (all when max <= 0) starting at from
// and returns them with the next offset to read from.
func (l *Log) Read(from uint64, max int) ([]Record, uint64, error) {
	var out []Record
	stop := errors.New("eventlog: read limit")
	next, err := l.Scan(from, func(rec Record) error {
		out = append(out, rec)
		if max > 0 && len(out) >= max {
			return stop
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return nil, next, err
	}
	if max > 0 && len(out) >= max {
		next = out[len(out)-1].Offset + 1
	}
	return out, next, nil
}

// Sync flushes the append buffer and forces an immediate fsync of the
// active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("eventlog: log is closed")
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	f := l.active
	l.dirty = false
	l.mu.Unlock()
	return l.timedSync(f)
}

// timedSync fsyncs f and folds the latency into the stats. A sync racing
// a rotation may hit a just-closed file; that error is ignored — seal
// already synced it. A real fsync failure re-marks the log dirty so the
// next tick retries, and is counted in Stats — data is only
// buffer-durable until a flush succeeds, and that must be visible.
func (l *Log) timedSync(f *os.File) error {
	start := time.Now()
	err := f.Sync()
	lat := time.Since(start)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		l.dirty = true
		l.fsyncFailures++
		return fmt.Errorf("eventlog: fsync: %w", err)
	}
	l.fsyncs++
	l.lastFsync = lat
	micros := float64(lat.Microseconds())
	if l.fsyncEWMA == 0 {
		l.fsyncEWMA = micros
	} else {
		l.fsyncEWMA = 0.9*l.fsyncEWMA + 0.1*micros
	}
	return nil
}

// syncLoop batches fsyncs: appends mark the log dirty and this loop
// flushes at FsyncInterval, so the per-append durability cost is one
// timer check, not one disk flush.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	tick := time.NewTicker(l.cfg.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
			l.mu.Lock()
			if l.closed || !l.dirty {
				l.mu.Unlock()
				continue
			}
			if err := l.flushLocked(); err != nil {
				l.fsyncFailures++
				l.mu.Unlock()
				continue
			}
			l.dirty = false
			f := l.active
			l.mu.Unlock()
			_ = l.timedSync(f)
		}
	}
}

// compactLoop periodically applies retention.
func (l *Log) compactLoop() {
	defer l.wg.Done()
	tick := time.NewTicker(l.cfg.CompactInterval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
			_, _ = l.Compact()
		}
	}
}

// Rotate seals the active segment and starts a fresh one, regardless of
// size. Checkpointing callers (the graph WAL) rotate before truncating
// so every record written so far lives in a sealed segment and is
// therefore droppable by TruncateBefore. Rotating an empty active
// segment is a no-op.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("eventlog: log is closed")
	}
	tail := l.segments[len(l.segments)-1]
	if tail.count == 0 {
		return nil
	}
	if err := l.sealActive(); err != nil {
		l.sealFailures++
		return err
	}
	return nil
}

// TruncateBefore drops sealed segments every record of which precedes
// offset, returning how many were removed. It is the checkpoint
// truncation primitive: unlike Compact it is offset-directed, not
// policy-directed, but shares its safety properties — only sealed
// segments are candidates, the active segment always survives, removal
// runs outside the lock, and a removal failure stops the sweep so the
// remaining segment set stays offset-contiguous.
func (l *Log) TruncateBefore(offset uint64) (int, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("eventlog: log is closed")
	}
	var drop []*segment
	for len(l.segments)-len(drop) > 1 {
		seg := l.segments[len(drop)]
		if seg.sealedAt.IsZero() || seg.end() > offset {
			break
		}
		drop = append(drop, seg)
	}
	l.mu.Unlock()
	removed := 0
	var firstErr error
	for _, seg := range drop {
		if err := os.Remove(seg.path); err != nil { //dewsvet:lockhold-ok compactMu serializes sweeps only; appenders take l.mu, never compactMu
			firstErr = fmt.Errorf("eventlog: removing %s: %w", seg.path, err)
			break
		}
		removed++
	}
	if removed > 0 {
		l.mu.Lock()
		l.segments = append(l.segments[:0], l.segments[removed:]...)
		l.compacted += uint64(removed)
		l.mu.Unlock()
	}
	return removed, firstErr
}

// Compact applies the retention policy now, returning how many segments
// were dropped. Only sealed segments are candidates; file removal runs
// outside the lock so a sweep never blocks appends. Sweeps are
// serialized (compactMu) and stop at the first removal failure so the
// on-disk segment set stays offset-contiguous — load() rejects gaps,
// and a half-removed range must not brick the next Open.
func (l *Log) Compact() (int, error) {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("eventlog: log is closed")
	}
	var total int64
	for _, seg := range l.segments {
		total += seg.bytes
	}
	now := time.Now()
	var drop []*segment
	for len(l.segments)-len(drop) > 1 {
		seg := l.segments[len(drop)]
		expired := l.cfg.RetainAge > 0 && !seg.sealedAt.IsZero() && now.Sub(seg.sealedAt) > l.cfg.RetainAge
		oversize := l.cfg.RetainBytes > 0 && total > l.cfg.RetainBytes
		if !expired && !oversize {
			break
		}
		drop = append(drop, seg)
		total -= seg.bytes
	}
	l.mu.Unlock()
	removed := 0
	var firstErr error
	for _, seg := range drop {
		if err := os.Remove(seg.path); err != nil { //dewsvet:lockhold-ok compactMu serializes sweeps only; appenders take l.mu, never compactMu
			firstErr = fmt.Errorf("eventlog: removing %s: %w", seg.path, err)
			break
		}
		removed++
	}
	if removed > 0 {
		l.mu.Lock()
		l.segments = append(l.segments[:0], l.segments[removed:]...)
		l.compacted += uint64(removed)
		l.mu.Unlock()
	}
	return removed, firstErr
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, seg := range l.segments {
		total += seg.bytes
	}
	return Stats{
		Segments:         len(l.segments),
		Bytes:            total,
		OldestOffset:     l.oldestLocked(),
		NextOffset:       l.segments[len(l.segments)-1].end(),
		Appended:         l.appended,
		Fsyncs:           l.fsyncs,
		FsyncFailures:    l.fsyncFailures,
		LastFsyncMicros:  l.lastFsync.Microseconds(),
		FsyncEWMAMicros:  l.fsyncEWMA,
		SealFailures:     l.sealFailures,
		CompactedDropped: l.compacted,
	}
}

// Close stops the background loops, fsyncs, and closes the active
// segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stop)
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		l.wg.Wait()
		return errors.Join(err, l.active.Close())
	}
	l.mu.Unlock()
	l.wg.Wait()
	if err := l.active.Sync(); err != nil {
		return errors.Join(fmt.Errorf("eventlog: %w", err), l.active.Close())
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	return nil
}
