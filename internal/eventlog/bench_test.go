package eventlog

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

var benchPayload = json.RawMessage(`{"district":"mangaung","property":"Rainfall","value":1.25,"unit":"mm"}`)

func benchRecord(i int) Record {
	return Record{
		Topic:   fmt.Sprintf("obs/d%d/Rainfall", i%5),
		Time:    time.Date(2015, 1, 1, 0, 0, i, 0, time.UTC),
		Payload: benchPayload,
	}
}

// BenchmarkAppend measures the hot write path: frame + CRC + buffered
// write, with fsync amortized onto the background timer.
func BenchmarkAppend(b *testing.B) {
	l, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSegmented adds segment-rotation pressure (1MiB
// segments) to the append path.
func BenchmarkAppendSegmented(b *testing.B) {
	l, err := Open(Config{Dir: b.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayScan measures full-history replay (crash recovery and
// SSE catch-up both ride on Scan): 10k records per iteration.
func BenchmarkReplayScan(b *testing.B) {
	const n = 10000
	l, err := Open(Config{Dir: b.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < n; i++ {
		if _, err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		if _, err := l.Scan(0, func(Record) error { got++; return nil }); err != nil {
			b.Fatal(err)
		}
		if got != n {
			b.Fatalf("replayed %d records, want %d", got, n)
		}
	}
}

// BenchmarkReopenRecovery measures Open over an existing multi-segment
// log — the startup cost of crash recovery (frame walk + CRC of every
// record).
func BenchmarkReopenRecovery(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
