package eventlog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// v1Frame renders one record as a v1 (JSON body) frame, exactly the
// format the PR 3 codec wrote.
func v1Frame(t testing.TB, rec Record) []byte {
	t.Helper()
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("v1 encode: %v", err)
	}
	frame := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	copy(frame[frameHeader:], body)
	return frame
}

// writeV1Log lays a v1-era log directory on disk: headerless segments of
// JSON frames, perSeg records each, offsets assigned from 1. It returns
// the records as written (offsets stamped).
func writeV1Log(t testing.TB, dir string, recs []Record, perSeg int) []Record {
	t.Helper()
	out := make([]Record, len(recs))
	var buf []byte
	base := uint64(1)
	for start := 0; start < len(recs); start += perSeg {
		end := start + perSeg
		if end > len(recs) {
			end = len(recs)
		}
		buf = buf[:0]
		for i := start; i < end; i++ {
			rec := recs[i]
			rec.Offset = uint64(i + 1)
			out[i] = rec
			buf = append(buf, v1Frame(t, rec)...)
		}
		path := filepath.Join(dir, fmt.Sprintf("%020d%s", base, segSuffix))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		base = uint64(end + 1)
	}
	return out
}

func testRecords(n, withHeaders int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Topic: fmt.Sprintf("obs/d%d/Rainfall", i%3),
			Time:  time.Date(2015, 1, 1, 0, 0, i, 0, time.UTC),
			// Compact JSON: marshaling a v1 frame compacts embedded raw
			// messages, and replay returns the stored (compact) bytes.
			Payload: json.RawMessage(fmt.Sprintf(`{"value":%d}`, i)),
		}
		if i%withHeaders == 0 {
			recs[i].Headers = map[string]string{"k": fmt.Sprint(i), "unit": "mm"}
		}
	}
	return recs
}

// sameRecord compares every field a replay consumer can observe.
func sameRecord(got, want Record) bool {
	if got.Offset != want.Offset || got.Topic != want.Topic || !got.Time.Equal(want.Time) {
		return false
	}
	if string(got.Payload) != string(want.Payload) {
		return false
	}
	if len(got.Headers) != len(want.Headers) {
		return false
	}
	for k, v := range want.Headers {
		if got.Headers[k] != v {
			return false
		}
	}
	return true
}

func readAll(t *testing.T, l *Log) []Record {
	t.Helper()
	recs, _, err := l.Read(0, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return recs
}

// TestV1LogMigration is the acceptance test for the codec upgrade: a
// directory written entirely by the v1 (JSON) codec opens with the v2
// code, replays identically to a never-migrated run, accepts new (v2)
// appends, and survives a reopen with both formats on disk.
func TestV1LogMigration(t *testing.T) {
	dir := t.TempDir()
	want := writeV1Log(t, dir, testRecords(25, 4), 10) // 3 v1 segments

	l := openT(t, dir, Config{})
	if got := l.NextOffset(); got != 26 {
		t.Fatalf("NextOffset after v1 open: %d, want 26", got)
	}
	got := readAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d v1 records, want %d", len(got), len(want))
	}
	for i := range got {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("v1 record %d replayed as %+v, want %+v", i, got[i], want[i])
		}
	}

	// New appends land in a fresh v2 segment, continuing the offsets.
	appendN(t, l, 7, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The v1 segments were not rewritten; the new segment carries the v2
	// header.
	names, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(names) != 4 {
		t.Fatalf("segment count after migration: %d, want 4", len(names))
	}
	v2Count := 0
	for _, name := range names {
		head := make([]byte, segHeaderLen)
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := f.Read(head)
		f.Close()
		if n == segHeaderLen && string(head) == string(segMagicV2[:]) {
			v2Count++
		}
	}
	if v2Count != 1 {
		t.Fatalf("v2 segments on disk: %d, want exactly the new tail", v2Count)
	}

	// Mixed-version recovery: reopen and replay everything.
	l = openT(t, dir, Config{})
	defer l.Close()
	if got := l.NextOffset(); got != 33 {
		t.Fatalf("NextOffset after mixed reopen: %d, want 33", got)
	}
	all := readAll(t, l)
	if len(all) != 32 {
		t.Fatalf("mixed replay: %d records, want 32", len(all))
	}
	for i, rec := range all {
		if rec.Offset != uint64(i+1) {
			t.Fatalf("mixed replay record %d has offset %d", i, rec.Offset)
		}
	}
	for i := range want {
		if !sameRecord(all[i], want[i]) {
			t.Fatalf("v1 record %d after mixed reopen: %+v, want %+v", i, all[i], want[i])
		}
	}
}

// TestV1EmptyTailRewrite: a v1-era directory whose tail segment is empty
// (created, never written) is rewritten in place as a v2 segment rather
// than sealed empty.
func TestV1EmptyTailRewrite(t *testing.T) {
	dir := t.TempDir()
	writeV1Log(t, dir, testRecords(10, 3), 10)
	empty := filepath.Join(dir, fmt.Sprintf("%020d%s", 11, segSuffix))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	l := openT(t, dir, Config{})
	defer l.Close()
	if got := l.NextOffset(); got != 11 {
		t.Fatalf("NextOffset: %d, want 11", got)
	}
	appendN(t, l, 3, 10)
	if recs := readAll(t, l); len(recs) != 13 {
		t.Fatalf("records after rewrite: %d, want 13", len(recs))
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(names) != 2 {
		t.Fatalf("segments: %d, want 2 (tail rewritten, not resealed)", len(names))
	}
}

// TestV1TornTailMigration: a torn record at the end of a v1 tail is
// truncated away on open, and appends resume in a v2 segment at the
// reclaimed offset.
func TestV1TornTailMigration(t *testing.T) {
	dir := t.TempDir()
	writeV1Log(t, dir, testRecords(12, 3), 12)
	seg := filepath.Join(dir, fmt.Sprintf("%020d%s", 1, segSuffix))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l := openT(t, dir, Config{})
	defer l.Close()
	if got := l.NextOffset(); got != 12 {
		t.Fatalf("NextOffset after torn v1 tail: %d, want 12", got)
	}
	appendN(t, l, 2, 11)
	recs := readAll(t, l)
	if len(recs) != 13 {
		t.Fatalf("records: %d, want 13", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != uint64(i+1) {
			t.Fatalf("record %d offset %d", i, rec.Offset)
		}
	}
}

// TestMixedVersionRetention: compaction drops sealed v1 segments under
// byte pressure exactly like v2 ones, and the surviving history scans
// cleanly across the version boundary.
func TestMixedVersionRetention(t *testing.T) {
	dir := t.TempDir()
	writeV1Log(t, dir, testRecords(40, 5), 10) // 4 sealed v1 segments
	l := openT(t, dir, Config{SegmentBytes: 1 << 20, RetainBytes: 2048})
	defer l.Close()
	appendN(t, l, 10, 40)
	dropped, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if dropped == 0 {
		t.Fatal("retention dropped nothing despite byte pressure")
	}
	st := l.Stats()
	if st.OldestOffset == 1 {
		t.Fatal("oldest offset did not advance")
	}
	recs := readAll(t, l)
	if len(recs) == 0 || recs[0].Offset != st.OldestOffset || recs[len(recs)-1].Offset != 50 {
		t.Fatalf("post-retention scan: %d records, first %d, oldest %d",
			len(recs), recs[0].Offset, st.OldestOffset)
	}
}

// TestEncodeDecodeRoundTrip drives the v2 codec over randomized records
// (zones, headers, empty payloads) and asserts field-exact round trips.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	zones := []*time.Location{
		time.UTC,
		time.FixedZone("", 2*3600),
		time.FixedZone("", -9*3600-30*60),
	}
	var dec decoder
	for i := 0; i < 500; i++ {
		rec := Record{
			Offset: rng.Uint64(),
			Topic:  fmt.Sprintf("t/%d/x", rng.Intn(7)),
			Time:   time.Unix(rng.Int63n(4e9), rng.Int63n(1e9)).In(zones[rng.Intn(len(zones))]),
		}
		if rng.Intn(3) > 0 {
			rec.Payload = json.RawMessage(fmt.Sprintf(`{"v":%d}`, rng.Intn(1000)))
		}
		if rng.Intn(3) == 0 {
			rec.Headers = map[string]string{}
			for h := 0; h < rng.Intn(4)+1; h++ {
				rec.Headers[fmt.Sprintf("h%d", h)] = fmt.Sprint(rng.Intn(100))
			}
		}
		body := appendRecordV2(nil, &rec)
		var got Record
		if err := dec.decodeRecordV2(body, &got); err != nil {
			t.Fatalf("round trip %d: decode: %v", i, err)
		}
		if !sameRecord(got, rec) {
			t.Fatalf("round trip %d: got %+v, want %+v", i, got, rec)
		}
		// Zone offset fidelity goes beyond Time.Equal.
		_, wantOff := rec.Time.Zone()
		_, gotOff := got.Time.Zone()
		if wantOff != gotOff {
			t.Fatalf("round trip %d: zone offset %d, want %d", i, gotOff, wantOff)
		}
	}
}

// TestDecodeV2Corrupt: a decoder fed garbage must return an error, never
// panic, over-allocate, or return trash silently.
func TestDecodeV2Corrupt(t *testing.T) {
	rec := Record{
		Offset:  7,
		Topic:   "obs/d1/Rainfall",
		Time:    time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
		Payload: json.RawMessage(`{"v":1}`),
		Headers: map[string]string{"unit": "mm"},
	}
	valid := appendRecordV2(nil, &rec)
	var dec decoder
	var out Record
	// Every truncation of a valid body must fail cleanly.
	for n := 0; n < len(valid); n++ {
		if err := dec.decodeRecordV2(valid[:n], &out); err == nil {
			t.Fatalf("truncated body of %d bytes decoded without error", n)
		}
	}
	// Trailing garbage is rejected too.
	if err := dec.decodeRecordV2(append(append([]byte(nil), valid...), 0xFF), &out); err == nil {
		t.Fatal("body with trailing bytes decoded without error")
	}
	// A nanosecond field out of range is rejected.
	bad := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bad[16:20], 2e9)
	if err := dec.decodeRecordV2(bad, &out); err == nil {
		t.Fatal("out-of-range nanoseconds accepted")
	}
}

// FuzzDecodeV2 hammers the binary decoder with arbitrary bytes: any
// input must either decode or fail with an error — never panic.
func FuzzDecodeV2(f *testing.F) {
	for _, rec := range testRecords(5, 2) {
		f.Add(appendRecordV2(nil, &rec))
	}
	f.Add([]byte{})
	f.Add(make([]byte, recordV2Fixed))
	f.Fuzz(func(t *testing.T, body []byte) {
		var dec decoder
		var rec Record
		if err := dec.decodeRecordV2(body, &rec); err != nil {
			return
		}
		// A successful decode must round-trip byte-identically: encoding
		// is canonical except for header ordering, so re-encode and
		// re-decode instead of comparing bytes.
		re := appendRecordV2(nil, &rec)
		var rec2 Record
		if err := dec.decodeRecordV2(re, &rec2); err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if !sameRecord(rec2, rec) {
			t.Fatalf("re-encode round trip drifted: %+v vs %+v", rec2, rec)
		}
	})
}
