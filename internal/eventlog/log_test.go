package eventlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, cfg Config) *Log {
	t.Helper()
	cfg.Dir = dir
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, start int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := start + i
		off, err := l.Append(Record{
			Topic:   fmt.Sprintf("obs/d%d/Rainfall", k%3),
			Time:    time.Date(2015, 1, 1, 0, 0, k, 0, time.UTC),
			Payload: json.RawMessage(fmt.Sprintf(`{"value": %d}`, k)),
			Headers: map[string]string{"k": fmt.Sprint(k)},
		})
		if err != nil {
			t.Fatalf("Append %d: %v", k, err)
		}
		if want := uint64(k + 1); off != want {
			t.Fatalf("Append %d: offset %d, want %d", k, off, want)
		}
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := openT(t, t.TempDir(), Config{})
	defer l.Close()
	appendN(t, l, 10, 0)

	recs, next, err := l.Read(0, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != 10 || next != 11 {
		t.Fatalf("Read: %d records next %d, want 10 next 11", len(recs), next)
	}
	for i, rec := range recs {
		if rec.Offset != uint64(i+1) {
			t.Errorf("record %d: offset %d", i, rec.Offset)
		}
		if want := fmt.Sprintf("obs/d%d/Rainfall", i%3); rec.Topic != want {
			t.Errorf("record %d: topic %q, want %q", i, rec.Topic, want)
		}
		if rec.Headers["k"] != fmt.Sprint(i) {
			t.Errorf("record %d: headers %v", i, rec.Headers)
		}
		var body struct{ Value int }
		if err := json.Unmarshal(rec.Payload, &body); err != nil || body.Value != i {
			t.Errorf("record %d: payload %s", i, rec.Payload)
		}
	}

	// Partial reads: from an interior offset, and with a max.
	recs, next, err = l.Read(7, 0)
	if err != nil || len(recs) != 4 || recs[0].Offset != 7 {
		t.Fatalf("Read(7): %d records first %v err %v", len(recs), recs, err)
	}
	recs, next, err = l.Read(2, 3)
	if err != nil || len(recs) != 3 || recs[0].Offset != 2 || next != 5 {
		t.Fatalf("Read(2,3): %d records next %d err %v", len(recs), next, err)
	}
}

func TestRotationAndReopenContinuity(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{SegmentBytes: 512})
	appendN(t, l, 40, 0)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation into >= 3 segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l = openT(t, dir, Config{SegmentBytes: 512})
	defer l.Close()
	if got := l.NextOffset(); got != 41 {
		t.Fatalf("NextOffset after reopen: %d, want 41", got)
	}
	appendN(t, l, 5, 40)
	recs, _, err := l.Read(0, 0)
	if err != nil || len(recs) != 45 {
		t.Fatalf("Read after reopen: %d records, err %v", len(recs), err)
	}
	for i, rec := range recs {
		if rec.Offset != uint64(i+1) {
			t.Fatalf("record %d: offset %d — sequence broken across reopen", i, rec.Offset)
		}
	}
}

// lastSegment returns the path of the highest-offset segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestTornWriteRecovery is the crash-recovery case: a record torn
// mid-write (power loss) must be truncated away on reopen, keeping every
// complete record and the offset sequence.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{})
	appendN(t, l, 20, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: chop a few bytes off the last record's body.
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, Config{})
	defer l.Close()
	if got := l.NextOffset(); got != 20 {
		t.Fatalf("NextOffset after torn-write recovery: %d, want 20 (record 20 torn)", got)
	}
	recs, _, err := l.Read(0, 0)
	if err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
	if len(recs) != 19 {
		t.Fatalf("recovered %d records, want 19", len(recs))
	}
	for i, rec := range recs {
		if rec.Offset != uint64(i+1) || rec.Headers["k"] != fmt.Sprint(i) {
			t.Fatalf("recovered record %d corrupt: %+v", i, rec)
		}
	}
	// The log must accept appends again, reusing the torn record's offset.
	off, err := l.Append(Record{Topic: "obs/x/Rainfall", Time: time.Now()})
	if err != nil || off != 20 {
		t.Fatalf("Append after recovery: offset %d err %v, want 20", off, err)
	}
}

// TestCorruptTailRecovery flips a byte inside the last record: the CRC
// must reject it and recovery truncates to the previous record.
func TestCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{})
	appendN(t, l, 5, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir, Config{})
	defer l.Close()
	recs, _, err := l.Read(0, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("after bit-flip: %d records err %v, want 4", len(recs), err)
	}
	if got := l.NextOffset(); got != 5 {
		t.Fatalf("NextOffset: %d, want 5", got)
	}
}

func TestRetentionByBytes(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{SegmentBytes: 512, RetainBytes: 1024})
	defer l.Close()
	appendN(t, l, 60, 0)
	dropped, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if dropped == 0 {
		t.Fatal("Compact dropped nothing despite RetainBytes pressure")
	}
	st := l.Stats()
	if st.OldestOffset == 1 {
		t.Fatal("oldest offset did not advance after compaction")
	}
	if st.NextOffset != 61 {
		t.Fatalf("NextOffset: %d, want 61", st.NextOffset)
	}
	// Reads start at the retention horizon, not the requested offset.
	recs, _, err := l.Read(0, 0)
	if err != nil || len(recs) == 0 {
		t.Fatalf("Read after compact: %d records err %v", len(recs), err)
	}
	if recs[0].Offset != st.OldestOffset {
		t.Fatalf("first readable offset %d, want oldest %d", recs[0].Offset, st.OldestOffset)
	}
	if last := recs[len(recs)-1].Offset; last != 60 {
		t.Fatalf("last readable offset %d, want 60", last)
	}
	// The active segment is never dropped: appends continue seamlessly.
	appendN(t, l, 1, 60)
}

func TestRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{SegmentBytes: 256, RetainAge: time.Nanosecond})
	defer l.Close()
	appendN(t, l, 30, 0)
	time.Sleep(10 * time.Millisecond)
	dropped, err := l.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if dropped == 0 {
		t.Fatal("age-based compaction dropped nothing")
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("expected only the active segment to survive, have %d", st.Segments)
	}
}

// TestConcurrentAppendScanCompact exercises the locking story under the
// race detector: appends, tailing scans, and compaction sweeps at once.
func TestConcurrentAppendScanCompact(t *testing.T) {
	l := openT(t, t.TempDir(), Config{SegmentBytes: 2048, RetainBytes: 64 << 10, FsyncInterval: time.Millisecond})
	defer l.Close()
	var wg sync.WaitGroup
	const writers, perWriter = 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append(Record{
					Topic:   fmt.Sprintf("obs/w%d/Rainfall", w),
					Time:    time.Now(),
					Payload: json.RawMessage(`{"v":1}`),
				}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cursor := uint64(1)
		for i := 0; i < 50; i++ {
			prev := uint64(0)
			next, err := l.Scan(cursor, func(rec Record) error {
				if prev != 0 && rec.Offset <= prev {
					return fmt.Errorf("offsets not increasing: %d after %d", rec.Offset, prev)
				}
				prev = rec.Offset
				return nil
			})
			if err != nil {
				t.Errorf("Scan: %v", err)
				return
			}
			if next > cursor {
				cursor = next
			}
			if _, err := l.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := l.NextOffset(); got != writers*perWriter+1 {
		t.Fatalf("NextOffset: %d, want %d", got, writers*perWriter+1)
	}
}

// TestRotationFailureDoesNotFailAppend: a segment rotation that cannot
// create its replacement file must not fail the append (the record is
// already written and counted — an error here would desync the broker's
// offset sequence from the log) and must leave the active segment
// consistent so a later rotation retries. The failure is forced with an
// O_EXCL collision: a file pre-planted at the next segment's path.
func TestRotationFailureDoesNotFailAppend(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Config{SegmentBytes: 1}) // every append wants to rotate
	blocker := filepath.Join(dir, fmt.Sprintf("%020d%s", 2, segSuffix))
	if err := os.WriteFile(blocker, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	off, err := l.Append(Record{Topic: "obs/x/Rainfall", Time: time.Now()})
	if err != nil || off != 1 {
		t.Fatalf("append during blocked rotation: offset %d err %v, want 1 <nil>", off, err)
	}
	if st := l.Stats(); st.SealFailures != 1 {
		t.Fatalf("SealFailures = %d, want 1", st.SealFailures)
	}
	// The next append lands in the still-active segment and its rotation
	// (to base 3, unblocked) succeeds.
	off, err = l.Append(Record{Topic: "obs/x/Rainfall", Time: time.Now()})
	if err != nil || off != 2 {
		t.Fatalf("append after blocked rotation: offset %d err %v, want 2 <nil>", off, err)
	}
	if st := l.Stats(); st.Segments != 2 || st.NextOffset != 3 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the planted junk (it is not a log segment) and verify a
	// clean reopen sees both records.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir, Config{})
	defer l.Close()
	recs, _, err := l.Read(0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("reopen after rotation failure: %d records err %v", len(recs), err)
	}
}

func TestStatsShape(t *testing.T) {
	l := openT(t, t.TempDir(), Config{FsyncInterval: time.Millisecond})
	defer l.Close()
	appendN(t, l, 3, 0)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.Appended != 3 || st.NextOffset != 4 || st.OldestOffset != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Fsyncs == 0 {
		t.Fatal("explicit Sync not counted")
	}
	if st.Bytes == 0 || st.Segments != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEmptyLog(t *testing.T) {
	l := openT(t, t.TempDir(), Config{})
	defer l.Close()
	if l.NextOffset() != 1 || l.OldestOffset() != 1 {
		t.Fatalf("empty log offsets: next %d oldest %d", l.NextOffset(), l.OldestOffset())
	}
	recs, next, err := l.Read(0, 0)
	if err != nil || len(recs) != 0 || next != 1 {
		t.Fatalf("empty Read: %d records next %d err %v", len(recs), next, err)
	}
}

// TestCloseReportsTeardownErrors: when Close cannot flush or sync the
// active segment, the error it returns must also carry the segment's
// own close error (regression: the close error used to be swallowed,
// reporting the teardown as cleaner than it was).
func TestCloseReportsTeardownErrors(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Topic: "t", Time: time.Now(), Payload: []byte("x")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Sabotage: close the active segment underneath the log. Whichever
	// teardown step trips first (flush of still-buffered bytes, or the
	// pre-close sync), Close must join that error with its own failed
	// close of the already-closed file.
	l.mu.Lock()
	f := l.active
	l.mu.Unlock()
	if err := f.Close(); err != nil {
		t.Fatalf("sabotage close: %v", err)
	}
	err = l.Close()
	if err == nil {
		t.Fatal("Close succeeded with a closed active segment")
	}
	if got := strings.Count(err.Error(), "file already closed"); got < 2 {
		t.Fatalf("Close should report both the teardown failure and its own close error, got %q", err)
	}
}
