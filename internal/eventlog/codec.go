package eventlog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// Record wire formats.
//
// Every segment file is a sequence of frames `[len u32][crc32c u32][body]`
// (little-endian, CRC over the body). What the body is depends on the
// segment's format version:
//
//   - v1 (headerless segment, written by earlier releases): the body is
//     the Record marshaled as JSON.
//   - v2 (segment starts with the 8-byte magic "DEWSEG2\n"): the body is
//     the compact binary layout below — no reflection on either side of
//     the disk, and the encoder runs in a reused buffer so an append does
//     no per-record heap allocation beyond growing that buffer.
//
// v2 body layout (fixed fields little-endian, lengths uvarint):
//
//	offset   u64
//	unixSec  i64     time seconds since epoch
//	nano     u32     time nanoseconds [0, 1e9)
//	zoneSec  i32     zone offset east of UTC in seconds (0 = UTC)
//	topicLen uvarint, topic bytes
//	paylLen  uvarint, payload bytes (raw JSON)
//	hdrCount uvarint, then per header: keyLen uvarint, key, valLen uvarint, val
//
// The version is a property of the segment, not of the record: a log
// directory may hold v1 and v2 segments side by side (an upgraded
// deployment), and the read path picks the decoder per segment. New
// segments are always v2; opening a log whose active tail is v1 seals
// that tail and starts a fresh v2 segment, so appends never mix formats
// within one file.
const (
	segVersionV1 = 1
	segVersionV2 = 2

	// segHeaderLen is the v2 segment header length; v1 segments have no
	// header. The magic's first four bytes read as a little-endian u32
	// are ~1.3GiB — far beyond maxRecordBytes — so a v1 frame header can
	// never be mistaken for it.
	segHeaderLen = 8

	recordV2Fixed = 8 + 8 + 4 + 4
)

var segMagicV2 = [segHeaderLen]byte{'D', 'E', 'W', 'S', 'E', 'G', '2', '\n'}

// appendRecordV2 appends rec's v2 body encoding to dst and returns the
// extended slice. It allocates nothing beyond growing dst.
func appendRecordV2(dst []byte, rec *Record) []byte {
	var fixed [recordV2Fixed]byte
	binary.LittleEndian.PutUint64(fixed[0:8], rec.Offset)
	binary.LittleEndian.PutUint64(fixed[8:16], uint64(rec.Time.Unix()))
	binary.LittleEndian.PutUint32(fixed[16:20], uint32(rec.Time.Nanosecond()))
	_, zoneSec := rec.Time.Zone()
	binary.LittleEndian.PutUint32(fixed[20:24], uint32(int32(zoneSec)))
	dst = append(dst, fixed[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Topic)))
	dst = append(dst, rec.Topic...)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Payload)))
	dst = append(dst, rec.Payload...)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Headers)))
	for k, v := range rec.Headers {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// decoder decodes record bodies into Records. It interns topic and
// header-key strings (a log's topic universe is tiny next to its record
// count) and caches time zones, so a steady-state v2 decode allocates
// only the payload copy. A decoder is single-goroutine state; each scan
// owns its own.
type decoder struct {
	strings map[string]string
	zones   map[int32]*time.Location
}

// intern returns b as a string, reusing a previously seen allocation.
func (d *decoder) intern(b []byte) string {
	if s, ok := d.strings[string(b)]; ok { // no-alloc map probe
		return s
	}
	if d.strings == nil {
		d.strings = make(map[string]string, 16)
	}
	s := string(b)
	d.strings[s] = s
	return s
}

// zone returns the Location for a fixed offset east of UTC.
func (d *decoder) zone(sec int32) *time.Location {
	if sec == 0 {
		return time.UTC
	}
	if loc, ok := d.zones[sec]; ok {
		return loc
	}
	if d.zones == nil {
		d.zones = make(map[int32]*time.Location, 2)
	}
	loc := time.FixedZone("", int(sec))
	d.zones[sec] = loc
	return loc
}

// uvarint reads one uvarint length field and bounds it by the bytes that
// could still follow it — a frame already passed its CRC, but the fuzzer
// (and a buggy writer) must hit clean errors, never a panic or a huge
// allocation.
func uvarint(body []byte, at int) (int, int, error) {
	v, n := binary.Uvarint(body[at:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad varint at byte %d", at)
	}
	at += n
	if v > uint64(len(body)-at) {
		return 0, 0, fmt.Errorf("length %d exceeds remaining %d bytes", v, len(body)-at)
	}
	return int(v), at, nil
}

// decodeRecordV2 decodes a v2 body into rec. The topic and header keys
// are interned; the payload is copied into a fresh slice (callers retain
// Records, so the payload must not alias the scan's read buffer).
func (d *decoder) decodeRecordV2(body []byte, rec *Record) error {
	*rec = Record{}
	if len(body) < recordV2Fixed {
		return fmt.Errorf("eventlog: v2 record body of %d bytes is shorter than the fixed fields", len(body))
	}
	rec.Offset = binary.LittleEndian.Uint64(body[0:8])
	sec := int64(binary.LittleEndian.Uint64(body[8:16]))
	nano := binary.LittleEndian.Uint32(body[16:20])
	zoneSec := int32(binary.LittleEndian.Uint32(body[20:24]))
	if nano >= 1e9 {
		return fmt.Errorf("eventlog: v2 record nanoseconds %d out of range", nano)
	}
	rec.Time = time.Unix(sec, int64(nano)).In(d.zone(zoneSec))

	at := recordV2Fixed
	n, at, err := uvarint(body, at)
	if err != nil {
		return fmt.Errorf("eventlog: v2 record topic: %w", err)
	}
	rec.Topic = d.intern(body[at : at+n])
	at += n
	if n, at, err = uvarint(body, at); err != nil {
		return fmt.Errorf("eventlog: v2 record payload: %w", err)
	}
	if n > 0 {
		rec.Payload = append(json.RawMessage(nil), body[at:at+n]...)
		at += n
	}
	count, at, err := uvarint(body, at)
	if err != nil {
		return fmt.Errorf("eventlog: v2 record header count: %w", err)
	}
	if count > 0 {
		hint := count
		if hint > 64 {
			hint = 64 // a corrupt count must not pre-size a huge map
		}
		rec.Headers = make(map[string]string, hint)
		for i := 0; i < count; i++ {
			if n, at, err = uvarint(body, at); err != nil {
				return fmt.Errorf("eventlog: v2 record header %d key: %w", i, err)
			}
			k := d.intern(body[at : at+n])
			at += n
			if n, at, err = uvarint(body, at); err != nil {
				return fmt.Errorf("eventlog: v2 record header %d value: %w", i, err)
			}
			rec.Headers[k] = string(body[at : at+n])
			at += n
		}
	}
	if at != len(body) {
		return fmt.Errorf("eventlog: v2 record has %d trailing bytes", len(body)-at)
	}
	return nil
}

// decodeRecord dispatches on the segment format version.
func (d *decoder) decodeRecord(version uint8, body []byte, rec *Record) error {
	if version == segVersionV2 {
		return d.decodeRecordV2(body, rec)
	}
	*rec = Record{}
	if err := json.Unmarshal(body, rec); err != nil {
		return fmt.Errorf("eventlog: undecodable v1 record: %w", err)
	}
	return nil
}
