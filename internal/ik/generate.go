package ik

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/climate"
)

// GeneratorConfig drives synthetic report generation.
type GeneratorConfig struct {
	// Pool is the informant population.
	Pool *InformantPool
	// District tags the generated reports.
	District string
	// ReportRate is the per-informant, per-indicator daily probability of
	// even looking for the sign (reports are sparse).
	ReportRate float64
	// Seed for reproducibility.
	Seed int64
}

// GenerateReports synthesizes informant reports over a simulated series.
//
// The generative story (DESIGN.md substitution table): a sign "really
// shows" ahead of a drought when the ground truth says a drought is
// underway LeadTimeDays later; an informant with skill s reports the sign
// correctly with probability s and hallucinates it with probability
// (1-s)/3. Wet-polarity signs mirror this against upcoming wet (non-
// drought) conditions. This reproduces exactly the statistical structure
// the middleware must fuse: heterogeneous, culturally-coded, variably
// reliable signals with genuine lead-time information.
func GenerateReports(cfg GeneratorConfig, days []climate.Day, truth *climate.Truth) ([]Report, error) {
	if cfg.Pool == nil || len(cfg.Pool.Names) == 0 {
		return nil, fmt.Errorf("ik: generator needs an informant pool")
	}
	if len(days) == 0 || truth == nil || len(truth.InDrought) != len(days) {
		return nil, fmt.Errorf("ik: series and truth must align")
	}
	rate := cfg.ReportRate
	if rate == 0 {
		rate = 0.02
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	catalogue := Catalogue()
	var out []Report
	for di, day := range days {
		for _, ind := range catalogue {
			// Does the sign objectively show today?
			ahead := di + ind.LeadTimeDays
			signTruth := false
			if ahead < len(days) {
				upcoming := truth.InDrought[ahead]
				if ind.Polarity == PolarityDry {
					signTruth = upcoming
				} else {
					signTruth = !upcoming && days[ahead].RainMM > 0.5
				}
			}
			for _, informant := range cfg.Pool.Names {
				if rng.Float64() >= rate {
					continue // not watching today
				}
				skill := cfg.Pool.Skill[informant]
				var observed bool
				if signTruth {
					observed = rng.Float64() < skill
				} else {
					observed = rng.Float64() < (1-skill)/3
				}
				if !observed {
					continue
				}
				out = append(out, Report{
					Informant: informant,
					Indicator: ind.Slug,
					District:  cfg.District,
					Time:      day.Date,
					Strength:  clamp01(0.5 + 0.5*rng.Float64()),
				})
			}
		}
	}
	return out, nil
}

// ScoreReports replays reports against ground truth and updates informant
// track records: a dry-sign report is a hit when a drought was indeed in
// progress LeadTimeDays later (and conversely for wet signs). It returns
// the number of scored reports.
func ScoreReports(reports []Report, days []climate.Day, truth *climate.Truth, tracker *InformantTracker) (int, error) {
	if len(days) == 0 || truth == nil || len(truth.InDrought) != len(days) {
		return 0, fmt.Errorf("ik: series and truth must align")
	}
	catalogue := CatalogueBySlug()
	indexOf := make(map[int64]int, len(days))
	for i, d := range days {
		indexOf[d.Date.Unix()] = i
	}
	scored := 0
	for _, r := range reports {
		ind, ok := catalogue[r.Indicator]
		if !ok {
			continue
		}
		di, ok := indexOf[r.Time.Unix()]
		if !ok {
			continue
		}
		ahead := di + ind.LeadTimeDays
		if ahead >= len(days) {
			continue // cannot verify yet
		}
		var hit bool
		if ind.Polarity == PolarityDry {
			hit = truth.InDrought[ahead]
		} else {
			hit = !truth.InDrought[ahead]
		}
		tracker.Observe(r.Informant, hit)
		scored++
	}
	return scored, nil
}

// ConsensusStrength aggregates reports of one indicator over a window
// into a single [0,1] signal: reliability-weighted mean strength damped
// by how few distinct informants contributed (one voice is weak
// evidence). Used by the IK-only forecaster.
func ConsensusStrength(reports []Report, tracker *InformantTracker) float64 {
	if len(reports) == 0 {
		return 0
	}
	var wsum, sum float64
	informants := make(map[string]bool)
	for _, r := range reports {
		w := 0.6
		if tracker != nil {
			w = tracker.Reliability(r.Informant)
		}
		wsum += w
		sum += w * r.Strength
		informants[r.Informant] = true
	}
	if wsum == 0 {
		return 0
	}
	mean := sum / wsum
	// Damping: 1 informant → ×0.5, 2 → ×0.75, 3+ → ×~0.9+.
	damp := 1 - math.Pow(0.5, float64(len(informants)))
	return clamp01(mean * damp)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
